//! Dense Pentagons vs the paper's sparse less-than analysis.
//!
//! The paper's §5 compares itself to Logozzo & Fähndrich's Pentagon
//! domain in prose; this example makes the comparison executable on the
//! paper's own Figure 1 programs. Both analyses prove the same ordering
//! facts here — the differences are *where the facts live* (per-point
//! states vs per-name sets) and what that costs.
//!
//! Run with `cargo run --example pentagon_vs_sparse`.

use sraa::alias::{AliasAnalysis, AliasResult, PentagonAa, StrictInequalityAa};
use sraa::ir::InstKind;

const FIGURE_1: [(&str, &str); 2] = [
    (
        "ins_sort",
        r#"
        void ins_sort(int* v, int N) {
            for (int i = 0; i < N - 1; i++)
                for (int j = i + 1; j < N; j++)
                    if (v[i] > v[j]) { int t = v[i]; v[i] = v[j]; v[j] = t; }
        }
        "#,
    ),
    (
        "partition",
        r#"
        void partition(int* v, int N) {
            int i; int j; int p; int tmp;
            p = v[N / 2];
            for (i = 0, j = N - 1;; i++, j--) {
                while (v[i] < p) i++;
                while (p < v[j]) j--;
                if (i >= j) break;
                tmp = v[i];
                v[i] = v[j];
                v[j] = tmp;
            }
        }
        "#,
    ),
];

fn main() {
    for (name, source) in FIGURE_1 {
        let mut module = sraa::minic::compile(source).expect("valid MiniC");
        // One e-SSA conversion; both analyses run on the same program.
        let lt = StrictInequalityAa::new(&mut module);
        let pt = PentagonAa::on_prepared(&module);

        let fid = module.function_by_name(name).unwrap();
        let f = module.function(fid);
        let mut ptrs = Vec::new();
        for b in f.block_ids() {
            for (_, d) in f.block_insts(b) {
                match &d.kind {
                    InstKind::Load { ptr } => ptrs.push(*ptr),
                    InstKind::Store { ptr, .. } => ptrs.push(*ptr),
                    _ => {}
                }
            }
        }

        let (mut total, mut lt_no, mut pt_no, mut both) = (0u32, 0u32, 0u32, 0u32);
        for (i, &p1) in ptrs.iter().enumerate() {
            for &p2 in &ptrs[i + 1..] {
                total += 1;
                let a = lt.alias(&module, fid, p1, p2) == AliasResult::NoAlias;
                let b = pt.alias(&module, fid, p1, p2) == AliasResult::NoAlias;
                lt_no += a as u32;
                pt_no += b as u32;
                both += (a && b) as u32;
            }
        }
        println!("{name}: {total} access pairs");
        println!("  sparse LT  no-alias: {lt_no}");
        println!("  dense  PT  no-alias: {pt_no}   (agreeing on {both})");
        println!(
            "  dense footprint: {} variable bindings across block-entry states",
            pt.analysis().total_bindings()
        );
        println!();
    }

    println!("Both formulations disambiguate the paper's examples; the sparse");
    println!("one stores each fact once per *name*, the dense one once per");
    println!("*program point* — the footprint line is the paper's argument.");
}
