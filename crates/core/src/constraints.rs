//! Constraint generation — the paper's Figure 7.
//!
//! Four constraint kinds describe the less-than sets:
//!
//! | rule | syntax                        | constraint                              |
//! |------|-------------------------------|-----------------------------------------|
//! | 1    | `x = •`                       | `LT(x) = ∅`                             |
//! | 2    | `x1 = x2 + n`, `n > 0`        | `LT(x1) = {x2} ∪ LT(x2)`                |
//! | 3    | `x1 = x2 − n ‖ ⟨x3 = x2⟩`     | `LT(x3) = {x1} ∪ LT(x2)`, `LT(x1) = ∅`  |
//! | 4    | `x = φ(x1, …, xn)`            | `LT(x) = LT(x1) ∩ … ∩ LT(xn)`           |
//! | 5    | `(x1 < x2)?` σ-copies         | see below                               |
//!
//! Rule 5, for `(x1 < x2)?` with σ-copies `x1t,x2t` / `x1f,x2f`:
//! `LT(x2t) = {x1t} ∪ LT(x2) ∪ LT(x1t)`, `LT(x1t) = LT(x1)`,
//! `LT(x2f) = LT(x2)`, `LT(x1f) = LT(x1) ∪ LT(x2f)`.
//! (The paper's Example 3.4 writes the last one with `∩`, but its
//! Example 3.5 fixpoint — `LT(x4f) = {x0}` — only follows with `∪`, which
//! also matches rule 5 as printed in Figure 7; we implement `∪`.)
//!
//! Whether `x1 = x2 ± x3` is an addition or a subtraction is decided by
//! the sign of the operands' intervals (paper §3.2); `n` may be a constant
//! or a variable with a strictly-positive/negative range. `gep` is pointer
//! addition and follows the same rules.
//!
//! Inter-procedural pseudo-φs (paper §4): each formal parameter gets
//! `LT(xf) = ∩ LT(aᵢ)` over every internal call site's actual argument.
//!
//! Generation is `O(|V|)`: one pass over the instructions. Constraints
//! address variables by interned [`VarId`]s. Functions are independent
//! during that pass, so [`generate_with_index`] fans the per-function
//! work out across threads ([`std::thread::scope`]) on large modules and
//! merges the per-function outputs in function order — the emitted
//! constraint sequence is byte-identical to a serial run.

use crate::summary::{ModuleSummaries, SummarySource};
use crate::var_index::{VarId, VarIndex};
use sraa_ir::{BinOp, CopyOrigin, FuncId, Function, InstKind, Module, Pred, Value};
use sraa_range::RangeAnalysis;

/// A normalised constraint over interned [`VarId`]s.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Constraint {
    /// `LT(x) = ∅` — rule 1 (and the empty cases of rules 2/3).
    Init {
        /// Defined variable.
        x: VarId,
    },
    /// `LT(x) = {elems…} ∪ ⋃ LT(s)` — rules 2, 3 (copy side) and 5.
    Union {
        /// Defined variable.
        x: VarId,
        /// Individual new elements.
        elems: Vec<VarId>,
        /// Sets to union in.
        sources: Vec<VarId>,
    },
    /// `LT(x) = ∩ LT(s)` — rule 4 and the inter-procedural pseudo-φs.
    Inter {
        /// Defined variable.
        x: VarId,
        /// Sets to intersect (never empty).
        sources: Vec<VarId>,
    },
    /// `LT(x) = LT(s)` — the trivial copy case.
    Copy {
        /// Defined variable.
        x: VarId,
        /// Source variable.
        source: VarId,
    },
}

impl Constraint {
    /// The variable the constraint defines.
    pub fn defined(&self) -> VarId {
        match self {
            Constraint::Init { x }
            | Constraint::Union { x, .. }
            | Constraint::Inter { x, .. }
            | Constraint::Copy { x, .. } => *x,
        }
    }

    /// The variables whose `LT` sets the right-hand side reads.
    pub fn reads(&self) -> &[VarId] {
        match self {
            Constraint::Init { .. } => &[],
            Constraint::Union { sources, .. } | Constraint::Inter { sources, .. } => sources,
            Constraint::Copy { source, .. } => std::slice::from_ref(source),
        }
    }
}

/// Options controlling constraint generation.
#[derive(Clone, Copy, Debug)]
pub struct GenConfig {
    /// Enables sound extensions beyond the paper's Figure 7:
    /// non-*strict* increments propagate the source's set
    /// (`x1 = x2 + n, n ≥ 0 ⇒ LT(x1) ⊇ LT(x2)`), and likewise for
    /// non-negative `gep` offsets. Off by default for paper fidelity;
    /// the ablation benchmark measures its effect.
    pub extended: bool,
    /// Parameter-pair refinement: if at *every* internal call site of `g`
    /// the argument for formal `xi` is provably less than the argument
    /// for formal `xj`, then `xi ∈ LT(xj)` (parameters are immutable for
    /// the frame's lifetime, so the entry-time relation is frame-wide).
    /// This completes the paper's inter-procedural pseudo-φs — without
    /// it, `LT(xf)` only ever holds *caller* names, which no callee-side
    /// query mentions. Enabled by default; see DESIGN.md.
    pub param_pairs: bool,
    /// Third disambiguation criterion: same base, offsets with
    /// *disjoint intervals* (`p+x1` vs `p+x2` with `R(x1) ∩ R(x2) = ∅`).
    /// The paper's §3.6 lists this range-based criterion as complementary
    /// prior work its artifact builds on, and its Figure 12 result on
    /// constant-heavy Csmith code depends on it. Off by default so that
    /// the `aa-eval` numbers isolate the strict-inequality contribution;
    /// the PDG experiment (fig12) turns it on.
    pub range_offsets: bool,
}

impl Default for GenConfig {
    fn default() -> Self {
        Self { extended: false, param_pairs: true, range_offsets: false }
    }
}

/// The generated constraint system plus the call-graph metadata the
/// parameter-pair refinement needs.
#[derive(Clone, Debug)]
pub struct ConstraintSystem {
    /// The constraints.
    pub constraints: Vec<Constraint>,
    /// Variable universe size: module variables plus one synthetic
    /// variable per pseudo-φ (holding the raw intersection, so the
    /// refinement can union extra elements into the parameter's set).
    pub num_vars: usize,
    /// Per function: interned param ids and per-call-site argument columns
    /// (`None` marks a constant/untracked argument).
    pub param_info: Vec<ParamInfo>,
    /// Param id → index of its `Union` wrapper constraint.
    pub param_union: std::collections::HashMap<VarId, usize>,
}

/// Call-site summary of one function.
#[derive(Clone, Debug)]
pub struct ParamInfo {
    /// Interned id of each formal parameter.
    pub params: Vec<VarId>,
    /// One entry per internal call site: the interned ids of the actual
    /// arguments (`None` for constants).
    pub sites: Vec<Vec<Option<VarId>>>,
}

/// One call site recorded during per-function generation: the callee and
/// the interned actual-argument column.
type CallRecord = (FuncId, Vec<Option<VarId>>);

/// Module sizes below this run the per-function pass serially — thread
/// spawn overhead would dominate on the small modules that saturate the
/// test corpus.
const PARALLEL_MIN_FUNCTIONS: usize = 8;

/// Even past the function-count floor, a module of tiny functions does
/// not amortize thread spawns: require this much total work (instruction
/// count across the module) before fanning out.
const PARALLEL_MIN_INSTRUCTIONS: usize = 2_000;

/// Generates the constraint system for a module in e-SSA form.
pub fn generate(module: &Module, ranges: &RangeAnalysis, cfg: GenConfig) -> ConstraintSystem {
    let index = VarIndex::new(module);
    generate_with_index(module, ranges, cfg, &index)
}

/// [`generate`] with a caller-provided [`VarIndex`].
pub fn generate_with_index(
    module: &Module,
    ranges: &RangeAnalysis,
    cfg: GenConfig,
    index: &VarIndex,
) -> ConstraintSystem {
    generate_with_parallelism(module, ranges, cfg, index, None, true)
}

/// [`generate_with_index`] with interprocedural summaries applied at call
/// sites: a call result `r = g(a₁, …)` whose callee summary proves
/// `param_j < ret` contributes `LT(r) ⊇ {a_j} ∪ LT(a_j)` instead of the
/// intraprocedural `LT(r) = ∅`.
pub fn generate_with_summaries(
    module: &Module,
    ranges: &RangeAnalysis,
    cfg: GenConfig,
    index: &VarIndex,
    summaries: &ModuleSummaries,
) -> ConstraintSystem {
    generate_with_parallelism(module, ranges, cfg, index, Some(summaries), true)
}

/// Constraints for a *subset* of functions only — the per-SCC systems the
/// bottom-up summary computation solves. Formal parameters are grounded
/// with `Init` (a summary fact must hold in every calling context, so
/// params carry no caller facts here), and no pseudo-φ constraints are
/// emitted. Output order: functions in `funcs` order, then the param
/// `Init`s, all deterministic.
pub(crate) fn generate_scoped(
    module: &Module,
    ranges: &RangeAnalysis,
    cfg: GenConfig,
    index: &VarIndex,
    funcs: &[FuncId],
    summaries: &dyn SummarySource,
) -> Vec<Constraint> {
    let mut out = Vec::new();
    for &fid in funcs {
        let mut gen = FuncGen {
            f: module.function(fid),
            fid,
            ranges,
            cfg,
            index,
            summaries: Some(summaries),
            out: std::mem::take(&mut out),
            calls: Vec::new(),
        };
        gen.run();
        out = gen.out;
    }
    for &fid in funcs {
        let f = module.function(fid);
        for i in 0..f.params.len() {
            out.push(Constraint::Init { x: index.id(fid, f.param_value(i)) });
        }
    }
    out
}

/// [`generate_with_index`] with the scoped-thread fan-out forced off —
/// the reference implementation the parallel path must match exactly
/// (asserted by `parallel_generation_matches_the_forced_serial_pass`).
#[cfg(test)]
pub(crate) fn generate_serial(
    module: &Module,
    ranges: &RangeAnalysis,
    cfg: GenConfig,
    index: &VarIndex,
) -> ConstraintSystem {
    generate_with_parallelism(module, ranges, cfg, index, None, false)
}

fn generate_with_parallelism(
    module: &Module,
    ranges: &RangeAnalysis,
    cfg: GenConfig,
    index: &VarIndex,
    summaries: Option<&ModuleSummaries>,
    allow_parallel: bool,
) -> ConstraintSystem {
    let num_funcs = module.num_functions();
    let summaries = summaries.map(|s| s as &dyn SummarySource);
    let per_func =
        generate_per_function(module, ranges, cfg, index, summaries, num_funcs, allow_parallel);

    // Merge in function order: the output is identical to a serial pass.
    let mut out = Vec::new();
    let mut call_sites: Vec<Vec<Vec<Option<VarId>>>> = vec![Vec::new(); num_funcs];
    for (constraints, calls) in per_func {
        out.extend(constraints);
        for (callee, site) in calls {
            call_sites[callee.index()].push(site);
        }
    }

    // Pseudo-φ constraints for formal parameters. `LT(xf) = ∩ᵢ LT(aᵢ)`
    // is encoded through a synthetic variable `t`:
    //   Inter { t, sources: args }, Union { xf, elems: [], sources: [t] }
    // so the parameter-pair refinement can later push extra elements into
    // the Union without disturbing the intersection.
    let mut num_vars = index.len();
    let mut param_info = Vec::with_capacity(num_funcs);
    let mut param_union = std::collections::HashMap::new();
    for (fid, f) in module.functions() {
        let sites = std::mem::take(&mut call_sites[fid.index()]);
        let params: Vec<VarId> =
            (0..f.params.len()).map(|i| index.id(fid, f.param_value(i))).collect();
        for (i, &x) in params.iter().enumerate() {
            let column: Vec<Option<VarId>> = sites.iter().map(|s| s[i]).collect();
            if column.is_empty() || column.iter().any(Option::is_none) {
                // No internal caller, or some call passes a constant /
                // untracked value: the intersection collapses to ∅.
                out.push(Constraint::Init { x });
            } else {
                let t = VarId::from_index(num_vars);
                num_vars += 1;
                out.push(Constraint::Inter {
                    x: t,
                    sources: column.into_iter().map(Option::unwrap).collect(),
                });
                param_union.insert(x, out.len());
                out.push(Constraint::Union { x, elems: vec![], sources: vec![t] });
            }
        }
        param_info.push(ParamInfo { params, sites });
    }

    ConstraintSystem { constraints: out, num_vars, param_info, param_union }
}

/// Runs the per-function generation pass over every function, fanning out
/// across scoped threads when the module is large enough to pay for it.
fn generate_per_function(
    module: &Module,
    ranges: &RangeAnalysis,
    cfg: GenConfig,
    index: &VarIndex,
    summaries: Option<&dyn SummarySource>,
    num_funcs: usize,
    allow_parallel: bool,
) -> Vec<(Vec<Constraint>, Vec<CallRecord>)> {
    let gen_one = |i: usize| {
        let fid = FuncId::from_index(i);
        let mut gen = FuncGen {
            f: module.function(fid),
            fid,
            ranges,
            cfg,
            index,
            summaries,
            out: Vec::new(),
            calls: Vec::new(),
        };
        gen.run();
        (gen.out, gen.calls)
    };

    let threads = std::thread::available_parallelism().map_or(1, |n| n.get()).min(num_funcs);
    let big_enough = num_funcs >= PARALLEL_MIN_FUNCTIONS && {
        // O(#functions) pre-pass; both thresholds must pass so that a
        // pile of one-liner functions stays on the serial path.
        let insts: usize =
            (0..num_funcs).map(|i| module.function(FuncId::from_index(i)).num_insts()).sum();
        insts >= PARALLEL_MIN_INSTRUCTIONS
    };
    if !allow_parallel || !big_enough || threads < 2 {
        return (0..num_funcs).map(gen_one).collect();
    }

    // Contiguous chunks, joined in spawn order: deterministic merge.
    let chunk = num_funcs.div_ceil(threads);
    std::thread::scope(|s| {
        let handles: Vec<_> = (0..threads)
            .map(|t| {
                let lo = t * chunk;
                let hi = ((t + 1) * chunk).min(num_funcs);
                s.spawn(move || (lo..hi).map(gen_one).collect::<Vec<_>>())
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("constraint generation worker panicked"))
            .collect()
    })
}

struct FuncGen<'a> {
    f: &'a Function,
    fid: FuncId,
    ranges: &'a RangeAnalysis,
    cfg: GenConfig,
    index: &'a VarIndex,
    /// Interprocedural summaries to apply at call sites; `None` runs the
    /// paper's intraprocedural rules (calls are opaque).
    summaries: Option<&'a dyn SummarySource>,
    out: Vec<Constraint>,
    calls: Vec<CallRecord>,
}

impl FuncGen<'_> {
    fn id(&self, v: Value) -> VarId {
        self.index.id(self.fid, v)
    }

    fn is_const(&self, v: Value) -> bool {
        matches!(self.f.inst(v).kind, InstKind::Const(_))
    }

    /// Strictly positive: constant > 0, or interval `[l, u]` with `l > 0`.
    fn strictly_positive(&self, v: Value) -> bool {
        match self.f.inst(v).kind {
            InstKind::Const(c) => c > 0,
            _ => self.ranges.range(self.fid, v).is_strictly_positive(),
        }
    }

    fn strictly_negative(&self, v: Value) -> bool {
        match self.f.inst(v).kind {
            InstKind::Const(c) => c < 0,
            _ => self.ranges.range(self.fid, v).is_strictly_negative(),
        }
    }

    fn non_negative(&self, v: Value) -> bool {
        match self.f.inst(v).kind {
            InstKind::Const(c) => c >= 0,
            _ => self.ranges.range(self.fid, v).is_non_negative(),
        }
    }

    fn run(&mut self) {
        for b in self.f.block_ids() {
            for (v, data) in self.f.block_insts(b) {
                if !data.has_result() {
                    if let InstKind::Call { callee, args } = &data.kind {
                        self.record_call(*callee, args);
                    }
                    continue;
                }
                match &data.kind {
                    // Constants have no LT set — they are not variables.
                    InstKind::Const(_) => {}
                    // Params get their pseudo-φ constraint later.
                    InstKind::Param(_) => {}
                    InstKind::Binary { op, lhs, rhs } => {
                        self.binary(v, *op, *lhs, *rhs);
                    }
                    InstKind::Gep { base, offset } => {
                        // Pointer addition: p1 = p + n.
                        self.addition_like(v, *base, *offset);
                    }
                    InstKind::Phi { incomings } => {
                        let mut sources = Vec::with_capacity(incomings.len());
                        let mut grounded = true;
                        for (_, x) in incomings {
                            if self.is_const(*x) {
                                grounded = false; // constants have LT = ∅
                            } else {
                                sources.push(self.id(*x));
                            }
                        }
                        if grounded && !sources.is_empty() {
                            self.out.push(Constraint::Inter { x: self.id(v), sources });
                        } else {
                            self.out.push(Constraint::Init { x: self.id(v) });
                        }
                    }
                    InstKind::Copy { src, origin } => self.copy(v, *src, *origin, b),
                    InstKind::Call { callee, args } => {
                        self.record_call(*callee, args);
                        self.call_result(v, *callee, args);
                    }
                    InstKind::Cmp { .. }
                    | InstKind::Alloca { .. }
                    | InstKind::Malloc { .. }
                    | InstKind::GlobalAddr(_)
                    | InstKind::Load { .. }
                    | InstKind::Opaque => {
                        self.out.push(Constraint::Init { x: self.id(v) });
                    }
                    InstKind::Store { .. }
                    | InstKind::Br { .. }
                    | InstKind::Jump(_)
                    | InstKind::Ret(_) => unreachable!("no result"),
                }
            }
        }
    }

    /// Constraint for a call *result*. Intraprocedurally a call is opaque
    /// (`LT(r) = ∅`); with summaries, every callee-proven `param_j < ret`
    /// fact materialises the actual argument: `LT(r) ⊇ {a_j} ∪ LT(a_j)`.
    fn call_result(&mut self, v: Value, callee: FuncId, args: &[Value]) {
        let x = self.id(v);
        if let Some(sums) = self.summaries {
            let ids: Vec<VarId> = sums
                .args_lt_ret_of(callee)
                .iter()
                .filter_map(|&j| args.get(j as usize).copied())
                .filter(|&a| !self.is_const(a))
                .map(|a| self.id(a))
                .collect();
            if !ids.is_empty() {
                self.out.push(Constraint::Union { x, elems: ids.clone(), sources: ids });
                return;
            }
        }
        self.out.push(Constraint::Init { x });
    }

    fn record_call(&mut self, callee: FuncId, args: &[Value]) {
        let site: Vec<Option<VarId>> = args
            .iter()
            .map(|a| (!self.is_const(*a)).then(|| self.index.id(self.fid, *a)))
            .collect();
        self.calls.push((callee, site));
    }

    fn binary(&mut self, v: Value, op: BinOp, lhs: Value, rhs: Value) {
        match op {
            BinOp::Add => self.addition_like(v, lhs, rhs),
            BinOp::Sub => {
                // x1 = x2 − n: with n > 0 this is rule 3 (LT(x1) = ∅; the
                // SubSplit copy carries the information). With n < 0 it is
                // an addition of |n|.
                if self.strictly_negative(rhs) {
                    self.union_from(v, lhs);
                } else {
                    self.out.push(Constraint::Init { x: self.id(v) });
                }
            }
            BinOp::Mul | BinOp::Div | BinOp::Rem => {
                self.out.push(Constraint::Init { x: self.id(v) });
            }
        }
    }

    /// `v = a + b` (integer add or gep): pick the rule by operand signs.
    fn addition_like(&mut self, v: Value, a: Value, b: Value) {
        if self.strictly_positive(b) && !self.is_const(a) {
            self.union_from(v, a); // rule 2: a < v
        } else if self.strictly_positive(a) && !self.is_const(b) {
            self.union_from(v, b);
        } else if self.cfg.extended && self.non_negative(b) && !self.is_const(a) {
            // Extension: v = a + n, n ≥ 0 ⇒ anything < a is < v.
            self.out.push(Constraint::Copy { x: self.id(v), source: self.id(a) });
        } else if self.cfg.extended && self.non_negative(a) && !self.is_const(b) {
            self.out.push(Constraint::Copy { x: self.id(v), source: self.id(b) });
        } else {
            // Subtraction (handled via the SubSplit copy) or unknown.
            self.out.push(Constraint::Init { x: self.id(v) });
        }
    }

    /// `LT(v) = {src} ∪ LT(src)`.
    fn union_from(&mut self, v: Value, src: Value) {
        let s = self.id(src);
        self.out.push(Constraint::Union { x: self.id(v), elems: vec![s], sources: vec![s] });
    }

    fn copy(&mut self, v: Value, src: Value, origin: CopyOrigin, block: sraa_ir::BlockId) {
        if self.is_const(src) {
            self.out.push(Constraint::Init { x: self.id(v) });
            return;
        }
        match origin {
            CopyOrigin::Plain => {
                self.out.push(Constraint::Copy { x: self.id(v), source: self.id(src) });
            }
            CopyOrigin::SubSplit { sub } => {
                // Rule 3: LT(x3) = {x1} ∪ LT(x2) where x1 is the
                // subtraction result and x2 the copied minuend.
                let x1 = self.id(sub);
                self.out.push(Constraint::Union {
                    x: self.id(v),
                    elems: vec![x1],
                    sources: vec![self.id(src)],
                });
            }
            CopyOrigin::SigmaTrue { cmp } | CopyOrigin::SigmaFalse { cmp } => {
                let InstKind::Cmp { pred, lhs, rhs } = self.f.inst(cmp).kind else {
                    self.out.push(Constraint::Copy { x: self.id(v), source: self.id(src) });
                    return;
                };
                let taken = matches!(origin, CopyOrigin::SigmaTrue { .. });
                let pred = if taken { pred } else { pred.negated() };
                // Normalise so the relation reads `small REL large` with
                // REL ∈ {<, ≤, =, ≠} and identify which side `src` is.
                let (pred, small, large) = match pred {
                    Pred::Gt => (Pred::Lt, rhs, lhs),
                    Pred::Ge => (Pred::Le, rhs, lhs),
                    p => (p, lhs, rhs),
                };
                let x = self.id(v);
                let src_id = self.id(src);
                if src == large {
                    // σ-copy of the *larger* side.
                    match pred {
                        Pred::Lt => {
                            // LT(large_t) = {small_t} ∪ LT(large) ∪ LT(small_t)
                            match self.find_sibling(block, origin, small) {
                                Some(small_t) if !self.is_const(small) => {
                                    let st = self.id(small_t);
                                    self.out.push(Constraint::Union {
                                        x,
                                        elems: vec![st],
                                        sources: vec![src_id, st],
                                    });
                                }
                                _ => self.out.push(Constraint::Copy { x, source: src_id }),
                            }
                        }
                        Pred::Le => {
                            // LT(large_t) = LT(large) ∪ LT(small_t)
                            match self.find_sibling(block, origin, small) {
                                Some(small_t) if !self.is_const(small) => {
                                    let st = self.id(small_t);
                                    self.out.push(Constraint::Union {
                                        x,
                                        elems: vec![],
                                        sources: vec![src_id, st],
                                    });
                                }
                                _ => self.out.push(Constraint::Copy { x, source: src_id }),
                            }
                        }
                        Pred::Eq => self.equality_copy(v, src, small, large),
                        _ => self.out.push(Constraint::Copy { x, source: src_id }),
                    }
                } else if src == small {
                    match pred {
                        Pred::Eq => self.equality_copy(v, src, small, large),
                        // LT(small_t) = LT(small) for < and ≤ alike.
                        _ => self.out.push(Constraint::Copy { x, source: src_id }),
                    }
                } else {
                    self.out.push(Constraint::Copy { x, source: src_id });
                }
            }
        }
    }

    /// On an equality edge both copies may merge their sources' sets:
    /// `LT(x_edge) = LT(a) ∪ LT(b)`.
    fn equality_copy(&mut self, v: Value, src: Value, a: Value, b: Value) {
        let other = if src == a { b } else { a };
        let mut sources = vec![self.id(src)];
        if !self.is_const(other) {
            // The *original* other side (not its σ-copy) is the honest
            // source: both relate to the same runtime value here.
            sources.push(self.id(other));
        }
        self.out.push(Constraint::Union { x: self.id(v), elems: vec![], sources });
    }

    /// Finds the σ-copy of `of` in `block` carrying the same origin.
    fn find_sibling(
        &self,
        block: sraa_ir::BlockId,
        origin: CopyOrigin,
        of: Value,
    ) -> Option<Value> {
        for (v, data) in self.f.block_insts(block) {
            if let InstKind::Copy { src, origin: o } = &data.kind {
                if *o == origin && *src == of {
                    return Some(v);
                }
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sraa_range::analyze;

    fn prepare(src: &str) -> (Module, RangeAnalysis) {
        let mut m = sraa_minic::compile(src).unwrap();
        sraa_essa::transform_module(&mut m);
        let ranges = analyze(&m);
        (m, ranges)
    }

    /// Constraint count is linear in instruction count (paper Figure 11):
    /// at most one constraint per value-producing instruction plus two per
    /// formal parameter (the pseudo-φ encoding).
    #[test]
    fn constraint_count_is_linear() {
        let (m, ranges) = prepare(
            r#"
            int f(int* v, int n) {
                int s = 0;
                for (int i = 0; i < n; i++) s += v[i];
                return s;
            }
            int main() { int a[4]; return f(a, 4); }
            "#,
        );
        let sys = generate(&m, &ranges, GenConfig::default());
        let mut value_count = 0usize;
        let mut param_count = 0usize;
        for (_, f) in m.functions() {
            param_count += f.params.len();
            for b in f.block_ids() {
                for (_, d) in f.block_insts(b) {
                    if d.has_result() && !matches!(d.kind, InstKind::Const(_)) {
                        value_count += 1;
                    }
                }
            }
        }
        assert!(
            sys.constraints.len() <= value_count + param_count,
            "{} constraints for {value_count} variables + {param_count} params",
            sys.constraints.len()
        );
        // Every variable is defined by at most one constraint.
        let mut defined = std::collections::HashSet::new();
        for c in &sys.constraints {
            assert!(defined.insert(c.defined()), "duplicate constraint for {}", c.defined());
        }
    }

    #[test]
    fn increment_generates_union_rule2() {
        let (m, ranges) = prepare("int f(int x) { return x + 1; }");
        let sys = generate(&m, &ranges, GenConfig::default());
        let ix = VarIndex::new(&m);
        let fid = m.function_by_name("f").unwrap();
        let f = m.function(fid);
        let x = ix.id(fid, f.param_value(0));
        assert!(
            sys.constraints.iter().any(|c| matches!(
                c,
                Constraint::Union { elems, sources, .. }
                    if elems.contains(&x) && sources.contains(&x)
            )),
            "x+1 must yield LT(r) = {{x}} ∪ LT(x): {:?}",
            sys.constraints
        );
    }

    #[test]
    fn subtraction_generates_rule3_pair() {
        let (m, ranges) = prepare("int f(int x) { int y = x - 1; return y + x; }");
        let sys = generate(&m, &ranges, GenConfig::default());
        let ix = VarIndex::new(&m);
        // The SubSplit copy must carry {sub_result} ∪ LT(x).
        let mut found = false;
        for (fid, f) in m.functions() {
            for b in f.block_ids() {
                for (v, d) in f.block_insts(b) {
                    if matches!(d.kind, InstKind::Copy { origin: CopyOrigin::SubSplit { .. }, .. })
                    {
                        let id = ix.id(fid, v);
                        found |= sys.constraints.iter().any(|c| {
                            matches!(c, Constraint::Union { x, elems, .. }
                                if *x == id && !elems.is_empty())
                        });
                    }
                }
            }
        }
        assert!(found, "{:?}", sys.constraints);
    }

    #[test]
    fn params_get_pseudo_phi_from_call_sites() {
        let (m, ranges) = prepare(
            r#"
            int g(int a) { return a; }
            int main() { int x = input(); int y = x + 1; return g(y); }
            "#,
        );
        let sys = generate(&m, &ranges, GenConfig::default());
        let ix = VarIndex::new(&m);
        let g = m.function_by_name("g").unwrap();
        let a = ix.id(g, m.function(g).param_value(0));
        // The param is defined by a Union wrapper over a synthetic Inter.
        let ci = sys.param_union[&a];
        let Constraint::Union { sources, .. } = &sys.constraints[ci] else { panic!() };
        let t = sources[0];
        assert!(t.index() >= ix.len(), "synthetic variable lives beyond the module ids");
        assert!(sys.constraints.iter().any(
            |c| matches!(c, Constraint::Inter { x, sources } if *x == t && sources.len() == 1)
        ));
    }

    #[test]
    fn uncalled_function_params_are_init() {
        let (m, ranges) = prepare("int g(int a) { return a; }");
        let sys = generate(&m, &ranges, GenConfig::default());
        let ix = VarIndex::new(&m);
        let g = m.function_by_name("g").unwrap();
        let a = ix.id(g, m.function(g).param_value(0));
        assert!(sys.constraints.iter().any(|c| matches!(c, Constraint::Init { x } if *x == a)));
        assert!(!sys.param_union.contains_key(&a));
    }

    #[test]
    fn extended_mode_adds_nonstrict_copies() {
        let src = "int f(int x, int n) { if (n >= 0) { return x + n; } return 0; }";
        let (m, ranges) = prepare(src);
        let base = generate(&m, &ranges, GenConfig::default());
        let ext = generate(&m, &ranges, GenConfig { extended: true, ..Default::default() });
        let copies = |sys: &ConstraintSystem| {
            sys.constraints.iter().filter(|c| matches!(c, Constraint::Copy { .. })).count()
        };
        assert!(
            copies(&ext) > copies(&base),
            "extended mode must turn x+n (n≥0) into a copy: {} vs {}",
            copies(&ext),
            copies(&base)
        );
    }

    #[test]
    fn call_sites_recorded_with_const_markers() {
        let (m, ranges) = prepare(
            r#"
            int g(int a, int b) { return a + b; }
            int main() { int x = input(); return g(x, 3); }
            "#,
        );
        let sys = generate(&m, &ranges, GenConfig::default());
        let g = m.function_by_name("g").unwrap();
        let info = &sys.param_info[g.index()];
        assert_eq!(info.sites.len(), 1);
        assert!(info.sites[0][0].is_some(), "x is a variable");
        assert!(info.sites[0][1].is_none(), "3 is a constant");
    }

    /// The scoped-thread fan-out must emit exactly the serial sequence:
    /// force the parallel path with a many-function module and compare
    /// it against the forced-serial reference pass, repeatedly.
    #[test]
    fn parallel_generation_matches_the_forced_serial_pass() {
        let mut src = String::new();
        for i in 0..(PARALLEL_MIN_FUNCTIONS * 3) {
            src.push_str(&format!("int f{i}(int* v, int n) {{ int s = 0; "));
            // Enough straight-line body to clear the instruction floor
            // module-wide, so the fan-out really engages.
            for j in 0..24 {
                src.push_str(&format!("s += v[{j}]; "));
            }
            src.push_str(&format!("for (int k = 0; k < n; k++) s += v[k]; return s + {i}; }}\n"));
        }
        src.push_str("int main() { int a[4]; return f0(a, 4) + f1(a, 3); }\n");
        let (m, ranges) = prepare(&src);
        assert!(m.num_functions() >= PARALLEL_MIN_FUNCTIONS);
        let total: usize =
            (0..m.num_functions()).map(|i| m.function(FuncId::from_index(i)).num_insts()).sum();
        assert!(
            total >= PARALLEL_MIN_INSTRUCTIONS,
            "test module too small to engage the fan-out ({total} insts)"
        );
        let index = VarIndex::new(&m);
        let serial = generate_serial(&m, &ranges, GenConfig::default(), &index);
        for _ in 0..3 {
            let parallel = generate(&m, &ranges, GenConfig::default());
            assert_eq!(
                serial.constraints, parallel.constraints,
                "the fan-out must emit the serial constraint sequence"
            );
            assert_eq!(serial.num_vars, parallel.num_vars);
            assert_eq!(serial.param_union, parallel.param_union);
        }
    }
}
