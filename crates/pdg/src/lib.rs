//! `sraa-pdg` — the Program Dependence Graph with memory nodes.
//!
//! The paper's applicability study (its §4.3 and Figure 12) measures how an
//! alias analysis improves the PDG built by the FlowTracker system: "The
//! PDG is a graph whose vertices represent program variables and memory
//! locations … The more memory nodes the PDG contains, the more precise it
//! is, because if two locations alias, they fall into the same node."
//!
//! [`DepGraph::build`] reproduces that construction: every value is a
//! vertex; every memory access (`load`/`store`) is assigned to a *memory
//! node* — an equivalence class of accesses the given alias analysis could
//! not prove disjoint (union-find over all non-`NoAlias` pairs). Data
//! dependence edges connect operand definitions to users, stores to their
//! memory node and memory nodes to the loads they may feed.
//!
//! Classes are per function: like the paper (whose Csmith programs have a
//! single function plus `main`), we do not merge accesses across function
//! boundaries for either analysis — this keeps the intra-procedural BA and
//! the inter-procedural LT comparable (see the paper's own caveat in §4.3).
//!
//! Besides data dependences, the graph carries Ferrante-style *control
//! dependence* edges (branch terminator → every instruction of each block
//! that is control-dependent on it), computed from post-dominators.
//!
//! The builder is parameterised by any [`AliasAnalysis`]; when driven by
//! the strict-inequality backend it queries the shared
//! `sraa_core::DisambiguationEngine`, whose memoized pair cache absorbs
//! the all-pairs access pattern of the class construction below.

use sraa_alias::{AliasAnalysis, AliasResult};
use sraa_ir::{Cfg, FuncId, InstKind, Module, PostDomTree, Value};

/// A vertex of the dependence graph.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Node {
    /// An SSA value (`function`, `value`).
    Value(FuncId, Value),
    /// A memory node: equivalence class `class` of aliasing accesses.
    Memory(usize),
}

/// The program dependence graph.
#[derive(Clone, Debug)]
pub struct DepGraph {
    /// Vertices.
    pub nodes: Vec<Node>,
    /// Directed data-dependence edges, as indices into `nodes`.
    pub edges: Vec<(usize, usize)>,
    /// Directed control-dependence edges (branch → dependent instruction).
    pub control_edges: Vec<(usize, usize)>,
    /// Number of memory nodes — the paper's Figure 12 metric.
    pub memory_nodes: usize,
    /// Number of static memory accesses ("Static Locations" in Figure 12,
    /// the upper bound on memory nodes).
    pub static_accesses: usize,
}

impl DepGraph {
    /// Builds the PDG of `module` with `aa` deciding memory-node merging.
    pub fn build(module: &Module, aa: &dyn AliasAnalysis) -> DepGraph {
        let mut nodes = Vec::new();
        let mut edges = Vec::new();
        let mut control_edges = Vec::new();
        let mut value_node = Vec::new(); // (fid, v) -> node index, via per-func offset
        let mut offsets = Vec::new();
        for (_, f) in module.functions() {
            offsets.push(nodes.len());
            for v in f.value_ids() {
                value_node.push(nodes.len());
                nodes.push(Node::Value(FuncId::from_index(offsets.len() - 1), v));
            }
            let _ = f;
        }
        let node_of = |fid: FuncId, v: Value| value_node[offsets[fid.index()] + v.index()];

        // Collect accesses and build per-function alias classes.
        let mut memory_nodes = 0usize;
        let mut static_accesses = 0usize;
        for (fid, f) in module.functions() {
            let mut accesses: Vec<(Value, Value, bool)> = Vec::new(); // (inst, ptr, is_store)
            for b in f.block_ids() {
                for (v, data) in f.block_insts(b) {
                    match &data.kind {
                        InstKind::Load { ptr } => accesses.push((v, *ptr, false)),
                        InstKind::Store { ptr, .. } => accesses.push((v, *ptr, true)),
                        _ => {}
                    }
                }
            }
            static_accesses += accesses.len();

            // Union-find over accesses.
            let mut parent: Vec<usize> = (0..accesses.len()).collect();
            fn find(parent: &mut Vec<usize>, i: usize) -> usize {
                if parent[i] != i {
                    let r = find(parent, parent[i]);
                    parent[i] = r;
                }
                parent[i]
            }
            for i in 0..accesses.len() {
                for j in i + 1..accesses.len() {
                    let (ri, rj) = (find(&mut parent, i), find(&mut parent, j));
                    if ri == rj {
                        continue;
                    }
                    if aa.alias(module, fid, accesses[i].1, accesses[j].1) != AliasResult::NoAlias {
                        parent[ri] = rj;
                    }
                }
            }

            // Materialise memory nodes and dependence edges.
            let mut class_node: std::collections::HashMap<usize, usize> = Default::default();
            for (i, &(inst, _, is_store)) in accesses.iter().enumerate() {
                let root = find(&mut parent, i);
                let mem = *class_node.entry(root).or_insert_with(|| {
                    let n = nodes.len();
                    nodes.push(Node::Memory(memory_nodes));
                    memory_nodes += 1;
                    n
                });
                if is_store {
                    edges.push((node_of(fid, inst), mem));
                } else {
                    edges.push((mem, node_of(fid, inst)));
                }
            }

            // Ordinary def → use edges.
            for b in f.block_ids() {
                for (v, data) in f.block_insts(b) {
                    data.kind.for_each_operand(|op| {
                        edges.push((node_of(fid, op), node_of(fid, v)));
                    });
                }
            }

            // Control-dependence edges (Ferrante et al.): the governing
            // branch's terminator controls every instruction of the block.
            let cfg = Cfg::compute(f);
            let pdt = PostDomTree::compute(f, &cfg);
            for (b_idx, controllers) in pdt.control_dependence(f, &cfg).iter().enumerate() {
                let b = sraa_ir::BlockId::from_index(b_idx);
                for &a in controllers {
                    let Some(branch) = f.terminator(a) else { continue };
                    for (v, _) in f.block_insts(b) {
                        control_edges.push((node_of(fid, branch), node_of(fid, v)));
                    }
                }
            }
        }

        DepGraph { nodes, edges, control_edges, memory_nodes, static_accesses }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sraa_alias::{BasicAliasAnalysis, Combined, StrictInequalityAa};

    fn graph_counts(src: &str) -> (usize, usize, usize) {
        // (BA nodes, BA+LT nodes, static accesses)
        let mut m = sraa_minic::compile(src).unwrap();
        let lt = StrictInequalityAa::new(&mut m);
        let ba = BasicAliasAnalysis::new(&m);
        let g_ba = DepGraph::build(&m, &ba);
        let combined =
            Combined::new(vec![Box::new(BasicAliasAnalysis::new(&m)), Box::new(lt.clone())]);
        let g_both = DepGraph::build(&m, &combined);
        assert_eq!(g_ba.static_accesses, g_both.static_accesses);
        (g_ba.memory_nodes, g_both.memory_nodes, g_ba.static_accesses)
    }

    #[test]
    fn distinct_arrays_get_distinct_nodes_under_ba() {
        let (ba, both, stat) = graph_counts(
            r#"
            int main() {
                int a[4]; int b[4];
                a[0] = 1;
                b[0] = 2;
                return a[0] + b[0];
            }
            "#,
        );
        assert_eq!(stat, 4);
        assert!(ba >= 2, "two allocation sites must split: {ba}");
        assert!(both >= ba);
    }

    #[test]
    fn lt_splits_vi_vj_nodes_ba_does_not() {
        let (ba, both, _) = graph_counts(
            r#"
            void f(int* v, int n) {
                for (int i = 0, j = n; i < j; i++, j--) v[i] = v[j];
            }
            "#,
        );
        assert!(both > ba, "LT must add memory nodes: BA={ba}, BA+LT={both}");
    }

    #[test]
    fn memory_nodes_bounded_by_static_accesses() {
        let (ba, both, stat) = graph_counts(
            r#"
            int g[16];
            int main() {
                int s = 0;
                for (int i = 0; i + 2 < 16; i++) {
                    g[i] = i;
                    s += g[i + 1] * g[i + 2];
                }
                return s;
            }
            "#,
        );
        assert!(ba <= stat && both <= stat);
        assert!(both >= ba);
    }

    #[test]
    fn single_node_without_any_analysis() {
        // A degenerate analysis that always answers MayAlias yields at
        // most one memory node per function ("In the absence of any alias
        // information, the PDG contains at most one memory node").
        struct NoInfo;
        impl AliasAnalysis for NoInfo {
            fn name(&self) -> String {
                "none".into()
            }
            fn alias(&self, _: &Module, _: FuncId, _: Value, _: Value) -> AliasResult {
                AliasResult::MayAlias
            }
        }
        let m = sraa_minic::compile(
            "int main() { int a[4]; int b[4]; a[0] = 1; b[1] = 2; return a[0] + b[3]; }",
        )
        .unwrap();
        let g = DepGraph::build(&m, &NoInfo);
        assert_eq!(g.memory_nodes, 1);
    }

    #[test]
    fn control_dependence_edges_exist_for_branches() {
        let m = sraa_minic::compile(
            "int main() { int a[4]; int x = input(); if (x < 2) a[0] = 1; return a[0]; }",
        )
        .unwrap();
        let ba = BasicAliasAnalysis::new(&m);
        let g = DepGraph::build(&m, &ba);
        assert!(
            !g.control_edges.is_empty(),
            "the guarded store must be control-dependent on the branch"
        );
        // Every control edge source is a value node (the branch terminator).
        for &(s, _) in &g.control_edges {
            assert!(matches!(g.nodes[s], Node::Value(..)));
        }
    }

    #[test]
    fn edges_connect_defs_to_uses_and_memory() {
        let m = sraa_minic::compile("int main() { int a[2]; a[0] = 7; return a[0]; }").unwrap();
        let ba = BasicAliasAnalysis::new(&m);
        let g = DepGraph::build(&m, &ba);
        assert!(!g.edges.is_empty());
        // At least one edge into a memory node (the store) and one out
        // (the load).
        let mem_in = g.edges.iter().any(|&(_, d)| matches!(g.nodes[d], Node::Memory(_)));
        let mem_out = g.edges.iter().any(|&(s, _)| matches!(g.nodes[s], Node::Memory(_)));
        assert!(mem_in && mem_out);
    }
}
