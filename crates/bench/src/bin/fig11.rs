//! Figure 11 — scalability of constraint generation: the number of
//! constraints is linear in the number of IR instructions. The paper
//! reports R² = 0.992 over its 50 largest benchmarks.

use sraa_bench::{r_squared, suite_n, Prepared};

fn main() {
    // The 50 largest of suite + spec, like the paper's selection.
    let mut ws = sraa_synth::test_suite(suite_n());
    ws.extend(sraa_synth::spec_all());

    let mut rows: Vec<(String, usize, usize)> = Vec::new(); // (name, instrs, constraints)
    for w in &ws {
        let p = Prepared::new(w);
        rows.push((p.name.clone(), p.stats.instructions, p.lt.engine().stats().constraints));
    }
    rows.sort_by_key(|(_, instrs, _)| *instrs);
    let rows: Vec<_> = rows.into_iter().rev().take(50).rev().collect();

    println!("{:<22} {:>14} {:>14}", "benchmark", "# instructions", "# constraints");
    for (name, instrs, cs) in &rows {
        println!("{name:<22} {instrs:>14} {cs:>14}");
    }

    let xs: Vec<f64> = rows.iter().map(|(_, i, _)| *i as f64).collect();
    let ys: Vec<f64> = rows.iter().map(|(_, _, c)| *c as f64).collect();
    let r2 = r_squared(&xs, &ys);
    println!();
    println!("R²(constraints, instructions) = {r2:.4}   (paper: 0.992)");
    assert!(r2 > 0.9, "constraint generation must look linear, got R² = {r2}");
}
