//! End-to-end smoke tests for the `sraa` CLI binary: every subcommand is
//! exercised on a tiny MiniC program so the binary path — argument
//! parsing, file loading, and each driver — is covered, not just the
//! libraries.

use std::path::PathBuf;
use std::process::{Command, Output};

const TINY: &str = r#"
int main() {
  int a[8];
  int i;
  for (i = 0; i < 8; i = i + 1) {
    a[i] = i * 2;
  }
  return a[3];
}
"#;

fn tiny_file() -> PathBuf {
    // Written exactly once: tests run in parallel, and rewriting would
    // truncate the file while another test's subprocess is reading it.
    static TINY_PATH: std::sync::OnceLock<PathBuf> = std::sync::OnceLock::new();
    TINY_PATH
        .get_or_init(|| {
            let path =
                std::env::temp_dir().join(format!("sraa_cli_smoke_{}.c", std::process::id()));
            std::fs::write(&path, TINY).expect("can write temp MiniC file");
            path
        })
        .clone()
}

fn sraa(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_sraa")).args(args).output().expect("sraa binary runs")
}

fn stdout(out: &Output) -> String {
    String::from_utf8_lossy(&out.stdout).into_owned()
}

#[test]
fn no_args_prints_usage_and_fails() {
    let out = sraa(&[]);
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("usage: sraa"));
}

#[test]
fn missing_file_is_a_clean_error() {
    let out = sraa(&["compile", "/nonexistent/sraa_smoke.c"]);
    assert_eq!(out.status.code(), Some(1));
    assert!(String::from_utf8_lossy(&out.stderr).contains("cannot read"));
}

#[test]
fn compile_prints_ssa_ir() {
    let f = tiny_file();
    let out = sraa(&["compile", f.to_str().unwrap()]);
    assert!(out.status.success(), "stderr: {}", String::from_utf8_lossy(&out.stderr));
    let ir = stdout(&out);
    assert!(ir.contains("func @main"), "no function header in:\n{ir}");
    assert!(ir.contains("alloca"), "array allocation missing in:\n{ir}");
}

#[test]
fn compile_essa_reports_sigma_stats() {
    let f = tiny_file();
    let out = sraa(&["compile", f.to_str().unwrap(), "--essa"]);
    assert!(out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("e-SSA"));
}

#[test]
fn run_interprets_main() {
    let f = tiny_file();
    let out = sraa(&["run", f.to_str().unwrap()]);
    assert!(out.status.success());
    // a[3] = 3 * 2
    assert!(stdout(&out).contains("result: Some(6)"), "got: {}", stdout(&out));
}

#[test]
fn eval_summarises_all_analyses() {
    let f = tiny_file();
    let out = sraa(&["eval", f.to_str().unwrap()]);
    assert!(out.status.success());
    let summary = stdout(&out);
    for analysis in ["BA", "LT", "CF", "ST", "PT", "BA+LT"] {
        assert!(summary.contains(analysis), "missing {analysis} row in:\n{summary}");
    }
}

#[test]
fn lt_prints_strict_inequality_sets() {
    let f = tiny_file();
    let out = sraa(&["lt", f.to_str().unwrap(), "main"]);
    assert!(out.status.success());
    let text = stdout(&out);
    assert!(text.contains("LT sets of @main"), "got:\n{text}");
    assert!(text.contains("constraints"), "missing solver stats in:\n{text}");
}

#[test]
fn lt_solver_flag_selects_strategy_without_changing_sets() {
    let f = tiny_file();
    let path = f.to_str().unwrap();
    let scc = sraa(&["lt", path, "main", "--solver", "scc"]);
    let wl = sraa(&["lt", path, "main", "--solver", "worklist"]);
    assert!(scc.status.success() && wl.status.success());
    let (scc, wl) = (stdout(&scc), stdout(&wl));
    assert!(scc.contains("[scc solver]"), "got:\n{scc}");
    assert!(wl.contains("[worklist solver]"), "got:\n{wl}");
    // Identical LT sets: only the stats line (strategy name + work
    // counter) may differ.
    fn sets(s: &str) -> Vec<String> {
        s.lines().filter(|l| l.contains("LT(")).map(str::to_owned).collect()
    }
    assert_eq!(sets(&scc), sets(&wl), "solver strategies must print identical LT sets");
}

#[test]
fn solver_flag_defaults_to_scc() {
    let f = tiny_file();
    let out = sraa(&["lt", f.to_str().unwrap(), "main"]);
    assert!(out.status.success());
    assert!(stdout(&out).contains("[scc solver]"), "got: {}", stdout(&out));
}

#[test]
fn solver_flag_rejects_unknown_strategies() {
    let f = tiny_file();
    let out = sraa(&["eval", f.to_str().unwrap(), "--solver", "magic"]);
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown solver"));
    let out = sraa(&["eval", f.to_str().unwrap(), "--solver"]);
    assert_eq!(out.status.code(), Some(2));
}

#[test]
fn lattice_flag_accepts_every_backend_with_identical_output() {
    let f = tiny_file();
    let path = f.to_str().unwrap();
    let auto = sraa(&["lt", path, "main", "--lattice", "auto"]);
    assert!(auto.status.success(), "stderr: {}", stderr_of(&auto));
    // Storage is invisible: every backend prints byte-identical sets,
    // stats and pop counts, and omitting the flag means auto.
    let bare = sraa(&["lt", path, "main"]);
    assert_eq!(stdout(&auto), stdout(&bare), "default must be --lattice auto");
    for backend in ["arc", "dense"] {
        let out = sraa(&["lt", path, "main", "--lattice", backend]);
        assert!(out.status.success(), "--lattice {backend}: {}", stderr_of(&out));
        assert_eq!(stdout(&auto), stdout(&out), "--lattice {backend} changed the output");
    }
    // `eval` accepts it too, on both solver strategies.
    let a = sraa(&["eval", path, "--lattice", "arc", "--solver", "worklist"]);
    let d = sraa(&["eval", path, "--lattice", "dense", "--solver", "worklist"]);
    assert!(a.status.success() && d.status.success());
    assert_eq!(stdout(&a), stdout(&d), "eval tallies must not depend on the backend");
}

#[test]
fn lattice_flag_rejects_unknown_backends() {
    let f = tiny_file();
    let out = sraa(&["eval", f.to_str().unwrap(), "--lattice", "sparse"]);
    assert_eq!(out.status.code(), Some(2));
    assert!(stderr_of(&out).contains("unknown lattice backend"), "got: {}", stderr_of(&out));
    let out = sraa(&["eval", f.to_str().unwrap(), "--lattice"]);
    assert_eq!(out.status.code(), Some(2));
}

#[test]
fn eval_accepts_solver_flag_with_identical_summary() {
    let f = tiny_file();
    let path = f.to_str().unwrap();
    let scc = sraa(&["eval", path, "--solver", "scc"]);
    let wl = sraa(&["eval", path, "--solver", "worklist"]);
    assert!(scc.status.success() && wl.status.success());
    assert_eq!(stdout(&scc), stdout(&wl), "verdict tallies must not depend on the strategy");
}

#[test]
fn repeated_lt_runs_are_byte_identical() {
    let f = tiny_file();
    let path = f.to_str().unwrap();
    let first = sraa(&["lt", path, "main"]);
    assert!(first.status.success());
    for _ in 0..2 {
        let again = sraa(&["lt", path, "main"]);
        assert_eq!(stdout(&first), stdout(&again), "lt output must be deterministic");
    }
}

const CALLS: &str = r#"
int* advance(int* p, int k) {
  if (k > 0) { return p + k; }
  return p + 1;
}
int use_helper(int* v, int n) {
  int acc = 0;
  for (int i = 1; i + 4 < n; i++) {
    int* q = advance(v, i);
    *q = i;
    *v = acc;
    acc += *q;
  }
  return acc;
}
int main() {
  int a[16];
  for (int i = 0; i < 16; i++) a[i] = i;
  return use_helper(a, 12);
}
"#;

fn calls_file() -> PathBuf {
    static CALLS_PATH: std::sync::OnceLock<PathBuf> = std::sync::OnceLock::new();
    CALLS_PATH
        .get_or_init(|| {
            let path =
                std::env::temp_dir().join(format!("sraa_cli_calls_{}.c", std::process::id()));
            std::fs::write(&path, CALLS).expect("can write temp MiniC file");
            path
        })
        .clone()
}

/// The `LT` row of an `eval` summary as (no-alias, may, must).
fn lt_row(summary: &str) -> (u64, u64, u64) {
    let line = summary
        .lines()
        .find(|l| l.split_whitespace().next() == Some("LT"))
        .unwrap_or_else(|| panic!("no LT row in:\n{summary}"));
    let mut it = line.split_whitespace().skip(1).map(|n| n.parse().expect("count"));
    (it.next().unwrap(), it.next().unwrap(), it.next().unwrap())
}

#[test]
fn unknown_flags_are_rejected_with_usage() {
    let f = tiny_file();
    let path = f.to_str().unwrap();
    // Pre-fix regression: anything left after `--solver` was stripped
    // used to be silently ignored, hiding typos like `--interporc`.
    for args in [
        vec!["eval", path, "--frobnicate"],
        vec!["eval", path, "--solver", "scc", "--interporc"],
        vec!["lt", path, "main", "--bogus"],
        vec!["compile", path, "--interproc"], // not an engine subcommand
        vec!["opt", path, "--ba", "--wat"],
        vec!["pdg", path, "--wat"],
        vec!["run", path, "--wat"],
        vec!["gen", "1", "2", "--wat"],
    ] {
        let out = sraa(&args);
        assert_eq!(out.status.code(), Some(2), "args {args:?} must exit 2");
        let err = String::from_utf8_lossy(&out.stderr).into_owned();
        assert!(err.contains("unknown flag"), "args {args:?}: {err}");
        assert!(err.contains("usage:"), "args {args:?}: {err}");
    }
}

#[test]
fn eval_interproc_gains_no_alias_verdicts() {
    let f = calls_file();
    let path = f.to_str().unwrap();
    let intra = sraa(&["eval", path]);
    let inter = sraa(&["eval", path, "--interproc"]);
    assert!(intra.status.success() && inter.status.success());
    let (intra_na, _, _) = lt_row(&stdout(&intra));
    let (inter_na, _, _) = lt_row(&stdout(&inter));
    assert!(
        inter_na > intra_na,
        "summaries must add LT no-alias verdicts: {intra_na} -> {inter_na}"
    );
}

#[test]
fn interproc_output_is_deterministic_and_solver_independent() {
    let f = calls_file();
    let path = f.to_str().unwrap();
    let first = sraa(&["eval", path, "--interproc"]);
    assert!(first.status.success());
    let again = sraa(&["eval", path, "--interproc"]);
    assert_eq!(stdout(&first), stdout(&again), "interproc eval must be deterministic");
    let wl = sraa(&["eval", path, "--interproc", "--solver", "worklist"]);
    assert_eq!(stdout(&first), stdout(&wl), "verdicts must not depend on the solver strategy");
}

#[test]
fn lt_interproc_reports_summary_stats() {
    let f = calls_file();
    let path = f.to_str().unwrap();
    let out = sraa(&["lt", path, "use_helper", "--interproc"]);
    assert!(out.status.success());
    let text = stdout(&out);
    assert!(text.contains("interproc:"), "missing summary stats line in:\n{text}");
    assert!(text.contains("summary fact(s)"), "got:\n{text}");
    // Intra mode must not print the summary line.
    let intra = sraa(&["lt", path, "use_helper"]);
    assert!(!stdout(&intra).contains("interproc:"));
}

fn stderr_of(out: &Output) -> String {
    String::from_utf8_lossy(&out.stderr).into_owned()
}

/// A per-test cache path (tests run in parallel; never share one file).
fn cache_path(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("sraa_cli_cache_{tag}_{}.bin", std::process::id()))
}

#[test]
fn summary_cache_warm_run_is_byte_identical_with_full_hits() {
    let f = calls_file();
    let path = f.to_str().unwrap();
    let cache = cache_path("warm");
    std::fs::remove_file(&cache).ok();
    let cache = cache.to_str().unwrap();

    let plain = sraa(&["eval", path, "--interproc"]);
    let cold = sraa(&["eval", path, "--summary-cache", cache]);
    let warm = sraa(&["eval", path, "--summary-cache", cache]);
    assert!(plain.status.success() && cold.status.success() && warm.status.success());
    // stdout must not betray the cache in any way.
    assert_eq!(stdout(&plain), stdout(&cold), "a cold cached run must match --interproc");
    assert_eq!(stdout(&cold), stdout(&warm), "warm and cold runs must be byte-identical");
    // The outcome report lives on stderr.
    assert!(stderr_of(&cold).contains("(0.0% hit rate)"), "cold: {}", stderr_of(&cold));
    assert!(stderr_of(&warm).contains("(100.0% hit rate)"), "warm: {}", stderr_of(&warm));
    assert!(stderr_of(&warm).contains("0 miss(es)"), "warm: {}", stderr_of(&warm));
    std::fs::remove_file(cache).ok();
}

#[test]
fn summary_cache_works_on_every_engine_verb() {
    let f = calls_file();
    let path = f.to_str().unwrap();
    for verb in
        [vec!["eval", path], vec!["lt", path, "use_helper"], vec!["pdg", path], vec!["opt", path]]
    {
        let cache = cache_path(&format!("verb_{}", verb[0]));
        std::fs::remove_file(&cache).ok();
        let mut warmed = verb.clone();
        warmed.extend(["--summary-cache", cache.to_str().unwrap()]);
        let cold = sraa(&warmed);
        let warm = sraa(&warmed);
        assert!(cold.status.success() && warm.status.success(), "{verb:?}");
        // Analysis *results* must be byte-identical. The `lt` verb also
        // prints a work-statistics line ("… N solve(s)") that honestly
        // reports the warm run's skipped solves — exclude only that.
        let results = |out: &Output| -> Vec<String> {
            stdout(out)
                .lines()
                .filter(|l| !l.starts_with("interproc:"))
                .map(str::to_owned)
                .collect()
        };
        assert_eq!(results(&cold), results(&warm), "{verb:?}: warm stdout differs");
        assert!(stderr_of(&warm).contains("(100.0% hit rate)"), "{verb:?}: {}", stderr_of(&warm));
        std::fs::remove_file(&cache).ok();
    }
    // A dangling `--summary-cache` with no value is a usage error.
    let out = sraa(&["eval", path, "--summary-cache"]);
    assert_eq!(out.status.code(), Some(2));
}

/// Corrupted, truncated, version-mismatched and wrong-module cache files
/// must all fall back to a cold solve: exit 0, stdout identical to a
/// cacheless run, a warning on stderr — never a panic or a stale result.
#[test]
fn defective_cache_files_fall_back_to_cold_with_a_warning() {
    let f = calls_file();
    let path = f.to_str().unwrap();
    let reference = sraa(&["eval", path, "--interproc"]);
    assert!(reference.status.success());

    let seed = cache_path("defect_seed");
    std::fs::remove_file(&seed).ok();
    let cold = sraa(&["eval", path, "--summary-cache", seed.to_str().unwrap()]);
    assert!(cold.status.success());
    let good = std::fs::read(&seed).expect("cache written");

    let mut corrupted = good.clone();
    corrupted[good.len() / 2] ^= 0x40;
    let truncated = good[..good.len() / 2].to_vec();
    // Patch the format version (offset 8, little-endian u16) and re-seal
    // the checksum so the *version* check — not the checksum — fires.
    let mut vnext = good.clone();
    vnext[8..10].copy_from_slice(&(sraa_core::FORMAT_VERSION + 1).to_le_bytes());
    let payload_len = vnext.len() - 8;
    let mut h = sraa_ir::Fnv64::new();
    h.write(&vnext[..payload_len]);
    let checksum = h.finish().to_le_bytes();
    vnext[payload_len..].copy_from_slice(&checksum);
    // A cache honestly written for a *different* program.
    let wrong = {
        let tiny_cache = cache_path("defect_tiny");
        std::fs::remove_file(&tiny_cache).ok();
        let out = sraa(&[
            "eval",
            tiny_file().to_str().unwrap(),
            "--summary-cache",
            tiny_cache.to_str().unwrap(),
        ]);
        assert!(out.status.success());
        let bytes = std::fs::read(&tiny_cache).unwrap();
        std::fs::remove_file(&tiny_cache).ok();
        bytes
    };

    for (tag, bytes) in
        [("corrupted", corrupted), ("truncated", truncated), ("version", vnext), ("wrong", wrong)]
    {
        let cache = cache_path(&format!("defect_{tag}"));
        std::fs::write(&cache, &bytes).unwrap();
        let out = sraa(&["eval", path, "--summary-cache", cache.to_str().unwrap()]);
        assert_eq!(out.status.code(), Some(0), "{tag}: must fall back, not fail");
        assert_eq!(
            stdout(&out),
            stdout(&reference),
            "{tag}: fallback output must match a cold run exactly"
        );
        assert!(
            stderr_of(&out).contains("summary-cache warning"),
            "{tag}: no warning on stderr: {}",
            stderr_of(&out)
        );
        // The defective file was healed: the next run is fully warm.
        let again = sraa(&["eval", path, "--summary-cache", cache.to_str().unwrap()]);
        assert!(again.status.success());
        assert!(
            stderr_of(&again).contains("(100.0% hit rate)"),
            "{tag}: rewrite must heal the cache: {}",
            stderr_of(&again)
        );
        std::fs::remove_file(&cache).ok();
    }
    std::fs::remove_file(&seed).ok();
}

#[test]
fn pdg_counts_memory_nodes() {
    let f = tiny_file();
    let out = sraa(&["pdg", f.to_str().unwrap()]);
    assert!(out.status.success());
    assert!(stdout(&out).contains("memory nodes"), "got: {}", stdout(&out));
}

#[test]
fn opt_preserves_program_behaviour() {
    let f = tiny_file();
    let out = sraa(&["opt", f.to_str().unwrap()]);
    assert!(out.status.success(), "stderr: {}", String::from_utf8_lossy(&out.stderr));
    // The optimised IR is printed on stdout and must still be a module.
    assert!(stdout(&out).contains("func @main"));
}

#[test]
fn gen_emits_compilable_minic() {
    let out = sraa(&["gen", "7", "2"]);
    assert!(out.status.success());
    let source = stdout(&out);
    assert!(source.contains("int main"), "generator output:\n{source}");
    // The generated program must round-trip through our own front end.
    let path = std::env::temp_dir().join(format!("sraa_cli_gen_{}.c", std::process::id()));
    std::fs::write(&path, &source).unwrap();
    let out = sraa(&["compile", path.to_str().unwrap()]);
    assert!(out.status.success(), "generated program failed to compile");
}

/// Runs `sraa` with a controlled `SRAA_JOBS` (removed unless supplied),
/// so the jobs tests are immune to whatever the outer environment set.
fn sraa_jobs_env(args: &[&str], sraa_jobs: Option<&str>) -> Output {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_sraa"));
    cmd.args(args).env_remove("SRAA_JOBS");
    if let Some(v) = sraa_jobs {
        cmd.env("SRAA_JOBS", v);
    }
    cmd.output().expect("sraa binary runs")
}

#[test]
fn jobs_flag_accepted_on_every_engine_verb_with_identical_stdout() {
    let f = calls_file();
    let path = f.to_str().unwrap();
    for verb in [
        vec!["eval", path, "--interproc"],
        vec!["lt", path, "use_helper", "--interproc"],
        vec!["pdg", path, "--interproc"],
        vec!["opt", path, "--interproc"],
    ] {
        let base = sraa_jobs_env(&verb, None);
        assert!(base.status.success(), "{verb:?}: {}", stderr_of(&base));
        for jobs in ["1", "2", "4"] {
            let mut args = verb.clone();
            args.extend(["--jobs", jobs]);
            let out = sraa_jobs_env(&args, None);
            assert!(out.status.success(), "{args:?}: {}", stderr_of(&out));
            assert_eq!(
                stdout(&base),
                stdout(&out),
                "stdout must be byte-identical at --jobs {jobs} for {verb:?}"
            );
            assert!(
                stderr_of(&out).contains(&format!("# jobs: {jobs} (flag)")),
                "{args:?} stderr: {}",
                stderr_of(&out)
            );
        }
        // The default (no flag, no env) stays silent about jobs.
        assert!(!stderr_of(&base).contains("# jobs:"), "{verb:?}: {}", stderr_of(&base));
    }
}

#[test]
fn jobs_flag_rejects_zero_garbage_and_missing_values() {
    let f = tiny_file();
    let path = f.to_str().unwrap();
    for bad in ["0", "-2", "four", "2x", ""] {
        let out = sraa_jobs_env(&["eval", path, "--jobs", bad], None);
        assert_eq!(out.status.code(), Some(2), "--jobs {bad:?} must exit 2");
        assert!(stderr_of(&out).contains("invalid --jobs"), "got: {}", stderr_of(&out));
    }
    let out = sraa_jobs_env(&["eval", path, "--jobs"], None);
    assert_eq!(out.status.code(), Some(2), "trailing --jobs must exit 2");
    assert!(stderr_of(&out).contains("--jobs needs a value"), "got: {}", stderr_of(&out));
}

#[test]
fn jobs_env_is_honoured_and_loses_to_the_flag() {
    let f = calls_file();
    let path = f.to_str().unwrap();
    let base = sraa_jobs_env(&["eval", path, "--interproc"], None);

    // Environment alone: reported as such, stdout unchanged.
    let env_only = sraa_jobs_env(&["eval", path, "--interproc"], Some("3"));
    assert!(env_only.status.success());
    assert!(stderr_of(&env_only).contains("# jobs: 3 (env)"), "got: {}", stderr_of(&env_only));
    assert_eq!(stdout(&base), stdout(&env_only));

    // An explicit flag beats the environment.
    let both = sraa_jobs_env(&["eval", path, "--interproc", "--jobs", "2"], Some("7"));
    assert!(both.status.success());
    assert!(stderr_of(&both).contains("# jobs: 2 (flag)"), "got: {}", stderr_of(&both));
    assert!(!stderr_of(&both).contains("(env)"));
    assert_eq!(stdout(&base), stdout(&both));

    // Invalid environment values are ignored, not fatal.
    let bad_env = sraa_jobs_env(&["eval", path, "--interproc"], Some("zero"));
    assert!(bad_env.status.success());
    assert!(!stderr_of(&bad_env).contains("# jobs:"), "got: {}", stderr_of(&bad_env));
    assert_eq!(stdout(&base), stdout(&bad_env));
}

// ---------------------------------------------------------------------
// serve / query: flag validation and the full daemon round trip.
// ---------------------------------------------------------------------

#[test]
fn serve_and_query_validate_flags_before_touching_the_network() {
    // No endpoint at all is a usage error.
    let out = sraa(&["serve"]);
    assert_eq!(out.status.code(), Some(2));
    assert!(stderr_of(&out).contains("need an endpoint"), "got: {}", stderr_of(&out));
    assert!(stderr_of(&out).contains("usage:"), "got: {}", stderr_of(&out));
    let out = sraa(&["query", "stats"]);
    assert_eq!(out.status.code(), Some(2));
    assert!(stderr_of(&out).contains("need an endpoint"), "got: {}", stderr_of(&out));

    // `--socket` and `--addr` are mutually exclusive, with a clear
    // diagnostic rather than one silently winning.
    for argv in [
        vec!["serve", "--socket", "/tmp/x.sock", "--addr", "127.0.0.1:1"],
        vec!["query", "--socket", "/tmp/x.sock", "--addr", "127.0.0.1:1", "stats"],
    ] {
        let out = sraa(&argv);
        assert_eq!(out.status.code(), Some(2), "{argv:?}");
        assert!(stderr_of(&out).contains("mutually exclusive"), "{argv:?}: {}", stderr_of(&out));
    }

    // Unknown flags exit 2 with usage — and are rejected before any
    // connect, so a dead endpoint doesn't turn a typo into exit 1.
    for argv in [
        vec!["serve", "--socket", "/tmp/x.sock", "--wat"],
        vec!["query", "--socket", "/tmp/sraa_no_such_daemon.sock", "--wat", "stats"],
    ] {
        let out = sraa(&argv);
        assert_eq!(out.status.code(), Some(2), "{argv:?}");
        assert!(stderr_of(&out).contains("unknown flag"), "{argv:?}: {}", stderr_of(&out));
        assert!(stderr_of(&out).contains("usage:"), "{argv:?}: {}", stderr_of(&out));
    }

    // A valid endpoint but no request is usage, checked before connecting.
    let out = sraa(&["query", "--socket", "/tmp/sraa_no_such_daemon.sock"]);
    assert_eq!(out.status.code(), Some(2));
    assert!(stderr_of(&out).contains("usage:"), "got: {}", stderr_of(&out));

    // An endpoint with no daemon behind it is a clean runtime error.
    let out = sraa(&["query", "--socket", "/tmp/sraa_no_such_daemon.sock", "stats"]);
    assert_eq!(out.status.code(), Some(1));
    assert!(stderr_of(&out).contains("cannot connect"), "got: {}", stderr_of(&out));
}

#[cfg(unix)]
#[test]
fn daemon_round_trip_matches_one_shot_eval_and_shuts_down_cleanly() {
    let f = calls_file();
    let path = f.to_str().unwrap();
    let sock = std::env::temp_dir().join(format!("sraa_cli_daemon_{}.sock", std::process::id()));
    std::fs::remove_file(&sock).ok();
    let sock_s = sock.to_str().unwrap().to_string();
    let mut daemon = Command::new(env!("CARGO_BIN_EXE_sraa"))
        .args(["serve", "--socket", &sock_s])
        .stderr(std::process::Stdio::piped())
        .spawn()
        .expect("daemon starts");
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(30);
    while !sock.exists() {
        assert!(std::time::Instant::now() < deadline, "daemon never bound its socket");
        std::thread::sleep(std::time::Duration::from_millis(20));
    }
    let q = |args: &[&str]| -> Output {
        let mut full = vec!["query", "--socket", sock_s.as_str()];
        full.extend_from_slice(args);
        sraa(&full)
    };

    let up = q(&["upload", "demo", path]);
    assert!(up.status.success(), "upload: {}", stderr_of(&up));
    assert!(stdout(&up).contains("uploaded demo: 3 function(s)"), "got: {}", stdout(&up));
    assert!(stderr_of(&up).contains("# summary-cache:"), "got: {}", stderr_of(&up));

    // The resident answer is byte-identical to one-shot `eval --interproc`
    // (the daemon is always interprocedural).
    let resident = q(&["eval", "demo"]);
    let oneshot = sraa(&["eval", path, "--interproc"]);
    assert!(resident.status.success() && oneshot.status.success());
    assert_eq!(stdout(&resident), stdout(&oneshot), "resident eval must match one-shot eval");

    // A batch file runs request-per-line over one connection; `#` lines
    // are comments.
    let batch = std::env::temp_dir().join(format!("sraa_cli_batch_{}.txt", std::process::id()));
    std::fs::write(&batch, "# smoke batch\neval demo\npairs demo use_helper\nstats\n").unwrap();
    let out = q(&["batch", batch.to_str().unwrap()]);
    assert!(out.status.success(), "batch: {}", stderr_of(&out));
    assert!(stdout(&out).contains("BA+LT"), "batch eval missing: {}", stdout(&out));
    assert!(stdout(&out).contains("uploads: 1"), "batch stats missing: {}", stdout(&out));
    assert!(stderr_of(&out).contains("pair(s)"), "batch pairs count missing: {}", stderr_of(&out));
    std::fs::remove_file(&batch).ok();

    // Graceful shutdown: the daemon drains, exits 0, removes its socket
    // file and dumps a stats line on stderr.
    let bye = q(&["shutdown"]);
    assert!(bye.status.success(), "shutdown: {}", stderr_of(&bye));
    let mut err_pipe = daemon.stderr.take().expect("stderr piped");
    let status = daemon.wait().expect("daemon exits");
    assert_eq!(status.code(), Some(0), "daemon must exit cleanly after shutdown");
    let mut daemon_err = String::new();
    std::io::Read::read_to_string(&mut err_pipe, &mut daemon_err).expect("read daemon stderr");
    assert!(daemon_err.contains("# serve: listening on"), "got: {daemon_err}");
    assert!(daemon_err.contains("connection(s)"), "no stats line in: {daemon_err}");
    assert!(!sock.exists(), "socket file must be removed on shutdown");
}
