//! Shape assertions for the headline results of the paper's evaluation.
//!
//! We do not (and cannot) match the paper's absolute numbers — the
//! substrate is a synthetic workload suite, not SPEC on the authors'
//! testbed — but the *shape* of every headline claim must hold:
//! who wins, on which benchmark families, and by roughly what factor.
//! DESIGN.md's per-experiment index lists the mapping.

use sraa_bench::Prepared;

fn rates(name: &str) -> (f64, f64, f64, u64) {
    let w = sraa_synth::spec_generate_by_name(name).unwrap();
    let p = Prepared::new(&w);
    let out = p.eval(&[&p.ba, &p.lt, &p.ba_plus_lt()]);
    (out[0].no_alias_rate(), out[1].no_alias_rate(), out[2].no_alias_rate(), out[0].total())
}

/// Paper §1/§4.1: "in SPEC's lbm we disambiguate 11,881 pairs of pointers,
/// whereas BA provides precise answers to only 1,888" — LT must clearly
/// beat BA on lbm, and both must be low in absolute terms.
#[test]
fn lbm_lt_beats_ba() {
    let (ba, lt, both, _) = rates("lbm");
    assert!(lt > ba * 1.3, "lbm: LT ({lt:.1}%) must dominate BA ({ba:.1}%)");
    assert!(ba < 15.0 && lt < 20.0, "both low on lbm: BA {ba:.1}%, LT {lt:.1}%");
    assert!(both > ba + 8.0, "the combination must add most of LT's wins");
}

/// Paper §1: "our less-than check increases the success rate of LLVM's
/// basic disambiguation heuristic from 48.12% to 64.19% in SPEC's gobmk"
/// — a gain of ~16 percentage points on a benchmark where both are strong.
#[test]
fn gobmk_combination_gains_double_digits() {
    let (ba, lt, both, _) = rates("gobmk");
    assert!((40.0..60.0).contains(&ba), "gobmk BA in the paper's band: {ba:.1}%");
    assert!(lt > 15.0, "gobmk LT contributes a large, mostly disjoint set: {lt:.1}%");
    assert!(both - ba >= 10.0, "BA+LT − BA ≥ 10pp on gobmk: {both:.1} vs {ba:.1}");
}

/// Paper Figure 9 highlights exactly lbm, milc, bzip2 and gobmk (≥10%
/// relative precision increase).
#[test]
fn exactly_the_papers_four_benchmarks_are_highlighted() {
    let mut flagged = Vec::new();
    for p in sraa_synth::spec_profiles() {
        let (ba, _, both, _) = rates(p.name);
        if (both - ba) / ba.max(1e-9) >= 0.10 {
            flagged.push(p.name.to_string());
        }
    }
    assert_eq!(flagged, vec!["lbm", "milc", "bzip2", "gobmk"]);
}

/// Paper Figure 9: dealII has high BA precision and high LT precision but
/// almost no combination gain — the two populations overlap there.
#[test]
fn dealii_lt_overlaps_ba() {
    let (ba, lt, both, _) = rates("dealII");
    assert!(ba > 60.0, "dealII BA is the strongest row: {ba:.1}%");
    assert!(lt > 12.0, "dealII LT is substantial: {lt:.1}%");
    assert!(both - ba < 2.0, "…but almost fully subsumed by BA: {both:.1} vs {ba:.1}");
}

/// Paper Figure 9: namd/omnetpp are the weakest LT rows (< 1%).
#[test]
fn pointer_chasing_benchmarks_defeat_lt() {
    for name in ["namd", "omnetpp"] {
        let (_, lt, _, _) = rates(name);
        assert!(lt < 2.0, "{name}: LT must be near-useless ({lt:.2}%)");
    }
}

/// Query counts must be ordered like the paper's table: lbm smallest,
/// gcc largest, with several orders of magnitude in between.
#[test]
fn query_counts_span_the_table() {
    let (_, _, _, q_lbm) = rates("lbm");
    let (_, _, _, q_gcc) = rates("gcc");
    assert!(q_lbm * 10 < q_gcc, "gcc ({q_gcc}) ≫ lbm ({q_lbm})");
}

/// Paper Figure 10 + §4.1: BA+CF is three times more precise than BA+LT
/// on omnetpp, while BA+LT wins by a wide margin on lbm/milc/gobmk —
/// "these analyses are complementary".
#[test]
fn figure10_complementarity() {
    // omnetpp: CF wins ~3×.
    let w = sraa_synth::spec_generate_by_name("omnetpp").unwrap();
    let p = Prepared::new(&w);
    let out = p.eval(&[&p.ba_plus_lt(), &p.ba_plus_cf()]);
    let ratio = out[1].no_alias_rate() / out[0].no_alias_rate();
    assert!((2.0..4.5).contains(&ratio), "omnetpp: BA+CF / BA+LT ≈ 3 (paper), got {ratio:.2}");

    // lbm/milc/gobmk: LT wins by > 20%.
    for name in ["lbm", "milc", "gobmk"] {
        let w = sraa_synth::spec_generate_by_name(name).unwrap();
        let p = Prepared::new(&w);
        let out = p.eval(&[&p.ba_plus_lt(), &p.ba_plus_cf()]);
        assert!(
            out[0].no_alias_rate() > out[1].no_alias_rate() * 1.2,
            "{name}: BA+LT must beat BA+CF by >20%: {:.1} vs {:.1}",
            out[0].no_alias_rate(),
            out[1].no_alias_rate()
        );
    }
}

/// Paper §4.2: constraints are linear in instructions (R² = 0.992 there).
#[test]
fn constraint_generation_is_linear() {
    let mut xs = Vec::new();
    let mut ys = Vec::new();
    for w in sraa_synth::test_suite(30) {
        let p = Prepared::new(&w);
        xs.push(p.stats.instructions as f64);
        ys.push(p.lt.engine().stats().constraints as f64);
    }
    let r2 = sraa_bench::r_squared(&xs, &ys);
    assert!(r2 > 0.9, "R² = {r2:.4} must indicate linearity");
}

/// Paper §4.2: each constraint is popped ~2.12 times; over 95% of the LT
/// sets carry ≤ 2 elements.
#[test]
fn solver_behaves_linearly_in_practice() {
    let mut pops = 0u64;
    let mut constraints = 0u64;
    let mut small = 0usize;
    let mut total = 0usize;
    for w in sraa_synth::spec_all().into_iter().take(8) {
        let p = Prepared::new(&w);
        let s = p.lt.engine().stats();
        pops += s.pops;
        constraints += s.constraints as u64;
        for (sz, n) in p.lt.engine().size_histogram() {
            total += n;
            if sz <= 2 {
                small += n;
            }
        }
    }
    let ratio = pops as f64 / constraints as f64;
    assert!((1.0..4.0).contains(&ratio), "pops per constraint ≈ 2 (paper 2.12), got {ratio:.2}");
    // The first eight profiles include the chain/stencil-heavy members
    // (deliberately large LT sets); over the full 116-benchmark corpus the
    // `scalability` binary measures 95.9% ≤ 2 (paper: >95%).
    assert!(
        small as f64 / total as f64 > 0.85,
        "most LT sets are tiny (paper: >95% hold ≤2 elements corpus-wide): {:.1}%",
        small as f64 / total as f64 * 100.0
    );
}
