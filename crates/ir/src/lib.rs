//! `sraa-ir` — the SSA intermediate representation substrate for the
//! strict-inequalities pointer-disambiguation analyses.
//!
//! The CGO 2017 paper "Pointer Disambiguation via Strict Inequalities"
//! implements its analyses as LLVM 3.7 passes. This crate provides the
//! corresponding substrate from scratch: a typed, strict-SSA, load/store IR
//! with φ-functions, GEP-style pointer arithmetic, allocation sites,
//! comparisons and conditional branches — i.e. exactly the IR surface the
//! paper's constraint rules (its Figure 2/4 core language, embedded in full
//! LLVM IR) consume.
//!
//! Beyond the representation itself the crate ships the classic analyses and
//! tools every pass in the pipeline needs:
//!
//! * [`mod@cfg`] — control-flow graph, reverse post-order;
//! * [`callgraph`] — the direct call graph and its SCC condensation in
//!   bottom-up (callees-first) order, the substrate of the
//!   interprocedural summary layer;
//! * [`dom`] — dominator tree (Cooper–Harvey–Kennedy) and dominance queries;
//! * [`fingerprint`] — endianness-stable content hashes of function
//!   bodies, the per-body half of the incremental summary-cache key;
//! * [`liveness`] — SSA live-in/live-out sets;
//! * [`defuse`] — def-use chains;
//! * [`verifier`] — SSA and type well-formedness checks;
//! * [`printer`] / [`parser`] — a round-trippable textual format;
//! * [`interp`] — a concrete interpreter with an observable trace, used by
//!   the property-based tests to validate the paper's adequacy theorem
//!   (Theorem 3.9) and the no-alias answers dynamically.
//!
//! # Example
//!
//! ```
//! use sraa_ir::{FunctionBuilder, Module, Type, BinOp, Pred};
//!
//! let mut module = Module::new();
//! let f = module.declare_function("iota_sum", vec![("n", Type::Int)], Some(Type::Int));
//! let mut b = FunctionBuilder::new(module.function_mut(f));
//! let entry = b.current_block();
//! let header = b.create_block();
//! let body = b.create_block();
//! let exit = b.create_block();
//!
//! let n = b.param(0);
//! let zero = b.iconst(0);
//! let one = b.iconst(1);
//! b.jump(header);
//!
//! b.switch_to(header);
//! let i = b.phi(Type::Int);
//! let s = b.phi(Type::Int);
//! let c = b.cmp(Pred::Lt, i, n);
//! b.br(c, body, exit);
//!
//! b.switch_to(body);
//! let s2 = b.binary(BinOp::Add, s, i);
//! let i2 = b.binary(BinOp::Add, i, one);
//! b.jump(header);
//!
//! b.switch_to(exit);
//! b.ret(Some(s));
//!
//! b.set_phi_incomings(i, vec![(entry, zero), (body, i2)]);
//! b.set_phi_incomings(s, vec![(entry, zero), (body, s2)]);
//! b.finish();
//!
//! sraa_ir::verify(&module).unwrap();
//! ```

pub mod bitset;
pub mod builder;
pub mod callgraph;
pub mod cfg;
pub mod defuse;
pub mod dom;
pub mod fingerprint;
pub mod function;
pub mod ids;
pub mod inst;
pub mod interp;
pub mod liveness;
pub mod loops;
pub mod module;
pub mod parser;
pub mod passes;
pub mod printer;
pub mod stats;
pub mod types;
pub mod verifier;

pub use bitset::{BitMatrix, DenseBitSet};
pub use builder::FunctionBuilder;
pub use callgraph::{CallGraph, Condensation};
pub use cfg::Cfg;
pub use defuse::DefUse;
pub use dom::{DomTree, PostDomTree};
pub use fingerprint::{body_fingerprint, Fnv64};
pub use function::{Block, Function};
pub use ids::{BlockId, FuncId, GlobalId, Value};
pub use inst::{BinOp, CopyOrigin, InstData, InstKind, Pred};
pub use interp::{ExecError, Frame, Interpreter, Observer, Trace};
pub use liveness::Liveness;
pub use loops::{Loop, LoopForest};
pub use module::{Global, Module};
pub use parser::{parse_module, ParseError};
pub use stats::ModuleStats;
pub use types::Type;
pub use verifier::{verify, verify_function, VerifyError};
