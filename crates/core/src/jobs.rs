//! The `--jobs` knob: how many worker threads the wavefront-parallel
//! summary pipeline may use.
//!
//! Resolution order is flag over environment over hardware: an explicit
//! [`Jobs::N`] always wins; [`Jobs::Auto`] consults `SRAA_JOBS` (a
//! positive integer; anything else is ignored) and falls back to
//! [`std::thread::available_parallelism`]. Whatever the count, results
//! are byte-identical — parallelism only reorders *work*, never output
//! (see the determinism notes on `ModuleSummaries::compute`).

use std::num::NonZeroUsize;

/// Worker-thread count for parallel summary solves.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum Jobs {
    /// `SRAA_JOBS` if set and valid, else the machine's available
    /// parallelism.
    #[default]
    Auto,
    /// Exactly this many workers (`1` forces the serial path).
    N(NonZeroUsize),
}

impl Jobs {
    /// Parses a `--jobs` argument: `"auto"`, or a positive integer.
    /// `"0"`, negatives and garbage are rejected with `None`.
    pub fn parse(s: &str) -> Option<Jobs> {
        if s == "auto" {
            return Some(Jobs::Auto);
        }
        s.parse::<usize>().ok().and_then(NonZeroUsize::new).map(Jobs::N)
    }

    /// The `SRAA_JOBS` environment override, if present and valid.
    /// Read on every call — tests toggle the variable between runs.
    pub fn from_env() -> Option<Jobs> {
        std::env::var("SRAA_JOBS").ok().and_then(|v| Jobs::parse(&v))
    }

    /// Resolves to a concrete worker count (always ≥ 1).
    pub fn get(self) -> usize {
        match self {
            Jobs::N(n) => n.get(),
            Jobs::Auto => match Self::from_env() {
                Some(Jobs::N(n)) => n.get(),
                _ => std::thread::available_parallelism().map_or(1, NonZeroUsize::get),
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_accepts_auto_and_positive_integers() {
        assert_eq!(Jobs::parse("auto"), Some(Jobs::Auto));
        assert_eq!(Jobs::parse("1").unwrap().get(), 1);
        assert_eq!(Jobs::parse("16").unwrap().get(), 16);
    }

    #[test]
    fn parse_rejects_zero_negatives_and_garbage() {
        assert_eq!(Jobs::parse("0"), None);
        assert_eq!(Jobs::parse("-2"), None);
        assert_eq!(Jobs::parse(""), None);
        assert_eq!(Jobs::parse("four"), None);
        assert_eq!(Jobs::parse("2x"), None);
    }

    #[test]
    fn explicit_count_resolves_to_itself() {
        assert_eq!(Jobs::parse("3").unwrap().get(), 3);
        assert!(Jobs::Auto.get() >= 1);
    }
}
