//! Synthetic SPEC CPU 2006 workload profiles.
//!
//! The paper's Figure 9/10 evaluate on 16 SPEC programs. Those sources are
//! proprietary, so each benchmark is modelled here as a *profile*: a mix
//! of homogeneous worker functions, each built from one archetype that
//! favours one analysis — the way real hot functions do (lbm's kernel is
//! one big stencil; sjeng is table lookups on many distinct objects).
//! `aa-eval` percentages compose over functions, which makes the mix
//! directly tunable against the paper's table. Archetypes:
//!
//! * `stencil`  — an unrolled `q1 = q0 + 1; q2 = q1 + 1; …` pointer kernel
//!   over an array parameter indexed by a loop variable: **LT-only** (the
//!   offsets are unknown to BA, ordered for LT by rule 2);
//! * `chain`    — `q1 = q0 + st; …` with a σ-proven-positive *variable*
//!   stride: LT-only, the lbm-style grid walk;
//! * `sorted`   — `i < j` nested sort loops (the paper's Figure 1): LT-only;
//! * `walk`     — `p < pe` pointer walks: LT-only (criterion 1);
//! * `sites`    — traffic over many distinct allocation sites at constant
//!   offsets: **BA-only**;
//! * `cstencil` — constant-offset chains over one local array: solved by
//!   *both* BA and LT (overlap — what makes dealII's BA+LT ≈ BA);
//! * `chase`    — pointers loaded from memory, opaque to every analysis;
//! * `calls`    — helpers invoked with provably ordered arguments,
//!   exercising the inter-procedural pseudo-φs.
//!
//! Absolute query counts differ from the paper's testbed (scaled down ~40×
//! to keep the harness in seconds); the profile table encodes the *shape*:
//! per-benchmark BA%, LT% and the BA+LT gain track the paper's Figure 9.

use crate::Workload;
use std::fmt::Write;

/// Workload profile: worker-function counts per archetype.
#[derive(Clone, Copy, Debug, Default)]
pub struct Profile {
    /// Benchmark name (paper Figure 9 order).
    pub name: &'static str,
    /// Variable-index unrolled stencil functions (LT-only, ~90%).
    pub stencil: usize,
    /// Variable-stride chain functions (LT-only, ~90%).
    pub chain: usize,
    /// `i < j` sort functions (LT-only, moderate).
    pub sorted: usize,
    /// Pointer-walk functions (LT-only, light).
    pub walk: usize,
    /// Allocation-site functions (BA-only, ~95%).
    pub sites: usize,
    /// Constant-offset stencil functions (both BA and LT — overlap).
    pub cstencil: usize,
    /// Opaque pointer-chasing functions (may-alias for BA and LT; the
    /// loaded slots are visible to the Andersen baseline).
    pub chase: usize,
    /// Externally-opaque chasing functions (`inptr()` buffers): may-alias
    /// for *every* analysis including CF — models I/O-fed pointers.
    pub xchase: usize,
    /// Ordered-argument caller functions (inter-procedural LT).
    pub calls: usize,
    /// Replication factor: the whole function set is cloned `scale` times
    /// (query volume grows linearly; only replica 0 runs in `main`).
    pub scale: usize,
}

impl Profile {
    /// Functions per replica.
    pub fn funcs_per_replica(&self) -> usize {
        self.stencil
            + self.chain
            + self.sorted
            + self.walk
            + self.sites
            + self.cstencil
            + self.chase
            + self.xchase
            + self.calls
    }
}

/// The 16 profiles, ordered as the paper's Figure 9 (by query count).
pub fn profiles() -> Vec<Profile> {
    #[rustfmt::skip]
    let table = vec![
        Profile { name: "lbm",        stencil: 2,  chain: 2, sorted: 3, walk: 2, sites: 1,  cstencil: 0,  chase: 0, xchase: 2, calls: 1, scale: 1 },
        Profile { name: "mcf",        stencil: 1,  chain: 0, sorted: 0, walk: 1, sites: 2,  cstencil: 6,  chase: 4, xchase: 0, calls: 1, scale: 2 },
        Profile { name: "astar",      stencil: 0,  chain: 2, sorted: 1, walk: 0, sites: 11, cstencil: 13, chase: 3, xchase: 0, calls: 1, scale: 3 },
        Profile { name: "libquantum", stencil: 1,  chain: 0, sorted: 0, walk: 0, sites: 21, cstencil: 1,  chase: 3, xchase: 0, calls: 1, scale: 4 },
        Profile { name: "sjeng",      stencil: 0,  chain: 0, sorted: 1, walk: 0, sites: 17, cstencil: 0,  chase: 1, xchase: 0, calls: 1, scale: 6 },
        Profile { name: "milc",       stencil: 15, chain: 2, sorted: 2, walk: 1, sites: 9,  cstencil: 13, chase: 0, xchase: 4, calls: 1, scale: 8 },
        Profile { name: "soplex",     stencil: 1,  chain: 0, sorted: 3, walk: 0, sites: 3,  cstencil: 9,  chase: 4, xchase: 0, calls: 1, scale: 9 },
        Profile { name: "bzip2",      stencil: 1,  chain: 0, sorted: 3, walk: 2, sites: 0,  cstencil: 5,  chase: 0, xchase: 1, calls: 1, scale: 10 },
        Profile { name: "hmmer",      stencil: 1,  chain: 0, sorted: 0, walk: 0, sites: 2,  cstencil: 5,  chase: 7, xchase: 0, calls: 1, scale: 11 },
        Profile { name: "gobmk",      stencil: 15, chain: 1, sorted: 0, walk: 2, sites: 16, cstencil: 7,  chase: 0, xchase: 2, calls: 1, scale: 12 },
        Profile { name: "namd",       stencil: 0,  chain: 0, sorted: 0, walk: 2, sites: 6,  cstencil: 0,  chase: 3, xchase: 0, calls: 1, scale: 12 },
        Profile { name: "omnetpp",    stencil: 0,  chain: 0, sorted: 0, walk: 1, sites: 9,  cstencil: 0,  chase: 6, xchase: 0, calls: 1, scale: 13 },
        Profile { name: "h264ref",    stencil: 0,  chain: 0, sorted: 3, walk: 2, sites: 5,  cstencil: 0,  chase: 5, xchase: 0, calls: 1, scale: 13 },
        Profile { name: "perlbench",  stencil: 1,  chain: 0, sorted: 0, walk: 0, sites: 3,  cstencil: 4,  chase: 7, xchase: 0, calls: 1, scale: 14 },
        Profile { name: "dealII",     stencil: 0,  chain: 0, sorted: 3, walk: 2, sites: 18, cstencil: 16, chase: 1, xchase: 0, calls: 1, scale: 15 },
        Profile { name: "gcc",        stencil: 0,  chain: 0, sorted: 2, walk: 1, sites: 1,  cstencil: 1,  chase: 5, xchase: 0, calls: 1, scale: 24 },
    ];
    table
}

/// Number of derived pointers in the stencil/chain archetypes (pair
/// weight ≈ C(U+1, 2)).
const UNROLL: usize = 24;
/// Allocation sites per `sites` function.
const NSITES: usize = 5;
/// Opaque pointers per `chase` function.
const NCHASE: usize = 25;

/// Generates the synthetic program for one profile.
pub fn generate(p: &Profile) -> Workload {
    let mut out = String::new();
    fn emit_into(out: &mut String, s: &str) {
        out.push_str(s);
        out.push('\n');
    }
    macro_rules! emit {
        ($($arg:tt)*) => { emit_into(&mut out, &format!($($arg)*)) };
    }

    emit!("{}", "int table_a[64];");
    emit!("int table_b[256];");
    emit!("int* slots[32];");
    emit!("");
    emit!("int pair_sum(int* v, int lo, int hi) {{");
    emit!("    return v[lo] + v[hi];");
    emit!("}}");
    emit!("");

    let mut called: Vec<String> = Vec::new();
    for replica in 0..p.scale.max(1) {
        let mut names = Vec::new();
        for k in 0..p.stencil {
            names.push(emit_stencil(&mut out, replica, k));
        }
        for k in 0..p.chain {
            names.push(emit_chain(&mut out, replica, k));
        }
        for k in 0..p.sorted {
            names.push(emit_sorted(&mut out, replica, k));
        }
        for k in 0..p.walk {
            names.push(emit_walk(&mut out, replica, k));
        }
        for k in 0..p.sites {
            names.push(emit_sites(&mut out, replica, k));
        }
        for k in 0..p.cstencil {
            names.push(emit_cstencil(&mut out, replica, k));
        }
        for k in 0..p.chase {
            names.push(emit_chase(&mut out, replica, k));
        }
        for k in 0..p.xchase {
            names.push(emit_xchase(&mut out, replica, k));
        }
        for k in 0..p.calls {
            names.push(emit_calls(&mut out, replica, k));
        }
        if replica == 0 {
            called = names;
        }
    }

    emit!("int main() {{");
    emit!("    for (int i = 0; i < 32; i++) slots[i] = &table_b[i * 8];");
    emit!("    int acc = 0;");
    for name in &called {
        emit!("    acc += {name}(table_a, 60);");
    }
    emit!("    return acc % 256;");
    emit!("}}");

    Workload { name: p.name.to_string(), source: out }
}

/// Unrolled variable-index stencil: `q0 = v + i; q1 = q0 + 1; …` — BA sees
/// one object with unknown offsets, LT orders the whole chain.
fn emit_stencil(out: &mut String, r: usize, k: usize) -> String {
    let name = format!("stencil_r{r}_{k}");
    let _ = writeln!(out, "int {name}(int* v, int n) {{");
    let _ = writeln!(out, "    int acc = 0;");
    let _ = writeln!(out, "    for (int i = 0; i + {} < n; i++) {{", UNROLL + 1);
    let _ = writeln!(out, "        int* q0 = v + i;");
    for l in 1..=UNROLL {
        let _ = writeln!(out, "        int* q{l} = q{} + 1;", l - 1);
    }
    let _ = writeln!(out, "        *q0 = *q{} + *q{};", UNROLL / 2, UNROLL);
    let _ = writeln!(out, "        acc += *q1;");
    let _ = writeln!(out, "    }}");
    let _ = writeln!(out, "    return acc;");
    let _ = writeln!(out, "}}");
    out.push('\n');
    name
}

/// Variable-stride chain guarded by `st > 0`: the σ-refined range makes
/// every link strictly increasing.
fn emit_chain(out: &mut String, r: usize, k: usize) -> String {
    let name = format!("chain_r{r}_{k}");
    let _ = writeln!(out, "int {name}(int* v, int n) {{");
    let _ = writeln!(out, "    int acc = 0;");
    let _ = writeln!(out, "    int st = n % 2 + 1;");
    let _ = writeln!(out, "    if (st > 0) {{");
    let _ = writeln!(out, "        int* q1 = v + st;");
    for l in 2..=UNROLL {
        let _ = writeln!(out, "        int* q{l} = q{} + st;", l - 1);
    }
    let _ = writeln!(out, "        acc += *q1 + *q{} + *q{};", UNROLL / 2, UNROLL / 2 + 1);
    let _ = writeln!(out, "    }}");
    let _ = writeln!(out, "    return acc;");
    let _ = writeln!(out, "}}");
    out.push('\n');
    name
}

/// The paper's Figure 1 (a) shape: nested `i < j` loops over one array.
fn emit_sorted(out: &mut String, r: usize, k: usize) -> String {
    let name = format!("sorted_r{r}_{k}");
    let _ = writeln!(out, "int {name}(int* v, int n) {{");
    for l in 0..3 {
        let _ = writeln!(
            out,
            "    for (int s{l} = 0; s{l} < n - 1; s{l}++) \
             for (int t{l} = s{l} + 1; t{l} < n; t{l}++) \
             if (v[s{l}] > v[t{l}]) {{ int tmp = v[s{l}]; v[s{l}] = v[t{l}]; v[t{l}] = tmp; }}"
        );
    }
    let _ = writeln!(out, "    return v[0];");
    let _ = writeln!(out, "}}");
    out.push('\n');
    name
}

/// `for (pi = v; pi < pe; pi++)` pointer walks.
fn emit_walk(out: &mut String, r: usize, k: usize) -> String {
    let name = format!("walk_r{r}_{k}");
    let _ = writeln!(out, "int {name}(int* v, int n) {{");
    let _ = writeln!(out, "    int acc = 0;");
    for l in 0..4 {
        let _ = writeln!(
            out,
            "    {{ int* pe{l} = v + n; \
             for (int* pi{l} = v; pi{l} < pe{l}; pi{l}++) \
             {{ acc += *pi{l}; *pe{l} = acc; }} }}"
        );
    }
    let _ = writeln!(out, "    return acc;");
    let _ = writeln!(out, "}}");
    out.push('\n');
    name
}

/// Many distinct allocation sites with constant-offset traffic.
fn emit_sites(out: &mut String, r: usize, k: usize) -> String {
    let name = format!("sites_r{r}_{k}");
    let _ = writeln!(out, "int {name}(int* v, int n) {{");
    let _ = writeln!(out, "    int acc = n;");
    for s in 0..NSITES {
        let _ = writeln!(out, "    int loc{s}[16];");
        let _ = writeln!(out, "    int* heap{s} = malloc(16);");
        let _ = writeln!(
            out,
            "    loc{s}[{}] = acc + {s}; heap{s}[{}] = loc{s}[{}] * 2; \
             heap{s}[{}] = heap{s}[{}] + 1; acc += heap{s}[{}];",
            s % 16,
            (s + 1) % 16,
            s % 16,
            (s + 2) % 16,
            (s + 1) % 16,
            (s + 2) % 16,
        );
    }
    let _ = writeln!(out, "    return acc;");
    let _ = writeln!(out, "}}");
    out.push('\n');
    name
}

/// Constant-offset chain over one local array: disambiguated by *both* BA
/// (same object, distinct constant offsets) and LT (rule 2) — overlap.
fn emit_cstencil(out: &mut String, r: usize, k: usize) -> String {
    let name = format!("cstencil_r{r}_{k}");
    let _ = writeln!(out, "int {name}(int* v, int n) {{");
    let _ = writeln!(out, "    int buf[{}];", UNROLL + 2);
    let _ = writeln!(out, "    int* q0 = &buf[0];");
    for l in 1..=UNROLL {
        let _ = writeln!(out, "    int* q{l} = q{} + 1;", l - 1);
    }
    let _ = writeln!(out, "    *q0 = n; *q{} = n + 1;", UNROLL);
    let _ = writeln!(out, "    return *q{} + v[0];", UNROLL / 2);
    let _ = writeln!(out, "}}");
    out.push('\n');
    name
}

/// Opaque pointers loaded from a global slot table.
fn emit_chase(out: &mut String, r: usize, k: usize) -> String {
    let name = format!("chase_r{r}_{k}");
    let _ = writeln!(out, "int {name}(int* v, int n) {{");
    let _ = writeln!(out, "    int acc = v[0];");
    for c in 0..NCHASE {
        // Variable slot index: the slot geps stay mutually may-alias even
        // for BA (unknown offsets into one global object).
        let _ = writeln!(out, "    int* ch{c} = slots[(n + {c}) % 32];");
        let _ = writeln!(out, "    acc += ch{c}[n % 4];");
    }
    let _ = writeln!(out, "    return acc;");
    let _ = writeln!(out, "}}");
    out.push('\n');
    name
}

/// Externally-opaque pointers: `inptr()` models pointers handed in by the
/// outside world (I/O buffers, library returns) — every analysis,
/// including the Andersen baseline, must answer may-alias.
fn emit_xchase(out: &mut String, r: usize, k: usize) -> String {
    let name = format!("xchase_r{r}_{k}");
    let _ = writeln!(out, "int {name}(int* v, int n) {{");
    let _ = writeln!(out, "    int acc = v[0];");
    for c in 0..NCHASE * 2 {
        let _ = writeln!(out, "    int* xh{c} = inptr();");
        let _ = writeln!(out, "    acc += xh{c}[n % 4];");
    }
    let _ = writeln!(out, "    return acc;");
    let _ = writeln!(out, "}}");
    out.push('\n');
    name
}

/// Calls `pair_sum` with arguments ordered at every site.
fn emit_calls(out: &mut String, r: usize, k: usize) -> String {
    let name = format!("calls_r{r}_{k}");
    let _ = writeln!(out, "int {name}(int* v, int n) {{");
    let _ = writeln!(out, "    int acc = 0;");
    let _ = writeln!(out, "    for (int c = 0; c + 1 < n; c++) acc += pair_sum(v, c, c + 1);");
    let _ = writeln!(out, "    for (int d = 0; d + 2 < n; d++) acc += pair_sum(v, d, d + 2);");
    let _ = writeln!(out, "    return acc;");
    let _ = writeln!(out, "}}");
    out.push('\n');
    name
}

/// All 16 synthetic SPEC workloads.
pub fn all() -> Vec<Workload> {
    profiles().iter().map(generate).collect()
}

/// Generates one workload by benchmark name (`"lbm"`, …, `"gcc"`).
pub fn generate_by_name(name: &str) -> Option<Workload> {
    profiles().iter().find(|p| p.name == name).map(generate)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_profiles_compile_and_run() {
        for w in all() {
            let m = sraa_minic::compile(&w.source)
                .unwrap_or_else(|e| panic!("{}: {e}\n{}", w.name, w.source));
            let mut interp = sraa_ir::Interpreter::new(&m).with_step_limit(50_000_000);
            interp.run("main", &[]).unwrap_or_else(|e| panic!("{} must not trap: {e:?}", w.name));
        }
    }

    #[test]
    fn sixteen_profiles_in_paper_order() {
        let ps = profiles();
        assert_eq!(ps.len(), 16);
        assert_eq!(ps[0].name, "lbm");
        assert_eq!(ps[15].name, "gcc");
    }

    #[test]
    fn query_counts_grow_with_the_table() {
        let q = |name: &str| {
            let w = generate_by_name(name).unwrap();
            let m = sraa_minic::compile(&w.source).unwrap();
            num_queries(&m)
        };
        let first = q("lbm");
        let last = q("gcc");
        assert!(last > first * 10, "gcc must be much bigger than lbm: {first} vs {last}");
    }

    fn num_queries(m: &sraa_ir::Module) -> u64 {
        let mut total = 0u64;
        for (_, f) in m.functions() {
            let n = f
                .block_ids()
                .flat_map(|b| {
                    f.block_insts(b)
                        .filter(|(_, d)| d.ty.is_some_and(sraa_ir::Type::is_ptr))
                        .map(|_| ())
                        .collect::<Vec<_>>()
                })
                .count() as u64;
            total += n * (n - 1) / 2;
        }
        total
    }
}
