//! The synthetic "LLVM test-suite": a ladder of 100 benchmarks.
//!
//! The paper's Figure 8 plots, for the 100 largest benchmarks of the LLVM
//! test suite, the total number of alias queries and the `no-alias`
//! answers of LT, BA and BA+LT, with query counts spanning several orders
//! of magnitude (its extremes: McCat's `qbsort` at 3,351 queries and
//! MiBench's `consumer-typeset` at ~3·10⁸).
//!
//! [`test_suite`] regenerates that population: `n` deterministic programs
//! whose sizes grow geometrically and whose pattern mix rotates through
//! five families (array kernels, sorters, pointer walkers,
//! allocation-heavy object code, pointer-chasing code), so the suite
//! contains both LT-favourable and BA-favourable members at every size.

use crate::csmith::{self, CsmithConfig};
use crate::spec::{self, Profile};
use crate::Workload;

/// Generates the `n`-benchmark synthetic test suite (100 for Figure 8).
pub fn test_suite(n: usize) -> Vec<Workload> {
    (0..n)
        .map(|k| {
            // Sizes span ~2.5 decades via the replication factor.
            let scale = 1 + (k * k) / 300 + k / 8;
            let family = k % 5;
            let p = match family {
                0 => Profile {
                    name: "array-kernel",
                    stencil: 2,
                    walk: 1,
                    sites: 1,
                    chase: 1,
                    scale,
                    ..Default::default()
                },
                1 => Profile {
                    name: "sorter",
                    sorted: 2,
                    sites: 1,
                    chase: 1,
                    calls: 1,
                    scale,
                    ..Default::default()
                },
                2 => Profile {
                    name: "walker",
                    walk: 2,
                    chain: 1,
                    sites: 1,
                    chase: 1,
                    scale,
                    ..Default::default()
                },
                3 => Profile {
                    name: "objects",
                    sites: 4,
                    cstencil: 1,
                    chase: 1,
                    scale,
                    ..Default::default()
                },
                _ => Profile {
                    name: "chaser",
                    stencil: 1,
                    sites: 1,
                    chase: 4,
                    calls: 1,
                    scale,
                    ..Default::default()
                },
            };
            let mut w = spec::generate(&p);
            w.name = format!("suite{k:03}_{}", p.name);
            w
        })
        .collect()
}

/// The 120 Csmith-like programs of the paper's Figure 12: 20 programs per
/// pointer nesting depth, depths 2 through 7, sizes varying with the seed.
pub fn csmith_figure12() -> Vec<Workload> {
    let mut out = Vec::with_capacity(120);
    for depth in 2..=7u8 {
        for k in 0..20u64 {
            out.push(csmith::generate(CsmithConfig {
                seed: depth as u64 * 1000 + k,
                max_ptr_depth: depth,
                num_stmts: 60 + (k as usize) * 14, // ~80 to ~4000 source lines
                helpers: 0,
            }));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hundred_benchmarks_with_growing_sizes() {
        let ws = test_suite(100);
        assert_eq!(ws.len(), 100);
        assert!(ws[99].source.len() > ws[0].source.len() * 4);
        // Names are unique.
        let names: std::collections::HashSet<_> = ws.iter().map(|w| &w.name).collect();
        assert_eq!(names.len(), 100);
    }

    #[test]
    fn sample_of_suite_compiles() {
        for k in [0usize, 33, 66, 99] {
            let ws = test_suite(100);
            sraa_minic::compile(&ws[k].source).unwrap_or_else(|e| panic!("{}: {e}", ws[k].name));
        }
    }

    #[test]
    fn figure12_population_is_120() {
        let ws = csmith_figure12();
        assert_eq!(ws.len(), 120);
        assert_eq!(ws.iter().filter(|w| w.name.starts_with("csmith_d7")).count(), 20);
    }
}
