//! `sraa-pentagon` — the Pentagon abstract domain, dense.
//!
//! The paper's Section 5 singles out Logozzo & Fähndrich's *Pentagons*
//! as the closest prior abstract domain to its less-than analysis: the
//! combination of integer intervals with per-variable *strict upper
//! bound* sets ("`y ∈ s(x)` ⇒ `x < y`"). Pentagons prove the same kind
//! of ordering facts — including `x2 > x1` from `x1 = x2 − x3, x3 > 0`,
//! which ABCD misses — but as originally described they are a **dense**
//! analysis: one abstract state per program point, no live-range
//! splitting, and explicit invalidation when a loop re-defines a name.
//!
//! This crate implements that dense formulation faithfully over the
//! workspace IR:
//!
//! * [`PentagonState`] — the per-point state (intervals × strict upper
//!   bounds) with the join/widen/refine/transfer algebra;
//! * [`PentagonAnalysis`] — the forward Kleene fixpoint with branch
//!   refinement, infeasible-edge pruning and loop widening.
//!
//! Two claims from the paper's Section 5 become measurable with it:
//!
//! 1. *"Logozzo and Fähndrich build less-than and range relations
//!    together, whereas our analysis first builds range information,
//!    then uses it to compute less-than relations … decoupling both
//!    analyses leads to simpler implementations."* — compare this
//!    crate's transfer functions with `sraa-core`'s four constraint
//!    rules.
//! 2. *"We have not found thus far examples in which one approach yields
//!    better results than the other."* — the `pentagon_vs_lt` harness
//!    (`cargo run -p sraa-bench --bin pentagon_vs_lt`) runs both over
//!    the evaluation corpus and reports agreements and divergences.
//!
//! The alias-analysis adapter lives in `sraa-alias`
//! (`PentagonAa`), next to the other disambiguation methods.

pub mod analysis;
pub mod state;

pub use analysis::PentagonAnalysis;
pub use state::{PentagonState, ValueSnapshot};
