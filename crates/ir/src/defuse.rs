//! Def-use chains.

use crate::function::Function;
use crate::ids::{BlockId, Value};

/// One use of a value.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Use {
    /// The instruction containing the use.
    pub user: Value,
    /// For φ uses, the incoming edge's predecessor block; `None` for
    /// ordinary operand uses. φ uses semantically occur at the end of this
    /// predecessor, which matters for liveness and renaming.
    pub pred: Option<BlockId>,
}

/// Def-use chains for every value of a function. A snapshot; recompute
/// after edits.
#[derive(Clone, Debug)]
pub struct DefUse {
    uses: Vec<Vec<Use>>,
}

impl DefUse {
    /// Computes def-use chains for all attached instructions of `func`.
    pub fn compute(func: &Function) -> Self {
        let mut uses: Vec<Vec<Use>> = vec![Vec::new(); func.num_insts()];
        for b in func.block_ids() {
            for (user, data) in func.block_insts(b) {
                match &data.kind {
                    crate::inst::InstKind::Phi { incomings } => {
                        for (pred, v) in incomings {
                            uses[v.index()].push(Use { user, pred: Some(*pred) });
                        }
                    }
                    kind => kind.for_each_operand(|v| {
                        uses[v.index()].push(Use { user, pred: None });
                    }),
                }
            }
        }
        Self { uses }
    }

    /// The uses of `v`.
    pub fn uses(&self, v: Value) -> &[Use] {
        &self.uses[v.index()]
    }

    /// Whether `v` has no uses.
    pub fn is_dead(&self, v: Value) -> bool {
        self.uses[v.index()].is_empty()
    }

    /// Number of uses of `v`.
    pub fn num_uses(&self, v: Value) -> usize {
        self.uses[v.index()].len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FunctionBuilder;
    use crate::inst::{BinOp, Pred};
    use crate::types::Type;

    #[test]
    fn counts_ordinary_and_phi_uses() {
        let mut f = Function::new("t", vec![("n", Type::Int)], None);
        let mut b = FunctionBuilder::new(&mut f);
        let entry = b.current_block();
        let loop_bb = b.create_block();
        let exit = b.create_block();
        let n = b.param(0);
        let one = b.iconst(1);
        b.jump(loop_bb);
        b.switch_to(loop_bb);
        let i = b.phi(Type::Int);
        let i2 = b.binary(BinOp::Add, i, one);
        let c = b.cmp(Pred::Lt, i2, n);
        b.br(c, loop_bb, exit);
        b.set_phi_incomings(i, vec![(entry, one), (loop_bb, i2)]);
        b.switch_to(exit);
        b.ret(None);
        b.finish();

        let du = DefUse::compute(&f);
        // `one` is used by the add and by the phi (via edge from entry).
        assert_eq!(du.num_uses(one), 2);
        assert!(du.uses(one).iter().any(|u| u.pred == Some(entry)));
        // `i2` is used by the cmp and the phi back edge.
        assert_eq!(du.num_uses(i2), 2);
        assert!(du.uses(i2).iter().any(|u| u.pred == Some(loop_bb)));
        // `c` is used by the branch only.
        assert_eq!(du.num_uses(c), 1);
        assert!(du.uses(c)[0].pred.is_none());
        assert!(!du.is_dead(i));
    }

    #[test]
    fn dead_values_have_no_uses() {
        let mut f = Function::new("t", Vec::<(&str, Type)>::new(), None);
        let mut b = FunctionBuilder::new(&mut f);
        let x = b.opaque(Type::Int);
        b.ret(None);
        b.finish();
        let du = DefUse::compute(&f);
        assert!(du.is_dead(x));
    }
}
