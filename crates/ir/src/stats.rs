//! Program size statistics.
//!
//! The paper's scalability study (its Figure 11) plots the number of
//! constraints against the number of *IR instructions*. In LLVM, constants
//! and formal parameters are not instructions, so [`ModuleStats`] excludes
//! our materialised `Const`/`Param` pseudo-instructions from the count to
//! keep the metric comparable.

use crate::inst::InstKind;
use crate::module::Module;

/// Size metrics for a module.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ModuleStats {
    /// Number of functions.
    pub functions: usize,
    /// Number of basic blocks.
    pub blocks: usize,
    /// Number of instructions, excluding `Const` and `Param`
    /// pseudo-instructions (which LLVM does not count as instructions).
    pub instructions: usize,
    /// Number of values with pointer type.
    pub pointer_values: usize,
    /// Number of memory accesses (loads + stores).
    pub memory_accesses: usize,
    /// Number of allocation sites (alloca + malloc + globaladdr uses).
    pub allocation_sites: usize,
}

impl ModuleStats {
    /// Computes statistics for `module`.
    pub fn compute(module: &Module) -> Self {
        let mut s = ModuleStats { functions: module.num_functions(), ..Default::default() };
        for (_, f) in module.functions() {
            s.blocks += f.num_blocks();
            for b in f.block_ids() {
                for (_, data) in f.block_insts(b) {
                    match &data.kind {
                        InstKind::Const(_) | InstKind::Param(_) => {}
                        kind => {
                            s.instructions += 1;
                            if data.ty.is_some_and(crate::types::Type::is_ptr) {
                                s.pointer_values += 1;
                            }
                            match kind {
                                InstKind::Load { .. } | InstKind::Store { .. } => {
                                    s.memory_accesses += 1
                                }
                                k if k.is_allocation_site() => s.allocation_sites += 1,
                                _ => {}
                            }
                        }
                    }
                }
            }
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FunctionBuilder;
    use crate::types::Type;

    #[test]
    fn counts_exclude_consts_and_params() {
        let mut m = Module::new();
        let fid = m.declare_function("f", vec![("p", Type::Ptr(1))], None);
        let f = m.function_mut(fid);
        let mut b = FunctionBuilder::new(f);
        let p = b.param(0);
        let c = b.iconst(1);
        let q = b.gep(p, c);
        let x = b.load(q);
        b.store(q, x);
        b.ret(None);
        b.finish();
        let s = ModuleStats::compute(&m);
        assert_eq!(s.functions, 1);
        assert_eq!(s.blocks, 1);
        // gep + load + store + ret = 4 (param and const excluded)
        assert_eq!(s.instructions, 4);
        assert_eq!(s.pointer_values, 1, "only the gep result counts; params are excluded");
        assert_eq!(s.memory_accesses, 2);
        assert_eq!(s.allocation_sites, 0);
    }
}
