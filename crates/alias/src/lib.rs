//! `sraa-alias` — the alias-analysis framework of the reproduction.
//!
//! The paper's evaluation compares three pointer disambiguation methods
//! (its Section 4):
//!
//! * **BA** — LLVM's `basic-aa` heuristics, "relying mostly on the fact
//!   that pointers derived from different allocation sites cannot alias":
//!   [`BasicAliasAnalysis`];
//! * **LT** — the strict-inequalities analysis of the paper:
//!   [`StrictInequalityAa`] (wrapping [`sraa_core`]);
//! * **CF** — an inclusion-based (Andersen-style) points-to baseline, the
//!   stand-in for Chen's CFL pass used in the paper's Figure 10:
//!   [`AndersenAnalysis`].
//!
//! [`Combined`] chains analyses the way LLVM's `AAResults` does: the first
//! non-`MayAlias` answer wins (BA+LT, BA+CF). [`AaEval`] reimplements the
//! `aa-eval` pass: query every pair of pointer values per function and
//! tally the verdicts — the measurement underlying the paper's Figures 8,
//! 9 and 10.

pub mod aa_eval;
pub mod andersen;
pub mod basic;
pub mod lt;
pub mod pentagon;
pub mod steensgaard;

pub use aa_eval::{render_eval, AaEval, EvalSummary};
pub use andersen::AndersenAnalysis;
pub use basic::BasicAliasAnalysis;
pub use lt::StrictInequalityAa;
pub use pentagon::PentagonAa;
pub use steensgaard::SteensgaardAnalysis;

use sraa_ir::{FuncId, Module, Value};

/// Verdict of one alias query, mirroring LLVM's `AliasResult`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum AliasResult {
    /// The two locations never overlap (while simultaneously alive).
    NoAlias,
    /// The analysis cannot tell.
    MayAlias,
    /// The two locations are provably identical.
    MustAlias,
}

/// A pointer disambiguation method.
///
/// Queries are *function-scoped*, like LLVM's `aa-eval`: both values must
/// belong to `func` and have pointer type; anything else must answer
/// [`AliasResult::MayAlias`].
pub trait AliasAnalysis {
    /// Short name used in reports ("BA", "LT", "CF", "BA+LT", …).
    fn name(&self) -> String;

    /// Do `p1` and `p2` (both in `func`) alias?
    fn alias(&self, module: &Module, func: FuncId, p1: Value, p2: Value) -> AliasResult;
}

/// Chains analyses: the first definitive (non-`MayAlias`) answer wins —
/// the way LLVM aggregates its alias analyses.
pub struct Combined {
    parts: Vec<Box<dyn AliasAnalysis>>,
}

impl Combined {
    /// Combines the given analyses, queried in order.
    pub fn new(parts: Vec<Box<dyn AliasAnalysis>>) -> Self {
        Self { parts }
    }
}

impl AliasAnalysis for Combined {
    fn name(&self) -> String {
        self.parts.iter().map(|p| p.name()).collect::<Vec<_>>().join("+")
    }

    fn alias(&self, module: &Module, func: FuncId, p1: Value, p2: Value) -> AliasResult {
        for p in &self.parts {
            match p.alias(module, func, p1, p2) {
                AliasResult::MayAlias => continue,
                definitive => return definitive,
            }
        }
        AliasResult::MayAlias
    }
}

/// The pessimistic baseline: every distinct pair *may* alias; only a
/// value and itself *must*. The floor any real analysis is measured
/// against (LLVM's historical `-no-aa`), used by the optimisation-client
/// experiment to show what disambiguation buys at all.
#[derive(Clone, Copy, Debug, Default)]
pub struct NoAa;

impl AliasAnalysis for NoAa {
    fn name(&self) -> String {
        "none".to_string()
    }

    fn alias(&self, _module: &Module, _func: FuncId, p1: Value, p2: Value) -> AliasResult {
        if p1 == p2 {
            AliasResult::MustAlias
        } else {
            AliasResult::MayAlias
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Always(AliasResult, &'static str);
    impl AliasAnalysis for Always {
        fn name(&self) -> String {
            self.1.to_string()
        }
        fn alias(&self, _: &Module, _: FuncId, _: Value, _: Value) -> AliasResult {
            self.0
        }
    }

    #[test]
    fn combined_takes_first_definitive_answer() {
        let m = Module::new();
        let f = FuncId::from_index(0);
        let v = Value::from_index(0);
        let c = Combined::new(vec![
            Box::new(Always(AliasResult::MayAlias, "A")),
            Box::new(Always(AliasResult::NoAlias, "B")),
            Box::new(Always(AliasResult::MustAlias, "C")),
        ]);
        assert_eq!(c.alias(&m, f, v, v), AliasResult::NoAlias);
        assert_eq!(c.name(), "A+B+C");
    }

    #[test]
    fn combined_of_mays_is_may() {
        let m = Module::new();
        let f = FuncId::from_index(0);
        let v = Value::from_index(0);
        let c = Combined::new(vec![Box::new(Always(AliasResult::MayAlias, "A"))]);
        assert_eq!(c.alias(&m, f, v, v), AliasResult::MayAlias);
    }
}
