//! `sraa-minic` — a C-like frontend for the `sraa` SSA IR.
//!
//! The CGO 2017 paper evaluates its analyses on C programs (SPEC CPU 2006,
//! the LLVM test-suite and Csmith-generated sources). MiniC plays the role
//! of that C surface: a small, pointer-oriented C subset with functions,
//! global and local arrays, `malloc`, pointer arithmetic, nested pointers
//! (`int***`), loops and short-circuit booleans. The lowering performs SSA
//! construction directly (Braun et al., CC 2013 — the same local-value-
//! numbering scheme modern compilers use), producing verified
//! [`sraa_ir::Module`]s.
//!
//! Both motivating examples of the paper's Figure 1 compile unchanged
//! modulo syntax; see `examples/ins_sort.rs` and `examples/partition.rs`
//! at the workspace root.
//!
//! # Example
//!
//! ```
//! let module = sraa_minic::compile(r#"
//!     int sum(int n) {
//!         int s = 0;
//!         for (int i = 0; i < n; i++) s += i;
//!         return s;
//!     }
//! "#).unwrap();
//! assert!(module.function_by_name("sum").is_some());
//! ```

pub mod ast;
pub mod lexer;
pub mod lower;
pub mod parser;

pub use ast::{Program, Ty};
pub use lexer::{Token, TokenKind};
pub use lower::lower_program;
pub use parser::parse_program;

use std::fmt;

/// A frontend failure: lexing, parsing, or semantic lowering.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CompileError {
    /// 1-based source line.
    pub line: u32,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for CompileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "minic error at line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for CompileError {}

/// Compiles MiniC source text into a verified IR module.
///
/// # Errors
///
/// Returns a [`CompileError`] for syntax or semantic problems. The produced
/// module is additionally run through the IR verifier; a verifier failure
/// (a frontend bug) is reported as a `CompileError` on line 0.
pub fn compile(source: &str) -> Result<sraa_ir::Module, CompileError> {
    let program = parse_program(source)?;
    let module = lower_program(&program)?;
    if let Err(e) = sraa_ir::verify(&module) {
        return Err(CompileError {
            line: 0,
            message: format!("frontend produced invalid IR: {e}"),
        });
    }
    Ok(module)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compiles_and_runs_figure1a_ins_sort() {
        // Paper Figure 1 (a), verbatim logic.
        let m = compile(
            r#"
            void ins_sort(int* v, int N) {
                int i; int j;
                for (i = 0; i < N - 1; i++) {
                    for (j = i + 1; j < N; j++) {
                        if (v[i] > v[j]) {
                            int tmp = v[i];
                            v[i] = v[j];
                            v[j] = tmp;
                        }
                    }
                }
            }
            int main() {
                int v[8];
                int k;
                for (k = 0; k < 8; k++) v[k] = 8 - k;
                ins_sort(v, 8);
                int bad = 0;
                for (k = 0; k + 1 < 8; k++) if (v[k] > v[k + 1]) bad = 1;
                return bad;
            }
            "#,
        )
        .unwrap();
        let mut interp = sraa_ir::Interpreter::new(&m);
        assert_eq!(interp.run("main", &[]).unwrap().result, Some(0), "array must be sorted");
    }

    #[test]
    fn compiles_and_runs_figure1b_partition() {
        // Paper Figure 1 (b): Hoare partition.
        let m = compile(
            r#"
            void partition(int* v, int N) {
                int i; int j; int p; int tmp;
                p = v[N / 2];
                i = 0; j = N - 1;
                while (1) {
                    while (v[i] < p) i++;
                    while (p < v[j]) j--;
                    if (i >= j) break;
                    tmp = v[i];
                    v[i] = v[j];
                    v[j] = tmp;
                    i++; j--;
                }
            }
            int main() {
                int v[9];
                int k;
                for (k = 0; k < 9; k++) v[k] = 9 - k;
                partition(v, 9);
                return v[4];
            }
            "#,
        )
        .unwrap();
        let mut interp = sraa_ir::Interpreter::new(&m);
        // Execution must succeed; the middle element is in the pivot region.
        assert!(interp.run("main", &[]).unwrap().result.is_some());
    }

    #[test]
    fn rejects_unknown_variable() {
        let e = compile("int main() { return nope; }").unwrap_err();
        assert!(e.message.contains("nope"), "{e}");
    }

    #[test]
    fn pointer_walk_idiom() {
        let m = compile(
            r#"
            int sum(int* p, int n) {
                int s = 0;
                int* pe = p + n;
                for (int* pi = p; pi < pe; pi++) s += *pi;
                return s;
            }
            int main() {
                int a[4];
                a[0] = 1; a[1] = 2; a[2] = 3; a[3] = 4;
                return sum(a, 4);
            }
            "#,
        )
        .unwrap();
        let mut interp = sraa_ir::Interpreter::new(&m);
        assert_eq!(interp.run("main", &[]).unwrap().result, Some(10));
    }

    #[test]
    fn nested_pointers_and_malloc() {
        let m = compile(
            r#"
            int main() {
                int** pp = malloc(4);
                int* row = malloc(8);
                pp[1] = row;
                row[3] = 42;
                int* r2 = pp[1];
                return r2[3];
            }
            "#,
        )
        .unwrap();
        let mut interp = sraa_ir::Interpreter::new(&m);
        assert_eq!(interp.run("main", &[]).unwrap().result, Some(42));
    }

    #[test]
    fn globals_load_and_store() {
        let m = compile(
            r#"
            int g;
            int table[4];
            int main() {
                g = 5;
                table[2] = g + 1;
                return table[2] + g;
            }
            "#,
        )
        .unwrap();
        let mut interp = sraa_ir::Interpreter::new(&m);
        assert_eq!(interp.run("main", &[]).unwrap().result, Some(11));
    }

    #[test]
    fn short_circuit_semantics() {
        let m = compile(
            r#"
            int main() {
                int a[2];
                a[0] = 0; a[1] = 7;
                int i = 0;
                if (i < 2 && a[i] == 0) return 1;
                return 0;
            }
            "#,
        )
        .unwrap();
        let mut interp = sraa_ir::Interpreter::new(&m);
        assert_eq!(interp.run("main", &[]).unwrap().result, Some(1));
    }
}

#[cfg(test)]
mod extended_syntax_tests {
    use super::*;

    fn run(src: &str) -> i64 {
        let m = compile(src).unwrap();
        sraa_ir::Interpreter::new(&m).run("main", &[]).unwrap().result.unwrap()
    }

    #[test]
    fn ternary_expression() {
        assert_eq!(run("int main() { int x = 5; return x < 3 ? 10 : 20; }"), 20);
        assert_eq!(run("int main() { int x = 1; return x < 3 ? 10 : 20; }"), 10);
    }

    #[test]
    fn ternary_is_right_associative_and_nests() {
        assert_eq!(run("int main() { int x = 7; return x < 3 ? 1 : x < 10 ? 2 : 3; }"), 2);
    }

    #[test]
    fn ternary_evaluates_only_one_arm() {
        // The untaken arm would trap (out-of-bounds read).
        assert_eq!(
            run(r#"
            int main() {
                int a[2];
                a[0] = 9;
                int i = 0;
                return i == 0 ? a[0] : a[100];
            }"#),
            9
        );
    }

    #[test]
    fn ternary_over_pointers() {
        assert_eq!(
            run(r#"
            int main() {
                int a[2]; int b[2];
                a[0] = 1; b[0] = 2;
                int c = input() % 2;
                int* p = c == c ? &a[0] : &b[0];
                return *p;
            }"#),
            1
        );
    }

    #[test]
    fn do_while_runs_at_least_once() {
        assert_eq!(
            run(r#"
            int main() {
                int n = 0;
                do { n++; } while (n < 0);
                return n;
            }"#),
            1
        );
    }

    #[test]
    fn do_while_loops_and_supports_break_continue() {
        assert_eq!(
            run(r#"
            int main() {
                int i = 0; int s = 0;
                do {
                    i++;
                    if (i % 2 == 0) continue;
                    if (i > 9) break;
                    s += i;
                } while (i < 100);
                return s;
            }"#),
            1 + 3 + 5 + 7 + 9
        );
    }

    #[test]
    fn do_while_condition_uses_loop_variables() {
        assert_eq!(
            run(r#"
            int main() {
                int i = 10; int steps = 0;
                do { i -= 3; steps++; } while (i > 0);
                return steps;
            }"#),
            4
        );
    }
}
