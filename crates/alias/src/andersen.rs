//! Inclusion-based (Andersen-style) points-to analysis — the stand-in for
//! **CF**, the CFL/Andersen baseline of the paper's Figure 10.
//!
//! The paper compares BA+LT against BA+CF, where CF is Chen's
//! inclusion-based CFL alias analysis for LLVM 4.0. Any
//! inclusion-based points-to fills that role: it disambiguates pointers
//! that reach *different memory objects* (across copies, φs, loads and
//! stores, inter-procedurally), and is completely blind to offsets within
//! one object — the exact complement of the LT analysis.
//!
//! Field-insensitive formulation (one abstract "contents" cell per
//! object), solved with the standard worklist:
//!
//! ```text
//! v = alloca/malloc/global    pts(v) ⊇ {o_v}
//! v = copy/φ/gep(b)           pts(v) ⊇ pts(b)
//! v = load p                  ∀o ∈ pts(p):  pts(v) ⊇ pts(cont(o))
//! store p, x                  ∀o ∈ pts(p):  pts(cont(o)) ⊇ pts(x)
//! formal xf, call g(…aᵢ…)     pts(xf) ⊇ pts(aᵢ)
//! v = call g(…)               pts(v) ⊇ pts(r) for every `ret r` in g
//! param of entry / opaque     pts(v) ⊇ {unknown}
//! ```
//!
//! `unknown` is an object standing for everything the module cannot see;
//! any query touching it answers `MayAlias`.

use crate::{AliasAnalysis, AliasResult};
use sraa_core::VarIndex;
use sraa_ir::{DenseBitSet, FuncId, InstKind, Module, Type, Value};

/// Andersen-style points-to analysis over a whole module.
#[derive(Clone, Debug)]
pub struct AndersenAnalysis {
    index: VarIndex,
    /// Points-to set per node (pointer variables then contents cells).
    pts: Vec<DenseBitSet>,
    unknown: usize,
}

impl AndersenAnalysis {
    /// Builds and solves the inclusion constraint system for `module`.
    pub fn new(module: &Module) -> Self {
        ConstraintBuilder::new(module).solve()
    }

    /// The points-to set of `v` (object indices; internal numbering).
    fn pts_of(&self, f: FuncId, v: Value) -> &DenseBitSet {
        &self.pts[self.index.id(f, v).index()]
    }
}

impl AliasAnalysis for AndersenAnalysis {
    fn name(&self) -> String {
        "CF".to_string()
    }

    fn alias(&self, _module: &Module, func: FuncId, p1: Value, p2: Value) -> AliasResult {
        if p1 == p2 {
            return AliasResult::MustAlias;
        }
        let a = self.pts_of(func, p1);
        let b = self.pts_of(func, p2);
        if a.is_empty() || b.is_empty() {
            // A pointer with an empty set never dereferences a visible
            // object (dead or int-derived); stay conservative.
            return AliasResult::MayAlias;
        }
        if a.contains(self.unknown) || b.contains(self.unknown) {
            return AliasResult::MayAlias;
        }
        let mut inter = a.clone();
        inter.intersect_with(b);
        if inter.is_empty() {
            AliasResult::NoAlias
        } else {
            AliasResult::MayAlias
        }
    }
}

/// Constraint builder and solver scaffolding.
struct ConstraintBuilder<'m> {
    module: &'m Module,
    index: VarIndex,
    /// Object id per allocation-site value (by flat id), if any.
    site_obj: Vec<Option<usize>>,
    num_objects: usize,
    unknown: usize,
}

impl<'m> ConstraintBuilder<'m> {
    fn new(module: &'m Module) -> Self {
        let index = VarIndex::new(module);
        let mut site_obj = vec![None; index.len()];
        let mut num_objects = 0usize;
        // One object per global first (canonical across functions).
        let global_base = 0usize;
        num_objects += module.num_globals();
        for (fid, f) in module.functions() {
            for b in f.block_ids() {
                for (v, data) in f.block_insts(b) {
                    match data.kind {
                        InstKind::Alloca { .. } | InstKind::Malloc { .. } => {
                            site_obj[index.id(fid, v).index()] = Some(num_objects);
                            num_objects += 1;
                        }
                        InstKind::GlobalAddr(g) => {
                            site_obj[index.id(fid, v).index()] = Some(global_base + g.index());
                        }
                        _ => {}
                    }
                }
            }
        }
        let unknown = num_objects;
        num_objects += 1;
        Self { module, index, site_obj, num_objects, unknown }
    }

    fn solve(self) -> AndersenAnalysis {
        let nv = self.index.len();
        // Node layout: [0, nv) = pointer variables; [nv, nv+objects) =
        // contents cells.
        let n_nodes = nv + self.num_objects;
        let mut pts: Vec<DenseBitSet> = vec![DenseBitSet::new(self.num_objects); n_nodes];
        let mut edges: Vec<Vec<u32>> = vec![Vec::new(); n_nodes]; // src → dst
        let mut loads: Vec<Vec<u32>> = vec![Vec::new(); n_nodes]; // (p, dst)
        let mut stores: Vec<Vec<u32>> = vec![Vec::new(); n_nodes]; // (p, src)
        let cont = |o: usize| nv + o;

        // The unknown object's contents point to unknown.
        pts[cont(self.unknown)].insert(self.unknown);

        let mut internally_called = vec![false; self.module.num_functions()];
        for (_, f) in self.module.functions() {
            for b in f.block_ids() {
                for (_, d) in f.block_insts(b) {
                    if let InstKind::Call { callee, .. } = &d.kind {
                        internally_called[callee.index()] = true;
                    }
                }
            }
        }

        // Base constraints and copy edges.
        for (fid, f) in self.module.functions() {
            let is_ptr = |v: Value| f.value_type(v).is_some_and(Type::is_ptr);
            for b in f.block_ids() {
                for (v, data) in f.block_insts(b) {
                    let vid = self.index.id(fid, v).index();
                    match &data.kind {
                        InstKind::Alloca { .. }
                        | InstKind::Malloc { .. }
                        | InstKind::GlobalAddr(_) => {
                            let o = self.site_obj[vid].expect("allocation site has an object");
                            pts[vid].insert(o);
                        }
                        InstKind::Copy { src, .. } if is_ptr(v) => {
                            edges[self.index.id(fid, *src).index()].push(vid as u32);
                        }
                        InstKind::Gep { base, .. } if is_ptr(v) => {
                            // Field-insensitive: derived pointer points
                            // wherever its base points.
                            edges[self.index.id(fid, *base).index()].push(vid as u32);
                        }
                        InstKind::Phi { incomings } if is_ptr(v) => {
                            for (_, x) in incomings {
                                edges[self.index.id(fid, *x).index()].push(vid as u32);
                            }
                        }
                        InstKind::Load { ptr } if is_ptr(v) => {
                            loads[self.index.id(fid, *ptr).index()].push(vid as u32);
                        }
                        InstKind::Store { ptr, value } if is_ptr(*value) => {
                            stores[self.index.id(fid, *ptr).index()]
                                .push(self.index.id(fid, *value).raw());
                        }
                        InstKind::Param(i) if is_ptr(v) => {
                            if internally_called[fid.index()] {
                                // Edges added from call sites below.
                                let _ = i;
                            } else {
                                pts[vid].insert(self.unknown);
                            }
                        }
                        InstKind::Opaque if is_ptr(v) => {
                            pts[vid].insert(self.unknown);
                        }
                        InstKind::Call { callee, args } => {
                            let cf = self.module.function(*callee);
                            // Actual → formal edges.
                            for (i, a) in args.iter().enumerate() {
                                if f.value_type(*a).is_some_and(Type::is_ptr) {
                                    let formal = self.index.id(*callee, cf.param_value(i));
                                    edges[self.index.id(fid, *a).index()].push(formal.raw());
                                }
                            }
                            // Return → result edges.
                            if is_ptr(v) {
                                for cb in cf.block_ids() {
                                    if let Some(t) = cf.terminator(cb) {
                                        if let InstKind::Ret(Some(r)) = cf.inst(t).kind {
                                            edges[self.index.id(*callee, r).index()]
                                                .push(vid as u32);
                                        }
                                    }
                                }
                            }
                        }
                        _ => {}
                    }
                }
            }
        }

        // Worklist propagation.
        let mut on_list = vec![false; n_nodes];
        let mut worklist: Vec<usize> = Vec::new();
        for n in 0..n_nodes {
            if !pts[n].is_empty() {
                on_list[n] = true;
                worklist.push(n);
            }
        }
        while let Some(n) = worklist.pop() {
            on_list[n] = false;
            // Resolve complex constraints for newly discovered objects.
            let objs: Vec<usize> = pts[n].iter().collect();
            let mut new_edges: Vec<(usize, usize)> = Vec::new();
            for &dst in &loads[n] {
                for &o in &objs {
                    new_edges.push((cont(o), dst as usize));
                }
            }
            for &src in &stores[n] {
                for &o in &objs {
                    new_edges.push((src as usize, cont(o)));
                }
            }
            for (s, d) in new_edges {
                if !edges[s].contains(&(d as u32)) {
                    edges[s].push(d as u32);
                    // Propagate immediately.
                    let snap = pts[s].clone();
                    if pts[d].union_with(&snap) && !on_list[d] {
                        on_list[d] = true;
                        worklist.push(d);
                    }
                }
            }
            // Propagate along copy edges.
            let outs = edges[n].clone();
            let snap = pts[n].clone();
            for d in outs {
                let d = d as usize;
                if pts[d].union_with(&snap) && !on_list[d] {
                    on_list[d] = true;
                    worklist.push(d);
                }
            }
        }

        AndersenAnalysis { index: self.index, pts, unknown: self.unknown }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn prepared(src: &str) -> (Module, AndersenAnalysis) {
        let m = sraa_minic::compile(src).unwrap();
        let an = AndersenAnalysis::new(&m);
        (m, an)
    }

    fn mem_ptrs(m: &Module, name: &str) -> (FuncId, Vec<Value>) {
        let fid = m.function_by_name(name).unwrap();
        let f = m.function(fid);
        let mut out = Vec::new();
        for b in f.block_ids() {
            for (_, d) in f.block_insts(b) {
                match &d.kind {
                    InstKind::Load { ptr } => out.push(*ptr),
                    InstKind::Store { ptr, .. } => out.push(*ptr),
                    _ => {}
                }
            }
        }
        (fid, out)
    }

    #[test]
    fn separate_allocations_no_alias() {
        let (m, an) = prepared(
            "int main() { int* p = malloc(4); int* q = malloc(4); *p = 1; *q = 2; return 0; }",
        );
        let (fid, ptrs) = mem_ptrs(&m, "main");
        assert_eq!(an.alias(&m, fid, ptrs[0], ptrs[1]), AliasResult::NoAlias);
    }

    #[test]
    fn flow_through_memory_is_tracked() {
        // q is loaded from a slot that stores p: they must may-alias.
        let (m, an) = prepared(
            r#"
            int main() {
                int* p = malloc(4);
                int** slot = malloc(1);
                slot[0] = p;
                int* q = slot[0];
                *q = 1;
                *p = 2;
                return 0;
            }
            "#,
        );
        let (fid, ptrs) = mem_ptrs(&m, "main");
        // last two accesses: *q and *p.
        let q = ptrs[ptrs.len() - 2];
        let p = ptrs[ptrs.len() - 1];
        assert_eq!(an.alias(&m, fid, q, p), AliasResult::MayAlias);
    }

    #[test]
    fn same_array_different_offsets_may_alias() {
        // Field-insensitive: CF cannot separate v[i] from v[j].
        let (m, an) = prepared("int main() { int a[8]; a[1] = 1; a[2] = 2; return 0; }");
        let (fid, ptrs) = mem_ptrs(&m, "main");
        assert_eq!(an.alias(&m, fid, ptrs[0], ptrs[1]), AliasResult::MayAlias);
    }

    #[test]
    fn interprocedural_points_to() {
        // g's parameter receives only `a`, so it cannot alias `b` in g's
        // caller-side view… and inside g, p vs a fresh local differs.
        let (m, an) = prepared(
            r#"
            int g(int* p) { int local[2]; local[0] = 1; *p = 2; return local[0]; }
            int main() { int a[4]; return g(a); }
            "#,
        );
        let (fid, ptrs) = mem_ptrs(&m, "g");
        // local[0] store vs *p store.
        assert_eq!(an.alias(&m, fid, ptrs[0], ptrs[1]), AliasResult::NoAlias);
    }

    #[test]
    fn entry_params_are_unknown() {
        let (m, an) = prepared("int f(int* p, int* q) { *p = 1; *q = 2; return 0; }");
        let (fid, ptrs) = mem_ptrs(&m, "f");
        assert_eq!(
            an.alias(&m, fid, ptrs[0], ptrs[1]),
            AliasResult::MayAlias,
            "uncalled function's params may point anywhere"
        );
    }

    #[test]
    fn global_reached_from_two_paths() {
        let (m, an) = prepared(
            r#"
            int g[8];
            int f(int c) {
                int* p = g + 1;
                int* q = g + 2;
                *p = 1;
                *q = 2;
                return 0;
            }
            "#,
        );
        let (fid, ptrs) = mem_ptrs(&m, "f");
        assert_eq!(
            an.alias(&m, fid, ptrs[0], ptrs[1]),
            AliasResult::MayAlias,
            "both point into the same global object"
        );
    }
}
