//! `sraa-bench` — the experiment harness.
//!
//! One binary per figure of the paper's evaluation section:
//!
//! | binary        | paper artefact | what it prints                             |
//! |---------------|----------------|--------------------------------------------|
//! | `fig8`        | Figure 8       | per-benchmark Total/LT/BA/BA+LT no-alias   |
//! | `fig9`        | Figure 9       | SPEC table: #queries + %BA/%LT/%(BA+LT)    |
//! | `fig10`       | Figure 10      | %BA vs %(BA+LT) vs %(BA+CF) bars           |
//! | `fig11`       | Figure 11      | #instructions vs #constraints + R²         |
//! | `fig12`       | Figure 12      | PDG memory nodes: static/BA/BA+LT          |
//! | `scalability` | §4.2           | pops/constraint, time-vs-size R², set sizes|
//! | `ablation`    | design choices | faithful vs extended rules, param pairs    |
//! | `pentagon_vs_lt` | §5 prose    | LT vs dense Pentagons: divergence + cost   |
//! | `applicability_opt` | §2 prose | loads/stores removed per alias oracle      |
//!
//! All binaries honour `SRAA_SUITE_N` (suite size, default 100) and print
//! CSV-ish aligned tables to stdout so the output can be diffed against
//! EXPERIMENTS.md.

use sraa_alias::{
    AaEval, AliasAnalysis, AndersenAnalysis, BasicAliasAnalysis, Combined, EvalSummary,
    StrictInequalityAa,
};
use sraa_core::{EngineConfig, GenConfig};
use sraa_ir::{Module, ModuleStats};
use sraa_synth::Workload;
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

/// A [`System`]-backed global allocator that counts allocations, so the
/// harness can report allocator pressure alongside wall clock: allocation
/// counts are deterministic where timings are noisy, which makes them the
/// tighter regression signal for the perf gate.
pub struct CountingAlloc;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

// SAFETY: defers every operation to `System`; the counter has no effect
// on the returned memory.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc_zeroed(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

/// Heap allocations (including reallocs) since process start. Subtract
/// two readings to count the allocations of a region of code.
pub fn alloc_count() -> u64 {
    ALLOCATIONS.load(Ordering::Relaxed)
}

/// Peak resident set size of this process in KiB (`VmHWM` from
/// `/proc/self/status`), or 0 where procfs is unavailable.
pub fn peak_rss_kb() -> u64 {
    std::fs::read_to_string("/proc/self/status")
        .ok()
        .and_then(|s| {
            s.lines()
                .find(|l| l.starts_with("VmHWM:"))
                .and_then(|l| l.split_whitespace().nth(1))
                .and_then(|v| v.parse().ok())
        })
        .unwrap_or(0)
}

/// A compiled workload with every analysis constructed, ready to query.
pub struct Prepared {
    /// Benchmark name.
    pub name: String,
    /// The module, already in e-SSA form.
    pub module: Module,
    /// The paper's analysis (LT).
    pub lt: StrictInequalityAa,
    /// LLVM-basic-aa-style heuristics (BA).
    pub ba: BasicAliasAnalysis,
    /// Size statistics of the e-SSA module.
    pub stats: ModuleStats,
}

impl Prepared {
    /// Compiles and analyses one workload.
    ///
    /// # Panics
    ///
    /// Panics if the generated source fails to compile — that is a bug in
    /// the generators, not an experiment outcome.
    pub fn new(w: &Workload) -> Prepared {
        Self::with_config(w, GenConfig::default())
    }

    /// [`Prepared::new`] with an explicit LT configuration.
    pub fn with_config(w: &Workload, cfg: GenConfig) -> Prepared {
        Self::with_engine_config(w, EngineConfig::from(cfg))
    }

    /// [`Prepared::new`] with a full engine configuration (constraint
    /// options + [`sraa_core::SolverKind`] strategy).
    pub fn with_engine_config(w: &Workload, cfg: EngineConfig) -> Prepared {
        let mut module = sraa_minic::compile(&w.source)
            .unwrap_or_else(|e| panic!("workload {} failed to compile: {e}", w.name));
        let lt = StrictInequalityAa::with_engine_config(&mut module, cfg);
        let ba = BasicAliasAnalysis::new(&module);
        let stats = ModuleStats::compute(&module);
        Prepared { name: w.name.clone(), module, lt, ba, stats }
    }

    /// The BA+LT combination. The LT handle shares the prepared engine —
    /// its solved relation and memo cache — instead of re-running the
    /// pipeline.
    pub fn ba_plus_lt(&self) -> Combined {
        Combined::new(vec![Box::new(self.ba.clone()), Box::new(self.lt.clone())])
    }

    /// The BA+CF combination (builds the Andersen analysis on demand).
    pub fn ba_plus_cf(&self) -> Combined {
        Combined::new(vec![
            Box::new(self.ba.clone()),
            Box::new(AndersenAnalysis::new(&self.module)),
        ])
    }

    /// Runs `aa-eval` for the given analyses.
    pub fn eval(&self, analyses: &[&dyn AliasAnalysis]) -> Vec<EvalSummary> {
        AaEval::run(&self.module, analyses)
    }
}

/// Suite size from `SRAA_SUITE_N` (default 100).
pub fn suite_n() -> usize {
    std::env::var("SRAA_SUITE_N").ok().and_then(|v| v.parse().ok()).unwrap_or(100)
}

/// Ordinary-least-squares R² of `y` against `x` — the statistic the paper
/// reports for Figure 11 (0.992) and the solve-time fit (0.988).
pub fn r_squared(xs: &[f64], ys: &[f64]) -> f64 {
    assert_eq!(xs.len(), ys.len());
    let n = xs.len() as f64;
    if n < 2.0 {
        return 1.0;
    }
    let mx = xs.iter().sum::<f64>() / n;
    let my = ys.iter().sum::<f64>() / n;
    let sxy: f64 = xs.iter().zip(ys).map(|(x, y)| (x - mx) * (y - my)).sum();
    let sxx: f64 = xs.iter().map(|x| (x - mx) * (x - mx)).sum();
    let syy: f64 = ys.iter().map(|y| (y - my) * (y - my)).sum();
    if sxx == 0.0 || syy == 0.0 {
        return 1.0;
    }
    (sxy * sxy) / (sxx * syy)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sraa_core::SolverKind;

    #[test]
    fn alloc_counter_observes_heap_traffic() {
        let before = alloc_count();
        let v: Vec<u64> = (0..1024).collect();
        std::hint::black_box(&v);
        assert!(alloc_count() > before, "a fresh Vec must register at least one allocation");
    }

    #[test]
    fn alloc_counter_aggregates_across_threads() {
        // The wavefront scheduler solves SCCs on scoped worker threads;
        // the perf gate's allocation counts are only meaningful if heap
        // traffic from every thread lands in the one global counter.
        let before = alloc_count();
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    let v: Vec<u64> = (0..1024).collect();
                    std::hint::black_box(&v);
                });
            }
        });
        assert!(
            alloc_count() >= before + 4,
            "worker-thread allocations must register in the global counter"
        );
    }

    #[test]
    fn peak_rss_is_reported_where_procfs_exists() {
        if std::path::Path::new("/proc/self/status").exists() {
            assert!(peak_rss_kb() > 0, "a running process has a nonzero high-water mark");
        } else {
            assert_eq!(peak_rss_kb(), 0, "no procfs: the helper must degrade to 0, not panic");
        }
    }

    #[test]
    fn r_squared_of_perfect_line_is_one() {
        let xs: Vec<f64> = (0..20).map(|i| i as f64).collect();
        let ys: Vec<f64> = xs.iter().map(|x| 3.0 * x + 1.0).collect();
        assert!((r_squared(&xs, &ys) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn r_squared_of_noise_is_low() {
        // Deterministic pseudo-noise.
        let xs: Vec<f64> = (0..100).map(|i| i as f64).collect();
        let ys: Vec<f64> = (0..100).map(|i| (i * 2654435761u64 % 97) as f64).collect();
        assert!(r_squared(&xs, &ys) < 0.3);
    }

    #[test]
    fn prepared_strategies_agree() {
        let w = Workload {
            name: "t".into(),
            source: "int f(int* v, int n) { for (int i = 0; i + 1 < n; i++) v[i] = v[i+1]; return 0; } int main() { int a[8]; return f(a, 8); }".into(),
        };
        let scc = Prepared::new(&w);
        let wl = Prepared::with_engine_config(
            &w,
            EngineConfig { solver: SolverKind::Worklist, ..Default::default() },
        );
        assert_eq!(scc.eval(&[&scc.lt]), wl.eval(&[&wl.lt]));
    }

    #[test]
    fn prepared_builds_all_analyses() {
        let w = Workload {
            name: "t".into(),
            source: "int f(int* v, int n) { for (int i = 0; i + 1 < n; i++) v[i] = v[i+1]; return 0; } int main() { int a[8]; return f(a, 8); }".into(),
        };
        let p = Prepared::new(&w);
        let out = p.eval(&[&p.ba, &p.lt, &p.ba_plus_lt(), &p.ba_plus_cf()]);
        assert_eq!(out.len(), 4);
        let total = out[0].total();
        assert!(out.iter().all(|s| s.total() == total));
        // BA+LT dominates each part.
        assert!(out[2].no_alias >= out[0].no_alias);
        assert!(out[2].no_alias >= out[1].no_alias);
    }
}
