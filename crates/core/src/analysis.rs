//! The paper-facing surface of the end-to-end pipeline.
//!
//! ```text
//! SSA module ──σ-split──▶ e-SSA ──range──▶ intervals ──sub-split──▶ e-SSA(full)
//!            ──Figure 7──▶ constraints ──fixpoint──▶ LT sets
//! ```
//!
//! The pipeline itself lives in the
//! [`DisambiguationEngine`] — this
//! module keeps the paper's name for it ([`StrictInequalityAnalysis`])
//! plus the two IR-walking helpers Definition 3.11 needs
//! ([`derived_pointer`], [`strip_copies`]).

use crate::engine::DisambiguationEngine;
use sraa_ir::{Function, InstKind, Value};

/// The paper's name for the solved analysis — an alias for the
/// [`DisambiguationEngine`], which owns the pipeline and the query layer.
/// `StrictInequalityAnalysis::run(&mut module)` remains the canonical
/// entry point for paper-faithful use.
pub type StrictInequalityAnalysis = DisambiguationEngine;

/// If `p` is a derived pointer `base + offset`, returns `(base, offset)`.
/// Copies around the `gep` are looked through.
pub fn derived_pointer(func: &Function, p: Value) -> Option<(Value, Value)> {
    match &func.inst(strip_copies(func, p)).kind {
        InstKind::Gep { base, offset } => Some((*base, *offset)),
        _ => None,
    }
}

/// Follows `Copy` chains to the underlying value (σ-copies and live-range
/// splits denote the same run-time value as their source).
pub fn strip_copies(func: &Function, mut v: Value) -> Value {
    loop {
        match &func.inst(v).kind {
            InstKind::Copy { src, .. } => v = *src,
            _ => return v,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sraa_ir::{FuncId, Module};

    fn analyzed(src: &str) -> (Module, StrictInequalityAnalysis) {
        let mut m = sraa_minic::compile(src).unwrap();
        let lt = StrictInequalityAnalysis::run(&mut m);
        sraa_ir::verify(&m).unwrap();
        (m, lt)
    }

    /// Finds the (unique) load and store addresses of a function, in
    /// textual order — convenient handles on `v[i]`-style expressions.
    fn memory_addresses(m: &Module, name: &str) -> (FuncId, Vec<Value>) {
        let fid = m.function_by_name(name).unwrap();
        let f = m.function(fid);
        let mut out = Vec::new();
        for b in f.block_ids() {
            for (_, d) in f.block_insts(b) {
                match &d.kind {
                    InstKind::Load { ptr } => out.push(*ptr),
                    InstKind::Store { ptr, .. } => out.push(*ptr),
                    _ => {}
                }
            }
        }
        (fid, out)
    }

    #[test]
    fn figure1a_ins_sort_disambiguates_vi_vj() {
        // Paper Figure 1 (a): inside the inner loop, i < j always, so v[i]
        // and v[j] never alias — the motivating example.
        let (m, lt) = analyzed(
            r#"
            void ins_sort(int* v, int N) {
                int i; int j;
                for (i = 0; i < N - 1; i++) {
                    for (j = i + 1; j < N; j++) {
                        if (v[i] > v[j]) {
                            int tmp = v[i];
                            v[i] = v[j];
                            v[j] = tmp;
                        }
                    }
                }
            }
            "#,
        );
        let (fid, addrs) = memory_addresses(&m, "ins_sort");
        let f = m.function(fid);
        // All addresses are geps off v with offsets i or j; every (i-offset,
        // j-offset) pair must be disambiguated.
        let mut checked = 0;
        for (k, &a) in addrs.iter().enumerate() {
            for &b in addrs.iter().skip(k + 1) {
                let (Some((_, xa)), Some((_, xb))) = (derived_pointer(f, a), derived_pointer(f, b))
                else {
                    continue;
                };
                // Same index variable (i vs i) must NOT be disambiguated;
                // i vs j must.
                let same = strip_copies(f, xa) == strip_copies(f, xb);
                if same {
                    assert!(!lt.no_alias(f, fid, a, b), "v[i] vs v[i] must may-alias");
                } else {
                    assert!(lt.no_alias(f, fid, a, b), "v[i] vs v[j] must be disambiguated");
                    checked += 1;
                }
            }
        }
        assert!(checked >= 4, "several i/j pairs should have been checked: {checked}");
    }

    #[test]
    fn figure1b_partition_disambiguates_vi_vj() {
        // Paper Figure 1 (b): i < j is established by the `if (i >= j) break`.
        let (m, lt) = analyzed(
            r#"
            void partition(int* v, int N) {
                int i; int j; int p; int tmp;
                p = v[N / 2];
                i = 0; j = N - 1;
                while (1) {
                    while (v[i] < p) i++;
                    while (p < v[j]) j--;
                    if (i >= j) break;
                    tmp = v[i];
                    v[i] = v[j];
                    v[j] = tmp;
                    i++; j--;
                }
            }
            "#,
        );
        let (fid, addrs) = memory_addresses(&m, "partition");
        let f = m.function(fid);
        // The three accesses after the break check: v[i] (load), v[i]
        // (store), v[j] (load+store). Find a disambiguated i/j pair.
        let mut disambiguated = 0;
        for (k, &a) in addrs.iter().enumerate() {
            for &b in addrs.iter().skip(k + 1) {
                if lt.no_alias(f, fid, a, b) {
                    disambiguated += 1;
                }
            }
        }
        assert!(
            disambiguated >= 2,
            "the post-break v[i]/v[j] accesses must be disambiguated: {disambiguated}"
        );
    }

    #[test]
    fn pointer_walk_criterion1() {
        // for (pi = p; pi < pe; pi++): inside the loop pi < pe (σ on the
        // comparison) — criterion 1 disambiguates *pi from *pe.
        let (m, lt) = analyzed(
            r#"
            int f(int* p, int n) {
                int* pe = p + n;
                int s = 0;
                for (int* pi = p; pi < pe; pi++) { s += *pi; *pe = s; }
                return s;
            }
            "#,
        );
        let (fid, addrs) = memory_addresses(&m, "f");
        let f = m.function(fid);
        assert_eq!(addrs.len(), 2);
        assert!(lt.no_alias(f, fid, addrs[0], addrs[1]), "pi < pe inside the loop body ⇒ no alias");
    }

    #[test]
    fn base_vs_positive_offset() {
        // p and p + n with n > 0: p ∈ LT(p+n) by rule 2 on the gep.
        let (m, lt) = analyzed(
            r#"
            int f(int* p, int n) {
                if (n > 0) {
                    int* q = p + n;
                    *q = 1;
                    *p = 2;
                    return *q;
                }
                return 0;
            }
            "#,
        );
        let (fid, addrs) = memory_addresses(&m, "f");
        let f = m.function(fid);
        // q vs p (first store vs second store).
        assert!(lt.no_alias(f, fid, addrs[0], addrs[1]), "p < p+n for n > 0");
    }

    #[test]
    fn unknown_offsets_not_disambiguated() {
        // p + a vs p + b with unrelated a, b: must stay may-alias.
        let (m, lt) = analyzed(
            r#"
            int f(int* p, int a, int b) {
                int x = p[a];
                int y = p[b];
                return x + y;
            }
            "#,
        );
        let (fid, addrs) = memory_addresses(&m, "f");
        let f = m.function(fid);
        assert!(!lt.no_alias(f, fid, addrs[0], addrs[1]), "a and b are unrelated");
    }

    #[test]
    fn same_pointer_is_never_no_alias() {
        let (m, lt) = analyzed("int f(int* p) { return *p + *p; }");
        let (fid, addrs) = memory_addresses(&m, "f");
        let f = m.function(fid);
        assert!(!lt.no_alias(f, fid, addrs[0], addrs[1]));
        assert!(!lt.no_alias(f, fid, addrs[0], addrs[0]));
    }

    #[test]
    fn malloc_pair_not_handled_by_lt() {
        // The paper is explicit: p1 = malloc(); p2 = malloc() is NOT
        // disambiguated by the less-than analysis (BasicAA's job).
        let (m, lt) = analyzed(
            r#"
            int main() {
                int* p = malloc(4);
                int* q = malloc(4);
                *p = 1; *q = 2;
                return *p;
            }
            "#,
        );
        let (fid, addrs) = memory_addresses(&m, "main");
        let f = m.function(fid);
        assert!(!lt.no_alias(f, fid, addrs[0], addrs[1]));
    }

    #[test]
    fn constant_offsets_not_handled_by_lt() {
        // p+1 vs p+2: the paper's §3.6 says LT cannot disambiguate these
        // (range-based analyses do).
        let (m, lt) = analyzed(
            r#"
            int f(int* p) {
                int* p1 = p + 1;
                int* p2 = p + 2;
                *p1 = 1; *p2 = 2;
                return *p1;
            }
            "#,
        );
        let (fid, addrs) = memory_addresses(&m, "f");
        let f = m.function(fid);
        assert!(!lt.no_alias(f, fid, addrs[0], addrs[1]));
    }

    #[test]
    fn interprocedural_relation_via_pseudo_phi() {
        // g's parameters inherit i < j from the unique call site.
        let (m, lt) = analyzed(
            r#"
            int g(int* v, int i, int j) { return v[i] + v[j]; }
            int f(int* v, int n) {
                int s = 0;
                for (int i = 0; i + 1 < n; i++) s += g(v, i, i + 1);
                return s;
            }
            "#,
        );
        let (fid, addrs) = memory_addresses(&m, "g");
        let f = m.function(fid);
        assert_eq!(addrs.len(), 2);
        assert!(
            lt.no_alias(f, fid, addrs[0], addrs[1]),
            "i < i+1 flows into g's formals through the pseudo-φ"
        );
    }

    #[test]
    fn lt_sets_stay_small() {
        let (_, lt) = analyzed(
            r#"
            int f(int* v, int n) {
                int s = 0;
                for (int i = 0; i < n; i++)
                    for (int j = i + 1; j < n; j++)
                        s += v[i] * v[j];
                return s;
            }
            "#,
        );
        let hist = lt.size_histogram();
        let total: usize = hist.iter().map(|(_, c)| c).sum();
        let small: usize = hist.iter().filter(|(n, _)| *n <= 4).map(|(_, c)| c).sum();
        assert!(
            small as f64 / total as f64 > 0.8,
            "most LT sets should be tiny, got histogram {hist:?}"
        );
    }
}
