//! Interprocedural **strict-inequality summaries** — the layer that lets
//! `x < len`-style facts cross call boundaries.
//!
//! The paper's analysis is intraprocedural: every call result is grounded
//! at `LT(r) = ∅`, so a helper as trivial as `int next(int i) { return
//! i + 1; }` erases the `i < next(i)` fact its body proves. This module
//! distils, for every function, a **summary** — the set of formal
//! parameters that are strictly less than every value the function can
//! return — and propagates it bottom-up over the SCC condensation of the
//! direct call graph ([`sraa_ir::CallGraph`]):
//!
//! ```text
//!   condensed call graph, callees-first
//!   ┌────────┐      ┌───────────┐      ┌───────────┐
//!   │ leaf g │─────▶│ SCC {f,h} │─────▶│  main …   │
//!   └────────┘      └───────────┘      └───────────┘
//!    solve g's       iterate the        every call site
//!    constraints,    members' solves    r = g(a…) now yields
//!    distil S(g)     to a fixpoint      LT(r) ⊇ {a_j} ∪ LT(a_j)
//!                    (recursion)           for each j ∈ S(g)
//! ```
//!
//! # Per-SCC solves
//!
//! Each component is solved in isolation: its members' Figure-7
//! constraints (with summaries of *earlier* components applied at call
//! sites), plus `Init` grounding for the formal parameters. Grounded
//! params are what makes a distilled fact **context-free** — `param_j ∈
//! LT(ret)` must hold for every caller, so the solve must not assume any
//! caller facts. Variables are remapped into a compact per-component
//! space (`SccSpace`) so a solve costs `O(|SCC|)`, not `O(|module|)`.
//!
//! # Recursion
//!
//! Members of a recursive component read their *own* (and their
//! siblings') summaries at intra-SCC call sites. The fixpoint starts
//! **optimistically** (every parameter assumed `< ret`) and descends
//! until stable — the same greatest-fixpoint treatment the paper gives
//! φ-cycles (Theorem 3.7). Soundness is by induction on the height of a
//! terminating call tree: a fact consumed at height `h` is justified by
//! derivations over strictly smaller trees, bottoming out at
//! non-recursive return paths; claims about calls that never return are
//! vacuous (there is no runtime value to compare). The differential and
//! interpreter-based tests (`tests/interproc.rs`) check exactly this.
//!
//! # What a summary does *not* carry (yet)
//!
//! `ret < param_j` facts (e.g. `return n - 1`) would require editing the
//! *argument's* defining constraint at every call site; caller-specific
//! (context-sensitive) facts and indirect calls are also out of scope.
//! See ROADMAP "Open items".

use crate::constraints::{self, Constraint, GenConfig};
use crate::engine::FixpointSolver;
use crate::lattice::LatticeBackend;
use crate::persist::{SummaryCache, SummaryKeys};
use crate::var_index::{VarId, VarIndex};
use sraa_ir::{CallGraph, FuncId, InstKind, Module, Value};
use sraa_range::RangeAnalysis;

/// What one function guarantees about its return value, independent of
/// any calling context.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct FunctionSummary {
    /// Sorted indices `j` of formal parameters with `param_j < ret` at
    /// every return site. (`pub(crate)` so `persist` can reconstruct
    /// summaries from their serialized form.)
    pub(crate) args_lt_ret: Box<[u32]>,
}

impl FunctionSummary {
    /// Sorted indices of parameters proven strictly less than every
    /// returned value.
    pub fn args_lt_ret(&self) -> &[u32] {
        &self.args_lt_ret
    }

    /// Number of facts in the summary.
    pub fn facts(&self) -> usize {
        self.args_lt_ret.len()
    }

    /// Whether the summary carries no facts (calls stay opaque).
    pub fn is_empty(&self) -> bool {
        self.args_lt_ret.is_empty()
    }
}

/// Statistics of one bottom-up summary computation.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SummaryStats {
    /// Components of the condensed call graph.
    pub sccs: usize,
    /// Components containing a call cycle.
    pub recursive_sccs: usize,
    /// Total per-SCC solves (≥ `sccs` on a cold run; recursion iterates,
    /// and warm runs skip cache-hit components entirely).
    pub solves: u64,
    /// Total `param_j < ret` facts across all functions.
    pub facts: usize,
}

/// How a warm run used the persistent summary cache, counted per
/// *function* (every function of the module falls in exactly one bucket).
///
/// Deterministic for a given `(module, cache)` pair — the differential
/// tests assert the exact counts against call-graph reverse reachability.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheOutcome {
    /// Functions whose cached key matched; their summaries were reused
    /// and their component's solve skipped.
    pub hits: u32,
    /// Functions with no cache entry under their name.
    pub misses: u32,
    /// Functions whose entry exists but whose key changed (the function,
    /// or something it can call, was edited).
    pub invalidated: u32,
}

impl CacheOutcome {
    /// Hits over all classified functions, in `[0, 1]`; `1.0` for an
    /// empty module (nothing *missed*).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses + self.invalidated;
        if total == 0 {
            1.0
        } else {
            f64::from(self.hits) / f64::from(total)
        }
    }
}

/// Per-function summaries for a whole module, in [`FuncId`] order.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ModuleSummaries {
    per_func: Vec<FunctionSummary>,
    /// Computation statistics (component counts, fixpoint iterations).
    pub stats: SummaryStats,
}

impl ModuleSummaries {
    /// Computes all summaries bottom-up over the condensed call graph.
    ///
    /// `module` must already be in e-SSA form with `ranges` computed for
    /// it (the same preconditions as constraint generation).
    pub fn compute(
        module: &Module,
        ranges: &RangeAnalysis,
        cfg: GenConfig,
        index: &VarIndex,
        solver: &dyn FixpointSolver,
        lattice: LatticeBackend,
    ) -> Self {
        Self::compute_inner(module, ranges, cfg, index, solver, lattice, false, None).0
    }

    /// [`ModuleSummaries::compute`] with a **warm path**: components whose
    /// members all hit the persistent `cache` (same name, same
    /// [`SummaryKeys`] key) reuse their stored summaries and skip the
    /// Init-grounded per-SCC solve entirely. Cold components solve as
    /// usual — against the already-installed summaries of their callees,
    /// cached or not — so the result is *identical* to a cold
    /// [`ModuleSummaries::compute`] (up to `stats.solves`, which records
    /// the work actually done; the differential suite in
    /// `tests/incremental.rs` holds this to byte-identical solutions).
    /// Computes (and returns) the [`SummaryKeys`] itself, sharing one
    /// call-graph + condensation build with the solve loop; hand the
    /// keys to [`crate::persist::save`] to refresh the cache afterwards.
    pub fn compute_incremental(
        module: &Module,
        ranges: &RangeAnalysis,
        cfg: GenConfig,
        index: &VarIndex,
        solver: &dyn FixpointSolver,
        lattice: LatticeBackend,
        cache: Option<&SummaryCache>,
    ) -> (Self, SummaryKeys, CacheOutcome) {
        let (sums, keys, outcome) =
            Self::compute_inner(module, ranges, cfg, index, solver, lattice, true, cache);
        (sums, keys.expect("requested above"), outcome)
    }

    #[allow(clippy::too_many_arguments)]
    fn compute_inner(
        module: &Module,
        ranges: &RangeAnalysis,
        cfg: GenConfig,
        index: &VarIndex,
        solver: &dyn FixpointSolver,
        lattice: LatticeBackend,
        want_keys: bool,
        cache: Option<&SummaryCache>,
    ) -> (Self, Option<SummaryKeys>, CacheOutcome) {
        let cg = CallGraph::build(module);
        let cond = cg.condense();
        let keys = want_keys.then(|| SummaryKeys::compute_with(module, &cg, &cond));
        let warm = cache.and_then(|c| keys.as_ref().map(|k| (k, c)));
        let mut outcome = CacheOutcome::default();
        let mut sums = ModuleSummaries {
            per_func: vec![FunctionSummary::default(); module.num_functions()],
            stats: SummaryStats {
                sccs: cond.len(),
                recursive_sccs: cond.num_recursive(),
                ..Default::default()
            },
        };

        for (ci, members) in cond.bottom_up() {
            // Warm path: an all-members hit installs the cached summaries
            // and skips the solve. Partial hits cannot happen within a
            // component (members are mutually reachable, so one edit
            // re-keys them all) short of a hash collision; if one ever
            // did, the cold path below recomputes everything soundly.
            if let Some((keys, cache)) = warm {
                let mut all_hit = true;
                for &f in members {
                    match cache.get(&module.function(f).name) {
                        Some((k, _)) if k == keys.of(f) => outcome.hits += 1,
                        Some(_) => {
                            outcome.invalidated += 1;
                            all_hit = false;
                        }
                        None => {
                            outcome.misses += 1;
                            all_hit = false;
                        }
                    }
                }
                if all_hit {
                    for &f in members {
                        let cached = cache
                            .lookup(&module.function(f).name, keys.of(f))
                            .expect("classified as hit above");
                        sums.per_func[f.index()] = cached.clone();
                    }
                    continue;
                }
            }

            let recursive = cond.is_recursive(ci);
            if recursive {
                // Optimistic start: assume every parameter of every member
                // is < ret, then descend (greatest fixpoint).
                for &f in members {
                    let n = module.function(f).params.len() as u32;
                    sums.per_func[f.index()] = FunctionSummary { args_lt_ret: (0..n).collect() };
                }
            }
            let space = SccSpace::new(module, index, members);
            loop {
                let raw = constraints::generate_scoped(module, ranges, cfg, index, members, &sums);
                let local: Vec<Constraint> = raw.iter().map(|c| space.remap(c)).collect();
                let solution = solver.solve_with(&local, space.len(), lattice);
                sums.stats.solves += 1;
                let mut changed = false;
                for &f in members {
                    let new = distil(module, index, &space, &solution, f);
                    if new != sums.per_func[f.index()] {
                        sums.per_func[f.index()] = new;
                        changed = true;
                    }
                }
                // Non-recursive components never read their own summary,
                // so one solve is the fixpoint. Recursive components
                // iterate: the optimistic start only ever *sheds* facts,
                // so the descent is bounded by the total fact count.
                if !recursive || !changed {
                    break;
                }
            }
        }

        sums.stats.facts = sums.per_func.iter().map(FunctionSummary::facts).sum();
        (sums, keys, outcome)
    }

    /// The summary of function `f`.
    pub fn of(&self, f: FuncId) -> &FunctionSummary {
        &self.per_func[f.index()]
    }

    /// Total `param_j < ret` facts across the module.
    pub fn facts(&self) -> usize {
        self.stats.facts
    }

    /// `(function, summary)` pairs in ascending [`FuncId`] order.
    pub fn iter(&self) -> impl Iterator<Item = (FuncId, &FunctionSummary)> {
        self.per_func.iter().enumerate().map(|(i, s)| (FuncId::from_index(i), s))
    }
}

/// Distils `f`'s summary from a solved per-SCC system: `j` is a fact iff
/// every return site's value has `param_j` in its `LT` set. Functions
/// with no value-returning site get the empty summary — their return
/// value never exists, so claims about it would be vacuous (mirroring
/// the solver's ⊤-freeze philosophy).
fn distil(
    module: &Module,
    index: &VarIndex,
    space: &SccSpace,
    solution: &crate::solver::Solution,
    f: FuncId,
) -> FunctionSummary {
    let func = module.function(f);
    let mut ret_vals: Vec<Value> = Vec::new();
    for b in func.block_ids() {
        if let Some(t) = func.terminator(b) {
            if let InstKind::Ret(Some(v)) = func.inst(t).kind {
                ret_vals.push(v);
            }
        }
    }
    if ret_vals.is_empty() {
        return FunctionSummary::default();
    }
    let args_lt_ret: Vec<u32> = (0..func.params.len() as u32)
        .filter(|&j| {
            let p = space.local(index.id(f, func.param_value(j as usize)));
            ret_vals.iter().all(|&v| solution.less_than(p, space.local(index.id(f, v))))
        })
        .collect();
    FunctionSummary { args_lt_ret: args_lt_ret.into() }
}

/// Compact variable numbering for one SCC: the members' (contiguous,
/// per-function) [`VarIndex`] ranges packed side by side, so per-SCC
/// solves allocate `O(|SCC|)` lattice state instead of `O(|module|)`.
struct SccSpace {
    /// `(global_start, global_end, local_start)` per member, sorted by
    /// `global_start`.
    ranges: Vec<(u32, u32, u32)>,
    total: usize,
}

impl SccSpace {
    fn new(module: &Module, index: &VarIndex, members: &[FuncId]) -> Self {
        let mut ranges = Vec::with_capacity(members.len());
        let mut total = 0u32;
        for &f in members {
            let n = module.function(f).num_insts() as u32;
            if n == 0 {
                continue;
            }
            let start = index.id(f, Value::from_index(0)).raw();
            ranges.push((start, start + n, total));
            total += n;
        }
        ranges.sort_unstable_by_key(|r| r.0);
        SccSpace { ranges, total: total as usize }
    }

    fn len(&self) -> usize {
        self.total
    }

    /// Maps a module-wide id into the compact space. The id must belong
    /// to a member function — per-SCC constraints never mention anything
    /// else.
    fn local(&self, id: VarId) -> VarId {
        let g = id.raw();
        let i = self.ranges.partition_point(|&(start, _, _)| start <= g);
        let (start, end, local_start) = self.ranges[i.checked_sub(1).expect("id below all ranges")];
        debug_assert!(g < end, "id {g} outside the SCC's variable ranges");
        VarId::new(local_start + (g - start))
    }

    fn remap(&self, c: &Constraint) -> Constraint {
        match c {
            Constraint::Init { x } => Constraint::Init { x: self.local(*x) },
            Constraint::Copy { x, source } => {
                Constraint::Copy { x: self.local(*x), source: self.local(*source) }
            }
            Constraint::Union { x, elems, sources } => Constraint::Union {
                x: self.local(*x),
                elems: elems.iter().map(|&e| self.local(e)).collect(),
                sources: sources.iter().map(|&s| self.local(s)).collect(),
            },
            Constraint::Inter { x, sources } => Constraint::Inter {
                x: self.local(*x),
                sources: sources.iter().map(|&s| self.local(s)).collect(),
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::SolverKind;

    fn summaries(src: &str) -> (Module, ModuleSummaries) {
        let mut m = sraa_minic::compile(src).unwrap();
        let (ranges, _) = sraa_essa::transform_module(&mut m);
        let index = VarIndex::new(&m);
        let sums = ModuleSummaries::compute(
            &m,
            &ranges,
            GenConfig::default(),
            &index,
            SolverKind::Scc.solver(),
            LatticeBackend::Auto,
        );
        (m, sums)
    }

    fn facts_of(m: &Module, sums: &ModuleSummaries, name: &str) -> Vec<u32> {
        sums.of(m.function_by_name(name).unwrap()).args_lt_ret().to_vec()
    }

    #[test]
    fn increment_helper_orders_its_argument() {
        let (m, sums) = summaries(
            r#"
            int next(int i) { return i + 1; }
            int main() { return next(3); }
            "#,
        );
        assert_eq!(facts_of(&m, &sums, "next"), vec![0]);
        assert_eq!(facts_of(&m, &sums, "main"), Vec::<u32>::new());
        assert_eq!(sums.facts(), 1);
        assert_eq!(sums.stats.recursive_sccs, 0);
    }

    #[test]
    fn facts_hold_on_every_return_path_or_not_at_all() {
        let (m, sums) = summaries(
            r#"
            int both(int i, int k) { if (k > 0) { return i + k; } return i + 1; }
            int one_side(int i, int k) { if (k > 0) { return i + k; } return i; }
            int main() { return both(1, 2) + one_side(1, 2); }
            "#,
        );
        // `both` proves i < ret on both paths (k>0 via the σ-range, +1
        // directly); k < ret only on the first path.
        assert_eq!(facts_of(&m, &sums, "both"), vec![0]);
        // `one_side` returns i itself on the else path: i < i is false.
        assert_eq!(facts_of(&m, &sums, "one_side"), Vec::<u32>::new());
    }

    #[test]
    fn pointer_advance_helper_is_summarised() {
        let (m, sums) = summaries(
            r#"
            int* advance(int* p, int k) { if (k > 0) { return p + k; } return p + 1; }
            int main() { int a[8]; int* q = advance(a, 3); return *q; }
            "#,
        );
        assert_eq!(facts_of(&m, &sums, "advance"), vec![0]);
    }

    #[test]
    fn summaries_chain_through_helpers_bottom_up() {
        // twice's fact needs next's summary to already be available.
        let (m, sums) = summaries(
            r#"
            int next(int i) { return i + 1; }
            int twice(int i) { return next(next(i)); }
            int main() { return twice(1); }
            "#,
        );
        assert_eq!(facts_of(&m, &sums, "next"), vec![0]);
        assert_eq!(facts_of(&m, &sums, "twice"), vec![0]);
    }

    #[test]
    fn recursion_reaches_the_optimistic_fixpoint() {
        // Every path either returns p + 1 directly or recurses on p + 1:
        // p < skipr(p, n) holds on every terminating execution.
        let (m, sums) = summaries(
            r#"
            int* skipr(int* p, int n) {
                if (n <= 0) { return p + 1; }
                return skipr(p + 1, n - 1);
            }
            int main() { int a[8]; int* q = skipr(a, 3); return *q; }
            "#,
        );
        assert_eq!(facts_of(&m, &sums, "skipr"), vec![0]);
        assert_eq!(sums.stats.recursive_sccs, 1);
        assert!(sums.stats.solves > sums.stats.sccs as u64, "recursion must iterate");
    }

    #[test]
    fn recursive_identity_sheds_the_optimistic_assumption() {
        // The base case returns p itself: p < p is false, so the
        // optimistic start must descend to the empty summary.
        let (m, sums) = summaries(
            r#"
            int* walk(int* p, int n) {
                if (n <= 0) { return p; }
                return walk(p + 1, n - 1);
            }
            int main() { int a[8]; int* q = walk(a, 3); return *q; }
            "#,
        );
        assert_eq!(facts_of(&m, &sums, "walk"), Vec::<u32>::new());
    }

    #[test]
    fn mutual_recursion_converges() {
        let (m, sums) = summaries(
            r#"
            int ping(int i, int n) { if (n <= 0) { return i + 1; } return pong(i + 1, n - 1); }
            int pong(int i, int n) { if (n <= 0) { return i + 2; } return ping(i, n - 1); }
            int main() { return ping(0, 4); }
            "#,
        );
        // ping: both paths bump i (directly, or pong's fact on i+1).
        assert_eq!(facts_of(&m, &sums, "ping"), vec![0]);
        // pong recurses on the *same* i, so its fact leans on ping's —
        // which holds — giving i < pong(i, n) too.
        assert_eq!(facts_of(&m, &sums, "pong"), vec![0]);
    }

    #[test]
    fn void_and_constant_returns_carry_no_facts() {
        let (m, sums) = summaries(
            r#"
            void sink(int* v, int i) { v[i] = 0; }
            int fortytwo(int i) { return 42; }
            int main() { int a[4]; sink(a, 1); return fortytwo(1); }
            "#,
        );
        assert_eq!(facts_of(&m, &sums, "sink"), Vec::<u32>::new());
        assert_eq!(facts_of(&m, &sums, "fortytwo"), Vec::<u32>::new());
    }

    #[test]
    fn warm_run_reuses_every_summary_and_skips_all_solves() {
        use crate::persist::{self, SummaryKeys};
        let src = r#"
            int next(int i) { return i + 1; }
            int twice(int i) { return next(next(i)); }
            int main() { return twice(1); }
        "#;
        let mut m = sraa_minic::compile(src).unwrap();
        let (ranges, _) = sraa_essa::transform_module(&mut m);
        let index = VarIndex::new(&m);
        let solver = SolverKind::Scc.solver();
        let cold = ModuleSummaries::compute(
            &m,
            &ranges,
            GenConfig::default(),
            &index,
            solver,
            LatticeBackend::Auto,
        );
        let keys = SummaryKeys::compute(&m);
        let cache = persist::from_bytes(
            &persist::to_bytes(&m, &cold, &keys, GenConfig::default()),
            GenConfig::default(),
        )
        .unwrap();

        let (warm, warm_keys, outcome) = ModuleSummaries::compute_incremental(
            &m,
            &ranges,
            GenConfig::default(),
            &index,
            solver,
            LatticeBackend::Auto,
            Some(&cache),
        );
        assert_eq!(warm_keys, keys, "keys must not depend on who builds the condensation");
        assert_eq!((outcome.hits, outcome.misses, outcome.invalidated), (3, 0, 0));
        assert_eq!(outcome.hit_rate(), 1.0);
        assert_eq!(warm.stats.solves, 0, "an all-hit warm run must not solve anything");
        for (f, s) in cold.iter() {
            assert_eq!(warm.of(f), s);
        }
        assert_eq!(warm.facts(), cold.facts());

        // Without a cache, the incremental entry point is exactly `compute`.
        let (cold2, _, zero) = ModuleSummaries::compute_incremental(
            &m,
            &ranges,
            GenConfig::default(),
            &index,
            solver,
            LatticeBackend::Auto,
            None,
        );
        assert_eq!(cold2, cold);
        assert_eq!(zero, CacheOutcome::default());
    }

    #[test]
    fn solver_strategies_distil_identical_summaries() {
        let src = r#"
            int next(int i) { return i + 1; }
            int* skipr(int* p, int n) {
                if (n <= 0) { return p + 1; }
                return skipr(p + 1, n - 1);
            }
            int main() { int a[8]; int* q = skipr(a, next(1)); return *q; }
        "#;
        let mut m = sraa_minic::compile(src).unwrap();
        let (ranges, _) = sraa_essa::transform_module(&mut m);
        let index = VarIndex::new(&m);
        let a = ModuleSummaries::compute(
            &m,
            &ranges,
            GenConfig::default(),
            &index,
            SolverKind::Scc.solver(),
            LatticeBackend::Auto,
        );
        let b = ModuleSummaries::compute(
            &m,
            &ranges,
            GenConfig::default(),
            &index,
            SolverKind::Worklist.solver(),
            LatticeBackend::Auto,
        );
        assert_eq!(a, b);
    }
}
