//! Figure 10 — how LT and CF (Andersen) each increase BA's capacity to
//! disambiguate pointers on the SPEC workloads: %BA, %(BA+LT), %(BA+CF).
//!
//! The paper's conclusions to check for shape: there is no clear winner —
//! BA+LT wins big on lbm/milc/gobmk, BA+CF wins elsewhere (omnetpp), and
//! the two are complementary.

use sraa_bench::Prepared;

fn main() {
    println!("{:<12} {:>8} {:>9} {:>9}", "benchmark", "%BA", "%(BA+LT)", "%(BA+CF)");
    let mut lt_wins = 0usize;
    let mut cf_wins = 0usize;
    for w in sraa_synth::spec_all() {
        let p = Prepared::new(&w);
        let out = p.eval(&[&p.ba, &p.ba_plus_lt(), &p.ba_plus_cf()]);
        let (ba, lt, cf) = (&out[0], &out[1], &out[2]);
        println!(
            "{:<12} {:>7.2}% {:>8.2}% {:>8.2}%",
            p.name,
            ba.no_alias_rate(),
            lt.no_alias_rate(),
            cf.no_alias_rate()
        );
        if lt.no_alias > cf.no_alias {
            lt_wins += 1;
        } else if cf.no_alias > lt.no_alias {
            cf_wins += 1;
        }
    }
    println!();
    println!(
        "BA+LT more precise on {lt_wins} benchmark(s), BA+CF on {cf_wins}: \
         the analyses are complementary (paper §4.1, Figure 10)."
    );
}
