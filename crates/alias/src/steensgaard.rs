//! Steensgaard-style unification-based points-to analysis.
//!
//! The paper's related-work discussion places its contribution between the
//! two classic points-to families: inclusion-based (Andersen \[3\], our
//! [`AndersenAnalysis`](crate::AndersenAnalysis)) and unification-based
//! (Steensgaard \[34\], this module). Steensgaard's runs in almost-linear
//! time by *unifying* the two sides of every assignment instead of
//! tracking subset constraints — cheaper and strictly less precise than
//! Andersen's, and like both of them completely blind to offsets within
//! one object. Including it rounds out the baseline family for the
//! benchmark harness.
//!
//! Formulation: every pointer variable and every abstract object gets a
//! union-find node; each equivalence class owns (lazily) a *pointee*
//! class. `p = q` unifies `p` and `q`; `p = *q` unifies `p` with
//! `pointee(q)`; `*p = q` unifies `pointee(p)` with `q`; allocation sites
//! attach their object to `pointee(p)`. Classes reached by external
//! pointers are poisoned as `unknown`.

use crate::{AliasAnalysis, AliasResult};
use sraa_core::VarIndex;
use sraa_ir::{FuncId, InstKind, Module, Type, Value};

/// Unification-based (Steensgaard) points-to analysis.
#[derive(Clone, Debug)]
pub struct SteensgaardAnalysis {
    index: VarIndex,
    uf: UnionFind,
    /// Pointee class per class representative (dense, by node id).
    pointee: Vec<Option<u32>>,
    /// Class contains at least one concrete allocation site.
    has_object: Vec<bool>,
    /// Class may contain objects the module cannot see.
    unknown: Vec<bool>,
}

#[derive(Clone, Debug)]
struct UnionFind {
    parent: Vec<u32>,
}

impl UnionFind {
    fn new(n: usize) -> Self {
        Self { parent: (0..n as u32).collect() }
    }

    fn find(&mut self, mut x: u32) -> u32 {
        while self.parent[x as usize] != x {
            let gp = self.parent[self.parent[x as usize] as usize];
            self.parent[x as usize] = gp;
            x = gp;
        }
        x
    }

    fn push(&mut self) -> u32 {
        let id = self.parent.len() as u32;
        self.parent.push(id);
        id
    }
}

impl SteensgaardAnalysis {
    /// Builds and solves the unification constraints for `module`.
    pub fn new(module: &Module) -> Self {
        let index = VarIndex::new(module);
        // Nodes: one per module value; objects and pointee cells are
        // appended on demand.
        let mut a = SteensgaardAnalysis {
            uf: UnionFind::new(index.len()),
            pointee: vec![None; index.len()],
            has_object: vec![false; index.len()],
            unknown: vec![false; index.len()],
            index,
        };

        let mut internally_called = vec![false; module.num_functions()];
        for (_, f) in module.functions() {
            for b in f.block_ids() {
                for (_, d) in f.block_insts(b) {
                    if let InstKind::Call { callee, .. } = &d.kind {
                        internally_called[callee.index()] = true;
                    }
                }
            }
        }

        for (fid, f) in module.functions() {
            let is_ptr = |v: Value| f.value_type(v).is_some_and(Type::is_ptr);
            for b in f.block_ids() {
                for (v, data) in f.block_insts(b) {
                    let vid = self_id(&a.index, fid, v);
                    match &data.kind {
                        InstKind::Alloca { .. }
                        | InstKind::Malloc { .. }
                        | InstKind::GlobalAddr(_) => {
                            let pointee = a.pointee_of(vid);
                            a.mark_object(pointee);
                        }
                        InstKind::Copy { src, .. } | InstKind::Gep { base: src, .. }
                            if is_ptr(v) =>
                        {
                            let sid = self_id(&a.index, fid, *src);
                            a.unify(vid, sid);
                        }
                        InstKind::Phi { incomings } if is_ptr(v) => {
                            for (_, x) in incomings {
                                let xid = self_id(&a.index, fid, *x);
                                a.unify(vid, xid);
                            }
                        }
                        InstKind::Load { ptr } if is_ptr(v) => {
                            let pid = self_id(&a.index, fid, *ptr);
                            let pointee = a.pointee_of(pid);
                            a.unify(vid, pointee as usize);
                        }
                        InstKind::Store { ptr, value } if is_ptr(*value) => {
                            let pid = self_id(&a.index, fid, *ptr);
                            let pointee = a.pointee_of(pid);
                            let sid = self_id(&a.index, fid, *value);
                            a.unify(pointee as usize, sid);
                        }
                        InstKind::Param(_) if is_ptr(v) && !internally_called[fid.index()] => {
                            let pointee = a.pointee_of(vid);
                            a.mark_unknown(pointee);
                        }
                        InstKind::Opaque if is_ptr(v) => {
                            let pointee = a.pointee_of(vid);
                            a.mark_unknown(pointee);
                        }
                        InstKind::Call { callee, args } => {
                            let cf = module.function(*callee);
                            for (i, arg) in args.iter().enumerate() {
                                if f.value_type(*arg).is_some_and(Type::is_ptr) {
                                    let formal = self_id(&a.index, *callee, cf.param_value(i));
                                    let aid = self_id(&a.index, fid, *arg);
                                    a.unify(formal, aid);
                                }
                            }
                            if is_ptr(v) {
                                for cb in cf.block_ids() {
                                    if let Some(t) = cf.terminator(cb) {
                                        if let InstKind::Ret(Some(r)) = cf.inst(t).kind {
                                            let rid = self_id(&a.index, *callee, r);
                                            a.unify(vid, rid);
                                        }
                                    }
                                }
                            }
                        }
                        _ => {}
                    }
                }
            }
        }
        a
    }

    fn pointee_of(&mut self, node: usize) -> u32 {
        let root = self.uf.find(node as u32) as usize;
        if let Some(p) = self.pointee[root] {
            return self.uf.find(p);
        }
        let fresh = self.uf.push();
        self.pointee.push(None);
        self.has_object.push(false);
        self.unknown.push(false);
        self.pointee[root] = Some(fresh);
        fresh
    }

    fn mark_object(&mut self, class: u32) {
        let r = self.uf.find(class) as usize;
        self.has_object[r] = true;
    }

    fn mark_unknown(&mut self, class: u32) {
        let r = self.uf.find(class) as usize;
        self.unknown[r] = true;
    }

    /// Steensgaard's join: unifies two classes *and their pointees,
    /// recursively* — this cascading merge is what makes the analysis
    /// almost linear and is exactly where it loses precision to Andersen's.
    fn unify(&mut self, a: usize, b: usize) {
        let (ra, rb) = (self.uf.find(a as u32), self.uf.find(b as u32));
        if ra == rb {
            return;
        }
        let (ra, rb) = (ra as usize, rb as usize);
        // Merge rb into ra.
        self.uf.parent[rb] = ra as u32;
        self.has_object[ra] |= self.has_object[rb];
        self.unknown[ra] |= self.unknown[rb];
        match (self.pointee[ra], self.pointee[rb]) {
            (None, Some(p)) => self.pointee[ra] = Some(p),
            (Some(pa), Some(pb)) => self.unify(pa as usize, pb as usize),
            _ => {}
        }
    }

    fn class_info(&self, f: FuncId, v: Value) -> (u32, bool, bool) {
        // Immutable find (no path compression).
        let mut x = self.index.id(f, v).raw();
        while self.uf.parent[x as usize] != x {
            x = self.uf.parent[x as usize];
        }
        let pointee = self.pointee[x as usize].map(|mut p| {
            while self.uf.parent[p as usize] != p {
                p = self.uf.parent[p as usize];
            }
            p
        });
        match pointee {
            Some(p) => (p, self.has_object[p as usize], self.unknown[p as usize]),
            None => (u32::MAX, false, true), // never dereferenced: stay safe
        }
    }
}

fn self_id(index: &VarIndex, f: FuncId, v: Value) -> usize {
    index.id(f, v).index()
}

impl AliasAnalysis for SteensgaardAnalysis {
    fn name(&self) -> String {
        "ST".to_string()
    }

    fn alias(&self, _module: &Module, func: FuncId, p1: Value, p2: Value) -> AliasResult {
        if p1 == p2 {
            return AliasResult::MustAlias;
        }
        let (c1, o1, u1) = self.class_info(func, p1);
        let (c2, o2, u2) = self.class_info(func, p2);
        if u1 || u2 || c1 == u32::MAX || c2 == u32::MAX {
            return AliasResult::MayAlias;
        }
        if c1 != c2 && o1 && o2 {
            AliasResult::NoAlias
        } else {
            AliasResult::MayAlias
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::AndersenAnalysis;

    fn prepared(src: &str) -> (Module, SteensgaardAnalysis) {
        let m = sraa_minic::compile(src).unwrap();
        let st = SteensgaardAnalysis::new(&m);
        (m, st)
    }

    fn mem_ptrs(m: &Module, name: &str) -> (FuncId, Vec<Value>) {
        let fid = m.function_by_name(name).unwrap();
        let f = m.function(fid);
        let mut out = Vec::new();
        for b in f.block_ids() {
            for (_, d) in f.block_insts(b) {
                match &d.kind {
                    InstKind::Load { ptr } => out.push(*ptr),
                    InstKind::Store { ptr, .. } => out.push(*ptr),
                    _ => {}
                }
            }
        }
        (fid, out)
    }

    #[test]
    fn distinct_mallocs_do_not_alias() {
        let (m, st) = prepared(
            "int main() { int* p = malloc(4); int* q = malloc(4); *p = 1; *q = 2; return 0; }",
        );
        let (fid, ptrs) = mem_ptrs(&m, "main");
        assert_eq!(st.alias(&m, fid, ptrs[0], ptrs[1]), AliasResult::NoAlias);
    }

    #[test]
    fn unification_merges_where_andersen_does_not() {
        // The φ that merges p and q makes Steensgaard unify all three
        // variables — and hence the *pointees* of p and q — while Andersen
        // only adds both objects to r's set and keeps p and q apart. The
        // classic precision gap between the two families.
        let src = r#"
            int main() {
                int* p = malloc(4);
                int* q = malloc(4);
                int* r = p;
                if (input() > 0) r = q;
                *p = 1; *q = 2; *r = 3;
                return 0;
            }
        "#;
        let (m, st) = prepared(src);
        let an = AndersenAnalysis::new(&m);
        let (fid, ptrs) = mem_ptrs(&m, "main");
        // *p vs *q:
        assert_eq!(
            an.alias(&m, fid, ptrs[0], ptrs[1]),
            AliasResult::NoAlias,
            "Andersen keeps p and q apart"
        );
        assert_eq!(
            st.alias(&m, fid, ptrs[0], ptrs[1]),
            AliasResult::MayAlias,
            "Steensgaard unifies them through r"
        );
    }

    #[test]
    fn flow_through_memory_is_tracked() {
        let (m, st) = prepared(
            r#"
            int main() {
                int* p = malloc(4);
                int** slot = malloc(1);
                slot[0] = p;
                int* q = slot[0];
                *q = 1;
                *p = 2;
                return 0;
            }
            "#,
        );
        let (fid, ptrs) = mem_ptrs(&m, "main");
        let q = ptrs[ptrs.len() - 2];
        let p = ptrs[ptrs.len() - 1];
        assert_eq!(st.alias(&m, fid, q, p), AliasResult::MayAlias);
    }

    #[test]
    fn entry_params_are_unknown() {
        let (m, st) = prepared("int f(int* p, int* q) { *p = 1; *q = 2; return 0; }");
        let (fid, ptrs) = mem_ptrs(&m, "f");
        assert_eq!(st.alias(&m, fid, ptrs[0], ptrs[1]), AliasResult::MayAlias);
    }

    #[test]
    fn never_more_precise_than_andersen() {
        // Differential check on a workload: every Steensgaard NoAlias must
        // also be an Andersen NoAlias (unification ⊆ inclusion precision).
        let w = sraa_synth::spec_generate_by_name("astar").unwrap();
        let m = sraa_minic::compile(&w.source).unwrap();
        let st = SteensgaardAnalysis::new(&m);
        let an = AndersenAnalysis::new(&m);
        for (fid, _) in m.functions().take(10) {
            let ptrs = crate::AaEval::pointer_values(&m, fid);
            for (i, &p) in ptrs.iter().enumerate().take(30) {
                for &q in ptrs.iter().skip(i + 1).take(30) {
                    if st.alias(&m, fid, p, q) == AliasResult::NoAlias {
                        assert_eq!(
                            an.alias(&m, fid, p, q),
                            AliasResult::NoAlias,
                            "ST claims NoAlias where CF does not: {p} vs {q} in {fid}"
                        );
                    }
                }
            }
        }
    }
}
