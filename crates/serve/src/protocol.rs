//! The `sraa serve` wire protocol: newline-delimited, length-prefixed,
//! checksummed JSON frames.
//!
//! One frame per line:
//!
//! ```text
//! sraa1 <payload-len> <fnv64-hex16> <payload-json>\n
//! ```
//!
//! * `sraa1` — magic token carrying the protocol version (in the spirit
//!   of [`sraa_core::persist`]'s magic + [`FORMAT_VERSION`](sraa_core::FORMAT_VERSION):
//!   a frame written by a future incompatible protocol fails the magic
//!   check, never half-parses);
//! * `<payload-len>` — decimal byte length of the payload, checked
//!   against the actual payload and against the server's request-size
//!   cap *before* the payload is interpreted;
//! * `<fnv64-hex16>` — FNV-1a of the payload bytes, 16 lowercase hex
//!   digits ([`sraa_ir::Fnv64`], the same hash the summary cache uses);
//! * `<payload-json>` — exactly one JSON value (in practice an object).
//!   The JSON writer escapes control characters, so a payload never
//!   contains a raw newline and the frame is always exactly one line.
//!
//! Every decode defect maps to a *typed* error code ([`FrameError::code`])
//! that the server echoes back in an `{"ok":false,"error":...}` reply
//! instead of disconnecting — a malformed client sees what it did wrong.
//!
//! The JSON subset here (null, bools, 64-bit signed integers, strings,
//! arrays, objects) is hand-rolled because the build environment is
//! offline: no serde. Object key order is preserved, so rendering is
//! deterministic.

use sraa_ir::Fnv64;

/// Magic + protocol version token opening every frame. Bump the digit on
/// any incompatible frame or payload change.
pub const MAGIC: &str = "sraa1";

/// Default request-size cap: the largest payload a server accepts.
/// Uploads carry whole MiniC sources, so the cap is generous; everything
/// else is tiny.
pub const MAX_FRAME: usize = 8 << 20;

/// Why a frame could not be decoded. Every variant is a typed-error-reply
/// signal, never a panic or a silent disconnect.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FrameError {
    /// The line does not start with `sraa1 ` — wrong protocol or version.
    BadMagic,
    /// Missing or non-numeric length / checksum tokens.
    BadHeader,
    /// The declared length disagrees with the actual payload.
    LengthMismatch,
    /// The declared length exceeds the request-size cap.
    Oversized,
    /// The checksum does not match the payload.
    BadChecksum,
}

impl FrameError {
    /// The stable error code echoed in `{"ok":false,"error":<code>}`
    /// replies.
    pub fn code(self) -> &'static str {
        match self {
            FrameError::BadMagic => "bad-magic",
            FrameError::BadHeader => "bad-header",
            FrameError::LengthMismatch => "length-mismatch",
            FrameError::Oversized => "oversized",
            FrameError::BadChecksum => "bad-checksum",
        }
    }
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.code())
    }
}

impl std::error::Error for FrameError {}

fn fnv_hex(payload: &str) -> String {
    let mut h = Fnv64::new();
    h.write(payload.as_bytes());
    format!("{:016x}", h.finish())
}

/// Encodes one payload as a complete frame line (trailing `\n` included).
pub fn encode_frame(payload: &str) -> String {
    format!("{MAGIC} {} {} {payload}\n", payload.len(), fnv_hex(payload))
}

/// Decodes one frame line (with or without the trailing newline) into its
/// payload, enforcing `max_frame` on the *declared* length — so an honest
/// header is rejected before its payload is even looked at.
pub fn decode_frame(line: &str, max_frame: usize) -> Result<&str, FrameError> {
    let line = line.strip_suffix('\n').unwrap_or(line);
    let line = line.strip_suffix('\r').unwrap_or(line);
    let rest = line.strip_prefix(MAGIC).ok_or(FrameError::BadMagic)?;
    let rest = rest.strip_prefix(' ').ok_or(FrameError::BadMagic)?;
    let (len_tok, rest) = rest.split_once(' ').ok_or(FrameError::BadHeader)?;
    let (sum_tok, payload) = rest.split_once(' ').ok_or(FrameError::BadHeader)?;
    let len: usize = len_tok.parse().map_err(|_| FrameError::BadHeader)?;
    if sum_tok.len() != 16 || !sum_tok.bytes().all(|b| b.is_ascii_hexdigit()) {
        return Err(FrameError::BadHeader);
    }
    if len > max_frame {
        return Err(FrameError::Oversized);
    }
    if payload.len() != len {
        return Err(FrameError::LengthMismatch);
    }
    if fnv_hex(payload) != sum_tok.to_ascii_lowercase() {
        return Err(FrameError::BadChecksum);
    }
    Ok(payload)
}

/// A JSON value in the protocol's subset: no floats (nothing in the
/// protocol needs them, and integer-only numbers keep rendering exact and
/// deterministic).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A 64-bit signed integer.
    Num(i64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; key order is preserved (deterministic rendering).
    Obj(Vec<(String, Json)>),
}

/// Shorthand for building an object from `(key, value)` pairs.
pub fn obj(pairs: impl IntoIterator<Item = (&'static str, Json)>) -> Json {
    Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
}

/// The canonical `{"ok":false,"error":code,"detail":...}` reply.
pub fn error_reply(code: &str, detail: impl Into<String>) -> Json {
    Json::Obj(vec![
        ("ok".into(), Json::Bool(false)),
        ("error".into(), Json::Str(code.to_string())),
        ("detail".into(), Json::Str(detail.into())),
    ])
}

impl Json {
    /// Renders the value as compact JSON (no whitespace), with all
    /// control characters escaped — the output never contains a raw
    /// newline.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_into(&mut out);
        out
    }

    fn render_into(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(n) => out.push_str(&n.to_string()),
            Json::Str(s) => render_str(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.render_into(out);
                }
                out.push(']');
            }
            Json::Obj(pairs) => {
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    render_str(k, out);
                    out.push(':');
                    v.render_into(out);
                }
                out.push('}');
            }
        }
    }

    /// Object field lookup (first match; `None` on non-objects).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Object field as a string.
    pub fn str_field(&self, key: &str) -> Option<&str> {
        self.get(key).and_then(Json::as_str)
    }

    /// Object field as an integer.
    pub fn num_field(&self, key: &str) -> Option<i64> {
        self.get(key).and_then(Json::as_i64)
    }

    /// The string inside, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The integer inside, if this is a number.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The bool inside, if this is a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Whether this is a reply object with `"ok": true`.
    pub fn is_ok(&self) -> bool {
        self.get("ok").and_then(Json::as_bool) == Some(true)
    }
}

fn render_str(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Why a payload failed to parse as JSON. Maps to the `bad-json` typed
/// error code; the variant is detail for the human.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum JsonError {
    /// Unexpected byte or premature end of input.
    Syntax(usize),
    /// Nesting beyond the hard depth limit (a hostile payload, not a real
    /// request).
    TooDeep,
    /// A number outside `i64`, or a float (the subset is integer-only).
    BadNumber(usize),
    /// A malformed `\` escape or unpaired surrogate.
    BadEscape(usize),
    /// Trailing bytes after the first complete value.
    Trailing(usize),
}

impl std::fmt::Display for JsonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            JsonError::Syntax(at) => write!(f, "JSON syntax error at byte {at}"),
            JsonError::TooDeep => f.write_str("JSON nesting too deep"),
            JsonError::BadNumber(at) => write!(f, "unsupported JSON number at byte {at}"),
            JsonError::BadEscape(at) => write!(f, "bad JSON string escape at byte {at}"),
            JsonError::Trailing(at) => write!(f, "trailing bytes after JSON value at byte {at}"),
        }
    }
}

impl std::error::Error for JsonError {}

/// Parses exactly one JSON value from `s` (trailing whitespace allowed,
/// trailing content not). Depth is hard-limited so hostile nesting cannot
/// blow the stack.
pub fn parse(s: &str) -> Result<Json, JsonError> {
    let mut p = Parser { bytes: s.as_bytes(), at: 0 };
    p.skip_ws();
    let v = p.value(0)?;
    p.skip_ws();
    if p.at != p.bytes.len() {
        return Err(JsonError::Trailing(p.at));
    }
    Ok(v)
}

const MAX_DEPTH: usize = 32;

struct Parser<'a> {
    bytes: &'a [u8],
    at: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.at), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.at += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.at).copied()
    }

    fn eat(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.at += 1;
            Ok(())
        } else {
            Err(JsonError::Syntax(self.at))
        }
    }

    fn lit(&mut self, word: &str, v: Json) -> Result<Json, JsonError> {
        if self.bytes[self.at..].starts_with(word.as_bytes()) {
            self.at += word.len();
            Ok(v)
        } else {
            Err(JsonError::Syntax(self.at))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Json, JsonError> {
        if depth > MAX_DEPTH {
            return Err(JsonError::TooDeep);
        }
        match self.peek() {
            Some(b'n') => self.lit("null", Json::Null),
            Some(b't') => self.lit("true", Json::Bool(true)),
            Some(b'f') => self.lit("false", Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(depth),
            Some(b'{') => self.object(depth),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(JsonError::Syntax(self.at)),
        }
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.at;
        if self.peek() == Some(b'-') {
            self.at += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.at += 1;
        }
        if matches!(self.peek(), Some(b'.' | b'e' | b'E')) {
            return Err(JsonError::BadNumber(start));
        }
        let text = std::str::from_utf8(&self.bytes[start..self.at]).expect("ASCII digits");
        text.parse().map(Json::Num).map_err(|_| JsonError::BadNumber(start))
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            let at = self.at;
            match self.peek() {
                None => return Err(JsonError::Syntax(at)),
                Some(b'"') => {
                    self.at += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.at += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.at += 1;
                            let code = self.hex4().ok_or(JsonError::BadEscape(at))?;
                            // Surrogates are rejected rather than paired:
                            // nothing in the protocol emits them.
                            let c = char::from_u32(code).ok_or(JsonError::BadEscape(at))?;
                            out.push(c);
                            continue;
                        }
                        _ => return Err(JsonError::BadEscape(at)),
                    }
                    self.at += 1;
                }
                Some(b) if b < 0x20 => return Err(JsonError::Syntax(at)),
                Some(_) => {
                    // Consume one whole UTF-8 scalar (input is &str, so
                    // boundaries are valid).
                    let s = std::str::from_utf8(&self.bytes[self.at..]).expect("valid UTF-8");
                    let c = s.chars().next().expect("non-empty");
                    out.push(c);
                    self.at += c.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Option<u32> {
        let chunk = self.bytes.get(self.at..self.at + 4)?;
        let s = std::str::from_utf8(chunk).ok()?;
        let code = u32::from_str_radix(s, 16).ok()?;
        self.at += 4;
        if (0xD800..=0xDFFF).contains(&code) {
            return None;
        }
        Some(code)
    }

    fn array(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.at += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.at += 1,
                Some(b']') => {
                    self.at += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(JsonError::Syntax(self.at)),
            }
        }
    }

    fn object(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.eat(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.at += 1;
            return Ok(Json::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':')?;
            self.skip_ws();
            let value = self.value(depth + 1)?;
            pairs.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.at += 1,
                Some(b'}') => {
                    self.at += 1;
                    return Ok(Json::Obj(pairs));
                }
                _ => return Err(JsonError::Syntax(self.at)),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frames_round_trip() {
        for payload in ["{}", r#"{"cmd":"stats"}"#, "", r#"{"s":"with spaces and \" quotes"}"#] {
            let frame = encode_frame(payload);
            assert!(frame.ends_with('\n'));
            assert_eq!(frame.lines().count(), 1, "one frame is one line");
            assert_eq!(decode_frame(&frame, MAX_FRAME).unwrap(), payload);
        }
    }

    #[test]
    fn frame_defects_map_to_typed_errors() {
        let good = encode_frame(r#"{"cmd":"stats"}"#);
        assert_eq!(decode_frame("sraa2 0 0000000000000000 ", 64), Err(FrameError::BadMagic));
        assert_eq!(decode_frame("hello", 64), Err(FrameError::BadMagic));
        assert_eq!(decode_frame("sraa1 nope", 64), Err(FrameError::BadHeader));
        assert_eq!(decode_frame("sraa1 nope 0123456789abcdef x", 64), Err(FrameError::BadHeader));
        assert_eq!(decode_frame("sraa1 1 zz x", 64), Err(FrameError::BadHeader));
        assert_eq!(decode_frame("sraa1 999 0123456789abcdef x", 64), Err(FrameError::Oversized));
        assert_eq!(decode_frame("sraa1 5 0123456789abcdef x", 64), Err(FrameError::LengthMismatch));
        assert_eq!(decode_frame("sraa1 1 0123456789abcdef x", 64), Err(FrameError::BadChecksum));
        // A flipped payload byte fails the checksum.
        let bad = good.replace("stats", "stat5");
        assert_eq!(decode_frame(&bad, MAX_FRAME), Err(FrameError::BadChecksum));
        // Codes are stable strings.
        for e in [
            FrameError::BadMagic,
            FrameError::BadHeader,
            FrameError::LengthMismatch,
            FrameError::Oversized,
            FrameError::BadChecksum,
        ] {
            assert!(!e.code().is_empty());
            assert_eq!(format!("{e}"), e.code());
        }
    }

    #[test]
    fn json_round_trips_and_accessors_work() {
        let v = obj([
            ("ok", Json::Bool(true)),
            ("n", Json::Num(-42)),
            ("s", Json::Str("a\"b\\c\nd".into())),
            ("a", Json::Arr(vec![Json::Null, Json::Num(7)])),
        ]);
        let text = v.render();
        assert!(!text.contains('\n'), "rendering must stay one line");
        assert_eq!(parse(&text).unwrap(), v);
        assert!(v.is_ok());
        assert_eq!(v.num_field("n"), Some(-42));
        assert_eq!(v.str_field("s"), Some("a\"b\\c\nd"));
        assert_eq!(v.get("a").and_then(Json::as_str), None);
        assert_eq!(Json::Num(3).as_bool(), None);
        let err = error_reply("bad-json", "detail");
        assert!(!err.is_ok());
        assert_eq!(err.str_field("error"), Some("bad-json"));
    }

    #[test]
    fn hostile_json_is_rejected_cleanly() {
        assert!(matches!(parse(""), Err(JsonError::Syntax(_))));
        assert!(matches!(parse("{\"a\":}"), Err(JsonError::Syntax(_))));
        assert!(matches!(parse("1 2"), Err(JsonError::Trailing(_))));
        assert!(matches!(parse("1.5"), Err(JsonError::BadNumber(_))));
        assert!(matches!(parse("1e9"), Err(JsonError::BadNumber(_))));
        assert!(matches!(parse("99999999999999999999"), Err(JsonError::BadNumber(_))));
        assert!(matches!(parse("\"\\x\""), Err(JsonError::BadEscape(_))));
        assert!(matches!(parse("\"\\ud800\""), Err(JsonError::BadEscape(_))));
        let deep = "[".repeat(200) + &"]".repeat(200);
        assert!(matches!(parse(&deep), Err(JsonError::TooDeep)));
        // Errors render human-readably.
        for e in [
            JsonError::Syntax(1),
            JsonError::TooDeep,
            JsonError::BadNumber(2),
            JsonError::BadEscape(3),
            JsonError::Trailing(4),
        ] {
            assert!(!format!("{e}").is_empty());
        }
    }
}
