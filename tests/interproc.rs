//! Differential tests of the interprocedural summary layer
//! ([`sraa_core::ModuleSummaries`], `--interproc`).
//!
//! The contract under test: [`Contextuality::Summaries`] is a
//! **refinement** of [`Contextuality::Intra`] — it may only *add*
//! no-alias verdicts and less-than facts, never retract one — and on the
//! call-heavy workload family it genuinely does add them. Dynamic
//! soundness of the added facts (no-alias pairs never carry equal
//! values while simultaneously alive) is covered by `tests/soundness.rs`,
//! which runs both engines' claims against the interpreter.

use sraa_alias::{AaEval, StrictInequalityAa};
use sraa_core::{
    Contextuality, DisambiguationEngine, EngineConfig, GenConfig, ModuleSummaries, OnDemandProver,
    SolverKind, VarIndex,
};
use sraa_ir::Module;
use sraa_synth::{call_suite, csmith_generate, CsmithConfig};

/// Builds both engines on identical copies of `source`.
fn both_engines(source: &str, name: &str) -> (Module, DisambiguationEngine, DisambiguationEngine) {
    let mut m1 =
        sraa_minic::compile(source).unwrap_or_else(|e| panic!("{name}: compile failed: {e}"));
    let intra = DisambiguationEngine::build(&mut m1, EngineConfig::default());
    let mut m2 = sraa_minic::compile(source).unwrap();
    let inter = DisambiguationEngine::build(&mut m2, EngineConfig::default().with_summaries());
    assert_eq!(m1, m2, "{name}: contextuality must not perturb the e-SSA pipeline");
    (m1, intra, inter)
}

/// Every verdict intra mode proves, summaries mode must still prove; the
/// return value is the number of *extra* no-alias pairs summaries adds.
fn assert_refines(m: &Module, intra: &DisambiguationEngine, inter: &DisambiguationEngine) -> u64 {
    let mut gained = 0;
    for (fid, f) in m.functions() {
        let ptrs = AaEval::pointer_values(m, fid);
        for (i, &a) in ptrs.iter().enumerate() {
            for &b in ptrs.iter().skip(i + 1) {
                let was = intra.no_alias(f, fid, a, b);
                let now = inter.no_alias(f, fid, a, b);
                assert!(
                    now || !was,
                    "{fid}: summaries lost the intra no-alias verdict for {a} vs {b}"
                );
                gained += (now && !was) as u64;
            }
        }
    }
    gained
}

#[test]
fn call_suite_gains_verdicts_and_never_loses_any() {
    let mut total_gain = 0;
    for w in call_suite(9) {
        let (m, intra, inter) = both_engines(&w.source, &w.name);
        total_gain += assert_refines(&m, &intra, &inter);
    }
    assert!(total_gain > 0, "summaries must add no-alias verdicts on the call-heavy suite");
}

#[test]
fn solver_strategies_agree_in_summaries_mode() {
    for w in call_suite(6) {
        let mut m1 = sraa_minic::compile(&w.source).unwrap();
        let scc = DisambiguationEngine::build(
            &mut m1,
            EngineConfig { solver: SolverKind::Scc, ..EngineConfig::default().with_summaries() },
        );
        let mut m2 = sraa_minic::compile(&w.source).unwrap();
        let wl = DisambiguationEngine::build(
            &mut m2,
            EngineConfig {
                solver: SolverKind::Worklist,
                ..EngineConfig::default().with_summaries()
            },
        );
        assert_eq!(scc.summaries(), wl.summaries(), "{}: summaries differ by solver", w.name);
        for (fid, f) in m1.functions() {
            let ptrs = AaEval::pointer_values(&m1, fid);
            for (i, &a) in ptrs.iter().enumerate() {
                for &b in ptrs.iter().skip(i + 1) {
                    assert_eq!(
                        scc.no_alias(f, fid, a, b),
                        wl.no_alias(f, fid, a, b),
                        "{}: {fid} {a} vs {b}",
                        w.name
                    );
                }
            }
        }
    }
}

#[test]
fn summaries_are_deterministic_across_builds() {
    let w = &call_suite(3)[2]; // the recursive-partition member
    let (_, _, e1) = both_engines(&w.source, &w.name);
    let (_, _, e2) = both_engines(&w.source, &w.name);
    assert_eq!(e1.summaries(), e2.summaries());
    assert_eq!(e1.contextuality(), Contextuality::Summaries);
}

#[test]
fn eval_totals_never_drop_on_spec_profiles() {
    // The SPEC-shaped corpus has call sites too (the `calls` archetype);
    // summaries must refine it just like the dedicated call suite.
    for w in sraa_synth::spec_all().into_iter().take(4) {
        let mut m1 = sraa_minic::compile(&w.source).unwrap();
        let intra = StrictInequalityAa::new(&mut m1);
        let mut m2 = sraa_minic::compile(&w.source).unwrap();
        let inter = StrictInequalityAa::interprocedural(&mut m2);
        let a = AaEval::run(&m1, &[&intra])[0].clone();
        let b = AaEval::run(&m2, &[&inter])[0].clone();
        assert_eq!(a.total(), b.total(), "{}", w.name);
        assert!(b.no_alias >= a.no_alias, "{}: {} -> {}", w.name, a.no_alias, b.no_alias);
    }
}

#[test]
fn ondemand_prover_agrees_on_summary_systems() {
    // The on-demand prover consumes whatever constraint system it is
    // given — including one with summaries applied at call sites. Its
    // answers must match the exhaustive fixpoint on that same system.
    let w = &call_suite(4)[0];
    let mut m = sraa_minic::compile(&w.source).unwrap();
    let (ranges, _) = sraa_essa::transform_module(&mut m);
    let index = VarIndex::new(&m);
    let sums = ModuleSummaries::compute(
        &m,
        &ranges,
        GenConfig::default(),
        &index,
        SolverKind::Scc.solver(),
        sraa_core::LatticeBackend::Auto,
        sraa_core::Jobs::default(),
    );
    let sys = sraa_core::generate_with_summaries(&m, &ranges, GenConfig::default(), &index, &sums);
    let solution = sraa_core::solve(&sys.constraints, sys.num_vars);
    let mut prover = OnDemandProver::new(&sys);
    for (fid, _) in m.functions() {
        let ptrs = AaEval::pointer_values(&m, fid);
        for &a in &ptrs {
            for &b in &ptrs {
                let (x, y) = (index.id(fid, a), index.id(fid, b));
                let expected = solution.was_top(y) || solution.less_than(x, y);
                assert_eq!(prover.less_than(x, y), expected, "{fid}: {a} < {b}");
            }
        }
    }
}

mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// Summaries answers are a superset-consistent refinement of
        /// Intra on random csmith programs with helper calls: no pair
        /// ever flips from no-alias to may-alias, on any seed, depth or
        /// helper count. (These same programs execute trap-free — the
        /// interpreter-backed soundness of the claims is exercised in
        /// `tests/soundness.rs`.)
        #[test]
        fn summaries_refine_intra_on_csmith_programs(
            seed in 0u64..24,
            depth in 2u8..5,
            helpers in 1usize..3,
        ) {
            let w = csmith_generate(CsmithConfig {
                seed,
                max_ptr_depth: depth,
                num_stmts: 18,
                helpers,
            });
            let (m, intra, inter) = both_engines(&w.source, &w.name);
            assert_refines(&m, &intra, &inter);
        }
    }
}
