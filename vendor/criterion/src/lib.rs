//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no registry access, so this vendored crate
//! implements the subset of the criterion 0.5 API the workspace's benches
//! use: [`Criterion`], [`BenchmarkGroup`], [`Bencher::iter`] /
//! [`Bencher::iter_batched`], [`BenchmarkId`], [`BatchSize`], and the
//! [`criterion_group!`] / [`criterion_main!`] macros.
//!
//! Instead of criterion's statistical sampling it runs each routine for a
//! small, bounded number of iterations and prints the mean wall-clock
//! time — enough to compare orders of magnitude and to keep
//! `cargo bench` runs short. Swap for the real crate when a registry is
//! reachable; no bench source changes are required.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Re-export-compatible opaque-value barrier.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Batch sizing hints for [`Bencher::iter_batched`]. The stub runs one
/// routine call per batch regardless, so the variants only exist for API
/// compatibility.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
    NumBatches(u64),
    NumIterations(u64),
}

/// Identifier for a parameterised benchmark, e.g. `solver/chain/2000`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn new<S: Into<String>, P: Display>(function_name: S, parameter: P) -> Self {
        BenchmarkId { id: format!("{}/{}", function_name.into(), parameter) }
    }

    pub fn from_parameter<P: Display>(parameter: P) -> Self {
        BenchmarkId { id: parameter.to_string() }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// Anything accepted as a benchmark identifier: `&str`, `String`, or
/// [`BenchmarkId`].
pub trait IntoBenchmarkId {
    fn into_benchmark_id(self) -> BenchmarkId;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_benchmark_id(self) -> BenchmarkId {
        self
    }
}

impl IntoBenchmarkId for &str {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId { id: self.to_string() }
    }
}

impl IntoBenchmarkId for String {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId { id: self }
    }
}

/// Timing driver handed to benchmark closures.
pub struct Bencher {
    /// Mean time per iteration of the most recent `iter*` call.
    elapsed: Duration,
    iters_done: u64,
    max_iters: u64,
}

impl Bencher {
    fn new(max_iters: u64) -> Self {
        Bencher { elapsed: Duration::ZERO, iters_done: 0, max_iters }
    }

    /// Time `routine` repeatedly. Stops after `max_iters` iterations or
    /// ~1s of accumulated runtime, whichever comes first.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        let mut total = Duration::ZERO;
        let mut n = 0u64;
        while n < self.max_iters && total < Duration::from_secs(1) {
            let t = Instant::now();
            black_box(routine());
            total += t.elapsed();
            n += 1;
        }
        self.elapsed = total / n.max(1) as u32;
        self.iters_done = n;
    }

    /// Time `routine` over fresh inputs from `setup`; setup time is not
    /// counted.
    pub fn iter_batched<I, O, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> O,
    {
        let mut total = Duration::ZERO;
        let mut n = 0u64;
        while n < self.max_iters && total < Duration::from_secs(1) {
            let input = setup();
            let t = Instant::now();
            black_box(routine(input));
            total += t.elapsed();
            n += 1;
        }
        self.elapsed = total / n.max(1) as u32;
        self.iters_done = n;
    }
}

fn run_one(group: Option<&str>, id: &BenchmarkId, sample_size: u64, f: impl FnOnce(&mut Bencher)) {
    let name = match group {
        Some(g) => format!("{g}/{}", id.id),
        None => id.id.clone(),
    };
    let mut b = Bencher::new(sample_size);
    f(&mut b);
    println!("bench {name:<48} {:>12.3?}/iter ({} iters)", b.elapsed, b.iters_done);
}

/// Top-level benchmark driver, mirroring `criterion::Criterion`.
pub struct Criterion {
    sample_size: u64,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        run_one(None, &id.into_benchmark_id(), self.sample_size, |b| f(b));
        self
    }

    pub fn benchmark_group<S: Into<String>>(&mut self, name: S) -> BenchmarkGroup<'_> {
        BenchmarkGroup { name: name.into(), sample_size: self.sample_size, _parent: self }
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: u64,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n as u64;
        self
    }

    pub fn bench_function<ID, F>(&mut self, id: ID, mut f: F) -> &mut Self
    where
        ID: IntoBenchmarkId,
        F: FnMut(&mut Bencher),
    {
        run_one(Some(&self.name), &id.into_benchmark_id(), self.sample_size, |b| f(b));
        self
    }

    pub fn bench_with_input<ID, I, F>(&mut self, id: ID, input: &I, mut f: F) -> &mut Self
    where
        ID: IntoBenchmarkId,
        I: ?Sized,
        F: FnMut(&mut Bencher, &I),
    {
        run_one(Some(&self.name), &id.into_benchmark_id(), self.sample_size, |b| f(b, input));
        self
    }

    pub fn finish(self) {}
}

#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_format_like_criterion() {
        assert_eq!(BenchmarkId::new("baseline", "chain/1000").to_string(), "baseline/chain/1000");
        assert_eq!(BenchmarkId::from_parameter(2000).to_string(), "2000");
    }

    #[test]
    fn bencher_runs_routines() {
        let mut c = Criterion::default();
        let mut ran = 0u64;
        {
            let mut g = c.benchmark_group("g");
            g.sample_size(3);
            g.bench_function("count", |b| b.iter(|| ran += 1));
            g.finish();
        }
        assert!(ran >= 1);
    }
}
