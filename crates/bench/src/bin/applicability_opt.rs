//! Applicability through optimisation clients — the experiment the
//! paper's §2 motivates in prose ("the extra precision gives compilers
//! information to carry out more extensive transformations").
//!
//! The same two passes — redundant-load elimination and dead-store
//! elimination (`sraa-opt`) — run over every SPEC workload four times,
//! driven by increasingly strong oracles:
//!
//! * `none`  — the pessimistic baseline (everything may alias);
//! * `BA`    — LLVM-basic-aa-style heuristics;
//! * `BA+LT` — BA chained with the paper's strict-inequality analysis;
//! * `BA+PT` — BA chained with the dense Pentagon adapter.
//!
//! Reported: loads + stores eliminated per oracle. The claim under test
//! is monotone growth from `none` through `BA` to the combinations, with
//! the LT/PT columns quantifying what ordering facts add on top of
//! allocation-site reasoning. Run with
//! `cargo run --release -p sraa-bench --bin applicability_opt`.

use sraa_alias::{
    AliasAnalysis, BasicAliasAnalysis, Combined, NoAa, PentagonAa, StrictInequalityAa,
};
use sraa_opt::{eliminate_dead_stores, eliminate_redundant_loads, hoist_invariant_loads, OptStats};

#[derive(Clone, Copy)]
enum Oracle {
    None,
    Ba,
    BaLt,
    BaPt,
}

fn run_oracle(source: &str, name: &str, oracle: Oracle) -> OptStats {
    let mut module = sraa_minic::compile(source)
        .unwrap_or_else(|e| panic!("workload {name} failed to compile: {e}"));
    // All configurations run on e-SSA so the optimised programs are
    // identical modulo the oracle.
    let lt = StrictInequalityAa::new(&mut module);
    let aa: Box<dyn AliasAnalysis> = match oracle {
        Oracle::None => Box::new(NoAa),
        Oracle::Ba => Box::new(BasicAliasAnalysis::new(&module)),
        Oracle::BaLt => {
            Box::new(Combined::new(vec![Box::new(BasicAliasAnalysis::new(&module)), Box::new(lt)]))
        }
        Oracle::BaPt => Box::new(Combined::new(vec![
            Box::new(BasicAliasAnalysis::new(&module)),
            Box::new(PentagonAa::on_prepared(&module)),
        ])),
    };
    let mut stats = eliminate_redundant_loads(&mut module, aa.as_ref());
    stats += eliminate_dead_stores(&mut module, aa.as_ref());
    stats += hoist_invariant_loads(&mut module, aa.as_ref());
    stats
}

fn report(title: &str, workloads: &[sraa_synth::Workload]) {
    println!("== {title} ==");
    println!(
        "{:<14} {:>11} {:>11} {:>11} {:>11}   (loads forwarded + stores killed + loads hoisted)",
        "benchmark", "none", "BA", "BA+LT", "BA+PT"
    );
    let mut totals = [OptStats::default(); 4];
    for w in workloads {
        let mut row = [OptStats::default(); 4];
        for (i, oracle) in
            [Oracle::None, Oracle::Ba, Oracle::BaLt, Oracle::BaPt].into_iter().enumerate()
        {
            row[i] = run_oracle(&w.source, &w.name, oracle);
            totals[i] += row[i];
        }
        let cell = |s: OptStats| {
            format!("{}+{}+{}", s.loads_eliminated, s.stores_eliminated, s.loads_hoisted)
        };
        println!(
            "{:<14} {:>11} {:>11} {:>11} {:>11}",
            w.name,
            cell(row[0]),
            cell(row[1]),
            cell(row[2]),
            cell(row[3])
        );
    }
    let grand = |s: OptStats| s.loads_eliminated + s.stores_eliminated + s.loads_hoisted;
    println!(
        "totals: none={} BA={} BA+LT={} BA+PT={}",
        grand(totals[0]),
        grand(totals[1]),
        grand(totals[2]),
        grand(totals[3])
    );
    let rel = |a: OptStats, b: OptStats| {
        (grand(b) as f64 - grand(a) as f64) / grand(a).max(1) as f64 * 100.0
    };
    println!(
        "gains: BA over none {:+.1}%; LT on top of BA {:+.1}%; PT on top of BA {:+.1}%",
        rel(totals[0], totals[1]),
        rel(totals[1], totals[2]),
        rel(totals[1], totals[3])
    );
    println!();
}

fn main() {
    // The oracle-sensitive shapes, isolated per kernel family.
    report("optimisation kernels (scale 8)", &sraa_synth::optk_all(8));
    // The honest negative: the aa-eval-calibrated SPEC stand-ins contain
    // almost no oracle-gated memory traffic.
    report("SPEC workloads", &sraa_synth::spec_all());
}
