//! Content-addressed **shared summary store** — cross-module,
//! cross-process reuse of interprocedural summaries.
//!
//! The persistent cache ([`crate::persist`]) is per-module-*name*: it maps
//! `function name → (key, summary)` and helps exactly the next run over
//! the same file. But the cache key itself —
//! `key(f) = H(scc_key(C_f) ∥ body(f))` — already identifies a function
//! by its *content* plus the content of everything it can call, so two
//! different modules (or two builds on two machines sharing a directory)
//! that contain the same helper compute the same key and could share the
//! solved summary. This module provides that sharing surface:
//!
//! ```text
//!                   SharedSummaryStore (one directory)
//!        ┌───────────────────────────────────────────────────┐
//!        │  in-memory index: [RwLock<HashMap<u64, summary>>; │
//!        │                    16 shards, keyed by low bits]  │
//!        │  on disk: append-only segments, each written      │
//!        │           write-temp-then-rename                  │
//!        │    seg-<generation>-<pid>-<seq>.sraaseg           │
//!        └───────────────────────────────────────────────────┘
//!   daemon A ──publish──▶        ◀──refresh/get── daemon B
//! ```
//!
//! # Merge semantics
//!
//! Identical keys imply identical summaries (the key folds in everything
//! a summary depends on: the member bodies of the function's SCC and the
//! transitive callee keys), so there is no last-writer-wins to arbitrate:
//! merge is **insert-if-absent**, with a debug-mode equality assertion
//! guarding the content-addressing invariant. Concurrent publishers can
//! interleave freely — the union is the same in every order.
//!
//! # Multi-process safety
//!
//! Writers never touch an existing file: each [`SharedSummaryStore::publish`]
//! writes one *new* segment via write-temp-then-rename (atomic within the
//! directory), named with a monotonically increasing generation counter,
//! the writer's pid and a per-process sequence number — so two processes
//! can publish the same generation without colliding. Readers fold unseen
//! segments in with [`SharedSummaryStore::refresh`]; a segment observed
//! mid-rename simply is not there yet. On load, a directory that has
//! accumulated many segments is **compacted**: the full index is written
//! as one fresh segment and the folded files are deleted (safe, because
//! every entry they carried is in the compacted one, and entries are
//! immutable).
//!
//! # On-disk segment format (all integers little-endian)
//!
//! Reuses the `persist` idioms — magic, [`FORMAT_VERSION`] (the key
//! scheme is shared, so a scheme bump invalidates both artifacts), the
//! [`GenConfig`] byte, and a trailing FNV-1a checksum:
//!
//! ```text
//! offset  size  field
//!      0     8  magic  b"SRAASTOR"
//!      8     2  format version (u16, same FORMAT_VERSION as the cache)
//!     10     1  GenConfig encoding
//!     11     1  reserved (0)
//!     12     4  entry count (u32)
//!     16     …  entries: key u64, fact count u32, fact indices u32×n
//!   last     8  FNV-1a checksum of every preceding byte
//! ```
//!
//! No function names: entries are content-addressed, the key *is* the
//! identity. A defective segment (torn, corrupted, wrong version or
//! config) is skipped, never trusted — the store can only make a run
//! faster, not wrong.

use crate::constraints::GenConfig;
use crate::persist::{self, Cursor, PersistError, FORMAT_VERSION};
use crate::summary::FunctionSummary;
use sraa_ir::Fnv64;
use std::collections::{HashMap, HashSet};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, RwLock};

const SEG_MAGIC: &[u8; 8] = b"SRAASTOR";
/// Magic + version + config + reserved + count.
const SEG_HEADER_LEN: usize = 16;
const CHECKSUM_LEN: usize = 8;
/// Segment file extension (with the leading dot).
const SEG_SUFFIX: &str = ".sraaseg";
/// Loading this many segments triggers a compaction.
const COMPACT_THRESHOLD: usize = 16;
/// Power of two, so shard selection is a mask (the engine's pair-cache
/// idiom).
const STORE_SHARDS: usize = 16;

/// How a solve used the shared store, counted per *function* — the
/// store-side sibling of [`crate::CacheOutcome`]. Deterministic for a
/// given `(module, store contents)` pair.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct StoreOutcome {
    /// Functions whose key was present: their component's Init-grounded
    /// solve was skipped, exactly like a summary-cache hit.
    pub hits: u32,
    /// Functions whose key was absent (solved cold, then published).
    pub misses: u32,
    /// Summaries newly inserted by this run's publish (0 when every key
    /// was already present — a fully warm run writes no segment at all).
    pub published: u32,
}

impl StoreOutcome {
    /// Hits over all consulted functions, in `[0, 1]`; `1.0` when nothing
    /// was consulted.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            1.0
        } else {
            f64::from(self.hits) / f64::from(total)
        }
    }
}

/// A content-addressed `key → FunctionSummary` store shared across module
/// names, processes and machines (any directory both can see). See the
/// module docs for the concurrency and on-disk story.
///
/// All methods take `&self`; the store is `Sync` and meant to be shared
/// by reference (the daemon holds one for its whole lifetime and every
/// upload consults it).
#[derive(Debug)]
pub struct SharedSummaryStore {
    dir: PathBuf,
    cfg_byte: u8,
    /// Lock-striped index: shard = low key bits, so concurrent merges of
    /// unrelated keys do not serialize on one lock.
    shards: [RwLock<HashMap<u64, FunctionSummary>>; STORE_SHARDS],
    /// Segment file names already folded into the index.
    seen: Mutex<HashSet<String>>,
    /// Highest generation observed in the directory; new segments are
    /// published at `generation + 1`.
    generation: AtomicU64,
    /// Per-process publish sequence, so one process can publish several
    /// segments of the same generation without name collisions.
    seq: AtomicU64,
    /// Defective segment files skipped over this store's lifetime.
    skipped: AtomicU64,
}

impl SharedSummaryStore {
    /// Opens (creating if needed) the store directory, folds every
    /// readable segment into the in-memory index, and compacts the
    /// directory when it has accumulated `COMPACT_THRESHOLD` segments.
    /// Summaries are config-dependent, so the store is bound to one
    /// [`GenConfig`]; segments written under another are skipped.
    pub fn open(dir: impl Into<PathBuf>, cfg: GenConfig) -> std::io::Result<SharedSummaryStore> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir)?;
        let store = SharedSummaryStore {
            dir,
            cfg_byte: persist::encode_gen_config(cfg),
            shards: std::array::from_fn(|_| RwLock::new(HashMap::new())),
            seen: Mutex::new(HashSet::new()),
            generation: AtomicU64::new(0),
            seq: AtomicU64::new(0),
            skipped: AtomicU64::new(0),
        };
        store.refresh()?;
        store.maybe_compact();
        Ok(store)
    }

    /// The directory this store lives in.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Folds any segment files that appeared since the last scan (another
    /// process publishing) into the index. Returns how many new segments
    /// were folded. Cheap when nothing changed: one directory listing.
    pub fn refresh(&self) -> std::io::Result<usize> {
        let mut folded = 0;
        for entry in std::fs::read_dir(&self.dir)? {
            let Ok(entry) = entry else { continue };
            let name = entry.file_name().to_string_lossy().into_owned();
            if !name.ends_with(SEG_SUFFIX) || !name.starts_with("seg-") {
                continue;
            }
            {
                let mut seen = self.seen.lock().unwrap_or_else(|e| e.into_inner());
                if !seen.insert(name.clone()) {
                    continue;
                }
            }
            if let Some(gen) = parse_generation(&name) {
                self.generation.fetch_max(gen, Ordering::Relaxed);
            }
            let bytes = match std::fs::read(entry.path()) {
                Ok(b) => b,
                // Deleted between listing and read: a concurrent
                // compactor beat us to it; its compacted segment carries
                // the same entries.
                Err(e) if e.kind() == std::io::ErrorKind::NotFound => continue,
                Err(_) => {
                    self.skipped.fetch_add(1, Ordering::Relaxed);
                    continue;
                }
            };
            match decode_segment(&bytes, self.cfg_byte) {
                Ok(entries) => {
                    for (key, summary) in entries {
                        self.insert_if_absent(key, &summary);
                    }
                    folded += 1;
                }
                Err(_) => {
                    self.skipped.fetch_add(1, Ordering::Relaxed);
                }
            }
        }
        Ok(folded)
    }

    /// The stored summary for `key`, if present. A hit licenses skipping
    /// the function's Init-grounded solve — the key already certifies
    /// that its whole transitive callee world is unchanged.
    pub fn get(&self, key: u64) -> Option<FunctionSummary> {
        self.shards[shard_of(key)].read().unwrap_or_else(|e| e.into_inner()).get(&key).cloned()
    }

    /// Insert-if-absent merge (memory only — [`SharedSummaryStore::publish`]
    /// is the durable variant). Returns whether the entry was new. In
    /// debug builds an existing entry is asserted equal to the incoming
    /// one: identical keys must mean identical summaries.
    pub fn insert_if_absent(&self, key: u64, summary: &FunctionSummary) -> bool {
        let shard = &self.shards[shard_of(key)];
        if let Some(existing) = shard.read().unwrap_or_else(|e| e.into_inner()).get(&key) {
            debug_assert_eq!(
                existing, summary,
                "shared-store invariant violated: key {key:#018x} maps to two summaries"
            );
            return false;
        }
        match shard.write().unwrap_or_else(|e| e.into_inner()).entry(key) {
            std::collections::hash_map::Entry::Occupied(o) => {
                debug_assert_eq!(
                    o.get(),
                    summary,
                    "shared-store invariant violated: key {key:#018x} maps to two summaries"
                );
                false
            }
            std::collections::hash_map::Entry::Vacant(v) => {
                v.insert(summary.clone());
                true
            }
        }
    }

    /// Merges `entries` into the index and durably appends the *newly
    /// inserted* ones as one fresh segment (write-temp-then-rename; a
    /// fully-redundant publish writes nothing). Returns how many entries
    /// were new. Safe to call from any number of processes concurrently.
    pub fn publish(&self, entries: &[(u64, FunctionSummary)]) -> std::io::Result<usize> {
        let fresh: Vec<&(u64, FunctionSummary)> =
            entries.iter().filter(|(k, s)| self.insert_if_absent(*k, s)).collect();
        if fresh.is_empty() {
            return Ok(0);
        }
        let gen = self.generation.fetch_add(1, Ordering::Relaxed) + 1;
        let name = format!(
            "seg-{gen:016x}-{:08x}-{:04x}{SEG_SUFFIX}",
            std::process::id(),
            self.seq.fetch_add(1, Ordering::Relaxed)
        );
        let bytes = encode_segment(fresh.iter().map(|(k, s)| (*k, s)), self.cfg_byte);
        persist::write_atomic(&self.dir.join(&name), &bytes)?;
        // Our own segment is already folded in.
        self.seen.lock().unwrap_or_else(|e| e.into_inner()).insert(name);
        Ok(fresh.len())
    }

    /// Number of summaries resident in the index.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.read().unwrap_or_else(|e| e.into_inner()).len()).sum()
    }

    /// Whether the store holds no summaries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Defective (torn/corrupted/mismatched) segment files skipped so
    /// far — they are never trusted, only counted.
    pub fn skipped_segments(&self) -> u64 {
        self.skipped.load(Ordering::Relaxed)
    }

    /// Rewrites the whole index as one segment and deletes the files it
    /// subsumes. Entries are immutable and insert-if-absent, so a
    /// concurrent reader that still folds a doomed segment merges
    /// byte-identical data; one that misses it finds the same entries in
    /// the compacted segment.
    fn maybe_compact(&self) {
        let doomed: Vec<String> = {
            let seen = self.seen.lock().unwrap_or_else(|e| e.into_inner());
            if seen.len() < COMPACT_THRESHOLD {
                return;
            }
            seen.iter().cloned().collect()
        };
        let mut all: Vec<(u64, FunctionSummary)> = Vec::with_capacity(self.len());
        for shard in &self.shards {
            let g = shard.read().unwrap_or_else(|e| e.into_inner());
            all.extend(g.iter().map(|(k, s)| (*k, s.clone())));
        }
        // Deterministic segment bytes for a given index state.
        all.sort_unstable_by_key(|&(k, _)| k);
        let gen = self.generation.fetch_add(1, Ordering::Relaxed) + 1;
        let name = format!(
            "seg-{gen:016x}-{:08x}-{:04x}{SEG_SUFFIX}",
            std::process::id(),
            self.seq.fetch_add(1, Ordering::Relaxed)
        );
        let bytes = encode_segment(all.iter().map(|(k, s)| (*k, s)), self.cfg_byte);
        if persist::write_atomic(&self.dir.join(&name), &bytes).is_err() {
            return; // compaction is an optimisation; keep the segments
        }
        let mut seen = self.seen.lock().unwrap_or_else(|e| e.into_inner());
        seen.insert(name);
        for old in doomed {
            std::fs::remove_file(self.dir.join(&old)).ok();
            seen.remove(&old);
        }
    }
}

fn shard_of(key: u64) -> usize {
    // Mix the high bits in: keys are FNV hashes, but cheap insurance.
    ((key ^ (key >> 32)) as usize) & (STORE_SHARDS - 1)
}

/// Parses the generation out of `seg-<gen>-<pid>-<seq>.sraaseg`.
fn parse_generation(name: &str) -> Option<u64> {
    let hex = name.strip_prefix("seg-")?.split('-').next()?;
    u64::from_str_radix(hex, 16).ok()
}

fn encode_segment<'a>(
    entries: impl ExactSizeIterator<Item = (u64, &'a FunctionSummary)>,
    cfg_byte: u8,
) -> Vec<u8> {
    let mut out = Vec::with_capacity(SEG_HEADER_LEN + 16 * entries.len() + CHECKSUM_LEN);
    out.extend_from_slice(SEG_MAGIC);
    out.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
    out.push(cfg_byte);
    out.push(0);
    out.extend_from_slice(&(entries.len() as u32).to_le_bytes());
    for (key, summary) in entries {
        out.extend_from_slice(&key.to_le_bytes());
        let facts = summary.args_lt_ret();
        out.extend_from_slice(&(facts.len() as u32).to_le_bytes());
        for &j in facts {
            out.extend_from_slice(&j.to_le_bytes());
        }
    }
    let mut h = Fnv64::new();
    h.write(&out);
    out.extend_from_slice(&h.finish().to_le_bytes());
    out
}

fn decode_segment(bytes: &[u8], cfg_byte: u8) -> Result<Vec<(u64, FunctionSummary)>, PersistError> {
    if bytes.len() < SEG_HEADER_LEN + CHECKSUM_LEN {
        return Err(PersistError::Truncated);
    }
    if &bytes[0..8] != SEG_MAGIC {
        return Err(PersistError::Corrupted("bad magic"));
    }
    let version = u16::from_le_bytes([bytes[8], bytes[9]]);
    if version != FORMAT_VERSION {
        return Err(PersistError::VersionMismatch { found: version });
    }
    let (payload, tail) = bytes.split_at(bytes.len() - CHECKSUM_LEN);
    let mut h = Fnv64::new();
    h.write(payload);
    if h.finish().to_le_bytes() != tail {
        return Err(PersistError::Corrupted("checksum mismatch"));
    }
    if bytes[10] != cfg_byte {
        return Err(PersistError::ConfigMismatch);
    }
    let count = u32::from_le_bytes(bytes[12..16].try_into().expect("4 bytes")) as usize;
    // Same hostile-count guard as the cache parser: bound the allocation
    // by what the payload could possibly hold (an entry is ≥ 12 bytes).
    if count > (payload.len() - SEG_HEADER_LEN) / 12 {
        return Err(PersistError::Corrupted("entry count exceeds payload"));
    }
    let mut cur = Cursor { bytes: payload, at: SEG_HEADER_LEN };
    let mut entries = Vec::with_capacity(count);
    for _ in 0..count {
        let key = cur.u64()?;
        let nfacts = cur.u32()? as usize;
        let mut facts = Vec::with_capacity(nfacts.min(1024));
        for _ in 0..nfacts {
            facts.push(cur.u32()?);
        }
        entries.push((key, FunctionSummary { args_lt_ret: facts.into() }));
    }
    if cur.at != payload.len() {
        return Err(PersistError::Corrupted("trailing bytes after entries"));
    }
    Ok(entries)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn summary(facts: &[u32]) -> FunctionSummary {
        FunctionSummary { args_lt_ret: facts.to_vec().into() }
    }

    fn tmpdir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("sraa_store_{tag}_{}", std::process::id()));
        std::fs::remove_dir_all(&d).ok();
        d
    }

    #[test]
    fn segment_bytes_round_trip_and_reject_defects() {
        let entries = vec![(7u64, summary(&[0, 2])), (u64::MAX, summary(&[])), (42, summary(&[1]))];
        let cfg = persist::encode_gen_config(GenConfig::default());
        let bytes = encode_segment(entries.iter().map(|(k, s)| (*k, s)), cfg);
        assert_eq!(decode_segment(&bytes, cfg).unwrap(), entries);

        for cut in 0..bytes.len() {
            assert!(decode_segment(&bytes[..cut], cfg).is_err(), "prefix {cut}");
        }
        for at in [0, 9, SEG_HEADER_LEN + 1, bytes.len() - 3] {
            let mut bad = bytes.clone();
            bad[at] ^= 0x10;
            assert!(decode_segment(&bad, cfg).is_err(), "flip at {at}");
        }
        assert!(matches!(decode_segment(&bytes, cfg ^ 1), Err(PersistError::ConfigMismatch)));
        // Hostile count with a re-sealed checksum is rejected pre-allocation.
        let mut hostile = bytes.clone();
        hostile[12..16].copy_from_slice(&u32::MAX.to_le_bytes());
        let last = hostile.len() - CHECKSUM_LEN;
        let mut h = Fnv64::new();
        h.write(&hostile[..last]);
        let sum = h.finish().to_le_bytes();
        hostile[last..].copy_from_slice(&sum);
        assert!(matches!(
            decode_segment(&hostile, cfg),
            Err(PersistError::Corrupted("entry count exceeds payload"))
        ));
    }

    #[test]
    fn publish_get_and_refresh_share_across_handles() {
        let dir = tmpdir("share");
        let a = SharedSummaryStore::open(&dir, GenConfig::default()).unwrap();
        assert!(a.is_empty());
        assert_eq!(a.publish(&[(1, summary(&[0])), (2, summary(&[]))]).unwrap(), 2);
        assert_eq!(a.len(), 2);
        assert_eq!(a.get(1), Some(summary(&[0])));
        assert_eq!(a.get(3), None);

        // A second handle (simulating another process) sees the data at
        // open, and later data after a refresh.
        let b = SharedSummaryStore::open(&dir, GenConfig::default()).unwrap();
        assert_eq!(b.len(), 2);
        assert_eq!(a.publish(&[(3, summary(&[1]))]).unwrap(), 1);
        assert_eq!(b.get(3), None, "not yet refreshed");
        assert!(b.refresh().unwrap() >= 1);
        assert_eq!(b.get(3), Some(summary(&[1])));

        // Redundant publish inserts nothing and writes no segment.
        let before: usize = std::fs::read_dir(&dir).unwrap().count();
        assert_eq!(b.publish(&[(1, summary(&[0])), (3, summary(&[1]))]).unwrap(), 0);
        assert_eq!(std::fs::read_dir(&dir).unwrap().count(), before);
        assert_eq!(a.skipped_segments(), 0);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn defective_and_mismatched_segments_are_skipped_not_trusted() {
        let dir = tmpdir("defect");
        let a = SharedSummaryStore::open(&dir, GenConfig::default()).unwrap();
        a.publish(&[(1, summary(&[0]))]).unwrap();
        // A torn segment (as if a writer died before the rename, and some
        // non-atomic copy left a prefix) and a config-mismatched one.
        let good = encode_segment(
            [(9u64, &summary(&[1]))].into_iter(),
            persist::encode_gen_config(GenConfig::default()),
        );
        std::fs::write(dir.join(format!("seg-{:016x}-0-0{SEG_SUFFIX}", 99)), &good[..10]).unwrap();
        let other = encode_segment(
            [(8u64, &summary(&[1]))].into_iter(),
            persist::encode_gen_config(GenConfig { range_offsets: true, ..Default::default() }),
        );
        std::fs::write(dir.join(format!("seg-{:016x}-0-1{SEG_SUFFIX}", 98)), other).unwrap();
        // Unrelated files are ignored entirely.
        std::fs::write(dir.join("README"), "not a segment").unwrap();

        let b = SharedSummaryStore::open(&dir, GenConfig::default()).unwrap();
        assert_eq!(b.len(), 1, "only the good segment is folded");
        assert_eq!(b.get(9), None);
        assert_eq!(b.get(8), None);
        assert_eq!(b.skipped_segments(), 2);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn generations_advance_past_everything_seen() {
        let dir = tmpdir("gen");
        let a = SharedSummaryStore::open(&dir, GenConfig::default()).unwrap();
        a.publish(&[(1, summary(&[]))]).unwrap();
        a.publish(&[(2, summary(&[]))]).unwrap();
        let b = SharedSummaryStore::open(&dir, GenConfig::default()).unwrap();
        b.publish(&[(3, summary(&[]))]).unwrap();
        let mut gens: Vec<u64> = std::fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| parse_generation(&e.unwrap().file_name().to_string_lossy()))
            .collect();
        gens.sort_unstable();
        assert_eq!(gens, vec![1, 2, 3], "generations must be strictly increasing");
        assert_eq!(parse_generation("seg-00ff-1-2.sraaseg"), Some(0xff));
        assert_eq!(parse_generation("nope"), None);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn load_time_compaction_folds_segments_into_one() {
        let dir = tmpdir("compact");
        let a = SharedSummaryStore::open(&dir, GenConfig::default()).unwrap();
        for k in 0..COMPACT_THRESHOLD as u64 {
            a.publish(&[(k, summary(&[(k % 3) as u32]))]).unwrap();
        }
        let segs = |d: &Path| {
            std::fs::read_dir(d)
                .unwrap()
                .filter(|e| e.as_ref().unwrap().file_name().to_string_lossy().ends_with(SEG_SUFFIX))
                .count()
        };
        assert_eq!(segs(&dir), COMPACT_THRESHOLD);
        let b = SharedSummaryStore::open(&dir, GenConfig::default()).unwrap();
        assert_eq!(segs(&dir), 1, "open must compact {COMPACT_THRESHOLD} segments into one");
        assert_eq!(b.len(), COMPACT_THRESHOLD);
        // Everything survives into a third handle via the compacted file.
        let c = SharedSummaryStore::open(&dir, GenConfig::default()).unwrap();
        for k in 0..COMPACT_THRESHOLD as u64 {
            assert_eq!(c.get(k), Some(summary(&[(k % 3) as u32])), "key {k} lost in compaction");
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn concurrent_insert_if_absent_keeps_one_winner() {
        let store = SharedSummaryStore::open(tmpdir("race"), GenConfig::default()).unwrap();
        let inserted = std::sync::atomic::AtomicU64::new(0);
        std::thread::scope(|s| {
            for _ in 0..8 {
                s.spawn(|| {
                    for k in 0..512u64 {
                        if store.insert_if_absent(k, &summary(&[(k % 4) as u32])) {
                            inserted.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                });
            }
        });
        assert_eq!(inserted.load(Ordering::Relaxed), 512, "each key has exactly one winner");
        assert_eq!(store.len(), 512);
        assert_eq!(StoreOutcome::default().hit_rate(), 1.0);
        let o = StoreOutcome { hits: 3, misses: 1, published: 1 };
        assert_eq!(o.hit_rate(), 0.75);
        std::fs::remove_dir_all(store.dir()).ok();
    }
}
