//! Figure 12 — precision of the Program Dependence Graph on 120
//! Csmith-like programs (20 per pointer nesting depth, depths 2–7): the
//! number of PDG memory nodes under BA alone versus BA+LT, against the
//! static number of memory accesses.
//!
//! Paper headline: the 120 PDGs hold 1,299 memory nodes under BA and
//! 8,114 under BA+LT — a 6.23× increase; results do not depend on the
//! nesting depth.

use sraa_bench::Prepared;
use sraa_core::GenConfig;
use sraa_pdg::DepGraph;

fn main() {
    let ws = sraa_synth::csmith_figure12();
    println!("{:<18} {:>8} {:>6} {:>7}", "program", "static", "BA", "BA+LT");
    let mut tot_static = 0usize;
    let mut tot_ba = 0usize;
    let mut tot_both = 0usize;
    let mut per_depth: std::collections::BTreeMap<char, (usize, usize, usize)> = Default::default();
    for w in &ws {
        // The PDG experiment enables the §3.6 range-offset criterion: the
        // Csmith population is constant-index-heavy, which is exactly the
        // case that criterion (and the paper's Figure 12 numbers) covers.
        let p = Prepared::with_config(w, GenConfig { range_offsets: true, ..Default::default() });
        let g_ba = DepGraph::build(&p.module, &p.ba);
        let g_both = DepGraph::build(&p.module, &p.ba_plus_lt());
        println!(
            "{:<18} {:>8} {:>6} {:>7}",
            p.name, g_ba.static_accesses, g_ba.memory_nodes, g_both.memory_nodes
        );
        tot_static += g_ba.static_accesses;
        tot_ba += g_ba.memory_nodes;
        tot_both += g_both.memory_nodes;
        let depth = p.name.chars().nth(8).unwrap_or('?');
        let e = per_depth.entry(depth).or_default();
        e.0 += g_ba.static_accesses;
        e.1 += g_ba.memory_nodes;
        e.2 += g_both.memory_nodes;
    }
    println!();
    println!("totals: static={tot_static} BA={tot_ba} BA+LT={tot_both}");
    println!(
        "BA+LT / BA memory-node ratio = {:.2}x   (paper: 6.23x — 1,299 vs 8,114)",
        tot_both as f64 / tot_ba.max(1) as f64
    );
    println!();
    println!("per nesting depth (the paper finds no depth dependence):");
    for (d, (s, ba, both)) in per_depth {
        println!(
            "  depth {d}: static={s:>5} BA={ba:>5} BA+LT={both:>5} ratio={:.2}x",
            both as f64 / ba.max(1) as f64
        );
    }
}
