//! End-to-end smoke tests for the `sraa` CLI binary: every subcommand is
//! exercised on a tiny MiniC program so the binary path — argument
//! parsing, file loading, and each driver — is covered, not just the
//! libraries.

use std::path::PathBuf;
use std::process::{Command, Output};

const TINY: &str = r#"
int main() {
  int a[8];
  int i;
  for (i = 0; i < 8; i = i + 1) {
    a[i] = i * 2;
  }
  return a[3];
}
"#;

fn tiny_file() -> PathBuf {
    // Written exactly once: tests run in parallel, and rewriting would
    // truncate the file while another test's subprocess is reading it.
    static TINY_PATH: std::sync::OnceLock<PathBuf> = std::sync::OnceLock::new();
    TINY_PATH
        .get_or_init(|| {
            let path =
                std::env::temp_dir().join(format!("sraa_cli_smoke_{}.c", std::process::id()));
            std::fs::write(&path, TINY).expect("can write temp MiniC file");
            path
        })
        .clone()
}

fn sraa(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_sraa")).args(args).output().expect("sraa binary runs")
}

fn stdout(out: &Output) -> String {
    String::from_utf8_lossy(&out.stdout).into_owned()
}

#[test]
fn no_args_prints_usage_and_fails() {
    let out = sraa(&[]);
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("usage: sraa"));
}

#[test]
fn missing_file_is_a_clean_error() {
    let out = sraa(&["compile", "/nonexistent/sraa_smoke.c"]);
    assert_eq!(out.status.code(), Some(1));
    assert!(String::from_utf8_lossy(&out.stderr).contains("cannot read"));
}

#[test]
fn compile_prints_ssa_ir() {
    let f = tiny_file();
    let out = sraa(&["compile", f.to_str().unwrap()]);
    assert!(out.status.success(), "stderr: {}", String::from_utf8_lossy(&out.stderr));
    let ir = stdout(&out);
    assert!(ir.contains("func @main"), "no function header in:\n{ir}");
    assert!(ir.contains("alloca"), "array allocation missing in:\n{ir}");
}

#[test]
fn compile_essa_reports_sigma_stats() {
    let f = tiny_file();
    let out = sraa(&["compile", f.to_str().unwrap(), "--essa"]);
    assert!(out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("e-SSA"));
}

#[test]
fn run_interprets_main() {
    let f = tiny_file();
    let out = sraa(&["run", f.to_str().unwrap()]);
    assert!(out.status.success());
    // a[3] = 3 * 2
    assert!(stdout(&out).contains("result: Some(6)"), "got: {}", stdout(&out));
}

#[test]
fn eval_summarises_all_analyses() {
    let f = tiny_file();
    let out = sraa(&["eval", f.to_str().unwrap()]);
    assert!(out.status.success());
    let summary = stdout(&out);
    for analysis in ["BA", "LT", "CF", "ST", "PT", "BA+LT"] {
        assert!(summary.contains(analysis), "missing {analysis} row in:\n{summary}");
    }
}

#[test]
fn lt_prints_strict_inequality_sets() {
    let f = tiny_file();
    let out = sraa(&["lt", f.to_str().unwrap(), "main"]);
    assert!(out.status.success());
    let text = stdout(&out);
    assert!(text.contains("LT sets of @main"), "got:\n{text}");
    assert!(text.contains("constraints"), "missing solver stats in:\n{text}");
}

#[test]
fn lt_solver_flag_selects_strategy_without_changing_sets() {
    let f = tiny_file();
    let path = f.to_str().unwrap();
    let scc = sraa(&["lt", path, "main", "--solver", "scc"]);
    let wl = sraa(&["lt", path, "main", "--solver", "worklist"]);
    assert!(scc.status.success() && wl.status.success());
    let (scc, wl) = (stdout(&scc), stdout(&wl));
    assert!(scc.contains("[scc solver]"), "got:\n{scc}");
    assert!(wl.contains("[worklist solver]"), "got:\n{wl}");
    // Identical LT sets: only the stats line (strategy name + work
    // counter) may differ.
    fn sets(s: &str) -> Vec<String> {
        s.lines().filter(|l| l.contains("LT(")).map(str::to_owned).collect()
    }
    assert_eq!(sets(&scc), sets(&wl), "solver strategies must print identical LT sets");
}

#[test]
fn solver_flag_defaults_to_scc() {
    let f = tiny_file();
    let out = sraa(&["lt", f.to_str().unwrap(), "main"]);
    assert!(out.status.success());
    assert!(stdout(&out).contains("[scc solver]"), "got: {}", stdout(&out));
}

#[test]
fn solver_flag_rejects_unknown_strategies() {
    let f = tiny_file();
    let out = sraa(&["eval", f.to_str().unwrap(), "--solver", "magic"]);
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown solver"));
    let out = sraa(&["eval", f.to_str().unwrap(), "--solver"]);
    assert_eq!(out.status.code(), Some(2));
}

#[test]
fn eval_accepts_solver_flag_with_identical_summary() {
    let f = tiny_file();
    let path = f.to_str().unwrap();
    let scc = sraa(&["eval", path, "--solver", "scc"]);
    let wl = sraa(&["eval", path, "--solver", "worklist"]);
    assert!(scc.status.success() && wl.status.success());
    assert_eq!(stdout(&scc), stdout(&wl), "verdict tallies must not depend on the strategy");
}

#[test]
fn repeated_lt_runs_are_byte_identical() {
    let f = tiny_file();
    let path = f.to_str().unwrap();
    let first = sraa(&["lt", path, "main"]);
    assert!(first.status.success());
    for _ in 0..2 {
        let again = sraa(&["lt", path, "main"]);
        assert_eq!(stdout(&first), stdout(&again), "lt output must be deterministic");
    }
}

const CALLS: &str = r#"
int* advance(int* p, int k) {
  if (k > 0) { return p + k; }
  return p + 1;
}
int use_helper(int* v, int n) {
  int acc = 0;
  for (int i = 1; i + 4 < n; i++) {
    int* q = advance(v, i);
    *q = i;
    *v = acc;
    acc += *q;
  }
  return acc;
}
int main() {
  int a[16];
  for (int i = 0; i < 16; i++) a[i] = i;
  return use_helper(a, 12);
}
"#;

fn calls_file() -> PathBuf {
    static CALLS_PATH: std::sync::OnceLock<PathBuf> = std::sync::OnceLock::new();
    CALLS_PATH
        .get_or_init(|| {
            let path =
                std::env::temp_dir().join(format!("sraa_cli_calls_{}.c", std::process::id()));
            std::fs::write(&path, CALLS).expect("can write temp MiniC file");
            path
        })
        .clone()
}

/// The `LT` row of an `eval` summary as (no-alias, may, must).
fn lt_row(summary: &str) -> (u64, u64, u64) {
    let line = summary
        .lines()
        .find(|l| l.split_whitespace().next() == Some("LT"))
        .unwrap_or_else(|| panic!("no LT row in:\n{summary}"));
    let mut it = line.split_whitespace().skip(1).map(|n| n.parse().expect("count"));
    (it.next().unwrap(), it.next().unwrap(), it.next().unwrap())
}

#[test]
fn unknown_flags_are_rejected_with_usage() {
    let f = tiny_file();
    let path = f.to_str().unwrap();
    // Pre-fix regression: anything left after `--solver` was stripped
    // used to be silently ignored, hiding typos like `--interporc`.
    for args in [
        vec!["eval", path, "--frobnicate"],
        vec!["eval", path, "--solver", "scc", "--interporc"],
        vec!["lt", path, "main", "--bogus"],
        vec!["compile", path, "--interproc"], // not an engine subcommand
        vec!["opt", path, "--ba", "--wat"],
        vec!["pdg", path, "--wat"],
        vec!["run", path, "--wat"],
        vec!["gen", "1", "2", "--wat"],
    ] {
        let out = sraa(&args);
        assert_eq!(out.status.code(), Some(2), "args {args:?} must exit 2");
        let err = String::from_utf8_lossy(&out.stderr).into_owned();
        assert!(err.contains("unknown flag"), "args {args:?}: {err}");
        assert!(err.contains("usage:"), "args {args:?}: {err}");
    }
}

#[test]
fn eval_interproc_gains_no_alias_verdicts() {
    let f = calls_file();
    let path = f.to_str().unwrap();
    let intra = sraa(&["eval", path]);
    let inter = sraa(&["eval", path, "--interproc"]);
    assert!(intra.status.success() && inter.status.success());
    let (intra_na, _, _) = lt_row(&stdout(&intra));
    let (inter_na, _, _) = lt_row(&stdout(&inter));
    assert!(
        inter_na > intra_na,
        "summaries must add LT no-alias verdicts: {intra_na} -> {inter_na}"
    );
}

#[test]
fn interproc_output_is_deterministic_and_solver_independent() {
    let f = calls_file();
    let path = f.to_str().unwrap();
    let first = sraa(&["eval", path, "--interproc"]);
    assert!(first.status.success());
    let again = sraa(&["eval", path, "--interproc"]);
    assert_eq!(stdout(&first), stdout(&again), "interproc eval must be deterministic");
    let wl = sraa(&["eval", path, "--interproc", "--solver", "worklist"]);
    assert_eq!(stdout(&first), stdout(&wl), "verdicts must not depend on the solver strategy");
}

#[test]
fn lt_interproc_reports_summary_stats() {
    let f = calls_file();
    let path = f.to_str().unwrap();
    let out = sraa(&["lt", path, "use_helper", "--interproc"]);
    assert!(out.status.success());
    let text = stdout(&out);
    assert!(text.contains("interproc:"), "missing summary stats line in:\n{text}");
    assert!(text.contains("summary fact(s)"), "got:\n{text}");
    // Intra mode must not print the summary line.
    let intra = sraa(&["lt", path, "use_helper"]);
    assert!(!stdout(&intra).contains("interproc:"));
}

#[test]
fn pdg_counts_memory_nodes() {
    let f = tiny_file();
    let out = sraa(&["pdg", f.to_str().unwrap()]);
    assert!(out.status.success());
    assert!(stdout(&out).contains("memory nodes"), "got: {}", stdout(&out));
}

#[test]
fn opt_preserves_program_behaviour() {
    let f = tiny_file();
    let out = sraa(&["opt", f.to_str().unwrap()]);
    assert!(out.status.success(), "stderr: {}", String::from_utf8_lossy(&out.stderr));
    // The optimised IR is printed on stdout and must still be a module.
    assert!(stdout(&out).contains("func @main"));
}

#[test]
fn gen_emits_compilable_minic() {
    let out = sraa(&["gen", "7", "2"]);
    assert!(out.status.success());
    let source = stdout(&out);
    assert!(source.contains("int main"), "generator output:\n{source}");
    // The generated program must round-trip through our own front end.
    let path = std::env::temp_dir().join(format!("sraa_cli_gen_{}.c", std::process::id()));
    std::fs::write(&path, &source).unwrap();
    let out = sraa(&["compile", path.to_str().unwrap()]);
    assert!(out.status.success(), "generated program failed to compile");
}
