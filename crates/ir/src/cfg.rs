//! Control-flow graph: predecessor lists and block orderings.

use crate::function::Function;
use crate::ids::BlockId;

/// Predecessor/successor information plus traversal orders for a function.
///
/// The CFG is a snapshot: recompute it after structural edits (such as the
/// edge splits performed by the e-SSA transform).
#[derive(Clone, Debug)]
pub struct Cfg {
    preds: Vec<Vec<BlockId>>,
    succs: Vec<Vec<BlockId>>,
    postorder: Vec<BlockId>,
    reachable: Vec<bool>,
}

impl Cfg {
    /// Computes the CFG of `func`.
    pub fn compute(func: &Function) -> Self {
        let n = func.num_blocks();
        let mut preds = vec![Vec::new(); n];
        let mut succs = vec![Vec::new(); n];
        for b in func.block_ids() {
            for s in func.successors(b) {
                succs[b.index()].push(s);
                preds[s.index()].push(b);
            }
        }

        // Iterative post-order DFS from the entry.
        let mut postorder = Vec::with_capacity(n);
        let mut reachable = vec![false; n];
        let mut visited = vec![false; n];
        let entry = func.entry();
        let mut stack: Vec<(BlockId, usize)> = vec![(entry, 0)];
        visited[entry.index()] = true;
        reachable[entry.index()] = true;
        while let Some(&mut (b, ref mut next)) = stack.last_mut() {
            let ss = &succs[b.index()];
            if *next < ss.len() {
                let s = ss[*next];
                *next += 1;
                if !visited[s.index()] {
                    visited[s.index()] = true;
                    reachable[s.index()] = true;
                    stack.push((s, 0));
                }
            } else {
                postorder.push(b);
                stack.pop();
            }
        }

        Self { preds, succs, postorder, reachable }
    }

    /// Predecessors of `b`.
    pub fn preds(&self, b: BlockId) -> &[BlockId] {
        &self.preds[b.index()]
    }

    /// Successors of `b`.
    pub fn succs(&self, b: BlockId) -> &[BlockId] {
        &self.succs[b.index()]
    }

    /// Blocks in post-order (entry last). Unreachable blocks are absent.
    pub fn postorder(&self) -> &[BlockId] {
        &self.postorder
    }

    /// Blocks in reverse post-order (entry first). Unreachable blocks are
    /// absent.
    pub fn reverse_postorder(&self) -> Vec<BlockId> {
        self.postorder.iter().rev().copied().collect()
    }

    /// Whether `b` is reachable from the entry.
    pub fn is_reachable(&self, b: BlockId) -> bool {
        self.reachable[b.index()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FunctionBuilder;
    use crate::inst::Pred;
    use crate::types::Type;

    /// Diamond: entry → {l, r} → join.
    fn diamond() -> (Function, [BlockId; 4]) {
        let mut f = Function::new("d", vec![("x", Type::Int)], None);
        let mut b = FunctionBuilder::new(&mut f);
        let entry = b.current_block();
        let l = b.create_block();
        let r = b.create_block();
        let join = b.create_block();
        let x = b.param(0);
        let z = b.iconst(0);
        let c = b.cmp(Pred::Lt, x, z);
        b.br(c, l, r);
        b.switch_to(l);
        b.jump(join);
        b.switch_to(r);
        b.jump(join);
        b.switch_to(join);
        b.ret(None);
        b.finish();
        (f, [entry, l, r, join])
    }

    #[test]
    fn diamond_preds_succs() {
        let (f, [entry, l, r, join]) = diamond();
        let cfg = Cfg::compute(&f);
        assert_eq!(cfg.succs(entry), &[l, r]);
        assert_eq!(cfg.preds(join), &[l, r]);
        assert_eq!(cfg.preds(entry), &[] as &[BlockId]);
        assert_eq!(cfg.succs(join), &[] as &[BlockId]);
    }

    #[test]
    fn rpo_starts_at_entry_and_respects_order() {
        let (f, [entry, l, r, join]) = diamond();
        let cfg = Cfg::compute(&f);
        let rpo = cfg.reverse_postorder();
        assert_eq!(rpo[0], entry);
        assert_eq!(*rpo.last().unwrap(), join);
        let pos = |b: BlockId| rpo.iter().position(|&x| x == b).unwrap();
        assert!(pos(entry) < pos(l));
        assert!(pos(entry) < pos(r));
        assert!(pos(l) < pos(join));
        assert!(pos(r) < pos(join));
    }

    #[test]
    fn unreachable_blocks_are_flagged() {
        let mut f = Function::new("u", Vec::<(&str, Type)>::new(), None);
        let mut b = FunctionBuilder::new(&mut f);
        let dead = b.create_block();
        b.ret(None);
        b.switch_to(dead);
        b.ret(None);
        b.finish();
        let cfg = Cfg::compute(&f);
        assert!(cfg.is_reachable(f.entry()));
        assert!(!cfg.is_reachable(dead));
        assert_eq!(cfg.postorder().len(), 1);
    }

    #[test]
    fn loop_postorder_terminates() {
        // entry → header ⇄ body, header → exit
        let mut f = Function::new("l", vec![("n", Type::Int)], None);
        let mut b = FunctionBuilder::new(&mut f);
        let header = b.create_block();
        let body = b.create_block();
        let exit = b.create_block();
        let n = b.param(0);
        let z = b.iconst(0);
        b.jump(header);
        b.switch_to(header);
        let c = b.cmp(Pred::Lt, z, n);
        b.br(c, body, exit);
        b.switch_to(body);
        b.jump(header);
        b.switch_to(exit);
        b.ret(None);
        b.finish();
        let cfg = Cfg::compute(&f);
        assert_eq!(cfg.postorder().len(), 4);
        assert_eq!(cfg.preds(header).len(), 2);
    }
}
