//! Word-level sorted-set kernels for the dense lattice backend.
//!
//! `LT` sets are strictly increasing `u32` slices. The two operations the
//! dense solver runs in its innermost loop — `∩` for `Inter` constraints
//! and `∪` for `Union` constraints — are written here in shapes LLVM
//! autovectorizes:
//!
//! * [`intersect_in_place`] advances through the probe slice in
//!   [`LANES`]-wide blocks. The block skip is one branch per 8 elements,
//!   and the final positioning inside a block is a branchless lane count
//!   (`Σ usize::from(x < v)`) that compiles to a SIMD compare + horizontal
//!   add.
//! * [`union_merge`] decomposes the merge into maximal runs found with
//!   `partition_point` (binary search) and copies each run with
//!   `extend_from_slice` (a `memcpy`), instead of branching per element.
//!
//! Both are drop-in replacements for the scalar two-pointer loops; the
//! property tests below pin them element-for-element to naive oracles.

/// Block width of the intersect skip loop. Eight `u32`s fill one 256-bit
/// vector register; the lane-count loop below is written so the
/// autovectorizer sees a fixed-trip-count reduction.
pub(crate) const LANES: usize = 8;

/// In-place intersection of a sorted, deduplicated vector with a sorted,
/// deduplicated slice: `acc ← acc ∩ b`.
///
/// For every survivor candidate `v` the cursor into `b` first jumps
/// whole [`LANES`]-blocks whose maximum is still below `v`, then settles
/// with one branchless lane scan. Asymptotically the same two-pointer
/// merge as before, but skewed intersections (small `acc`, large `b` —
/// the φ-node shape after a `Union` chain) advance 8× per branch.
pub(crate) fn intersect_in_place(acc: &mut Vec<u32>, b: &[u32]) {
    let mut w = 0;
    let mut j = 0;
    for i in 0..acc.len() {
        let v = acc[i];
        // Skip whole blocks strictly below `v`: one compare per LANES.
        while j + LANES <= b.len() && b[j + LANES - 1] < v {
            j += LANES;
        }
        if j + LANES <= b.len() {
            // `b[j + LANES - 1] >= v`, so the number of elements `< v`
            // in this block is exactly the lane count — branchless.
            let block = &b[j..j + LANES];
            let mut lt = 0usize;
            for &x in block {
                lt += usize::from(x < v);
            }
            j += lt;
        } else {
            while j < b.len() && b[j] < v {
                j += 1;
            }
        }
        if j < b.len() && b[j] == v {
            acc[w] = v;
            w += 1;
            j += 1;
        }
    }
    acc.truncate(w);
}

/// Merge-union of two sorted, deduplicated slices into `out` (cleared by
/// the caller): `out ← a ∪ b`, sorted and deduplicated.
///
/// Instead of a per-element branch, each step locates the maximal run of
/// one input strictly below the other's head with `partition_point` and
/// copies it wholesale — long disjoint stretches (the common case when a
/// `Union` folds a chain predecessor into a few fresh elements) become
/// single `memcpy`s.
pub(crate) fn union_merge(out: &mut Vec<u32>, a: &[u32], b: &[u32]) {
    debug_assert!(out.is_empty());
    out.reserve(a.len() + b.len());
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        let run_a = a[i..].partition_point(|&x| x < b[j]);
        out.extend_from_slice(&a[i..i + run_a]);
        i += run_a;
        if i == a.len() {
            break;
        }
        // `a[i] >= b[j]`: copy the run of `b` strictly below it, then
        // fold an equal head once.
        let run_b = b[j..].partition_point(|&x| x < a[i]);
        out.extend_from_slice(&b[j..j + run_b]);
        j += run_b;
        if j < b.len() && a[i] == b[j] {
            out.push(a[i]);
            i += 1;
            j += 1;
        }
    }
    out.extend_from_slice(&a[i..]);
    out.extend_from_slice(&b[j..]);
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn naive_intersect(a: &[u32], b: &[u32]) -> Vec<u32> {
        a.iter().copied().filter(|v| b.binary_search(v).is_ok()).collect()
    }

    fn naive_union(a: &[u32], b: &[u32]) -> Vec<u32> {
        let mut out: Vec<u32> = a.iter().chain(b).copied().collect();
        out.sort_unstable();
        out.dedup();
        out
    }

    fn sorted_set() -> impl Strategy<Value = Vec<u32>> {
        proptest::collection::vec(0u32..200, 0..64).prop_map(|mut v| {
            v.sort_unstable();
            v.dedup();
            v
        })
    }

    #[test]
    fn intersect_handles_edges() {
        for (a, b, want) in [
            (vec![], vec![1, 2, 3], vec![]),
            (vec![1, 2, 3], vec![], vec![]),
            (vec![1, 3, 5, 7], vec![2, 3, 4, 7, 9], vec![3, 7]),
            (vec![5], (0..100).collect::<Vec<_>>(), vec![5]),
            ((0..100).collect::<Vec<_>>(), vec![99], vec![99]),
        ] {
            let mut acc = a.clone();
            intersect_in_place(&mut acc, &b);
            assert_eq!(acc, want, "{a:?} ∩ {b:?}");
        }
    }

    #[test]
    fn intersect_skewed_blocks_skip_correctly() {
        // Probe slice long enough for many whole-block skips, survivors
        // placed at block boundaries and mid-block.
        let b: Vec<u32> = (0..10 * LANES as u32).map(|i| 3 * i).collect();
        let mut acc = vec![0, 3, 4, 23 * 3, 24 * 3 - 1, 29 * 3];
        let want = naive_intersect(&acc, &b);
        intersect_in_place(&mut acc, &b);
        assert_eq!(acc, want);
    }

    #[test]
    fn union_handles_edges() {
        for (a, b) in [
            (vec![], vec![]),
            (vec![1, 2], vec![]),
            (vec![], vec![1, 2]),
            (vec![1, 2, 3], vec![1, 2, 3]),
            (vec![1, 5, 9], vec![2, 5, 10]),
            ((0..40).collect::<Vec<u32>>(), vec![7]),
        ] {
            let mut out = Vec::new();
            union_merge(&mut out, &a, &b);
            assert_eq!(out, naive_union(&a, &b), "{a:?} ∪ {b:?}");
        }
    }

    proptest! {
        #[test]
        fn intersect_matches_naive(a in sorted_set(), b in sorted_set()) {
            let want = naive_intersect(&a, &b);
            let mut acc = a;
            intersect_in_place(&mut acc, &b);
            prop_assert_eq!(acc, want);
        }

        #[test]
        fn union_matches_naive(a in sorted_set(), b in sorted_set()) {
            let mut out = Vec::new();
            union_merge(&mut out, &a, &b);
            prop_assert_eq!(out, naive_union(&a, &b));
        }
    }
}
