//! The end-to-end strict-inequality analysis pipeline.
//!
//! ```text
//! SSA module ──σ-split──▶ e-SSA ──range──▶ intervals ──sub-split──▶ e-SSA(full)
//!            ──Figure 7──▶ constraints ──worklist──▶ LT sets
//! ```
//!
//! [`StrictInequalityAnalysis::run`] performs the whole pipeline, mutating
//! the module into e-SSA form (the paper's `vSSA` pass) and solving the
//! constraint system (the paper's `sraa` pass).

use crate::constraints::{self, GenConfig};
use crate::solver::{self, Solution, SolveStats};
use crate::var_index::VarIndex;
use sraa_ir::{FuncId, Function, InstKind, Module, Type, Value};
use sraa_range::RangeAnalysis;

/// The solved less-than relation over a whole module, plus the pointer
/// disambiguation criteria of the paper's Definition 3.11.
#[derive(Clone, Debug)]
pub struct StrictInequalityAnalysis {
    index: VarIndex,
    solution: Solution,
    ranges: RangeAnalysis,
    cfg: GenConfig,
}

impl StrictInequalityAnalysis {
    /// Runs the full pipeline with default (paper-faithful) settings.
    ///
    /// The module is mutated: it is converted to e-SSA form first.
    pub fn run(module: &mut Module) -> Self {
        Self::run_with(module, GenConfig::default())
    }

    /// Runs the full pipeline with an explicit configuration.
    pub fn run_with(module: &mut Module, cfg: GenConfig) -> Self {
        let (ranges, _) = sraa_essa::transform_module(module);
        Self::on_prepared(module, &ranges, cfg)
    }

    /// Analyzes a module that is *already* in e-SSA form, with
    /// caller-provided ranges. Useful when the caller also needs the
    /// intermediate artifacts.
    pub fn on_prepared(module: &Module, ranges: &RangeAnalysis, cfg: GenConfig) -> Self {
        let index = VarIndex::new(module);
        let mut sys = constraints::generate_with_index(module, ranges, cfg, &index);
        let mut solution = solver::solve(&sys.constraints, sys.num_vars);

        // Parameter-pair refinement (see `GenConfig::param_pairs`): when
        // every internal call site orders two arguments, the corresponding
        // formals are ordered for the whole frame. Each round may unlock
        // further pairs (arguments that are themselves parameters), so
        // iterate; the element sets only grow, bounded by #param².
        if cfg.param_pairs {
            loop {
                let mut added = false;
                for info in &sys.param_info {
                    if info.sites.is_empty() {
                        continue;
                    }
                    for (i, &pi) in info.params.iter().enumerate() {
                        for (j, &pj) in info.params.iter().enumerate() {
                            if i == j || solution.less_than(pi, pj) {
                                continue;
                            }
                            let Some(&cu) = sys.param_union.get(&pj) else { continue };
                            let holds_everywhere = info.sites.iter().all(|site| {
                                matches!((site[i], site[j]), (Some(a), Some(b))
                                    if solution.less_than(a, b))
                            });
                            if holds_everywhere {
                                if let constraints::Constraint::Union { elems, .. } =
                                    &mut sys.constraints[cu]
                                {
                                    elems.push(pi);
                                    added = true;
                                }
                            }
                        }
                    }
                }
                if !added {
                    break;
                }
                solution = solver::solve(&sys.constraints, sys.num_vars);
            }
        }

        Self { index, solution, ranges: ranges.clone(), cfg }
    }

    /// Whether `a < b` is proven: `a ∈ LT(b)`.
    pub fn less_than(&self, f: FuncId, a: Value, b: Value) -> bool {
        self.solution.less_than(self.index.id(f, a), self.index.id(f, b))
    }

    /// Cross-function variant (the relation is module-wide; meaningful for
    /// values related through the inter-procedural pseudo-φs).
    pub fn less_than_cross(&self, fa: FuncId, a: Value, fb: FuncId, b: Value) -> bool {
        self.solution.less_than(self.index.id(fa, a), self.index.id(fb, b))
    }

    /// The `LT` set of `v`, as `(function, value)` pairs.
    pub fn lt_set(&self, f: FuncId, v: Value) -> Vec<(FuncId, Value)> {
        self.solution
            .lt_set(self.index.id(f, v))
            .into_iter()
            .map(|id| self.index.func_of(id))
            .collect()
    }

    /// Solver statistics (constraint count, worklist pops, …).
    pub fn stats(&self) -> &SolveStats {
        &self.solution.stats
    }

    /// Histogram of `LT` set sizes (the paper observes ≥95% have ≤ 2).
    pub fn size_histogram(&self) -> Vec<(usize, usize)> {
        self.solution.size_histogram()
    }

    /// The paper's Definition 3.11: can `p1` and `p2` be proven disjoint?
    ///
    /// * Criterion 1 — `p1 ∈ LT(p2)` or `p2 ∈ LT(p1)`;
    /// * Criterion 2 — `p1 = p + x1`, `p2 = p + x2` (same base, both
    ///   offsets variables) with `x1 ∈ LT(x2)` or `x2 ∈ LT(x1)`.
    ///
    /// Both pointers must live in function `f`. Non-pointer operands
    /// always answer `false`.
    pub fn no_alias(&self, func: &Function, f: FuncId, p1: Value, p2: Value) -> bool {
        if p1 == p2 {
            return false;
        }
        let is_ptr = |v: Value| func.value_type(v).is_some_and(Type::is_ptr);
        if !is_ptr(p1) || !is_ptr(p2) {
            return false;
        }
        // Criterion 1.
        if self.less_than(f, p1, p2) || self.less_than(f, p2, p1) {
            return true;
        }
        // Criterion 2 (and, when enabled, the §3.6 range criterion).
        if let (Some((b1, x1)), Some((b2, x2))) =
            (derived_pointer(func, p1), derived_pointer(func, p2))
        {
            if strip_copies(func, b1) == strip_copies(func, b2) {
                let is_var = |x: Value| !matches!(func.inst(x).kind, InstKind::Const(_));
                if is_var(x1)
                    && is_var(x2)
                    && (self.less_than(f, x1, x2) || self.less_than(f, x2, x1))
                {
                    return true;
                }
            }
        }
        // §3.6 range criterion (opt-in): accumulate offset intervals along
        // the whole gep chain down to a common root object; disjoint total
        // intervals cannot overlap. This is the classic value-set
        // disambiguation the paper cites as complementary prior work.
        if self.cfg.range_offsets {
            let (r1, iv1) = self.root_and_offset(func, f, p1);
            let (r2, iv2) = self.root_and_offset(func, f, p2);
            if r1 == r2 && iv1.meet(&iv2).is_bottom() {
                return true;
            }
        }
        false
    }

    /// Walks copies and nested `gep`s down to the root pointer, summing
    /// the offsets' intervals.
    fn root_and_offset(
        &self,
        func: &Function,
        f: FuncId,
        p: Value,
    ) -> (Value, sraa_range::Interval) {
        let mut total = sraa_range::Interval::constant(0);
        let mut cur = strip_copies(func, p);
        while let InstKind::Gep { base, offset } = &func.inst(cur).kind {
            let r = match func.inst(*offset).kind {
                InstKind::Const(c) => sraa_range::Interval::constant(c),
                _ => self.ranges.range(f, *offset),
            };
            total = total.add(&r);
            cur = strip_copies(func, *base);
        }
        (cur, total)
    }
}

/// If `p` is a derived pointer `base + offset`, returns `(base, offset)`.
/// Copies around the `gep` are looked through.
pub fn derived_pointer(func: &Function, p: Value) -> Option<(Value, Value)> {
    match &func.inst(strip_copies(func, p)).kind {
        InstKind::Gep { base, offset } => Some((*base, *offset)),
        _ => None,
    }
}

/// Follows `Copy` chains to the underlying value (σ-copies and live-range
/// splits denote the same run-time value as their source).
pub fn strip_copies(func: &Function, mut v: Value) -> Value {
    loop {
        match &func.inst(v).kind {
            InstKind::Copy { src, .. } => v = *src,
            _ => return v,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn analyzed(src: &str) -> (Module, StrictInequalityAnalysis) {
        let mut m = sraa_minic::compile(src).unwrap();
        let lt = StrictInequalityAnalysis::run(&mut m);
        sraa_ir::verify(&m).unwrap();
        (m, lt)
    }

    /// Finds the (unique) load and store addresses of a function, in
    /// textual order — convenient handles on `v[i]`-style expressions.
    fn memory_addresses(m: &Module, name: &str) -> (FuncId, Vec<Value>) {
        let fid = m.function_by_name(name).unwrap();
        let f = m.function(fid);
        let mut out = Vec::new();
        for b in f.block_ids() {
            for (_, d) in f.block_insts(b) {
                match &d.kind {
                    InstKind::Load { ptr } => out.push(*ptr),
                    InstKind::Store { ptr, .. } => out.push(*ptr),
                    _ => {}
                }
            }
        }
        (fid, out)
    }

    #[test]
    fn figure1a_ins_sort_disambiguates_vi_vj() {
        // Paper Figure 1 (a): inside the inner loop, i < j always, so v[i]
        // and v[j] never alias — the motivating example.
        let (m, lt) = analyzed(
            r#"
            void ins_sort(int* v, int N) {
                int i; int j;
                for (i = 0; i < N - 1; i++) {
                    for (j = i + 1; j < N; j++) {
                        if (v[i] > v[j]) {
                            int tmp = v[i];
                            v[i] = v[j];
                            v[j] = tmp;
                        }
                    }
                }
            }
            "#,
        );
        let (fid, addrs) = memory_addresses(&m, "ins_sort");
        let f = m.function(fid);
        // All addresses are geps off v with offsets i or j; every (i-offset,
        // j-offset) pair must be disambiguated.
        let mut checked = 0;
        for (k, &a) in addrs.iter().enumerate() {
            for &b in addrs.iter().skip(k + 1) {
                let (Some((_, xa)), Some((_, xb))) = (derived_pointer(f, a), derived_pointer(f, b))
                else {
                    continue;
                };
                // Same index variable (i vs i) must NOT be disambiguated;
                // i vs j must.
                let same = strip_copies(f, xa) == strip_copies(f, xb);
                if same {
                    assert!(!lt.no_alias(f, fid, a, b), "v[i] vs v[i] must may-alias");
                } else {
                    assert!(lt.no_alias(f, fid, a, b), "v[i] vs v[j] must be disambiguated");
                    checked += 1;
                }
            }
        }
        assert!(checked >= 4, "several i/j pairs should have been checked: {checked}");
    }

    #[test]
    fn figure1b_partition_disambiguates_vi_vj() {
        // Paper Figure 1 (b): i < j is established by the `if (i >= j) break`.
        let (m, lt) = analyzed(
            r#"
            void partition(int* v, int N) {
                int i; int j; int p; int tmp;
                p = v[N / 2];
                i = 0; j = N - 1;
                while (1) {
                    while (v[i] < p) i++;
                    while (p < v[j]) j--;
                    if (i >= j) break;
                    tmp = v[i];
                    v[i] = v[j];
                    v[j] = tmp;
                    i++; j--;
                }
            }
            "#,
        );
        let (fid, addrs) = memory_addresses(&m, "partition");
        let f = m.function(fid);
        // The three accesses after the break check: v[i] (load), v[i]
        // (store), v[j] (load+store). Find a disambiguated i/j pair.
        let mut disambiguated = 0;
        for (k, &a) in addrs.iter().enumerate() {
            for &b in addrs.iter().skip(k + 1) {
                if lt.no_alias(f, fid, a, b) {
                    disambiguated += 1;
                }
            }
        }
        assert!(
            disambiguated >= 2,
            "the post-break v[i]/v[j] accesses must be disambiguated: {disambiguated}"
        );
    }

    #[test]
    fn pointer_walk_criterion1() {
        // for (pi = p; pi < pe; pi++): inside the loop pi < pe (σ on the
        // comparison) — criterion 1 disambiguates *pi from *pe.
        let (m, lt) = analyzed(
            r#"
            int f(int* p, int n) {
                int* pe = p + n;
                int s = 0;
                for (int* pi = p; pi < pe; pi++) { s += *pi; *pe = s; }
                return s;
            }
            "#,
        );
        let (fid, addrs) = memory_addresses(&m, "f");
        let f = m.function(fid);
        assert_eq!(addrs.len(), 2);
        assert!(lt.no_alias(f, fid, addrs[0], addrs[1]), "pi < pe inside the loop body ⇒ no alias");
    }

    #[test]
    fn base_vs_positive_offset() {
        // p and p + n with n > 0: p ∈ LT(p+n) by rule 2 on the gep.
        let (m, lt) = analyzed(
            r#"
            int f(int* p, int n) {
                if (n > 0) {
                    int* q = p + n;
                    *q = 1;
                    *p = 2;
                    return *q;
                }
                return 0;
            }
            "#,
        );
        let (fid, addrs) = memory_addresses(&m, "f");
        let f = m.function(fid);
        // q vs p (first store vs second store).
        assert!(lt.no_alias(f, fid, addrs[0], addrs[1]), "p < p+n for n > 0");
    }

    #[test]
    fn unknown_offsets_not_disambiguated() {
        // p + a vs p + b with unrelated a, b: must stay may-alias.
        let (m, lt) = analyzed(
            r#"
            int f(int* p, int a, int b) {
                int x = p[a];
                int y = p[b];
                return x + y;
            }
            "#,
        );
        let (fid, addrs) = memory_addresses(&m, "f");
        let f = m.function(fid);
        assert!(!lt.no_alias(f, fid, addrs[0], addrs[1]), "a and b are unrelated");
    }

    #[test]
    fn same_pointer_is_never_no_alias() {
        let (m, lt) = analyzed("int f(int* p) { return *p + *p; }");
        let (fid, addrs) = memory_addresses(&m, "f");
        let f = m.function(fid);
        assert!(!lt.no_alias(f, fid, addrs[0], addrs[1]));
        assert!(!lt.no_alias(f, fid, addrs[0], addrs[0]));
    }

    #[test]
    fn malloc_pair_not_handled_by_lt() {
        // The paper is explicit: p1 = malloc(); p2 = malloc() is NOT
        // disambiguated by the less-than analysis (BasicAA's job).
        let (m, lt) = analyzed(
            r#"
            int main() {
                int* p = malloc(4);
                int* q = malloc(4);
                *p = 1; *q = 2;
                return *p;
            }
            "#,
        );
        let (fid, addrs) = memory_addresses(&m, "main");
        let f = m.function(fid);
        assert!(!lt.no_alias(f, fid, addrs[0], addrs[1]));
    }

    #[test]
    fn constant_offsets_not_handled_by_lt() {
        // p+1 vs p+2: the paper's §3.6 says LT cannot disambiguate these
        // (range-based analyses do).
        let (m, lt) = analyzed(
            r#"
            int f(int* p) {
                int* p1 = p + 1;
                int* p2 = p + 2;
                *p1 = 1; *p2 = 2;
                return *p1;
            }
            "#,
        );
        let (fid, addrs) = memory_addresses(&m, "f");
        let f = m.function(fid);
        assert!(!lt.no_alias(f, fid, addrs[0], addrs[1]));
    }

    #[test]
    fn interprocedural_relation_via_pseudo_phi() {
        // g's parameters inherit i < j from the unique call site.
        let (m, lt) = analyzed(
            r#"
            int g(int* v, int i, int j) { return v[i] + v[j]; }
            int f(int* v, int n) {
                int s = 0;
                for (int i = 0; i + 1 < n; i++) s += g(v, i, i + 1);
                return s;
            }
            "#,
        );
        let (fid, addrs) = memory_addresses(&m, "g");
        let f = m.function(fid);
        assert_eq!(addrs.len(), 2);
        assert!(
            lt.no_alias(f, fid, addrs[0], addrs[1]),
            "i < i+1 flows into g's formals through the pseudo-φ"
        );
    }

    #[test]
    fn lt_sets_stay_small() {
        let (_, lt) = analyzed(
            r#"
            int f(int* v, int n) {
                int s = 0;
                for (int i = 0; i < n; i++)
                    for (int j = i + 1; j < n; j++)
                        s += v[i] * v[j];
                return s;
            }
            "#,
        );
        let hist = lt.size_histogram();
        let total: usize = hist.iter().map(|(_, c)| c).sum();
        let small: usize = hist.iter().filter(|(n, _)| *n <= 4).map(|(_, c)| c).sum();
        assert!(
            small as f64 / total as f64 > 0.8,
            "most LT sets should be tiny, got histogram {hist:?}"
        );
    }
}
