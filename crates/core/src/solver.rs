//! The worklist constraint solver — the paper's Section 3.4.
//!
//! Every `LT(x)` starts at ⊤ = `V` (the set of all program variables) and
//! decreases monotonically until a fixed point — the greatest fixpoint
//! over the lattice `PV = ⟨V, ∩, ⊥ = ∅, ⊤ = V, ⊆⟩` (paper Theorem 3.7).
//! Rather than materialising `V` per variable (quadratic memory), ⊤ is
//! represented symbolically ([`LtSet::Top`]) with identical lattice
//! semantics: `⊤ ∩ S = S`, `{x} ∪ ⊤ = ⊤`.
//!
//! The solver counts worklist pops: the paper reports that, in practice,
//! each constraint is visited ≈ 2.12 times before the fixpoint, which is
//! what makes the cubic worst case behave linearly ([`SolveStats`]
//! reproduces that measurement).
//!
//! Variables whose set is still ⊤ at the fixpoint can only belong to code
//! unreachable from any grounded definition (e.g. dead functions);
//! the freeze step in [`solve`] conservatively demotes them to ∅ so that queries
//! never rely on vacuous facts.

use crate::constraints::Constraint;
use std::collections::HashSet;

/// A less-than set during solving: ⊤ or an explicit set of variable ids.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum LtSet {
    /// The full set `V` (symbolic).
    Top,
    /// An explicit set.
    Set(HashSet<u32>),
}

impl LtSet {
    /// Membership test (⊤ contains everything).
    pub fn contains(&self, id: usize) -> bool {
        match self {
            LtSet::Top => true,
            LtSet::Set(s) => s.contains(&(id as u32)),
        }
    }

    /// Cardinality, `None` for ⊤.
    pub fn len(&self) -> Option<usize> {
        match self {
            LtSet::Top => None,
            LtSet::Set(s) => Some(s.len()),
        }
    }

    /// Whether this is the empty set.
    pub fn is_empty(&self) -> bool {
        matches!(self, LtSet::Set(s) if s.is_empty())
    }
}

/// Counters for the scalability study (paper §4.2 and Figure 11).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SolveStats {
    /// Number of constraints solved.
    pub constraints: usize,
    /// Number of variables in the system.
    pub variables: usize,
    /// Worklist pops until the fixed point (≈ 2 × constraints in practice).
    pub pops: u64,
    /// Variables still ⊤ at the fixpoint, demoted to ∅ by `freeze`.
    pub frozen_tops: usize,
}

impl SolveStats {
    /// Pops per constraint — the paper reports ≈ 2.12 on its corpus.
    pub fn pops_per_constraint(&self) -> f64 {
        if self.constraints == 0 {
            0.0
        } else {
            self.pops as f64 / self.constraints as f64
        }
    }
}

/// The solved less-than relation.
#[derive(Clone, Debug)]
pub struct Solution {
    sets: Vec<LtSet>,
    /// Solver statistics.
    pub stats: SolveStats,
}

impl Solution {
    /// Assembles a solution from pre-computed parts. Used by
    /// [`FastSolution::into_solution`](crate::fast_solver::FastSolution::into_solution).
    pub(crate) fn from_parts(sets: Vec<LtSet>, stats: SolveStats) -> Self {
        Self { sets, stats }
    }

    /// Whether variable `a` is strictly less than `b` (i.e. `a ∈ LT(b)`).
    pub fn less_than(&self, a: usize, b: usize) -> bool {
        self.sets.get(b).is_some_and(|s| s.contains(a))
    }

    /// The `LT` set of `x` as a sorted vector of ids.
    pub fn lt_set(&self, x: usize) -> Vec<usize> {
        match &self.sets[x] {
            LtSet::Top => Vec::new(), // frozen solutions never expose ⊤
            LtSet::Set(s) => {
                let mut v: Vec<usize> = s.iter().map(|&i| i as usize).collect();
                v.sort_unstable();
                v
            }
        }
    }

    /// Histogram entry: how many variables have an `LT` set of size `n`?
    /// The paper observes that over 95% of the sets hold ≤ 2 elements.
    pub fn size_histogram(&self) -> Vec<(usize, usize)> {
        let mut counts: std::collections::BTreeMap<usize, usize> = Default::default();
        for s in &self.sets {
            *counts.entry(s.len().unwrap_or(0)).or_default() += 1;
        }
        counts.into_iter().collect()
    }
}

/// Solves the constraint system over `num_vars` variables.
pub fn solve(constraints: &[Constraint], num_vars: usize) -> Solution {
    let mut sets: Vec<LtSet> = vec![LtSet::Top; num_vars];

    // dependents[v] = indexes of constraints whose RHS reads LT(v).
    let mut dependents: Vec<Vec<u32>> = vec![Vec::new(); num_vars];
    for (ci, c) in constraints.iter().enumerate() {
        for &r in c.reads() {
            dependents[r].push(ci as u32);
        }
    }

    let mut stats =
        SolveStats { constraints: constraints.len(), variables: num_vars, ..Default::default() };

    // Seed with every constraint, in order.
    let mut worklist: std::collections::VecDeque<u32> = (0..constraints.len() as u32).collect();
    let mut on_list = vec![true; constraints.len()];

    while let Some(ci) = worklist.pop_front() {
        on_list[ci as usize] = false;
        stats.pops += 1;
        let c = &constraints[ci as usize];
        let x = c.defined();
        let new = eval(c, &sets);
        if new != sets[x] {
            debug_assert!(
                decreases(&sets[x], &new),
                "LT({x}) must only shrink: {:?} -> {new:?}",
                sets[x]
            );
            sets[x] = new;
            for &d in &dependents[x] {
                if !on_list[d as usize] {
                    on_list[d as usize] = true;
                    worklist.push_back(d);
                }
            }
        }
    }

    // Freeze: demote residual ⊤ (vacuous facts in unreachable code) to ∅.
    for s in &mut sets {
        if matches!(s, LtSet::Top) {
            *s = LtSet::Set(HashSet::new());
            stats.frozen_tops += 1;
        }
    }

    Solution { sets, stats }
}

fn eval(c: &Constraint, sets: &[LtSet]) -> LtSet {
    match c {
        Constraint::Init { .. } => LtSet::Set(HashSet::new()),
        Constraint::Copy { source, .. } => sets[*source].clone(),
        Constraint::Union { elems, sources, .. } => {
            if sources.iter().any(|&s| matches!(sets[s], LtSet::Top)) {
                return LtSet::Top; // {x} ∪ ⊤ = ⊤
            }
            let mut acc: HashSet<u32> = HashSet::new();
            for &e in elems {
                acc.insert(e as u32);
            }
            for &s in sources {
                if let LtSet::Set(set) = &sets[s] {
                    acc.extend(set.iter().copied());
                }
            }
            LtSet::Set(acc)
        }
        Constraint::Inter { sources, .. } => {
            debug_assert!(!sources.is_empty(), "empty intersections are generated as Init");
            let mut acc: Option<HashSet<u32>> = None;
            for &s in sources {
                match &sets[s] {
                    LtSet::Top => {} // identity of ∩
                    LtSet::Set(set) => {
                        acc = Some(match acc {
                            None => set.clone(),
                            Some(a) => a.intersection(set).copied().collect(),
                        });
                    }
                }
            }
            match acc {
                None => LtSet::Top, // all sources still ⊤
                Some(a) => LtSet::Set(a),
            }
        }
    }
}

#[cfg(debug_assertions)]
fn decreases(old: &LtSet, new: &LtSet) -> bool {
    match (old, new) {
        (LtSet::Top, _) => true,
        (LtSet::Set(_), LtSet::Top) => false,
        (LtSet::Set(o), LtSet::Set(n)) => n.is_subset(o),
    }
}

#[cfg(not(debug_assertions))]
fn decreases(_old: &LtSet, _new: &LtSet) -> bool {
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::constraints::Constraint as C;

    /// The paper's Example 3.4 constraint system (from its Figure 6
    /// program) with the variable numbering
    /// x0=0, x1=1, x2=2, x3=3, x4=4, x5=5, x6=6, x1t=7, x1f=8, x4t=9, x4f=10.
    fn example_3_4() -> Vec<C> {
        vec![
            C::Init { x: 0 },                                       // LT(x0) = ∅
            C::Union { x: 1, elems: vec![0], sources: vec![0] },    // LT(x1) = {x0} ∪ LT(x0)
            C::Inter { x: 2, sources: vec![1, 3] },                 // LT(x2) = LT(x1) ∩ LT(x3)
            C::Union { x: 3, elems: vec![2], sources: vec![2] },    // LT(x3) = {x2} ∪ LT(x2)
            C::Init { x: 4 },                                       // LT(x4) = ∅
            C::Union { x: 5, elems: vec![4], sources: vec![2] },    // LT(x5) = {x4} ∪ LT(x2)
            C::Union { x: 7, elems: vec![9], sources: vec![9, 1] }, // LT(x1t) = {x4t} ∪ LT(x4t) ∪ LT(x1)
            C::Copy { x: 8, source: 1 },                            // LT(x1f) = LT(x1)
            C::Union { x: 10, elems: vec![], sources: vec![8, 4] }, // LT(x4f) = LT(x1f) ∪ LT(x4)
            C::Copy { x: 9, source: 4 },                            // LT(x4t) = LT(x4)
            C::Inter { x: 6, sources: vec![3, 9, 4] }, // LT(x6) = LT(x3) ∩ LT(x4t) ∩ LT(x4)
        ]
    }

    /// The paper's Example 3.5 expected fixpoint, literally.
    #[test]
    fn example_3_5_fixpoint() {
        let sol = solve(&example_3_4(), 11);
        let set = |x: usize| sol.lt_set(x);
        assert_eq!(set(0), vec![] as Vec<usize>, "LT(x0) = ∅");
        assert_eq!(set(4), vec![] as Vec<usize>, "LT(x4) = ∅");
        assert_eq!(set(9), vec![] as Vec<usize>, "LT(x4t) = ∅");
        assert_eq!(set(6), vec![] as Vec<usize>, "LT(x6) = ∅");
        assert_eq!(set(1), vec![0], "LT(x1) = {{x0}}");
        assert_eq!(set(2), vec![0], "LT(x2) = {{x0}}");
        assert_eq!(set(10), vec![0], "LT(x4f) = {{x0}}");
        assert_eq!(set(8), vec![0], "LT(x1f) = {{x0}}");
        assert_eq!(set(3), vec![0, 2], "LT(x3) = {{x0, x2}}");
        assert_eq!(set(5), vec![0, 4], "LT(x5) = {{x0, x4}}");
        assert_eq!(set(7), vec![0, 9], "LT(x1t) = {{x0, x4t}}");
    }

    #[test]
    fn transitivity_through_union_chains() {
        // x1 = x0 + 1; x2 = x1 + 1; x3 = x2 + 1 → LT(x3) = {x0, x1, x2}.
        let cs = vec![
            C::Init { x: 0 },
            C::Union { x: 1, elems: vec![0], sources: vec![0] },
            C::Union { x: 2, elems: vec![1], sources: vec![1] },
            C::Union { x: 3, elems: vec![2], sources: vec![2] },
        ];
        let sol = solve(&cs, 4);
        assert_eq!(sol.lt_set(3), vec![0, 1, 2]);
        assert!(sol.less_than(0, 3), "transitive closure: x0 < x3");
    }

    #[test]
    fn loop_phi_reaches_fixpoint() {
        // i = φ(c, i2); i2 = i + 1, with c grounded at ∅.
        let cs = vec![
            C::Init { x: 0 },                                    // c
            C::Inter { x: 1, sources: vec![0, 2] },              // i
            C::Union { x: 2, elems: vec![1], sources: vec![1] }, // i2
        ];
        let sol = solve(&cs, 3);
        assert_eq!(sol.lt_set(1), vec![] as Vec<usize>);
        assert_eq!(sol.lt_set(2), vec![1]);
        assert!(sol.stats.pops >= cs.len() as u64);
    }

    #[test]
    fn tops_are_frozen_to_empty() {
        // A union cycle with no grounding (dead code): stays ⊤, frozen.
        let cs = vec![
            C::Union { x: 0, elems: vec![1], sources: vec![1] },
            C::Union { x: 1, elems: vec![0], sources: vec![0] },
        ];
        let sol = solve(&cs, 2);
        assert_eq!(sol.stats.frozen_tops, 2);
        assert!(!sol.less_than(0, 1), "frozen ⊤ must answer conservatively");
        assert!(!sol.less_than(1, 0));
    }

    #[test]
    fn pops_stay_near_linear() {
        // A long chain: every constraint should be visited O(1) times.
        let n = 1000usize;
        let mut cs = vec![C::Init { x: 0 }];
        for i in 1..n {
            cs.push(C::Union { x: i, elems: vec![i - 1], sources: vec![i - 1] });
        }
        let sol = solve(&cs, n);
        assert!(
            sol.stats.pops_per_constraint() <= 3.0,
            "chain should be ~1 pop per constraint, got {}",
            sol.stats.pops_per_constraint()
        );
        assert_eq!(sol.lt_set(n - 1).len(), n - 1);
    }

    #[test]
    fn histogram_counts_set_sizes() {
        let cs = vec![
            C::Init { x: 0 },
            C::Union { x: 1, elems: vec![0], sources: vec![0] },
            C::Union { x: 2, elems: vec![1], sources: vec![1] },
        ];
        let sol = solve(&cs, 3);
        let h = sol.size_histogram();
        assert_eq!(h, vec![(0, 1), (1, 1), (2, 1)]);
    }

    #[test]
    fn empty_system() {
        let sol = solve(&[], 0);
        assert_eq!(sol.stats.pops, 0);
        assert_eq!(sol.stats.constraints, 0);
    }
}
