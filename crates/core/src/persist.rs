//! Persistent summary cache — serialization and cache keys for
//! incremental `sraa` runs.
//!
//! Re-solving unchanged code dominates whole-module cost on repeated
//! invocations. [`ModuleSummaries`] is deterministic and per-function, so
//! it can be persisted between runs and reused for every function whose
//! *meaning-relevant inputs* did not change. This module provides the two
//! halves of that:
//!
//! * [`SummaryKeys`] — one 64-bit cache key per function,
//!
//!   ```text
//!   key(f) = H( scc_key(C_f) ∥ body(f) )
//!   scc_key(C) = H( sorted member bodies of C
//!                 ∥ sorted (callee name, callee scc_key) pairs )
//!   ```
//!
//!   where `body(f)` is [`sraa_ir::body_fingerprint`] and `C_f` is `f`'s
//!   component in the call-graph condensation. Because callee-SCC keys
//!   fold in transitively, editing one function changes the key of
//!   exactly the functions that can *reach* it in the call graph — the
//!   set whose summaries its edit can influence. Invalidation is thus
//!   structural, not tracked: a stale entry simply stops matching.
//!
//! * [`SummaryCache`] — the on-disk artifact: a versioned, checksummed,
//!   endianness-safe binary map `function name → (key, summary)`, written
//!   with [`save`] and read with [`load`]. Any defect — truncation,
//!   corruption, a version or constraint-config mismatch — surfaces as a
//!   [`PersistError`] so callers can fall back to a cold solve; a cache
//!   file can make a run *slower to load*, never wrong.
//!
//! # Format (version 1, all integers little-endian)
//!
//! ```text
//! offset  size  field
//!      0     8  magic  b"SRAASUMC"
//!      8     2  format version (u16)
//!     10     1  GenConfig encoding (bit0 extended, bit1 param_pairs,
//!               bit2 range_offsets)
//!     11     1  reserved (0)
//!     12     4  entry count (u32)
//!     16     …  entries: name_len u32, name bytes, key u64,
//!               fact count u32, fact indices u32×n
//!   last     8  FNV-1a checksum of every preceding byte
//! ```

use crate::constraints::GenConfig;
use crate::summary::{FunctionSummary, ModuleSummaries};
use sraa_ir::{body_fingerprint, CallGraph, Condensation, Fnv64, FuncId, Module};
use std::collections::HashMap;
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};

/// On-disk format version. Bump on any change to the byte layout **or**
/// to the fingerprint/key scheme (a key computed by a different scheme
/// must never be compared against a stored one).
pub const FORMAT_VERSION: u16 = 1;

const MAGIC: &[u8; 8] = b"SRAASUMC";
/// Magic + version + config + reserved + count.
const HEADER_LEN: usize = 16;
const CHECKSUM_LEN: usize = 8;

pub(crate) fn encode_gen_config(cfg: GenConfig) -> u8 {
    (cfg.extended as u8) | (cfg.param_pairs as u8) << 1 | (cfg.range_offsets as u8) << 2
}

/// Per-function summary-cache keys for one module, propagated bottom-up
/// over the call-graph condensation (see the module docs for the scheme).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SummaryKeys {
    per_func: Vec<u64>,
}

impl SummaryKeys {
    /// Computes every function's key. The module must be in its final
    /// (e-SSA) form — the same form summaries are computed on.
    pub fn compute(module: &Module) -> Self {
        let cg = CallGraph::build(module);
        let cond = cg.condense();
        Self::compute_with(module, &cg, &cond)
    }

    /// [`SummaryKeys::compute`] with a caller-provided call graph and
    /// condensation, so a warm run that already built them (the summary
    /// engine does) pays for them once.
    pub fn compute_with(module: &Module, cg: &CallGraph, cond: &Condensation) -> Self {
        let bodies: Vec<u64> = (0..module.num_functions())
            .map(|i| body_fingerprint(module, FuncId::from_index(i)))
            .collect();

        let mut scc_key = vec![0u64; cond.len()];
        let mut per_func = vec![0u64; module.num_functions()];
        for (ci, members) in cond.bottom_up() {
            // Member bodies, ordered by name so the key does not depend on
            // function numbering.
            let mut named: Vec<(&str, u64)> = members
                .iter()
                .map(|&f| (module.function(f).name.as_str(), bodies[f.index()]))
                .collect();
            named.sort_unstable();
            // `(name, component key)` of every external callee (already
            // computed: bottom-up order visits callees first). Keyed per
            // *name*, not as a bare key set: two identical-bodied callees
            // share a component key, and collapsing them would let a
            // mutation of one slip past its callers' keys — a stale
            // (unsound) warm summary. Names are unique, so deduplicating
            // the pairs is exact.
            let mut ext: Vec<(&str, u64)> = members
                .iter()
                .flat_map(|&f| cg.callees(f))
                .filter(|&&g| cond.component_of(g) != ci)
                .map(|&g| (module.function(g).name.as_str(), scc_key[cond.component_of(g)]))
                .collect();
            ext.sort_unstable();
            ext.dedup();

            let mut h = Fnv64::new();
            h.write_u32(named.len() as u32);
            for (_, body) in &named {
                h.write_u64(*body);
            }
            h.write_u32(ext.len() as u32);
            for (name, k) in &ext {
                h.write_str(name);
                h.write_u64(*k);
            }
            scc_key[ci] = h.finish();

            for &f in members {
                let mut h = Fnv64::new();
                h.write_u64(scc_key[ci]);
                h.write_u64(bodies[f.index()]);
                per_func[f.index()] = h.finish();
            }
        }
        SummaryKeys { per_func }
    }

    /// The cache key of function `f`.
    pub fn of(&self, f: FuncId) -> u64 {
        self.per_func[f.index()]
    }

    /// Number of functions covered.
    pub fn len(&self) -> usize {
        self.per_func.len()
    }

    /// Whether the module had no functions.
    pub fn is_empty(&self) -> bool {
        self.per_func.is_empty()
    }
}

/// Why a cache file could not be used. Every variant is a *fall back to
/// cold* signal, never a panic.
#[derive(Debug)]
pub enum PersistError {
    /// The file could not be read (includes not-found; callers that treat
    /// a missing cache as an ordinary cold start should check
    /// [`PersistError::is_not_found`]).
    Io(std::io::Error),
    /// Shorter than the fixed header + checksum, or an entry runs past
    /// the end.
    Truncated,
    /// Bad magic, failed checksum, or malformed entries.
    Corrupted(&'static str),
    /// Written by a different format (or fingerprint-scheme) version.
    VersionMismatch {
        /// The version recorded in the file.
        found: u16,
    },
    /// Written under different constraint-generation options; summaries
    /// are config-dependent, so reuse would be unsound.
    ConfigMismatch,
}

impl PersistError {
    /// Whether the error is simply "no cache file yet".
    pub fn is_not_found(&self) -> bool {
        matches!(self, PersistError::Io(e) if e.kind() == std::io::ErrorKind::NotFound)
    }
}

impl std::fmt::Display for PersistError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PersistError::Io(e) => write!(f, "cannot read cache: {e}"),
            PersistError::Truncated => f.write_str("cache file is truncated"),
            PersistError::Corrupted(what) => write!(f, "cache file is corrupted ({what})"),
            PersistError::VersionMismatch { found } => {
                write!(f, "cache format version {found} (this build writes {FORMAT_VERSION})")
            }
            PersistError::ConfigMismatch => {
                f.write_str("cache was written under different constraint-generation options")
            }
        }
    }
}

impl std::error::Error for PersistError {}

/// A loaded summary cache: `function name → (key, summary)`.
#[derive(Clone, Debug, Default)]
pub struct SummaryCache {
    entries: HashMap<String, (u64, FunctionSummary)>,
}

impl SummaryCache {
    /// Builds an **in-memory** cache from freshly computed summaries and
    /// keys — the resident-daemon path, where the cache round-trips
    /// between builds without touching a file. Equivalent to
    /// `from_bytes(&to_bytes(module, summaries, keys, cfg), cfg)` minus
    /// the serialization.
    pub fn from_parts(module: &Module, summaries: &ModuleSummaries, keys: &SummaryKeys) -> Self {
        let entries = module
            .functions()
            .map(|(fid, f)| (f.name.clone(), (keys.of(fid), summaries.of(fid).clone())))
            .collect();
        SummaryCache { entries }
    }

    /// The stored `(key, summary)` for `name`, if present.
    pub fn get(&self, name: &str) -> Option<(u64, &FunctionSummary)> {
        self.entries.get(name).map(|(k, s)| (*k, s))
    }

    /// The stored summary for `name`, provided its key matches `key`.
    pub fn lookup(&self, name: &str, key: u64) -> Option<&FunctionSummary> {
        match self.entries.get(name) {
            Some((k, s)) if *k == key => Some(s),
            _ => None,
        }
    }

    /// Number of cached functions.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the cache holds no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

/// Serializes the summaries + keys of `module` into the version-1 byte
/// format. Deterministic: entries are written in [`FuncId`] order and the
/// result is byte-identical across runs and platforms.
pub fn to_bytes(
    module: &Module,
    summaries: &ModuleSummaries,
    keys: &SummaryKeys,
    cfg: GenConfig,
) -> Vec<u8> {
    let mut out = Vec::with_capacity(HEADER_LEN + 32 * module.num_functions() + CHECKSUM_LEN);
    out.extend_from_slice(MAGIC);
    out.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
    out.push(encode_gen_config(cfg));
    out.push(0);
    out.extend_from_slice(&(module.num_functions() as u32).to_le_bytes());
    for (fid, f) in module.functions() {
        out.extend_from_slice(&(f.name.len() as u32).to_le_bytes());
        out.extend_from_slice(f.name.as_bytes());
        out.extend_from_slice(&keys.of(fid).to_le_bytes());
        let facts = summaries.of(fid).args_lt_ret();
        out.extend_from_slice(&(facts.len() as u32).to_le_bytes());
        for &j in facts {
            out.extend_from_slice(&j.to_le_bytes());
        }
    }
    let mut h = Fnv64::new();
    h.write(&out);
    out.extend_from_slice(&h.finish().to_le_bytes());
    out
}

/// Parses a version-1 cache, verifying magic, version, checksum and the
/// constraint-generation options it was written under.
pub fn from_bytes(bytes: &[u8], cfg: GenConfig) -> Result<SummaryCache, PersistError> {
    if bytes.len() < HEADER_LEN + CHECKSUM_LEN {
        return Err(PersistError::Truncated);
    }
    if &bytes[0..8] != MAGIC {
        return Err(PersistError::Corrupted("bad magic"));
    }
    let version = u16::from_le_bytes([bytes[8], bytes[9]]);
    if version != FORMAT_VERSION {
        return Err(PersistError::VersionMismatch { found: version });
    }
    let (payload, tail) = bytes.split_at(bytes.len() - CHECKSUM_LEN);
    let mut h = Fnv64::new();
    h.write(payload);
    if h.finish().to_le_bytes() != tail {
        return Err(PersistError::Corrupted("checksum mismatch"));
    }
    if bytes[10] != encode_gen_config(cfg) {
        return Err(PersistError::ConfigMismatch);
    }

    let mut cur = Cursor { bytes: payload, at: HEADER_LEN };
    let count = u32::from_le_bytes(bytes[12..16].try_into().expect("4 bytes")) as usize;
    // The FNV checksum is integrity, not authentication: a crafted file
    // can carry any count it likes, so bound it by what the payload
    // could possibly hold (an entry is ≥ 16 bytes) before allocating —
    // a defective file must fall back to cold, never abort on OOM.
    if count > (payload.len() - HEADER_LEN) / 16 {
        return Err(PersistError::Corrupted("entry count exceeds payload"));
    }
    let mut entries = HashMap::with_capacity(count);
    for _ in 0..count {
        let name_len = cur.u32()? as usize;
        let name = std::str::from_utf8(cur.take(name_len)?)
            .map_err(|_| PersistError::Corrupted("non-UTF-8 function name"))?
            .to_owned();
        let key = cur.u64()?;
        let nfacts = cur.u32()? as usize;
        let mut facts = Vec::with_capacity(nfacts.min(1024));
        for _ in 0..nfacts {
            facts.push(cur.u32()?);
        }
        let summary = FunctionSummary { args_lt_ret: facts.into() };
        if entries.insert(name, (key, summary)).is_some() {
            return Err(PersistError::Corrupted("duplicate function name"));
        }
    }
    if cur.at != payload.len() {
        return Err(PersistError::Corrupted("trailing bytes after entries"));
    }
    Ok(SummaryCache { entries })
}

/// Writes the cache file for `module` at `path` atomically
/// (write-temp-then-rename via `write_atomic`). Two processes healing
/// or refreshing the same cache concurrently each publish a complete
/// file — a reader can observe either version, never an interleaving.
pub fn save(
    path: &Path,
    module: &Module,
    summaries: &ModuleSummaries,
    keys: &SummaryKeys,
    cfg: GenConfig,
) -> std::io::Result<()> {
    write_atomic(path, &to_bytes(module, summaries, keys, cfg))
}

/// Atomically replaces `path` with `bytes`: the bytes are written to a
/// uniquely named temporary file in the *same directory* (rename is only
/// atomic within a filesystem) and renamed over the target. Used by the
/// cache rewrite above and by the shared store's segment writer
/// ([`crate::store`]).
pub(crate) fn write_atomic(path: &Path, bytes: &[u8]) -> std::io::Result<()> {
    static SEQ: AtomicU64 = AtomicU64::new(0);
    let dir = match path.parent() {
        Some(d) if !d.as_os_str().is_empty() => d,
        _ => Path::new("."),
    };
    let name = path
        .file_name()
        .map(|n| n.to_string_lossy().into_owned())
        .unwrap_or_else(|| "cache".to_owned());
    let tmp = dir.join(format!(
        ".{name}.tmp.{}.{}",
        std::process::id(),
        SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    std::fs::write(&tmp, bytes)?;
    std::fs::rename(&tmp, path).inspect_err(|_| {
        std::fs::remove_file(&tmp).ok();
    })
}

/// Reads and parses the cache file at `path`.
pub fn load(path: &Path, cfg: GenConfig) -> Result<SummaryCache, PersistError> {
    let bytes = std::fs::read(path).map_err(PersistError::Io)?;
    from_bytes(&bytes, cfg)
}

/// Bounds-checked little-endian reader over the payload. Shared with the
/// segment decoder in [`crate::store`].
pub(crate) struct Cursor<'a> {
    pub(crate) bytes: &'a [u8],
    pub(crate) at: usize,
}

impl<'a> Cursor<'a> {
    pub(crate) fn take(&mut self, n: usize) -> Result<&'a [u8], PersistError> {
        let end = self.at.checked_add(n).ok_or(PersistError::Truncated)?;
        if end > self.bytes.len() {
            return Err(PersistError::Truncated);
        }
        let s = &self.bytes[self.at..end];
        self.at = end;
        Ok(s)
    }

    pub(crate) fn u32(&mut self) -> Result<u32, PersistError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("4 bytes")))
    }

    pub(crate) fn u64(&mut self) -> Result<u64, PersistError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("8 bytes")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::SolverKind;
    use crate::var_index::VarIndex;

    fn cold(src: &str) -> (Module, ModuleSummaries, SummaryKeys) {
        let mut m = sraa_minic::compile(src).unwrap();
        let (ranges, _) = sraa_essa::transform_module(&mut m);
        let index = VarIndex::new(&m);
        let sums = ModuleSummaries::compute(
            &m,
            &ranges,
            GenConfig::default(),
            &index,
            SolverKind::Scc.solver(),
            crate::lattice::LatticeBackend::Auto,
            crate::jobs::Jobs::default(),
        );
        let keys = SummaryKeys::compute(&m);
        (m, sums, keys)
    }

    const SRC: &str = r#"
        int next(int i) { return i + 1; }
        int twice(int i) { return next(next(i)); }
        int main() { return twice(1); }
    "#;

    #[test]
    fn round_trips_and_is_deterministic() {
        let (m, sums, keys) = cold(SRC);
        let bytes = to_bytes(&m, &sums, &keys, GenConfig::default());
        let again = {
            let (m2, s2, k2) = cold(SRC);
            to_bytes(&m2, &s2, &k2, GenConfig::default())
        };
        assert_eq!(bytes, again, "serialization must be byte-identical across runs");

        let cache = from_bytes(&bytes, GenConfig::default()).expect("round trip");
        assert_eq!(cache.len(), 3);
        for (fid, f) in m.functions() {
            let (key, summary) = cache.get(&f.name).expect("entry present");
            assert_eq!(key, keys.of(fid));
            assert_eq!(summary, sums.of(fid));
            assert!(cache.lookup(&f.name, key).is_some());
            assert!(cache.lookup(&f.name, key ^ 1).is_none(), "stale keys must not match");
        }
    }

    #[test]
    fn keys_change_exactly_for_reverse_reachable_functions() {
        let (m1, _, k1) = cold(SRC);
        let (m2, _, k2) = cold(&SRC.replace("i + 1", "i + 2"));
        // Editing `next` re-keys next, twice and main (all reach it) …
        for name in ["next", "twice", "main"] {
            let f = m1.function_by_name(name).unwrap();
            assert_ne!(k1.of(f), k2.of(f), "{name} must be invalidated");
        }
        // … while editing `main` re-keys only main.
        let (m3, _, k3) = cold(&SRC.replace("twice(1)", "twice(2)"));
        for name in ["next", "twice"] {
            let f = m1.function_by_name(name).unwrap();
            assert_eq!(k1.of(f), k3.of(f), "{name} must stay valid");
        }
        let main = m1.function_by_name("main").unwrap();
        assert_ne!(k1.of(main), k3.of(main));
        assert_eq!((m2.num_functions(), m3.num_functions()), (3, 3));
        assert_eq!(k1.len(), 3);
        assert!(!k1.is_empty());
    }

    #[test]
    fn defective_files_are_rejected_not_panicked_on() {
        let (m, sums, keys) = cold(SRC);
        let good = to_bytes(&m, &sums, &keys, GenConfig::default());

        // Truncations at every prefix length parse-fail cleanly.
        for cut in 0..good.len() {
            assert!(from_bytes(&good[..cut], GenConfig::default()).is_err(), "prefix {cut}");
        }
        // Any single flipped bit is caught (checksum or field checks).
        for at in [0, 9, HEADER_LEN + 3, good.len() - 2] {
            let mut bad = good.clone();
            bad[at] ^= 0x40;
            assert!(from_bytes(&bad, GenConfig::default()).is_err(), "flip at {at}");
        }
        // A hostile entry count with a re-sealed (non-cryptographic)
        // checksum must be rejected before allocation, not abort on OOM.
        let mut hostile = good.clone();
        hostile[12..16].copy_from_slice(&u32::MAX.to_le_bytes());
        let last = hostile.len() - CHECKSUM_LEN;
        let mut h = Fnv64::new();
        h.write(&hostile[..last]);
        let sum = h.finish().to_le_bytes();
        hostile[last..].copy_from_slice(&sum);
        assert!(matches!(
            from_bytes(&hostile, GenConfig::default()),
            Err(PersistError::Corrupted("entry count exceeds payload"))
        ));
        // A future format version is refused with the right variant.
        let mut vnext = good.clone();
        vnext[8..10].copy_from_slice(&(FORMAT_VERSION + 1).to_le_bytes());
        let last = vnext.len() - CHECKSUM_LEN;
        let mut h = Fnv64::new();
        h.write(&vnext[..last]);
        let sum = h.finish().to_le_bytes();
        vnext[last..].copy_from_slice(&sum);
        assert!(matches!(
            from_bytes(&vnext, GenConfig::default()),
            Err(PersistError::VersionMismatch { found }) if found == FORMAT_VERSION + 1
        ));
        // A different GenConfig is a mismatch, not a silent reuse.
        let other = GenConfig { range_offsets: true, ..Default::default() };
        assert!(matches!(from_bytes(&good, other), Err(PersistError::ConfigMismatch)));
        // Errors render human-readably and `is_not_found` is precise.
        assert!(!PersistError::Truncated.is_not_found());
        assert!(PersistError::Io(std::io::Error::from(std::io::ErrorKind::NotFound)).is_not_found());
        for e in [
            PersistError::Truncated,
            PersistError::Corrupted("x"),
            PersistError::VersionMismatch { found: 9 },
            PersistError::ConfigMismatch,
        ] {
            assert!(!format!("{e}").is_empty());
        }
    }

    #[test]
    fn from_parts_matches_a_serialization_round_trip() {
        let (m, sums, keys) = cold(SRC);
        let direct = SummaryCache::from_parts(&m, &sums, &keys);
        let round =
            from_bytes(&to_bytes(&m, &sums, &keys, GenConfig::default()), GenConfig::default())
                .expect("round trip");
        assert_eq!(direct.len(), round.len());
        for (fid, f) in m.functions() {
            assert_eq!(direct.get(&f.name), round.get(&f.name));
            assert_eq!(direct.lookup(&f.name, keys.of(fid)), Some(sums.of(fid)));
        }
    }

    #[test]
    fn save_and_load_round_trip_through_a_file() {
        let (m, sums, keys) = cold(SRC);
        let path = std::env::temp_dir().join(format!("sraa_persist_{}.bin", std::process::id()));
        save(&path, &m, &sums, &keys, GenConfig::default()).unwrap();
        let cache = load(&path, GenConfig::default()).expect("load back");
        assert_eq!(cache.len(), 3);
        let missing = load(Path::new("/nonexistent/sraa.cache"), GenConfig::default());
        assert!(matches!(&missing, Err(e) if e.is_not_found()));
        std::fs::remove_file(&path).ok();
    }

    /// The torn-write regression (satellite of the shared-store PR): a
    /// cache truncated mid-file — the observable state an interrupted
    /// in-place rewrite used to leave behind — must load-fail cleanly,
    /// and the atomic rewrite must heal it without leaving temp litter.
    #[test]
    fn torn_cache_file_reloads_cleanly_and_heals_atomically() {
        let (m, sums, keys) = cold(SRC);
        let dir = std::env::temp_dir().join(format!("sraa_torn_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("summaries.bin");
        save(&path, &m, &sums, &keys, GenConfig::default()).unwrap();
        let full = std::fs::read(&path).unwrap();

        // Tear the file at every interesting cut point and reload.
        for cut in [0, 1, HEADER_LEN - 1, HEADER_LEN + 5, full.len() / 2, full.len() - 1] {
            std::fs::write(&path, &full[..cut]).unwrap();
            assert!(load(&path, GenConfig::default()).is_err(), "torn at {cut} must not parse");
            // Healing is a fresh atomic save over the torn file.
            save(&path, &m, &sums, &keys, GenConfig::default()).unwrap();
            assert_eq!(load(&path, GenConfig::default()).unwrap().len(), 3, "healed at {cut}");
        }

        // write-temp-then-rename must not leave temporaries behind, even
        // after the rename-failure cleanup path (rename onto a directory).
        let blocked = dir.join("blocked");
        std::fs::create_dir_all(&blocked).unwrap();
        assert!(write_atomic(&blocked, b"x").is_err());
        let stray: Vec<String> = std::fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .map(|e| e.file_name().to_string_lossy().into_owned())
            .filter(|n| n.contains(".tmp."))
            .collect();
        assert!(stray.is_empty(), "stray temp files: {stray:?}");
        std::fs::remove_dir_all(&dir).ok();
    }
}
