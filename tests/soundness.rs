//! Dynamic validation of the paper's central guarantees, on randomly
//! generated programs executed under the IR interpreter:
//!
//! * **Adequacy / Corollary 3.10** — if `x′ ∈ LT(x)` and both values are
//!   simultaneously alive, then at run time `Σ(x′) < Σ(x)`.
//! * **No-alias soundness** — if any analysis (LT, BA, CF, BA+LT) answers
//!   `NoAlias` for two pointers of one function, their concrete values
//!   differ whenever both are alive in the same activation.
//!
//! "Simultaneously alive" is checked exactly as the paper defines it: in
//! strict SSA two values interfere iff one is alive at the definition
//! point of the other, so every check fires at a definition point, against
//! the currently live values of the same frame.

use sraa_alias::{
    AliasAnalysis, AliasResult, AndersenAnalysis, BasicAliasAnalysis, StrictInequalityAa,
};
use sraa_ir::{Cfg, Frame, FuncId, Interpreter, Liveness, Module, Observer, Type, Value};

/// What must hold when `watched`'s definition executes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Check {
    /// `other < watched` (Corollary 3.10).
    StrictlyLess,
    /// `other != watched` (pointer disambiguation).
    Distinct,
}

struct FuncChecks {
    /// `watched value -> [(other value, check, tag)]`
    at_def: Vec<Vec<(Value, Check, &'static str)>>,
}

struct SoundnessObserver<'a> {
    checks: &'a [FuncChecks],
    violations: Vec<String>,
}

impl Observer for SoundnessObserver<'_> {
    fn on_def(&mut self, frame: &Frame, v: Value, val: i64) {
        let fc = &self.checks[frame_func(frame).index()];
        let Some(list) = fc.at_def.get(v.index()) else { return };
        for &(other, check, tag) in list {
            let Some(oval) = frame.get(other) else { continue };
            let ok = match check {
                Check::StrictlyLess => oval < val,
                Check::Distinct => oval != val,
            };
            if !ok {
                self.violations.push(format!(
                    "{tag}: {other}={oval} vs {v}={val} in {} ({check:?})",
                    frame_func(frame)
                ));
            }
        }
    }
}

fn frame_func(frame: &Frame) -> FuncId {
    frame.func
}

/// Builds the per-function check tables for a fully analysed module.
/// Every engine in `lts` contributes its strict-inequality facts (the
/// interprocedural engine claims strictly more of them than the
/// intraprocedural one — each claim faces the same dynamic bar).
fn build_checks(
    module: &Module,
    lts: &[(&'static str, &StrictInequalityAa)],
    analyses: &[(&'static str, &dyn AliasAnalysis)],
) -> Vec<FuncChecks> {
    let mut out = Vec::new();
    for (fid, f) in module.functions() {
        let cfg = Cfg::compute(f);
        let liveness = Liveness::compute(f, &cfg);
        let positions = f.positions();
        let mut at_def: Vec<Vec<(Value, Check, &'static str)>> = vec![Vec::new(); f.num_insts()];

        let values: Vec<Value> = f
            .block_ids()
            .flat_map(|b| f.block_insts(b).map(|(v, _)| v).collect::<Vec<_>>())
            .collect();

        for (i, &a) in values.iter().enumerate() {
            if !f.inst(a).has_result() {
                continue;
            }
            for &b in values.iter().skip(i + 1) {
                if !f.inst(b).has_result() {
                    continue;
                }
                // Which of the two is defined later (checked at its def)?
                // `values` is in block layout order, not execution order;
                // use liveness to decide in both directions.
                for (w, o) in [(a, b), (b, a)] {
                    // check fires at def(w), `o` must be live there
                    if !liveness.live_at_def(f, &positions, o, w) {
                        continue;
                    }
                    for (tag, lt) in lts {
                        if lt.engine().less_than(fid, o, w) {
                            at_def[w.index()].push((o, Check::StrictlyLess, tag));
                        }
                    }
                    let both_ptr = f.value_type(o).is_some_and(Type::is_ptr)
                        && f.value_type(w).is_some_and(Type::is_ptr);
                    if both_ptr {
                        for (tag, aa) in analyses {
                            if aa.alias(module, fid, o, w) == AliasResult::NoAlias {
                                at_def[w.index()].push((o, Check::Distinct, tag));
                            }
                        }
                    }
                }
            }
        }
        let _ = fid;
        out.push(FuncChecks { at_def });
    }
    out
}

fn check_workload(source: &str, name: &str) {
    let mut module = sraa_minic::compile(source).unwrap_or_else(|e| panic!("{name}: {e}"));
    let lt = StrictInequalityAa::new(&mut module);
    sraa_ir::verify(&module).unwrap_or_else(|e| panic!("{name}: {e}"));
    // The interprocedural engine analyses its own copy of the module (the
    // e-SSA pipeline is deterministic, so the copies are identical) and
    // must survive the same execution as the intraprocedural one.
    let mut module2 = sraa_minic::compile(source).unwrap_or_else(|e| panic!("{name}: {e}"));
    let lt_ip = StrictInequalityAa::interprocedural(&mut module2);
    assert_eq!(module, module2, "{name}: contextuality must not perturb the pipeline");
    let ba = BasicAliasAnalysis::new(&module);
    let cf = AndersenAnalysis::new(&module);
    // The dense Pentagon adapter runs on the same e-SSA module the LT
    // constructor produced; its no-alias verdicts face the same dynamic
    // bar as everyone else's.
    let pt = sraa_alias::PentagonAa::on_prepared(&module);
    let analyses: Vec<(&'static str, &dyn AliasAnalysis)> =
        vec![("LT-aa", &lt), ("LT-ip-aa", &lt_ip), ("BA", &ba), ("CF", &cf), ("PT", &pt)];
    let checks = build_checks(&module, &[("LT", &lt), ("LT-ip", &lt_ip)], &analyses);
    let mut obs = SoundnessObserver { checks: &checks, violations: Vec::new() };
    let mut interp = Interpreter::new(&module).with_step_limit(5_000_000);
    match interp.run_observed("main", &[], &mut obs) {
        Ok(_) => {}
        Err(e) => panic!("{name}: execution failed: {e:?}"),
    }
    assert!(
        obs.violations.is_empty(),
        "{name}: {} dynamic soundness violation(s):\n{}\nsource:\n{source}",
        obs.violations.len(),
        obs.violations.join("\n")
    );
}

#[test]
fn csmith_programs_respect_all_no_alias_and_lt_claims() {
    for depth in 2..=7u8 {
        for seed in 0..8u64 {
            let w = sraa_synth::csmith_generate(sraa_synth::CsmithConfig {
                seed: seed * 31 + depth as u64,
                max_ptr_depth: depth,
                num_stmts: 60,
                // A third of the corpus contains helper calls, so the
                // interprocedural claims face call-crossing executions.
                helpers: (seed % 3) as usize,
            });
            check_workload(&w.source, &w.name);
        }
    }
}

#[test]
fn spec_profiles_respect_all_no_alias_and_lt_claims() {
    for w in sraa_synth::spec_all().into_iter().take(6) {
        check_workload(&w.source, &w.name);
    }
}

#[test]
fn call_heavy_suite_respects_all_no_alias_and_lt_claims() {
    // The population the summary layer is measured on: helper bounds
    // checks, chained helpers, recursive partitions. Every extra
    // no-alias / less-than fact the interprocedural engine claims is
    // checked against the concrete execution.
    for w in sraa_synth::call_suite(9) {
        check_workload(&w.source, &w.name);
    }
}

#[test]
fn paper_figure1_programs_respect_claims() {
    check_workload(
        r#"
        void ins_sort(int* v, int N) {
            int i; int j;
            for (i = 0; i < N - 1; i++)
                for (j = i + 1; j < N; j++)
                    if (v[i] > v[j]) { int t = v[i]; v[i] = v[j]; v[j] = t; }
        }
        void partition(int* v, int N) {
            int i; int j; int p; int tmp;
            p = v[N / 2];
            i = 0; j = N - 1;
            while (1) {
                while (v[i] < p) i++;
                while (p < v[j]) j--;
                if (i >= j) break;
                tmp = v[i]; v[i] = v[j]; v[j] = tmp;
                i++; j--;
            }
        }
        int main() {
            int a[16];
            for (int k = 0; k < 16; k++) a[k] = (16 - k) * 3 % 7;
            ins_sort(a, 16);
            for (int k = 0; k < 16; k++) a[k] = (k * 5 + 2) % 11;
            partition(a, 16);
            return a[0];
        }
        "#,
        "figure1",
    );
}

#[test]
fn interprocedural_param_pairs_hold_dynamically() {
    check_workload(
        r#"
        int g(int* v, int lo, int hi) { return v[lo] * 100 + v[hi]; }
        int main() {
            int a[32];
            for (int i = 0; i < 32; i++) a[i] = i;
            int acc = 0;
            for (int i = 0; i + 3 < 32; i++) acc += g(a, i, i + 3);
            return acc % 251;
        }
        "#,
        "param_pairs",
    );
}

/// Range-analysis soundness: every interval contains every value its
/// variable takes at run time, on random programs.
#[test]
fn range_analysis_contains_all_runtime_values() {
    use sraa_range::RangeAnalysis;

    struct RangeObserver<'a> {
        module: &'a Module,
        ranges: &'a RangeAnalysis,
        violations: Vec<String>,
    }
    impl Observer for RangeObserver<'_> {
        fn on_def(&mut self, frame: &Frame, v: Value, val: i64) {
            let f = self.module.function(frame.func);
            if f.value_type(v) != Some(Type::Int) {
                return; // pointers are untracked by the interval domain
            }
            let iv = self.ranges.range(frame.func, v);
            if !iv.contains(val) {
                self.violations.push(format!("{}: {v}={val} ∉ {iv}", frame.func));
            }
        }
    }

    for seed in 0..10u64 {
        let w = sraa_synth::csmith_generate(sraa_synth::CsmithConfig {
            seed: seed + 500,
            max_ptr_depth: 3,
            num_stmts: 50,
            helpers: 0,
        });
        let mut m = sraa_minic::compile(&w.source).unwrap();
        let (ranges, _) = sraa_essa::transform_module(&mut m);
        let mut obs = RangeObserver { module: &m, ranges: &ranges, violations: Vec::new() };
        let mut interp = Interpreter::new(&m).with_step_limit(5_000_000);
        interp.run_observed("main", &[], &mut obs).unwrap();
        assert!(
            obs.violations.is_empty(),
            "{}: {} range violations\n{}",
            w.name,
            obs.violations.len(),
            w.source
        );
    }
}

/// The §3.6 range-offset criterion (enabled for the Figure 12 experiment)
/// must also be dynamically sound: pointers it separates never carry equal
/// values while simultaneously alive.
#[test]
fn range_offset_criterion_is_dynamically_sound() {
    use sraa_core::GenConfig;

    for depth in [2u8, 4, 6] {
        for seed in 0..6u64 {
            let w = sraa_synth::csmith_generate(sraa_synth::CsmithConfig {
                seed: seed * 13 + depth as u64,
                max_ptr_depth: depth,
                num_stmts: 70,
                helpers: 0,
            });
            let mut module = sraa_minic::compile(&w.source).unwrap();
            let lt = StrictInequalityAa::with_config(
                &mut module,
                GenConfig { range_offsets: true, ..Default::default() },
            );
            let analyses: Vec<(&'static str, &dyn AliasAnalysis)> = vec![("LT+ranges", &lt)];
            let checks = build_checks(&module, &[("LT+ranges", &lt)], &analyses);
            let mut obs = SoundnessObserver { checks: &checks, violations: Vec::new() };
            let mut interp = Interpreter::new(&module).with_step_limit(5_000_000);
            interp.run_observed("main", &[], &mut obs).unwrap();
            assert!(obs.violations.is_empty(), "{}: {:?}\n{}", w.name, obs.violations, w.source);
        }
    }
}
