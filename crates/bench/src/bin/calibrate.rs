//! Measures the per-function alias-query profile of each workload
//! archetype (pairs, BA-yes, LT-yes, both-yes). These empirical weights
//! feed the profile table in `sraa-synth::spec` (see DESIGN.md); rerun
//! after changing any archetype emitter.

use sraa_alias::{AaEval, AliasAnalysis, AliasResult};
use sraa_bench::Prepared;
use sraa_synth::{Profile, Workload};

fn main() {
    let archetypes: Vec<(&str, Profile)> = vec![
        ("stencil", Profile { name: "c", stencil: 1, scale: 1, ..Default::default() }),
        ("chain", Profile { name: "c", chain: 1, scale: 1, ..Default::default() }),
        ("sorted", Profile { name: "c", sorted: 1, scale: 1, ..Default::default() }),
        ("walk", Profile { name: "c", walk: 1, scale: 1, ..Default::default() }),
        ("sites", Profile { name: "c", sites: 1, scale: 1, ..Default::default() }),
        ("cstencil", Profile { name: "c", cstencil: 1, scale: 1, ..Default::default() }),
        ("chase", Profile { name: "c", chase: 1, scale: 1, ..Default::default() }),
        ("xchase", Profile { name: "c", xchase: 1, scale: 1, ..Default::default() }),
        ("calls", Profile { name: "c", calls: 1, scale: 1, ..Default::default() }),
    ];
    println!(
        "{:<10} {:>8} {:>8} {:>8} {:>8}   (per archetype function)",
        "archetype", "pairs", "BA-yes", "LT-yes", "both"
    );
    for (name, p) in archetypes {
        let w: Workload = sraa_synth::spec::generate(&p);
        let prep = Prepared::new(&w);
        // Restrict to the archetype function itself.
        let fid = prep
            .module
            .functions()
            .find(|(_, f)| f.name.starts_with(name))
            .map(|(id, _)| id)
            .expect("archetype function exists");
        let ptrs = AaEval::pointer_values(&prep.module, fid);
        let mut pairs = 0u64;
        let mut ba_yes = 0u64;
        let mut lt_yes = 0u64;
        let mut both = 0u64;
        for i in 0..ptrs.len() {
            for j in i + 1..ptrs.len() {
                pairs += 1;
                let b = prep.ba.alias(&prep.module, fid, ptrs[i], ptrs[j]) == AliasResult::NoAlias;
                let l = prep.lt.alias(&prep.module, fid, ptrs[i], ptrs[j]) == AliasResult::NoAlias;
                ba_yes += b as u64;
                lt_yes += l as u64;
                both += (b || l) as u64;
            }
        }
        println!("{name:<10} {pairs:>8} {ba_yes:>8} {lt_yes:>8} {both:>8}");
    }
}
