//! `sraa-essa` — the e-SSA / live-range-splitting program representation.
//!
//! The paper (its Section 3.2 and Figure 5) converts programs into a
//! representation with the *Static Single Information* property (Tavares
//! et al.): the live range of a variable is split at every program point
//! where new less-than information appears, so a sparse analysis can bind
//! one abstract state to each variable name. Three situations create
//! information:
//!
//! 1. a definition (SSA already gives a fresh name);
//! 2. a subtraction `x1 = x2 − n` with `n > 0` — a parallel copy
//!    `⟨x3 = x2⟩` splits `x2`'s live range (rule 3 of Figure 7 then knows
//!    `x1 < x3`);
//! 3. a conditional `(x1 < x2)?` — σ-copies `⟨x1t, x2t⟩` / `⟨x1f, x2f⟩`
//!    on the out-edges split both operands.
//!
//! This crate implements both splits as IR-to-IR transforms plus the
//! dominator-tree renaming that rewrites every dominated use (the paper's
//! "rename x to xt at any block l if lt dom l"). It corresponds to the
//! `vSSA` pass of the paper's LLVM artifact.
//!
//! # Example
//!
//! ```
//! let mut m = sraa_minic::compile(
//!     "int f(int a, int b) { if (a < b) return b - a; return 0; }").unwrap();
//! let stats = sraa_essa::split_at_branches(&mut m);
//! assert!(stats.sigma_copies >= 4); // a_t, b_t, a_f, b_f
//! sraa_ir::verify(&m).unwrap();
//! ```

use sraa_ir::{
    BinOp, BlockId, Cfg, CopyOrigin, DomTree, FuncId, Function, InstKind, Module, Value,
};
use sraa_range::RangeAnalysis;
use std::collections::HashMap;

/// Counters describing what a transform did.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct EssaStats {
    /// σ-copies inserted on branch edges.
    pub sigma_copies: usize,
    /// Parallel copies inserted at subtractions / negative geps.
    pub sub_splits: usize,
    /// Critical edges split to host σ-copies.
    pub edges_split: usize,
}

impl std::ops::AddAssign for EssaStats {
    fn add_assign(&mut self, o: Self) {
        self.sigma_copies += o.sigma_copies;
        self.sub_splits += o.sub_splits;
        self.edges_split += o.edges_split;
    }
}

/// Runs the full e-SSA pipeline on a module:
/// σ-splitting at branches, then range analysis (σ-refined), then
/// live-range splitting at subtractions guided by the ranges.
///
/// Returns the range analysis, already extended to cover the copies the
/// second phase inserted, plus the combined statistics.
pub fn transform_module(module: &mut Module) -> (RangeAnalysis, EssaStats) {
    let mut stats = EssaStats::default();
    stats += split_at_branches(module);
    let mut ranges = sraa_range::analyze(module);
    let fids: Vec<FuncId> = module.functions().map(|(id, _)| id).collect();
    for fid in fids {
        stats += split_at_subtractions_in(module.function_mut(fid), fid, &mut ranges);
    }
    (ranges, stats)
}

/// Inserts σ-copies for both operands of every comparison-guarded branch,
/// in every function of `module` (Figure 5 (b) of the paper).
pub fn split_at_branches(module: &mut Module) -> EssaStats {
    let mut stats = EssaStats::default();
    let fids: Vec<FuncId> = module.functions().map(|(id, _)| id).collect();
    for fid in fids {
        stats += split_at_branches_in(module.function_mut(fid));
    }
    stats
}

/// σ-splitting for a single function.
pub fn split_at_branches_in(f: &mut Function) -> EssaStats {
    let mut stats = EssaStats::default();

    // Collect the work first: (branch block, cmp, then target, else target).
    let mut branches: Vec<(BlockId, Value, BlockId, BlockId)> = Vec::new();
    for b in f.block_ids() {
        let Some(term) = f.terminator(b) else { continue };
        let InstKind::Br { cond, then_bb, else_bb } = f.inst(term).kind else { continue };
        if then_bb == else_bb {
            continue;
        }
        if matches!(f.inst(cond).kind, InstKind::Cmp { .. }) {
            branches.push((b, cond, then_bb, else_bb));
        }
    }

    let cfg = Cfg::compute(f);
    let mut new_defs: Vec<(Value, Value)> = Vec::new(); // (copy, original)
    for (b, cmp, then_bb, else_bb) in branches {
        let InstKind::Cmp { lhs, rhs, .. } = f.inst(cmp).kind else { unreachable!() };
        for (target, is_true) in [(then_bb, true), (else_bb, false)] {
            // Where do the σ-copies live? Directly in the target if this
            // edge is its only in-edge; otherwise on a freshly split edge.
            let host = if cfg.preds(target).len() > 1 {
                stats.edges_split += 1;
                f.split_edge(b, target)
            } else {
                target
            };
            let mut at = f.block(host).first_non_phi(f);
            for op in [lhs, rhs] {
                if matches!(f.inst(op).kind, InstKind::Const(_)) {
                    continue; // constants carry no live range to split
                }
                let origin = if is_true {
                    CopyOrigin::SigmaTrue { cmp }
                } else {
                    CopyOrigin::SigmaFalse { cmp }
                };
                let copy = f.insert_copy(host, at, op, origin);
                at += 1;
                new_defs.push((copy, op));
                stats.sigma_copies += 1;
            }
        }
    }

    rename_dominated_uses(f, &new_defs);
    stats
}

/// Splits the live range of the minuend at every subtraction whose
/// subtrahend is provably positive — `x1 = x2 − n, n > 0` — and at every
/// `gep` with a provably negative offset (the pointer analogue). Also
/// recognises additions of provably *negative* values, as the paper's
/// range-analysis-driven classification prescribes.
///
/// New copies inherit their source's interval via
/// [`RangeAnalysis::extend_copy`], keeping `ranges` usable afterwards.
pub fn split_at_subtractions_in(
    f: &mut Function,
    fid: FuncId,
    ranges: &mut RangeAnalysis,
) -> EssaStats {
    let mut stats = EssaStats::default();

    // (instruction, operand whose live range splits)
    let mut work: Vec<(Value, Value)> = Vec::new();
    for b in f.block_ids() {
        for (v, data) in f.block_insts(b) {
            match &data.kind {
                InstKind::Binary { op: BinOp::Sub, lhs, rhs }
                    if is_strictly_positive(f, fid, ranges, *rhs) =>
                {
                    work.push((v, *lhs));
                }
                InstKind::Binary { op: BinOp::Add, lhs, rhs } => {
                    // x1 = x2 + n with n < 0 is a subtraction in disguise.
                    if is_strictly_negative(f, fid, ranges, *rhs) {
                        work.push((v, *lhs));
                    } else if is_strictly_negative(f, fid, ranges, *lhs) {
                        work.push((v, *rhs));
                    }
                }
                InstKind::Gep { base, offset } if is_strictly_negative(f, fid, ranges, *offset) => {
                    work.push((v, *base));
                }
                _ => {}
            }
        }
    }

    let mut new_defs: Vec<(Value, Value)> = Vec::new();
    let positions = f.positions();
    for (sub, split_op) in work {
        // Do not split constants: they have no live range.
        if matches!(f.inst(split_op).kind, InstKind::Const(_)) {
            continue;
        }
        let block = f.inst(sub).block.expect("worklist instructions are attached");
        let at = positions_of(f, &positions, block, sub) + 1;
        let copy = f.insert_copy(block, at, split_op, CopyOrigin::SubSplit { sub });
        ranges.extend_copy(fid, copy, split_op);
        new_defs.push((copy, split_op));
        stats.sub_splits += 1;
    }

    rename_dominated_uses(f, &new_defs);
    stats
}

fn positions_of(f: &Function, _stale: &[u32], block: BlockId, v: Value) -> usize {
    // Positions shift as copies are inserted; scan the (short) block.
    f.block(block).insts.iter().position(|&x| x == v).expect("instruction is in its block")
}

fn is_strictly_positive(f: &Function, fid: FuncId, ranges: &RangeAnalysis, v: Value) -> bool {
    match f.inst(v).kind {
        InstKind::Const(c) => c > 0,
        _ => ranges.range(fid, v).is_strictly_positive(),
    }
}

fn is_strictly_negative(f: &Function, fid: FuncId, ranges: &RangeAnalysis, v: Value) -> bool {
    match f.inst(v).kind {
        InstKind::Const(c) => c < 0,
        _ => ranges.range(fid, v).is_strictly_negative(),
    }
}

/// Checks the Static Single Information property this crate establishes
/// (paper Definition 3.2, specialised to the less-than analysis): every
/// comparison-guarded conditional branch carries σ-copies of each
/// non-constant comparison operand on *both* out-edges (directly in the
/// target when the edge is the target's only in-edge, or on a split edge
/// block otherwise).
///
/// # Errors
///
/// Returns a description of the first missing σ-copy.
pub fn verify_ssi(f: &Function) -> Result<(), String> {
    let cfg = Cfg::compute(f);
    for b in f.block_ids() {
        let Some(term) = f.terminator(b) else { continue };
        let InstKind::Br { cond, then_bb, else_bb } = f.inst(term).kind else { continue };
        if then_bb == else_bb {
            continue;
        }
        let InstKind::Cmp { lhs, rhs, .. } = f.inst(cond).kind else { continue };
        for (target, truthy) in [(then_bb, true), (else_bb, false)] {
            // Split edges host their copies in an intermediate block that
            // only the transform knows; we check the single-predecessor
            // case (the common one) and skip split edges.
            if cfg.preds(target).len() > 1 {
                continue;
            }
            for op in [lhs, rhs] {
                if matches!(f.inst(op).kind, InstKind::Const(_)) {
                    continue;
                }
                let found = f.block_insts(target).any(|(_, d)| match (&d.kind, truthy) {
                    (InstKind::Copy { origin: CopyOrigin::SigmaTrue { cmp }, .. }, true) => {
                        *cmp == cond
                    }
                    (InstKind::Copy { origin: CopyOrigin::SigmaFalse { cmp }, .. }, false) => {
                        *cmp == cond
                    }
                    _ => false,
                });
                if !found {
                    return Err(format!(
                        "missing σ-copy for {op} on the {} edge of {b} (cmp {cond})",
                        if truthy { "true" } else { "false" }
                    ));
                }
            }
        }
    }
    Ok(())
}

/// Rewrites every use of each original value that is dominated by its new
/// copy — the paper's "rename x to x′ at any block l if l′ dom l". This is
/// the classic stack-based dominator-tree walk of SSA renaming, applied to
/// the freshly inserted copies.
///
/// φ operands count as uses on the incoming edge: they are rewritten when
/// the walk processes the predecessor block.
pub fn rename_dominated_uses(f: &mut Function, new_defs: &[(Value, Value)]) {
    if new_defs.is_empty() {
        return;
    }
    let is_new_def: HashMap<Value, Value> = new_defs.iter().copied().collect();
    let cfg = Cfg::compute(f);
    let dt = DomTree::compute(f, &cfg);

    let mut stacks: HashMap<Value, Vec<Value>> = HashMap::new();
    // Iterative DFS over the dominator tree with explicit pop records.
    enum Step {
        Enter(BlockId),
        Exit(BlockId),
    }
    let mut agenda = vec![Step::Enter(f.entry())];
    let mut pushed_in: Vec<Vec<Value>> = vec![Vec::new(); f.num_blocks()];

    while let Some(step) = agenda.pop() {
        match step {
            Step::Enter(b) => {
                let insts: Vec<Value> = f.block(b).insts.clone();
                for v in insts {
                    // 1. Rewrite ordinary operands with the active copies.
                    //    (φ operands are handled from the predecessor.)
                    let stacks_ref = &stacks;
                    f.inst_mut(v).kind.for_each_operand_mut(|op| {
                        if let Some(stack) = stacks_ref.get(op) {
                            if let Some(&top) = stack.last() {
                                *op = top;
                            }
                        }
                    });
                    // 2. If this is one of the new copies, activate it.
                    if let Some(&orig) = is_new_def.get(&v) {
                        stacks.entry(orig).or_default().push(v);
                        pushed_in[b.index()].push(orig);
                    }
                }
                // 3. Rewrite φ incomings of successors along this edge.
                for s in f.successors(b) {
                    let phis: Vec<Value> = f
                        .block(s)
                        .insts
                        .iter()
                        .copied()
                        .filter(|&p| f.inst(p).kind.is_phi())
                        .collect();
                    for p in phis {
                        let stacks_ref = &stacks;
                        f.inst_mut(p).kind.for_each_phi_operand_mut(|pred, val| {
                            if *pred == b {
                                if let Some(stack) = stacks_ref.get(val) {
                                    if let Some(&top) = stack.last() {
                                        *val = top;
                                    }
                                }
                            }
                        });
                    }
                }
                agenda.push(Step::Exit(b));
                for &c in dt.children(b) {
                    agenda.push(Step::Enter(c));
                }
            }
            Step::Exit(b) => {
                for orig in pushed_in[b.index()].drain(..) {
                    stacks.get_mut(&orig).expect("pushed earlier").pop();
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sraa_ir::verify;

    fn compile(src: &str) -> Module {
        sraa_minic::compile(src).expect("test source must compile")
    }

    fn count_copies(f: &Function, pred: impl Fn(&CopyOrigin) -> bool) -> usize {
        f.block_ids()
            .flat_map(|b| {
                f.block_insts(b)
                    .filter(|(_, d)| match &d.kind {
                        InstKind::Copy { origin, .. } => pred(origin),
                        _ => false,
                    })
                    .map(|_| ())
                    .collect::<Vec<_>>()
            })
            .count()
    }

    #[test]
    fn branch_split_inserts_four_sigmas() {
        let mut m = compile("int f(int a, int b) { if (a < b) return a; return b; }");
        let stats = split_at_branches(&mut m);
        assert_eq!(stats.sigma_copies, 4, "a_t, b_t, a_f, b_f");
        verify(&m).unwrap();
        let f = m.function(m.function_by_name("f").unwrap());
        assert_eq!(count_copies(f, |o| matches!(o, CopyOrigin::SigmaTrue { .. })), 2);
        assert_eq!(count_copies(f, |o| matches!(o, CopyOrigin::SigmaFalse { .. })), 2);
    }

    #[test]
    fn sigma_copies_rename_dominated_uses() {
        // The return in the true branch must use the σ-copy, not `a`.
        let mut m = compile("int f(int a, int b) { if (a < b) return a + b; return 0; }");
        split_at_branches(&mut m);
        verify(&m).unwrap();
        let fid = m.function_by_name("f").unwrap();
        let f = m.function(fid);
        // Find the add: both operands must now be σ-copies.
        let mut found = false;
        for b in f.block_ids() {
            for (_, data) in f.block_insts(b) {
                if let InstKind::Binary { op: BinOp::Add, lhs, rhs } = data.kind {
                    found = true;
                    for op in [lhs, rhs] {
                        assert!(
                            matches!(
                                f.inst(op).kind,
                                InstKind::Copy { origin: CopyOrigin::SigmaTrue { .. }, .. }
                            ),
                            "operand {op} of the add must be a true-edge σ-copy"
                        );
                    }
                }
            }
        }
        assert!(found, "the add must still exist");
    }

    #[test]
    fn critical_edges_are_split() {
        // bb0 branches to bb2 which also receives bb1: the bb0→bb2 edge is
        // critical, so the σ-copies must live on a freshly split edge
        // block. (The MiniC lowering never creates such CFGs, but parsed
        // or generated IR can.)
        let mut m = sraa_ir::parse_module(
            r#"
func @f(%x: int, %y: int) -> int {
bb0:
  %c: int = cmp lt %x, %y
  br %c, bb1, bb2
bb1:
  jump bb2
bb2:
  ret %x
}
"#,
        )
        .unwrap();
        verify(&m).unwrap();
        let stats = split_at_branches(&mut m);
        assert_eq!(stats.edges_split, 1, "only the bb0→bb2 edge is critical: {stats:?}");
        verify(&m).unwrap();
        // The copies on the split edge dominate nothing, so bb2 still
        // returns the original %x.
        let f = m.function(m.function_by_name("f").unwrap());
        let ret_bb = f
            .block_ids()
            .find(|&b| matches!(f.terminator(b).map(|t| &f.inst(t).kind), Some(InstKind::Ret(_))))
            .unwrap();
        let term = f.terminator(ret_bb).unwrap();
        let InstKind::Ret(Some(rv)) = f.inst(term).kind else { panic!() };
        assert!(matches!(f.inst(rv).kind, InstKind::Param(0)));
    }

    #[test]
    fn constants_get_no_sigma() {
        let mut m = compile("int f(int a) { if (a < 10) return 1; return 2; }");
        let stats = split_at_branches(&mut m);
        assert_eq!(stats.sigma_copies, 2, "only `a` is split, on each edge");
        verify(&m).unwrap();
    }

    #[test]
    fn subtraction_split_follows_figure5a() {
        // x1 = x2 - 1: uses of x2 after the subtraction become the copy.
        let mut m = compile("int f(int x2) { int x1 = x2 - 1; return x2 + x1; }");
        let (_, stats) = transform_module(&mut m);
        assert_eq!(stats.sub_splits, 1);
        verify(&m).unwrap();
        let fid = m.function_by_name("f").unwrap();
        let f = m.function(fid);
        for b in f.block_ids() {
            for (_, data) in f.block_insts(b) {
                if let InstKind::Binary { op: BinOp::Add, lhs, .. } = data.kind {
                    assert!(
                        matches!(
                            f.inst(lhs).kind,
                            InstKind::Copy { origin: CopyOrigin::SubSplit { .. }, .. }
                        ),
                        "x2's use after the subtraction must be the split copy"
                    );
                }
            }
        }
    }

    #[test]
    fn negative_gep_splits_pointer() {
        let mut m = compile("int f(int* p) { int* q = p - 1; return *q + *p; }");
        let (_, stats) = transform_module(&mut m);
        // The gep offset is the negated constant 1 → provably negative…
        // (frontend lowers `p - 1` to `gep p, (0 - 1)`).
        assert!(stats.sub_splits >= 1, "pointer decrement must split p: {stats:?}");
        verify(&m).unwrap();
    }

    #[test]
    fn full_pipeline_on_paper_figure1a() {
        let mut m = compile(
            r#"
            void ins_sort(int* v, int N) {
                int i; int j;
                for (i = 0; i < N - 1; i++)
                    for (j = i + 1; j < N; j++)
                        if (v[i] > v[j]) {
                            int tmp = v[i];
                            v[i] = v[j];
                            v[j] = tmp;
                        }
            }
            "#,
        );
        let (_, stats) = transform_module(&mut m);
        verify(&m).unwrap();
        assert!(stats.sigma_copies >= 8, "three comparisons worth of σs: {stats:?}");
    }

    #[test]
    fn transform_preserves_program_semantics() {
        let src = r#"
            int main() {
                int a[10];
                int i;
                for (i = 0; i < 10; i++) a[i] = i * i;
                int s = 0;
                for (i = 10 - 1; i >= 0; i--) s += a[i];
                return s;
            }
        "#;
        let mut m = compile(src);
        let before = sraa_ir::Interpreter::new(&m).run("main", &[]).unwrap().result;
        let (_, _) = transform_module(&mut m);
        verify(&m).unwrap();
        let after = sraa_ir::Interpreter::new(&m).run("main", &[]).unwrap().result;
        assert_eq!(before, after, "e-SSA must not change observable behaviour");
        assert_eq!(before, Some((0..10).map(|i| i * i).sum()));
    }

    #[test]
    fn ranges_extended_for_new_copies() {
        let mut m = compile("int f(int x) { if (x > 5) { int y = x - 1; return y; } return 0; }");
        let (ranges, _) = transform_module(&mut m);
        let fid = m.function_by_name("f").unwrap();
        let f = m.function(fid);
        for b in f.block_ids() {
            for (v, data) in f.block_insts(b) {
                if data.has_result() {
                    // No panic and a usable interval for every value,
                    // including the freshly inserted copies.
                    let _ = ranges.range(fid, v);
                }
            }
        }
        verify(&m).unwrap();
    }

    #[test]
    fn idempotent_verification_after_double_branch_split() {
        // Applying σ-splitting twice must still verify (copies of copies).
        let mut m = compile("int f(int a, int b) { if (a < b) return a; return b; }");
        split_at_branches(&mut m);
        split_at_branches(&mut m);
        verify(&m).unwrap();
    }
}

#[cfg(test)]
mod ssi_tests {
    use super::*;

    #[test]
    fn verify_ssi_accepts_transformed_modules() {
        let mut m = sraa_minic::compile(
            r#"
            int f(int* v, int n) {
                int s = 0;
                for (int i = 0; i < n; i++)
                    for (int j = i + 1; j < n; j++)
                        if (v[i] > v[j]) s++;
                return s;
            }
            "#,
        )
        .unwrap();
        let fid = m.function_by_name("f").unwrap();
        assert!(
            verify_ssi(m.function(fid)).is_err(),
            "before the transform the SSI property does not hold"
        );
        split_at_branches(&mut m);
        verify_ssi(m.function(fid)).expect("after the transform it must");
    }

    #[test]
    fn verify_ssi_holds_on_random_programs() {
        for seed in 0..10u64 {
            let w = sraa_synth::csmith_generate(sraa_synth::CsmithConfig {
                seed: seed + 42,
                max_ptr_depth: 3,
                num_stmts: 50,
                helpers: 0,
            });
            let mut m = sraa_minic::compile(&w.source).unwrap();
            transform_module(&mut m);
            for (fid, _) in m.functions() {
                verify_ssi(m.function(fid)).unwrap_or_else(|e| panic!("{}: {e}", w.name));
            }
            sraa_ir::verify(&m).unwrap();
        }
    }
}
