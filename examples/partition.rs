//! The paper's Figure 1 (b): Hoare partition.
//!
//! The `i < j` fact here comes from a *conditional* (`if (i >= j) break`)
//! rather than from loop structure — the σ-copies on the false edge of
//! that comparison are what give `LT(j_f) ∋ i_f`. Interval analyses (and
//! Polly-style dependence tests, as the paper notes) cannot prove this.
//!
//! Run with `cargo run --example partition`.

use sraa::alias::{AliasAnalysis, AliasResult, BasicAliasAnalysis, StrictInequalityAa};
use sraa::ir::{InstKind, Interpreter};

const SOURCE: &str = r#"
void partition(int* v, int N) {
    int i; int j; int p; int tmp;
    p = v[N / 2];
    i = 0; j = N - 1;
    while (1) {
        while (v[i] < p) i++;
        while (p < v[j]) j--;
        if (i >= j)
            break;
        tmp = v[i];
        v[i] = v[j];
        v[j] = tmp;
        i++; j--;
    }
}
int main() {
    int v[12];
    for (int k = 0; k < 12; k++) v[k] = (11 - k) * 13 % 17;
    partition(v, 12);
    return v[0];
}
"#;

fn main() {
    let mut module = sraa::minic::compile(SOURCE).expect("valid MiniC");
    let lt = StrictInequalityAa::new(&mut module);
    let ba = BasicAliasAnalysis::new(&module);

    let fid = module.function_by_name("partition").unwrap();
    let f = module.function(fid);
    let mut accesses = Vec::new();
    for b in f.block_ids() {
        for (_, data) in f.block_insts(b) {
            match data.kind {
                InstKind::Load { ptr } => accesses.push(ptr),
                InstKind::Store { ptr, .. } => accesses.push(ptr),
                _ => {}
            }
        }
    }

    let mut lt_only = 0;
    let mut total = 0;
    for (i, &p1) in accesses.iter().enumerate() {
        for &p2 in accesses.iter().skip(i + 1) {
            total += 1;
            let ba_v = ba.alias(&module, fid, p1, p2);
            let lt_v = lt.alias(&module, fid, p1, p2);
            if lt_v == AliasResult::NoAlias && ba_v != AliasResult::NoAlias {
                lt_only += 1;
                println!("LT-only disambiguation: {p1} vs {p2}");
            }
        }
    }
    println!("\n{lt_only} of {total} access pairs are disambiguated by LT and missed by BA.");
    assert!(lt_only >= 2, "the post-break v[i]/v[j] swaps must be separated");

    let result = Interpreter::new(&module).run("main", &[]).expect("runs");
    println!("executed fine; v[0] after partition = {:?}", result.result);
}
