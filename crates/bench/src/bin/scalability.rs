//! §4.2 scalability statistics, per solver strategy:
//!
//! * constraint evaluations per constraint (paper: ≈ 2.12 worklist pops
//!   over SPEC + test-suite; the SCC strategy's analogue is ≤ that);
//! * solve time vs number of constraints (paper: R² = 0.988);
//! * the LT-set size distribution (paper: > 95% of sets have ≤ 2
//!   elements);
//! * worklist vs SCC wall-clock totals — the check that the engine's
//!   default path ([`SolverKind::Scc`]) is no slower than the baseline;
//! * the interprocedural summary layer over the call-heavy family —
//!   precision gained (`Contextuality::Summaries` vs `Intra` no-alias
//!   counts), summary facts/solves, and build-time overhead;
//! * the incremental engine over the same family — cold summary build vs
//!   a warm run against a just-serialized cache (`warm_us`, `hit_rate`),
//!   plus the same warm run at `jobs > 1` through the engine's wavefront
//!   scheduler (`sharded_warm_us`) to show the cache composes with
//!   parallelism;
//! * the wavefront-parallel summary pipeline on a wide call graph —
//!   `jobs = 1` vs `jobs = N` wall clock (`parallel_speedup_over_serial`;
//!   the host's parallelism is recorded so the gate only enforces the
//!   floor where threads exist);
//! * the dense backend's `Inter` hot path on a deterministic
//!   intersection-heavy system (`dense_inter_us`);
//! * the resident daemon (`sraa serve`) — a warm re-upload round trip
//!   (`serve.upload_us`), one resident `no-alias` query over the socket
//!   (`serve.resident_query_us`), and what the same answer costs a fresh
//!   one-shot process even with a warm summary cache in hand
//!   (`serve.oneshot_warm_us`; the gate enforces resident ≤ one-shot).
//!
//! Besides the human-readable table, the run emits machine-readable
//! `BENCH_scalability.json` in the working directory so CI can track the
//! performance trajectory across commits: the `gate` binary compares it
//! against the committed `BENCH_baseline.json` and fails on regressions.
//! The JSON includes `calibration_us` — the solve time of one fixed
//! reference system — so the gate can compare times across machines of
//! different speeds (tracked metric = time / calibration).

use sraa_bench::{alloc_count, peak_rss_kb, r_squared, suite_n, Prepared};
use sraa_core::{
    persist, Constraint, EngineConfig, GenConfig, Jobs, LatticeBackend, ModuleSummaries,
    SolverKind, SummaryKeys, VarId, VarIndex,
};
use std::fmt::Write as _;
use std::num::NonZeroUsize;
use std::time::Instant;

/// The jobs count the parallel legs run at: `SRAA_JOBS` if set, else 4
/// clamped to the host's available parallelism. The clamp keeps the
/// measurement honest — a 1-core host would only measure spawn overhead
/// at jobs=4 — and `parallel_jobs` lands in the JSON so the gate knows
/// whether the speedup floor is meaningful on the machine that produced
/// the numbers.
fn bench_jobs() -> usize {
    match Jobs::from_env() {
        Some(j) => j.get(),
        None => 4.min(std::thread::available_parallelism().map_or(1, NonZeroUsize::get)),
    }
}

struct SolverTotals {
    kind: SolverKind,
    total_us: f64,
    total_evals: u64,
    total_allocs: u64,
    xs: Vec<f64>, // constraints
    ys: Vec<f64>, // best-of-three solve time (µs)
}

/// Wall clock and allocator pressure of one lattice-store backend, both
/// solvers combined — the numbers behind the `--lattice` default.
struct LatticeTotals {
    backend: LatticeBackend,
    total_us: f64,
    total_allocs: u64,
}

fn main() {
    let mut ws = sraa_synth::test_suite(suite_n());
    ws.extend(sraa_synth::spec_all());

    let mut total_constraints = 0u64;
    let mut size_hist: std::collections::BTreeMap<usize, usize> = Default::default();
    let mut totals: Vec<SolverTotals> = SolverKind::ALL
        .into_iter()
        .map(|kind| SolverTotals {
            kind,
            total_us: 0.0,
            total_evals: 0,
            total_allocs: 0,
            xs: Vec::new(),
            ys: Vec::new(),
        })
        .collect();
    let mut lattices: Vec<LatticeTotals> = LatticeBackend::CONCRETE
        .into_iter()
        .map(|backend| LatticeTotals { backend, total_us: 0.0, total_allocs: 0 })
        .collect();

    for w in &ws {
        // The paper's §4.2 question is specifically about *constraint
        // solving*: prepare the system outside the timer, then time each
        // strategy alone, through the engine's `FixpointSolver` objects.
        let mut m = sraa_minic::compile(&w.source).expect("workloads compile");
        let (ranges, _) = sraa_essa::transform_module(&mut m);
        let sys = sraa_core::generate(&m, &ranges, Default::default());
        total_constraints += sys.constraints.len() as u64;

        for t in &mut totals {
            let solver = t.kind.solver();
            // Best of three runs to suppress timer noise on tiny systems.
            let mut dt = f64::INFINITY;
            let mut solution = None;
            for _ in 0..3 {
                let a0 = alloc_count();
                let t0 = Instant::now();
                let mut sol = solver.solve(&sys.constraints, sys.num_vars);
                dt = dt.min(t0.elapsed().as_secs_f64() * 1e6);
                // Allocation counts are deterministic per run; stash the
                // harness-measured figures in the stats block they
                // belong to, then read them back for the totals.
                sol.stats.alloc_count = alloc_count() - a0;
                sol.stats.peak_rss_kb = peak_rss_kb();
                solution = Some(sol);
            }
            let solution = solution.expect("ran at least once");
            t.total_us += dt;
            t.total_evals += solution.stats.pops;
            t.total_allocs += solution.stats.alloc_count;
            t.xs.push(solution.stats.constraints as f64);
            t.ys.push(dt);
            if t.kind == SolverKind::Scc {
                for (sz, n) in solution.size_histogram() {
                    *size_hist.entry(sz).or_default() += n;
                }
            }
        }

        // Same corpus, pinned lattice backends (default solver): the
        // measurement behind `LatticeBackend::Auto`'s threshold.
        let solver = SolverKind::default().solver();
        for l in &mut lattices {
            let mut dt = f64::INFINITY;
            let mut allocs = 0;
            for _ in 0..3 {
                let a0 = alloc_count();
                let t0 = Instant::now();
                let sol = solver.solve_with(&sys.constraints, sys.num_vars, l.backend);
                dt = dt.min(t0.elapsed().as_secs_f64() * 1e6);
                allocs = alloc_count() - a0;
                std::hint::black_box(sol);
            }
            l.total_us += dt;
            l.total_allocs += allocs;
        }
    }

    println!("benchmarks analysed      : {}", ws.len());
    println!("total constraints        : {total_constraints}");
    for t in &totals {
        println!(
            "{:<9} evals/constraint : {:.2}   total {:.0}µs   R²(time, #constraints) {:.4}",
            t.kind.as_str(),
            t.total_evals as f64 / total_constraints.max(1) as f64,
            t.total_us,
            r_squared(&t.xs, &t.ys),
        );
    }
    println!("(paper: 2.12 pops/constraint, R² = 0.988 for the worklist)");

    let worklist = &totals[0];
    let scc = &totals[1];
    assert_eq!((worklist.kind, scc.kind), (SolverKind::Worklist, SolverKind::Scc));
    println!(
        "scc vs worklist          : {:.2}x wall-clock, {:.2}x evals (engine default: scc)",
        worklist.total_us / scc.total_us.max(1e-9),
        worklist.total_evals as f64 / scc.total_evals.max(1) as f64
    );
    for t in &totals {
        println!("{:<9} allocations    : {}", t.kind.as_str(), t.total_allocs);
    }
    let (arc, dense) = (&lattices[0], &lattices[1]);
    assert_eq!((arc.backend, dense.backend), (LatticeBackend::Arc, LatticeBackend::Dense));
    println!(
        "lattice arc vs dense     : {:.0}µs / {:.0}µs wall-clock ({:.2}x), \
         {} / {} allocs (scc solver)",
        arc.total_us,
        dense.total_us,
        arc.total_us / dense.total_us.max(1e-9),
        arc.total_allocs,
        dense.total_allocs
    );

    let total_vars: usize = size_hist.values().sum();
    let small: usize = size_hist.iter().filter(|(s, _)| **s <= 2).map(|(_, n)| n).sum();
    let small_pct = small as f64 / total_vars.max(1) as f64 * 100.0;
    println!("LT sets with ≤ 2 elements: {small_pct:.1}%  (paper: >95%)");
    println!();
    println!("LT set size histogram (size: count):");
    for (sz, n) in size_hist.iter().take(12) {
        println!("  {sz:>3}: {n}");
    }

    let inter = interproc_stats();
    println!();
    println!("interprocedural summaries (call-heavy suite, {} workloads):", inter.workloads);
    println!(
        "  LT no-alias intra → summaries: {} → {}  ({:+})",
        inter.intra_no_alias,
        inter.summaries_no_alias,
        inter.summaries_no_alias as i64 - inter.intra_no_alias as i64
    );
    println!(
        "  {} summary fact(s), {} SCC(s) ({} recursive), {} solve(s)",
        inter.facts, inter.sccs, inter.recursive_sccs, inter.solves
    );
    println!(
        "  engine build intra {:.0}µs, summaries {:.0}µs ({:.2}x)",
        inter.intra_build_us,
        inter.summaries_build_us,
        inter.summaries_build_us / inter.intra_build_us.max(1e-9)
    );

    let inc = incremental_stats();
    println!();
    println!("incremental summary cache (call-heavy suite, {} workloads):", inc.workloads);
    println!(
        "  cold build {:.0}µs → warm {:.0}µs ({:.2}x) → sharded warm {:.0}µs ({} shards)",
        inc.cold_us,
        inc.warm_us,
        inc.cold_us / inc.warm_us.max(1e-9),
        inc.sharded_warm_us,
        inc.shards
    );
    println!(
        "  {} function(s) warmed, hit rate {:.1}% (unchanged modules must be 100%)",
        inc.functions,
        inc.hit_rate * 100.0
    );

    let par = parallel_stats();
    println!();
    println!(
        "parallel summary pipeline (wide module, {} functions): \
         jobs=1 {:.0}µs → jobs={} {:.0}µs ({:.2}x)",
        par.functions,
        par.serial_us,
        par.jobs,
        par.parallel_us,
        par.speedup()
    );
    if par.jobs < 2 {
        println!("  (host has no spare parallelism — both legs ran the serial path)");
    }

    let inter_us = dense_inter_us();
    println!("dense Inter hot path     : {inter_us:.0}µs (chain ∪ / nested ∩ system)");

    let serve = serve_stats();
    println!();
    println!(
        "resident daemon (serve)  : warm upload {:.0}µs, resident query {:.1}µs, \
         one-shot warm {:.0}µs ({:.1}x)",
        serve.upload_us,
        serve.resident_query_us,
        serve.oneshot_warm_us,
        serve.oneshot_warm_us / serve.resident_query_us.max(1e-9)
    );

    let store = store_bench_stats();
    println!(
        "shared summary store     : cold upload {:.0}µs → store-warm {:.0}µs ({:.2}x), \
         hit rate {:.1}%",
        store.cold_upload_us,
        store.warm_upload_us,
        store.cold_upload_us / store.warm_upload_us.max(1e-9),
        store.hit_rate * 100.0
    );

    let calibration_us = calibrate();
    let json = render_json(
        &ws.len(),
        total_constraints,
        &totals,
        &lattices,
        small_pct,
        &size_hist,
        &inter,
        &inc,
        &par,
        &serve,
        &store,
        inter_us,
        calibration_us,
        peak_rss_kb(),
    );
    let path = "BENCH_scalability.json";
    match std::fs::write(path, &json) {
        Ok(()) => println!("\nwrote {path}"),
        Err(e) => eprintln!("\ncannot write {path}: {e}"),
    }
}

/// Interprocedural metrics over the call-heavy family: the precision the
/// summary layer adds (deterministic) and what it costs (wall clock).
struct InterprocStats {
    workloads: usize,
    intra_no_alias: u64,
    summaries_no_alias: u64,
    facts: usize,
    sccs: usize,
    recursive_sccs: usize,
    solves: u64,
    intra_build_us: f64,
    summaries_build_us: f64,
}

fn interproc_stats() -> InterprocStats {
    let calls = sraa_synth::call_suite(suite_n().min(24));
    let mut out = InterprocStats {
        workloads: calls.len(),
        intra_no_alias: 0,
        summaries_no_alias: 0,
        facts: 0,
        sccs: 0,
        recursive_sccs: 0,
        solves: 0,
        intra_build_us: 0.0,
        summaries_build_us: 0.0,
    };
    for w in &calls {
        let t0 = Instant::now();
        let intra = Prepared::new(w);
        out.intra_build_us += t0.elapsed().as_secs_f64() * 1e6;
        let t0 = Instant::now();
        let inter = Prepared::with_engine_config(w, EngineConfig::default().with_summaries());
        out.summaries_build_us += t0.elapsed().as_secs_f64() * 1e6;

        out.intra_no_alias += intra.eval(&[&intra.lt])[0].no_alias;
        out.summaries_no_alias += inter.eval(&[&inter.lt])[0].no_alias;
        let sums = inter.lt.engine().summaries().expect("summaries mode");
        out.facts += sums.facts();
        out.sccs += sums.stats.sccs;
        out.recursive_sccs += sums.stats.recursive_sccs;
        out.solves += sums.stats.solves;
    }
    out
}

/// Incremental-engine metrics over the call-heavy family: the cost of a
/// cold summary build (keys + per-SCC solves), a warm run against a
/// just-serialized cache (keys + lookups, no solves), and the same warm
/// run at `jobs > 1` ("sharded"), now through the engine's one wavefront
/// scheduler instead of a bespoke round-robin — so the jobs knob and the
/// sharding can never disagree. `hit_rate` over unchanged modules is the
/// cache-correctness canary the perf gate tracks — anything under 1.0
/// means keys churn without an edit.
struct IncrementalStats {
    workloads: usize,
    functions: usize,
    cold_us: f64,
    warm_us: f64,
    sharded_warm_us: f64,
    shards: usize,
    hit_rate: f64,
}

fn incremental_stats() -> IncrementalStats {
    let calls = sraa_synth::call_suite(suite_n().min(24));
    let shards = bench_jobs();
    let mut out = IncrementalStats {
        workloads: calls.len(),
        functions: 0,
        cold_us: 0.0,
        warm_us: 0.0,
        sharded_warm_us: 0.0,
        shards,
        hit_rate: 0.0,
    };
    let mut hits = 0u64;
    let solver = SolverKind::Scc.solver();
    for w in &calls {
        let mut m = sraa_minic::compile(&w.source).expect("workloads compile");
        let (ranges, _) = sraa_essa::transform_module(&mut m);
        let index = VarIndex::new(&m);

        // Best of three per phase, like the solver timings: the totals
        // are small, and the perf gate tracks them against a baseline.
        let best_of_3 = |f: &mut dyn FnMut()| {
            let mut best = f64::INFINITY;
            for _ in 0..3 {
                let t = Instant::now();
                f();
                best = best.min(t.elapsed().as_secs_f64() * 1e6);
            }
            best
        };

        // Cold: everything a `--summary-cache` first run pays beyond IO.
        let mut keys = None;
        let mut cold = None;
        out.cold_us += best_of_3(&mut || {
            keys = Some(SummaryKeys::compute(&m));
            cold = Some(ModuleSummaries::compute(
                &m,
                &ranges,
                GenConfig::default(),
                &index,
                solver,
                LatticeBackend::Auto,
                Jobs::N(NonZeroUsize::MIN),
            ));
        });
        let (keys, cold) = (keys.expect("ran"), cold.expect("ran"));

        // The exact byte round trip a warm run would read from disk.
        let bytes = persist::to_bytes(&m, &cold, &keys, GenConfig::default());
        let cache = persist::from_bytes(&bytes, GenConfig::default()).expect("cache round-trips");

        // Warm: recompute keys, classify, reuse — zero per-SCC solves.
        let mut warmed = None;
        out.warm_us += best_of_3(&mut || {
            warmed = Some(ModuleSummaries::compute_incremental(
                &m,
                &ranges,
                GenConfig::default(),
                &index,
                solver,
                LatticeBackend::Auto,
                Jobs::N(NonZeroUsize::MIN),
                Some(&cache),
            ));
        });
        let (warm, _warm_keys, outcome) = warmed.expect("ran");
        assert_eq!((outcome.misses, outcome.invalidated), (0, 0), "{}: keys churned", w.name);
        assert_eq!(warm.stats.solves, 0, "{}: warm run must skip all solves", w.name);
        for (f, s) in cold.iter() {
            assert_eq!(warm.of(f), s, "{}: warm summary differs", w.name);
        }
        hits += u64::from(outcome.hits);
        out.functions += m.num_functions();

        // Sharded warm: the identical warm run at `jobs = shards`, through
        // the engine's own wavefront scheduler. On an unchanged module
        // every component is a cache hit, which the scheduler installs
        // serially (a lookup is tens of nanoseconds — no spawn can pay
        // for itself), so this leg asserts the *no-pessimization* side of
        // the unification: jobs > 1 must cost the same as jobs = 1 here.
        let jobs = Jobs::N(NonZeroUsize::new(shards).expect("bench_jobs is ≥ 1"));
        let mut sharded = None;
        out.sharded_warm_us += best_of_3(&mut || {
            sharded = Some(ModuleSummaries::compute_incremental(
                &m,
                &ranges,
                GenConfig::default(),
                &index,
                solver,
                LatticeBackend::Auto,
                jobs,
                Some(&cache),
            ));
        });
        let (sharded, _, sharded_outcome) = sharded.expect("ran");
        assert_eq!(sharded_outcome, outcome, "{}: outcome must not depend on jobs", w.name);
        for (f, s) in cold.iter() {
            assert_eq!(sharded.of(f), s, "{}: sharded warm summary differs", w.name);
        }
    }
    out.hit_rate = hits as f64 / (out.functions.max(1)) as f64;
    out
}

/// Wavefront-parallel summary pipeline on a wide call graph: one layer of
/// `width` call-free helper functions (plus `main` above them), solved
/// cold at `jobs = 1` and `jobs = parallel_jobs`. The two runs must be
/// identical — the speedup row only tracks wall clock.
struct ParallelStats {
    functions: usize,
    jobs: usize,
    serial_us: f64,
    parallel_us: f64,
}

impl ParallelStats {
    fn speedup(&self) -> f64 {
        self.serial_us / self.parallel_us.max(1e-9)
    }
}

/// A module whose condensation is maximally wide: `width` independent
/// straight-line helpers of ~`depth` additions each, all called by
/// `main`. Layer 0 then holds `width` components carrying enough
/// instructions to clear the scheduler's spawn floor.
fn wide_module_source(width: usize, depth: usize) -> String {
    let mut s = String::new();
    for i in 0..width {
        let _ = writeln!(s, "int wf{i}(int a, int b) {{");
        let _ = writeln!(s, "    int x0 = a + 1;");
        let _ = writeln!(s, "    int x1 = x0 + b;");
        for j in 2..depth {
            let _ = writeln!(s, "    int x{j} = x{} + {};", j - 1, (i + j) % 9 + 1);
        }
        let _ = writeln!(s, "    return x{} + 1;", depth - 1);
        let _ = writeln!(s, "}}");
    }
    s.push_str("int main() {\n    int s = 0;\n");
    for i in 0..width {
        let _ = writeln!(s, "    s = s + wf{i}({}, {});", i % 5, i % 3 + 1);
    }
    s.push_str("    return s;\n}\n");
    s
}

fn parallel_stats() -> ParallelStats {
    let src = wide_module_source(64, 80);
    let mut m = sraa_minic::compile(&src).expect("wide module compiles");
    let (ranges, _) = sraa_essa::transform_module(&mut m);
    let index = VarIndex::new(&m);
    let solver = SolverKind::Scc.solver();
    let jobs = bench_jobs();
    let mut out = ParallelStats {
        functions: m.num_functions(),
        jobs,
        serial_us: f64::INFINITY,
        parallel_us: f64::INFINITY,
    };
    let run = |jobs: Jobs| {
        let t0 = Instant::now();
        let sums = ModuleSummaries::compute(
            &m,
            &ranges,
            GenConfig::default(),
            &index,
            solver,
            LatticeBackend::Auto,
            jobs,
        );
        (t0.elapsed().as_secs_f64() * 1e6, sums)
    };
    let mut serial = None;
    let mut parallel = None;
    for _ in 0..3 {
        let (dt, sums) = run(Jobs::N(NonZeroUsize::MIN));
        out.serial_us = out.serial_us.min(dt);
        serial = Some(sums);
        let (dt, sums) = run(Jobs::N(NonZeroUsize::new(jobs).expect("≥ 1")));
        out.parallel_us = out.parallel_us.min(dt);
        parallel = Some(sums);
    }
    assert_eq!(serial, parallel, "jobs must not change summaries or stats");
    out
}

/// Wall clock of the dense backend on a deterministic `Inter`-heavy
/// system: a ground chain `x_{i+1} ⊇ {x_i} ∪ LT(x_i)` grows nested sets
/// up to `chain` elements, then every `y_k` intersects three chain
/// prefixes. Nested sets make the intersections match-heavy — exactly
/// the sorted-merge hot loop the word-level kernels accelerate. Acyclic
/// on purpose: cyclic components take the bitset path instead.
fn dense_inter_us() -> f64 {
    let chain = 1200usize;
    let inters = 600usize;
    let mut cs: Vec<Constraint> = Vec::with_capacity(chain + inters);
    cs.push(Constraint::Init { x: VarId::from_index(0) });
    for i in 1..chain {
        cs.push(Constraint::Union {
            x: VarId::from_index(i),
            elems: vec![VarId::from_index(i - 1)],
            sources: vec![VarId::from_index(i - 1)],
        });
    }
    for k in 0..inters {
        cs.push(Constraint::Inter {
            x: VarId::from_index(chain + k),
            sources: vec![
                VarId::from_index(chain / 2 + k % (chain / 4)),
                VarId::from_index(chain * 3 / 4 + k % (chain / 8)),
                VarId::from_index(chain - 1 - k % (chain / 8)),
            ],
        });
    }
    let num_vars = chain + inters;
    let solver = SolverKind::Scc.solver();
    let mut best = f64::INFINITY;
    for _ in 0..3 {
        let t0 = Instant::now();
        let sol = solver.solve_with(&cs, num_vars, LatticeBackend::Dense);
        best = best.min(t0.elapsed().as_secs_f64() * 1e6);
        std::hint::black_box(sol);
    }
    best
}

/// The resident daemon vs the one-shot path: what `sraa serve` saves.
/// `upload_us` is a warm re-upload round trip (compile on the daemon +
/// incremental classify with zero solves + re-render); `resident_query_us`
/// is one `no-alias` query against the resident engine — a loopback
/// socket round trip plus a memoized lookup; `oneshot_warm_us` is what
/// the same answer costs without the daemon: compile + e-SSA + a warm
/// engine build against an in-memory summary cache + the query. The gate
/// enforces resident ≤ one-shot warm on every fresh run — the daemon's
/// reason to exist.
struct ServeBenchStats {
    upload_us: f64,
    resident_query_us: f64,
    oneshot_warm_us: f64,
}

fn serve_stats() -> ServeBenchStats {
    use sraa_serve::{obj, Client, Json, Server, ServerConfig};
    let w = sraa_synth::call_suite(suite_n().min(24)).pop().expect("call suite is non-empty");

    // Cold local build: produces the warm in-memory cache and picks the
    // question both paths answer (the first function with two pointers).
    let mut m0 = sraa_minic::compile(&w.source).expect("workload compiles");
    let engine0 =
        sraa_core::DisambiguationEngine::build_with_cache(&mut m0, EngineConfig::default(), None);
    let cache = engine0.export_summary_cache(&m0).expect("summaries mode");
    let (fname, _, v1, v2) = m0
        .functions()
        .find_map(|(fid, f)| {
            let ptrs = sraa_alias::AaEval::pointer_values(&m0, fid);
            (ptrs.len() >= 2).then(|| (f.name.clone(), fid, ptrs[0], ptrs[1]))
        })
        .expect("call-heavy workload has pointer pairs");

    // One-shot warm: everything a fresh `sraa` process pays for one
    // answer, even with a fully warm summary cache already in hand.
    let mut oneshot = f64::INFINITY;
    for _ in 0..5 {
        let t0 = Instant::now();
        let mut m = sraa_minic::compile(&w.source).expect("workload compiles");
        let engine = sraa_core::DisambiguationEngine::build_with_cache(
            &mut m,
            EngineConfig::default(),
            Some(&cache),
        );
        let fid = m.function_by_name(&fname).expect("function survives recompilation");
        std::hint::black_box(engine.no_alias(m.function(fid), fid, v1, v2));
        oneshot = oneshot.min(t0.elapsed().as_secs_f64() * 1e6);
    }

    // The daemon on loopback TCP: prime with a cold upload, then time
    // warm re-uploads and resident queries as whole round trips.
    let server =
        Server::bind_tcp("127.0.0.1:0", ServerConfig::default()).expect("bind loopback daemon");
    let mut upload = f64::INFINITY;
    let mut resident = f64::INFINITY;
    std::thread::scope(|scope| {
        let addr = server.tcp_addr().expect("tcp daemon has an address");
        scope.spawn(|| server.run().expect("serve loop"));
        let mut client = Client::connect_tcp(addr).expect("connect to daemon");
        let up_req = obj([
            ("cmd", Json::Str("upload".into())),
            ("name", Json::Str("bench".into())),
            ("source", Json::Str(w.source.clone())),
        ]);
        let r = client.request(&up_req).expect("cold upload");
        assert!(r.is_ok(), "upload failed: {r:?}");
        for _ in 0..3 {
            let t0 = Instant::now();
            let r = client.request(&up_req).expect("warm re-upload");
            upload = upload.min(t0.elapsed().as_secs_f64() * 1e6);
            assert!(r.is_ok(), "re-upload failed: {r:?}");
        }
        let q = obj([
            ("cmd", Json::Str("no-alias".into())),
            ("module", Json::Str("bench".into())),
            ("func", Json::Str(fname.clone())),
            ("p1", Json::Str(format!("{v1}"))),
            ("p2", Json::Str(format!("{v2}"))),
        ]);
        let r = client.request(&q).expect("warmup query");
        assert!(r.is_ok(), "query failed: {r:?}");
        for _ in 0..30 {
            let t0 = Instant::now();
            let r = client.request(&q).expect("resident query");
            resident = resident.min(t0.elapsed().as_secs_f64() * 1e6);
            std::hint::black_box(r);
        }
        client.request(&obj([("cmd", Json::Str("shutdown".into()))])).expect("graceful shutdown");
    });
    ServeBenchStats { upload_us: upload, resident_query_us: resident, oneshot_warm_us: oneshot }
}

/// The content-addressed shared store: a cold engine build that solves
/// every summary and publishes it (fresh directory per iteration — the
/// first process ever to see the module family), vs the same build
/// against a populated directory (every component answered by key
/// lookup, nothing published, no segment written). The gate enforces
/// store-warm ≤ cold — the store's reason to exist — and tracks
/// `hit_rate`, which must be 1.0 for an unchanged module: anything less
/// means content keys churn without an edit.
struct StoreBenchStats {
    cold_upload_us: f64,
    warm_upload_us: f64,
    hit_rate: f64,
}

fn store_bench_stats() -> StoreBenchStats {
    use sraa_core::SharedSummaryStore;
    let w = sraa_synth::call_suite(suite_n().min(24)).pop().expect("call suite is non-empty");
    let base = std::env::temp_dir().join(format!("sraa_bench_store_{}", std::process::id()));
    std::fs::remove_dir_all(&base).ok();

    // Cold: a fresh directory each run — keys are computed, every SCC is
    // solved, and every summary is published as a new segment.
    let mut cold = f64::INFINITY;
    for i in 0..3 {
        let dir = base.join(format!("cold{i}"));
        let store = SharedSummaryStore::open(&dir, GenConfig::default()).expect("store opens");
        let mut m = sraa_minic::compile(&w.source).expect("workload compiles");
        let t0 = Instant::now();
        let engine = sraa_core::DisambiguationEngine::build_with_cache_and_store(
            &mut m,
            EngineConfig::default(),
            None,
            Some(&store),
        );
        cold = cold.min(t0.elapsed().as_secs_f64() * 1e6);
        assert_eq!(engine.stats().store_hits, 0, "a fresh directory cannot hit");
        assert!(engine.stats().store_published > 0, "the cold run must publish");
    }

    // Populate one directory, then time warm builds against it through
    // fresh handles — the second daemon / next one-shot process.
    let dir = base.join("warm");
    {
        let store = SharedSummaryStore::open(&dir, GenConfig::default()).expect("store opens");
        let mut m = sraa_minic::compile(&w.source).expect("workload compiles");
        let engine = sraa_core::DisambiguationEngine::build_with_cache_and_store(
            &mut m,
            EngineConfig::default(),
            None,
            Some(&store),
        );
        std::hint::black_box(engine);
    }
    let mut warm = f64::INFINITY;
    let mut hit_rate = 0.0;
    for _ in 0..3 {
        let store = SharedSummaryStore::open(&dir, GenConfig::default()).expect("store reopens");
        let mut m = sraa_minic::compile(&w.source).expect("workload compiles");
        let t0 = Instant::now();
        let engine = sraa_core::DisambiguationEngine::build_with_cache_and_store(
            &mut m,
            EngineConfig::default(),
            None,
            Some(&store),
        );
        warm = warm.min(t0.elapsed().as_secs_f64() * 1e6);
        let s = engine.stats();
        assert_eq!(s.store_misses, 0, "an unchanged module must hit the store completely");
        assert_eq!(s.store_published, 0, "a warm run must not publish");
        hit_rate = f64::from(s.store_hits) / f64::from(s.store_hits + s.store_misses).max(1.0);
    }
    std::fs::remove_dir_all(&base).ok();
    StoreBenchStats { cold_upload_us: cold, warm_upload_us: warm, hit_rate }
}

/// Solve time of one fixed reference system (best of five) — a proxy for
/// machine speed that lets the gate normalise wall-clock metrics across
/// hosts: `total_us / calibration_us` is comparable between a laptop
/// baseline and a CI runner.
fn calibrate() -> f64 {
    let w = sraa_synth::csmith_generate(sraa_synth::CsmithConfig {
        seed: 42,
        max_ptr_depth: 3,
        num_stmts: 400,
        helpers: 0,
    });
    let mut m = sraa_minic::compile(&w.source).expect("calibration workload compiles");
    let (ranges, _) = sraa_essa::transform_module(&mut m);
    let sys = sraa_core::generate(&m, &ranges, Default::default());
    let solver = SolverKind::Scc.solver();
    let mut best = f64::INFINITY;
    for _ in 0..5 {
        let t0 = Instant::now();
        let sol = solver.solve(&sys.constraints, sys.num_vars);
        best = best.min(t0.elapsed().as_secs_f64() * 1e6);
        std::hint::black_box(sol);
    }
    best
}

/// Hand-rolled JSON — the workspace is offline and the numbers are flat.
#[allow(clippy::too_many_arguments)] // flat report, one writer
fn render_json(
    workloads: &usize,
    total_constraints: u64,
    totals: &[SolverTotals],
    lattices: &[LatticeTotals],
    small_pct: f64,
    size_hist: &std::collections::BTreeMap<usize, usize>,
    inter: &InterprocStats,
    inc: &IncrementalStats,
    par: &ParallelStats,
    serve: &ServeBenchStats,
    store: &StoreBenchStats,
    dense_inter_us: f64,
    calibration_us: f64,
    peak_rss_kb: u64,
) -> String {
    let mut s = String::from("{\n");
    let _ = writeln!(s, "  \"workloads\": {workloads},");
    let _ = writeln!(s, "  \"total_constraints\": {total_constraints},");
    let _ = writeln!(s, "  \"calibration_us\": {calibration_us:.1},");
    let _ = writeln!(s, "  \"dense_inter_us\": {dense_inter_us:.1},");
    let _ = writeln!(s, "  \"peak_rss_kb\": {peak_rss_kb},");
    s.push_str("  \"parallel\": {\n");
    let _ = writeln!(s, "    \"functions\": {},", par.functions);
    let _ = writeln!(s, "    \"jobs\": {},", par.jobs);
    let _ = writeln!(s, "    \"serial_us\": {:.1},", par.serial_us);
    let _ = writeln!(s, "    \"parallel_us\": {:.1},", par.parallel_us);
    let _ = writeln!(s, "    \"speedup_over_serial\": {:.4}", par.speedup());
    s.push_str("  },\n");
    s.push_str("  \"interproc\": {\n");
    let _ = writeln!(s, "    \"workloads\": {},", inter.workloads);
    let _ = writeln!(s, "    \"intra_no_alias\": {},", inter.intra_no_alias);
    let _ = writeln!(s, "    \"summaries_no_alias\": {},", inter.summaries_no_alias);
    let _ = writeln!(s, "    \"facts\": {},", inter.facts);
    let _ = writeln!(s, "    \"sccs\": {},", inter.sccs);
    let _ = writeln!(s, "    \"recursive_sccs\": {},", inter.recursive_sccs);
    let _ = writeln!(s, "    \"solves\": {},", inter.solves);
    let _ = writeln!(s, "    \"intra_build_us\": {:.1},", inter.intra_build_us);
    let _ = writeln!(s, "    \"summaries_build_us\": {:.1}", inter.summaries_build_us);
    s.push_str("  },\n");
    s.push_str("  \"incremental\": {\n");
    let _ = writeln!(s, "    \"workloads\": {},", inc.workloads);
    let _ = writeln!(s, "    \"functions\": {},", inc.functions);
    let _ = writeln!(s, "    \"cold_us\": {:.1},", inc.cold_us);
    let _ = writeln!(s, "    \"warm_us\": {:.1},", inc.warm_us);
    let _ = writeln!(s, "    \"sharded_warm_us\": {:.1},", inc.sharded_warm_us);
    let _ = writeln!(s, "    \"shards\": {},", inc.shards);
    let _ = writeln!(s, "    \"hit_rate\": {:.4}", inc.hit_rate);
    s.push_str("  },\n");
    s.push_str("  \"serve\": {\n");
    let _ = writeln!(s, "    \"upload_us\": {:.1},", serve.upload_us);
    let _ = writeln!(s, "    \"resident_query_us\": {:.1},", serve.resident_query_us);
    let _ = writeln!(s, "    \"oneshot_warm_us\": {:.1}", serve.oneshot_warm_us);
    s.push_str("  },\n");
    s.push_str("  \"store\": {\n");
    let _ = writeln!(s, "    \"cold_upload_us\": {:.1},", store.cold_upload_us);
    let _ = writeln!(s, "    \"warm_upload_us\": {:.1},", store.warm_upload_us);
    let _ = writeln!(s, "    \"hit_rate\": {:.4}", store.hit_rate);
    s.push_str("  },\n");
    s.push_str("  \"solvers\": [\n");
    for (i, t) in totals.iter().enumerate() {
        let _ = writeln!(
            s,
            "    {{\"name\": \"{}\", \"total_us\": {:.1}, \"total_evals\": {}, \
             \"total_allocs\": {}, \"evals_per_constraint\": {:.4}, \
             \"r2_time_vs_constraints\": {:.4}}}{}",
            t.kind.as_str(),
            t.total_us,
            t.total_evals,
            t.total_allocs,
            t.total_evals as f64 / total_constraints.max(1) as f64,
            r_squared(&t.xs, &t.ys),
            if i + 1 < totals.len() { "," } else { "" }
        );
    }
    s.push_str("  ],\n");
    s.push_str("  \"lattice\": {\n");
    let _ = writeln!(s, "    \"arc_us\": {:.1},", lattices[0].total_us);
    let _ = writeln!(s, "    \"dense_us\": {:.1},", lattices[1].total_us);
    let _ = writeln!(s, "    \"arc_allocs\": {},", lattices[0].total_allocs);
    let _ = writeln!(s, "    \"dense_allocs\": {},", lattices[1].total_allocs);
    let _ = writeln!(
        s,
        "    \"dense_speedup_over_arc\": {:.4}",
        lattices[0].total_us / lattices[1].total_us.max(1e-9)
    );
    s.push_str("  },\n");
    let _ = writeln!(
        s,
        "  \"scc_speedup_over_worklist\": {:.4},",
        totals[0].total_us / totals[1].total_us.max(1e-9)
    );
    let _ = writeln!(s, "  \"default_solver\": \"{}\",", SolverKind::default().as_str());
    let _ = writeln!(s, "  \"lt_sets_le2_pct\": {small_pct:.2},");
    s.push_str("  \"size_histogram\": {");
    let mut first = true;
    for (sz, n) in size_hist {
        if !first {
            s.push_str(", ");
        }
        first = false;
        let _ = write!(s, "\"{sz}\": {n}");
    }
    s.push_str("}\n}\n");
    s
}
