//! The one less-than-set representation shared by both fixpoint solvers.
//!
//! Historically the worklist solver kept `HashSet<u32>` sets and the SCC
//! solver kept `Rc<[u32]>` slices, duplicating the lattice algebra behind
//! incompatible types. This module is the single source of truth both now
//! use:
//!
//! * ⊤ (the full set `V`) stays **symbolic** ([`LtSet::Top`]) — identical
//!   lattice semantics without quadratic memory: `⊤ ∩ S = S`,
//!   `{x} ∪ ⊤ = ⊤`;
//! * explicit sets are **sorted, deduplicated, shareable**
//!   `Arc<[u32]>` slices: unions are merges, intersections are linear
//!   merges (smallest set first), `Copy` constraints share one allocation
//!   instead of cloning, and the `Arc` makes solutions `Send + Sync` so
//!   the per-function analysis driver can fan out across threads.
//!
//! Iterating an `LtSet` always yields ids in ascending [`VarId`] order, so
//! everything downstream of the solvers — printed `LT` sets, statistics,
//! histograms — is byte-identical across runs (no hash-iteration
//! nondeterminism).
//!
//! `eval` is the one constraint-evaluation function both solvers call;
//! a solver only decides *scheduling* (FIFO worklist vs SCC topological
//! order), never set algebra.

use crate::constraints::Constraint;
use crate::var_index::VarId;
use std::sync::Arc;
use std::sync::OnceLock;

/// A less-than set during solving: ⊤ or an explicit sorted set.
#[derive(Clone, Debug)]
pub enum LtSet {
    /// The full set `V` (symbolic).
    Top,
    /// An explicit set: sorted, deduplicated raw [`VarId`]s.
    Elems(Arc<[u32]>),
}

/// The shared empty slice — `∅` occurs constantly (rule 1 grounds every
/// allocation site), so all empty sets alias one allocation.
pub(crate) fn empty_arc() -> Arc<[u32]> {
    static EMPTY: OnceLock<Arc<[u32]>> = OnceLock::new();
    Arc::clone(EMPTY.get_or_init(|| Arc::from(Vec::new())))
}

impl PartialEq for LtSet {
    fn eq(&self, other: &Self) -> bool {
        match (self, other) {
            (LtSet::Top, LtSet::Top) => true,
            // Pointer equality first: shared allocations (Copy chains,
            // stabilised cycles) compare in O(1).
            (LtSet::Elems(a), LtSet::Elems(b)) => Arc::ptr_eq(a, b) || a == b,
            _ => false,
        }
    }
}

impl Eq for LtSet {}

impl LtSet {
    /// The empty set `∅` (the lattice bottom).
    pub fn empty() -> LtSet {
        LtSet::Elems(empty_arc())
    }

    /// An explicit set from a vector that is already sorted and
    /// deduplicated.
    pub fn from_sorted(v: Vec<u32>) -> LtSet {
        debug_assert!(v.windows(2).all(|w| w[0] < w[1]), "LtSet slices must be sorted + dedup'd");
        if v.is_empty() {
            LtSet::empty()
        } else {
            LtSet::Elems(Arc::from(v))
        }
    }

    /// Membership test (⊤ contains everything).
    pub fn contains(&self, id: VarId) -> bool {
        match self {
            LtSet::Top => true,
            LtSet::Elems(s) => s.binary_search(&id.raw()).is_ok(),
        }
    }

    /// Cardinality, `None` for ⊤.
    pub fn len(&self) -> Option<usize> {
        match self {
            LtSet::Top => None,
            LtSet::Elems(s) => Some(s.len()),
        }
    }

    /// Whether this is the empty set (⊤ is not).
    pub fn is_empty(&self) -> bool {
        matches!(self, LtSet::Elems(s) if s.is_empty())
    }

    /// Whether this is the symbolic ⊤.
    pub fn is_top(&self) -> bool {
        matches!(self, LtSet::Top)
    }

    /// The explicit slice, `None` for ⊤.
    pub fn as_elems(&self) -> Option<&Arc<[u32]>> {
        match self {
            LtSet::Top => None,
            LtSet::Elems(s) => Some(s),
        }
    }

    /// The members in ascending order (⊤ yields nothing — callers decide
    /// how to surface symbolic tops).
    pub fn iter(&self) -> impl Iterator<Item = VarId> + '_ {
        self.as_elems().into_iter().flat_map(|s| s.iter().map(|&i| VarId::new(i)))
    }
}

/// Evaluates one constraint's right-hand side over the current sets — the
/// paper's transfer functions, shared verbatim by both solvers.
pub(crate) fn eval(c: &Constraint, sets: &[LtSet]) -> LtSet {
    match c {
        Constraint::Init { .. } => LtSet::empty(),
        Constraint::Copy { source, .. } => sets[source.index()].clone(),
        Constraint::Union { elems, sources, .. } => {
            if sources.iter().any(|s| sets[s.index()].is_top()) {
                return LtSet::Top; // {x} ∪ ⊤ = ⊤
            }
            let mut acc: Vec<u32> = elems.iter().map(|e| e.raw()).collect();
            for s in sources {
                acc.extend_from_slice(sets[s.index()].as_elems().expect("checked above"));
            }
            acc.sort_unstable();
            acc.dedup();
            LtSet::from_sorted(acc)
        }
        Constraint::Inter { sources, .. } => {
            debug_assert!(!sources.is_empty(), "empty intersections are generated as Init");
            // ⊤ is the identity of ∩; intersect the explicit sources,
            // smallest first so the working set only shrinks.
            let mut explicit: Vec<&Arc<[u32]>> =
                sources.iter().filter_map(|s| sets[s.index()].as_elems()).collect();
            if explicit.is_empty() {
                return LtSet::Top; // all sources still ⊤
            }
            explicit.sort_by_key(|s| s.len());
            let mut acc: Vec<u32> = explicit[0].to_vec();
            for s in &explicit[1..] {
                acc = intersect_sorted(&acc, s);
                if acc.is_empty() {
                    break;
                }
            }
            LtSet::from_sorted(acc)
        }
    }
}

/// Intersection of two sorted, deduplicated slices by linear merge.
pub(crate) fn intersect_sorted(a: &[u32], b: &[u32]) -> Vec<u32> {
    let mut out = Vec::with_capacity(a.len().min(b.len()));
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                out.push(a[i]);
                i += 1;
                j += 1;
            }
        }
    }
    out
}

/// Debug check: the lattice only ever descends (`new ⊆ old`).
#[cfg(debug_assertions)]
pub(crate) fn decreases(old: &LtSet, new: &LtSet) -> bool {
    match (old, new) {
        (LtSet::Top, _) => true,
        (LtSet::Elems(_), LtSet::Top) => false,
        (LtSet::Elems(o), LtSet::Elems(n)) => {
            intersect_sorted(o, n).len() == n.len() // n ⊆ o
        }
    }
}

#[cfg(not(debug_assertions))]
pub(crate) fn decreases(_old: &LtSet, _new: &LtSet) -> bool {
    true
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intersect_sorted_merges() {
        assert_eq!(intersect_sorted(&[1, 3, 5, 7], &[2, 3, 4, 7, 9]), vec![3, 7]);
        assert_eq!(intersect_sorted(&[], &[1]), Vec::<u32>::new());
        assert_eq!(intersect_sorted(&[1, 2], &[3]), Vec::<u32>::new());
    }

    #[test]
    fn lattice_queries() {
        let top = LtSet::Top;
        let set = LtSet::from_sorted(vec![1, 4, 9]);
        assert!(top.contains(VarId::new(1000)) && top.len().is_none() && !top.is_empty());
        assert!(set.contains(VarId::new(4)) && !set.contains(VarId::new(5)));
        assert_eq!(set.len(), Some(3));
        assert!(LtSet::empty().is_empty());
        assert_eq!(
            set.iter().collect::<Vec<_>>(),
            vec![VarId::new(1), VarId::new(4), VarId::new(9)]
        );
    }

    #[test]
    fn equality_is_structural_with_pointer_fast_path() {
        let a = LtSet::from_sorted(vec![1, 2]);
        let b = a.clone(); // shares the allocation
        let c = LtSet::from_sorted(vec![1, 2]); // fresh allocation
        assert_eq!(a, b);
        assert_eq!(a, c);
        assert_ne!(a, LtSet::Top);
        assert_ne!(a, LtSet::empty());
    }

    #[test]
    fn empty_sets_share_one_allocation() {
        let (LtSet::Elems(a), LtSet::Elems(b)) = (LtSet::empty(), LtSet::empty()) else {
            panic!("empty() is an explicit set")
        };
        assert!(Arc::ptr_eq(&a, &b));
    }

    #[test]
    fn decreases_checks_subset() {
        let big = LtSet::from_sorted(vec![1, 2, 3]);
        let small = LtSet::from_sorted(vec![2]);
        assert!(decreases(&LtSet::Top, &big));
        assert!(decreases(&big, &small) || cfg!(not(debug_assertions)));
        #[cfg(debug_assertions)]
        {
            assert!(!decreases(&small, &big));
            assert!(!decreases(&small, &LtSet::Top));
        }
    }
}
