//! The `aa-eval` driver: all-pairs alias queries.
//!
//! LLVM's `aa-eval` pass, which the paper uses for its precision numbers
//! (§4.1), "tries to disambiguate every pair of pointers in the program":
//! within each function it collects every pointer-typed value and issues
//! one query per unordered pair, tallying `NoAlias` / `MayAlias` /
//! `MustAlias` verdicts per analysis.

use crate::{AliasAnalysis, AliasResult};
use sraa_ir::{FuncId, Module, Type, Value};

/// Per-analysis tallies over one module.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct EvalSummary {
    /// Analysis display name.
    pub name: String,
    /// `NoAlias` verdicts.
    pub no_alias: u64,
    /// `MayAlias` verdicts.
    pub may_alias: u64,
    /// `MustAlias` verdicts.
    pub must_alias: u64,
}

impl EvalSummary {
    /// Total queries answered.
    pub fn total(&self) -> u64 {
        self.no_alias + self.may_alias + self.must_alias
    }

    /// Percentage of queries answered `NoAlias` — the paper's precision
    /// metric ("the higher the percentage, the more precise").
    pub fn no_alias_rate(&self) -> f64 {
        if self.total() == 0 {
            0.0
        } else {
            self.no_alias as f64 / self.total() as f64 * 100.0
        }
    }
}

/// All-pairs query driver.
#[derive(Clone, Copy, Debug, Default)]
pub struct AaEval;

impl AaEval {
    /// The pointer-typed values of `func` that `aa-eval` queries.
    pub fn pointer_values(module: &Module, func: FuncId) -> Vec<Value> {
        let f = module.function(func);
        let mut out = Vec::new();
        for b in f.block_ids() {
            for (v, data) in f.block_insts(b) {
                if data.ty.is_some_and(Type::is_ptr) {
                    out.push(v);
                }
            }
        }
        out
    }

    /// Total number of queries the module generates (one per unordered
    /// pair of pointer values, per function).
    pub fn num_queries(module: &Module) -> u64 {
        module
            .functions()
            .map(|(fid, _)| {
                let n = Self::pointer_values(module, fid).len() as u64;
                // `n.saturating_sub(1)`: pointer-free functions (integer
                // helpers) must contribute 0, not a debug-mode underflow.
                n * n.saturating_sub(1) / 2
            })
            .sum()
    }

    /// Runs every analysis over every pair, returning one summary per
    /// analysis (in input order).
    pub fn run(module: &Module, analyses: &[&dyn AliasAnalysis]) -> Vec<EvalSummary> {
        let mut summaries: Vec<EvalSummary> =
            analyses.iter().map(|a| EvalSummary { name: a.name(), ..Default::default() }).collect();
        for (fid, _) in module.functions() {
            let ptrs = Self::pointer_values(module, fid);
            for i in 0..ptrs.len() {
                for j in i + 1..ptrs.len() {
                    for (a, s) in analyses.iter().zip(&mut summaries) {
                        match a.alias(module, fid, ptrs[i], ptrs[j]) {
                            AliasResult::NoAlias => s.no_alias += 1,
                            AliasResult::MayAlias => s.may_alias += 1,
                            AliasResult::MustAlias => s.must_alias += 1,
                        }
                    }
                }
            }
        }
        summaries
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{BasicAliasAnalysis, Combined, StrictInequalityAa};

    #[test]
    fn totals_agree_across_analyses() {
        let mut m = sraa_minic::compile(
            r#"
            int f(int* v, int n) {
                int s = 0;
                for (int i = 0; i < n; i++) s += v[i] + v[i + 1];
                return s;
            }
            int main() { int a[16]; return f(a, 15); }
            "#,
        )
        .unwrap();
        let lt = StrictInequalityAa::new(&mut m);
        let ba = BasicAliasAnalysis::new(&m);
        let out = AaEval::run(&m, &[&ba, &lt]);
        assert_eq!(out[0].total(), out[1].total());
        assert_eq!(out[0].total(), AaEval::num_queries(&m));
        assert!(out[0].total() > 0);
    }

    #[test]
    fn combination_dominates_both_parts() {
        let mut m = sraa_minic::compile(
            r#"
            void mix(int* v, int n) {
                int* w = malloc(8);
                for (int i = 0; i + 1 < n; i++) {
                    v[i] = v[i + 1];
                    w[i % 8] = v[i];
                }
            }
            int main() { int a[32]; mix(a, 31); return 0; }
            "#,
        )
        .unwrap();
        let lt = StrictInequalityAa::new(&mut m);
        let ba = BasicAliasAnalysis::new(&m);
        let ba2 = BasicAliasAnalysis::new(&m);
        let lt2 = lt.clone();
        let combined = Combined::new(vec![Box::new(ba2), Box::new(lt2)]);
        let out = AaEval::run(&m, &[&ba, &lt, &combined]);
        let (ba_s, lt_s, both) = (&out[0], &out[1], &out[2]);
        assert!(both.no_alias >= ba_s.no_alias);
        assert!(both.no_alias >= lt_s.no_alias);
        assert_eq!(both.name, "BA+LT");
    }

    #[test]
    fn no_alias_rate_is_a_percentage() {
        let s = EvalSummary { name: "X".into(), no_alias: 3, may_alias: 1, must_alias: 0 };
        assert!((s.no_alias_rate() - 75.0).abs() < 1e-9);
        let empty = EvalSummary::default();
        assert_eq!(empty.no_alias_rate(), 0.0);
    }
}
