//! Solver micro-benchmarks: worklist throughput on the constraint shapes
//! that dominate real systems — long union chains (straight-line
//! increments), φ/union loops (induction variables) and wide
//! intersections (merge-heavy CFGs). Complements `fig11`/`scalability`
//! which measure the end-to-end behaviour.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sraa_core::{generate, solve, Constraint, GenConfig, SolverKind, VarId};

fn v(i: usize) -> VarId {
    VarId::from_index(i)
}

/// x0 = •; x_{i+1} = x_i + 1 — the transitive-closure worst case for set
/// sizes (LT(x_n) has n elements).
fn chain(n: usize) -> Vec<Constraint> {
    let mut cs = vec![Constraint::Init { x: v(0) }];
    for i in 1..n {
        cs.push(Constraint::Union { x: v(i), elems: vec![v(i - 1)], sources: vec![v(i - 1)] });
    }
    cs
}

/// k independent loops: i = φ(entry, i+1), the common induction shape.
fn loops(k: usize) -> Vec<Constraint> {
    let mut cs = Vec::with_capacity(3 * k);
    for l in 0..k {
        let base = 3 * l;
        cs.push(Constraint::Init { x: v(base) });
        cs.push(Constraint::Inter { x: v(base + 1), sources: vec![v(base), v(base + 2)] });
        cs.push(Constraint::Union {
            x: v(base + 2),
            elems: vec![v(base + 1)],
            sources: vec![v(base + 1)],
        });
    }
    cs
}

fn bench_chains(c: &mut Criterion) {
    let mut group = c.benchmark_group("solver/chain");
    group.sample_size(10);
    // The chain is the closure's quadratic worst case (LT(x_n) holds n
    // elements, n²/2 total), so sizes are capped where one solve stays
    // under ~100ms; real programs behave linearly (see `fig11`).
    for n in [100usize, 500, 2_000] {
        let cs = chain(n);
        group.bench_with_input(BenchmarkId::from_parameter(n), &cs, |b, cs| {
            b.iter(|| std::hint::black_box(solve(cs, n).stats.pops));
        });
    }
    group.finish();
}

fn bench_loops(c: &mut Criterion) {
    let mut group = c.benchmark_group("solver/loops");
    group.sample_size(20);
    for k in [100usize, 1_000, 10_000] {
        let cs = loops(k);
        group.bench_with_input(BenchmarkId::from_parameter(k), &cs, |b, cs| {
            b.iter(|| std::hint::black_box(solve(cs, 3 * k).stats.pops));
        });
    }
    group.finish();
}

/// Baseline worklist vs SCC-condensation solver (the paper's §6 future
/// work) on the three shapes that matter: the quadratic chain worst case,
/// φ-loop-heavy systems, and a real constraint system from the evaluation
/// corpus (SPEC `gobmk`, the paper's headline combination benchmark).
/// Both run through the engine's `FixpointSolver` strategy objects, the
/// exact path the `DisambiguationEngine` takes.
fn bench_solver_comparison(c: &mut Criterion) {
    let mut group = c.benchmark_group("solvers");
    group.sample_size(20);

    let shapes: Vec<(&str, Vec<Constraint>, usize)> = {
        let w = sraa_synth::spec_generate_by_name("gobmk").expect("gobmk profile");
        let mut module = sraa_minic::compile(&w.source).expect("gobmk compiles");
        let (ranges, _) = sraa_essa::transform_module(&mut module);
        let sys = generate(&module, &ranges, GenConfig::default());
        vec![
            ("chain/1000", chain(1_000), 1_000),
            ("loops/3000", loops(1_000), 3_000),
            ("spec-gobmk", sys.constraints, sys.num_vars),
        ]
    };

    for (name, cs, n) in &shapes {
        for kind in SolverKind::ALL {
            let solver = kind.solver();
            group.bench_with_input(
                BenchmarkId::new(kind.as_str(), name),
                &(cs, *n),
                |b, (cs, n)| b.iter(|| std::hint::black_box(solver.solve(cs, *n).stats.pops)),
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_chains, bench_loops, bench_solver_comparison);
criterion_main!(benches);
