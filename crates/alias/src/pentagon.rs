//! The dense Pentagon domain packaged as an [`AliasAnalysis`] — **PT**
//! in the comparison harness.
//!
//! The paper's Section 5 remarks that *"Pentagons, like the ABCD
//! algorithm, could be used to disambiguate pointers like we do"*. This
//! adapter does exactly that: it applies the paper's Definition 3.11
//! criteria with [`sraa_pentagon::PentagonAnalysis`] as the less-than
//! oracle instead of the sparse constraint solution.
//!
//! Like the sparse analysis, it needs the program in e-SSA form —
//! without σ-renaming, a branch refinement post-dates the definitions
//! of the values it constrains, and the def-point queries that make
//! Definition 3.11 sound cannot see it (demonstrated by
//! `figure_1b_needs_live_range_splitting` in `sraa-pentagon`). The
//! constructor performs the conversion, mirroring
//! [`StrictInequalityAa::new`](crate::StrictInequalityAa::new).

use crate::{AliasAnalysis, AliasResult};
use sraa_core::{derived_pointer, strip_copies};
use sraa_ir::{FuncId, InstKind, Module, Type, Value};
use sraa_pentagon::PentagonAnalysis;

/// Pentagon-based alias analysis (dense interval × strict-upper-bound
/// domain behind the paper's disambiguation criteria).
#[derive(Debug)]
pub struct PentagonAa {
    analysis: PentagonAnalysis,
}

impl PentagonAa {
    /// Converts `module` to e-SSA form and runs the dense fixpoint.
    pub fn new(module: &mut Module) -> Self {
        let _ = sraa_essa::transform_module(module);
        Self { analysis: PentagonAnalysis::run(module) }
    }

    /// Runs the dense fixpoint on a module that is *already* in e-SSA
    /// form (e.g. one transformed by
    /// [`StrictInequalityAa::new`](crate::StrictInequalityAa::new), so
    /// both analyses answer queries about the same program).
    pub fn on_prepared(module: &Module) -> Self {
        Self { analysis: PentagonAnalysis::run(module) }
    }

    /// Access to the underlying Pentagon analysis.
    pub fn analysis(&self) -> &PentagonAnalysis {
        &self.analysis
    }

    fn proves_lt(&self, module: &Module, f: FuncId, a: Value, b: Value) -> bool {
        self.analysis.proves_lt(module, f, a, b)
    }

    /// Definition 3.11 with the Pentagon oracle.
    fn no_alias(&self, module: &Module, f: FuncId, p1: Value, p2: Value) -> bool {
        let func = module.function(f);
        let is_ptr = |v: Value| func.value_type(v).is_some_and(Type::is_ptr);
        if !is_ptr(p1) || !is_ptr(p2) {
            return false;
        }
        // Criterion 1: the pointers themselves are ordered.
        if self.proves_lt(module, f, p1, p2) || self.proves_lt(module, f, p2, p1) {
            return true;
        }
        // Criterion 2: same base, strictly ordered variable offsets.
        if let (Some((b1, x1)), Some((b2, x2))) =
            (derived_pointer(func, p1), derived_pointer(func, p2))
        {
            if strip_copies(func, b1) == strip_copies(func, b2) {
                let is_var = |x: Value| !matches!(func.inst(x).kind, InstKind::Const(_));
                if is_var(x1)
                    && is_var(x2)
                    && (self.proves_lt(module, f, x1, x2) || self.proves_lt(module, f, x2, x1))
                {
                    return true;
                }
            }
        }
        false
    }
}

impl AliasAnalysis for PentagonAa {
    fn name(&self) -> String {
        "PT".to_string()
    }

    fn alias(&self, module: &Module, func: FuncId, p1: Value, p2: Value) -> AliasResult {
        if p1 == p2 {
            return AliasResult::MustAlias;
        }
        if self.no_alias(module, func, p1, p2) {
            AliasResult::NoAlias
        } else {
            AliasResult::MayAlias
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::StrictInequalityAa;

    fn pointer_operands(m: &Module, name: &str) -> (FuncId, Vec<Value>) {
        let fid = m.function_by_name(name).unwrap();
        let f = m.function(fid);
        let mut ptrs = Vec::new();
        for b in f.block_ids() {
            for (_, d) in f.block_insts(b) {
                match &d.kind {
                    InstKind::Load { ptr } => ptrs.push(*ptr),
                    InstKind::Store { ptr, .. } => ptrs.push(*ptr),
                    _ => {}
                }
            }
        }
        (fid, ptrs)
    }

    #[test]
    fn pentagon_disambiguates_the_motivating_loop() {
        let mut m = sraa_minic::compile(
            r#"
            void f(int* v, int N) {
                for (int i = 0, j = N; i < j; i++, j--) v[i] = v[j];
            }
            "#,
        )
        .unwrap();
        let pt = PentagonAa::new(&mut m);
        let (fid, ptrs) = pointer_operands(&m, "f");
        assert_eq!(pt.alias(&m, fid, ptrs[0], ptrs[1]), AliasResult::NoAlias);
    }

    #[test]
    fn pentagon_and_lt_agree_on_figure_1a() {
        let src = r#"
            void ins_sort(int* v, int N) {
                for (int i = 0; i < N - 1; i++) {
                    for (int j = i + 1; j < N; j++) {
                        if (v[i] > v[j]) {
                            int tmp = v[i];
                            v[i] = v[j];
                            v[j] = tmp;
                        }
                    }
                }
            }
        "#;
        let mut m = sraa_minic::compile(src).unwrap();
        let lt = StrictInequalityAa::new(&mut m);
        let pt = PentagonAa::on_prepared(&m);
        let (fid, ptrs) = pointer_operands(&m, "ins_sort");
        let mut lt_no = 0;
        let mut pt_no = 0;
        for (i, &p1) in ptrs.iter().enumerate() {
            for &p2 in &ptrs[i + 1..] {
                if lt.alias(&m, fid, p1, p2) == AliasResult::NoAlias {
                    lt_no += 1;
                }
                if pt.alias(&m, fid, p1, p2) == AliasResult::NoAlias {
                    pt_no += 1;
                }
            }
        }
        assert!(lt_no > 0 && pt_no > 0, "both must disambiguate v[i]/v[j] pairs");
    }

    #[test]
    fn pentagon_never_contradicts_must_alias() {
        let mut m = sraa_minic::compile("void g(int* p) { int* q = p; *q = 1; *p = 2; }").unwrap();
        let pt = PentagonAa::new(&mut m);
        let (fid, ptrs) = pointer_operands(&m, "g");
        for &p1 in &ptrs {
            for &p2 in &ptrs {
                assert_ne!(pt.alias(&m, fid, p1, p2), AliasResult::NoAlias);
            }
        }
    }
}
