//! The (direct) call graph and its SCC condensation.
//!
//! Our IR only has direct calls ([`InstKind::Call`] names a [`FuncId`]),
//! so the call graph is exact: node = function, edge = "some instruction
//! of `f` calls `g`". The interprocedural summary layer of `sraa-core`
//! consumes the [`Condensation`]: summaries are propagated *bottom-up*
//! (callees before callers), with a fixpoint iteration inside every
//! recursive component. Indirect calls, when they arrive, will widen this
//! into a may-call graph — see ROADMAP.
//!
//! Everything here is deterministic: edges are recorded in instruction
//! order and deduplicated keeping first occurrence order sorted by id, and
//! the condensation uses iterative Tarjan, whose output order (a reverse
//! topological order of the component DAG — exactly callees-first) depends
//! only on the module.

use crate::ids::FuncId;
use crate::inst::InstKind;
use crate::module::Module;

/// The direct call graph of a [`Module`].
#[derive(Clone, Debug)]
pub struct CallGraph {
    /// `callees[f]` — sorted, deduplicated callees of `f`.
    callees: Vec<Vec<FuncId>>,
    /// `callers[f]` — sorted, deduplicated callers of `f`.
    callers: Vec<Vec<FuncId>>,
}

impl CallGraph {
    /// Builds the call graph by one scan over every function body.
    pub fn build(module: &Module) -> Self {
        let n = module.num_functions();
        let mut callees: Vec<Vec<FuncId>> = vec![Vec::new(); n];
        let mut callers: Vec<Vec<FuncId>> = vec![Vec::new(); n];
        for (fid, f) in module.functions() {
            for b in f.block_ids() {
                for (_, data) in f.block_insts(b) {
                    if let InstKind::Call { callee, .. } = &data.kind {
                        callees[fid.index()].push(*callee);
                    }
                }
            }
        }
        for (f, cs) in callees.iter_mut().enumerate() {
            cs.sort_unstable();
            cs.dedup();
            for &g in cs.iter() {
                callers[g.index()].push(FuncId::from_index(f));
            }
        }
        // `callers` is filled in ascending caller order already.
        Self { callees, callers }
    }

    /// Number of functions (nodes).
    pub fn num_functions(&self) -> usize {
        self.callees.len()
    }

    /// The functions `f` calls directly, ascending, deduplicated.
    pub fn callees(&self, f: FuncId) -> &[FuncId] {
        &self.callees[f.index()]
    }

    /// The functions that call `f` directly, ascending, deduplicated.
    pub fn callers(&self, f: FuncId) -> &[FuncId] {
        &self.callers[f.index()]
    }

    /// Total number of call edges (after deduplication).
    pub fn num_edges(&self) -> usize {
        self.callees.iter().map(Vec::len).sum()
    }

    /// Condenses the graph into its strongly connected components with
    /// iterative Tarjan. Components are emitted callees-first (reverse
    /// topological order of the component DAG), which is exactly the
    /// bottom-up order summary propagation wants.
    pub fn condense(&self) -> Condensation {
        let n = self.num_functions();
        const UNVISITED: u32 = u32::MAX;
        let mut index = vec![UNVISITED; n];
        let mut lowlink = vec![0u32; n];
        let mut on_stack = vec![false; n];
        let mut stack: Vec<u32> = Vec::new();
        let mut next_index = 0u32;
        let mut sccs: Vec<Vec<FuncId>> = Vec::new();
        let mut comp_of = vec![0u32; n];

        // Iterative DFS: (node, next-callee-cursor).
        let mut dfs: Vec<(u32, usize)> = Vec::new();
        for root in 0..n as u32 {
            if index[root as usize] != UNVISITED {
                continue;
            }
            dfs.push((root, 0));
            index[root as usize] = next_index;
            lowlink[root as usize] = next_index;
            next_index += 1;
            stack.push(root);
            on_stack[root as usize] = true;

            while let Some(&mut (v, ref mut cursor)) = dfs.last_mut() {
                let vi = v as usize;
                if let Some(&w) = self.callees[vi].get(*cursor) {
                    *cursor += 1;
                    let wi = w.index();
                    if index[wi] == UNVISITED {
                        index[wi] = next_index;
                        lowlink[wi] = next_index;
                        next_index += 1;
                        stack.push(wi as u32);
                        on_stack[wi] = true;
                        dfs.push((wi as u32, 0));
                    } else if on_stack[wi] {
                        lowlink[vi] = lowlink[vi].min(index[wi]);
                    }
                } else {
                    dfs.pop();
                    if let Some(&(parent, _)) = dfs.last() {
                        let pi = parent as usize;
                        lowlink[pi] = lowlink[pi].min(lowlink[vi]);
                    }
                    if lowlink[vi] == index[vi] {
                        // v is an SCC root: pop its component.
                        let mut comp = Vec::new();
                        loop {
                            let w = stack.pop().expect("Tarjan stack underflow");
                            on_stack[w as usize] = false;
                            comp_of[w as usize] = sccs.len() as u32;
                            comp.push(FuncId::from_index(w as usize));
                            if w == v {
                                break;
                            }
                        }
                        comp.sort_unstable();
                        sccs.push(comp);
                    }
                }
            }
        }

        let recursive = sccs
            .iter()
            .map(|comp| {
                comp.len() > 1 || comp.iter().any(|&f| self.callees(f).binary_search(&f).is_ok())
            })
            .collect();

        // Cross-component call edges, per caller component, sorted and
        // deduplicated. Tarjan emits callees first, so every recorded edge
        // points at a strictly smaller component index.
        let mut callee_comps: Vec<Vec<u32>> = vec![Vec::new(); sccs.len()];
        for (f, cs) in self.callees.iter().enumerate() {
            let cf = comp_of[f];
            for &g in cs {
                let cg = comp_of[g.index()];
                if cg != cf {
                    debug_assert!(cg < cf, "condensation order must be callees-first");
                    callee_comps[cf as usize].push(cg);
                }
            }
        }
        for cs in &mut callee_comps {
            cs.sort_unstable();
            cs.dedup();
        }

        Condensation { sccs, comp_of, recursive, callee_comps }
    }
}

/// The SCC condensation of a [`CallGraph`], in bottom-up order.
#[derive(Clone, Debug)]
pub struct Condensation {
    /// Components in callees-first order; members ascending by [`FuncId`].
    sccs: Vec<Vec<FuncId>>,
    /// `comp_of[f]` — index into `sccs` of `f`'s component.
    comp_of: Vec<u32>,
    /// Whether the component contains a cycle (multi-member, or a
    /// self-calling function).
    recursive: Vec<bool>,
    /// `callee_comps[i]` — components that members of `i` call into,
    /// excluding `i` itself; ascending, deduplicated. Every entry is
    /// strictly smaller than `i` (callees-first emission order).
    callee_comps: Vec<Vec<u32>>,
}

impl Condensation {
    /// Number of components.
    pub fn len(&self) -> usize {
        self.sccs.len()
    }

    /// Whether the module had no functions at all.
    pub fn is_empty(&self) -> bool {
        self.sccs.is_empty()
    }

    /// Component `i`'s members, ascending by id.
    pub fn members(&self, i: usize) -> &[FuncId] {
        &self.sccs[i]
    }

    /// The component index of function `f`.
    pub fn component_of(&self, f: FuncId) -> usize {
        self.comp_of[f.index()] as usize
    }

    /// Whether component `i` contains a call cycle.
    pub fn is_recursive(&self, i: usize) -> bool {
        self.recursive[i]
    }

    /// Number of recursive components.
    pub fn num_recursive(&self) -> usize {
        self.recursive.iter().filter(|&&r| r).count()
    }

    /// Components in bottom-up (callees-before-callers) order.
    pub fn bottom_up(&self) -> impl Iterator<Item = (usize, &[FuncId])> {
        self.sccs.iter().enumerate().map(|(i, c)| (i, c.as_slice()))
    }

    /// The components that members of `i` call into (excluding `i`
    /// itself), ascending and deduplicated. Every entry is strictly
    /// smaller than `i`.
    pub fn callee_components(&self, i: usize) -> &[u32] {
        &self.callee_comps[i]
    }

    /// Kahn levelization of the component DAG: returns the components
    /// grouped into wavefront layers, bottom-up. Layer 0 holds the
    /// components with no cross-component callees; a component's layer is
    /// `1 + max(layer of its callee components)`. Components within a
    /// layer share no call edges in either direction, so their summaries
    /// can be solved independently (and, in particular, concurrently).
    ///
    /// Within each layer, component indices are ascending; concatenating
    /// the layers yields a valid bottom-up order. Deterministic: depends
    /// only on the module.
    pub fn layers(&self) -> Vec<Vec<u32>> {
        if self.sccs.is_empty() {
            return Vec::new();
        }
        // One forward pass suffices: callee components always have
        // smaller indices, so their levels are already final.
        let mut level = vec![0u32; self.sccs.len()];
        let mut max_level = 0u32;
        for c in 0..self.sccs.len() {
            let l = self.callee_comps[c].iter().map(|&d| level[d as usize] + 1).max().unwrap_or(0);
            level[c] = l;
            max_level = max_level.max(l);
        }
        let mut layers: Vec<Vec<u32>> = vec![Vec::new(); max_level as usize + 1];
        for (c, &l) in level.iter().enumerate() {
            layers[l as usize].push(c as u32);
        }
        layers
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::function::Function;
    use crate::types::Type;

    /// Builds a module whose call structure is given by `edges` over
    /// `n` trivial functions.
    fn call_module(n: usize, edges: &[(usize, usize)]) -> Module {
        let mut m = Module::new();
        for i in 0..n {
            m.declare_function(format!("f{i}"), vec![], Some(Type::Int));
        }
        for i in 0..n {
            let fid = FuncId::from_index(i);
            let callees: Vec<usize> =
                edges.iter().filter(|(a, _)| *a == i).map(|(_, b)| *b).collect();
            let f: &mut Function = m.function_mut(fid);
            let entry = f.entry();
            for c in callees {
                f.append_inst(
                    entry,
                    InstKind::Call { callee: FuncId::from_index(c), args: vec![] },
                    Some(Type::Int),
                );
            }
            let zero = f.add_const(0);
            f.append_inst(entry, InstKind::Ret(Some(zero)), None);
        }
        m
    }

    #[test]
    fn edges_are_deduplicated_and_sorted() {
        let m = call_module(3, &[(0, 2), (0, 1), (0, 2), (1, 2)]);
        let cg = CallGraph::build(&m);
        assert_eq!(cg.callees(FuncId::from_index(0)).len(), 2);
        assert_eq!(cg.callers(FuncId::from_index(2)).len(), 2);
        assert_eq!(cg.num_edges(), 3);
        assert_eq!(cg.num_functions(), 3);
    }

    #[test]
    fn chain_condenses_bottom_up() {
        // 0 -> 1 -> 2: bottom-up order must visit 2 before 1 before 0.
        let m = call_module(3, &[(0, 1), (1, 2)]);
        let cond = CallGraph::build(&m).condense();
        assert_eq!(cond.len(), 3);
        assert!(!cond.is_empty());
        let order: Vec<usize> = cond.bottom_up().map(|(_, c)| c[0].index()).collect();
        assert_eq!(order, vec![2, 1, 0]);
        assert_eq!(cond.num_recursive(), 0);
    }

    #[test]
    fn self_loop_is_recursive() {
        let m = call_module(2, &[(0, 0), (0, 1)]);
        let cond = CallGraph::build(&m).condense();
        let c0 = cond.component_of(FuncId::from_index(0));
        assert!(cond.is_recursive(c0));
        let c1 = cond.component_of(FuncId::from_index(1));
        assert!(!cond.is_recursive(c1));
        // Leaf first.
        assert!(c1 < c0);
    }

    #[test]
    fn mutual_recursion_is_one_component() {
        // 0 <-> 1, both call 2.
        let m = call_module(3, &[(0, 1), (1, 0), (0, 2), (1, 2)]);
        let cond = CallGraph::build(&m).condense();
        assert_eq!(cond.len(), 2);
        let c = cond.component_of(FuncId::from_index(0));
        assert_eq!(c, cond.component_of(FuncId::from_index(1)));
        assert!(cond.is_recursive(c));
        assert_eq!(cond.members(c).len(), 2);
        // The shared leaf comes first in bottom-up order.
        assert_eq!(cond.component_of(FuncId::from_index(2)), 0);
    }

    #[test]
    fn callees_always_precede_callers() {
        // A small DAG with a diamond and a cycle: 0->1, 0->2, 1->3, 2->3,
        // 3->4, 4->3 (cycle {3,4}).
        let m = call_module(5, &[(0, 1), (0, 2), (1, 3), (2, 3), (3, 4), (4, 3)]);
        let cg = CallGraph::build(&m);
        let cond = cg.condense();
        for (fi, f) in (0..5).map(|i| (i, FuncId::from_index(i))) {
            for &g in cg.callees(f) {
                if cond.component_of(f) != cond.component_of(g) {
                    assert!(
                        cond.component_of(g) < cond.component_of(f),
                        "callee f{} must come before caller f{fi}",
                        g.index()
                    );
                }
            }
        }
        assert_eq!(cond.num_recursive(), 1);
    }

    #[test]
    fn empty_module_condenses_to_nothing() {
        let cond = CallGraph::build(&Module::new()).condense();
        assert!(cond.is_empty());
        assert_eq!(cond.len(), 0);
        assert!(cond.layers().is_empty());
    }

    /// Checks the structural layer invariants on any condensation:
    /// every component appears exactly once, layers concatenate to a
    /// bottom-up order, and every cross-component call edge crosses to a
    /// strictly lower layer.
    fn assert_layer_invariants(cond: &Condensation) {
        let layers = cond.layers();
        let mut seen = vec![false; cond.len()];
        let mut layer_of = vec![0usize; cond.len()];
        for (l, layer) in layers.iter().enumerate() {
            assert!(!layer.is_empty(), "no layer may be empty");
            assert!(layer.windows(2).all(|w| w[0] < w[1]), "layer indices ascending");
            for &c in layer {
                assert!(!seen[c as usize], "component {c} appears twice");
                seen[c as usize] = true;
                layer_of[c as usize] = l;
            }
        }
        assert!(seen.iter().all(|&s| s), "every component appears in some layer");
        for c in 0..cond.len() {
            for &d in cond.callee_components(c) {
                assert!(
                    layer_of[d as usize] < layer_of[c],
                    "callee component {d} must sit strictly below caller {c}"
                );
            }
        }
    }

    #[test]
    fn chain_layers_are_singletons() {
        let m = call_module(3, &[(0, 1), (1, 2)]);
        let cond = CallGraph::build(&m).condense();
        let layers = cond.layers();
        assert_eq!(layers.len(), 3);
        assert!(layers.iter().all(|l| l.len() == 1));
        assert_layer_invariants(&cond);
    }

    #[test]
    fn diamond_middle_shares_a_layer() {
        // 0 -> {1, 2} -> 3: the two middle functions are independent and
        // must land in the same wavefront.
        let m = call_module(4, &[(0, 1), (0, 2), (1, 3), (2, 3)]);
        let cond = CallGraph::build(&m).condense();
        let layers = cond.layers();
        assert_eq!(layers.len(), 3);
        let mid: Vec<usize> =
            layers[1].iter().map(|&c| cond.members(c as usize)[0].index()).collect();
        assert_eq!(mid, vec![1, 2]);
        assert_layer_invariants(&cond);
    }

    #[test]
    fn disconnected_leaves_share_layer_zero() {
        // Three leaves with no calls at all, plus one caller of f0.
        let m = call_module(4, &[(3, 0)]);
        let cond = CallGraph::build(&m).condense();
        let layers = cond.layers();
        assert_eq!(layers.len(), 2);
        assert_eq!(layers[0].len(), 3);
        assert_eq!(layers[1].len(), 1);
        assert_layer_invariants(&cond);
    }

    #[test]
    fn recursive_component_is_one_layer_node() {
        // Cycle {3,4} feeding a diamond above it (same shape as
        // `callees_always_precede_callers`).
        let m = call_module(5, &[(0, 1), (0, 2), (1, 3), (2, 3), (3, 4), (4, 3)]);
        let cond = CallGraph::build(&m).condense();
        assert_layer_invariants(&cond);
        let layers = cond.layers();
        // {3,4} is the sole layer-0 component; 1 and 2 share layer 1.
        assert_eq!(layers.len(), 3);
        assert_eq!(cond.members(layers[0][0] as usize).len(), 2);
        assert_eq!(layers[1].len(), 2);
        // A self-loop adds no cross-component edge.
        assert!(cond.callee_components(layers[0][0] as usize).is_empty());
    }

    #[test]
    fn callee_components_are_sorted_and_deduplicated() {
        // f3 calls into f0, f1, f2 (several call sites each).
        let m = call_module(4, &[(3, 2), (3, 0), (3, 1), (3, 2), (3, 0)]);
        let cond = CallGraph::build(&m).condense();
        let c3 = cond.component_of(FuncId::from_index(3));
        let cs = cond.callee_components(c3);
        assert_eq!(cs.len(), 3);
        assert!(cs.windows(2).all(|w| w[0] < w[1]));
        assert_layer_invariants(&cond);
    }
}
