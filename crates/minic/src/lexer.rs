//! Lexer for MiniC.

use crate::CompileError;

/// Kinds of tokens.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TokenKind {
    /// Identifier or keyword.
    Ident(String),
    /// Integer literal (always non-negative; `-` is a unary operator).
    Int(i64),
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `{`
    LBrace,
    /// `}`
    RBrace,
    /// `[`
    LBracket,
    /// `]`
    RBracket,
    /// `;`
    Semi,
    /// `,`
    Comma,
    /// `=`
    Assign,
    /// `==`
    EqEq,
    /// `!=`
    NotEq,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `+`
    Plus,
    /// `-`
    Minus,
    /// `*`
    Star,
    /// `/`
    Slash,
    /// `%`
    Percent,
    /// `&&`
    AndAnd,
    /// `||`
    OrOr,
    /// `!`
    Bang,
    /// `&`
    Amp,
    /// `++`
    PlusPlus,
    /// `--`
    MinusMinus,
    /// `+=`
    PlusEq,
    /// `-=`
    MinusEq,
    /// `?`
    Question,
    /// `:`
    Colon,
}

/// A token with its source line.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Token {
    /// What was lexed.
    pub kind: TokenKind,
    /// 1-based source line.
    pub line: u32,
}

/// Lexes `src` into tokens.
///
/// # Errors
///
/// Returns a [`CompileError`] on unknown characters or malformed literals.
pub fn lex(src: &str) -> Result<Vec<Token>, CompileError> {
    let mut out = Vec::new();
    let mut line = 1u32;
    let bytes: Vec<char> = src.chars().collect();
    let mut i = 0usize;
    while i < bytes.len() {
        let c = bytes[i];
        let push = |out: &mut Vec<Token>, kind| out.push(Token { kind, line });
        match c {
            '\n' => {
                line += 1;
                i += 1;
            }
            c if c.is_whitespace() => i += 1,
            '/' if bytes.get(i + 1) == Some(&'/') => {
                while i < bytes.len() && bytes[i] != '\n' {
                    i += 1;
                }
            }
            '/' if bytes.get(i + 1) == Some(&'*') => {
                i += 2;
                while i + 1 < bytes.len() && !(bytes[i] == '*' && bytes[i + 1] == '/') {
                    if bytes[i] == '\n' {
                        line += 1;
                    }
                    i += 1;
                }
                i += 2;
            }
            '(' => {
                push(&mut out, TokenKind::LParen);
                i += 1;
            }
            ')' => {
                push(&mut out, TokenKind::RParen);
                i += 1;
            }
            '{' => {
                push(&mut out, TokenKind::LBrace);
                i += 1;
            }
            '}' => {
                push(&mut out, TokenKind::RBrace);
                i += 1;
            }
            '[' => {
                push(&mut out, TokenKind::LBracket);
                i += 1;
            }
            ']' => {
                push(&mut out, TokenKind::RBracket);
                i += 1;
            }
            ';' => {
                push(&mut out, TokenKind::Semi);
                i += 1;
            }
            '?' => {
                push(&mut out, TokenKind::Question);
                i += 1;
            }
            ':' => {
                push(&mut out, TokenKind::Colon);
                i += 1;
            }
            ',' => {
                push(&mut out, TokenKind::Comma);
                i += 1;
            }
            '=' => {
                if bytes.get(i + 1) == Some(&'=') {
                    push(&mut out, TokenKind::EqEq);
                    i += 2;
                } else {
                    push(&mut out, TokenKind::Assign);
                    i += 1;
                }
            }
            '!' => {
                if bytes.get(i + 1) == Some(&'=') {
                    push(&mut out, TokenKind::NotEq);
                    i += 2;
                } else {
                    push(&mut out, TokenKind::Bang);
                    i += 1;
                }
            }
            '<' => {
                if bytes.get(i + 1) == Some(&'=') {
                    push(&mut out, TokenKind::Le);
                    i += 2;
                } else {
                    push(&mut out, TokenKind::Lt);
                    i += 1;
                }
            }
            '>' => {
                if bytes.get(i + 1) == Some(&'=') {
                    push(&mut out, TokenKind::Ge);
                    i += 2;
                } else {
                    push(&mut out, TokenKind::Gt);
                    i += 1;
                }
            }
            '+' => match bytes.get(i + 1) {
                Some('+') => {
                    push(&mut out, TokenKind::PlusPlus);
                    i += 2;
                }
                Some('=') => {
                    push(&mut out, TokenKind::PlusEq);
                    i += 2;
                }
                _ => {
                    push(&mut out, TokenKind::Plus);
                    i += 1;
                }
            },
            '-' => match bytes.get(i + 1) {
                Some('-') => {
                    push(&mut out, TokenKind::MinusMinus);
                    i += 2;
                }
                Some('=') => {
                    push(&mut out, TokenKind::MinusEq);
                    i += 2;
                }
                _ => {
                    push(&mut out, TokenKind::Minus);
                    i += 1;
                }
            },
            '*' => {
                push(&mut out, TokenKind::Star);
                i += 1;
            }
            '/' => {
                push(&mut out, TokenKind::Slash);
                i += 1;
            }
            '%' => {
                push(&mut out, TokenKind::Percent);
                i += 1;
            }
            '&' => {
                if bytes.get(i + 1) == Some(&'&') {
                    push(&mut out, TokenKind::AndAnd);
                    i += 2;
                } else {
                    push(&mut out, TokenKind::Amp);
                    i += 1;
                }
            }
            '|' => {
                if bytes.get(i + 1) == Some(&'|') {
                    push(&mut out, TokenKind::OrOr);
                    i += 2;
                } else {
                    return Err(CompileError {
                        line,
                        message: "bitwise `|` is not supported".into(),
                    });
                }
            }
            c if c.is_ascii_digit() => {
                let mut n = String::new();
                while i < bytes.len() && bytes[i].is_ascii_digit() {
                    n.push(bytes[i]);
                    i += 1;
                }
                let v = n.parse().map_err(|_| CompileError {
                    line,
                    message: format!("integer literal `{n}` out of range"),
                })?;
                push(&mut out, TokenKind::Int(v));
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let mut id = String::new();
                while i < bytes.len() && (bytes[i].is_ascii_alphanumeric() || bytes[i] == '_') {
                    id.push(bytes[i]);
                    i += 1;
                }
                push(&mut out, TokenKind::Ident(id));
            }
            other => {
                return Err(CompileError {
                    line,
                    message: format!("unexpected character `{other}`"),
                })
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<TokenKind> {
        lex(src).unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn lexes_operators_greedily() {
        use TokenKind::*;
        assert_eq!(
            kinds("a+++b <= c && d != e"),
            vec![
                Ident("a".into()),
                PlusPlus,
                Plus,
                Ident("b".into()),
                Le,
                Ident("c".into()),
                AndAnd,
                Ident("d".into()),
                NotEq,
                Ident("e".into()),
            ]
        );
    }

    #[test]
    fn tracks_lines_through_comments() {
        let toks = lex("a // comment\n/* multi\nline */ b").unwrap();
        assert_eq!(toks[0].line, 1);
        assert_eq!(toks[1].line, 3);
    }

    #[test]
    fn rejects_unknown_characters() {
        assert!(lex("a $ b").is_err());
        assert!(lex("a | b").is_err());
    }

    #[test]
    fn lexes_compound_assignment() {
        use TokenKind::*;
        assert_eq!(
            kinds("x += 1; y -= 2;"),
            vec![Ident("x".into()), PlusEq, Int(1), Semi, Ident("y".into()), MinusEq, Int(2), Semi,]
        );
    }
}
