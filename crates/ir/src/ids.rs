//! Entity identifiers for the IR.
//!
//! All IR entities live in dense arenas and are referred to by `u32`-backed
//! index newtypes. Using newtypes instead of raw indices keeps the distinct
//! index spaces (values, blocks, functions, globals) from being confused at
//! compile time, per the `C-NEWTYPE` API guideline.

use std::fmt;

macro_rules! entity_id {
    ($(#[$doc:meta])* $name:ident, $prefix:expr) => {
        $(#[$doc])*
        #[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
        pub struct $name(u32);

        impl $name {
            /// Creates an id from a dense arena index.
            #[inline]
            pub fn from_index(index: usize) -> Self {
                debug_assert!(index <= u32::MAX as usize);
                Self(index as u32)
            }

            /// Returns the dense arena index of this id.
            #[inline]
            pub fn index(self) -> usize {
                self.0 as usize
            }
        }

        impl fmt::Debug for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }
    };
}

entity_id! {
    /// Identifies an instruction in a [`Function`](crate::Function).
    ///
    /// In this IR every instruction — value-producing or not — has a
    /// `Value` id; instructions such as `store` or terminators simply have
    /// no result type. This mirrors LLVM where `Instruction` is a `Value`.
    Value, "%v"
}

entity_id! {
    /// Identifies a basic block in a [`Function`](crate::Function).
    BlockId, "bb"
}

entity_id! {
    /// Identifies a function in a [`Module`](crate::Module).
    FuncId, "@f"
}

entity_id! {
    /// Identifies a global variable in a [`Module`](crate::Module).
    GlobalId, "@g"
}

/// A dense map from an entity id to `T`, backed by a `Vec`.
///
/// Used instead of hash maps throughout the analyses: entity ids are dense
/// arena indices, so a `Vec` is both faster and simpler.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct EntityMap<T> {
    items: Vec<T>,
}

impl<T: Clone + Default> EntityMap<T> {
    /// Creates a map with `len` default-initialised entries.
    pub fn with_len(len: usize) -> Self {
        Self { items: vec![T::default(); len] }
    }
}

impl<T> EntityMap<T> {
    /// Creates an empty map.
    pub fn new() -> Self {
        Self { items: Vec::new() }
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Whether the map has no entries.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Appends an entry, returning its index.
    pub fn push(&mut self, item: T) -> usize {
        self.items.push(item);
        self.items.len() - 1
    }

    /// Iterates over the entries.
    pub fn iter(&self) -> std::slice::Iter<'_, T> {
        self.items.iter()
    }
}

impl<T> Default for EntityMap<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> std::ops::Index<usize> for EntityMap<T> {
    type Output = T;
    fn index(&self, index: usize) -> &T {
        &self.items[index]
    }
}

impl<T> std::ops::IndexMut<usize> for EntityMap<T> {
    fn index_mut(&mut self, index: usize) -> &mut T {
        &mut self.items[index]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_round_trip_indices() {
        let v = Value::from_index(42);
        assert_eq!(v.index(), 42);
        let b = BlockId::from_index(0);
        assert_eq!(b.index(), 0);
    }

    #[test]
    fn ids_display_with_prefix() {
        assert_eq!(Value::from_index(3).to_string(), "%v3");
        assert_eq!(BlockId::from_index(7).to_string(), "bb7");
        assert_eq!(FuncId::from_index(1).to_string(), "@f1");
        assert_eq!(GlobalId::from_index(0).to_string(), "@g0");
    }

    #[test]
    fn ids_order_by_index() {
        assert!(Value::from_index(1) < Value::from_index(2));
    }

    #[test]
    fn entity_map_push_and_index() {
        let mut m = EntityMap::new();
        let i = m.push("a");
        let j = m.push("b");
        assert_eq!(m[i], "a");
        assert_eq!(m[j], "b");
        assert_eq!(m.len(), 2);
    }
}
