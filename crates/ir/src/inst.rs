//! Instructions of the IR.
//!
//! The instruction set is a distilled LLVM: arithmetic, comparisons, φ,
//! copies (used by the e-SSA transform of the paper's Figure 5), allocation
//! sites, GEP-style pointer arithmetic, loads/stores, direct calls and the
//! three terminators. Constants and parameters are modelled as instructions
//! pinned to the entry block so that *every* value has a defining
//! instruction, which keeps the dominance-based reasoning of the analyses
//! uniform.

use crate::ids::{BlockId, FuncId, GlobalId, Value};
use crate::types::Type;
use std::fmt;

/// Binary integer operations.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum BinOp {
    /// Wrapping addition.
    Add,
    /// Wrapping subtraction.
    Sub,
    /// Wrapping multiplication.
    Mul,
    /// Signed division (traps on zero divisor in the interpreter).
    Div,
    /// Signed remainder (traps on zero divisor in the interpreter).
    Rem,
}

impl BinOp {
    /// Mnemonic used by the textual format.
    pub fn mnemonic(self) -> &'static str {
        match self {
            BinOp::Add => "add",
            BinOp::Sub => "sub",
            BinOp::Mul => "mul",
            BinOp::Div => "div",
            BinOp::Rem => "rem",
        }
    }
}

/// Signed comparison predicates.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Pred {
    /// `<` strictly less than.
    Lt,
    /// `<=` less than or equal.
    Le,
    /// `>` strictly greater than.
    Gt,
    /// `>=` greater than or equal.
    Ge,
    /// `==` equal.
    Eq,
    /// `!=` not equal.
    Ne,
}

impl Pred {
    /// Mnemonic used by the textual format.
    pub fn mnemonic(self) -> &'static str {
        match self {
            Pred::Lt => "lt",
            Pred::Le => "le",
            Pred::Gt => "gt",
            Pred::Ge => "ge",
            Pred::Eq => "eq",
            Pred::Ne => "ne",
        }
    }

    /// The predicate with operands swapped (`a < b` ⇔ `b > a`).
    pub fn swapped(self) -> Pred {
        match self {
            Pred::Lt => Pred::Gt,
            Pred::Le => Pred::Ge,
            Pred::Gt => Pred::Lt,
            Pred::Ge => Pred::Le,
            Pred::Eq => Pred::Eq,
            Pred::Ne => Pred::Ne,
        }
    }

    /// The logical negation (`!(a < b)` ⇔ `a >= b`).
    pub fn negated(self) -> Pred {
        match self {
            Pred::Lt => Pred::Ge,
            Pred::Le => Pred::Gt,
            Pred::Gt => Pred::Le,
            Pred::Ge => Pred::Lt,
            Pred::Eq => Pred::Ne,
            Pred::Ne => Pred::Eq,
        }
    }

    /// Evaluates the predicate on concrete values.
    pub fn eval(self, a: i64, b: i64) -> bool {
        match self {
            Pred::Lt => a < b,
            Pred::Le => a <= b,
            Pred::Gt => a > b,
            Pred::Ge => a >= b,
            Pred::Eq => a == b,
            Pred::Ne => a != b,
        }
    }
}

/// Why an [`InstKind::Copy`] exists.
///
/// The e-SSA transform (paper Figure 5) splits live ranges by inserting
/// copies; constraint generation (paper Figure 7) needs to know which
/// syntactic situation created each copy to pick the right rule.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum CopyOrigin {
    /// An ordinary copy with no analysis significance.
    Plain,
    /// σ-copy on the *true* edge of the branch guarded by comparison `cmp`.
    SigmaTrue {
        /// The comparison instruction guarding the branch.
        cmp: Value,
    },
    /// σ-copy on the *false* edge of the branch guarded by comparison `cmp`.
    SigmaFalse {
        /// The comparison instruction guarding the branch.
        cmp: Value,
    },
    /// Live-range split of the subtrahend-side operand of a subtraction:
    /// for `x1 = x2 - n` (`n > 0`) the transform emits `x3 = x2` in
    /// parallel, and rule 3 of Figure 7 gives `LT(x3) = {x1} ∪ LT(x2)`.
    SubSplit {
        /// The subtraction (or negative-increment gep) instruction `x1`.
        sub: Value,
    },
}

/// An instruction. See the module docs for the design rationale.
#[derive(Clone, Debug, PartialEq)]
pub enum InstKind {
    /// Integer constant.
    Const(i64),
    /// The `index`-th formal parameter of the enclosing function.
    Param(u32),
    /// Binary arithmetic on integers or pointer differences.
    Binary {
        /// Operation.
        op: BinOp,
        /// Left operand.
        lhs: Value,
        /// Right operand.
        rhs: Value,
    },
    /// Signed comparison producing 0 or 1.
    Cmp {
        /// Predicate.
        pred: Pred,
        /// Left operand.
        lhs: Value,
        /// Right operand.
        rhs: Value,
    },
    /// φ-function. One incoming value per predecessor block.
    Phi {
        /// `(predecessor, value)` pairs.
        incomings: Vec<(BlockId, Value)>,
    },
    /// Copy of `src`, inserted by live-range splitting (or the frontend).
    Copy {
        /// The copied value.
        src: Value,
        /// Provenance of the copy (σ / subtraction split / plain).
        origin: CopyOrigin,
    },
    /// Stack allocation of `count` scalar slots; a distinct allocation site.
    Alloca {
        /// Number of scalar elements allocated.
        count: Value,
    },
    /// Heap allocation of `count` scalar slots; a distinct allocation site.
    Malloc {
        /// Number of scalar elements allocated.
        count: Value,
    },
    /// Address of a module global; a distinct allocation site.
    GlobalAddr(GlobalId),
    /// Pointer arithmetic: `base + offset * Type::SIZE` (element-indexed,
    /// like an LLVM `getelementptr` over a scalar array).
    Gep {
        /// Base pointer.
        base: Value,
        /// Element offset (signed).
        offset: Value,
    },
    /// Loads the scalar at `ptr`.
    Load {
        /// Address operand.
        ptr: Value,
    },
    /// Stores `value` to `ptr`. Produces no result.
    Store {
        /// Address operand.
        ptr: Value,
        /// Stored value.
        value: Value,
    },
    /// Direct call. Produces a result iff the callee returns a value.
    Call {
        /// Callee.
        callee: FuncId,
        /// Actual arguments.
        args: Vec<Value>,
    },
    /// An opaque value of the instruction's type (models external input).
    Opaque,
    /// Conditional branch on a non-zero condition. Terminator.
    Br {
        /// Condition value (non-zero means taken).
        cond: Value,
        /// Successor when the condition is non-zero.
        then_bb: BlockId,
        /// Successor when the condition is zero.
        else_bb: BlockId,
    },
    /// Unconditional branch. Terminator.
    Jump(BlockId),
    /// Function return. Terminator.
    Ret(Option<Value>),
}

impl InstKind {
    /// `true` for the three terminators.
    pub fn is_terminator(&self) -> bool {
        matches!(self, InstKind::Br { .. } | InstKind::Jump(_) | InstKind::Ret(_))
    }

    /// `true` for φ-functions.
    pub fn is_phi(&self) -> bool {
        matches!(self, InstKind::Phi { .. })
    }

    /// `true` for instructions that open a new allocation site
    /// (alloca / malloc / global address).
    pub fn is_allocation_site(&self) -> bool {
        matches!(self, InstKind::Alloca { .. } | InstKind::Malloc { .. } | InstKind::GlobalAddr(_))
    }

    /// Calls `f` on every value operand (φ incomings included).
    pub fn for_each_operand(&self, mut f: impl FnMut(Value)) {
        match self {
            InstKind::Const(_)
            | InstKind::Param(_)
            | InstKind::GlobalAddr(_)
            | InstKind::Opaque
            | InstKind::Jump(_) => {}
            InstKind::Binary { lhs, rhs, .. } | InstKind::Cmp { lhs, rhs, .. } => {
                f(*lhs);
                f(*rhs);
            }
            InstKind::Phi { incomings } => {
                for (_, v) in incomings {
                    f(*v);
                }
            }
            InstKind::Copy { src, .. } => f(*src),
            InstKind::Alloca { count } | InstKind::Malloc { count } => f(*count),
            InstKind::Gep { base, offset } => {
                f(*base);
                f(*offset);
            }
            InstKind::Load { ptr } => f(*ptr),
            InstKind::Store { ptr, value } => {
                f(*ptr);
                f(*value);
            }
            InstKind::Call { args, .. } => {
                for a in args {
                    f(*a);
                }
            }
            InstKind::Br { cond, .. } => f(*cond),
            InstKind::Ret(v) => {
                if let Some(v) = v {
                    f(*v);
                }
            }
        }
    }

    /// Calls `f` on a mutable reference to every *non-φ* value operand.
    ///
    /// φ operands are excluded because their uses semantically occur on the
    /// incoming edge, not inside the block holding the φ; rewrites of φ
    /// operands must go through
    /// [`for_each_phi_operand_mut`](Self::for_each_phi_operand_mut) so the
    /// caller is forced to make that distinction (the e-SSA renaming of the
    /// paper depends on it).
    pub fn for_each_operand_mut(&mut self, mut f: impl FnMut(&mut Value)) {
        match self {
            InstKind::Const(_)
            | InstKind::Param(_)
            | InstKind::GlobalAddr(_)
            | InstKind::Opaque
            | InstKind::Jump(_)
            | InstKind::Phi { .. } => {}
            InstKind::Binary { lhs, rhs, .. } | InstKind::Cmp { lhs, rhs, .. } => {
                f(lhs);
                f(rhs);
            }
            InstKind::Copy { src, .. } => f(src),
            InstKind::Alloca { count } | InstKind::Malloc { count } => f(count),
            InstKind::Gep { base, offset } => {
                f(base);
                f(offset);
            }
            InstKind::Load { ptr } => f(ptr),
            InstKind::Store { ptr, value } => {
                f(ptr);
                f(value);
            }
            InstKind::Call { args, .. } => {
                for a in args {
                    f(a);
                }
            }
            InstKind::Br { cond, .. } => f(cond),
            InstKind::Ret(v) => {
                if let Some(v) = v {
                    f(v);
                }
            }
        }
    }

    /// Calls `f` with `(incoming block, value slot)` for each φ operand.
    pub fn for_each_phi_operand_mut(&mut self, mut f: impl FnMut(&mut BlockId, &mut Value)) {
        if let InstKind::Phi { incomings } = self {
            for (b, v) in incomings {
                f(b, v);
            }
        }
    }

    /// Successor blocks if this is a terminator.
    pub fn successors(&self) -> Vec<BlockId> {
        match self {
            InstKind::Br { then_bb, else_bb, .. } => vec![*then_bb, *else_bb],
            InstKind::Jump(b) => vec![*b],
            _ => vec![],
        }
    }

    /// Rewrites terminator successor `from` to `to` (all occurrences).
    pub fn replace_successor(&mut self, from: BlockId, to: BlockId) {
        match self {
            InstKind::Br { then_bb, else_bb, .. } => {
                if *then_bb == from {
                    *then_bb = to;
                }
                if *else_bb == from {
                    *else_bb = to;
                }
            }
            InstKind::Jump(b) if *b == from => {
                *b = to;
            }
            _ => {}
        }
    }
}

/// An instruction together with its result type and placement.
#[derive(Clone, Debug, PartialEq)]
pub struct InstData {
    /// What the instruction does.
    pub kind: InstKind,
    /// Result type; `None` for stores and terminators.
    pub ty: Option<Type>,
    /// The block currently holding the instruction, if attached.
    pub block: Option<BlockId>,
}

impl InstData {
    /// Creates detached instruction data.
    pub fn new(kind: InstKind, ty: Option<Type>) -> Self {
        Self { kind, ty, block: None }
    }

    /// `true` if the instruction produces a result value.
    pub fn has_result(&self) -> bool {
        self.ty.is_some()
    }
}

impl fmt::Display for BinOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.mnemonic())
    }
}

impl fmt::Display for Pred {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.mnemonic())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(i: usize) -> Value {
        Value::from_index(i)
    }

    #[test]
    fn pred_negation_is_involutive() {
        for p in [Pred::Lt, Pred::Le, Pred::Gt, Pred::Ge, Pred::Eq, Pred::Ne] {
            assert_eq!(p.negated().negated(), p);
            assert_eq!(p.swapped().swapped(), p);
        }
    }

    #[test]
    fn pred_eval_agrees_with_negation() {
        for p in [Pred::Lt, Pred::Le, Pred::Gt, Pred::Ge, Pred::Eq, Pred::Ne] {
            for a in -2..=2i64 {
                for b in -2..=2i64 {
                    assert_eq!(p.eval(a, b), !p.negated().eval(a, b));
                    assert_eq!(p.eval(a, b), p.swapped().eval(b, a));
                }
            }
        }
    }

    #[test]
    fn operands_cover_phi_incomings() {
        let k = InstKind::Phi {
            incomings: vec![(BlockId::from_index(0), v(1)), (BlockId::from_index(1), v(2))],
        };
        let mut seen = vec![];
        k.for_each_operand(|x| seen.push(x));
        assert_eq!(seen, vec![v(1), v(2)]);
    }

    #[test]
    fn operand_mut_skips_phis() {
        let mut k = InstKind::Phi { incomings: vec![(BlockId::from_index(0), v(1))] };
        let mut n = 0;
        k.for_each_operand_mut(|_| n += 1);
        assert_eq!(n, 0, "phi operands must only be rewritten via the phi-specific hook");
        let mut m = 0;
        k.for_each_phi_operand_mut(|_, _| m += 1);
        assert_eq!(m, 1);
    }

    #[test]
    fn successors_of_terminators() {
        let br = InstKind::Br {
            cond: v(0),
            then_bb: BlockId::from_index(1),
            else_bb: BlockId::from_index(2),
        };
        assert_eq!(br.successors().len(), 2);
        assert!(br.is_terminator());
        let mut j = InstKind::Jump(BlockId::from_index(5));
        j.replace_successor(BlockId::from_index(5), BlockId::from_index(9));
        assert_eq!(j.successors(), vec![BlockId::from_index(9)]);
        assert!(!InstKind::Const(3).is_terminator());
    }

    #[test]
    fn allocation_sites_are_flagged() {
        assert!(InstKind::Alloca { count: v(0) }.is_allocation_site());
        assert!(InstKind::Malloc { count: v(0) }.is_allocation_site());
        assert!(InstKind::GlobalAddr(GlobalId::from_index(0)).is_allocation_site());
        assert!(!InstKind::Load { ptr: v(0) }.is_allocation_site());
    }
}
