//! Constant folding and algebraic simplification.
//!
//! Rewrites instructions *in place* (the value id is preserved, so no
//! use-rewriting is needed):
//!
//! * `c1 ⊕ c2` → `const` (division by a zero constant is left alone — it
//!   must still trap at run time);
//! * `x + 0`, `x - 0`, `x * 1` → `copy x`; `x * 0` → `const 0`;
//! * `x - x` → `const 0`; `x == x` → `const 1`; `x != x` / `x < x` → `const 0`;
//! * `cmp c1 c2` → `const 0/1`;
//! * `φ(c, c, …, c)` over one single constant value → `const c`;
//! * `copy` of a constant → that constant;
//! * `gep p, 0` → `copy p`.
//!
//! Runs to a fixpoint and reports the number of rewrites.

use crate::function::Function;
use crate::ids::Value;
use crate::inst::{BinOp, CopyOrigin, InstKind};

/// Folds constants in `func` until nothing changes; returns the number of
/// instructions rewritten.
pub fn fold_constants(func: &mut Function) -> usize {
    let mut total = 0usize;
    loop {
        let mut changed = 0usize;
        let worklist: Vec<Value> =
            func.block_ids().flat_map(|b| func.block(b).insts.clone()).collect();
        for v in worklist {
            let as_const = |f: &Function, x: Value| match f.inst(x).kind {
                InstKind::Const(c) => Some(c),
                _ => None,
            };
            let new_kind: Option<InstKind> = match &func.inst(v).kind {
                InstKind::Binary { op, lhs, rhs } => {
                    let (op, lhs, rhs) = (*op, *lhs, *rhs);
                    match (as_const(func, lhs), as_const(func, rhs)) {
                        (Some(a), Some(b)) => match op {
                            BinOp::Add => Some(InstKind::Const(a.wrapping_add(b))),
                            BinOp::Sub => Some(InstKind::Const(a.wrapping_sub(b))),
                            BinOp::Mul => Some(InstKind::Const(a.wrapping_mul(b))),
                            BinOp::Div if b != 0 => Some(InstKind::Const(a.wrapping_div(b))),
                            BinOp::Rem if b != 0 => Some(InstKind::Const(a.wrapping_rem(b))),
                            _ => None, // division by zero must keep trapping
                        },
                        (_, Some(0)) if matches!(op, BinOp::Add | BinOp::Sub) => {
                            Some(InstKind::Copy { src: lhs, origin: CopyOrigin::Plain })
                        }
                        (Some(0), _) if op == BinOp::Add => {
                            Some(InstKind::Copy { src: rhs, origin: CopyOrigin::Plain })
                        }
                        (_, Some(1)) if op == BinOp::Mul => {
                            Some(InstKind::Copy { src: lhs, origin: CopyOrigin::Plain })
                        }
                        (Some(1), _) if op == BinOp::Mul => {
                            Some(InstKind::Copy { src: rhs, origin: CopyOrigin::Plain })
                        }
                        (_, Some(0)) | (Some(0), _) if op == BinOp::Mul => Some(InstKind::Const(0)),
                        _ if lhs == rhs && op == BinOp::Sub => Some(InstKind::Const(0)),
                        _ => None,
                    }
                }
                InstKind::Cmp { pred, lhs, rhs } => {
                    let (pred, lhs, rhs) = (*pred, *lhs, *rhs);
                    match (as_const(func, lhs), as_const(func, rhs)) {
                        (Some(a), Some(b)) => Some(InstKind::Const(pred.eval(a, b) as i64)),
                        _ if lhs == rhs => {
                            // x ⋈ x is decidable for every predicate.
                            Some(InstKind::Const(pred.eval(0, 0) as i64))
                        }
                        _ => None,
                    }
                }
                InstKind::Copy { src, .. } => as_const(func, *src).map(InstKind::Const),
                InstKind::Phi { incomings } => {
                    let consts: Vec<Option<i64>> =
                        incomings.iter().map(|(_, x)| as_const(func, *x)).collect();
                    match consts.split_first() {
                        Some((Some(first), rest)) if rest.iter().all(|c| *c == Some(*first)) => {
                            Some(InstKind::Const(*first))
                        }
                        _ => None,
                    }
                }
                InstKind::Gep { base, offset } => {
                    if as_const(func, *offset) == Some(0) {
                        Some(InstKind::Copy { src: *base, origin: CopyOrigin::Plain })
                    } else {
                        None
                    }
                }
                _ => None,
            };
            if let Some(kind) = new_kind {
                func.inst_mut(v).kind = kind;
                changed += 1;
            }
        }
        if changed == 0 {
            break;
        }
        total += changed;
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FunctionBuilder;
    use crate::inst::Pred;
    use crate::types::Type;
    use crate::verifier::verify_function;

    #[test]
    fn folds_arithmetic_chains() {
        let mut f = Function::new("t", Vec::<(&str, Type)>::new(), Some(Type::Int));
        let mut b = FunctionBuilder::new(&mut f);
        let two = b.iconst(2);
        let three = b.iconst(3);
        let s = b.binary(BinOp::Add, two, three); // 5
        let p = b.binary(BinOp::Mul, s, s); // 25 after one more round
        b.ret(Some(p));
        b.finish();
        let n = fold_constants(&mut f);
        assert!(n >= 2, "both ops fold: {n}");
        assert_eq!(f.inst(p).kind, InstKind::Const(25));
        verify_function(&f, None).unwrap();
    }

    #[test]
    fn preserves_division_by_zero() {
        let mut f = Function::new("t", Vec::<(&str, Type)>::new(), Some(Type::Int));
        let mut b = FunctionBuilder::new(&mut f);
        let one = b.iconst(1);
        let zero = b.iconst(0);
        let d = b.binary(BinOp::Div, one, zero);
        b.ret(Some(d));
        b.finish();
        fold_constants(&mut f);
        assert!(
            matches!(f.inst(d).kind, InstKind::Binary { op: BinOp::Div, .. }),
            "1/0 must keep trapping at run time"
        );
    }

    #[test]
    fn identities_become_copies() {
        let mut f = Function::new("t", vec![("x", Type::Int)], Some(Type::Int));
        let mut b = FunctionBuilder::new(&mut f);
        let x = b.param(0);
        let zero = b.iconst(0);
        let one = b.iconst(1);
        let a = b.binary(BinOp::Add, x, zero);
        let m = b.binary(BinOp::Mul, a, one);
        let z = b.binary(BinOp::Sub, m, m);
        b.ret(Some(z));
        b.finish();
        fold_constants(&mut f);
        assert!(matches!(f.inst(a).kind, InstKind::Copy { src, .. } if src == x));
        assert!(matches!(f.inst(m).kind, InstKind::Copy { src, .. } if src == a));
        assert_eq!(f.inst(z).kind, InstKind::Const(0));
        verify_function(&f, None).unwrap();
    }

    #[test]
    fn reflexive_comparisons_fold() {
        let mut f = Function::new("t", vec![("x", Type::Int)], Some(Type::Int));
        let mut b = FunctionBuilder::new(&mut f);
        let x = b.param(0);
        let lt = b.cmp(Pred::Lt, x, x);
        let eq = b.cmp(Pred::Eq, x, x);
        let s = b.binary(BinOp::Add, lt, eq);
        b.ret(Some(s));
        b.finish();
        fold_constants(&mut f);
        assert_eq!(f.inst(lt).kind, InstKind::Const(0));
        assert_eq!(f.inst(eq).kind, InstKind::Const(1));
        assert_eq!(f.inst(s).kind, InstKind::Const(1));
    }
}
