//! The `DisambiguationEngine` — one owner for the whole analysis stack.
//!
//! ```text
//!             e-SSA lowering        constraint generation
//! SSA module ───(sraa-essa)──▶ e-SSA ──(Figure 7, per-function,──▶ ConstraintSystem
//!                                        scoped threads)                 │
//!                                                          FixpointSolver│(SolverKind)
//!                                                                        ▼
//!        queries (memoized pair cache, batch API) ◀────────────────  Solution
//! ```
//!
//! Historically every consumer — the alias backends, the Pentagon
//! adapter, the optimisation passes, the PDG builder, the CLI — picked a
//! solver itself and re-plumbed the e-SSA → constraints → solve pipeline.
//! The engine centralises that: it owns the interned [`VarIndex`] arena,
//! runs constraint generation (fanning the per-function pass out across
//! scoped threads on large modules), solves with a pluggable
//! [`FixpointSolver`] strategy selected by [`SolverKind`], and serves all
//! disambiguation queries from one memoized result cache. Consumers hold
//! an engine (usually behind an `Arc`) and ask questions; none of them
//! constructs solvers anymore.

use crate::analysis::{derived_pointer, strip_copies};
use crate::constraints::{self, Constraint, GenConfig};
use crate::fast_solver::solve_fast_with;
use crate::jobs::Jobs;
use crate::lattice::LatticeBackend;
use crate::persist;
use crate::solver::{solve_with, Solution, SolveStats};
use crate::store::{SharedSummaryStore, StoreOutcome};
use crate::summary::{CacheOutcome, FunctionSummary, ModuleSummaries};
use crate::var_index::VarIndex;
use sraa_ir::{FuncId, Function, InstKind, Module, Type, Value};
use sraa_range::RangeAnalysis;
use std::collections::HashMap;
use std::sync::Mutex;

/// A fixpoint strategy over the paper's constraint lattice. Both
/// implementations return the same [`Solution`] representation and — by
/// construction and by differential test — the same fixpoint; they differ
/// only in scheduling.
pub trait FixpointSolver: Sync {
    /// Short name used in reports and CLI flags.
    fn name(&self) -> &'static str;

    /// Solves the constraint system over `num_vars` variables with an
    /// explicit lattice-store backend.
    fn solve_with(
        &self,
        constraints: &[Constraint],
        num_vars: usize,
        lattice: LatticeBackend,
    ) -> Solution;

    /// Solves with the measured-default backend selection
    /// ([`LatticeBackend::Auto`]).
    fn solve(&self, constraints: &[Constraint], num_vars: usize) -> Solution {
        self.solve_with(constraints, num_vars, LatticeBackend::Auto)
    }
}

/// The paper's §3.4 FIFO worklist (baseline fidelity).
#[derive(Clone, Copy, Debug, Default)]
pub struct WorklistSolver;

impl FixpointSolver for WorklistSolver {
    fn name(&self) -> &'static str {
        "worklist"
    }

    fn solve_with(
        &self,
        constraints: &[Constraint],
        num_vars: usize,
        lattice: LatticeBackend,
    ) -> Solution {
        solve_with(constraints, num_vars, lattice)
    }
}

/// The SCC-condensation solver (§6's open problem; the default).
#[derive(Clone, Copy, Debug, Default)]
pub struct SccSolver;

impl FixpointSolver for SccSolver {
    fn name(&self) -> &'static str {
        "scc"
    }

    fn solve_with(
        &self,
        constraints: &[Constraint],
        num_vars: usize,
        lattice: LatticeBackend,
    ) -> Solution {
        solve_fast_with(constraints, num_vars, lattice)
    }
}

/// Which fixpoint strategy the engine runs.
///
/// * [`SolverKind::Worklist`] — the paper's §3.4 FIFO worklist; ≈2 pops
///   per constraint in practice, kept as the executable specification.
/// * [`SolverKind::Scc`] — Tarjan condensation with topological
///   scheduling and union-cycle short-circuiting; exactly one evaluation
///   per constraint on acyclic systems. **The default**: every consumer
///   that doesn't say otherwise gets the fast path.
///
/// Both produce identical solutions (differentially tested across the
/// corpus), so the choice is purely a performance knob — exposed as the
/// `--solver {worklist,scc}` CLI flag.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum SolverKind {
    /// The paper-faithful FIFO worklist solver.
    Worklist,
    /// The SCC-condensation solver (default).
    #[default]
    Scc,
}

impl SolverKind {
    /// Every strategy, in presentation order.
    pub const ALL: [SolverKind; 2] = [SolverKind::Worklist, SolverKind::Scc];

    /// Parses a CLI-style name (`"worklist"` / `"scc"`).
    pub fn parse(s: &str) -> Option<SolverKind> {
        match s {
            "worklist" => Some(SolverKind::Worklist),
            "scc" => Some(SolverKind::Scc),
            _ => None,
        }
    }

    /// The CLI-style name.
    pub fn as_str(self) -> &'static str {
        self.solver().name()
    }

    /// The strategy implementation.
    pub fn solver(self) -> &'static dyn FixpointSolver {
        match self {
            SolverKind::Worklist => &WorklistSolver,
            SolverKind::Scc => &SccSolver,
        }
    }
}

impl std::fmt::Display for SolverKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// How much of the call graph the analysis sees.
///
/// * [`Contextuality::Intra`] — the paper's setting: every call result is
///   opaque (`LT(r) = ∅`); facts never cross call boundaries (the
///   pseudo-φs still flow caller facts *into* callees).
/// * [`Contextuality::Summaries`] — bottom-up interprocedural summaries
///   ([`ModuleSummaries`]): each function's context-free `param_j < ret`
///   facts are distilled over the condensed call graph (fixpoint inside
///   recursive components) and applied at every call site, so callers
///   inherit `x < len`-style facts through helpers. Strictly more
///   precise, never less (differentially tested); exposed as the
///   `--interproc` CLI flag.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum Contextuality {
    /// Intraprocedural (paper-faithful): calls are opaque.
    #[default]
    Intra,
    /// Interprocedural bottom-up summaries applied at call sites.
    Summaries,
}

impl Contextuality {
    /// Every mode, in presentation order.
    pub const ALL: [Contextuality; 2] = [Contextuality::Intra, Contextuality::Summaries];

    /// Parses a CLI-style name (`"intra"` / `"summaries"`).
    pub fn parse(s: &str) -> Option<Contextuality> {
        match s {
            "intra" => Some(Contextuality::Intra),
            "summaries" => Some(Contextuality::Summaries),
            _ => None,
        }
    }

    /// The CLI-style name.
    pub fn as_str(self) -> &'static str {
        match self {
            Contextuality::Intra => "intra",
            Contextuality::Summaries => "summaries",
        }
    }
}

impl std::fmt::Display for Contextuality {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Full engine configuration: constraint-generation options, the fixpoint
/// strategy, the interprocedural mode, and the optional persistent
/// summary cache.
#[derive(Clone, Debug, Default)]
pub struct EngineConfig {
    /// Constraint-generation options (paper fidelity knobs).
    pub gen: GenConfig,
    /// Fixpoint strategy (default: [`SolverKind::Scc`]).
    pub solver: SolverKind,
    /// Interprocedural mode (default: [`Contextuality::Intra`]).
    pub contextuality: Contextuality,
    /// Lattice-store backend for the solvers (default:
    /// [`LatticeBackend::Auto`] — pick by measured constraint-count
    /// threshold). Exposed as the `--lattice {auto,arc,dense}` CLI flag;
    /// every backend yields byte-identical output.
    pub lattice: LatticeBackend,
    /// Path of the persistent summary cache (the CLI's `--summary-cache`).
    /// Only meaningful with [`Contextuality::Summaries`] — the cache
    /// stores interprocedural summaries. When set, the engine reads the
    /// file before the summary phase (any defect falls back to a cold
    /// solve with a warning on stderr, never a panic or a stale result)
    /// and rewrites it afterwards. Hit/miss/invalidated counts land in
    /// [`SolveStats`].
    pub summary_cache: Option<std::path::PathBuf>,
    /// Directory of the content-addressed shared summary store (the
    /// CLI's `--shared-store`). Only meaningful with
    /// [`Contextuality::Summaries`]. Unlike `summary_cache` — one file,
    /// one module name — the store spans *all* modules and processes:
    /// entries are keyed by the content-addressed summary key alone, so
    /// a helper solved under any module (or by another daemon sharing
    /// the directory) is a hit here. Consulted after the per-module
    /// cache; newly solved summaries are published back. A defective
    /// directory falls back to running without the store, with a warning
    /// on stderr. Hit/miss/publish counts land in [`SolveStats`].
    pub shared_store: Option<std::path::PathBuf>,
    /// Worker threads for the wavefront-parallel summary pipeline
    /// (default: [`Jobs::Auto`] — `SRAA_JOBS`, else available
    /// parallelism). Exposed as the `--jobs N` CLI flag; every jobs
    /// value yields byte-identical output.
    pub jobs: Jobs,
}

impl EngineConfig {
    /// This configuration with interprocedural summaries switched on.
    pub fn with_summaries(mut self) -> Self {
        self.contextuality = Contextuality::Summaries;
        self
    }

    /// This configuration with a persistent summary cache at `path`
    /// (implies [`Contextuality::Summaries`]).
    pub fn with_summary_cache(mut self, path: impl Into<std::path::PathBuf>) -> Self {
        self.contextuality = Contextuality::Summaries;
        self.summary_cache = Some(path.into());
        self
    }

    /// This configuration with a content-addressed shared summary store
    /// at `dir` (implies [`Contextuality::Summaries`]). Composes with
    /// [`EngineConfig::with_summary_cache`]: the per-module cache is
    /// consulted first, the store catches what it misses.
    pub fn with_shared_store(mut self, dir: impl Into<std::path::PathBuf>) -> Self {
        self.contextuality = Contextuality::Summaries;
        self.shared_store = Some(dir.into());
        self
    }

    /// This configuration with an explicit lattice-store backend.
    pub fn with_lattice(mut self, lattice: LatticeBackend) -> Self {
        self.lattice = lattice;
        self
    }

    /// This configuration with an explicit worker-thread count for the
    /// summary pipeline.
    pub fn with_jobs(mut self, jobs: Jobs) -> Self {
        self.jobs = jobs;
        self
    }
}

impl From<GenConfig> for EngineConfig {
    fn from(gen: GenConfig) -> Self {
        EngineConfig { gen, ..Default::default() }
    }
}

/// The solved less-than relation over a whole module plus the pointer
/// disambiguation criteria of the paper's Definition 3.11, behind a
/// memoized query layer.
///
/// `no_alias` answers are cached per pointer pair (flat [`VarId`](crate::VarId) pairs
/// are function-scoped, so the cache is effectively per-function); the
/// batch API ([`DisambiguationEngine::no_alias_pairs`]) answers all-pairs
/// queries in one call and warms the same cache. The engine is
/// `Send + Sync` — share it behind an `Arc` instead of cloning results;
/// the cache is sharded so concurrent sharers do not serialize on one
/// lock.
#[derive(Debug)]
pub struct DisambiguationEngine {
    index: VarIndex,
    solution: Solution,
    ranges: RangeAnalysis,
    cfg: GenConfig,
    solver: SolverKind,
    lattice: LatticeBackend,
    /// Interprocedural summaries, when built with
    /// [`Contextuality::Summaries`].
    summaries: Option<ModuleSummaries>,
    /// Memoized pair verdicts, keyed by ordered raw id pairs and sharded
    /// by key so `Arc`-sharing consumers contend on 1/16th of a lock.
    cache: [Mutex<HashMap<(u32, u32), bool>>; CACHE_SHARDS],
}

/// Power of two, so shard selection is a mask.
const CACHE_SHARDS: usize = 16;

fn fresh_cache() -> [Mutex<HashMap<(u32, u32), bool>>; CACHE_SHARDS] {
    std::array::from_fn(|_| Mutex::new(HashMap::new()))
}

impl Clone for DisambiguationEngine {
    fn clone(&self) -> Self {
        Self {
            index: self.index.clone(),
            solution: self.solution.clone(),
            ranges: self.ranges.clone(),
            cfg: self.cfg,
            solver: self.solver,
            lattice: self.lattice,
            summaries: self.summaries.clone(),
            cache: std::array::from_fn(|i| {
                // A poisoning panic cannot leave the map half-updated
                // (single-call insert), so recover the data instead of
                // cascading the panic into every sharer.
                Mutex::new(self.cache[i].lock().unwrap_or_else(|e| e.into_inner()).clone())
            }),
        }
    }
}

impl DisambiguationEngine {
    /// Runs the full pipeline with default (paper-faithful constraints,
    /// SCC solver) settings.
    ///
    /// The module is mutated: it is converted to e-SSA form first.
    pub fn run(module: &mut Module) -> Self {
        Self::build(module, EngineConfig::default())
    }

    /// Runs the full pipeline with explicit constraint-generation options
    /// and the default solver.
    pub fn run_with(module: &mut Module, gen: GenConfig) -> Self {
        Self::build(module, EngineConfig::from(gen))
    }

    /// Runs the full pipeline with an explicit configuration.
    pub fn build(module: &mut Module, cfg: EngineConfig) -> Self {
        let (ranges, _) = sraa_essa::transform_module(module);
        Self::on_prepared(module, &ranges, cfg)
    }

    /// Analyzes a module that is *already* in e-SSA form, with
    /// caller-provided ranges. Useful when the caller also needs the
    /// intermediate artifacts.
    pub fn on_prepared(module: &Module, ranges: &RangeAnalysis, cfg: EngineConfig) -> Self {
        let index = VarIndex::new(module);
        let solver = cfg.solver.solver();
        // Interprocedural mode: distil per-function summaries bottom-up
        // over the condensed call graph first, then let module-wide
        // constraint generation apply them at every call site. With a
        // persistent cache configured, unchanged components reuse their
        // stored summaries instead of re-solving.
        let summary_t0 = std::time::Instant::now();
        let mut cache_outcome = CacheOutcome::default();
        let mut store_outcome = StoreOutcome::default();
        let summaries = match cfg.contextuality {
            Contextuality::Intra => None,
            Contextuality::Summaries => match (&cfg.summary_cache, Self::open_store(&cfg)) {
                (None, None) => Some(ModuleSummaries::compute(
                    module,
                    ranges,
                    cfg.gen,
                    &index,
                    solver,
                    cfg.lattice,
                    cfg.jobs,
                )),
                (None, Some(store)) => {
                    // Store only: consult by content-addressed key, solve
                    // the residue, publish everything back (idempotent —
                    // insert-if-absent, so a warm run publishes nothing).
                    let (sums, keys, _, mut s_out) = ModuleSummaries::compute_incremental_shared(
                        module,
                        ranges,
                        cfg.gen,
                        &index,
                        solver,
                        cfg.lattice,
                        cfg.jobs,
                        None,
                        Some(&store),
                    );
                    s_out.published = Self::publish_all(&store, &sums, &keys);
                    store_outcome = s_out;
                    Some(sums)
                }
                (Some(path), store) => {
                    let cache = match persist::load(path, cfg.gen) {
                        Ok(cache) => Some(cache),
                        Err(e) if e.is_not_found() => None, // first run: plain cold start
                        Err(e) => {
                            eprintln!(
                                "# summary-cache warning: {}: {e}; running cold",
                                path.display()
                            );
                            None
                        }
                    };
                    let had_entries = cache.as_ref().is_some_and(|c| !c.is_empty());
                    let (sums, keys, outcome, s_out) = Self::summaries_from_cache(
                        module,
                        ranges,
                        &cfg,
                        &index,
                        cache.as_ref(),
                        store.as_ref(),
                    );
                    if had_entries && outcome.hits == 0 && module.num_functions() > 0 {
                        eprintln!(
                            "# summary-cache warning: {}: no cached summary matched this \
                             module; running cold",
                            path.display()
                        );
                    }
                    // Rewrite unconditionally: refreshes stale entries and
                    // heals corrupted files. A write failure only costs
                    // the *next* run its warm start.
                    if let Err(e) = persist::save(path, module, &sums, &keys, cfg.gen) {
                        eprintln!("# summary-cache warning: cannot write {}: {e}", path.display());
                    }
                    cache_outcome = outcome;
                    store_outcome = s_out;
                    Some(sums)
                }
            },
        };
        Self::assemble(
            module,
            ranges,
            cfg,
            index,
            summaries,
            summary_t0,
            cache_outcome,
            store_outcome,
        )
    }

    /// Opens the configured shared store, degrading to `None` (with a
    /// stderr warning) on any IO failure — like a defective summary
    /// cache, a defective store can cost speed, never correctness.
    fn open_store(cfg: &EngineConfig) -> Option<SharedSummaryStore> {
        let dir = cfg.shared_store.as_ref()?;
        match SharedSummaryStore::open(dir, cfg.gen) {
            Ok(store) => Some(store),
            Err(e) => {
                eprintln!(
                    "# shared-store warning: {}: {e}; running without a store",
                    dir.display()
                );
                None
            }
        }
    }

    /// Publishes every `(key, summary)` pair of a finished solve into
    /// `store`, returning how many were new. Publishing all pairs (not
    /// just the cold-solved ones) is deliberate: insert-if-absent makes
    /// it idempotent, and it migrates summaries that arrived via the
    /// per-module cache into the shared store.
    fn publish_all(
        store: &SharedSummaryStore,
        sums: &ModuleSummaries,
        keys: &persist::SummaryKeys,
    ) -> u32 {
        let entries: Vec<(u64, FunctionSummary)> =
            sums.iter().map(|(fid, s)| (keys.of(fid), s.clone())).collect();
        match store.publish(&entries) {
            Ok(n) => n as u32,
            Err(e) => {
                eprintln!(
                    "# shared-store warning: cannot publish to {}: {e}",
                    store.dir().display()
                );
                0
            }
        }
    }

    /// Builds the engine in interprocedural mode against a caller-held
    /// **in-memory** summary cache — the resident-daemon path
    /// (`sraa serve`). No file IO happens: the caller owns persistence
    /// (see [`DisambiguationEngine::export_summary_cache`] for the other
    /// half of the round trip). The warm/cold outcome lands in the
    /// [`SolveStats`] cache counters exactly like the file-backed path,
    /// and re-building against the cache of a previous build invalidates
    /// exactly the reverse-reachability closure of the edit (same
    /// key scheme, same `compute_incremental` path).
    ///
    /// The module is mutated (converted to e-SSA form) and
    /// [`Contextuality::Summaries`] is implied; any `summary_cache` path
    /// in `cfg` is ignored.
    pub fn build_with_cache(
        module: &mut Module,
        cfg: EngineConfig,
        cache: Option<&persist::SummaryCache>,
    ) -> Self {
        Self::build_with_cache_and_store(module, cfg, cache, None)
    }

    /// [`DisambiguationEngine::build_with_cache`] with an additional
    /// caller-held [`SharedSummaryStore`]: components the per-module
    /// cache cannot satisfy are looked up by content-addressed key, and
    /// every solved summary is published back (idempotently). This is
    /// the daemon's `--shared-store` path — the daemon owns one resident
    /// store for its lifetime and threads it through every upload.
    pub fn build_with_cache_and_store(
        module: &mut Module,
        cfg: EngineConfig,
        cache: Option<&persist::SummaryCache>,
        store: Option<&SharedSummaryStore>,
    ) -> Self {
        let (ranges, _) = sraa_essa::transform_module(module);
        Self::on_prepared_with_cache_and_store(module, &ranges, cfg, cache, store)
    }

    /// [`DisambiguationEngine::build_with_cache`] over a module already in
    /// e-SSA form, with caller-provided ranges.
    pub fn on_prepared_with_cache(
        module: &Module,
        ranges: &RangeAnalysis,
        cfg: EngineConfig,
        cache: Option<&persist::SummaryCache>,
    ) -> Self {
        Self::on_prepared_with_cache_and_store(module, ranges, cfg, cache, None)
    }

    /// [`DisambiguationEngine::build_with_cache_and_store`] over a module
    /// already in e-SSA form, with caller-provided ranges.
    pub fn on_prepared_with_cache_and_store(
        module: &Module,
        ranges: &RangeAnalysis,
        mut cfg: EngineConfig,
        cache: Option<&persist::SummaryCache>,
        store: Option<&SharedSummaryStore>,
    ) -> Self {
        cfg.contextuality = Contextuality::Summaries;
        cfg.summary_cache = None;
        cfg.shared_store = None;
        let index = VarIndex::new(module);
        let summary_t0 = std::time::Instant::now();
        let (sums, _keys, outcome, store_outcome) =
            Self::summaries_from_cache(module, ranges, &cfg, &index, cache, store);
        Self::assemble(module, ranges, cfg, index, Some(sums), summary_t0, outcome, store_outcome)
    }

    /// The engine's current summaries as an in-memory [`persist::SummaryCache`] —
    /// what a resident daemon hands back to
    /// [`DisambiguationEngine::build_with_cache`] on the next upload of
    /// the same module. `module` must be the (e-SSA) module this engine
    /// was built on. `None` for intraprocedural engines, which carry no
    /// summaries to cache.
    pub fn export_summary_cache(&self, module: &Module) -> Option<persist::SummaryCache> {
        let sums = self.summaries.as_ref()?;
        let keys = persist::SummaryKeys::compute(module);
        Some(persist::SummaryCache::from_parts(module, sums, &keys))
    }

    /// The shared incremental summary phase: classify every component
    /// against `cache` (reusing hits, re-solving the rest) and keep the
    /// hit/miss accounting honest when there was no usable cache at all.
    fn summaries_from_cache(
        module: &Module,
        ranges: &RangeAnalysis,
        cfg: &EngineConfig,
        index: &VarIndex,
        cache: Option<&persist::SummaryCache>,
        store: Option<&SharedSummaryStore>,
    ) -> (ModuleSummaries, persist::SummaryKeys, CacheOutcome, StoreOutcome) {
        let (sums, keys, mut outcome, mut store_outcome) =
            ModuleSummaries::compute_incremental_shared(
                module,
                ranges,
                cfg.gen,
                index,
                cfg.solver.solver(),
                cfg.lattice,
                cfg.jobs,
                cache,
                store,
            );
        if cache.is_none() {
            // No usable cache at all: every function was a miss, so a
            // first (or fallback) run reports an honest 0% hit rate
            // rather than a vacuous 100%.
            outcome.misses = module.num_functions() as u32;
        }
        if let Some(store) = store {
            store_outcome.published = Self::publish_all(store, &sums, &keys);
        }
        (sums, keys, outcome, store_outcome)
    }

    /// The tail of every construction path: constraint generation, the
    /// module-wide solve(s), and per-phase stats attribution.
    #[allow(clippy::too_many_arguments)] // internal funnel, one caller per path
    fn assemble(
        module: &Module,
        ranges: &RangeAnalysis,
        cfg: EngineConfig,
        index: VarIndex,
        summaries: Option<ModuleSummaries>,
        summary_t0: std::time::Instant,
        cache_outcome: CacheOutcome,
        store_outcome: StoreOutcome,
    ) -> Self {
        let solver = cfg.solver.solver();
        let summary_build_ns =
            if summaries.is_some() { summary_t0.elapsed().as_nanos() as u64 } else { 0 };
        let mut sys = match &summaries {
            None => constraints::generate_with_index(module, ranges, cfg.gen, &index),
            Some(sums) => {
                constraints::generate_with_summaries(module, ranges, cfg.gen, &index, sums)
            }
        };
        let solve_t0 = std::time::Instant::now();
        let mut solution = solver.solve_with(&sys.constraints, sys.num_vars, cfg.lattice);

        // Parameter-pair refinement (see `GenConfig::param_pairs`): when
        // every internal call site orders two arguments, the corresponding
        // formals are ordered for the whole frame. Each round may unlock
        // further pairs (arguments that are themselves parameters), so
        // iterate; the element sets only grow, bounded by #param².
        if cfg.gen.param_pairs {
            loop {
                let mut added = false;
                for info in &sys.param_info {
                    if info.sites.is_empty() {
                        continue;
                    }
                    for (i, &pi) in info.params.iter().enumerate() {
                        for (j, &pj) in info.params.iter().enumerate() {
                            if i == j || solution.less_than(pi, pj) {
                                continue;
                            }
                            let Some(&cu) = sys.param_union.get(&pj) else { continue };
                            let holds_everywhere = info.sites.iter().all(|site| {
                                matches!((site[i], site[j]), (Some(a), Some(b))
                                    if solution.less_than(a, b))
                            });
                            if holds_everywhere {
                                if let Constraint::Union { elems, .. } = &mut sys.constraints[cu] {
                                    elems.push(pi);
                                    added = true;
                                }
                            }
                        }
                    }
                }
                if !added {
                    break;
                }
                solution = solver.solve_with(&sys.constraints, sys.num_vars, cfg.lattice);
            }
        }

        // Per-phase attribution (see `SolveStats`): wall clock split
        // between the summary build (includes cache IO on warm runs) and
        // the module-wide solve(s), plus the deterministic cache counters.
        solution.stats.summary_build_ns = summary_build_ns;
        solution.stats.final_solve_ns = solve_t0.elapsed().as_nanos() as u64;
        solution.stats.cache_hits = cache_outcome.hits;
        solution.stats.cache_misses = cache_outcome.misses;
        solution.stats.cache_invalidated = cache_outcome.invalidated;
        solution.stats.store_hits = store_outcome.hits;
        solution.stats.store_misses = store_outcome.misses;
        solution.stats.store_published = store_outcome.published;

        Self {
            index,
            solution,
            ranges: ranges.clone(),
            cfg: cfg.gen,
            solver: cfg.solver,
            lattice: cfg.lattice,
            summaries,
            cache: fresh_cache(),
        }
    }

    /// The strategy this engine solved with.
    pub fn solver_kind(&self) -> SolverKind {
        self.solver
    }

    /// The lattice-store backend this engine was configured with (before
    /// `Auto` resolution — the backend never changes the answers, only
    /// the representation the solvers iterate on).
    pub fn lattice_backend(&self) -> LatticeBackend {
        self.lattice
    }

    /// The interprocedural mode this engine was built with.
    pub fn contextuality(&self) -> Contextuality {
        if self.summaries.is_some() {
            Contextuality::Summaries
        } else {
            Contextuality::Intra
        }
    }

    /// The interprocedural summaries, when built with
    /// [`Contextuality::Summaries`].
    pub fn summaries(&self) -> Option<&ModuleSummaries> {
        self.summaries.as_ref()
    }

    /// The interned variable arena.
    pub fn var_index(&self) -> &VarIndex {
        &self.index
    }

    /// The raw solved relation.
    pub fn solution(&self) -> &Solution {
        &self.solution
    }

    /// Whether `a < b` is proven: `a ∈ LT(b)`.
    pub fn less_than(&self, f: FuncId, a: Value, b: Value) -> bool {
        self.solution.less_than(self.index.id(f, a), self.index.id(f, b))
    }

    /// Cross-function variant (the relation is module-wide; meaningful for
    /// values related through the inter-procedural pseudo-φs).
    pub fn less_than_cross(&self, fa: FuncId, a: Value, fb: FuncId, b: Value) -> bool {
        self.solution.less_than(self.index.id(fa, a), self.index.id(fb, b))
    }

    /// The `LT` set of `v`, as `(function, value)` pairs in ascending
    /// [`VarId`](crate::VarId) order — byte-identical across runs.
    pub fn lt_set(&self, f: FuncId, v: Value) -> Vec<(FuncId, Value)> {
        self.solution.lt_vars(self.index.id(f, v)).map(|id| self.index.func_of(id)).collect()
    }

    /// Solver statistics (constraint count, evaluations, SCC shape, …).
    pub fn stats(&self) -> &SolveStats {
        &self.solution.stats
    }

    /// Histogram of `LT` set sizes (the paper observes ≥95% have ≤ 2).
    pub fn size_histogram(&self) -> Vec<(usize, usize)> {
        self.solution.size_histogram()
    }

    /// Number of memoized pair verdicts currently cached.
    pub fn cached_queries(&self) -> usize {
        self.cache.iter().map(|s| s.lock().unwrap_or_else(|e| e.into_inner()).len()).sum()
    }

    /// The paper's Definition 3.11: can `p1` and `p2` be proven disjoint?
    ///
    /// * Criterion 1 — `p1 ∈ LT(p2)` or `p2 ∈ LT(p1)`;
    /// * Criterion 2 — `p1 = p + x1`, `p2 = p + x2` (same base, both
    ///   offsets variables) with `x1 ∈ LT(x2)` or `x2 ∈ LT(x1)`.
    ///
    /// Both pointers must live in function `f`. Non-pointer operands
    /// always answer `false`. Verdicts are memoized: repeated queries for
    /// the same pair (optimisation passes re-ask constantly) are a cache
    /// hit.
    pub fn no_alias(&self, func: &Function, f: FuncId, p1: Value, p2: Value) -> bool {
        if p1 == p2 {
            return false;
        }
        let (a, b) = (self.index.id(f, p1).raw(), self.index.id(f, p2).raw());
        let key = (a.min(b), a.max(b));
        let shard = &self.cache[(key.0 ^ key.1) as usize & (CACHE_SHARDS - 1)];
        if let Some(&hit) = shard.lock().unwrap_or_else(|e| e.into_inner()).get(&key) {
            return hit;
        }
        let verdict = self.no_alias_uncached(func, f, p1, p2);
        shard.lock().unwrap_or_else(|e| e.into_inner()).insert(key, verdict);
        verdict
    }

    /// Batched pair-query API: disambiguates every unordered pair of
    /// `ptrs` (the `aa-eval` access pattern), returning the pairs proven
    /// disjoint, in input order. Warms the memo cache, so subsequent
    /// point queries on the same pairs are hits.
    pub fn no_alias_pairs(
        &self,
        func: &Function,
        f: FuncId,
        ptrs: &[Value],
    ) -> Vec<(Value, Value)> {
        let mut out = Vec::new();
        for (i, &p1) in ptrs.iter().enumerate() {
            for &p2 in &ptrs[i + 1..] {
                if self.no_alias(func, f, p1, p2) {
                    out.push((p1, p2));
                }
            }
        }
        out
    }

    fn no_alias_uncached(&self, func: &Function, f: FuncId, p1: Value, p2: Value) -> bool {
        let is_ptr = |v: Value| func.value_type(v).is_some_and(Type::is_ptr);
        if !is_ptr(p1) || !is_ptr(p2) {
            return false;
        }
        // Criterion 1.
        if self.less_than(f, p1, p2) || self.less_than(f, p2, p1) {
            return true;
        }
        // Criterion 2 (and, when enabled, the §3.6 range criterion).
        if let (Some((b1, x1)), Some((b2, x2))) =
            (derived_pointer(func, p1), derived_pointer(func, p2))
        {
            if strip_copies(func, b1) == strip_copies(func, b2) {
                let is_var = |x: Value| !matches!(func.inst(x).kind, InstKind::Const(_));
                if is_var(x1)
                    && is_var(x2)
                    && (self.less_than(f, x1, x2) || self.less_than(f, x2, x1))
                {
                    return true;
                }
            }
        }
        // §3.6 range criterion (opt-in): accumulate offset intervals along
        // the whole gep chain down to a common root object; disjoint total
        // intervals cannot overlap. This is the classic value-set
        // disambiguation the paper cites as complementary prior work.
        if self.cfg.range_offsets {
            let (r1, iv1) = self.root_and_offset(func, f, p1);
            let (r2, iv2) = self.root_and_offset(func, f, p2);
            if r1 == r2 && iv1.meet(&iv2).is_bottom() {
                return true;
            }
        }
        false
    }

    /// Walks copies and nested `gep`s down to the root pointer, summing
    /// the offsets' intervals.
    fn root_and_offset(
        &self,
        func: &Function,
        f: FuncId,
        p: Value,
    ) -> (Value, sraa_range::Interval) {
        let mut total = sraa_range::Interval::constant(0);
        let mut cur = strip_copies(func, p);
        while let InstKind::Gep { base, offset } = &func.inst(cur).kind {
            let r = match func.inst(*offset).kind {
                InstKind::Const(c) => sraa_range::Interval::constant(c),
                _ => self.ranges.range(f, *offset),
            };
            total = total.add(&r);
            cur = strip_copies(func, *base);
        }
        (cur, total)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn engines(src: &str) -> (Module, DisambiguationEngine, DisambiguationEngine) {
        // Compile twice so each engine runs the full deterministic
        // pipeline on an identical program.
        let mut m = sraa_minic::compile(src).unwrap();
        let scc = DisambiguationEngine::build(
            &mut m,
            EngineConfig { solver: SolverKind::Scc, ..Default::default() },
        );
        let mut m2 = sraa_minic::compile(src).unwrap();
        let wl = DisambiguationEngine::build(
            &mut m2,
            EngineConfig { solver: SolverKind::Worklist, ..Default::default() },
        );
        assert_eq!(m, m2, "the e-SSA pipeline must be deterministic");
        (m, scc, wl)
    }

    #[test]
    fn solver_kind_parses_cli_names() {
        assert_eq!(SolverKind::parse("scc"), Some(SolverKind::Scc));
        assert_eq!(SolverKind::parse("worklist"), Some(SolverKind::Worklist));
        assert_eq!(SolverKind::parse("magic"), None);
        assert_eq!(SolverKind::default(), SolverKind::Scc, "the fast path is the default");
        for k in SolverKind::ALL {
            assert_eq!(SolverKind::parse(k.as_str()), Some(k));
            assert_eq!(format!("{k}"), k.as_str());
        }
    }

    #[test]
    fn strategies_agree_through_the_engine() {
        let (m, scc, wl) = engines(
            r#"
            void f(int* v, int N) {
                for (int i = 0, j = N; i < j; i++, j--) v[i] = v[j];
            }
            "#,
        );
        for (fid, f) in m.functions() {
            for a in f.value_ids() {
                for b in f.value_ids() {
                    assert_eq!(
                        scc.less_than(fid, a, b),
                        wl.less_than(fid, a, b),
                        "solver strategies disagree on {a} < {b}"
                    );
                }
                assert_eq!(scc.lt_set(fid, a), wl.lt_set(fid, a));
            }
        }
        assert_eq!(scc.solver_kind(), SolverKind::Scc);
        assert_eq!(wl.solver_kind(), SolverKind::Worklist);
    }

    #[test]
    fn pair_queries_are_memoized_and_batched() {
        let (m, scc, _) = engines(
            r#"
            void f(int* v, int N) {
                for (int i = 0, j = N; i < j; i++, j--) v[i] = v[j];
            }
            "#,
        );
        let fid = m.function_by_name("f").unwrap();
        let f = m.function(fid);
        let mut ptrs = Vec::new();
        for b in f.block_ids() {
            for (_, d) in f.block_insts(b) {
                match &d.kind {
                    InstKind::Load { ptr } => ptrs.push(*ptr),
                    InstKind::Store { ptr, .. } => ptrs.push(*ptr),
                    _ => {}
                }
            }
        }
        assert_eq!(scc.cached_queries(), 0);
        let pairs = scc.no_alias_pairs(f, fid, &ptrs);
        assert!(!pairs.is_empty(), "v[i]/v[j] must be disambiguated");
        let warmed = scc.cached_queries();
        assert!(warmed > 0, "batch queries must warm the cache");
        // Point queries over the same pairs add no new entries.
        for (p1, p2) in &pairs {
            assert!(scc.no_alias(f, fid, *p1, *p2));
        }
        assert_eq!(scc.cached_queries(), warmed);
    }

    #[test]
    fn summaries_mode_refines_call_results() {
        let src = r#"
            int* advance(int* p, int k) { if (k > 0) { return p + k; } return p + 1; }
            int f(int* p, int n) { int* q = advance(p, n); *q = 1; *p = 2; return *q; }
            int main() { int a[8]; return f(a, 3); }
        "#;
        let mut m1 = sraa_minic::compile(src).unwrap();
        let intra = DisambiguationEngine::build(&mut m1, EngineConfig::default());
        let mut m2 = sraa_minic::compile(src).unwrap();
        let inter = DisambiguationEngine::build(&mut m2, EngineConfig::default().with_summaries());
        assert_eq!(m1, m2, "contextuality must not perturb the e-SSA pipeline");
        assert_eq!(intra.contextuality(), Contextuality::Intra);
        assert_eq!(inter.contextuality(), Contextuality::Summaries);
        assert!(intra.summaries().is_none());
        assert_eq!(inter.summaries().unwrap().facts(), 1, "advance: p < ret");

        let fid = m1.function_by_name("f").unwrap();
        let f = m1.function(fid);
        let (p, q) = (f.param_value(0), {
            // The call result is the unique Call instruction in `f`.
            let mut q = None;
            for b in f.block_ids() {
                for (v, d) in f.block_insts(b) {
                    if matches!(d.kind, InstKind::Call { .. }) {
                        q = Some(v);
                    }
                }
            }
            q.unwrap()
        });
        assert!(!intra.no_alias(f, fid, p, q), "intra mode: the call is opaque");
        assert!(inter.no_alias(f, fid, p, q), "summaries: p < advance(p, n)");
        // Refinement: everything intra proves, summaries still proves.
        for a in f.value_ids() {
            for b in f.value_ids() {
                if intra.no_alias(f, fid, a, b) {
                    assert!(inter.no_alias(f, fid, a, b), "summaries lost {a} vs {b}");
                }
            }
        }
    }

    #[test]
    fn contextuality_parses_cli_names() {
        assert_eq!(Contextuality::parse("intra"), Some(Contextuality::Intra));
        assert_eq!(Contextuality::parse("summaries"), Some(Contextuality::Summaries));
        assert_eq!(Contextuality::parse("magic"), None);
        assert_eq!(Contextuality::default(), Contextuality::Intra);
        for c in Contextuality::ALL {
            assert_eq!(Contextuality::parse(c.as_str()), Some(c));
            assert_eq!(format!("{c}"), c.as_str());
        }
    }

    #[test]
    fn per_phase_timings_are_attributed_and_excluded_from_equality() {
        let src = r#"
            int* advance(int* p, int k) { if (k > 0) { return p + k; } return p + 1; }
            int main() { int a[8]; int* q = advance(a, 3); return *q; }
        "#;
        let mut m1 = sraa_minic::compile(src).unwrap();
        let intra = DisambiguationEngine::build(&mut m1, EngineConfig::default());
        let mut m2 = sraa_minic::compile(src).unwrap();
        let inter = DisambiguationEngine::build(&mut m2, EngineConfig::default().with_summaries());

        assert_eq!(intra.stats().summary_build_ns, 0, "no summary phase in intra mode");
        assert!(intra.stats().final_solve_ns > 0, "the final solve must be timed");
        assert!(inter.stats().summary_build_ns > 0, "the summary phase must be timed");
        assert!(inter.stats().final_solve_ns > 0);
        assert_eq!(
            (intra.stats().cache_hits, intra.stats().cache_misses),
            (0, 0),
            "no cache configured"
        );

        // Equality compares the deterministic counters only: two runs of
        // the same pipeline agree even though their timings differ …
        let mut a = *inter.stats();
        let mut b = a;
        b.summary_build_ns = a.summary_build_ns.wrapping_add(12_345);
        b.final_solve_ns = 0;
        assert_eq!(a, b, "wall-clock fields must not affect SolveStats equality");
        // … while any deterministic counter still distinguishes them.
        b.pops += 1;
        assert_ne!(a, b);
        a.cache_hits += 1;
        b.pops -= 1;
        assert_ne!(a, b);
    }

    #[test]
    fn clone_preserves_results() {
        let (m, scc, _) = engines("int f(int x) { return x + 1; }");
        let clone = scc.clone();
        let fid = m.function_by_name("f").unwrap();
        for v in m.function(fid).value_ids() {
            assert_eq!(scc.lt_set(fid, v), clone.lt_set(fid, v));
        }
        assert_eq!(scc.stats(), clone.stats());
    }
}
