//! End-to-end pipeline benchmarks: MiniC → SSA → e-SSA → ranges →
//! constraints → solved LT relation, on workloads of growing size.
//! This is the "time to analyse one benchmark" quantity behind the
//! paper's §4.2 scalability claims.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sraa_core::StrictInequalityAnalysis;
use sraa_synth::{spec_generate_by_name, test_suite};

fn spec_generate(name: &str) -> sraa_synth::Workload {
    spec_generate_by_name(name).expect("known profile")
}

fn bench_pipeline(c: &mut Criterion) {
    let mut group = c.benchmark_group("pipeline");
    group.sample_size(10); // whole-module analyses are seconds-scale
    for name in ["lbm", "gobmk", "gcc"] {
        let w = spec_generate(name);
        group.bench_with_input(BenchmarkId::from_parameter(name), &w, |b, w| {
            b.iter(|| {
                let mut m = sraa_minic::compile(&w.source).unwrap();
                let lt = StrictInequalityAnalysis::run(&mut m);
                std::hint::black_box(lt.stats().pops)
            });
        });
    }
    group.finish();
}

fn bench_frontend_only(c: &mut Criterion) {
    let suite = test_suite(20);
    let w = suite.last().unwrap().clone();
    c.bench_function("frontend/compile_largest_of_20", |b| {
        b.iter(|| std::hint::black_box(sraa_minic::compile(&w.source).unwrap()))
    });
}

fn bench_essa_only(c: &mut Criterion) {
    let w = spec_generate("gobmk");
    let module = sraa_minic::compile(&w.source).unwrap();
    let mut group = c.benchmark_group("essa");
    group.sample_size(10);
    group.bench_function("transform_gobmk", |b| {
        b.iter_batched(
            || module.clone(),
            |mut m| std::hint::black_box(sraa_essa::transform_module(&mut m).1),
            criterion::BatchSize::SmallInput,
        )
    });
    group.finish();
}

criterion_group!(benches, bench_pipeline, bench_frontend_only, bench_essa_only);
criterion_main!(benches);
