//! An ABCD-style *on-demand* less-than prover.
//!
//! The paper (§5) contrasts its design with Bodík et al.'s ABCD: "we chose
//! to compute a transitive closure of less-than relations, whereas ABCD
//! works on demand". This module implements the on-demand alternative over
//! the *same* constraint system, so the two strategies can be compared —
//! `benches/queries.rs` measures the trade-off, and the differential and
//! property tests prove they answer identically.
//!
//! A query `y ∈ LT(x)?` runs a backwards proof search over the constraint
//! defining `x`:
//!
//! * `Init`              — fail;
//! * `Copy {s}`          — prove `y ∈ LT(s)`;
//! * `Union {es, ss}`    — succeed if `y ∈ es`, else prove some `y ∈ LT(s)`;
//! * `Inter {ss}`        — prove `y ∈ LT(s)` for *every* `s`.
//!
//! Cycles (loops through φs) are handled *coinductively*: a pair currently
//! on the proof stack is assumed to hold, which computes exactly the
//! greatest fixpoint the worklist solver computes (paper Theorem 3.7).
//! Results are memoised, with the usual assumption-tracking care: a `true`
//! that leaned on an unresolved outer assumption must not be cached.

use crate::constraints::{Constraint, ConstraintSystem};
use crate::var_index::VarId;
use std::collections::HashMap;

/// On-demand prover over a generated [`ConstraintSystem`].
///
/// Queries take `&mut self` because the prover memoises; build it once and
/// reuse it.
#[derive(Clone, Debug)]
pub struct OnDemandProver<'a> {
    sys: &'a ConstraintSystem,
    /// Variable id → index of its defining constraint.
    def_of: Vec<Option<u32>>,
    memo: HashMap<(u32, u32), bool>,
    /// Statistics: constraint visits performed across all queries.
    pub visits: u64,
}

impl<'a> OnDemandProver<'a> {
    /// Prepares the prover (O(#constraints)).
    pub fn new(sys: &'a ConstraintSystem) -> Self {
        let mut def_of = vec![None; sys.num_vars];
        for (i, c) in sys.constraints.iter().enumerate() {
            def_of[c.defined().index()] = Some(i as u32);
        }
        Self { sys, def_of, memo: HashMap::new(), visits: 0 }
    }

    /// Does `a < b` hold (`a ∈ LT(b)`)?
    pub fn less_than(&mut self, a: VarId, b: VarId) -> bool {
        let mut stack = Vec::new();
        self.prove(a.raw(), b.raw(), &mut stack).0
    }

    /// Returns `(holds, lowest stack depth of any assumption used)`;
    /// `usize::MAX` when the proof is assumption-free.
    fn prove(&mut self, y: u32, x: u32, stack: &mut Vec<(u32, u32)>) -> (bool, usize) {
        if let Some(&r) = self.memo.get(&(y, x)) {
            return (r, usize::MAX);
        }
        if let Some(depth) = stack.iter().position(|&p| p == (y, x)) {
            // Coinductive hypothesis: assume the pair holds (greatest
            // fixpoint semantics, mirroring the ⊤ initialisation of the
            // worklist solver).
            return (true, depth);
        }
        self.visits += 1;
        let my_depth = stack.len();
        stack.push((y, x));
        // Borrow the constraints through the shared `'a` reference, not
        // through `self`, so the recursive `prove` calls below need no
        // per-frame clone of the source lists.
        let sys = self.sys;
        let (holds, mut lowest) = match self.def_of[x as usize] {
            None => (false, usize::MAX),
            Some(ci) => match &sys.constraints[ci as usize] {
                Constraint::Init { .. } => (false, usize::MAX),
                Constraint::Copy { source, .. } => {
                    let s = source.raw();
                    self.prove(y, s, stack)
                }
                Constraint::Union { elems, sources, .. } => {
                    if elems.contains(&VarId::new(y)) {
                        (true, usize::MAX)
                    } else {
                        let mut lowest = usize::MAX;
                        let mut holds = false;
                        for s in sources {
                            let (h, l) = self.prove(y, s.raw(), stack);
                            if h {
                                holds = true;
                                lowest = l;
                                break;
                            }
                        }
                        (holds, lowest)
                    }
                }
                Constraint::Inter { sources, .. } => {
                    let mut lowest = usize::MAX;
                    let mut holds = true;
                    for s in sources {
                        let (h, l) = self.prove(y, s.raw(), stack);
                        lowest = lowest.min(l);
                        if !h {
                            holds = false;
                            break;
                        }
                    }
                    (holds, lowest)
                }
            },
        };
        stack.pop();
        // An assumption at `my_depth` was the pair itself — discharged
        // coinductively by this very frame.
        if lowest >= my_depth {
            lowest = usize::MAX;
        }
        // Negative answers never lean on assumptions (assumptions only
        // ever help); positive answers are cacheable once all their
        // assumptions are discharged.
        if !holds || lowest == usize::MAX {
            self.memo.insert((y, x), holds);
        }
        (holds, lowest)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::constraints::GenConfig;
    use crate::solver;

    fn v(i: u32) -> VarId {
        VarId::new(i)
    }

    fn vs(ids: &[u32]) -> Vec<VarId> {
        ids.iter().copied().map(VarId::new).collect()
    }

    fn bare_system(constraints: Vec<Constraint>, num_vars: usize) -> ConstraintSystem {
        ConstraintSystem {
            constraints,
            num_vars,
            param_info: vec![],
            param_union: Default::default(),
        }
    }

    /// On-demand answers must equal the closure's answers — on the paper's
    /// Example 3.4 system.
    #[test]
    fn agrees_with_solver_on_paper_example() {
        use Constraint as C;
        let constraints = vec![
            C::Init { x: v(0) },
            C::Union { x: v(1), elems: vs(&[0]), sources: vs(&[0]) },
            C::Inter { x: v(2), sources: vs(&[1, 3]) },
            C::Union { x: v(3), elems: vs(&[2]), sources: vs(&[2]) },
            C::Init { x: v(4) },
            C::Union { x: v(5), elems: vs(&[4]), sources: vs(&[2]) },
            C::Union { x: v(7), elems: vs(&[9]), sources: vs(&[9, 1]) },
            C::Copy { x: v(8), source: v(1) },
            C::Union { x: v(10), elems: vec![], sources: vs(&[8, 4]) },
            C::Copy { x: v(9), source: v(4) },
            C::Inter { x: v(6), sources: vs(&[3, 9, 4]) },
        ];
        let sys = bare_system(constraints, 11);
        let solution = solver::solve(&sys.constraints, sys.num_vars);
        let mut prover = OnDemandProver::new(&sys);
        for x in 0..11 {
            for y in 0..11 {
                assert_eq!(
                    prover.less_than(v(y), v(x)),
                    solution.less_than(v(y), v(x)),
                    "disagreement on {y} < {x}"
                );
            }
        }
    }

    /// Differential test over real programs: identical verdicts on every
    /// pair of variables of the first functions.
    #[test]
    fn agrees_with_solver_on_compiled_programs() {
        for src in [
            "int f(int* v, int n) { for (int i = 0; i < n; i++) { for (int j = i + 1; j < n; j++) { v[i] = v[j]; } } return 0; }",
            "int g(int x) { int y = x - 1; int z = y + 2; if (z < x) return z; return x; }",
            "int h(int* p, int n) { int* pe = p + n; int s = 0; for (int* pi = p; pi < pe; pi++) s += *pi; return s; }",
        ] {
            let mut m = sraa_minic::compile(src).unwrap();
            let (ranges, _) = sraa_essa::transform_module(&mut m);
            let sys = crate::constraints::generate(&m, &ranges, GenConfig::default());
            let solution = solver::solve(&sys.constraints, sys.num_vars);
            let mut prover = OnDemandProver::new(&sys);
            let n = sys.num_vars.min(160) as u32;
            for x in 0..n {
                for y in 0..n {
                    assert_eq!(
                        prover.less_than(v(y), v(x)),
                        solution.less_than(v(y), v(x)),
                        "disagreement on {y} < {x} for: {src}"
                    );
                }
            }
        }
    }

    /// The coinductive cycle rule matches the solver's greatest fixpoint
    /// on φ-loops (i = φ(c, i+1)).
    #[test]
    fn phi_cycles_resolve_coinductively() {
        use Constraint as C;
        let sys = bare_system(
            vec![
                C::Init { x: v(0) },
                C::Inter { x: v(1), sources: vs(&[0, 2]) },
                C::Union { x: v(2), elems: vs(&[1]), sources: vs(&[1]) },
            ],
            3,
        );
        let mut prover = OnDemandProver::new(&sys);
        assert!(prover.less_than(v(1), v(2)), "i < i+1");
        assert!(!prover.less_than(v(2), v(1)));
        assert!(!prover.less_than(v(0), v(1)));
        // Memoisation must not corrupt later queries.
        assert!(prover.less_than(v(1), v(2)));
        assert!(!prover.less_than(v(2), v(2)));
    }

    /// Ungrounded union cycles stay ⊤ in the solver (then frozen); the
    /// prover's coinduction answers `true` for them — this is the one
    /// *documented* divergence, matching the unfrozen gfp. Such cycles can
    /// only exist in code unreachable from any grounded definition.
    #[test]
    fn ungrounded_cycles_are_the_documented_divergence() {
        use Constraint as C;
        let sys = bare_system(
            vec![
                C::Union { x: v(0), elems: vs(&[1]), sources: vs(&[1]) },
                C::Union { x: v(1), elems: vs(&[0]), sources: vs(&[0]) },
            ],
            2,
        );
        let solution = solver::solve(&sys.constraints, sys.num_vars);
        let mut prover = OnDemandProver::new(&sys);
        // Solver freezes ⊤ → ∅ (conservative); prover reports the raw gfp.
        assert!(!solution.less_than(v(0), v(1)));
        assert!(solution.was_top(v(1)), "the solution records the frozen ⊤");
        assert!(prover.less_than(v(0), v(1)), "raw greatest fixpoint keeps the cycle at ⊤");
    }

    mod properties {
        use super::*;
        use crate::test_systems::grounded_systems;
        use proptest::prelude::*;

        proptest! {
            /// On random *grounded* constraint graphs (every variable has
            /// a defining constraint — the invariant real constraint
            /// generation upholds), the on-demand prover answers exactly
            /// the exhaustive fixpoint, modulo the documented freeze
            /// divergence: where the exhaustive solution froze a ⊤ (an
            /// ungrounded cycle), the prover reports the raw greatest
            /// fixpoint, i.e. `true` for every candidate.
            #[test]
            fn on_demand_equals_exhaustive_fixpoint((cs, n) in grounded_systems()) {
                let sys = ConstraintSystem {
                    constraints: cs,
                    num_vars: n,
                    param_info: vec![],
                    param_union: Default::default(),
                };
                let solution = solver::solve(&sys.constraints, sys.num_vars);
                let mut prover = OnDemandProver::new(&sys);
                for x in 0..n as u32 {
                    for y in 0..n as u32 {
                        let expected = solution.was_top(v(x)) || solution.less_than(v(y), v(x));
                        prop_assert_eq!(
                            prover.less_than(v(y), v(x)),
                            expected,
                            "disagreement on {} < {} (frozen: {})",
                            y, x, solution.was_top(v(x))
                        );
                    }
                }
            }
        }
    }
}
