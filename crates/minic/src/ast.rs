//! Abstract syntax tree for MiniC.

/// A frontend type: `int`, `int*`…, or `void` (function returns only).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Ty {
    /// 64-bit signed integer.
    Int,
    /// Pointer with nesting depth ≥ 1.
    Ptr(u8),
    /// Absence of a value (function return type only).
    Void,
}

impl Ty {
    /// Conversion to an IR type; `None` for `Void`.
    pub fn to_ir(self) -> Option<sraa_ir::Type> {
        match self {
            Ty::Int => Some(sraa_ir::Type::Int),
            Ty::Ptr(d) => Some(sraa_ir::Type::Ptr(d)),
            Ty::Void => None,
        }
    }

    /// The type `*e` has if `e` has this type.
    pub fn deref(self) -> Option<Ty> {
        match self {
            Ty::Ptr(1) => Some(Ty::Int),
            Ty::Ptr(d) if d > 1 => Some(Ty::Ptr(d - 1)),
            _ => None,
        }
    }

    /// The type `&lv` has if `lv` has this type.
    pub fn addr_of(self) -> Option<Ty> {
        match self {
            Ty::Int => Some(Ty::Ptr(1)),
            Ty::Ptr(d) => Some(Ty::Ptr(d + 1)),
            Ty::Void => None,
        }
    }
}

impl std::fmt::Display for Ty {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Ty::Int => write!(f, "int"),
            Ty::Void => write!(f, "void"),
            Ty::Ptr(d) => {
                write!(f, "int")?;
                for _ in 0..*d {
                    write!(f, "*")?;
                }
                Ok(())
            }
        }
    }
}

/// A whole translation unit.
#[derive(Clone, Debug, PartialEq)]
pub struct Program {
    /// Global variable declarations.
    pub globals: Vec<GlobalDecl>,
    /// Function definitions.
    pub funcs: Vec<FuncDef>,
}

/// A global declaration: `int g;` (count 1) or `int g[N];`.
#[derive(Clone, Debug, PartialEq)]
pub struct GlobalDecl {
    /// Variable name.
    pub name: String,
    /// Element type.
    pub elem_ty: Ty,
    /// Element count (1 for scalars).
    pub count: u32,
    /// Source line.
    pub line: u32,
}

/// A function definition.
#[derive(Clone, Debug, PartialEq)]
pub struct FuncDef {
    /// Function name.
    pub name: String,
    /// Parameter names and types.
    pub params: Vec<(String, Ty)>,
    /// Return type.
    pub ret: Ty,
    /// Body statements.
    pub body: Vec<Stmt>,
    /// Source line.
    pub line: u32,
}

/// Compound assignment operators.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AssignOp {
    /// `=`
    Set,
    /// `+=` (also lowers `++`)
    Add,
    /// `-=` (also lowers `--`)
    Sub,
}

/// Statements.
#[derive(Clone, Debug, PartialEq)]
pub enum Stmt {
    /// `ty name = init;` — a scalar local (SSA-tracked, no memory).
    DeclScalar {
        /// Variable name.
        name: String,
        /// Declared type.
        ty: Ty,
        /// Optional initialiser (uninitialised locals read as 0).
        init: Option<Expr>,
        /// Source line.
        line: u32,
    },
    /// `int name[N];` — a stack array (an `alloca` allocation site).
    DeclArray {
        /// Variable name.
        name: String,
        /// Element type.
        elem_ty: Ty,
        /// Element count.
        count: Expr,
        /// Source line.
        line: u32,
    },
    /// `lvalue op value;`
    Assign {
        /// Assignment target (must be an lvalue).
        target: Expr,
        /// Plain or compound assignment.
        op: AssignOp,
        /// Right-hand side.
        value: Expr,
        /// Source line.
        line: u32,
    },
    /// `if (cond) then else els`
    If {
        /// Condition.
        cond: Expr,
        /// Then branch.
        then: Vec<Stmt>,
        /// Else branch (possibly empty).
        els: Vec<Stmt>,
        /// Source line.
        line: u32,
    },
    /// `do body while (cond);`
    DoWhile {
        /// Loop body (runs at least once).
        body: Vec<Stmt>,
        /// Condition, evaluated after each iteration.
        cond: Expr,
        /// Source line.
        line: u32,
    },
    /// `while (cond) body`
    While {
        /// Condition.
        cond: Expr,
        /// Loop body.
        body: Vec<Stmt>,
        /// Source line.
        line: u32,
    },
    /// `for (init; cond; step) body` — init/step are comma lists.
    For {
        /// Initialisation statements.
        init: Vec<Stmt>,
        /// Optional condition (absent = infinite).
        cond: Option<Expr>,
        /// Step statements.
        step: Vec<Stmt>,
        /// Loop body.
        body: Vec<Stmt>,
        /// Source line.
        line: u32,
    },
    /// `return e?;`
    Return {
        /// Returned value for non-void functions.
        value: Option<Expr>,
        /// Source line.
        line: u32,
    },
    /// `break;`
    Break {
        /// Source line.
        line: u32,
    },
    /// `continue;`
    Continue {
        /// Source line.
        line: u32,
    },
    /// An expression evaluated for effect (e.g. a call).
    ExprStmt {
        /// The expression.
        expr: Expr,
        /// Source line.
        line: u32,
    },
    /// A nested block with its own scope.
    Block(Vec<Stmt>),
}

/// Unary operators.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum UnOp {
    /// Arithmetic negation.
    Neg,
    /// Logical not (`!e` is `e == 0`).
    Not,
    /// Pointer dereference.
    Deref,
    /// Address-of (on memory lvalues only).
    AddrOf,
}

/// Binary operators (no short-circuit here; `&&`/`||` are separate).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BinOpAst {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/`
    Div,
    /// `%`
    Rem,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `==`
    Eq,
    /// `!=`
    Ne,
}

/// Expressions.
#[derive(Clone, Debug, PartialEq)]
pub enum Expr {
    /// Integer literal.
    Int(i64),
    /// Variable reference.
    Var {
        /// Name.
        name: String,
        /// Source line.
        line: u32,
    },
    /// Unary operation.
    Unary {
        /// Operator.
        op: UnOp,
        /// Operand.
        expr: Box<Expr>,
        /// Source line.
        line: u32,
    },
    /// Non-short-circuit binary operation.
    Binary {
        /// Operator.
        op: BinOpAst,
        /// Left operand.
        lhs: Box<Expr>,
        /// Right operand.
        rhs: Box<Expr>,
        /// Source line.
        line: u32,
    },
    /// Short-circuit `&&`.
    And {
        /// Left operand.
        lhs: Box<Expr>,
        /// Right operand.
        rhs: Box<Expr>,
        /// Source line.
        line: u32,
    },
    /// Short-circuit `||`.
    Or {
        /// Left operand.
        lhs: Box<Expr>,
        /// Right operand.
        rhs: Box<Expr>,
        /// Source line.
        line: u32,
    },
    /// Array/pointer indexing `base[index]`.
    Index {
        /// Base expression (array or pointer).
        base: Box<Expr>,
        /// Index expression.
        index: Box<Expr>,
        /// Source line.
        line: u32,
    },
    /// Direct function call.
    Call {
        /// Callee name.
        name: String,
        /// Actual arguments.
        args: Vec<Expr>,
        /// Source line.
        line: u32,
    },
    /// `malloc(n)` — element type inferred from the assignment context.
    Malloc {
        /// Element count.
        count: Box<Expr>,
        /// Source line.
        line: u32,
    },
    /// `input()` — an opaque external integer.
    Input {
        /// Source line.
        line: u32,
    },
    /// `inptr()` — an opaque external `int*` (an I/O buffer, say).
    InputPtr {
        /// Source line.
        line: u32,
    },
    /// C's conditional expression `cond ? then_e : else_e`.
    Ternary {
        /// Condition (int).
        cond: Box<Expr>,
        /// Value when the condition is non-zero.
        then_e: Box<Expr>,
        /// Value when the condition is zero.
        else_e: Box<Expr>,
        /// Source line.
        line: u32,
    },
}

impl Expr {
    /// The source line of the expression (0 for literals).
    pub fn line(&self) -> u32 {
        match self {
            Expr::Int(_) => 0,
            Expr::Var { line, .. }
            | Expr::Unary { line, .. }
            | Expr::Binary { line, .. }
            | Expr::And { line, .. }
            | Expr::Or { line, .. }
            | Expr::Index { line, .. }
            | Expr::Call { line, .. }
            | Expr::Malloc { line, .. }
            | Expr::Input { line }
            | Expr::InputPtr { line }
            | Expr::Ternary { line, .. } => *line,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ty_deref_and_addr_of() {
        assert_eq!(Ty::Ptr(2).deref(), Some(Ty::Ptr(1)));
        assert_eq!(Ty::Ptr(1).deref(), Some(Ty::Int));
        assert_eq!(Ty::Int.deref(), None);
        assert_eq!(Ty::Int.addr_of(), Some(Ty::Ptr(1)));
        assert_eq!(Ty::Void.addr_of(), None);
    }

    #[test]
    fn ty_display() {
        assert_eq!(Ty::Ptr(3).to_string(), "int***");
        assert_eq!(Ty::Void.to_string(), "void");
    }

    #[test]
    fn ty_to_ir() {
        assert_eq!(Ty::Int.to_ir(), Some(sraa_ir::Type::Int));
        assert_eq!(Ty::Ptr(2).to_ir(), Some(sraa_ir::Type::Ptr(2)));
        assert_eq!(Ty::Void.to_ir(), None);
    }
}
