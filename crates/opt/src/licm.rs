//! Loop-invariant load motion, parameterised by an alias oracle.
//!
//! A load whose address is defined outside the loop re-reads the same
//! location every iteration; if no store in the loop can touch that
//! location, the load can execute once, in the preheader. Three
//! conditions gate the hoist:
//!
//! 1. **Invariance** — the address is defined outside the loop;
//! 2. **Guaranteed execution** — the load's block dominates every latch,
//!    so hoisting cannot introduce a memory access (and hence a trap)
//!    that the original program never performed;
//! 3. **Disambiguation** — every store in the loop is provably
//!    `NoAlias` with the address, and the loop calls no function.
//!
//! Condition 3 is where the oracle earns its keep: a loop that walks
//! `v[i]` upward from `lo + 1` can keep a `v[lo]` load hoisted only if
//! the analysis knows `lo < i` — allocation-site reasoning (BA) cannot,
//! the strict-inequality analysis can.

use crate::OptStats;
use sraa_alias::{AliasAnalysis, AliasResult};
use sraa_ir::{Cfg, DomTree, FuncId, InstKind, LoopForest, Module, Value};

/// Runs loop-invariant load motion over every function, driven by `aa`.
/// Returns the number of loads hoisted to preheaders.
pub fn hoist_invariant_loads(module: &mut Module, aa: &dyn AliasAnalysis) -> OptStats {
    let fids: Vec<FuncId> = module.functions().map(|(id, _)| id).collect();
    let mut stats = OptStats::default();
    for fid in fids {
        stats += hoist_in_function(module, fid, aa);
    }
    stats
}

fn hoist_in_function(module: &mut Module, fid: FuncId, aa: &dyn AliasAnalysis) -> OptStats {
    // Phase 1 (read-only): pick the loads to move and where.
    let func = module.function(fid);
    let cfg = Cfg::compute(func);
    let dom = DomTree::compute(func, &cfg);
    let loops = LoopForest::compute(func, &cfg, &dom);

    // (values to move in dependency order — address chain then load,
    //  destination preheader)
    let mut moves: Vec<(Vec<Value>, sraa_ir::BlockId)> = Vec::new();
    let mut hoisted_loads = 0usize;

    for l in loops.loops() {
        let Some(preheader) = l.preheader(&cfg) else { continue };

        // Memory effects of the whole loop body.
        let mut stores: Vec<Value> = Vec::new();
        let mut has_call = false;
        for &b in &l.body {
            for (_, data) in func.block_insts(b) {
                match &data.kind {
                    InstKind::Store { ptr, .. } => stores.push(*ptr),
                    InstKind::Call { .. } => has_call = true,
                    _ => {}
                }
            }
        }
        if has_call {
            continue;
        }

        for &b in &l.body {
            // Guaranteed execution: the block runs on every iteration, so
            // moving the load cannot introduce an access (and a trap) the
            // original program never performed.
            if !l.latches.iter().all(|&latch| dom.dominates(b, latch)) {
                continue;
            }
            for (v, data) in func.block_insts(b) {
                let InstKind::Load { ptr } = data.kind else { continue };
                if moves.iter().any(|(c, _)| c.last() == Some(&v)) {
                    continue;
                }
                // The address must be loop-invariant: defined outside the
                // loop, or a pure in-loop computation over invariant
                // operands (the usual `gep` feeding the load), which then
                // moves out together with it.
                let Some(chain) = invariant_chain(func, l, ptr) else { continue };
                // Every loop store provably misses the address.
                if stores.iter().all(|&s| aa.alias(module, fid, ptr, s) == AliasResult::NoAlias) {
                    let mut all = chain;
                    all.push(v);
                    moves.push((all, preheader));
                    hoisted_loads += 1;
                }
            }
        }
    }

    // Phase 2 (mutation): re-attach each chain before the preheader's
    // terminator, dependencies first. The preheader dominates the loop,
    // so every remaining in-loop use stays dominated.
    let func = module.function_mut(fid);
    let mut moved: Vec<Value> = Vec::new();
    for (chain, preheader) in moves {
        for v in chain {
            if moved.contains(&v) {
                continue; // shared gep already moved by an earlier load
            }
            moved.push(v);
            func.detach_inst(v);
            let at = func.block(preheader).insts.len().saturating_sub(1);
            func.attach_inst(preheader, at, v);
        }
    }
    OptStats { loads_hoisted: hoisted_loads, ..OptStats::default() }
}

/// If `ptr` is loop-invariant, returns the in-loop *pure* instructions
/// that must move with it, dependencies first (empty when `ptr` is
/// already defined outside). `None` when the address is loop-variant.
///
/// Only trap-free instructions are eligible (no `div`/`rem`): the chain
/// is speculated into the preheader, where a zero-trip loop would
/// execute it without the body's guard.
fn invariant_chain(func: &sraa_ir::Function, l: &sraa_ir::Loop, ptr: Value) -> Option<Vec<Value>> {
    fn visit(
        func: &sraa_ir::Function,
        l: &sraa_ir::Loop,
        v: Value,
        chain: &mut Vec<Value>,
    ) -> bool {
        let data = func.inst(v);
        let inside = data.block.is_some_and(|b| l.contains(b));
        if !inside {
            return true; // defined outside: invariant, stays put
        }
        if chain.contains(&v) {
            return true;
        }
        let pure = matches!(
            data.kind,
            InstKind::Const(_)
                | InstKind::Copy { .. }
                | InstKind::Gep { .. }
                | InstKind::Binary {
                    op: sraa_ir::BinOp::Add | sraa_ir::BinOp::Sub | sraa_ir::BinOp::Mul,
                    ..
                }
        );
        if !pure {
            return false;
        }
        let mut ok = true;
        data.kind.for_each_operand(|op| {
            ok = ok && visit(func, l, op, chain);
        });
        if ok {
            chain.push(v);
        }
        ok
    }

    let mut chain: Vec<Value> = Vec::new();
    visit(func, l, ptr, &mut chain).then_some(chain)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sraa_alias::{BasicAliasAnalysis, Combined, NoAa, StrictInequalityAa};
    use sraa_ir::Interpreter;

    fn run_main(module: &Module) -> Option<i64> {
        Interpreter::new(module).run("main", &[]).expect("execution").result
    }

    /// The motivating kernel: `v[lo]` is invariant, all stores go to
    /// `v[i]` with `lo < i` — only an ordering analysis hoists the load.
    const KERNEL: &str = r#"
        int f(int* v, int lo, int N) {
            int s = 0;
            for (int i = lo + 1; i < N; i++) {
                v[i] = i;
                s = s + v[lo];
            }
            return s;
        }
        int main() {
            int a[12];
            for (int k = 0; k < 12; k++) a[k] = 5;
            return f(a, 2, 12);
        }
    "#;

    #[test]
    fn lt_hoists_the_ordered_invariant_load_and_ba_does_not() {
        let mut m1 = sraa_minic::compile(KERNEL).unwrap();
        let _ = StrictInequalityAa::new(&mut m1); // e-SSA, parity with below
        let ba = BasicAliasAnalysis::new(&m1);
        let before = run_main(&m1);
        assert_eq!(hoist_invariant_loads(&mut m1, &ba).loads_hoisted, 0, "BA must not hoist");
        assert_eq!(run_main(&m1), before);

        let mut m2 = sraa_minic::compile(KERNEL).unwrap();
        let lt = StrictInequalityAa::new(&mut m2);
        let combined = Combined::new(vec![Box::new(BasicAliasAnalysis::new(&m2)), Box::new(lt)]);
        let stats = hoist_invariant_loads(&mut m2, &combined);
        assert_eq!(stats.loads_hoisted, 1, "BA+LT hoists v[lo]");
        sraa_ir::verify(&m2).unwrap();
        assert_eq!(run_main(&m2), before, "hoisting must preserve the result");
    }

    #[test]
    fn ba_hoists_loads_from_disjoint_allocations() {
        let mut m = sraa_minic::compile(
            r#"
            int f(int* v, int N) {
                int b[4];
                b[0] = 17;
                int s = 0;
                for (int i = 0; i < N; i++) {
                    v[i] = i;
                    s = s + b[0];
                }
                return s;
            }
            int main() { int a[8]; return f(a, 8); }
            "#,
        )
        .unwrap();
        let before = run_main(&m);
        let ba = BasicAliasAnalysis::new(&m);
        let stats = hoist_invariant_loads(&mut m, &ba);
        assert_eq!(stats.loads_hoisted, 1, "b[] and v[] are distinct objects");
        sraa_ir::verify(&m).unwrap();
        assert_eq!(run_main(&m), before);
    }

    #[test]
    fn conditional_loads_are_not_hoisted() {
        // The load only executes when the guard holds; hoisting it would
        // make every iteration (and a zero-trip loop) perform it.
        let mut m = sraa_minic::compile(
            r#"
            int f(int* v, int N, int c) {
                int b[1];
                b[0] = 3;
                int s = 0;
                for (int i = 0; i < N; i++) {
                    if (c) { s = s + b[0]; }
                    v[i] = s;
                }
                return s;
            }
            int main() { int a[4]; return f(a, 4, 1); }
            "#,
        )
        .unwrap();
        let ba = BasicAliasAnalysis::new(&m);
        let stats = hoist_invariant_loads(&mut m, &ba);
        assert_eq!(stats.loads_hoisted, 0, "guarded load must stay put");
    }

    #[test]
    fn calls_in_the_loop_block_hoisting() {
        let mut m = sraa_minic::compile(
            r#"
            void touch(int* p) { *p = 9; }
            int f(int* v, int N) {
                int b[1];
                b[0] = 1;
                int s = 0;
                for (int i = 0; i < N; i++) {
                    touch(b);
                    s = s + b[0];
                }
                return s;
            }
            int main() { int a[2]; return f(a, 2); }
            "#,
        )
        .unwrap();
        let ba = BasicAliasAnalysis::new(&m);
        assert_eq!(hoist_invariant_loads(&mut m, &ba).loads_hoisted, 0);
        assert_eq!(run_main(&m), Some(18), "touch() writes 9 before each read");
    }

    #[test]
    fn pessimistic_oracle_hoists_only_in_storeless_loops() {
        let mut m = sraa_minic::compile(
            r#"
            int f(int* v, int N) {
                int s = 0;
                for (int i = 0; i < N; i++) { s = s + v[0]; }
                return s;
            }
            int main() { int a[2]; a[0] = 4; return f(a, 3); }
            "#,
        )
        .unwrap();
        let before = run_main(&m);
        let stats = hoist_invariant_loads(&mut m, &NoAa);
        assert_eq!(stats.loads_hoisted, 1, "no stores, nothing to disambiguate");
        sraa_ir::verify(&m).unwrap();
        assert_eq!(run_main(&m), before);
    }
}
