//! SCC-condensation constraint solver — the paper's §6 future work.
//!
//! The paper closes with: *"Currently, our research prototype can handle
//! large programs, but its runtime is not practical … We believe that
//! better algorithms can improve this scenario substantially. The design
//! of such algorithms is a problem that we leave open."* This module is
//! our answer to that open problem. It computes exactly the same greatest
//! fixpoint as [`solve`](crate::solve) (differential- and property-tested
//! in `tests/` and below) with three structural improvements:
//!
//! 1. **Topological scheduling.** The constraint dependency graph is
//!    condensed into strongly connected components (iterative Tarjan, so
//!    deep chains cannot overflow the stack) and solved dependencies-
//!    first. Acyclic regions — the vast majority of real systems, see the
//!    Figure 11 corpus — are then solved with *exactly one* evaluation
//!    per constraint, where a FIFO worklist may revisit.
//! 2. **Union-cycle short-circuit.** Starting from ⊤, a cyclic component
//!    whose internal edges are all `Union`/`Copy` can never descend:
//!    every member reads another member, `{x} ∪ ⊤ = ⊤`, and the greatest
//!    fixpoint of the component is ⊤ (the paper's freeze rule then demotes
//!    it to ∅). Descent enters cycles only through a φ (`Inter`), whose
//!    identity-of-∩ treatment of ⊤ lets a grounded external source break
//!    the cycle. The fast solver classifies each component once and skips
//!    the iteration entirely for union-only cycles.
//! 3. **Shared set algebra.** The lattice operations live in
//!    [`crate::lt_set`] — sorted, shareable `Arc<[u32]>` slices with a
//!    symbolic ⊤ — and are byte-for-byte the ones the worklist solver
//!    uses. This solver contributes *scheduling only*, so both
//!    strategies plug into the engine's
//!    [`FixpointSolver`](crate::engine::FixpointSolver) trait and return
//!    the same [`Solution`] type.
//!
//! The `solvers` Criterion bench group (`crates/bench/benches/solver.rs`)
//! measures the effect; `EXPERIMENTS.md` records the observed speed-ups.

use crate::constraints::Constraint;
use crate::lattice::{
    ArcStore, ComponentCtx, DenseStore, LatticeBackend, LatticeStore, ResolvedBackend,
};
use crate::solver::{Solution, SolveStats};

/// Solves the constraint system over `num_vars` variables by SCC
/// condensation, with the [`LatticeBackend::Auto`] storage. Produces the
/// same fixpoint as [`solve`](crate::solve), in the same [`Solution`]
/// representation; `stats.pops` counts the constraint evaluations spent
/// (exactly one per constraint on acyclic systems).
pub fn solve_fast(constraints: &[Constraint], num_vars: usize) -> Solution {
    solve_fast_with(constraints, num_vars, LatticeBackend::Auto)
}

/// [`solve_fast`] with an explicit lattice storage backend. The backend
/// never changes the result, the statistics, or the evaluation schedule —
/// only the memory layout the fixpoint is computed in.
pub fn solve_fast_with(
    constraints: &[Constraint],
    num_vars: usize,
    lattice: LatticeBackend,
) -> Solution {
    match lattice.resolve(constraints.len()) {
        ResolvedBackend::Arc => solve_fast_impl(constraints, num_vars, ArcStore::new(num_vars)),
        ResolvedBackend::Dense => solve_fast_impl(constraints, num_vars, DenseStore::new(num_vars)),
    }
}

fn solve_fast_impl<S: LatticeStore>(
    constraints: &[Constraint],
    num_vars: usize,
    mut store: S,
) -> Solution {
    let mut stats =
        SolveStats { constraints: constraints.len(), variables: num_vars, ..Default::default() };

    // defining[v] = the constraint that defines v (at most one; constraint
    // generation emits one constraint per defined variable).
    const NO_DEF: u32 = u32::MAX;
    let mut defining: Vec<u32> = vec![NO_DEF; num_vars];
    for (ci, c) in constraints.iter().enumerate() {
        debug_assert!(
            defining[c.defined().index()] == NO_DEF,
            "variable {} defined by two constraints",
            c.defined()
        );
        defining[c.defined().index()] = ci as u32;
    }

    // Topological peel of the acyclic bulk. `final_[v]` means LT(v) can
    // no longer change: its defining constraint was evaluated, or it has
    // no defining constraint at all (it stays ⊤ until the freeze). Each
    // sweep walks the still-pending constraints in index order —
    // constraint generation emits definitions before most uses, so the
    // first sweep resolves nearly everything, in the cache-friendly
    // order the constraints are laid out in. Constraints inside cycles —
    // and everything downstream of a cycle — never become ready and fall
    // through to the condensation below; the sweep cap bounds the
    // quadratic worst case of an adversarially reverse-sorted system
    // (Tarjan handles whatever is left, it is merely slower).
    let mut final_: Vec<bool> = defining.iter().map(|&d| d == NO_DEF).collect();
    const SWEEP_CAP: usize = 8;
    let mut pending: Vec<u32> = Vec::new();
    let eval = |ci: u32, stats: &mut SolveStats, store: &mut S, final_: &mut Vec<bool>| {
        stats.pops += 1;
        stats.sccs += 1; // each peeled constraint is its own component
        let c = &constraints[ci as usize];
        store.update(c);
        final_[c.defined().index()] = true;
    };
    for (ci, c) in constraints.iter().enumerate() {
        if c.reads().iter().all(|r| final_[r.index()]) {
            eval(ci as u32, &mut stats, &mut store, &mut final_);
        } else {
            pending.push(ci as u32);
        }
    }
    for _ in 1..SWEEP_CAP {
        if pending.is_empty() {
            break;
        }
        let before = pending.len();
        let mut next = Vec::with_capacity(pending.len());
        for &ci in &pending {
            if constraints[ci as usize].reads().iter().all(|r| final_[r.index()]) {
                eval(ci, &mut stats, &mut store, &mut final_);
            } else {
                next.push(ci);
            }
        }
        pending = next;
        if pending.len() == before {
            break; // no progress: everything left is cyclic or downstream
        }
    }
    if pending.is_empty() {
        return store.freeze(stats);
    }

    // Residual dependency edges (constraint → constraints it reads),
    // restricted to the unresolved nodes: finalised reads impose no
    // ordering.
    let mut active = vec![false; constraints.len()];
    for &ci in &pending {
        active[ci as usize] = true;
    }
    let deps = {
        let mut offsets = vec![0u32; constraints.len() + 1];
        let mut edges = Vec::new();
        for &ci in &pending {
            edges.extend(
                constraints[ci as usize]
                    .reads()
                    .iter()
                    .filter(|r| !final_[r.index()])
                    .map(|r| defining[r.index()])
                    .filter(|&d| d != NO_DEF),
            );
            offsets[ci as usize + 1] = edges.len() as u32;
        }
        // `pending` is sorted, so a prefix-max pass turns the sparse row
        // ends into cumulative offsets for the inactive rows too.
        for i in 0..constraints.len() {
            offsets[i + 1] = offsets[i + 1].max(offsets[i]);
        }
        Csr { offsets, edges }
    };

    let sccs = tarjan_sccs(&deps, |ci| active[ci as usize]);
    stats.sccs += sccs.len();

    // Tarjan emits components dependencies-first, so by the time a
    // component is processed every external read is final.
    for k in 0..sccs.len() {
        let comp = sccs.row(k as u32);
        let cyclic = comp.len() > 1 || deps.row(comp[0]).contains(&comp[0]);
        if !cyclic {
            // Acyclic (downstream of a cycle): one evaluation suffices;
            // dependents sit in later components and read the stored
            // result directly, so the change flag is irrelevant here.
            stats.pops += 1;
            store.update(&constraints[comp[0] as usize]);
            continue;
        }
        stats.cyclic_sccs += 1;

        if comp.iter().all(|&ci| {
            matches!(constraints[ci as usize], Constraint::Union { .. } | Constraint::Copy { .. })
        }) {
            // Union-only cycle: stays ⊤ (see module docs). Nothing to do —
            // the defined variables are already ⊤ and will be frozen.
            stats.union_cycles += 1;
            continue;
        }

        let cx = ComponentCtx::build(constraints, comp, &defining);
        store.solve_component(&cx, &mut stats);
    }

    store.freeze(stats)
}

/// Compressed sparse rows: `edges[offsets[i]..offsets[i+1]]` are node
/// `i`'s out-edges.
struct Csr {
    offsets: Vec<u32>,
    edges: Vec<u32>,
}

impl Csr {
    fn row(&self, i: u32) -> &[u32] {
        &self.edges[self.offsets[i as usize] as usize..self.offsets[i as usize + 1] as usize]
    }

    fn len(&self) -> usize {
        self.offsets.len() - 1
    }
}

/// Iterative Tarjan over the constraint dependency graph (`deps.row(c)`
/// lists the constraints `c` reads from), restricted to the nodes where
/// `active` holds — the Kahn peel in [`solve_fast`] resolves the acyclic
/// bulk first, so only the residual needs condensing. Components are
/// emitted dependencies-first — the processing order [`solve_fast`]
/// relies on — into one flat CSR (row `k` = component `k`'s members):
/// singleton components dominate real systems, so one `Vec` per
/// component would be the allocator's hottest path. Iterative so that
/// chain-shaped systems (tens of thousands of constraints deep) cannot
/// overflow the call stack.
fn tarjan_sccs(deps: &Csr, active: impl Fn(u32) -> bool) -> Csr {
    const UNVISITED: u32 = u32::MAX;
    let n = deps.len();
    let mut index = vec![UNVISITED; n];
    let mut lowlink = vec![0u32; n];
    let mut on_stack = vec![false; n];
    let mut stack: Vec<u32> = Vec::new();
    let mut next_index = 0u32;
    let mut sccs = Csr { offsets: vec![0], edges: Vec::new() };

    // Explicit DFS frames: (node, next edge position to explore).
    let mut frames: Vec<(u32, usize)> = Vec::new();

    for root in 0..n as u32 {
        if !active(root) || index[root as usize] != UNVISITED {
            continue;
        }
        frames.push((root, 0));
        index[root as usize] = next_index;
        lowlink[root as usize] = next_index;
        next_index += 1;
        stack.push(root);
        on_stack[root as usize] = true;

        while let Some(&mut (v, ref mut ei)) = frames.last_mut() {
            if let Some(&w) = deps.row(v).get(*ei) {
                *ei += 1;
                if index[w as usize] == UNVISITED {
                    index[w as usize] = next_index;
                    lowlink[w as usize] = next_index;
                    next_index += 1;
                    stack.push(w);
                    on_stack[w as usize] = true;
                    frames.push((w, 0));
                } else if on_stack[w as usize] {
                    lowlink[v as usize] = lowlink[v as usize].min(index[w as usize]);
                }
            } else {
                frames.pop();
                if let Some(&mut (parent, _)) = frames.last_mut() {
                    lowlink[parent as usize] = lowlink[parent as usize].min(lowlink[v as usize]);
                }
                if lowlink[v as usize] == index[v as usize] {
                    loop {
                        let w = stack.pop().expect("tarjan stack underflow");
                        on_stack[w as usize] = false;
                        sccs.edges.push(w);
                        if w == v {
                            break;
                        }
                    }
                    sccs.offsets.push(sccs.edges.len() as u32);
                }
            }
        }
    }
    sccs
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::constraints::Constraint as C;
    use crate::solver::solve;
    use crate::var_index::VarId;
    use std::sync::Arc;

    fn v(i: u32) -> VarId {
        VarId::new(i)
    }

    fn vs(ids: &[u32]) -> Vec<VarId> {
        ids.iter().copied().map(VarId::new).collect()
    }

    /// Asserts both solvers agree on every variable's `LT` set.
    fn assert_agrees(cs: &[C], num_vars: usize) {
        let base = solve(cs, num_vars);
        let fast = solve_fast(cs, num_vars);
        for x in 0..num_vars {
            let x = VarId::from_index(x);
            assert_eq!(base.lt_set(x), fast.lt_set(x), "solvers disagree on LT({x}) over {cs:?}");
            assert_eq!(base.was_top(x), fast.was_top(x), "frozen sets differ on {x}");
        }
        assert_eq!(base.stats.frozen_tops, fast.stats.frozen_tops);
    }

    fn example_3_4() -> Vec<C> {
        vec![
            C::Init { x: v(0) },
            C::Union { x: v(1), elems: vs(&[0]), sources: vs(&[0]) },
            C::Inter { x: v(2), sources: vs(&[1, 3]) },
            C::Union { x: v(3), elems: vs(&[2]), sources: vs(&[2]) },
            C::Init { x: v(4) },
            C::Union { x: v(5), elems: vs(&[4]), sources: vs(&[2]) },
            C::Union { x: v(7), elems: vs(&[9]), sources: vs(&[9, 1]) },
            C::Copy { x: v(8), source: v(1) },
            C::Union { x: v(10), elems: vec![], sources: vs(&[8, 4]) },
            C::Copy { x: v(9), source: v(4) },
            C::Inter { x: v(6), sources: vs(&[3, 9, 4]) },
        ]
    }

    #[test]
    fn agrees_on_papers_example() {
        assert_agrees(&example_3_4(), 11);
    }

    #[test]
    fn papers_fixpoint_reproduced_natively() {
        let sol = solve_fast(&example_3_4(), 11);
        assert_eq!(sol.lt_set(v(3)), &[0, 2], "LT(x3) = {{x0, x2}}");
        assert_eq!(sol.lt_set(v(7)), &[0, 9], "LT(x1t) = {{x0, x4t}}");
        assert!(sol.less_than(v(0), v(1)) && !sol.less_than(v(1), v(0)));
    }

    #[test]
    fn agrees_on_chain() {
        let n = 64u32;
        let mut cs = vec![C::Init { x: v(0) }];
        for i in 1..n {
            cs.push(C::Union { x: v(i), elems: vs(&[i - 1]), sources: vs(&[i - 1]) });
        }
        assert_agrees(&cs, n as usize);
        // Acyclic: exactly one eval per constraint.
        let fast = solve_fast(&cs, n as usize);
        assert_eq!(fast.stats.pops, n as u64);
        assert_eq!(fast.stats.cyclic_sccs, 0);
    }

    #[test]
    fn agrees_on_phi_loop() {
        // i = φ(c, i2); i2 = i + 1 — the canonical induction cycle.
        let cs = vec![
            C::Init { x: v(0) },
            C::Inter { x: v(1), sources: vs(&[0, 2]) },
            C::Union { x: v(2), elems: vs(&[1]), sources: vs(&[1]) },
        ];
        assert_agrees(&cs, 3);
        let fast = solve_fast(&cs, 3);
        assert_eq!(fast.stats.cyclic_sccs, 1);
        assert_eq!(fast.stats.union_cycles, 0);
    }

    #[test]
    fn union_cycle_short_circuits_to_frozen_empty() {
        let cs = vec![
            C::Union { x: v(0), elems: vs(&[1]), sources: vs(&[1]) },
            C::Union { x: v(1), elems: vs(&[0]), sources: vs(&[0]) },
        ];
        assert_agrees(&cs, 2);
        let fast = solve_fast(&cs, 2);
        assert_eq!(fast.stats.union_cycles, 1);
        assert_eq!(fast.stats.frozen_tops, 2);
        assert_eq!(fast.stats.pops, 0, "no iteration spent on the cycle");
    }

    #[test]
    fn union_cycle_with_external_ground_still_stays_top() {
        // x2/x3 form a union cycle fed by a grounded x1 — ⊤ still wins:
        // each eval unions a member that is ⊤.
        let cs = vec![
            C::Init { x: v(0) },
            C::Union { x: v(1), elems: vs(&[0]), sources: vs(&[0]) },
            C::Union { x: v(2), elems: vec![], sources: vs(&[1, 3]) },
            C::Union { x: v(3), elems: vec![], sources: vs(&[2]) },
        ];
        assert_agrees(&cs, 4);
    }

    #[test]
    fn copy_shares_the_allocation() {
        // Allocation sharing is an Arc-backend property, so pin the
        // backend (Auto may resolve to dense via env or size).
        let cs = vec![
            C::Init { x: v(0) },
            C::Union { x: v(1), elems: vs(&[0]), sources: vs(&[0]) },
            C::Copy { x: v(2), source: v(1) },
        ];
        let fast = solve_fast_with(&cs, 3, LatticeBackend::Arc);
        assert!(Arc::ptr_eq(fast.set_arc(v(1)), fast.set_arc(v(2))));
    }

    #[test]
    fn self_loop_union_is_cyclic() {
        // x0 = {1} ∪ LT(x0): a self-loop, degenerate union cycle.
        let cs = vec![C::Union { x: v(0), elems: vs(&[1]), sources: vs(&[0]) }];
        assert_agrees(&cs, 2);
        let fast = solve_fast(&cs, 2);
        assert_eq!(fast.stats.union_cycles, 1);
    }

    #[test]
    fn nested_loops_and_diamonds() {
        // Two interlocking φ-cycles sharing a grounded entry.
        let cs = vec![
            C::Init { x: v(0) },
            C::Inter { x: v(1), sources: vs(&[0, 2, 4]) },
            C::Union { x: v(2), elems: vs(&[1]), sources: vs(&[1]) },
            C::Inter { x: v(3), sources: vs(&[1, 4]) },
            C::Union { x: v(4), elems: vs(&[3]), sources: vs(&[3]) },
            C::Union { x: v(5), elems: vec![], sources: vs(&[2, 4]) },
        ];
        assert_agrees(&cs, 6);
    }

    #[test]
    fn intersection_of_disjoint_sets_is_empty() {
        let cs = vec![
            C::Init { x: v(0) },
            C::Init { x: v(1) },
            C::Union { x: v(2), elems: vs(&[0]), sources: vs(&[0]) },
            C::Union { x: v(3), elems: vs(&[1]), sources: vs(&[1]) },
            C::Inter { x: v(4), sources: vs(&[2, 3]) },
        ];
        let fast = solve_fast(&cs, 5);
        assert_eq!(fast.lt_set(v(4)), &[] as &[u32]);
        assert_agrees(&cs, 5);
    }

    fn csr(rows: Vec<Vec<u32>>) -> Csr {
        let mut offsets = vec![0u32];
        let mut edges = Vec::new();
        for row in rows {
            edges.extend(row);
            offsets.push(edges.len() as u32);
        }
        Csr { offsets, edges }
    }

    fn scc_rows(sccs: &Csr) -> Vec<Vec<u32>> {
        (0..sccs.len()).map(|k| sccs.row(k as u32).to_vec()).collect()
    }

    #[test]
    fn tarjan_orders_dependencies_first() {
        // 0 → (nothing); 1 reads 0; 2 reads 1. deps edges point at
        // dependencies, so emission must be [0], [1], [2].
        let deps = csr(vec![vec![], vec![0], vec![1]]);
        let sccs = scc_rows(&tarjan_sccs(&deps, |_| true));
        assert_eq!(sccs, vec![vec![0], vec![1], vec![2]]);
    }

    #[test]
    fn tarjan_groups_cycles() {
        // 1 ⇄ 2 cycle, 3 reads the cycle, 0 independent.
        let deps = csr(vec![vec![], vec![2], vec![1], vec![1]]);
        let sccs = scc_rows(&tarjan_sccs(&deps, |_| true));
        let cycle = sccs.iter().find(|c| c.len() == 2).expect("cycle component");
        let mut cycle = cycle.clone();
        cycle.sort_unstable();
        assert_eq!(cycle, vec![1, 2]);
        // The 2-cycle must be emitted before node 3 which depends on it.
        let cycle_pos = sccs.iter().position(|c| c.len() == 2).unwrap();
        let three_pos = sccs.iter().position(|c| c == &vec![3]).unwrap();
        assert!(cycle_pos < three_pos);
    }

    #[test]
    fn deep_chain_does_not_overflow_stack() {
        let n = 200_000u32;
        let mut cs = vec![C::Init { x: v(0) }];
        for i in 1..n {
            // Copies, so the closure stays small while the graph is deep.
            cs.push(C::Copy { x: v(i), source: v(i - 1) });
        }
        let fast = solve_fast(&cs, n as usize);
        assert_eq!(fast.lt_set(v(n - 1)), &[] as &[u32]);
        assert_eq!(fast.stats.pops, n as u64);
    }

    #[test]
    fn empty_system() {
        let sol = solve_fast(&[], 0);
        assert_eq!(sol.stats.pops, 0);
        assert_eq!(sol.size_histogram(), Vec::<(usize, usize)>::new());
    }

    mod properties {
        use super::*;
        use crate::test_systems::{grounded_systems, systems};
        use proptest::prelude::*;

        proptest! {
            /// The SCC solver computes the same greatest fixpoint as the
            /// paper's worklist solver on arbitrary constraint systems.
            #[test]
            fn fast_solver_agrees_with_baseline((cs, n) in systems()) {
                let base = solve(&cs, n);
                let fast = solve_fast(&cs, n);
                for x in 0..n {
                    let x = VarId::from_index(x);
                    prop_assert_eq!(base.lt_set(x), fast.lt_set(x), "LT({})", x);
                }
                prop_assert_eq!(base.stats.frozen_tops, fast.stats.frozen_tops);
            }

            /// Fully-grounded random systems (every variable defined)
            /// also agree — this is the population the on-demand prover
            /// property runs on, so keep the solvers honest there too.
            #[test]
            fn fast_solver_agrees_on_grounded_systems((cs, n) in grounded_systems()) {
                let base = solve(&cs, n);
                let fast = solve_fast(&cs, n);
                for x in 0..n {
                    let x = VarId::from_index(x);
                    prop_assert_eq!(base.lt_set(x), fast.lt_set(x), "LT({})", x);
                }
            }

            /// On *acyclic* systems the fast solver evaluates every
            /// constraint exactly once — the baseline can never beat
            /// that. (On cyclic systems the bound is empirical, not a
            /// theorem: a lucky FIFO order can occasionally stabilise a
            /// cycle in fewer pops than the local SCC iteration spends;
            /// `tests/solvers.rs` checks the whole evaluation corpus.)
            #[test]
            fn acyclic_systems_take_one_eval_per_constraint(
                (cs, n) in systems()
            ) {
                // Make the system acyclic: constraint for x may only
                // read variables strictly below x.
                let acyclic: Vec<C> = cs
                    .into_iter()
                    .map(|c| {
                        let x = c.defined();
                        let clamp = |s: VarId| VarId::from_index(s.index() % x.index().max(1));
                        match c {
                            C::Init { .. } | C::Copy { .. } if x.index() == 0 => C::Init { x },
                            C::Init { x } => C::Init { x },
                            C::Copy { x, source } => C::Copy { x, source: clamp(source) },
                            C::Union { x, elems, sources } if x.index() > 0 => C::Union {
                                x,
                                elems,
                                sources: sources.into_iter().map(clamp).collect(),
                            },
                            C::Inter { x, sources } if x.index() > 0 => C::Inter {
                                x,
                                sources: sources.into_iter().map(clamp).collect(),
                            },
                            other => C::Init { x: other.defined() },
                        }
                    })
                    .collect();
                let base = solve(&acyclic, n);
                let fast = solve_fast(&acyclic, n);
                prop_assert_eq!(fast.stats.pops, acyclic.len() as u64);
                prop_assert!(fast.stats.pops <= base.stats.pops);
                for x in 0..n {
                    let x = VarId::from_index(x);
                    prop_assert_eq!(base.lt_set(x), fast.lt_set(x));
                }
            }
        }
    }
}
