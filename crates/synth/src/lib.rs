//! `sraa-synth` — deterministic workload generators for the evaluation.
//!
//! The paper evaluates on three program populations, none of which can be
//! redistributed here: SPEC CPU 2006 (proprietary), the LLVM test-suite
//! (huge) and Csmith-generated C (tool-specific). This crate synthesises
//! stand-ins for all three — see DESIGN.md's substitution notes:
//!
//! * [`spec`] — 16 named profiles reproducing the *shape* of Figure 9/10
//!   (which analysis wins on which benchmark, and by roughly how much);
//! * [`suite`] — a 100-benchmark size ladder for Figure 8 and the
//!   Figure 11 scalability study;
//! * [`csmith`] — single-function random programs with pointer nesting
//!   depths 2–7 for Figure 12, guaranteed trap-free so the dynamic
//!   soundness property tests can execute them (an optional
//!   [`CsmithConfig::helpers`] knob adds helper functions and call
//!   sites, for the interprocedural differential tests);
//! * [`calls`] — the call-heavy family (helper bounds checks, chained
//!   helpers, recursive partitions) that measures the interprocedural
//!   summary layer (`sraa eval --interproc`), beyond the paper.
//!
//! Everything is deterministic: same seed, same program.

pub mod calls;
pub mod csmith;
pub mod optk;
pub mod spec;
pub mod suite;

/// A generated benchmark: a name and its MiniC source.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Workload {
    /// Benchmark name (unique within a generated set).
    pub name: String,
    /// MiniC source text, compilable by [`sraa_minic::compile`].
    pub source: String,
}

pub use calls::call_suite;
pub use csmith::{generate as csmith_generate, CsmithConfig};
pub use optk::{all as optk_all, generate as optk_generate};
pub use spec::{
    all as spec_all, generate_by_name as spec_generate_by_name, profiles as spec_profiles, Profile,
};
pub use suite::{csmith_figure12, test_suite};
