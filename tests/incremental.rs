//! Differential tests of the incremental engine (`--summary-cache`):
//! persistent [`ModuleSummaries`] keyed by body-hash ⊕ callee-key.
//!
//! Caching bugs are *silent-unsoundness* bugs — a stale summary would
//! quietly hand the optimiser wrong no-alias verdicts — so the contract
//! here is absolute: a **warm** run (cold → mutate k function bodies →
//! re-run against the cache) must be indistinguishable from a **fresh
//! cold** run. Indistinguishable means byte-identical: same per-function
//! summaries, same constraint stream, same solved `LT` sets, same frozen
//! set. On top of that, the hit/miss/invalidated counts must match the
//! call graph exactly: editing a set `M` of functions invalidates
//! precisely the functions that can *reach* `M` in the call graph
//! (reverse reachability), and nothing else.
//!
//! The committed golden fixture (`tests/fixtures/summary_cache_v1.bin`)
//! pins the byte format and the fingerprint scheme: if either changes,
//! the golden test fails and `persist::FORMAT_VERSION` must be bumped.
//! Regenerate with `SRAA_REGEN_GOLDEN=1 cargo test --test incremental`.

use sraa_core::{
    persist, CacheOutcome, EngineConfig, GenConfig, LatticeBackend, ModuleSummaries, SolverKind,
    SummaryKeys, VarId, VarIndex,
};
use sraa_ir::{BinOp, CallGraph, FuncId, InstKind, Module, Type};
use sraa_range::RangeAnalysis;
use std::collections::BTreeSet;

/// Compile + e-SSA + cold summaries + keys for one source.
struct Prepared {
    module: Module,
    ranges: RangeAnalysis,
    index: VarIndex,
    sums: ModuleSummaries,
    keys: SummaryKeys,
}

fn prepare(src: &str) -> Prepared {
    let mut module = sraa_minic::compile(src).expect("generated source compiles");
    let (ranges, _) = sraa_essa::transform_module(&mut module);
    let index = VarIndex::new(&module);
    let sums = ModuleSummaries::compute(
        &module,
        &ranges,
        GenConfig::default(),
        &index,
        SolverKind::Scc.solver(),
        LatticeBackend::Auto,
        sraa_core::Jobs::default(),
    );
    let keys = SummaryKeys::compute(&module);
    Prepared { module, ranges, index, sums, keys }
}

/// Serialize `p`'s summaries and load them back — the cache a warm run
/// would read from disk (exercising the full byte round trip each time).
fn cache_of(p: &Prepared) -> persist::SummaryCache {
    let bytes = persist::to_bytes(&p.module, &p.sums, &p.keys, GenConfig::default());
    persist::from_bytes(&bytes, GenConfig::default()).expect("round trip")
}

/// Functions that can reach any function in `from` (inclusive) — the set
/// whose cache keys a mutation of `from` must change.
fn reverse_reachable(m: &Module, from: &BTreeSet<FuncId>) -> BTreeSet<FuncId> {
    let cg = CallGraph::build(m);
    let mut seen: BTreeSet<FuncId> = from.clone();
    let mut work: Vec<FuncId> = from.iter().copied().collect();
    while let Some(f) = work.pop() {
        for &caller in cg.callers(f) {
            if seen.insert(caller) {
                work.push(caller);
            }
        }
    }
    seen
}

/// The warm run on `p` against `cache`, plus its outcome.
fn warm(p: &Prepared, cache: &persist::SummaryCache) -> (ModuleSummaries, CacheOutcome) {
    let (sums, keys, outcome) = ModuleSummaries::compute_incremental(
        &p.module,
        &p.ranges,
        GenConfig::default(),
        &p.index,
        SolverKind::Scc.solver(),
        LatticeBackend::Auto,
        sraa_core::Jobs::default(),
        Some(cache),
    );
    assert_eq!(keys, p.keys, "internally computed keys must match the standalone ones");
    (sums, outcome)
}

/// Asserts a warm result is *byte-identical* to the cold one, all the way
/// down to the solved relation: per-function summaries, the generated
/// constraint stream, every `LT` set, and the frozen-⊤ set.
fn assert_warm_equals_cold(p: &Prepared, warm_sums: &ModuleSummaries, name: &str) {
    for (f, cold) in p.sums.iter() {
        assert_eq!(
            warm_sums.of(f),
            cold,
            "{name}: summary of {} differs",
            p.module.function(f).name
        );
    }
    let gen = |sums| {
        sraa_core::generate_with_summaries(
            &p.module,
            &p.ranges,
            GenConfig::default(),
            &p.index,
            sums,
        )
    };
    let (sys_w, sys_c) = (gen(warm_sums), gen(&p.sums));
    assert_eq!(sys_w.constraints, sys_c.constraints, "{name}: constraint streams differ");
    assert_eq!(sys_w.num_vars, sys_c.num_vars);
    let solver = SolverKind::Scc.solver();
    let (sol_w, sol_c) = (
        solver.solve(&sys_w.constraints, sys_w.num_vars),
        solver.solve(&sys_c.constraints, sys_c.num_vars),
    );
    for v in 0..sys_c.num_vars {
        let v = VarId::from_index(v);
        assert_eq!(sol_w.lt_set(v), sol_c.lt_set(v), "{name}: LT({v}) differs warm vs cold");
        assert_eq!(sol_w.was_top(v), sol_c.was_top(v), "{name}: frozen sets differ on {v}");
    }
}

// ---------------------------------------------------------------------
// A synthetic module family with a *controllable* mutation surface: `n`
// helpers whose call structure is fixed by `structure` bits (helper i
// calls helper i+1 iff bit i is set) and whose bodies are selected by
// per-helper `variants` bits. Flipping a variant changes the body — and
// for leaves, even the distilled summary — without touching the call
// graph, so the expected invalidation set is exactly the reverse
// reachability closure of the mutated helpers.
// ---------------------------------------------------------------------

fn render(n: usize, structure: u64, variants: u64) -> String {
    let mut src = String::new();
    // Callees first so calls are to already-declared functions.
    for i in (0..n).rev() {
        let variant = (variants >> i) & 1;
        let calls_next = i + 1 < n && (structure >> i) & 1 == 1;
        let body = match (calls_next, variant) {
            (false, 0) => "if (n > 0) { return p + n; } return p + 1;".to_string(),
            (false, _) => "if (n > 1) { return p + n; } return p;".to_string(),
            (true, v) => format!("int* q = h{}(p, n); return q + {};", i + 1, v + 1),
        };
        src.push_str(&format!("int* h{i}(int* p, int n) {{ {body} }}\n"));
    }
    src.push_str("int main() {\n  int a[64];\n  int acc = 0;\n");
    for i in 0..n {
        src.push_str(&format!("  int* r{i} = h{i}(a, {});\n  acc += *r{i};\n", i + 2));
    }
    src.push_str("  return acc;\n}\n");
    src
}

/// One full cold → mutate → warm differential check; returns the outcome
/// so callers can layer extra assertions.
fn check_mutation(
    n: usize,
    structure: u64,
    variants: u64,
    mutated: &BTreeSet<usize>,
) -> CacheOutcome {
    let old = prepare(&render(n, structure, variants));
    let cache = cache_of(&old);

    let mut new_variants = variants;
    for &i in mutated {
        new_variants ^= 1 << i;
    }
    let fresh = prepare(&render(n, structure, new_variants));
    let (warm_sums, outcome) = warm(&fresh, &cache);
    assert_warm_equals_cold(&fresh, &warm_sums, "mutation");

    // Hit/miss accounting must mirror reverse reachability exactly.
    let mutated_ids: BTreeSet<FuncId> = mutated
        .iter()
        .map(|i| fresh.module.function_by_name(&format!("h{i}")).expect("helper exists"))
        .collect();
    let closure = reverse_reachable(&fresh.module, &mutated_ids);
    let total = fresh.module.num_functions();
    assert_eq!(
        outcome.invalidated as usize,
        closure.len(),
        "invalidations must equal the reverse-reachable closure of the mutation set"
    );
    assert_eq!(outcome.hits as usize, total - closure.len(), "everything else must hit");
    assert_eq!(outcome.misses, 0, "same function set: nothing can miss");
    // Invalidated keys really changed; unchanged functions kept theirs.
    for (f, _) in fresh.module.functions() {
        let name = &fresh.module.function(f).name;
        let old_f = old.module.function_by_name(name).expect("same function set");
        if closure.contains(&f) {
            assert_ne!(old.keys.of(old_f), fresh.keys.of(f), "{name}: stale key survived an edit");
        } else {
            assert_eq!(old.keys.of(old_f), fresh.keys.of(f), "{name}: key churned without an edit");
        }
    }
    outcome
}

#[test]
fn chain_mutation_invalidates_exactly_the_callers_above() {
    // h0 → h1 → h2 → h3 (all chained), main calls every helper. Mutating
    // h2 must invalidate {h2, h1, h0, main} and leave {h3} warm.
    let outcome = check_mutation(4, 0b0111, 0, &BTreeSet::from([2]));
    assert_eq!((outcome.hits, outcome.invalidated), (1, 4));
}

#[test]
fn leaf_mutation_with_no_callers_only_invalidates_itself_and_main() {
    // No helper-to-helper edges: each helper is only reachable from main.
    let outcome = check_mutation(3, 0, 0, &BTreeSet::from([1]));
    assert_eq!((outcome.hits, outcome.invalidated), (2, 2));
}

#[test]
fn unchanged_module_is_a_complete_hit() {
    let p = prepare(&render(5, 0b01101, 0b10010));
    let cache = cache_of(&p);
    let (warm_sums, outcome) = warm(&p, &cache);
    assert_warm_equals_cold(&p, &warm_sums, "unchanged");
    assert_eq!(outcome.hits as usize, p.module.num_functions());
    assert_eq!((outcome.misses, outcome.invalidated), (0, 0));
    assert_eq!(outcome.hit_rate(), 1.0);
    assert_eq!(warm_sums.stats.solves, 0, "a 100% warm run must skip every per-SCC solve");
}

#[test]
fn engine_warm_run_through_a_cache_file_matches_the_cold_engine() {
    use sraa_alias::AaEval;
    let src = render(4, 0b0101, 0b0010);
    let path = std::env::temp_dir().join(format!("sraa_incr_engine_{}.bin", std::process::id()));
    std::fs::remove_file(&path).ok();

    let build = |cache: bool| {
        let mut m = sraa_minic::compile(&src).unwrap();
        let cfg = if cache {
            EngineConfig::default().with_summary_cache(&path)
        } else {
            EngineConfig::default().with_summaries()
        };
        let engine = sraa_core::DisambiguationEngine::build(&mut m, cfg);
        (m, engine)
    };
    let (m_cold, cold) = build(false);
    let (_, first) = build(true); // cold, writes the cache
    let (m_warm, warm) = build(true); // warm, all hits
    assert_eq!(
        (first.stats().cache_hits, first.stats().cache_misses as usize),
        (0, m_cold.num_functions())
    );
    assert_eq!(warm.stats().cache_hits as usize, m_cold.num_functions());
    assert_eq!((warm.stats().cache_misses, warm.stats().cache_invalidated), (0, 0));
    assert_eq!(warm.summaries().map(|s| s.facts()), cold.summaries().map(|s| s.facts()));

    // Every query result — LT sets and batch no-alias verdicts — is
    // identical to the never-cached engine's.
    for (fid, f) in m_cold.functions() {
        for v in f.value_ids() {
            assert_eq!(warm.lt_set(fid, v), cold.lt_set(fid, v), "LT({v}) differs");
        }
        let ptrs = AaEval::pointer_values(&m_warm, fid);
        assert_eq!(warm.no_alias_pairs(f, fid, &ptrs), cold.no_alias_pairs(f, fid, &ptrs));
    }
    std::fs::remove_file(&path).ok();
}

// ---------------------------------------------------------------------
// Golden format fixture.
// ---------------------------------------------------------------------

/// A hand-built module (no frontend, no e-SSA) so the fixture pins only
/// the fingerprint scheme, the key propagation, the summary distillation
/// and the byte format — not the MiniC pipeline.
fn golden_module() -> Module {
    let mut m = Module::new();
    let next = m.declare_function("next", vec![("i", Type::Int)], Some(Type::Int));
    let main_fn = m.declare_function("main", vec![], Some(Type::Int));
    {
        let f = m.function_mut(next);
        let i = f.param_value(0);
        let one = f.add_const(1);
        let entry = f.entry();
        let sum = f.append_inst(
            entry,
            InstKind::Binary { op: BinOp::Add, lhs: i, rhs: one },
            Some(Type::Int),
        );
        f.append_inst(entry, InstKind::Ret(Some(sum)), None);
    }
    {
        let f = m.function_mut(main_fn);
        let entry = f.entry();
        let three = f.add_const(3);
        let r = f.append_inst(
            entry,
            InstKind::Call { callee: next, args: vec![three] },
            Some(Type::Int),
        );
        f.append_inst(entry, InstKind::Ret(Some(r)), None);
    }
    sraa_ir::verify(&m).expect("golden module is well-formed");
    m
}

fn golden_bytes() -> Vec<u8> {
    let m = golden_module();
    let ranges = sraa_range::analyze(&m);
    let index = VarIndex::new(&m);
    let sums = ModuleSummaries::compute(
        &m,
        &ranges,
        GenConfig::default(),
        &index,
        SolverKind::Scc.solver(),
        LatticeBackend::Auto,
        sraa_core::Jobs::default(),
    );
    assert_eq!(sums.of(m.function_by_name("next").unwrap()).args_lt_ret(), &[0], "i < next(i)");
    let keys = SummaryKeys::compute(&m);
    persist::to_bytes(&m, &sums, &keys, GenConfig::default())
}

#[test]
fn golden_cache_fixture_round_trips_and_serialization_is_stable() {
    let fixture = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/fixtures/summary_cache_v1.bin");
    let bytes = golden_bytes();
    // Byte-identical across *processes* too, not just within one run:
    // nothing about the key or the format may depend on ASLR, hash-map
    // iteration, or pointer identity.
    assert_eq!(bytes, golden_bytes());

    if std::env::var_os("SRAA_REGEN_GOLDEN").is_some() {
        std::fs::write(fixture, &bytes).expect("write fixture");
        return;
    }
    let committed = std::fs::read(fixture).expect(
        "tests/fixtures/summary_cache_v1.bin missing — regenerate with \
         SRAA_REGEN_GOLDEN=1 cargo test --test incremental",
    );
    assert_eq!(
        bytes, committed,
        "the serialized cache no longer matches the committed fixture. If the byte \
         format or the fingerprint scheme changed intentionally, bump \
         persist::FORMAT_VERSION and regenerate the fixture"
    );

    // The committed artifact round-trips through the parser, keys intact.
    let cache = persist::from_bytes(&committed, GenConfig::default()).expect("fixture parses");
    assert_eq!(cache.len(), 2);
    let m = golden_module();
    let keys = SummaryKeys::compute(&m);
    let next = m.function_by_name("next").unwrap();
    let summary = cache.lookup("next", keys.of(next)).expect("key matches fixture");
    assert_eq!(summary.args_lt_ret(), &[0]);
}

// ---------------------------------------------------------------------
// Property suite: random structures, variants and mutation sets — plus
// csmith modules for the unchanged-module contract.
// ---------------------------------------------------------------------

mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// Cold → mutate k helper bodies → warm must be byte-identical to
        /// a fresh cold run, with hit/miss counts matching the call
        /// graph's reverse-reachability closure of the mutation — for
        /// arbitrary call structures, body variants and mutation sets.
        #[test]
        fn warm_equals_cold_after_arbitrary_mutations(
            n in 2usize..7,
            structure in 0u64..64,
            variants in 0u64..64,
            raw_mutations in proptest::collection::btree_set(0usize..7, 1..4),
        ) {
            let mutated: BTreeSet<usize> =
                raw_mutations.into_iter().map(|i| i % n).collect();
            check_mutation(n, structure, variants, &mutated);
        }

        /// An unchanged csmith module (with helper calls) warm-runs at a
        /// 100% hit rate with zero solves and identical results.
        #[test]
        fn csmith_modules_hit_fully_when_unchanged(
            seed in 0u64..12,
            helpers in 1usize..3,
        ) {
            let w = sraa_synth::csmith_generate(sraa_synth::CsmithConfig {
                seed,
                max_ptr_depth: 3,
                num_stmts: 16,
                helpers,
            });
            let p = prepare(&w.source);
            let cache = cache_of(&p);
            let (warm_sums, outcome) = warm(&p, &cache);
            assert_warm_equals_cold(&p, &warm_sums, &w.name);
            prop_assert_eq!(outcome.hits as usize, p.module.num_functions());
            prop_assert_eq!(outcome.misses, 0);
            prop_assert_eq!(outcome.invalidated, 0);
            prop_assert_eq!(warm_sums.stats.solves, 0);
        }
    }
}
