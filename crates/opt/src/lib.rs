//! `sraa-opt` — alias-analysis *clients*.
//!
//! The paper motivates better pointer disambiguation with the
//! optimisations it unlocks (§2): *"the extra precision gives compilers
//! information to carry out more extensive transformations in programs
//! … constant propagation, value numbering, subexpression elimination,
//! scheduling, etc."* Its own applicability study (§4.3) measures a
//! *consumer* of alias information — the Program Dependence Graph. This
//! crate adds two more consumers, classic scalar memory optimisations
//! parameterised by any [`AliasAnalysis`]:
//!
//! * [`eliminate_redundant_loads`] — store-to-load and load-to-load
//!   forwarding. A `MayAlias` store kills available facts, so every
//!   extra `NoAlias` answer keeps more loads eliminable.
//! * [`eliminate_dead_stores`] — a store overwritten before any
//!   potentially-aliasing read is dead. A `MayAlias` load keeps stores
//!   alive, so extra `NoAlias` answers remove more stores.
//! * [`hoist_invariant_loads`] — loop-invariant load motion. A load of
//!   an address defined outside the loop escapes to the preheader only
//!   if every store in the loop provably misses it.
//!
//! Both transformations are *sound for any sound oracle* — the
//! differential tests in `tests/opt_soundness.rs` execute every
//! optimised program against its original and require identical results.
//! The passes re-ask the same pointer pairs constantly (per store, per
//! loop iteration of the scan); when the oracle is the strict-inequality
//! backend those queries hit the `sraa_core::DisambiguationEngine`'s
//! memoized pair cache instead of re-deriving Definition 3.11 each time.
//! The `applicability_opt` harness (`cargo run -p sraa-bench --bin
//! applicability_opt`) turns them into the experiment the paper's §2
//! promises: the same pass, driven by BA, removes fewer memory
//! operations than driven by BA+LT.
//!
//! [`AliasAnalysis`]: sraa_alias::AliasAnalysis

pub mod dse;
pub mod licm;
pub mod load_elim;

pub use dse::eliminate_dead_stores;
pub use licm::hoist_invariant_loads;
pub use load_elim::eliminate_redundant_loads;

/// What an optimisation pass did to one function.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct OptStats {
    /// Loads replaced by an available value and detached.
    pub loads_eliminated: usize,
    /// Stores proven dead and detached.
    pub stores_eliminated: usize,
    /// Loads moved out of loops to their preheaders.
    pub loads_hoisted: usize,
}

impl std::ops::AddAssign for OptStats {
    fn add_assign(&mut self, rhs: OptStats) {
        self.loads_eliminated += rhs.loads_eliminated;
        self.stores_eliminated += rhs.stores_eliminated;
        self.loads_hoisted += rhs.loads_hoisted;
    }
}
