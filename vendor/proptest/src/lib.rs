//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no registry access, so this vendored crate
//! implements the subset of the proptest 1.x API the workspace's property
//! tests use: the [`proptest!`] macro, [`strategy::Strategy`] with
//! `prop_map` / `prop_flat_map`, [`strategy::Just`], [`prop_oneof!`],
//! range and tuple strategies, [`collection::vec`] /
//! [`collection::btree_set`], [`arbitrary::any`], and the `prop_assert*` /
//! `prop_assume!` macros.
//!
//! Differences from the real crate, by design:
//!
//! * **No shrinking.** A failing case panics with the generated inputs'
//!   `Debug` output (via the assertion message) but is not minimised.
//! * **Deterministic seeds.** Each test derives its RNG stream from the
//!   module path, test name, and case index, so runs are reproducible
//!   without a persistence file.
//! * 256 cases per property, matching proptest's default.

pub mod strategy {
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    use std::ops::{Range, RangeInclusive};

    /// The per-property random source. Wraps the vendored [`StdRng`].
    pub struct TestRng(StdRng);

    impl TestRng {
        pub fn deterministic(seed: u64) -> Self {
            TestRng(StdRng::seed_from_u64(seed))
        }

        pub fn gen_usize(&mut self, range: Range<usize>) -> usize {
            self.0.gen_range(range)
        }

        pub fn gen_bool(&mut self) -> bool {
            self.0.gen_bool(0.5)
        }

        pub(crate) fn raw(&mut self) -> &mut StdRng {
            &mut self.0
        }
    }

    /// A generator of values of type `Value`. Unlike real proptest there
    /// is no value tree: `generate` returns the value directly.
    pub trait Strategy {
        type Value;

        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { source: self, f }
        }

        fn prop_flat_map<S2, F>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
            S2: Strategy,
            F: Fn(Self::Value) -> S2,
        {
            FlatMap { source: self, f }
        }

        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            Box::new(self)
        }
    }

    pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

    impl<S: Strategy + ?Sized> Strategy for Box<S> {
        type Value = S::Value;
        fn generate(&self, rng: &mut TestRng) -> S::Value {
            (**self).generate(rng)
        }
    }

    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;
        fn generate(&self, rng: &mut TestRng) -> S::Value {
            (**self).generate(rng)
        }
    }

    /// Always produces a clone of the wrapped value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    #[derive(Clone)]
    pub struct Map<S, F> {
        pub(crate) source: S,
        pub(crate) f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.source.generate(rng))
        }
    }

    #[derive(Clone)]
    pub struct FlatMap<S, F> {
        pub(crate) source: S,
        pub(crate) f: F,
    }

    impl<S, S2, F> Strategy for FlatMap<S, F>
    where
        S: Strategy,
        S2: Strategy,
        F: Fn(S::Value) -> S2,
    {
        type Value = S2::Value;
        fn generate(&self, rng: &mut TestRng) -> S2::Value {
            (self.f)(self.source.generate(rng)).generate(rng)
        }
    }

    /// Weighted choice between boxed alternatives — the engine behind
    /// [`prop_oneof!`](crate::prop_oneof).
    pub struct Union<T> {
        arms: Vec<(u32, BoxedStrategy<T>)>,
        total: u32,
    }

    impl<T> Union<T> {
        pub fn new(arms: Vec<(u32, BoxedStrategy<T>)>) -> Self {
            assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
            let total = arms.iter().map(|(w, _)| *w).sum();
            assert!(total > 0, "prop_oneof! weights must not all be zero");
            Union { arms, total }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            let mut r = rng.gen_usize(0..self.total as usize) as u32;
            for (w, s) in &self.arms {
                if r < *w {
                    return s.generate(rng);
                }
                r -= w;
            }
            unreachable!("weighted pick out of range")
        }
    }

    impl<T: super::sample::SampleValue> Strategy for Range<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::sample_range(self.clone(), rng.raw())
        }
    }

    impl<T: super::sample::SampleValue> Strategy for RangeInclusive<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::sample_range_inclusive(self.clone(), rng.raw())
        }
    }

    macro_rules! impl_tuple_strategy {
        ($($s:ident),+) => {
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    #[allow(non_snake_case)]
                    let ($($s,)+) = self;
                    ($($s.generate(rng),)+)
                }
            }
        };
    }

    impl_tuple_strategy!(A);
    impl_tuple_strategy!(A, B);
    impl_tuple_strategy!(A, B, C);
    impl_tuple_strategy!(A, B, C, D);

    /// A vector of strategies generates a vector of one value from each,
    /// mirroring proptest's `impl Strategy for Vec<S>`.
    impl<S: Strategy> Strategy for Vec<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            self.iter().map(|s| s.generate(rng)).collect()
        }
    }
}

/// Integer sampling glue between strategies and the vendored `rand`.
pub mod sample {
    use rand::rngs::StdRng;
    use rand::Rng;
    use std::ops::{Range, RangeInclusive};

    pub trait SampleValue: Copy {
        fn sample_range(range: Range<Self>, rng: &mut StdRng) -> Self;
        fn sample_range_inclusive(range: RangeInclusive<Self>, rng: &mut StdRng) -> Self;
    }

    macro_rules! impl_sample_value {
        ($($t:ty),*) => {$(
            impl SampleValue for $t {
                fn sample_range(range: Range<Self>, rng: &mut StdRng) -> Self {
                    rng.gen_range(range)
                }
                fn sample_range_inclusive(range: RangeInclusive<Self>, rng: &mut StdRng) -> Self {
                    rng.gen_range(range)
                }
            }
        )*};
    }

    impl_sample_value!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);
}

pub mod arbitrary {
    use super::strategy::{Strategy, TestRng};
    use std::marker::PhantomData;

    /// Types with a canonical "any value" strategy.
    pub trait Arbitrary: Sized {
        fn arbitrary_value(rng: &mut TestRng) -> Self;
    }

    impl Arbitrary for bool {
        fn arbitrary_value(rng: &mut TestRng) -> bool {
            rng.gen_bool()
        }
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary_value(rng: &mut TestRng) -> $t {
                    use rand::Rng;
                    rng.raw().gen_range(<$t>::MIN..=<$t>::MAX)
                }
            }
        )*};
    }

    impl_arbitrary_int!(i8, i16, i32, i64, u8, u16, u32, usize);

    pub struct Any<T>(PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary_value(rng)
        }
    }

    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }
}

pub mod collection {
    use super::strategy::{Strategy, TestRng};
    use std::collections::BTreeSet;
    use std::ops::Range;

    /// Element-count range for collection strategies.
    #[derive(Debug, Clone)]
    pub struct SizeRange(Range<usize>);

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            SizeRange(r)
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange(n..n + 1)
        }
    }

    #[derive(Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into().0 }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = rng.gen_usize(self.size.clone());
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    #[derive(Clone)]
    pub struct BTreeSetStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    pub fn btree_set<S>(element: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        BTreeSetStrategy { element, size: size.into().0 }
    }

    impl<S> Strategy for BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        type Value = BTreeSet<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> BTreeSet<S::Value> {
            let target = rng.gen_usize(self.size.clone());
            let mut out = BTreeSet::new();
            // The element domain may be smaller than `target`; bail out
            // after a bounded number of duplicate draws.
            for _ in 0..10 * target + 10 {
                if out.len() >= target {
                    break;
                }
                out.insert(self.element.generate(rng));
            }
            out
        }
    }
}

pub mod test_runner {
    /// Cases per property, matching real proptest's default.
    pub const NUM_CASES: u64 = 256;

    /// Deterministic per-case seed: module, test name, and case index.
    pub fn seed_for(module: &str, name: &str, case: u64) -> u64 {
        let mut h: u64 = 0xcbf29ce484222325;
        for b in module.bytes().chain(name.bytes()) {
            h = (h ^ b as u64).wrapping_mul(0x100000001b3);
        }
        h ^ case.wrapping_mul(0x9E3779B97F4A7C15)
    }
}

pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

/// Defines `#[test]` functions that run a body over generated inputs.
#[macro_export]
macro_rules! proptest {
    ($($(#[$meta:meta])* fn $name:ident($($pat:pat in $strat:expr),* $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                for case in 0..$crate::test_runner::NUM_CASES {
                    let seed = $crate::test_runner::seed_for(
                        module_path!(),
                        stringify!($name),
                        case,
                    );
                    let mut rng = $crate::strategy::TestRng::deterministic(seed);
                    #[allow(clippy::redundant_closure_call)]
                    let _: ::std::result::Result<(), ()> = (|| {
                        $(let $pat = $crate::strategy::Strategy::generate(&($strat), &mut rng);)*
                        $body
                        ::std::result::Result::Ok(())
                    })();
                }
            }
        )*
    };
}

/// Weighted (or unweighted) choice between strategies with a common
/// value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {{
        let arms: ::std::vec::Vec<(
            u32,
            ::std::boxed::Box<dyn $crate::strategy::Strategy<Value = _>>,
        )> = vec![$(($weight as u32, ::std::boxed::Box::new($strat) as _)),+];
        $crate::strategy::Union::new(arms)
    }};
    ($($strat:expr),+ $(,)?) => {
        $crate::prop_oneof![$(1 => $strat),+]
    };
}

/// Skip the current case when its inputs don't satisfy a precondition.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Ok(());
        }
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        /// Ranges, tuples, maps, flat-maps, and oneof all produce
        /// in-domain values.
        #[test]
        fn strategies_stay_in_domain(
            n in 2usize..24,
            (a, b) in (0i64..10, -5i64..=5),
            v in crate::collection::vec(0usize..8, 0..16),
            flag in any::<bool>(),
            pick in prop_oneof![1 => Just(0u8), 3 => 1u8..4],
        ) {
            prop_assert!((2..24).contains(&n));
            prop_assert!((0..10).contains(&a) && (-5..=5).contains(&b));
            prop_assert!(v.len() < 16 && v.iter().all(|&e| e < 8));
            let _ = flag;
            prop_assert!(pick < 4u8);
        }

        #[test]
        fn assume_skips_cases(x in 0u32..100) {
            prop_assume!(x % 2 == 0);
            prop_assert_eq!(x % 2, 0);
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let s = crate::collection::vec(0usize..1000, 3..10);
        let mut r1 = crate::strategy::TestRng::deterministic(99);
        let mut r2 = crate::strategy::TestRng::deterministic(99);
        assert_eq!(s.generate(&mut r1), s.generate(&mut r2));
    }
}
