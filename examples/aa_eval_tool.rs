//! A command-line `aa-eval`, mirroring the paper artifact's `sraa.sh`:
//! compile a MiniC file, run every analysis, and print the verdict
//! summary plus the per-function LT-only wins.
//!
//! ```text
//! cargo run --example aa_eval_tool -- path/to/program.c
//! cargo run --example aa_eval_tool            # uses a built-in demo
//! ```

use sraa::alias::{
    AaEval, AliasAnalysis, AndersenAnalysis, BasicAliasAnalysis, Combined, StrictInequalityAa,
};

const DEMO: &str = r#"
int sum_pairs(int* v, int n) {
    int s = 0;
    for (int i = 0; i + 1 < n; i++) s += v[i] * v[i + 1];
    return s;
}
int main() {
    int a[32];
    for (int i = 0; i < 32; i++) a[i] = i % 7;
    return sum_pairs(a, 32) % 256;
}
"#;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let source = match args.get(1) {
        Some(path) => {
            std::fs::read_to_string(path).unwrap_or_else(|e| panic!("cannot read {path}: {e}"))
        }
        None => {
            println!("(no input file given; analysing a built-in demo program)\n");
            DEMO.to_string()
        }
    };

    let mut module = match sraa::minic::compile(&source) {
        Ok(m) => m,
        Err(e) => {
            eprintln!("compile error: {e}");
            std::process::exit(1);
        }
    };

    let lt = StrictInequalityAa::new(&mut module);
    let ba = BasicAliasAnalysis::new(&module);
    let cf = AndersenAnalysis::new(&module);
    let ba_lt =
        Combined::new(vec![Box::new(BasicAliasAnalysis::new(&module)), Box::new(lt.clone())]);
    let ba_cf = Combined::new(vec![
        Box::new(BasicAliasAnalysis::new(&module)),
        Box::new(AndersenAnalysis::new(&module)),
    ]);

    let stats = sraa::ir::ModuleStats::compute(&module);
    println!(
        "module: {} function(s), {} instruction(s), {} pointer value(s), {} queries",
        stats.functions,
        stats.instructions,
        stats.pointer_values,
        AaEval::num_queries(&module),
    );
    println!(
        "LT solver: {} constraints, {} constraint evaluations ({:.2} per constraint)\n",
        lt.engine().stats().constraints,
        lt.engine().stats().pops,
        lt.engine().stats().pops_per_constraint(),
    );

    let analyses: Vec<&dyn AliasAnalysis> = vec![&ba, &lt, &cf, &ba_lt, &ba_cf];
    println!("{:<8} {:>10} {:>10} {:>10} {:>10}", "analysis", "no-alias", "may", "must", "%no");
    for s in AaEval::run(&module, &analyses) {
        println!(
            "{:<8} {:>10} {:>10} {:>10} {:>9.2}%",
            s.name,
            s.no_alias,
            s.may_alias,
            s.must_alias,
            s.no_alias_rate()
        );
    }
}
