//! The paper's analysis packaged as an [`AliasAnalysis`] — **LT** in the
//! evaluation's tables and figures.
//!
//! This adapter is a thin, cheaply-clonable handle on a shared
//! [`DisambiguationEngine`]: the engine owns the pipeline, the solved
//! relation and the memoized pair-query cache, and every clone of the
//! adapter (e.g. inside a [`Combined`](crate::Combined) chain) shares the
//! same results and cache instead of re-running or deep-copying the
//! analysis.

use crate::{AliasAnalysis, AliasResult};
use sraa_core::{DisambiguationEngine, EngineConfig, GenConfig};
use sraa_ir::{FuncId, Module, Value};
use std::sync::Arc;

/// Strict-inequality alias analysis (the paper's `sraa` LLVM pass).
///
/// Construction runs the full pipeline — e-SSA conversion, range analysis,
/// constraint generation and solving — which *mutates* the module into
/// e-SSA form. Build it first and hand the transformed module to the other
/// analyses so every method answers queries about the same program.
#[derive(Clone, Debug)]
pub struct StrictInequalityAa {
    engine: Arc<DisambiguationEngine>,
}

impl StrictInequalityAa {
    /// Runs the pipeline on `module` (converting it to e-SSA form) with
    /// the default configuration (SCC solver).
    pub fn new(module: &mut Module) -> Self {
        Self::from_engine(DisambiguationEngine::run(module))
    }

    /// Runs the pipeline with explicit constraint-generation options.
    pub fn with_config(module: &mut Module, cfg: GenConfig) -> Self {
        Self::from_engine(DisambiguationEngine::run_with(module, cfg))
    }

    /// Runs the pipeline with a full engine configuration (constraint
    /// options + solver strategy + interprocedural mode).
    pub fn with_engine_config(module: &mut Module, cfg: EngineConfig) -> Self {
        Self::from_engine(DisambiguationEngine::build(module, cfg))
    }

    /// Runs the pipeline with bottom-up interprocedural summaries enabled
    /// (the `--interproc` CLI mode): strict-inequality facts cross direct
    /// call boundaries, so verdicts are a strict refinement of
    /// [`StrictInequalityAa::new`]'s.
    pub fn interprocedural(module: &mut Module) -> Self {
        Self::with_engine_config(module, EngineConfig::default().with_summaries())
    }

    /// Wraps an already-built engine.
    pub fn from_engine(engine: DisambiguationEngine) -> Self {
        Self { engine: Arc::new(engine) }
    }

    /// Wraps a shared engine (no copy; the memo cache is shared too).
    pub fn from_shared(engine: Arc<DisambiguationEngine>) -> Self {
        Self { engine }
    }

    /// Access to the underlying engine (solved relation, statistics,
    /// batch queries).
    pub fn engine(&self) -> &DisambiguationEngine {
        &self.engine
    }

    /// The shared engine handle, for consumers that want to hold it
    /// directly.
    pub fn share(&self) -> Arc<DisambiguationEngine> {
        Arc::clone(&self.engine)
    }
}

impl AliasAnalysis for StrictInequalityAa {
    fn name(&self) -> String {
        "LT".to_string()
    }

    fn alias(&self, module: &Module, func: FuncId, p1: Value, p2: Value) -> AliasResult {
        if p1 == p2 {
            return AliasResult::MustAlias;
        }
        let f = module.function(func);
        if self.engine.no_alias(f, func, p1, p2) {
            AliasResult::NoAlias
        } else {
            AliasResult::MayAlias
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sraa_ir::InstKind;

    #[test]
    fn lt_disambiguates_the_motivating_loop_and_ba_does_not() {
        let mut m = sraa_minic::compile(
            r#"
            void f(int* v, int N) {
                for (int i = 0, j = N; i < j; i++, j--) v[i] = v[j];
            }
            "#,
        )
        .unwrap();
        let lt = StrictInequalityAa::new(&mut m);
        let ba = crate::BasicAliasAnalysis::new(&m);
        let fid = m.function_by_name("f").unwrap();
        let f = m.function(fid);
        let mut ptrs = Vec::new();
        for b in f.block_ids() {
            for (_, d) in f.block_insts(b) {
                match &d.kind {
                    InstKind::Load { ptr } => ptrs.push(*ptr),
                    InstKind::Store { ptr, .. } => ptrs.push(*ptr),
                    _ => {}
                }
            }
        }
        assert_eq!(lt.alias(&m, fid, ptrs[0], ptrs[1]), AliasResult::NoAlias);
        assert_eq!(ba.alias(&m, fid, ptrs[0], ptrs[1]), AliasResult::MayAlias);
    }

    #[test]
    fn clones_share_the_engine_and_its_cache() {
        let mut m = sraa_minic::compile(
            "void f(int* v, int n) { for (int i = 0; i + 1 < n; i++) v[i] = v[i + 1]; }",
        )
        .unwrap();
        let lt = StrictInequalityAa::new(&mut m);
        let clone = lt.clone();
        assert!(Arc::ptr_eq(&lt.share(), &clone.share()), "clones must not deep-copy the engine");
        // Queries through the clone warm the shared cache.
        let fid = m.function_by_name("f").unwrap();
        let f = m.function(fid);
        let ptrs: Vec<_> = f
            .block_ids()
            .flat_map(|b| f.block_insts(b))
            .filter_map(|(_, d)| match &d.kind {
                InstKind::Load { ptr } => Some(*ptr),
                InstKind::Store { ptr, .. } => Some(*ptr),
                _ => None,
            })
            .collect();
        let _ = clone.alias(&m, fid, ptrs[0], ptrs[1]);
        assert!(lt.engine().cached_queries() > 0);
    }

    #[test]
    fn solver_strategy_does_not_change_verdicts() {
        let src = r#"
            void f(int* v, int N) {
                for (int i = 0, j = N; i < j; i++, j--) v[i] = v[j];
            }
        "#;
        let mut m1 = sraa_minic::compile(src).unwrap();
        let scc = StrictInequalityAa::new(&mut m1);
        let mut m2 = sraa_minic::compile(src).unwrap();
        let wl = StrictInequalityAa::with_engine_config(
            &mut m2,
            EngineConfig { solver: sraa_core::SolverKind::Worklist, ..Default::default() },
        );
        let fid = m1.function_by_name("f").unwrap();
        let f = m1.function(fid);
        for b in f.block_ids() {
            for (p1, _) in f.block_insts(b) {
                for b2 in f.block_ids() {
                    for (p2, _) in f.block_insts(b2) {
                        assert_eq!(
                            scc.alias(&m1, fid, p1, p2),
                            wl.alias(&m2, fid, p1, p2),
                            "strategies disagree on {p1} vs {p2}"
                        );
                    }
                }
            }
        }
    }
}
