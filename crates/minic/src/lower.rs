//! Lowering from the MiniC AST to the SSA IR.
//!
//! SSA construction follows Braun et al., "Simple and Efficient
//! Construction of Static Single Assignment Form" (CC 2013): scalar locals
//! are kept in per-block definition maps; reads reach backwards through
//! sealed blocks, inserting φ-functions on demand; blocks are sealed once
//! all their predecessors are known. Trivial φs are left in place — they
//! are harmless to every analysis in this workspace (a φ whose operands
//! coincide intersects a less-than set with itself).
//!
//! Pointer arithmetic (`p + i`, `p[i]`, `&a[i]`) lowers to `gep`
//! instructions, the canonical derived-pointer form the paper's
//! disambiguation criterion 2 (its Definition 3.11) consumes.

use crate::ast::*;
use crate::CompileError;
use sraa_ir::{BinOp, BlockId, FuncId, Function, GlobalId, InstKind, Module, Pred, Type, Value};
use std::collections::{HashMap, HashSet};

/// Lowers a parsed program into an IR module.
///
/// # Errors
///
/// Reports semantic problems (unknown names, type mismatches, `break`
/// outside a loop, …) with source line numbers.
pub fn lower_program(prog: &Program) -> Result<Module, CompileError> {
    let mut module = Module::new();
    let mut globals: HashMap<String, (GlobalId, Ty, u32)> = HashMap::new();
    let mut funcs: HashMap<String, (FuncId, Vec<Ty>, Ty)> = HashMap::new();

    for g in &prog.globals {
        if globals.contains_key(&g.name) {
            return Err(err(g.line, format!("duplicate global `{}`", g.name)));
        }
        let ir_ty =
            g.elem_ty.to_ir().ok_or_else(|| err(g.line, "globals cannot be void".to_string()))?;
        let id = module.declare_global(g.name.clone(), ir_ty, g.count);
        globals.insert(g.name.clone(), (id, g.elem_ty, g.count));
    }

    for f in &prog.funcs {
        if funcs.contains_key(&f.name) || globals.contains_key(&f.name) {
            return Err(err(f.line, format!("duplicate definition of `{}`", f.name)));
        }
        let params: Vec<(&str, Type)> = f
            .params
            .iter()
            .map(|(n, t)| {
                t.to_ir()
                    .map(|ir| (n.as_str(), ir))
                    .ok_or_else(|| err(f.line, "void parameter".to_string()))
            })
            .collect::<Result<_, _>>()?;
        let fid = module.declare_function(f.name.clone(), params, f.ret.to_ir());
        funcs.insert(f.name.clone(), (fid, f.params.iter().map(|(_, t)| *t).collect(), f.ret));
    }

    for f in &prog.funcs {
        let (fid, _, _) = funcs[&f.name];
        let mut lower = FnLower::new(module.function_mut(fid), &globals, &funcs, f.ret);
        lower.run(f)?;
    }

    Ok(module)
}

fn err(line: u32, message: String) -> CompileError {
    CompileError { line, message }
}

/// How a name is bound in the current scope.
#[derive(Clone, Debug)]
enum Binding {
    /// SSA-tracked scalar; the key indexes the Braun definition maps.
    Scalar { key: String, ty: Ty },
    /// A local array: the name denotes the alloca'd base pointer.
    Array { ptr: Value, elem: Ty },
}

/// An assignable location.
enum Place {
    /// A scalar SSA variable.
    Ssa { key: String, ty: Ty },
    /// A memory cell: `addr` points at a value of type `elem`.
    Mem { addr: Value, elem: Ty },
}

struct FnLower<'a> {
    f: &'a mut Function,
    globals: &'a HashMap<String, (GlobalId, Ty, u32)>,
    funcs: &'a HashMap<String, (FuncId, Vec<Ty>, Ty)>,
    ret: Ty,
    // Braun state --------------------------------------------------------
    defs: HashMap<String, HashMap<BlockId, Value>>,
    var_tys: HashMap<String, Ty>,
    sealed: HashSet<BlockId>,
    incomplete: HashMap<BlockId, Vec<(String, Value)>>,
    preds: Vec<Vec<BlockId>>,
    // Lowering cursor ----------------------------------------------------
    cur: BlockId,
    terminated: bool,
    scopes: Vec<HashMap<String, Binding>>,
    loops: Vec<(BlockId, BlockId)>, // (continue target, break target)
    consts: HashMap<i64, Value>,
    fresh: u32,
}

impl<'a> FnLower<'a> {
    fn new(
        f: &'a mut Function,
        globals: &'a HashMap<String, (GlobalId, Ty, u32)>,
        funcs: &'a HashMap<String, (FuncId, Vec<Ty>, Ty)>,
        ret: Ty,
    ) -> Self {
        let entry = f.entry();
        Self {
            f,
            globals,
            funcs,
            ret,
            defs: HashMap::new(),
            var_tys: HashMap::new(),
            sealed: HashSet::from([entry]),
            incomplete: HashMap::new(),
            preds: vec![Vec::new()],
            cur: entry,
            terminated: false,
            scopes: vec![HashMap::new()],
            loops: Vec::new(),
            consts: HashMap::new(),
            fresh: 0,
        }
    }

    fn run(&mut self, def: &FuncDef) -> Result<(), CompileError> {
        for (i, (name, ty)) in def.params.iter().enumerate() {
            let key = self.declare_scalar(name.clone(), *ty);
            let pv = self.f.param_value(i);
            self.write_var(&key, self.f.entry(), pv);
        }
        self.lower_stmts(&def.body)?;
        if !self.terminated {
            match self.ret {
                Ty::Void => self.terminate(InstKind::Ret(None)),
                Ty::Int => {
                    let z = self.iconst(0);
                    self.terminate(InstKind::Ret(Some(z)));
                }
                Ty::Ptr(_) => {
                    let p = self.emit(InstKind::Opaque, self.ret.to_ir());
                    self.terminate(InstKind::Ret(Some(p)));
                }
            }
        }
        Ok(())
    }

    // ---- block / CFG helpers -------------------------------------------

    fn new_block(&mut self) -> BlockId {
        let b = self.f.add_block();
        self.preds.push(Vec::new());
        b
    }

    fn seal(&mut self, b: BlockId) {
        if !self.sealed.insert(b) {
            return;
        }
        if let Some(pending) = self.incomplete.remove(&b) {
            for (key, phi) in pending {
                self.add_phi_operands(&key, phi, b);
            }
        }
    }

    fn switch_to(&mut self, b: BlockId) {
        self.cur = b;
        self.terminated = false;
    }

    fn add_edge(&mut self, from: BlockId, to: BlockId) {
        self.preds[to.index()].push(from);
    }

    fn emit(&mut self, kind: InstKind, ty: Option<Type>) -> Value {
        debug_assert!(!self.terminated, "emitting into a terminated block");
        self.f.append_inst(self.cur, kind, ty)
    }

    fn terminate(&mut self, kind: InstKind) {
        debug_assert!(kind.is_terminator());
        for s in kind.successors() {
            self.add_edge(self.cur, s);
        }
        self.f.append_inst(self.cur, kind, None);
        self.terminated = true;
    }

    fn iconst(&mut self, c: i64) -> Value {
        if let Some(&v) = self.consts.get(&c) {
            return v;
        }
        let v = self.f.add_const(c);
        self.consts.insert(c, v);
        v
    }

    /// A value usable from anywhere: inserted into the entry block, before
    /// its terminator if it already has one. Used for "undefined" reads.
    fn emit_in_entry(&mut self, kind: InstKind, ty: Option<Type>) -> Value {
        let entry = self.f.entry();
        let v = self.f.new_inst(kind, ty);
        let at = match self.f.terminator(entry) {
            Some(_) => self.f.block(entry).insts.len() - 1,
            None => self.f.block(entry).insts.len(),
        };
        self.f.attach_inst(entry, at, v);
        v
    }

    // ---- Braun SSA construction ----------------------------------------

    fn declare_scalar(&mut self, name: String, ty: Ty) -> String {
        self.fresh += 1;
        let key = format!("{name}#{}", self.fresh);
        self.var_tys.insert(key.clone(), ty);
        self.scopes
            .last_mut()
            .expect("scope stack is never empty")
            .insert(name, Binding::Scalar { key: key.clone(), ty });
        key
    }

    fn write_var(&mut self, key: &str, block: BlockId, value: Value) {
        self.defs.entry(key.to_string()).or_default().insert(block, value);
    }

    fn read_var(&mut self, key: &str, block: BlockId) -> Value {
        if let Some(&v) = self.defs.get(key).and_then(|m| m.get(&block)) {
            return v;
        }
        let v = if !self.sealed.contains(&block) {
            // Unknown predecessors: placeholder φ, completed at seal time.
            let phi = self.insert_phi(block);
            self.incomplete.entry(block).or_default().push((key.to_string(), phi));
            phi
        } else if self.preds[block.index()].len() == 1 {
            let p = self.preds[block.index()][0];
            self.read_var(key, p)
        } else if self.preds[block.index()].is_empty() {
            // Read of an undefined variable (or dead code): a benign
            // default — zero for ints, an opaque value for pointers.
            match self.var_tys[key] {
                Ty::Int | Ty::Void => self.iconst(0),
                Ty::Ptr(_) => self.emit_in_entry(InstKind::Opaque, self.var_tys[key].to_ir()),
            }
        } else {
            let phi = self.insert_phi(block);
            self.write_var(key, block, phi);
            self.add_phi_operands(key, phi, block)
        };
        self.write_var(key, block, v);
        v
    }

    fn insert_phi(&mut self, block: BlockId) -> Value {
        // The φ type is filled in by the caller's variable type.
        let v = self.f.new_inst(InstKind::Phi { incomings: vec![] }, None);
        self.f.attach_inst(block, 0, v);
        v
    }

    /// Fills the operands of an on-demand φ, then removes it if trivial
    /// (Braun et al.'s `tryRemoveTrivialPhi`). Returns the value that
    /// replaces the φ — the φ itself when it is genuine.
    fn add_phi_operands(&mut self, key: &str, phi: Value, block: BlockId) -> Value {
        let ty = self.var_tys[key].to_ir();
        self.f.inst_mut(phi).ty = ty;
        let preds = self.preds[block.index()].clone();
        let mut incomings = Vec::with_capacity(preds.len());
        for p in preds {
            let v = self.read_var(key, p);
            incomings.push((p, v));
        }
        if let InstKind::Phi { incomings: slots } = &mut self.f.inst_mut(phi).kind {
            *slots = incomings;
        }
        self.try_remove_trivial_phi(phi)
    }

    /// Braun et al.'s trivial-φ elimination: a φ whose operands are all
    /// either itself or one single value `same` is replaced by `same`
    /// everywhere, yielding *minimal* SSA — the input the paper's analyses
    /// expect (LLVM's mem2reg produces minimal SSA too). A trivial φ left
    /// in place would destroy less-than facts through the intersection
    /// rule 4 of Figure 7.
    fn try_remove_trivial_phi(&mut self, phi: Value) -> Value {
        let incomings = match &self.f.inst(phi).kind {
            InstKind::Phi { incomings } => incomings.clone(),
            _ => return phi,
        };
        let mut same: Option<Value> = None;
        for (_, op) in &incomings {
            if *op == phi || Some(*op) == same {
                continue;
            }
            if same.is_some() {
                return phi; // merges at least two distinct values: genuine
            }
            same = Some(*op);
        }
        let Some(same) = same else { return phi }; // self-only φ (dead loop)

        // Collect φ users before rewriting (they may become trivial too).
        let mut phi_users: Vec<Value> = Vec::new();
        for b in self.f.block_ids() {
            for (u, d) in self.f.block_insts(b) {
                if u == phi {
                    continue;
                }
                if let InstKind::Phi { incomings } = &d.kind {
                    if incomings.iter().any(|(_, x)| *x == phi) {
                        phi_users.push(u);
                    }
                }
            }
        }
        // Replace all uses of the φ throughout the function.
        for b in self.f.block_ids() {
            let insts: Vec<Value> = self.f.block(b).insts.clone();
            for u in insts {
                if u == phi {
                    continue;
                }
                let kind = &mut self.f.inst_mut(u).kind;
                kind.for_each_operand_mut(|op| {
                    if *op == phi {
                        *op = same;
                    }
                });
                kind.for_each_phi_operand_mut(|_, op| {
                    if *op == phi {
                        *op = same;
                    }
                });
            }
        }
        // Fix the Braun definition maps.
        for map in self.defs.values_mut() {
            for v in map.values_mut() {
                if *v == phi {
                    *v = same;
                }
            }
        }
        // Orphan the φ; all its uses are gone.
        self.f.detach_inst(phi);
        // Users may have become trivial in turn.
        for u in phi_users {
            if u != phi {
                self.try_remove_trivial_phi(u);
            }
        }
        same
    }

    fn lookup(&self, name: &str) -> Option<Binding> {
        for scope in self.scopes.iter().rev() {
            if let Some(b) = scope.get(name) {
                return Some(b.clone());
            }
        }
        None
    }

    // ---- statements ------------------------------------------------------

    fn lower_stmts(&mut self, stmts: &[Stmt]) -> Result<(), CompileError> {
        for s in stmts {
            if self.terminated {
                // Dead code after return/break: lower into a fresh
                // unreachable block to keep going (C allows it).
                let dead = self.new_block();
                self.seal(dead);
                self.switch_to(dead);
            }
            self.lower_stmt(s)?;
        }
        Ok(())
    }

    fn lower_stmt(&mut self, stmt: &Stmt) -> Result<(), CompileError> {
        match stmt {
            Stmt::Block(body) => {
                self.scopes.push(HashMap::new());
                let r = self.lower_stmts(body);
                self.scopes.pop();
                r
            }
            Stmt::DeclScalar { name, ty, init, line } => {
                let init_val = match init {
                    Some(e) => {
                        let (v, vt) = self.lower_expr(e, Some(*ty))?;
                        self.coerce(v, vt, *ty, *line)?
                    }
                    None => match ty {
                        Ty::Int => self.iconst(0),
                        Ty::Ptr(_) => self.emit(InstKind::Opaque, ty.to_ir()),
                        Ty::Void => return Err(err(*line, "void variable".into())),
                    },
                };
                let key = self.declare_scalar(name.clone(), *ty);
                self.write_var(&key, self.cur, init_val);
                Ok(())
            }
            Stmt::DeclArray { name, elem_ty, count, line } => {
                let (n, nt) = self.lower_expr(count, Some(Ty::Int))?;
                if nt != Ty::Int {
                    return Err(err(*line, "array size must be an int".into()));
                }
                let ir_elem =
                    elem_ty.to_ir().ok_or_else(|| err(*line, "void array element".to_string()))?;
                let ptr = self.emit(InstKind::Alloca { count: n }, Some(ir_elem.ptr_to()));
                self.scopes
                    .last_mut()
                    .expect("scope stack is never empty")
                    .insert(name.clone(), Binding::Array { ptr, elem: *elem_ty });
                Ok(())
            }
            Stmt::Assign { target, op, value, line } => {
                let place = self.lower_place(target)?;
                let target_ty = match &place {
                    Place::Ssa { ty, .. } => *ty,
                    Place::Mem { elem, .. } => *elem,
                };
                let new_val = match op {
                    AssignOp::Set => {
                        let (v, vt) = self.lower_expr(value, Some(target_ty))?;
                        self.coerce(v, vt, target_ty, *line)?
                    }
                    AssignOp::Add | AssignOp::Sub => {
                        let cur_val = self.read_place(&place);
                        let (rhs, rt) = self.lower_expr(value, Some(Ty::Int))?;
                        self.combine(
                            if *op == AssignOp::Add { BinOpAst::Add } else { BinOpAst::Sub },
                            cur_val,
                            target_ty,
                            rhs,
                            rt,
                            *line,
                        )?
                        .0
                    }
                };
                match place {
                    Place::Ssa { key, .. } => self.write_var(&key, self.cur, new_val),
                    Place::Mem { addr, .. } => {
                        self.emit(InstKind::Store { ptr: addr, value: new_val }, None);
                    }
                }
                Ok(())
            }
            Stmt::If { cond, then, els, .. } => {
                let c = self.lower_cond(cond)?;
                let then_bb = self.new_block();
                let else_bb = self.new_block();
                let merge = self.new_block();
                self.terminate(InstKind::Br { cond: c, then_bb, else_bb });

                self.switch_to(then_bb);
                self.seal(then_bb);
                self.scopes.push(HashMap::new());
                self.lower_stmts(then)?;
                self.scopes.pop();
                if !self.terminated {
                    self.terminate(InstKind::Jump(merge));
                }

                self.switch_to(else_bb);
                self.seal(else_bb);
                self.scopes.push(HashMap::new());
                self.lower_stmts(els)?;
                self.scopes.pop();
                if !self.terminated {
                    self.terminate(InstKind::Jump(merge));
                }

                self.seal(merge);
                self.switch_to(merge);
                Ok(())
            }
            Stmt::DoWhile { body, cond, .. } => {
                let body_bb = self.new_block();
                let cond_bb = self.new_block();
                let exit = self.new_block();
                self.terminate(InstKind::Jump(body_bb));

                self.switch_to(body_bb); // unsealed: back edge unknown
                self.loops.push((cond_bb, exit));
                self.scopes.push(HashMap::new());
                self.lower_stmts(body)?;
                self.scopes.pop();
                self.loops.pop();
                if !self.terminated {
                    self.terminate(InstKind::Jump(cond_bb));
                }

                self.switch_to(cond_bb);
                self.seal(cond_bb);
                let c = self.lower_cond(cond)?;
                self.terminate(InstKind::Br { cond: c, then_bb: body_bb, else_bb: exit });
                self.seal(body_bb);
                self.seal(exit);
                self.switch_to(exit);
                Ok(())
            }
            Stmt::While { cond, body, .. } => {
                let header = self.new_block();
                let body_bb = self.new_block();
                let exit = self.new_block();
                self.terminate(InstKind::Jump(header));

                self.switch_to(header); // unsealed: latch unknown
                let c = self.lower_cond(cond)?;
                let cond_end = self.cur; // && / || may have split blocks
                let _ = cond_end;
                self.terminate(InstKind::Br { cond: c, then_bb: body_bb, else_bb: exit });

                self.switch_to(body_bb);
                self.seal(body_bb);
                self.loops.push((header, exit));
                self.scopes.push(HashMap::new());
                self.lower_stmts(body)?;
                self.scopes.pop();
                self.loops.pop();
                if !self.terminated {
                    self.terminate(InstKind::Jump(header));
                }
                self.seal(header);
                self.seal(exit);
                self.switch_to(exit);
                Ok(())
            }
            Stmt::For { init, cond, step, body, .. } => {
                self.scopes.push(HashMap::new()); // `for (int i = …)` scope
                self.lower_stmts(init)?;
                let header = self.new_block();
                let body_bb = self.new_block();
                let step_bb = self.new_block();
                let exit = self.new_block();
                self.terminate(InstKind::Jump(header));

                self.switch_to(header); // unsealed: step edge unknown
                match cond {
                    Some(c) => {
                        let cv = self.lower_cond(c)?;
                        self.terminate(InstKind::Br { cond: cv, then_bb: body_bb, else_bb: exit });
                    }
                    None => self.terminate(InstKind::Jump(body_bb)),
                }

                self.switch_to(body_bb);
                self.seal(body_bb);
                self.loops.push((step_bb, exit));
                self.scopes.push(HashMap::new());
                self.lower_stmts(body)?;
                self.scopes.pop();
                self.loops.pop();
                if !self.terminated {
                    self.terminate(InstKind::Jump(step_bb));
                }

                self.switch_to(step_bb);
                self.seal(step_bb);
                self.lower_stmts(step)?;
                if !self.terminated {
                    self.terminate(InstKind::Jump(header));
                }
                self.seal(header);
                self.seal(exit);
                self.switch_to(exit);
                self.scopes.pop();
                Ok(())
            }
            Stmt::Return { value, line } => {
                match (value, self.ret) {
                    (None, Ty::Void) => self.terminate(InstKind::Ret(None)),
                    (Some(_), Ty::Void) => {
                        return Err(err(*line, "void function returns a value".into()))
                    }
                    (None, _) => return Err(err(*line, "missing return value".into())),
                    (Some(e), rt) => {
                        let (v, vt) = self.lower_expr(e, Some(rt))?;
                        let v = self.coerce(v, vt, rt, *line)?;
                        self.terminate(InstKind::Ret(Some(v)));
                    }
                }
                Ok(())
            }
            Stmt::Break { line } => {
                let (_, exit) =
                    *self.loops.last().ok_or_else(|| err(*line, "break outside loop".into()))?;
                self.terminate(InstKind::Jump(exit));
                Ok(())
            }
            Stmt::Continue { line } => {
                let (cont, _) =
                    *self.loops.last().ok_or_else(|| err(*line, "continue outside loop".into()))?;
                self.terminate(InstKind::Jump(cont));
                Ok(())
            }
            Stmt::ExprStmt { expr, .. } => {
                // Calls (even void ones) are lowered for effect.
                if let Expr::Call { name, args, line } = expr {
                    self.lower_call(name, args, *line, true)?;
                } else {
                    self.lower_expr(expr, None)?;
                }
                Ok(())
            }
        }
    }

    // ---- places (lvalues) ----------------------------------------------

    fn lower_place(&mut self, e: &Expr) -> Result<Place, CompileError> {
        match e {
            Expr::Var { name, line } => {
                if let Some(b) = self.lookup(name) {
                    return match b {
                        Binding::Scalar { key, ty } => Ok(Place::Ssa { key, ty }),
                        Binding::Array { .. } => {
                            Err(err(*line, format!("cannot assign to array `{name}`")))
                        }
                    };
                }
                if let Some(&(gid, elem, count)) = self.globals.get(name) {
                    if count != 1 {
                        return Err(err(*line, format!("cannot assign to array `{name}`")));
                    }
                    let ir_elem = elem.to_ir().expect("checked at declaration");
                    let addr = self.emit(InstKind::GlobalAddr(gid), Some(ir_elem.ptr_to()));
                    return Ok(Place::Mem { addr, elem });
                }
                Err(err(*line, format!("unknown variable `{name}`")))
            }
            Expr::Unary { op: UnOp::Deref, expr, line } => {
                let (p, pt) = self.lower_expr(expr, None)?;
                let elem = pt.deref().ok_or_else(|| {
                    err(*line, format!("cannot dereference a value of type {pt}"))
                })?;
                Ok(Place::Mem { addr: p, elem })
            }
            Expr::Index { base, index, line } => {
                let (addr, elem) = self.lower_index_addr(base, index, *line)?;
                Ok(Place::Mem { addr, elem })
            }
            other => Err(err(other.line(), "expression is not assignable".into())),
        }
    }

    fn read_place(&mut self, place: &Place) -> Value {
        match place {
            Place::Ssa { key, .. } => self.read_var(key, self.cur),
            Place::Mem { addr, elem } => self.emit(InstKind::Load { ptr: *addr }, elem.to_ir()),
        }
    }

    /// Lowers `base[index]` to a `gep`, returning `(address, element type)`.
    fn lower_index_addr(
        &mut self,
        base: &Expr,
        index: &Expr,
        line: u32,
    ) -> Result<(Value, Ty), CompileError> {
        let (b, bt) = self.lower_expr(base, None)?;
        let elem =
            bt.deref().ok_or_else(|| err(line, format!("cannot index a value of type {bt}")))?;
        let (i, it) = self.lower_expr(index, Some(Ty::Int))?;
        if it != Ty::Int {
            return Err(err(line, "array index must be an int".into()));
        }
        let addr = self.emit(InstKind::Gep { base: b, offset: i }, bt.to_ir());
        Ok((addr, elem))
    }

    // ---- expressions ------------------------------------------------------

    /// Lowers a boolean context expression to a non-zero-is-true int value.
    fn lower_cond(&mut self, e: &Expr) -> Result<Value, CompileError> {
        let (v, t) = self.lower_expr(e, Some(Ty::Int))?;
        match t {
            Ty::Int => Ok(v),
            other => Err(err(e.line(), format!("condition must be an int, got {other}"))),
        }
    }

    fn lower_expr(&mut self, e: &Expr, expected: Option<Ty>) -> Result<(Value, Ty), CompileError> {
        match e {
            Expr::Int(v) => Ok((self.iconst(*v), Ty::Int)),
            Expr::Var { name, line } => {
                if let Some(b) = self.lookup(name) {
                    return Ok(match b {
                        Binding::Scalar { key, ty } => (self.read_var(&key, self.cur), ty),
                        Binding::Array { ptr, elem } => {
                            (ptr, elem.addr_of().expect("array element is never void"))
                        }
                    });
                }
                if let Some(&(gid, elem, count)) = self.globals.get(name) {
                    let ir_elem = elem.to_ir().expect("checked at declaration");
                    let addr = self.emit(InstKind::GlobalAddr(gid), Some(ir_elem.ptr_to()));
                    return Ok(if count == 1 {
                        // Scalar global: rvalue is its current contents.
                        (self.emit(InstKind::Load { ptr: addr }, elem.to_ir()), elem)
                    } else {
                        (addr, elem.addr_of().expect("array element is never void"))
                    });
                }
                Err(err(*line, format!("unknown variable `{name}`")))
            }
            Expr::Unary { op, expr, line } => match op {
                UnOp::Neg => {
                    let (v, t) = self.lower_expr(expr, Some(Ty::Int))?;
                    if t != Ty::Int {
                        return Err(err(*line, "cannot negate a pointer".into()));
                    }
                    let z = self.iconst(0);
                    Ok((
                        self.emit(
                            InstKind::Binary { op: BinOp::Sub, lhs: z, rhs: v },
                            Some(Type::Int),
                        ),
                        Ty::Int,
                    ))
                }
                UnOp::Not => {
                    let (v, t) = self.lower_expr(expr, Some(Ty::Int))?;
                    if t != Ty::Int {
                        return Err(err(*line, "`!` requires an int".into()));
                    }
                    let z = self.iconst(0);
                    Ok((
                        self.emit(
                            InstKind::Cmp { pred: Pred::Eq, lhs: v, rhs: z },
                            Some(Type::Int),
                        ),
                        Ty::Int,
                    ))
                }
                UnOp::Deref => {
                    let (p, pt) = self.lower_expr(expr, None)?;
                    let elem = pt.deref().ok_or_else(|| {
                        err(*line, format!("cannot dereference a value of type {pt}"))
                    })?;
                    Ok((self.emit(InstKind::Load { ptr: p }, elem.to_ir()), elem))
                }
                UnOp::AddrOf => match self.lower_place(expr)? {
                    Place::Mem { addr, elem } => Ok((
                        addr,
                        elem.addr_of()
                            .ok_or_else(|| err(*line, "cannot take this address".to_string()))?,
                    )),
                    Place::Ssa { .. } => Err(err(
                        *line,
                        "cannot take the address of a scalar local (not in memory)".into(),
                    )),
                },
            },
            Expr::Binary { op, lhs, rhs, line } => {
                let (l, lt) = self.lower_expr(lhs, None)?;
                let (r, rt) = self.lower_expr(rhs, None)?;
                self.combine(*op, l, lt, r, rt, *line)
            }
            Expr::And { lhs, rhs, line } | Expr::Or { lhs, rhs, line } => {
                let is_and = matches!(e, Expr::And { .. });
                let (l, lt) = self.lower_expr(lhs, Some(Ty::Int))?;
                if lt != Ty::Int {
                    return Err(err(*line, "logical operators require int operands".into()));
                }
                let rhs_bb = self.new_block();
                let merge = self.new_block();
                let short_bb = self.cur;
                if is_and {
                    self.terminate(InstKind::Br { cond: l, then_bb: rhs_bb, else_bb: merge });
                } else {
                    self.terminate(InstKind::Br { cond: l, then_bb: merge, else_bb: rhs_bb });
                }

                self.switch_to(rhs_bb);
                self.seal(rhs_bb);
                let (r, rt) = self.lower_expr(rhs, Some(Ty::Int))?;
                if rt != Ty::Int {
                    return Err(err(*line, "logical operators require int operands".into()));
                }
                let z = self.iconst(0);
                let norm =
                    self.emit(InstKind::Cmp { pred: Pred::Ne, lhs: r, rhs: z }, Some(Type::Int));
                let rhs_end = self.cur;
                self.terminate(InstKind::Jump(merge));

                self.seal(merge);
                self.switch_to(merge);
                let short_val = self.iconst(if is_and { 0 } else { 1 });
                let phi = self.f.new_inst(
                    InstKind::Phi { incomings: vec![(short_bb, short_val), (rhs_end, norm)] },
                    Some(Type::Int),
                );
                self.f.attach_inst(merge, 0, phi);
                Ok((phi, Ty::Int))
            }
            Expr::Ternary { cond, then_e, else_e, line } => {
                let c = self.lower_cond(cond)?;
                let then_bb = self.new_block();
                let else_bb = self.new_block();
                let merge = self.new_block();
                self.terminate(InstKind::Br { cond: c, then_bb, else_bb });

                self.switch_to(then_bb);
                self.seal(then_bb);
                let (tv, tt) = self.lower_expr(then_e, expected)?;
                let then_end = self.cur;
                self.terminate(InstKind::Jump(merge));

                self.switch_to(else_bb);
                self.seal(else_bb);
                let (ev, et) = self.lower_expr(else_e, expected.or(Some(tt)))?;
                let else_end = self.cur;
                self.terminate(InstKind::Jump(merge));

                if tt != et {
                    return Err(err(*line, format!("ternary arms disagree: {tt} vs {et}")));
                }
                self.seal(merge);
                self.switch_to(merge);
                let phi = self.f.new_inst(
                    InstKind::Phi { incomings: vec![(then_end, tv), (else_end, ev)] },
                    tt.to_ir(),
                );
                self.f.attach_inst(merge, 0, phi);
                Ok((phi, tt))
            }
            Expr::Index { base, index, line } => {
                let (addr, elem) = self.lower_index_addr(base, index, *line)?;
                Ok((self.emit(InstKind::Load { ptr: addr }, elem.to_ir()), elem))
            }
            Expr::Call { name, args, line } => {
                let (v, t) = self.lower_call(name, args, *line, false)?;
                Ok((
                    v.ok_or_else(|| err(*line, format!("void call to `{name}` used as value")))?,
                    t,
                ))
            }
            Expr::Malloc { count, line } => {
                let elem = expected
                    .and_then(Ty::deref)
                    .ok_or_else(|| err(*line, "cannot infer malloc element type here".into()))?;
                let (n, nt) = self.lower_expr(count, Some(Ty::Int))?;
                if nt != Ty::Int {
                    return Err(err(*line, "malloc count must be an int".into()));
                }
                let ir_elem = elem.to_ir().expect("malloc of void");
                let p = self.emit(InstKind::Malloc { count: n }, Some(ir_elem.ptr_to()));
                Ok((p, elem.addr_of().expect("not void")))
            }
            Expr::Input { .. } => Ok((self.emit(InstKind::Opaque, Some(Type::Int)), Ty::Int)),
            Expr::InputPtr { .. } => {
                Ok((self.emit(InstKind::Opaque, Some(Type::Ptr(1))), Ty::Ptr(1)))
            }
        }
    }

    fn lower_call(
        &mut self,
        name: &str,
        args: &[Expr],
        line: u32,
        _for_effect: bool,
    ) -> Result<(Option<Value>, Ty), CompileError> {
        let (fid, param_tys, ret) = self
            .funcs
            .get(name)
            .cloned()
            .ok_or_else(|| err(line, format!("unknown function `{name}`")))?;
        if param_tys.len() != args.len() {
            return Err(err(
                line,
                format!("`{name}` expects {} argument(s), got {}", param_tys.len(), args.len()),
            ));
        }
        let mut vals = Vec::with_capacity(args.len());
        for (a, pt) in args.iter().zip(&param_tys) {
            let (v, vt) = self.lower_expr(a, Some(*pt))?;
            vals.push(self.coerce(v, vt, *pt, line)?);
        }
        let v = self.emit(InstKind::Call { callee: fid, args: vals }, ret.to_ir());
        Ok((ret.to_ir().map(|_| v), ret))
    }

    /// Applies a binary operator with C-like pointer-arithmetic typing.
    fn combine(
        &mut self,
        op: BinOpAst,
        l: Value,
        lt: Ty,
        r: Value,
        rt: Ty,
        line: u32,
    ) -> Result<(Value, Ty), CompileError> {
        use BinOpAst::*;
        let cmp = |p: Pred| InstKind::Cmp { pred: p, lhs: l, rhs: r };
        match op {
            Lt | Le | Gt | Ge | Eq | Ne => {
                if lt != rt {
                    return Err(err(line, format!("cannot compare {lt} with {rt}")));
                }
                let pred = match op {
                    Lt => Pred::Lt,
                    Le => Pred::Le,
                    Gt => Pred::Gt,
                    Ge => Pred::Ge,
                    Eq => Pred::Eq,
                    _ => Pred::Ne,
                };
                Ok((self.emit(cmp(pred), Some(Type::Int)), Ty::Int))
            }
            Add | Sub => match (lt, rt) {
                (Ty::Int, Ty::Int) => {
                    let k = if op == Add { BinOp::Add } else { BinOp::Sub };
                    Ok((
                        self.emit(InstKind::Binary { op: k, lhs: l, rhs: r }, Some(Type::Int)),
                        Ty::Int,
                    ))
                }
                (Ty::Ptr(_), Ty::Int) => {
                    // Pointer arithmetic lowers to gep; `p - i` negates.
                    let off = if op == Add {
                        r
                    } else {
                        let z = self.iconst(0);
                        self.emit(
                            InstKind::Binary { op: BinOp::Sub, lhs: z, rhs: r },
                            Some(Type::Int),
                        )
                    };
                    Ok((self.emit(InstKind::Gep { base: l, offset: off }, lt.to_ir()), lt))
                }
                (Ty::Int, Ty::Ptr(_)) if op == Add => {
                    Ok((self.emit(InstKind::Gep { base: r, offset: l }, rt.to_ir()), rt))
                }
                (Ty::Ptr(a), Ty::Ptr(b)) if op == Sub && a == b => Ok((
                    self.emit(InstKind::Binary { op: BinOp::Sub, lhs: l, rhs: r }, Some(Type::Int)),
                    Ty::Int,
                )),
                _ => Err(err(line, format!("invalid operands {lt} {op:?} {rt}"))),
            },
            Mul | Div | Rem => {
                if lt != Ty::Int || rt != Ty::Int {
                    return Err(err(line, format!("invalid operands {lt} {op:?} {rt}")));
                }
                let k = match op {
                    Mul => BinOp::Mul,
                    Div => BinOp::Div,
                    _ => BinOp::Rem,
                };
                Ok((
                    self.emit(InstKind::Binary { op: k, lhs: l, rhs: r }, Some(Type::Int)),
                    Ty::Int,
                ))
            }
        }
    }

    fn coerce(&mut self, v: Value, from: Ty, to: Ty, line: u32) -> Result<Value, CompileError> {
        if from == to {
            Ok(v)
        } else {
            Err(err(line, format!("type mismatch: expected {to}, got {from}")))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_program;

    fn lower(src: &str) -> Module {
        let m = lower_program(&parse_program(src).unwrap()).unwrap();
        sraa_ir::verify(&m).unwrap_or_else(|e| panic!("verify failed: {e}\nsource: {src}"));
        m
    }

    fn run(src: &str) -> i64 {
        let m = lower(src);
        let mut i = sraa_ir::Interpreter::new(&m);
        i.run("main", &[]).unwrap().result.unwrap()
    }

    #[test]
    fn loop_phis_are_constructed() {
        let m = lower("int main() { int s = 0; for (int i = 0; i < 10; i++) s += i; return s; }");
        let f = m.function(m.function_by_name("main").unwrap());
        let phis = f
            .block_ids()
            .flat_map(|b| f.block_insts(b).map(|(_, d)| d.kind.is_phi()))
            .filter(|&x| x)
            .count();
        assert!(phis >= 2, "loop must introduce φs for i and s, got {phis}");
    }

    #[test]
    fn executes_nested_control_flow() {
        assert_eq!(
            run(r#"
            int main() {
                int n = 0;
                for (int i = 0; i < 5; i++) {
                    if (i % 2 == 0) n += 10; else n += 1;
                }
                return n;
            }"#),
            32
        );
    }

    #[test]
    fn break_and_continue() {
        assert_eq!(
            run(r#"
            int main() {
                int s = 0;
                for (int i = 0; i < 100; i++) {
                    if (i == 5) break;
                    if (i % 2 == 1) continue;
                    s += i;
                }
                return s;
            }"#),
            2 + 4
        );
    }

    #[test]
    fn while_with_complex_condition() {
        assert_eq!(
            run(r#"
            int main() {
                int i = 0; int j = 10;
                while (i < j && j > 0) { i++; j--; }
                return i * 100 + j;
            }"#),
            505
        );
    }

    #[test]
    fn shadowing_in_nested_scopes() {
        assert_eq!(
            run(r#"
            int main() {
                int x = 1;
                { int x = 2; { int x = 3; } x = x + 10; }
                return x;
            }"#),
            1
        );
    }

    #[test]
    fn pointer_arithmetic_lowered_to_gep() {
        let m = lower("int f(int* p, int i) { return p[i] + *(p + i + 1); }");
        let f = m.function(m.function_by_name("f").unwrap());
        let geps = f
            .block_ids()
            .flat_map(|b| f.block_insts(b).map(|(_, d)| matches!(d.kind, InstKind::Gep { .. })))
            .filter(|&x| x)
            .count();
        assert_eq!(geps, 3, "p[i], p+i, (p+i)+1");
    }

    #[test]
    fn address_of_element_then_deref() {
        assert_eq!(
            run(r#"
            int main() {
                int a[3];
                a[1] = 5;
                int* p = &a[1];
                return *p;
            }"#),
            5
        );
    }

    #[test]
    fn recursion_works() {
        assert_eq!(
            run(r#"
            int fact(int n) { if (n <= 1) return 1; return n * fact(n - 1); }
            int main() { return fact(6); }
            "#),
            720
        );
    }

    #[test]
    fn uninitialised_int_reads_zero() {
        assert_eq!(run("int main() { int x; return x; }"), 0);
    }

    #[test]
    fn dead_code_after_return_is_tolerated() {
        assert_eq!(run("int main() { return 3; int y = 4; return y; }"), 3);
    }

    #[test]
    fn global_scalar_assignment() {
        assert_eq!(run("int g; int main() { g = 1; g += 41; return g; }"), 42);
    }

    #[test]
    fn rejects_pointer_int_comparison() {
        let prog = parse_program("int f(int* p, int x) { return p < x; }").unwrap();
        assert!(lower_program(&prog).is_err());
    }

    #[test]
    fn rejects_break_outside_loop() {
        let prog = parse_program("int main() { break; return 0; }").unwrap();
        let e = lower_program(&prog).unwrap_err();
        assert!(e.message.contains("break"), "{e}");
    }

    #[test]
    fn malloc_type_inference_from_decl() {
        let m = lower("int main() { int** m = malloc(3); m[0] = malloc(2); return 0; }");
        let f = m.function(m.function_by_name("main").unwrap());
        let mallocs: Vec<Type> = f
            .block_ids()
            .flat_map(|b| {
                f.block_insts(b)
                    .filter(|(_, d)| matches!(d.kind, InstKind::Malloc { .. }))
                    .map(|(_, d)| d.ty.unwrap())
                    .collect::<Vec<_>>()
            })
            .collect();
        assert_eq!(mallocs, vec![Type::Ptr(2), Type::Ptr(1)]);
    }
}
