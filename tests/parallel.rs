//! Differential tests of the wavefront-parallel summary pipeline
//! (`--jobs`): for **every** worker count, the computed summaries, the
//! generated constraint stream, the solved `LT` relation and the
//! deterministic statistics must be identical to the serial run —
//! parallelism reorders *work*, never output. Covered here:
//!
//! * cold solves, serial vs parallel, on a module wide enough to cross
//!   the scheduler's spawn floor;
//! * warm (`--summary-cache`) runs, where only the cold *misses* fan out;
//! * the lattice backends under parallel jobs (`dense ≡ arc` must keep
//!   holding when solves run on worker threads);
//! * random csmith-with-helpers programs, cold and warm, via proptest.

use sraa_core::{
    persist, CacheOutcome, GenConfig, Jobs, LatticeBackend, ModuleSummaries, SolverKind,
    SummaryKeys, VarId, VarIndex,
};
use sraa_ir::Module;
use sraa_range::RangeAnalysis;
use sraa_synth::{csmith_generate, CsmithConfig};
use std::fmt::Write as _;
use std::num::NonZeroUsize;

fn jobs(n: usize) -> Jobs {
    Jobs::N(NonZeroUsize::new(n).expect("test worker counts are positive"))
}

/// A call graph wide enough to cross the scheduler's spawn floor: `width`
/// independent helpers (one wavefront layer of parallel components), one
/// recursive helper, and a `main` calling all of them.
fn wide_source(width: usize, depth: usize, salt: usize) -> String {
    let mut s = String::new();
    for i in 0..width {
        let _ = writeln!(s, "int wf{i}(int a, int b) {{");
        let _ = writeln!(s, "    int x0 = a + 1;");
        let _ = writeln!(s, "    int x1 = x0 + b;");
        for j in 2..depth {
            let _ = writeln!(s, "    int x{j} = x{} + {};", j - 1, (i + j + salt) % 9 + 1);
        }
        let _ = writeln!(s, "    return x{} + 1;", depth - 1);
        let _ = writeln!(s, "}}");
    }
    let _ = writeln!(s, "int rec(int i, int n) {{");
    let _ = writeln!(s, "    if (n <= 0) {{ return i + 1; }}");
    let _ = writeln!(s, "    return rec(wf0(i, 1), n - 1);");
    let _ = writeln!(s, "}}");
    s.push_str("int main() {\n    int s = 0;\n");
    for i in 0..width {
        let _ = writeln!(s, "    s = s + wf{i}({}, {});", i % 5, i % 3 + 1);
    }
    s.push_str("    s = s + rec(1, 3);\n    return s;\n}\n");
    s
}

struct Prepared {
    module: Module,
    ranges: RangeAnalysis,
    index: VarIndex,
}

fn prepare(src: &str) -> Prepared {
    let mut module = sraa_minic::compile(src).expect("test source compiles");
    let (ranges, _) = sraa_essa::transform_module(&mut module);
    let index = VarIndex::new(&module);
    Prepared { module, ranges, index }
}

fn cold(p: &Prepared, j: Jobs, backend: LatticeBackend) -> ModuleSummaries {
    ModuleSummaries::compute(
        &p.module,
        &p.ranges,
        GenConfig::default(),
        &p.index,
        SolverKind::Scc.solver(),
        backend,
        j,
    )
}

fn warm(
    p: &Prepared,
    j: Jobs,
    cache: &persist::SummaryCache,
) -> (ModuleSummaries, SummaryKeys, CacheOutcome) {
    ModuleSummaries::compute_incremental(
        &p.module,
        &p.ranges,
        GenConfig::default(),
        &p.index,
        SolverKind::Scc.solver(),
        LatticeBackend::Auto,
        j,
        Some(cache),
    )
}

/// Asserts two summary computations are indistinguishable all the way
/// down: per-function summaries, deterministic statistics, the constraint
/// stream generated from them, and the solved `LT` relation.
fn assert_equivalent(p: &Prepared, a: &ModuleSummaries, b: &ModuleSummaries, what: &str) {
    for (f, sa) in a.iter() {
        assert_eq!(sa, b.of(f), "{what}: summary of {} differs", p.module.function(f).name);
    }
    assert_eq!(a.stats, b.stats, "{what}: deterministic summary stats differ");
    let gen = |sums| {
        sraa_core::generate_with_summaries(
            &p.module,
            &p.ranges,
            GenConfig::default(),
            &p.index,
            sums,
        )
    };
    let (sys_a, sys_b) = (gen(a), gen(b));
    assert_eq!(sys_a.constraints, sys_b.constraints, "{what}: constraint streams differ");
    assert_eq!(sys_a.num_vars, sys_b.num_vars);
    let solver = SolverKind::Scc.solver();
    let (sol_a, sol_b) = (
        solver.solve(&sys_a.constraints, sys_a.num_vars),
        solver.solve(&sys_b.constraints, sys_b.num_vars),
    );
    for v in 0..sys_a.num_vars {
        let v = VarId::from_index(v);
        assert_eq!(sol_a.lt_set(v), sol_b.lt_set(v), "{what}: LT({v}) differs");
        assert_eq!(sol_a.was_top(v), sol_b.was_top(v), "{what}: frozen sets differ on {v}");
    }
}

#[test]
fn cold_solves_are_jobs_invariant_on_a_wide_module() {
    let p = prepare(&wide_source(24, 80, 0));
    let total_insts: usize = p.module.functions().map(|(_, f)| f.num_insts()).sum();
    // The scheduler only spawns above its instruction floor (2000); the
    // test is vacuous if this module ever shrinks below it.
    assert!(total_insts >= 2_000, "wide module too small: {total_insts} instructions");
    let serial = cold(&p, jobs(1), LatticeBackend::Auto);
    assert!(serial.facts() > 0, "the wide module must produce interprocedural facts");
    for n in [2, 4, 7] {
        let parallel = cold(&p, jobs(n), LatticeBackend::Auto);
        assert_equivalent(&p, &serial, &parallel, &format!("jobs=1 vs jobs={n}"));
    }
}

#[test]
fn warm_runs_are_jobs_invariant_including_their_outcome() {
    // Cache built from a *different* body variant: the warm run sees
    // real misses/invalidations, so its cold residue goes through the
    // wavefront scheduler rather than being all cache hits.
    let old = prepare(&wide_source(24, 80, 7));
    let old_sums = cold(&old, jobs(1), LatticeBackend::Auto);
    let old_keys = SummaryKeys::compute(&old.module);
    let bytes = persist::to_bytes(&old.module, &old_sums, &old_keys, GenConfig::default());
    let cache = persist::from_bytes(&bytes, GenConfig::default()).expect("cache round trip");

    let p = prepare(&wide_source(24, 80, 0));
    let baseline = cold(&p, jobs(1), LatticeBackend::Auto);
    let (warm1, keys1, out1) = warm(&p, jobs(1), &cache);
    assert!(out1.misses + out1.invalidated > 0, "the variant cache must not fully hit");
    for n in [2, 4] {
        let (warmn, keysn, outn) = warm(&p, jobs(n), &cache);
        assert_eq!(out1, outn, "hit/miss/invalidated counts must be jobs-invariant");
        assert_eq!(keys1, keysn);
        assert_equivalent(&p, &warm1, &warmn, &format!("warm jobs=1 vs jobs={n}"));
    }
    // And the warm result is still byte-identical to a fresh cold run.
    assert_equivalent(&p, &baseline, &warm1, "cold vs warm");
}

#[test]
fn lattice_backends_agree_under_parallel_jobs() {
    let p = prepare(&wide_source(24, 80, 3));
    let arc = cold(&p, jobs(4), LatticeBackend::Arc);
    let dense = cold(&p, jobs(4), LatticeBackend::Dense);
    assert_equivalent(&p, &arc, &dense, "arc vs dense at jobs=4");
}

mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// Random csmith programs with helper calls: cold summaries are
        /// identical at jobs=1 and jobs=3, whatever the seed, depth or
        /// helper count (most cases sit below the spawn floor and take
        /// the serial path — that degenerate case must stay identical
        /// too, not just the fan-out case).
        #[test]
        fn csmith_cold_solves_are_jobs_invariant(
            seed in 0u64..16,
            depth in 2u8..5,
            helpers in 1usize..4,
        ) {
            let w = csmith_generate(CsmithConfig {
                seed,
                max_ptr_depth: depth,
                num_stmts: 18,
                helpers,
            });
            let p = prepare(&w.source);
            let serial = cold(&p, jobs(1), LatticeBackend::Auto);
            let parallel = cold(&p, jobs(3), LatticeBackend::Auto);
            assert_equivalent(&p, &serial, &parallel, &w.name);
        }

        /// Warm runs against a cache from a *different seed* (a mix of
        /// hits and misses, depending on which helper bodies collide):
        /// outcome counts and results are jobs-invariant.
        #[test]
        fn csmith_warm_runs_are_jobs_invariant(
            seed in 0u64..12,
            helpers in 1usize..3,
        ) {
            let mk = |s| csmith_generate(CsmithConfig {
                seed: s,
                max_ptr_depth: 3,
                num_stmts: 18,
                helpers,
            });
            let old = prepare(&mk(seed + 100).source);
            let old_sums = cold(&old, jobs(1), LatticeBackend::Auto);
            let old_keys = SummaryKeys::compute(&old.module);
            let bytes =
                persist::to_bytes(&old.module, &old_sums, &old_keys, GenConfig::default());
            let cache = persist::from_bytes(&bytes, GenConfig::default()).unwrap();

            let p = prepare(&mk(seed).source);
            let (warm1, _, out1) = warm(&p, jobs(1), &cache);
            let (warm3, _, out3) = warm(&p, jobs(3), &cache);
            prop_assert_eq!(out1, out3);
            assert_equivalent(&p, &warm1, &warm3, "csmith warm");
        }

        /// `dense ≡ arc` must keep holding when the per-SCC solves run
        /// on worker threads.
        #[test]
        fn csmith_backends_agree_under_parallel_jobs(seed in 0u64..12) {
            let w = csmith_generate(CsmithConfig {
                seed,
                max_ptr_depth: 3,
                num_stmts: 18,
                helpers: 2,
            });
            let p = prepare(&w.source);
            let arc = cold(&p, jobs(3), LatticeBackend::Arc);
            let dense = cold(&p, jobs(3), LatticeBackend::Dense);
            assert_equivalent(&p, &arc, &dense, &w.name);
        }
    }
}
