//! `sraa` — command-line driver, mirroring the paper artifact's scripts
//! (`compile.sh`, `sraa.sh`, `basicaa.sh`, `random.sh`).
//!
//! ```text
//! sraa compile <file.c> [--essa]     print the (e-)SSA IR of a MiniC file
//! sraa eval <file.c>                 aa-eval: all analyses, verdict summary
//! sraa lt <file.c> <function>        print the LT set of every value
//! sraa run <file.c> [ints...]        interpret main(args...)
//! sraa pdg <file.c>                  PDG memory nodes under BA and BA+LT
//! sraa opt <file.c> [--ba]           optimise under BA+LT (or BA), print IR
//! sraa gen <seed> <depth>            emit a Csmith-like random program
//! sraa serve --socket <p>|--addr <a> resident alias-analysis daemon
//! sraa query --socket <p>|--addr <a> query a running daemon
//! ```
//!
//! The analysis-driven subcommands (`eval`, `lt`, `pdg`, `opt`) accept
//! `--solver {worklist,scc}` (default `scc`) to pick the engine's fixpoint
//! strategy and `--lattice {auto,arc,dense}` (default `auto`) to pick the
//! solvers' lattice-store backend; every combination produces
//! byte-identical output, so both flags are performance knobs and
//! differential-testing hooks. They also accept `--interproc`,
//! which switches the engine to bottom-up interprocedural summaries
//! ([`Contextuality::Summaries`]) so strict-inequality facts cross call
//! boundaries — strictly more `no-alias` verdicts, never fewer — and
//! `--summary-cache <path>` (implies `--interproc`), which persists those
//! summaries between runs: unchanged functions skip their per-SCC solves
//! on the next invocation. Cache outcomes (`N hit(s), M miss(es), …`) go
//! to stderr so stdout stays byte-identical between warm and cold runs;
//! a damaged or mismatched cache file falls back to a cold solve with a
//! warning, never a panic or a stale result.
//!
//! Unrecognised `--flags` are rejected with exit code 2 (they used to be
//! silently ignored, which hid typos like `--interporc`).

use sraa::alias::{render_eval, AliasAnalysis, BasicAliasAnalysis, Combined, StrictInequalityAa};
use sraa::ir::{InstKind, Interpreter};
use sraa::lt::{
    CacheOutcome, Contextuality, EngineConfig, Jobs, LatticeBackend, SolverKind, StoreOutcome,
};
use sraa::pdg::DepGraph;
use std::process::exit;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let code = match args.first().map(String::as_str) {
        Some("compile") => cmd_compile(&args[1..]),
        Some("eval") => cmd_eval(&args[1..]),
        Some("lt") => cmd_lt(&args[1..]),
        Some("run") => cmd_run(&args[1..]),
        Some("pdg") => cmd_pdg(&args[1..]),
        Some("opt") => cmd_opt(&args[1..]),
        Some("gen") => cmd_gen(&args[1..]),
        Some("serve") => cmd_serve(&args[1..]),
        Some("query") => cmd_query(&args[1..]),
        _ => {
            eprintln!(
                "usage: sraa <compile|eval|lt|run|pdg|opt|gen|serve|query> ...\n\
                 \n  compile <file.c> [--essa]   print the (e-)SSA IR\
                 \n  eval    <file.c>            aa-eval verdict summary\
                 \n  lt      <file.c> <func>     LT sets of every value\
                 \n  run     <file.c> [ints...]  interpret main\
                 \n  pdg     <file.c>            PDG memory nodes\
                 \n  opt     <file.c> [--ba]     alias-driven optimisation\
                 \n  gen     <seed> <depth>      random MiniC program\
                 \n  serve   --socket <path>     resident analysis daemon\
                 \n          or --addr <h:p>     (always interprocedural)\
                 \n  query   --socket|--addr …   query a running daemon\
                 \n\
                 \n  --solver {{worklist,scc}}     fixpoint strategy for\
                 \n                              eval/lt/pdg/opt (default scc)\
                 \n  --lattice {{auto,arc,dense}}  lattice-store backend for\
                 \n                              eval/lt/pdg/opt (default auto)\
                 \n  --jobs {{N,auto}}             worker threads for parallel\
                 \n                              summary solves (default auto:\
                 \n                              SRAA_JOBS, else all cores)\
                 \n  --interproc                 bottom-up call summaries for\
                 \n                              eval/lt/pdg/opt (default intra)\
                 \n  --summary-cache <path>      persist summaries between runs;\
                 \n                              unchanged functions skip their\
                 \n                              solves (implies --interproc)\
                 \n  --shared-store <dir>        content-addressed summary store\
                 \n                              shared across modules, daemons\
                 \n                              and processes (implies\
                 \n                              --interproc; composes with\
                 \n                              --summary-cache)"
            );
            2
        }
    };
    exit(code);
}

/// Extracts `--solver <kind>`, `--lattice <backend>`, `--jobs <n>`,
/// `--interproc`, `--summary-cache <path>` and `--shared-store <dir>`
/// from `args`, returning the remaining arguments and the chosen
/// [`EngineConfig`] knobs (defaults: [`SolverKind::Scc`],
/// [`LatticeBackend::Auto`], [`Jobs::Auto`], [`Contextuality::Intra`],
/// no cache, no store). `--summary-cache` and `--shared-store` both
/// imply `--interproc` — they persist interprocedural summaries — and
/// compose: the per-module cache answers first, the cross-module store
/// catches what it misses. An explicit `--jobs` count beats the
/// `SRAA_JOBS` environment variable; whichever wins is reported on
/// **stderr** (stdout must stay byte-identical across every jobs value).
fn take_engine_flags(args: &[String]) -> Result<(Vec<String>, EngineConfig), i32> {
    let mut cfg = EngineConfig::default();
    let (rest, solver) = take_value_flag(args, "--solver")?;
    if let Some(value) = solver {
        let Some(k) = SolverKind::parse(&value) else {
            eprintln!("unknown solver `{value}` (expected worklist or scc)");
            return Err(2);
        };
        cfg.solver = k;
    }
    let (rest, lattice) = take_value_flag(&rest, "--lattice")?;
    if let Some(value) = lattice {
        let Some(b) = LatticeBackend::parse(&value) else {
            eprintln!("unknown lattice backend `{value}` (expected auto, arc or dense)");
            return Err(2);
        };
        cfg.lattice = b;
    }
    let (rest, jobs) = take_value_flag(&rest, "--jobs")?;
    if let Some(value) = jobs {
        let Some(j) = Jobs::parse(&value) else {
            eprintln!("invalid --jobs `{value}` (expected a positive thread count or `auto`)");
            return Err(2);
        };
        cfg.jobs = j;
    }
    match (cfg.jobs, Jobs::from_env()) {
        (Jobs::N(n), _) => eprintln!("# jobs: {n} (flag)"),
        (Jobs::Auto, Some(Jobs::N(n))) => eprintln!("# jobs: {n} (env)"),
        _ => {} // hardware default; invalid SRAA_JOBS values are ignored
    }
    let (rest, interproc) = take_flag(&rest, "--interproc");
    if interproc {
        cfg.contextuality = Contextuality::Summaries;
    }
    let (rest, cache) = take_value_flag(&rest, "--summary-cache")?;
    if let Some(path) = cache {
        cfg = cfg.with_summary_cache(path);
    }
    let (rest, store) = take_value_flag(&rest, "--shared-store")?;
    if let Some(dir) = store {
        cfg = cfg.with_shared_store(dir);
    }
    Ok((rest, cfg))
}

/// Prints the warm/cold summary-cache outcome to **stderr** (stdout stays
/// byte-identical between warm and cold runs, which the differential
/// tests and the CI warm-run smoke rely on).
fn report_cache(used_cache: bool, lt: &StrictInequalityAa) {
    if !used_cache {
        return;
    }
    let s = lt.engine().stats();
    let outcome = CacheOutcome {
        hits: s.cache_hits,
        misses: s.cache_misses,
        invalidated: s.cache_invalidated,
    };
    eprintln!(
        "# summary-cache: {} hit(s), {} miss(es), {} invalidated ({:.1}% hit rate)",
        outcome.hits,
        outcome.misses,
        outcome.invalidated,
        outcome.hit_rate() * 100.0
    );
}

/// Prints the shared-store outcome to **stderr**, mirroring
/// [`report_cache`]: stdout must stay byte-identical between a cold run
/// and a run answered from a populated store.
fn report_store(used_store: bool, lt: &StrictInequalityAa) {
    if !used_store {
        return;
    }
    let s = lt.engine().stats();
    let outcome =
        StoreOutcome { hits: s.store_hits, misses: s.store_misses, published: s.store_published };
    eprintln!(
        "# shared-store: {} hit(s), {} miss(es), {} published ({:.1}% hit rate)",
        outcome.hits,
        outcome.misses,
        outcome.published,
        outcome.hit_rate() * 100.0
    );
}

/// Extracts a value-taking `flag <value>` pair from `args`, returning
/// the remaining arguments and the raw value if the flag was present.
/// A trailing flag with no value is a usage error (exit code 2).
fn take_value_flag(args: &[String], flag: &str) -> Result<(Vec<String>, Option<String>), i32> {
    let mut rest = Vec::with_capacity(args.len());
    let mut value = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        if a == flag {
            let Some(v) = it.next() else {
                eprintln!("{flag} needs a value");
                return Err(2);
            };
            value = Some(v.clone());
        } else {
            rest.push(a.clone());
        }
    }
    Ok((rest, value))
}

/// Extracts a boolean `flag` from `args`, returning the remaining
/// arguments and whether it was present.
fn take_flag(args: &[String], flag: &str) -> (Vec<String>, bool) {
    let rest: Vec<String> = args.iter().filter(|a| *a != flag).cloned().collect();
    let found = rest.len() != args.len();
    (rest, found)
}

/// Rejects any remaining `--flag` argument: after the known flags have
/// been extracted, whatever still looks like a flag is a typo or an
/// unsupported option — exit code 2 with a usage hint, never a silent
/// no-op.
fn reject_unknown_flags(args: &[String], usage: &str) -> Result<(), i32> {
    for a in args {
        if a.starts_with("--") {
            eprintln!("unknown flag `{a}`\nusage: {usage}");
            return Err(2);
        }
    }
    Ok(())
}

fn load(path: &str) -> Result<sraa::ir::Module, i32> {
    let src = std::fs::read_to_string(path).map_err(|e| {
        eprintln!("cannot read {path}: {e}");
        1
    })?;
    sraa::minic::compile(&src).map_err(|e| {
        eprintln!("{e}");
        1
    })
}

fn cmd_compile(args: &[String]) -> i32 {
    const USAGE: &str = "sraa compile <file.c> [--essa]";
    let (args, essa) = take_flag(args, "--essa");
    if let Err(code) = reject_unknown_flags(&args, USAGE) {
        return code;
    }
    let Some(path) = args.first() else {
        eprintln!("usage: {USAGE}");
        return 2;
    };
    let Ok(mut m) = load(path) else { return 1 };
    if essa {
        let (_, stats) = sraa::essa::transform_module(&mut m);
        eprintln!(
            "# e-SSA: {} sigma copies, {} subtraction splits, {} edges split",
            stats.sigma_copies, stats.sub_splits, stats.edges_split
        );
    }
    print!("{}", sraa::ir::printer::print_module(&m));
    0
}

fn cmd_eval(args: &[String]) -> i32 {
    const USAGE: &str =
        "sraa eval <file.c> [--solver worklist|scc] [--lattice auto|arc|dense] [--jobs N] \
         [--interproc] [--summary-cache <path>] [--shared-store <dir>]";
    let Ok((args, cfg)) = take_engine_flags(args) else { return 2 };
    if let Err(code) = reject_unknown_flags(&args, USAGE) {
        return code;
    }
    let Some(path) = args.first() else {
        eprintln!("usage: {USAGE}");
        return 2;
    };
    let Ok(mut m) = load(path) else { return 1 };
    let used_cache = cfg.summary_cache.is_some();
    let used_store = cfg.shared_store.is_some();
    let lt = StrictInequalityAa::with_engine_config(&mut m, cfg);
    report_cache(used_cache, &lt);
    report_store(used_store, &lt);
    print!("{}", render_eval(&m, &lt));
    0
}

fn cmd_lt(args: &[String]) -> i32 {
    const USAGE: &str = "sraa lt <file.c> <function> [--solver worklist|scc] \
                         [--lattice auto|arc|dense] [--jobs N] [--interproc] \
                         [--summary-cache <path>] [--shared-store <dir>]";
    let Ok((args, cfg)) = take_engine_flags(args) else { return 2 };
    if let Err(code) = reject_unknown_flags(&args, USAGE) {
        return code;
    }
    let (Some(path), Some(fname)) = (args.first(), args.get(1)) else {
        eprintln!("usage: {USAGE}");
        return 2;
    };
    let Ok(mut m) = load(path) else { return 1 };
    let used_cache = cfg.summary_cache.is_some();
    let used_store = cfg.shared_store.is_some();
    let lt = StrictInequalityAa::with_engine_config(&mut m, cfg);
    report_cache(used_cache, &lt);
    report_store(used_store, &lt);
    let Some(fid) = m.function_by_name(fname) else {
        eprintln!("no function `{fname}`");
        return 1;
    };
    let f = m.function(fid);
    println!("LT sets of @{fname} (e-SSA form):");
    for b in f.block_ids() {
        for (v, data) in f.block_insts(b) {
            if !data.has_result() || matches!(data.kind, InstKind::Const(_)) {
                continue;
            }
            let set = lt.engine().lt_set(fid, v);
            if set.is_empty() {
                continue;
            }
            let members: Vec<String> = set
                .iter()
                .map(|(of, ov)| {
                    if *of == fid {
                        format!("{ov}")
                    } else {
                        format!("{}::{ov}", m.function(*of).name)
                    }
                })
                .collect();
            println!("  LT({v}) = {{{}}}", members.join(", "));
        }
    }
    let s = lt.engine().stats();
    println!(
        "\n{} constraints, {} pops ({:.2}/constraint) [{} solver]",
        s.constraints,
        s.pops,
        s.pops_per_constraint(),
        lt.engine().solver_kind()
    );
    if let Some(sums) = lt.engine().summaries() {
        println!(
            "interproc: {} summary fact(s) over {} SCC(s) ({} recursive, {} solves)",
            sums.facts(),
            sums.stats.sccs,
            sums.stats.recursive_sccs,
            sums.stats.solves
        );
    }
    0
}

fn cmd_run(args: &[String]) -> i32 {
    const USAGE: &str = "sraa run <file.c> [ints...]";
    if let Err(code) = reject_unknown_flags(args, USAGE) {
        return code;
    }
    let Some(path) = args.first() else {
        eprintln!("usage: {USAGE}");
        return 2;
    };
    let Ok(m) = load(path) else { return 1 };
    let main_args: Vec<i64> = args[1..].iter().filter_map(|a| a.parse().ok()).collect();
    match Interpreter::new(&m).with_step_limit(100_000_000).run("main", &main_args) {
        Ok(t) => {
            println!("result: {:?} ({} steps)", t.result, t.steps);
            0
        }
        Err(e) => {
            eprintln!("trap: {e}");
            1
        }
    }
}

fn cmd_pdg(args: &[String]) -> i32 {
    const USAGE: &str =
        "sraa pdg <file.c> [--solver worklist|scc] [--lattice auto|arc|dense] [--jobs N] \
         [--interproc] [--summary-cache <path>] [--shared-store <dir>]";
    let Ok((args, mut cfg)) = take_engine_flags(args) else { return 2 };
    if let Err(code) = reject_unknown_flags(&args, USAGE) {
        return code;
    }
    let Some(path) = args.first() else {
        eprintln!("usage: {USAGE}");
        return 2;
    };
    let Ok(mut m) = load(path) else { return 1 };
    cfg.gen.range_offsets = true; // the Figure 12 experiment's setting
    let used_cache = cfg.summary_cache.is_some();
    let used_store = cfg.shared_store.is_some();
    let lt = StrictInequalityAa::with_engine_config(&mut m, cfg);
    report_cache(used_cache, &lt);
    report_store(used_store, &lt);
    let ba = BasicAliasAnalysis::new(&m);
    let both = Combined::new(vec![Box::new(BasicAliasAnalysis::new(&m)), Box::new(lt.clone())]);
    let g_ba = DepGraph::build(&m, &ba);
    let g_both = DepGraph::build(&m, &both);
    println!("static accesses : {}", g_ba.static_accesses);
    println!("memory nodes BA : {}", g_ba.memory_nodes);
    println!("memory nodes +LT: {}", g_both.memory_nodes);
    println!("data edges      : {}", g_ba.edges.len());
    println!("control edges   : {}", g_ba.control_edges.len());
    0
}

fn cmd_opt(args: &[String]) -> i32 {
    const USAGE: &str = "sraa opt <file.c> [--ba] [--solver worklist|scc] \
                         [--lattice auto|arc|dense] [--jobs N] [--interproc] \
                         [--summary-cache <path>] [--shared-store <dir>]";
    let Ok((args, cfg)) = take_engine_flags(args) else { return 2 };
    let (args, ba_only) = take_flag(&args, "--ba");
    if let Err(code) = reject_unknown_flags(&args, USAGE) {
        return code;
    }
    let Some(path) = args.first() else {
        eprintln!("usage: {USAGE}");
        return 2;
    };
    let Ok(mut m) = load(path) else { return 1 };
    let used_cache = cfg.summary_cache.is_some();
    let used_store = cfg.shared_store.is_some();
    let lt = StrictInequalityAa::with_engine_config(&mut m, cfg);
    report_cache(used_cache, &lt);
    report_store(used_store, &lt);
    let aa: Box<dyn AliasAnalysis> = if ba_only {
        Box::new(BasicAliasAnalysis::new(&m))
    } else {
        Box::new(Combined::new(vec![Box::new(BasicAliasAnalysis::new(&m)), Box::new(lt.clone())]))
    };
    let mut stats = sraa::opt::eliminate_redundant_loads(&mut m, aa.as_ref());
    stats += sraa::opt::eliminate_dead_stores(&mut m, aa.as_ref());
    stats += sraa::opt::hoist_invariant_loads(&mut m, aa.as_ref());
    if let Err(e) = sraa::ir::verify(&m) {
        eprintln!("internal error: optimised module fails verification: {e}");
        return 1;
    }
    eprintln!(
        "# {}: forwarded {} loads, killed {} stores, hoisted {} loads",
        aa.name(),
        stats.loads_eliminated,
        stats.stores_eliminated,
        stats.loads_hoisted
    );
    print!("{}", sraa::ir::printer::print_module(&m));
    0
}

/// Which socket family a `serve`/`query` invocation targets. `--socket`
/// and `--addr` are mutually exclusive: one daemon, one endpoint.
enum Endpoint {
    Unix(String),
    Tcp(String),
}

/// Extracts the endpoint flags, enforcing mutual exclusion with a clear
/// diagnostic (exit 2, the PR 3 unknown-flag convention).
fn take_endpoint(args: &[String], usage: &str) -> Result<(Vec<String>, Endpoint), i32> {
    let (rest, socket) = take_value_flag(args, "--socket")?;
    let (rest, addr) = take_value_flag(&rest, "--addr")?;
    match (socket, addr) {
        (Some(_), Some(_)) => {
            eprintln!("--socket and --addr are mutually exclusive; pick one endpoint");
            Err(2)
        }
        (Some(path), None) => Ok((rest, Endpoint::Unix(path))),
        (None, Some(a)) => Ok((rest, Endpoint::Tcp(a))),
        (None, None) => {
            eprintln!("need an endpoint: --socket <path> or --addr <host:port>\nusage: {usage}");
            Err(2)
        }
    }
}

/// Wires SIGTERM/SIGINT to the daemon's shutdown flag, so `kill <pid>`
/// triggers the same graceful drain as a `shutdown` frame. Raw `signal`
/// binding: the workspace is offline (no `libc`/`signal-hook` crates),
/// and the handler only stores to an atomic, which is async-signal-safe.
#[cfg(unix)]
fn install_signal_handlers(flag: std::sync::Arc<std::sync::atomic::AtomicBool>) {
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::{Arc, OnceLock};
    static FLAG: OnceLock<Arc<AtomicBool>> = OnceLock::new();
    extern "C" fn on_signal(_sig: i32) {
        if let Some(f) = FLAG.get() {
            f.store(true, Ordering::SeqCst);
        }
    }
    extern "C" {
        fn signal(signum: i32, handler: extern "C" fn(i32)) -> usize;
    }
    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;
    let _ = FLAG.set(flag);
    unsafe {
        signal(SIGTERM, on_signal);
        signal(SIGINT, on_signal);
    }
}

#[cfg(not(unix))]
fn install_signal_handlers(_flag: std::sync::Arc<std::sync::atomic::AtomicBool>) {}

fn cmd_serve(args: &[String]) -> i32 {
    const USAGE: &str = "sraa serve (--socket <path> | --addr <host:port>) \
                         [--solver worklist|scc] [--lattice auto|arc|dense] [--jobs N] \
                         [--summary-cache <path>] [--shared-store <dir>]";
    let Ok((args, mut cfg)) = take_engine_flags(args) else { return 2 };
    let (args, endpoint) = match take_endpoint(&args, USAGE) {
        Ok(x) => x,
        Err(code) => return code,
    };
    if let Err(code) = reject_unknown_flags(&args, USAGE) {
        return code;
    }
    // `--summary-cache` is the daemon's warm start: read once at boot,
    // then the cache lives in memory and rolls forward upload-to-upload.
    let warm =
        cfg.summary_cache.take().and_then(|path| match sraa::lt::persist::load(&path, cfg.gen) {
            Ok(c) => {
                eprintln!("# serve: warm start from {} ({} summaries)", path.display(), c.len());
                Some(c)
            }
            Err(e) if e.is_not_found() => None,
            Err(e) => {
                eprintln!("# serve warning: {}: {e}; starting cold", path.display());
                None
            }
        });
    // `--shared-store` becomes a resident store handle: opened once at
    // boot, refreshed before each upload so concurrent daemons sharing
    // the directory see each other's published segments.
    let store = cfg.shared_store.take().and_then(|dir| {
        match sraa::lt::SharedSummaryStore::open(&dir, cfg.gen) {
            Ok(s) => {
                eprintln!("# serve: shared store at {} ({} summaries)", dir.display(), s.len());
                Some(s)
            }
            Err(e) => {
                eprintln!(
                    "# serve warning: {}: {e}; running without a shared store",
                    dir.display()
                );
                None
            }
        }
    });
    let scfg = sraa::serve::ServerConfig { engine: cfg, ..Default::default() };
    let server = match &endpoint {
        Endpoint::Unix(path) => sraa::serve::Server::bind_unix(path, scfg),
        Endpoint::Tcp(addr) => sraa::serve::Server::bind_tcp(addr.as_str(), scfg),
    };
    let server = match server {
        Ok(s) => s,
        Err(e) => {
            eprintln!("cannot bind: {e}");
            return 1;
        }
    };
    let server = match warm {
        Some(c) => server.with_warm_cache(c),
        None => server,
    };
    let server = match store {
        Some(s) => server.with_shared_store(s),
        None => server,
    };
    install_signal_handlers(server.shutdown_flag());
    match &endpoint {
        Endpoint::Unix(path) => eprintln!("# serve: listening on {path}"),
        Endpoint::Tcp(_) => {
            let addr = server.tcp_addr().map(|a| a.to_string()).unwrap_or_default();
            eprintln!("# serve: listening on {addr}");
        }
    }
    if let Err(e) = server.run() {
        eprintln!("serve error: {e}");
        return 1;
    }
    eprintln!("{}", server.stats());
    0
}

const QUERY_USAGE: &str = "sraa query (--socket <path> | --addr <host:port>) <request>\
                           \n  upload <name> <file.c>          compile + solve on the daemon\
                           \n  no-alias <mod> <func> <p1> <p2> one disambiguation query\
                           \n  lt <mod> <func> <a> <b>         one strict-inequality query\
                           \n  eval <mod>                      the aa-eval report (byte-identical\
                           \n                                  to one-shot `sraa eval --interproc`)\
                           \n  pairs <mod> <func>              streamed no-alias pairs\
                           \n  batch <file>                    run one request per line\
                           \n  stats                           daemon counters\
                           \n  shutdown                        graceful drain";

fn cmd_query(args: &[String]) -> i32 {
    let (args, endpoint) = match take_endpoint(args, QUERY_USAGE) {
        Ok(x) => x,
        Err(code) => return code,
    };
    if let Err(code) = reject_unknown_flags(&args, QUERY_USAGE) {
        return code;
    }
    if args.is_empty() {
        eprintln!("usage: {QUERY_USAGE}");
        return 2;
    }
    let client = match &endpoint {
        Endpoint::Unix(path) => sraa::serve::Client::connect_unix(path),
        Endpoint::Tcp(addr) => sraa::serve::Client::connect_tcp(addr.as_str()),
    };
    let mut client = match client {
        Ok(c) => c,
        Err(e) => {
            eprintln!("cannot connect: {e}");
            return 1;
        }
    };
    if args[0] == "batch" {
        let Some(path) = args.get(1) else {
            eprintln!("usage: {QUERY_USAGE}");
            return 2;
        };
        let Ok(batch) = std::fs::read_to_string(path) else {
            eprintln!("cannot read {path}");
            return 1;
        };
        for line in batch.lines() {
            let words: Vec<String> = line.split_whitespace().map(str::to_string).collect();
            if words.is_empty() || words[0].starts_with('#') {
                continue;
            }
            let code = run_query(&mut client, &words);
            if code != 0 {
                return code;
            }
        }
        return 0;
    }
    run_query(&mut client, &args)
}

/// Executes one `sraa query` request over an open connection, printing
/// its result. Query outputs go to stdout (deterministic, diffable
/// against one-shot commands); progress and counters go to stderr.
fn run_query(client: &mut sraa::serve::Client, words: &[String]) -> i32 {
    use sraa::serve::{obj, Json};
    let reply = |client: &mut sraa::serve::Client, req: &Json| match client.request(req) {
        Ok(r) => Ok(r),
        Err(e) => {
            eprintln!("{e}");
            Err(1)
        }
    };
    match words[0].as_str() {
        "upload" => {
            let (Some(name), Some(path)) = (words.get(1), words.get(2)) else {
                eprintln!("usage: {QUERY_USAGE}");
                return 2;
            };
            let Ok(source) = std::fs::read_to_string(path) else {
                eprintln!("cannot read {path}");
                return 1;
            };
            let req = obj([
                ("cmd", Json::Str("upload".into())),
                ("name", Json::Str(name.clone())),
                ("source", Json::Str(source)),
            ]);
            let r = match reply(client, &req) {
                Ok(r) => r,
                Err(code) => return code,
            };
            if !r.is_ok() {
                return fail_reply(&r);
            }
            let outcome = CacheOutcome {
                hits: r.num_field("hits").unwrap_or(0) as u32,
                misses: r.num_field("misses").unwrap_or(0) as u32,
                invalidated: r.num_field("invalidated").unwrap_or(0) as u32,
            };
            eprintln!(
                "# summary-cache: {} hit(s), {} miss(es), {} invalidated ({:.1}% hit rate)",
                outcome.hits,
                outcome.misses,
                outcome.invalidated,
                outcome.hit_rate() * 100.0
            );
            // Store counters only appear when the daemon runs with
            // `--shared-store`; suppress the line otherwise so store-less
            // output is unchanged.
            if r.num_field("store_hits").is_some() {
                let store = StoreOutcome {
                    hits: r.num_field("store_hits").unwrap_or(0) as u32,
                    misses: r.num_field("store_misses").unwrap_or(0) as u32,
                    published: r.num_field("store_published").unwrap_or(0) as u32,
                };
                eprintln!(
                    "# shared-store: {} hit(s), {} miss(es), {} published ({:.1}% hit rate)",
                    store.hits,
                    store.misses,
                    store.published,
                    store.hit_rate() * 100.0
                );
            }
            println!(
                "uploaded {}: {} function(s), {} queries",
                name,
                r.num_field("functions").unwrap_or(0),
                r.num_field("queries").unwrap_or(0)
            );
            0
        }
        verb @ ("no-alias" | "lt") => {
            let (Some(m), Some(f), Some(p1), Some(p2)) =
                (words.get(1), words.get(2), words.get(3), words.get(4))
            else {
                eprintln!("usage: {QUERY_USAGE}");
                return 2;
            };
            let req = obj([
                ("cmd", Json::Str(verb.into())),
                ("module", Json::Str(m.clone())),
                ("func", Json::Str(f.clone())),
                ("p1", Json::Str(p1.clone())),
                ("p2", Json::Str(p2.clone())),
            ]);
            let r = match reply(client, &req) {
                Ok(r) => r,
                Err(code) => return code,
            };
            if !r.is_ok() {
                return fail_reply(&r);
            }
            if verb == "no-alias" {
                let v = r.get("no_alias").and_then(Json::as_bool).unwrap_or(false);
                println!("{}", if v { "no-alias" } else { "may-alias" });
            } else {
                let v = r.get("lt").and_then(Json::as_bool).unwrap_or(false);
                println!("{v}");
            }
            0
        }
        "eval" => {
            let Some(m) = words.get(1) else {
                eprintln!("usage: {QUERY_USAGE}");
                return 2;
            };
            let req = obj([("cmd", Json::Str("eval".into())), ("module", Json::Str(m.clone()))]);
            let r = match reply(client, &req) {
                Ok(r) => r,
                Err(code) => return code,
            };
            if !r.is_ok() {
                return fail_reply(&r);
            }
            print!("{}", r.str_field("text").unwrap_or(""));
            0
        }
        "pairs" => {
            let (Some(m), Some(f)) = (words.get(1), words.get(2)) else {
                eprintln!("usage: {QUERY_USAGE}");
                return 2;
            };
            let req = obj([
                ("cmd", Json::Str("pairs".into())),
                ("module", Json::Str(m.clone())),
                ("func", Json::Str(f.clone())),
            ]);
            let last = client.request_streamed(&req, |frame| {
                if let Some(Json::Arr(pair)) = frame.get("pair") {
                    let names: Vec<&str> = pair.iter().filter_map(Json::as_str).collect();
                    println!("{}", names.join(" "));
                }
            });
            match last {
                Ok(done) if done.is_ok() => {
                    eprintln!("# {} pair(s)", done.num_field("done").unwrap_or(0));
                    0
                }
                Ok(err) => fail_reply(&err),
                Err(e) => {
                    eprintln!("{e}");
                    1
                }
            }
        }
        "stats" => {
            let r = match reply(client, &obj([("cmd", Json::Str("stats".into()))])) {
                Ok(r) => r,
                Err(code) => return code,
            };
            if !r.is_ok() {
                return fail_reply(&r);
            }
            if let Json::Obj(pairs) = &r {
                for (k, v) in pairs {
                    if k != "ok" {
                        println!("{k}: {}", v.render());
                    }
                }
            }
            0
        }
        "shutdown" => {
            let r = match reply(client, &obj([("cmd", Json::Str("shutdown".into()))])) {
                Ok(r) => r,
                Err(code) => return code,
            };
            if !r.is_ok() {
                return fail_reply(&r);
            }
            eprintln!("# shutdown requested");
            0
        }
        other => {
            eprintln!("unknown query `{other}`\nusage: {QUERY_USAGE}");
            2
        }
    }
}

/// Prints a typed server error reply and returns the CLI exit code.
fn fail_reply(reply: &sraa::serve::Json) -> i32 {
    eprintln!(
        "server error: {}: {}",
        reply.str_field("error").unwrap_or("unknown"),
        reply.str_field("detail").unwrap_or("")
    );
    1
}

fn cmd_gen(args: &[String]) -> i32 {
    const USAGE: &str = "sraa gen <seed> <depth> [--helpers <n>]";
    let Ok((rest, helpers)) = take_value_flag(args, "--helpers") else { return 2 };
    let helpers: usize = match helpers.as_deref().map(str::parse) {
        None => 0,
        Some(Ok(n)) => n,
        Some(Err(_)) => {
            eprintln!("--helpers needs a count\nusage: {USAGE}");
            return 2;
        }
    };
    if let Err(code) = reject_unknown_flags(&rest, USAGE) {
        return code;
    }
    let seed: u64 = rest.first().and_then(|a| a.parse().ok()).unwrap_or(1);
    let depth: u8 = rest.get(1).and_then(|a| a.parse().ok()).unwrap_or(3);
    let w = sraa::synth::csmith_generate(sraa::synth::CsmithConfig {
        seed,
        max_ptr_depth: depth,
        num_stmts: 80,
        helpers,
    });
    print!("{}", w.source);
    0
}
