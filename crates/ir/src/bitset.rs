//! A dense fixed-universe bit set.
//!
//! Used for liveness sets and as one of the two representations of the
//! less-than sets in the solver. Keeping it here (rather than pulling in an
//! external crate) keeps the workspace dependency-light and lets the solver
//! iterate set bits without allocation.

/// A set of `usize` elements drawn from a fixed universe `0..len`.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct DenseBitSet {
    words: Vec<u64>,
    len: usize,
}

impl DenseBitSet {
    /// Creates an empty set over the universe `0..len`.
    pub fn new(len: usize) -> Self {
        Self { words: vec![0; len.div_ceil(64)], len }
    }

    /// Creates a full set over the universe `0..len`.
    pub fn full(len: usize) -> Self {
        let mut s = Self::new(len);
        for (i, w) in s.words.iter_mut().enumerate() {
            let lo = i * 64;
            let n = len.saturating_sub(lo).min(64);
            *w = if n == 64 { u64::MAX } else { (1u64 << n) - 1 };
        }
        s
    }

    /// Universe size.
    pub fn universe(&self) -> usize {
        self.len
    }

    /// Tests membership.
    ///
    /// # Panics
    ///
    /// Panics if `i` is outside the universe.
    #[inline]
    pub fn contains(&self, i: usize) -> bool {
        assert!(i < self.len, "{i} outside universe {}", self.len);
        self.words[i / 64] & (1 << (i % 64)) != 0
    }

    /// Inserts `i`; returns `true` if it was newly inserted.
    #[inline]
    pub fn insert(&mut self, i: usize) -> bool {
        assert!(i < self.len, "{i} outside universe {}", self.len);
        let w = &mut self.words[i / 64];
        let bit = 1 << (i % 64);
        let was = *w & bit != 0;
        *w |= bit;
        !was
    }

    /// Removes `i`; returns `true` if it was present.
    #[inline]
    pub fn remove(&mut self, i: usize) -> bool {
        assert!(i < self.len, "{i} outside universe {}", self.len);
        let w = &mut self.words[i / 64];
        let bit = 1 << (i % 64);
        let was = *w & bit != 0;
        *w &= !bit;
        was
    }

    /// Number of elements in the set.
    pub fn count(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// `true` if no element is present.
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// In-place union; returns `true` if `self` changed.
    pub fn union_with(&mut self, other: &DenseBitSet) -> bool {
        assert_eq!(self.len, other.len, "universe mismatch");
        let mut changed = false;
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            let next = *a | b;
            changed |= next != *a;
            *a = next;
        }
        changed
    }

    /// In-place intersection; returns `true` if `self` changed.
    pub fn intersect_with(&mut self, other: &DenseBitSet) -> bool {
        assert_eq!(self.len, other.len, "universe mismatch");
        let mut changed = false;
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            let next = *a & b;
            changed |= next != *a;
            *a = next;
        }
        changed
    }

    /// In-place difference (`self \ other`); returns `true` if changed.
    pub fn difference_with(&mut self, other: &DenseBitSet) -> bool {
        assert_eq!(self.len, other.len, "universe mismatch");
        let mut changed = false;
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            let next = *a & !b;
            changed |= next != *a;
            *a = next;
        }
        changed
    }

    /// Removes all elements.
    pub fn clear(&mut self) {
        self.words.iter_mut().for_each(|w| *w = 0);
    }

    /// Iterates over set elements in increasing order.
    pub fn iter(&self) -> Iter<'_> {
        Iter { set: self, word_idx: 0, bits: self.words.first().copied().unwrap_or(0) }
    }
}

/// Iterator over the elements of a [`DenseBitSet`].
#[derive(Debug)]
pub struct Iter<'a> {
    set: &'a DenseBitSet,
    word_idx: usize,
    bits: u64,
}

impl Iterator for Iter<'_> {
    type Item = usize;

    fn next(&mut self) -> Option<usize> {
        loop {
            if self.bits != 0 {
                let tz = self.bits.trailing_zeros() as usize;
                self.bits &= self.bits - 1;
                return Some(self.word_idx * 64 + tz);
            }
            self.word_idx += 1;
            if self.word_idx >= self.set.words.len() {
                return None;
            }
            self.bits = self.set.words[self.word_idx];
        }
    }
}

impl<'a> IntoIterator for &'a DenseBitSet {
    type Item = usize;
    type IntoIter = Iter<'a>;
    fn into_iter(self) -> Iter<'a> {
        self.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn insert_remove_contains() {
        let mut s = DenseBitSet::new(130);
        assert!(s.insert(0));
        assert!(s.insert(129));
        assert!(!s.insert(0));
        assert!(s.contains(0));
        assert!(s.contains(129));
        assert!(!s.contains(64));
        assert_eq!(s.count(), 2);
        assert!(s.remove(0));
        assert!(!s.remove(0));
        assert!(!s.contains(0));
    }

    #[test]
    fn full_has_everything_and_nothing_more() {
        for n in [0usize, 1, 63, 64, 65, 128, 200] {
            let s = DenseBitSet::full(n);
            assert_eq!(s.count(), n, "universe {n}");
            assert_eq!(s.iter().collect::<Vec<_>>(), (0..n).collect::<Vec<_>>());
        }
    }

    #[test]
    fn set_algebra() {
        let mut a = DenseBitSet::new(100);
        let mut b = DenseBitSet::new(100);
        for i in [1usize, 5, 64, 70] {
            a.insert(i);
        }
        for i in [5usize, 64, 99] {
            b.insert(i);
        }
        let mut u = a.clone();
        assert!(u.union_with(&b));
        assert_eq!(u.iter().collect::<Vec<_>>(), vec![1, 5, 64, 70, 99]);
        let mut i = a.clone();
        assert!(i.intersect_with(&b));
        assert_eq!(i.iter().collect::<Vec<_>>(), vec![5, 64]);
        let mut d = a.clone();
        assert!(d.difference_with(&b));
        assert_eq!(d.iter().collect::<Vec<_>>(), vec![1, 70]);
        assert!(!a.union_with(&i), "union with subset must not change the set");
    }

    #[test]
    fn iter_on_empty() {
        let s = DenseBitSet::new(0);
        assert_eq!(s.iter().count(), 0);
        let s = DenseBitSet::new(64);
        assert_eq!(s.iter().count(), 0);
    }

    proptest! {
        #[test]
        fn matches_reference_impl(ops in proptest::collection::vec((0usize..200, any::<bool>()), 0..300)) {
            let mut s = DenseBitSet::new(200);
            let mut reference = std::collections::BTreeSet::new();
            for (i, add) in ops {
                if add {
                    prop_assert_eq!(s.insert(i), reference.insert(i));
                } else {
                    prop_assert_eq!(s.remove(i), reference.remove(&i));
                }
            }
            prop_assert_eq!(s.iter().collect::<Vec<_>>(), reference.into_iter().collect::<Vec<_>>());
        }

        #[test]
        fn union_intersection_laws(xs in proptest::collection::btree_set(0usize..128, 0..60),
                                   ys in proptest::collection::btree_set(0usize..128, 0..60)) {
            let mut a = DenseBitSet::new(128);
            let mut b = DenseBitSet::new(128);
            xs.iter().for_each(|&i| { a.insert(i); });
            ys.iter().for_each(|&i| { b.insert(i); });
            let mut u = a.clone();
            u.union_with(&b);
            let mut i = a.clone();
            i.intersect_with(&b);
            // |A∪B| + |A∩B| = |A| + |B|
            prop_assert_eq!(u.count() + i.count(), a.count() + b.count());
            // A∩B ⊆ A ⊆ A∪B
            for e in i.iter() { prop_assert!(a.contains(e)); }
            for e in a.iter() { prop_assert!(u.contains(e)); }
        }
    }
}
