//! The CI perf-regression gate.
//!
//! Compares a freshly generated `BENCH_scalability.json` (produced by the
//! `scalability` binary) against the committed `BENCH_baseline.json` and
//! exits non-zero when any tracked metric regresses by more than the
//! tolerance (default 25%, override with `SRAA_GATE_TOLERANCE_PCT`).
//!
//! ```sh
//! cargo run --release -p sraa-bench --bin scalability   # writes the fresh JSON
//! cargo run --release -p sraa-bench --bin gate          # compares vs baseline
//! ```
//!
//! Tracked metrics, by class:
//!
//! * **corpus identity** (exact) — workload counts and total constraints
//!   must match the baseline. A mismatch means the benchmark corpus
//!   itself changed; regenerate the baseline in the same PR (run
//!   `scalability` with CI's `SRAA_SUITE_N` and copy
//!   `BENCH_scalability.json` over `BENCH_baseline.json`).
//! * **precision** (must not drop) — intra and summaries no-alias counts
//!   over the call-heavy suite, and the summaries-over-intra gain must
//!   stay strictly positive. These are deterministic, so any drop is a
//!   real precision regression.
//! * **cache effectiveness** (must not drop) — the incremental engine's
//!   warm-run hit rate over unchanged modules. Deterministic; anything
//!   under the baseline's 1.0 means summary keys churn without an edit,
//!   i.e. the cache stopped caching.
//! * **work** (≤ baseline × tolerance) — constraint evaluations per
//!   constraint for both solver strategies, total summary solves, and
//!   heap allocation counts per solver and per lattice backend.
//!   Deterministic counters: immune to machine noise.
//! * **time** (≤ baseline × time tolerance, calibration-normalised) —
//!   wall-clock totals divided by the run's own `calibration_us` (the
//!   solve time of one fixed reference system), so a fast laptop
//!   baseline and a slow CI runner compare like for like. Time metrics
//!   use a looser default bar (75%, `SRAA_GATE_TIME_TOLERANCE_PCT`):
//!   normalisation cancels machine speed but not run-to-run noise on a
//!   shared runner, and the deterministic counters already catch any
//!   algorithmic regression tightly. Peak RSS rides under the same bar.
//! * **hard floors** (fresh run only) — the SCC strategy must beat the
//!   worklist (`scc_speedup_over_worklist ≥ 1.0`: it is the engine
//!   default on that argument), and the sharded warm pass must not lose
//!   to the serial one. The wavefront pipeline must likewise not lose to
//!   its own serial leg (`parallel.speedup_over_serial ≥ 1.0`) — but
//!   only when the fresh run actually had workers (`parallel.jobs ≥ 2`);
//!   on a single-core host both legs run the identical serial path and
//!   the row is informational. The resident daemon must likewise beat the
//!   one-shot path it replaces (`serve.resident_query_us ≤
//!   serve.oneshot_warm_us`), and the shared summary store must pay for
//!   itself on the fresh run: an upload answered from a populated store
//!   may not cost more than the cold upload that populated it
//!   (`store.warm_upload_us ≤ store.cold_upload_us`). The store's
//!   warm-run hit rate over an unchanged module rides with the cache
//!   hit rate under the must-not-drop bar (baseline pins 1.0).

use std::process::exit;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let baseline_path = args.first().map(String::as_str).unwrap_or("BENCH_baseline.json");
    let fresh_path = args.get(1).map(String::as_str).unwrap_or("BENCH_scalability.json");
    let tolerance_pct: f64 =
        std::env::var("SRAA_GATE_TOLERANCE_PCT").ok().and_then(|v| v.parse().ok()).unwrap_or(25.0);
    // Wall-clock metrics get a looser bar: calibration normalisation
    // absorbs machine *speed*, but not noise asymmetry between the tiny
    // calibration probe and the long suite run on a contended CI runner.
    // 75% still catches real (≥2x-ish) slowdowns without flaking; the
    // deterministic counters above carry the tight 25% bar.
    let time_tolerance_pct: f64 = std::env::var("SRAA_GATE_TIME_TOLERANCE_PCT")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(75.0);

    let baseline = read_doc(baseline_path);
    let fresh = read_doc(fresh_path);
    let (binter, finter) = (baseline.section("interproc"), fresh.section("interproc"));
    let (binc, finc) = (baseline.section("incremental"), fresh.section("incremental"));
    let (bpar, fpar) = (baseline.section("parallel"), fresh.section("parallel"));
    let mut gate = Gate { failures: 0, tolerance: 1.0 + tolerance_pct / 100.0 };

    println!(
        "perf gate: {fresh_path} vs {baseline_path} \
         (tolerance +{tolerance_pct:.0}%, time +{time_tolerance_pct:.0}%)"
    );
    println!("{:<34} {:>12} {:>12} {:>8}  verdict", "metric", "baseline", "fresh", "ratio");

    // Corpus identity: apples to apples, or tell the developer how to
    // regenerate the baseline.
    let mut corpus_ok = true;
    corpus_ok &= gate.exact("workloads", baseline.num("workloads"), fresh.num("workloads"));
    corpus_ok &=
        gate.exact("interproc.workloads", binter.num("workloads"), finter.num("workloads"));
    corpus_ok &= gate.exact(
        "total_constraints",
        baseline.num("total_constraints"),
        fresh.num("total_constraints"),
    );
    corpus_ok &= gate.exact("incremental.workloads", binc.num("workloads"), finc.num("workloads"));
    corpus_ok &= gate.exact("incremental.functions", binc.num("functions"), finc.num("functions"));
    corpus_ok &= gate.exact("parallel.functions", bpar.num("functions"), fpar.num("functions"));
    if !corpus_ok {
        eprintln!(
            "\nthe benchmark corpus differs from the baseline's — if intentional, regenerate \
             it in this PR:\n  SRAA_SUITE_N=<CI value> cargo run --release -p sraa-bench --bin \
             scalability\n  cp BENCH_scalability.json BENCH_baseline.json"
        );
        exit(1);
    }

    // Precision: deterministic no-alias counts must not drop.
    gate.at_least(
        "interproc.intra_no_alias",
        binter.num("intra_no_alias"),
        finter.num("intra_no_alias"),
    );
    gate.at_least(
        "interproc.summaries_no_alias",
        binter.num("summaries_no_alias"),
        finter.num("summaries_no_alias"),
    );
    if finter.num("summaries_no_alias") <= finter.num("intra_no_alias") {
        println!(
            "{:<34} summaries must beat intra on the call-heavy suite  FAIL",
            "interproc gain"
        );
        gate.failures += 1;
    }

    // Cache effectiveness: warm runs on unchanged modules must keep
    // hitting (deterministic; the baseline pins 1.0). The shared store's
    // content-addressed keys carry the same contract.
    gate.at_least("incremental.hit_rate", binc.num("hit_rate"), finc.num("hit_rate"));
    let (bstore, fstore) = (baseline.section("store"), fresh.section("store"));
    gate.at_least("store.hit_rate", bstore.num("hit_rate"), fstore.num("hit_rate"));

    // Work: deterministic counters, at most baseline × tolerance.
    for (i, solver) in ["worklist", "scc"].iter().enumerate() {
        gate.at_most(
            &format!("{solver}.evals_per_constraint"),
            baseline.occurrence("evals_per_constraint", i),
            fresh.occurrence("evals_per_constraint", i),
        );
    }
    gate.at_most("interproc.solves", binter.num("solves"), finter.num("solves"));
    // Allocator pressure: like the eval counts, allocation counts are
    // deterministic for a given input, so they carry the tight bar and
    // catch "accidentally quadratic allocation" long before wall clock.
    let (blat, flat) = (baseline.section("lattice"), fresh.section("lattice"));
    for (i, solver) in ["worklist", "scc"].iter().enumerate() {
        gate.at_most(
            &format!("{solver}.total_allocs"),
            baseline.occurrence("total_allocs", i),
            fresh.occurrence("total_allocs", i),
        );
    }
    gate.at_most("lattice.arc_allocs", blat.num("arc_allocs"), flat.num("arc_allocs"));
    gate.at_most("lattice.dense_allocs", blat.num("dense_allocs"), flat.num("dense_allocs"));

    // Time: wall clock normalised by each run's own calibration solve,
    // under the looser time tolerance.
    gate.tolerance = 1.0 + time_tolerance_pct / 100.0;
    let (bc, fc) = (baseline.num("calibration_us"), fresh.num("calibration_us"));
    for (i, solver) in ["worklist", "scc"].iter().enumerate() {
        gate.at_most(
            &format!("{solver}.total_us/calibration"),
            baseline.occurrence("total_us", i) / bc,
            fresh.occurrence("total_us", i) / fc,
        );
    }
    gate.at_most(
        "interproc.summaries_build/calib",
        binter.num("summaries_build_us") / bc,
        finter.num("summaries_build_us") / fc,
    );
    // Warm runs only hash and look up; a slowdown here is the cache
    // itself regressing (key computation, lookup path, serialization).
    gate.at_most(
        "incremental.warm_us/calibration",
        binc.num("warm_us") / bc,
        finc.num("warm_us") / fc,
    );
    gate.at_most(
        "incremental.sharded_warm/calib",
        binc.num("sharded_warm_us") / bc,
        finc.num("sharded_warm_us") / fc,
    );
    // Sharding must actually pay for its threads *on this run*: the
    // sharded warm pass may not be slower than the serial one (within
    // the time tolerance), whatever the baseline recorded.
    gate.at_most("incremental.sharded_vs_warm", finc.num("warm_us"), finc.num("sharded_warm_us"));
    // The resident daemon: a warm re-upload round trip and one resident
    // query over the loopback socket, normalised like every other
    // wall-clock metric.
    let (bserve, fserve) = (baseline.section("serve"), fresh.section("serve"));
    gate.at_most(
        "serve.upload_us/calibration",
        bserve.num("upload_us") / bc,
        fserve.num("upload_us") / fc,
    );
    gate.at_most(
        "serve.resident_query/calib",
        bserve.num("resident_query_us") / bc,
        fserve.num("resident_query_us") / fc,
    );
    // The shared store's warm upload: key computation + store lookups,
    // no solves, no segment writes — the cross-process analogue of the
    // incremental warm run.
    gate.at_most(
        "store.warm_upload_us/calib",
        bstore.num("warm_upload_us") / bc,
        fstore.num("warm_upload_us") / fc,
    );
    // Lattice backends, normalised like the solver totals.
    gate.at_most("lattice.arc_us/calibration", blat.num("arc_us") / bc, flat.num("arc_us") / fc);
    gate.at_most(
        "lattice.dense_us/calibration",
        blat.num("dense_us") / bc,
        flat.num("dense_us") / fc,
    );
    // The intersection-heavy dense microbenchmark guards the vectorised
    // set kernels specifically.
    gate.at_most(
        "dense_inter_us/calibration",
        baseline.num("dense_inter_us") / bc,
        fresh.num("dense_inter_us") / fc,
    );
    // The wavefront pipeline's serial leg: jobs=1 must stay within noise
    // of the historical serial path (the scheduler itself may not cost).
    gate.at_most(
        "parallel.serial_us/calibration",
        bpar.num("serial_us") / bc,
        fpar.num("serial_us") / fc,
    );
    // Peak RSS is machine-dependent (allocator, page size), so it rides
    // under the looser time bar too.
    gate.at_most("peak_rss_kb", baseline.num("peak_rss_kb"), fresh.num("peak_rss_kb"));
    // The condensation strategy is the engine default *because* it beats
    // the FIFO worklist on the corpus; a fresh run that loses that edge
    // fails outright, whatever the baseline says.
    let speedup = fresh.num("scc_speedup_over_worklist");
    gate.row("scc_speedup_over_worklist", 1.0, speedup, speedup >= 1.0);
    // The daemon's whole point, enforced on the fresh run: answering from
    // the resident engine — loopback round trip included — must beat a
    // one-shot process paying compile + warm engine build for the same
    // answer.
    let resident = fserve.num("resident_query_us");
    let oneshot = fserve.num("oneshot_warm_us");
    gate.row("serve.resident_vs_oneshot_warm", oneshot, resident, resident <= oneshot);
    // The store's whole point, enforced on the fresh run: an upload that
    // answers from a populated store (lookups, no solves, nothing
    // published) may not cost more than the cold upload it replaces.
    let store_cold = fstore.num("cold_upload_us");
    let store_warm = fstore.num("warm_upload_us");
    gate.row("store.warm_vs_cold_upload", store_cold, store_warm, store_warm <= store_cold);
    // The wavefront fan-out must pay for its threads on runs that had
    // any: with ≥ 2 workers the parallel leg may not lose to the serial
    // one. On a single-core host both legs run the identical serial
    // path, so the row is informational there, not a floor.
    let par_jobs = fpar.num("jobs");
    let par_speedup = fpar.num("speedup_over_serial");
    if par_jobs >= 2.0 {
        gate.row("parallel_speedup_over_serial", 1.0, par_speedup, par_speedup >= 1.0);
    } else {
        println!(
            "{:<34} {:>12} {:>12.3} {:>8}  info (jobs=1: no spare parallelism)",
            "parallel_speedup_over_serial", "-", par_speedup, "-"
        );
    }

    if gate.failures > 0 {
        eprintln!("\nperf gate FAILED: {} metric(s) regressed", gate.failures);
        exit(1);
    }
    println!("\nperf gate passed");
}

struct Gate {
    failures: u32,
    tolerance: f64,
}

impl Gate {
    fn row(&mut self, name: &str, b: f64, f: f64, ok: bool) -> bool {
        let ratio = if b.abs() > 1e-12 { f / b } else { 1.0 };
        println!(
            "{name:<34} {b:>12.3} {f:>12.3} {ratio:>7.2}x  {}",
            if ok { "ok" } else { "FAIL" }
        );
        if !ok {
            self.failures += 1;
        }
        ok
    }

    /// Deterministic value that must match the baseline exactly.
    fn exact(&mut self, name: &str, b: f64, f: f64) -> bool {
        self.row(name, b, f, (b - f).abs() < 1e-9)
    }

    /// Higher is better; must not drop below the baseline.
    fn at_least(&mut self, name: &str, b: f64, f: f64) -> bool {
        self.row(name, b, f, f >= b)
    }

    /// Lower is better; must stay within baseline × tolerance.
    fn at_most(&mut self, name: &str, b: f64, f: f64) -> bool {
        let ok = f <= b * self.tolerance;
        self.row(name, b, f, ok)
    }
}

/// A loaded JSON document plus the dumb-but-sufficient number extractor
/// for the flat format `scalability` writes (offline workspace: no serde).
struct Doc {
    path: String,
    text: String,
}

fn read_doc(path: &str) -> Doc {
    match std::fs::read_to_string(path) {
        Ok(text) => Doc { path: path.to_string(), text },
        Err(e) => {
            eprintln!("cannot read {path}: {e}");
            eprintln!("run `cargo run --release -p sraa-bench --bin scalability` first");
            exit(2);
        }
    }
}

impl Doc {
    /// The `idx`-th occurrence of `"key": <number>` in document order.
    /// Occurrence order is fixed by the writer: e.g. `total_us` appears
    /// once per solver in `SolverKind::ALL` order.
    fn occurrence(&self, key: &str, idx: usize) -> f64 {
        let needle = format!("\"{key}\":");
        let mut from = 0;
        for n in 0.. {
            let Some(at) = self.text[from..].find(&needle) else {
                eprintln!("{}: missing occurrence {idx} of \"{key}\"", self.path);
                exit(2);
            };
            let start = from + at + needle.len();
            if n == idx {
                let rest = self.text[start..].trim_start();
                let end = rest
                    .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-'))
                    .unwrap_or(rest.len());
                return rest[..end].parse().unwrap_or_else(|_| {
                    eprintln!("{}: \"{key}\" is not a number", self.path);
                    exit(2);
                });
            }
            from = start;
        }
        unreachable!()
    }

    /// The unique occurrence of `"key": <number>`.
    fn num(&self, key: &str) -> f64 {
        self.occurrence(key, 0)
    }

    /// A sub-document scoped to the flat object under `"name": {`, so
    /// keys that also exist elsewhere (e.g. `workloads`) resolve to the
    /// object's own fields rather than by document-wide occurrence
    /// counting.
    fn section(&self, name: &str) -> Doc {
        let open = format!("\"{name}\": {{");
        let Some(at) = self.text.find(&open) else {
            eprintln!("{}: missing \"{name}\" object", self.path);
            exit(2);
        };
        let body = &self.text[at + open.len()..];
        let end = body.find('}').unwrap_or(body.len());
        Doc { path: format!("{}#{name}", self.path), text: body[..end].to_string() }
    }
}
