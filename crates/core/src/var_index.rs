//! Interned variable identities for the module-wide constraint universe.
//!
//! The less-than analysis is inter-procedural (paper Section 4): its
//! constraint system spans all functions at once, with pseudo-φs binding
//! formal to actual parameters. Constraints therefore address variables by
//! an interned, dense module-wide [`VarId`] rather than per-function
//! [`Value`]s — [`VarIndex`] is the arena that mints them and maps back.
//!
//! Every layer of the engine speaks `VarId`: constraint generation
//! ([`crate::constraints`]), both fixpoint solvers ([`crate::solver`],
//! [`crate::fast_solver`]), the on-demand prover ([`crate::ondemand`]) and
//! the query layer ([`crate::DisambiguationEngine`]). No layer passes raw
//! integers or ad-hoc ids across an API boundary.

use sraa_ir::{FuncId, Module, Value};

/// An interned variable in the module-wide constraint universe.
///
/// A `VarId` is either a real program value (minted by [`VarIndex::id`])
/// or a synthetic solver variable (pseudo-φ intermediates, minted past
/// [`VarIndex::len`] by constraint generation). Ids are dense: solvers
/// index their lattice state by [`VarId::index`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct VarId(u32);

impl VarId {
    /// Wraps a raw id.
    pub const fn new(raw: u32) -> Self {
        VarId(raw)
    }

    /// A `VarId` from a dense array index.
    pub const fn from_index(i: usize) -> Self {
        VarId(i as u32)
    }

    /// The raw `u32` — the representation stored inside `LT` sets.
    pub const fn raw(self) -> u32 {
        self.0
    }

    /// The dense array index of this variable.
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Display for VarId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "v{}", self.0)
    }
}

impl From<u32> for VarId {
    fn from(raw: u32) -> Self {
        VarId(raw)
    }
}

/// Dense module-wide variable numbering: `id = offset(func) + value index`.
#[derive(Clone, Debug)]
pub struct VarIndex {
    offsets: Vec<usize>,
    total: usize,
}

impl VarIndex {
    /// Builds the numbering for `module`.
    pub fn new(module: &Module) -> Self {
        let mut offsets = Vec::with_capacity(module.num_functions());
        let mut total = 0usize;
        for (_, f) in module.functions() {
            offsets.push(total);
            total += f.num_insts();
        }
        Self { offsets, total }
    }

    /// Total number of variable slots.
    pub fn len(&self) -> usize {
        self.total
    }

    /// Whether the module has no values at all.
    pub fn is_empty(&self) -> bool {
        self.total == 0
    }

    /// The interned id of `v` in function `f`.
    pub fn id(&self, f: FuncId, v: Value) -> VarId {
        VarId::from_index(self.offsets[f.index()] + v.index())
    }

    /// Inverse mapping: which function does `id` belong to?
    pub fn func_of(&self, id: VarId) -> (FuncId, Value) {
        let id = id.index();
        let fi = match self.offsets.binary_search(&id) {
            Ok(i) => i,
            Err(i) => i - 1,
        };
        (FuncId::from_index(fi), Value::from_index(id - self.offsets[fi]))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sraa_ir::Type;

    #[test]
    fn round_trips_ids() {
        let mut m = Module::new();
        let f1 = m.declare_function("a", vec![("x", Type::Int), ("y", Type::Int)], None);
        let f2 = m.declare_function("b", vec![("z", Type::Int)], None);
        // Touch the functions so they have a few values.
        m.function_mut(f1).add_const(1);
        m.function_mut(f2).add_const(2);
        let ix = VarIndex::new(&m);
        assert_eq!(ix.len(), 3 + 2); // 2 params + const, 1 param + const
        for (fid, f) in m.functions() {
            for v in f.value_ids() {
                let id = ix.id(fid, v);
                assert_eq!(ix.func_of(id), (fid, v));
            }
        }
    }

    #[test]
    fn empty_module() {
        let ix = VarIndex::new(&Module::new());
        assert!(ix.is_empty());
        assert_eq!(ix.len(), 0);
    }

    #[test]
    fn var_ids_are_ordered_and_printable() {
        let a = VarId::new(3);
        let b = VarId::from_index(7);
        assert!(a < b);
        assert_eq!(b.index(), 7);
        assert_eq!(a.raw(), 3);
        assert_eq!(format!("{a}"), "v3");
        assert_eq!(VarId::from(9u32), VarId::new(9));
    }
}
