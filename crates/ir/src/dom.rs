//! Dominator tree via the Cooper–Harvey–Kennedy algorithm.
//!
//! "A Simple, Fast Dominance Algorithm" (SPE 2001): iterate `idom` over the
//! reverse post-order until fixpoint, intersecting paths in the tree built
//! so far. On top of the tree we answer `dominates` queries in O(1) with an
//! Euler interval numbering, provide dominator-tree children (used by the
//! e-SSA renaming walk of the paper's live-range splitting), and compute
//! dominance frontiers.

use crate::cfg::Cfg;
use crate::function::Function;
use crate::ids::{BlockId, Value};

/// Dominator tree of a function.
#[derive(Clone, Debug)]
pub struct DomTree {
    /// Immediate dominator per block; `idom[entry] == entry`; unreachable
    /// blocks map to `None`.
    idom: Vec<Option<BlockId>>,
    /// Dominator-tree children per block.
    children: Vec<Vec<BlockId>>,
    /// Euler interval per block: `in_num[b] ..= out_num[b]`.
    in_num: Vec<u32>,
    out_num: Vec<u32>,
    /// Reverse post-order index per block (entry = 0).
    rpo_index: Vec<Option<u32>>,
}

impl DomTree {
    /// Computes the dominator tree of `func` given its `cfg`.
    pub fn compute(func: &Function, cfg: &Cfg) -> Self {
        let n = func.num_blocks();
        let rpo = cfg.reverse_postorder();
        let mut rpo_index: Vec<Option<u32>> = vec![None; n];
        for (i, &b) in rpo.iter().enumerate() {
            rpo_index[b.index()] = Some(i as u32);
        }

        let entry = func.entry();
        let mut idom: Vec<Option<BlockId>> = vec![None; n];
        idom[entry.index()] = Some(entry);

        let intersect = |idom: &[Option<BlockId>], mut a: BlockId, mut b: BlockId| -> BlockId {
            let ridx = |x: BlockId| rpo_index[x.index()].expect("reachable");
            while a != b {
                while ridx(a) > ridx(b) {
                    a = idom[a.index()].expect("processed");
                }
                while ridx(b) > ridx(a) {
                    b = idom[b.index()].expect("processed");
                }
            }
            a
        };

        let mut changed = true;
        while changed {
            changed = false;
            for &b in rpo.iter().skip(1) {
                let mut new_idom: Option<BlockId> = None;
                for &p in cfg.preds(b) {
                    if idom[p.index()].is_none() {
                        continue; // unprocessed or unreachable
                    }
                    new_idom = Some(match new_idom {
                        None => p,
                        Some(cur) => intersect(&idom, cur, p),
                    });
                }
                if new_idom.is_some() && idom[b.index()] != new_idom {
                    idom[b.index()] = new_idom;
                    changed = true;
                }
            }
        }

        // Children lists.
        let mut children = vec![Vec::new(); n];
        for b in func.block_ids() {
            if b == entry {
                continue;
            }
            if let Some(d) = idom[b.index()] {
                children[d.index()].push(b);
            }
        }

        // Euler numbering (iterative DFS over the dominator tree).
        let mut in_num = vec![0u32; n];
        let mut out_num = vec![0u32; n];
        let mut counter = 0u32;
        let mut stack: Vec<(BlockId, usize)> = vec![(entry, 0)];
        in_num[entry.index()] = counter;
        counter += 1;
        while let Some(&mut (b, ref mut next)) = stack.last_mut() {
            if *next < children[b.index()].len() {
                let c = children[b.index()][*next];
                *next += 1;
                in_num[c.index()] = counter;
                counter += 1;
                stack.push((c, 0));
            } else {
                out_num[b.index()] = counter;
                counter += 1;
                stack.pop();
            }
        }

        Self { idom, children, in_num, out_num, rpo_index }
    }

    /// Immediate dominator of `b` (`None` for the entry and unreachable
    /// blocks).
    pub fn idom(&self, b: BlockId) -> Option<BlockId> {
        let d = self.idom[b.index()]?;
        (d != b).then_some(d)
    }

    /// Whether `a` dominates `b` (reflexive).
    ///
    /// Unreachable blocks dominate nothing and are dominated by nothing.
    pub fn dominates(&self, a: BlockId, b: BlockId) -> bool {
        if self.idom[a.index()].is_none() || self.idom[b.index()].is_none() {
            return false;
        }
        self.in_num[a.index()] <= self.in_num[b.index()]
            && self.out_num[b.index()] <= self.out_num[a.index()]
    }

    /// Whether `a` strictly dominates `b`.
    pub fn strictly_dominates(&self, a: BlockId, b: BlockId) -> bool {
        a != b && self.dominates(a, b)
    }

    /// Dominator-tree children of `b`.
    pub fn children(&self, b: BlockId) -> &[BlockId] {
        &self.children[b.index()]
    }

    /// Reverse post-order index of `b` (entry = 0), `None` if unreachable.
    pub fn rpo_index(&self, b: BlockId) -> Option<u32> {
        self.rpo_index[b.index()]
    }

    /// Whether the definition of value `def` dominates the program point
    /// just *before* instruction `user` in block `user_block`.
    ///
    /// `positions` must come from [`Function::positions`]. φ uses must be
    /// checked at the incoming edge by the caller (pass the predecessor's
    /// terminator as `user`).
    pub fn def_dominates_use(
        &self,
        func: &Function,
        positions: &[u32],
        def: Value,
        user: Value,
    ) -> bool {
        let db = match func.inst(def).block {
            Some(b) => b,
            None => return false,
        };
        let ub = match func.inst(user).block {
            Some(b) => b,
            None => return false,
        };
        if db != ub {
            return self.dominates(db, ub);
        }
        positions[def.index()] < positions[user.index()]
    }

    /// Computes the dominance frontier of every block.
    pub fn dominance_frontier(&self, func: &Function, cfg: &Cfg) -> Vec<Vec<BlockId>> {
        let n = func.num_blocks();
        let mut df: Vec<Vec<BlockId>> = vec![Vec::new(); n];
        for b in func.block_ids() {
            let preds = cfg.preds(b);
            if preds.len() < 2 {
                continue;
            }
            let Some(idom_b) = self.idom[b.index()] else { continue };
            for &p in preds {
                if self.idom[p.index()].is_none() {
                    continue;
                }
                let mut runner = p;
                while runner != idom_b && self.idom[runner.index()].is_some() {
                    if !df[runner.index()].contains(&b) {
                        df[runner.index()].push(b);
                    }
                    match self.idom[runner.index()] {
                        Some(d) if d != runner => runner = d,
                        _ => break,
                    }
                }
            }
        }
        df
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FunctionBuilder;
    use crate::inst::Pred;
    use crate::types::Type;

    fn diamond_with_loop() -> (Function, Vec<BlockId>) {
        // entry → header; header → {body, exit}; body → {l, r}; l,r → latch;
        // latch → header
        let mut f = Function::new("g", vec![("n", Type::Int)], None);
        let mut b = FunctionBuilder::new(&mut f);
        let entry = b.current_block();
        let header = b.create_block();
        let body = b.create_block();
        let l = b.create_block();
        let r = b.create_block();
        let latch = b.create_block();
        let exit = b.create_block();
        let n = b.param(0);
        let z = b.iconst(0);
        b.jump(header);
        b.switch_to(header);
        let c = b.cmp(Pred::Lt, z, n);
        b.br(c, body, exit);
        b.switch_to(body);
        let c2 = b.cmp(Pred::Lt, n, z);
        b.br(c2, l, r);
        b.switch_to(l);
        b.jump(latch);
        b.switch_to(r);
        b.jump(latch);
        b.switch_to(latch);
        b.jump(header);
        b.switch_to(exit);
        b.ret(None);
        b.finish();
        (f, vec![entry, header, body, l, r, latch, exit])
    }

    #[test]
    fn idoms_of_nested_diamond() {
        let (f, bs) = diamond_with_loop();
        let cfg = Cfg::compute(&f);
        let dt = DomTree::compute(&f, &cfg);
        let [entry, header, body, l, r, latch, exit] = bs[..] else { unreachable!() };
        assert_eq!(dt.idom(entry), None);
        assert_eq!(dt.idom(header), Some(entry));
        assert_eq!(dt.idom(body), Some(header));
        assert_eq!(dt.idom(l), Some(body));
        assert_eq!(dt.idom(r), Some(body));
        assert_eq!(dt.idom(latch), Some(body));
        assert_eq!(dt.idom(exit), Some(header));
    }

    #[test]
    fn dominates_is_reflexive_and_transitive() {
        let (f, bs) = diamond_with_loop();
        let cfg = Cfg::compute(&f);
        let dt = DomTree::compute(&f, &cfg);
        for &b in &bs {
            assert!(dt.dominates(b, b));
            assert!(!dt.strictly_dominates(b, b));
        }
        let [entry, header, body, l, _, latch, exit] = bs[..] else { unreachable!() };
        assert!(dt.dominates(entry, exit));
        assert!(dt.dominates(header, latch));
        assert!(dt.strictly_dominates(body, l));
        assert!(!dt.dominates(l, latch), "l does not dominate the join");
        assert!(!dt.dominates(exit, header));
    }

    #[test]
    fn dominance_frontier_of_branch_arms_is_join() {
        let (f, bs) = diamond_with_loop();
        let cfg = Cfg::compute(&f);
        let dt = DomTree::compute(&f, &cfg);
        let df = dt.dominance_frontier(&f, &cfg);
        let [_, header, body, l, r, latch, _] = bs[..] else { unreachable!() };
        assert_eq!(df[l.index()], vec![latch]);
        assert_eq!(df[r.index()], vec![latch]);
        // The loop body's frontier is the header (back edge target).
        assert!(df[latch.index()].contains(&header));
        assert!(df[body.index()].contains(&header));
    }

    #[test]
    fn def_use_dominance_within_block() {
        let mut f = Function::new("t", Vec::<(&str, Type)>::new(), None);
        let mut b = FunctionBuilder::new(&mut f);
        let x = b.opaque(Type::Int);
        let y = b.copy(x);
        b.ret(None);
        b.finish();
        let cfg = Cfg::compute(&f);
        let dt = DomTree::compute(&f, &cfg);
        let pos = f.positions();
        assert!(dt.def_dominates_use(&f, &pos, x, y));
        assert!(!dt.def_dominates_use(&f, &pos, y, x));
    }

    #[test]
    fn unreachable_blocks_do_not_dominate() {
        let mut f = Function::new("t", Vec::<(&str, Type)>::new(), None);
        let mut b = FunctionBuilder::new(&mut f);
        let dead = b.create_block();
        b.ret(None);
        b.switch_to(dead);
        b.ret(None);
        b.finish();
        let cfg = Cfg::compute(&f);
        let dt = DomTree::compute(&f, &cfg);
        assert!(!dt.dominates(dead, f.entry()));
        assert!(!dt.dominates(f.entry(), dead));
        assert!(!dt.dominates(dead, dead));
    }
}

/// Post-dominator tree, computed on the reversed CFG with a virtual exit
/// node joining every `ret` block.
///
/// Used for control dependence (Ferrante et al.'s PDG, which the paper's
/// applicability study builds): a block `b` is control-dependent on a
/// branch block `a` iff `b` post-dominates some successor of `a` but does
/// not strictly post-dominate `a` — equivalently, `a` is in the
/// post-dominance frontier of `b`.
#[derive(Clone, Debug)]
pub struct PostDomTree {
    /// Immediate post-dominator per block; the virtual exit is implicit.
    /// `None` for blocks that cannot reach any exit (infinite loops) and
    /// for blocks whose ipdom is the virtual exit itself.
    ipdom: Vec<Option<BlockId>>,
    /// Blocks that reach an exit (participate in the tree).
    reaches_exit: Vec<bool>,
}

impl PostDomTree {
    /// Computes post-dominators for `func` with its `cfg`.
    pub fn compute(func: &Function, cfg: &Cfg) -> Self {
        let n = func.num_blocks();
        // Exits: blocks whose terminator is a return.
        let exits: Vec<BlockId> = func
            .block_ids()
            .filter(|&b| {
                func.terminator(b)
                    .is_some_and(|t| matches!(func.inst(t).kind, crate::inst::InstKind::Ret(_)))
            })
            .collect();

        // Reverse post-order of the *reversed* graph from the virtual
        // exit: iterative DFS over predecessors.
        let virtual_exit = n; // index n = virtual exit
        let mut order: Vec<usize> = Vec::with_capacity(n + 1); // postorder
        let mut visited = vec![false; n + 1];
        let mut stack: Vec<(usize, usize)> = vec![(virtual_exit, 0)];
        visited[virtual_exit] = true;
        let rev_succs = |b: usize| -> Vec<usize> {
            if b == virtual_exit {
                exits.iter().map(|e| e.index()).collect()
            } else {
                cfg.preds(BlockId::from_index(b)).iter().map(|p| p.index()).collect()
            }
        };
        while let Some(&mut (b, ref mut next)) = stack.last_mut() {
            let ss = rev_succs(b);
            if *next < ss.len() {
                let s = ss[*next];
                *next += 1;
                if !visited[s] {
                    visited[s] = true;
                    stack.push((s, 0));
                }
            } else {
                order.push(b);
                stack.pop();
            }
        }
        let rpo: Vec<usize> = order.iter().rev().copied().collect();
        let mut rpo_index = vec![usize::MAX; n + 1];
        for (i, &b) in rpo.iter().enumerate() {
            rpo_index[b] = i;
        }

        // Cooper–Harvey–Kennedy over the reversed graph.
        let mut ipdom: Vec<Option<usize>> = vec![None; n + 1];
        ipdom[virtual_exit] = Some(virtual_exit);
        let intersect = |ipdom: &[Option<usize>], mut a: usize, mut b: usize| -> usize {
            while a != b {
                while rpo_index[a] > rpo_index[b] {
                    a = ipdom[a].expect("processed");
                }
                while rpo_index[b] > rpo_index[a] {
                    b = ipdom[b].expect("processed");
                }
            }
            a
        };
        let mut changed = true;
        while changed {
            changed = false;
            for &b in rpo.iter().skip(1) {
                // "Predecessors" in the reversed graph = successors in
                // the original (plus the virtual exit for ret blocks).
                let mut preds: Vec<usize> =
                    cfg.succs(BlockId::from_index(b)).iter().map(|s| s.index()).collect();
                if exits.iter().any(|e| e.index() == b) {
                    preds.push(virtual_exit);
                }
                let mut new: Option<usize> = None;
                for p in preds {
                    if ipdom[p].is_none() {
                        continue;
                    }
                    new = Some(match new {
                        None => p,
                        Some(cur) => intersect(&ipdom, cur, p),
                    });
                }
                if new.is_some() && ipdom[b] != new {
                    ipdom[b] = new;
                    changed = true;
                }
            }
        }

        PostDomTree {
            ipdom: (0..n)
                .map(|b| match ipdom[b] {
                    Some(d) if d < n => Some(BlockId::from_index(d)),
                    _ => None,
                })
                .collect(),
            reaches_exit: (0..n).map(|b| ipdom[b].is_some()).collect(),
        }
    }

    /// Immediate post-dominator (`None` when it is the virtual exit or the
    /// block never reaches an exit).
    pub fn ipdom(&self, b: BlockId) -> Option<BlockId> {
        self.ipdom[b.index()]
    }

    /// Whether `a` post-dominates `b` (reflexive).
    pub fn post_dominates(&self, a: BlockId, b: BlockId) -> bool {
        if !self.reaches_exit[b.index()] || !self.reaches_exit[a.index()] {
            return false;
        }
        let mut cur = b;
        loop {
            if cur == a {
                return true;
            }
            match self.ipdom[cur.index()] {
                Some(next) => cur = next,
                None => return false,
            }
        }
    }

    /// Ferrante-style control dependence: for every block, the branch
    /// blocks it is control-dependent on.
    pub fn control_dependence(&self, func: &Function, cfg: &Cfg) -> Vec<Vec<BlockId>> {
        let n = func.num_blocks();
        let mut deps: Vec<Vec<BlockId>> = vec![Vec::new(); n];
        for a in func.block_ids() {
            let succs = cfg.succs(a);
            if succs.len() < 2 {
                continue;
            }
            for &s in succs {
                // Walk the post-dominator tree from s up to (but not
                // including) ipdom(a): every block on the way is
                // control-dependent on a.
                let stop = self.ipdom(a);
                let mut cur = Some(s);
                while let Some(b) = cur {
                    if Some(b) == stop || !self.reaches_exit[b.index()] {
                        break;
                    }
                    if b == a {
                        // Loops: a depends on itself; record and stop.
                        if !deps[b.index()].contains(&a) {
                            deps[b.index()].push(a);
                        }
                        break;
                    }
                    if !deps[b.index()].contains(&a) {
                        deps[b.index()].push(a);
                    }
                    cur = self.ipdom(b);
                }
            }
        }
        deps
    }
}

#[cfg(test)]
mod postdom_tests {
    use super::*;
    use crate::builder::FunctionBuilder;
    use crate::inst::Pred;
    use crate::types::Type;

    /// entry → {then, else} → join → exit(ret)
    fn diamond() -> (Function, [BlockId; 4]) {
        let mut f = Function::new("d", vec![("x", Type::Int)], None);
        let mut b = FunctionBuilder::new(&mut f);
        let entry = b.current_block();
        let t = b.create_block();
        let e = b.create_block();
        let join = b.create_block();
        let x = b.param(0);
        let z = b.iconst(0);
        let c = b.cmp(Pred::Lt, x, z);
        b.br(c, t, e);
        b.switch_to(t);
        b.jump(join);
        b.switch_to(e);
        b.jump(join);
        b.switch_to(join);
        b.ret(None);
        b.finish();
        (f, [entry, t, e, join])
    }

    #[test]
    fn join_postdominates_the_branch() {
        let (f, [entry, t, e, join]) = diamond();
        let cfg = Cfg::compute(&f);
        let pdt = PostDomTree::compute(&f, &cfg);
        assert!(pdt.post_dominates(join, entry));
        assert!(pdt.post_dominates(join, t));
        assert!(!pdt.post_dominates(t, entry), "only one arm does not post-dominate");
        assert_eq!(pdt.ipdom(t), Some(join));
        assert_eq!(pdt.ipdom(e), Some(join));
        assert_eq!(pdt.ipdom(entry), Some(join));
    }

    #[test]
    fn branch_arms_are_control_dependent_on_the_branch() {
        let (f, [entry, t, e, join]) = diamond();
        let cfg = Cfg::compute(&f);
        let pdt = PostDomTree::compute(&f, &cfg);
        let cd = pdt.control_dependence(&f, &cfg);
        assert_eq!(cd[t.index()], vec![entry]);
        assert_eq!(cd[e.index()], vec![entry]);
        assert!(cd[join.index()].is_empty(), "the join is executed unconditionally");
        assert!(cd[entry.index()].is_empty());
    }

    #[test]
    fn loop_body_is_control_dependent_on_the_header() {
        // entry → header; header → {body, exit}; body → header
        let mut f = Function::new("l", vec![("n", Type::Int)], None);
        let mut b = FunctionBuilder::new(&mut f);
        let header = b.create_block();
        let body = b.create_block();
        let exit = b.create_block();
        let n = b.param(0);
        let z = b.iconst(0);
        b.jump(header);
        b.switch_to(header);
        let c = b.cmp(Pred::Lt, z, n);
        b.br(c, body, exit);
        b.switch_to(body);
        b.jump(header);
        b.switch_to(exit);
        b.ret(None);
        b.finish();
        let cfg = Cfg::compute(&f);
        let pdt = PostDomTree::compute(&f, &cfg);
        let cd = pdt.control_dependence(&f, &cfg);
        assert_eq!(cd[body.index()], vec![header]);
        // The header controls its own re-execution (loop).
        assert_eq!(cd[header.index()], vec![header]);
        assert!(pdt.post_dominates(exit, header));
    }

    #[test]
    fn infinite_loop_blocks_have_no_postdominator() {
        let mut f = Function::new("w", Vec::<(&str, Type)>::new(), None);
        let mut b = FunctionBuilder::new(&mut f);
        let spin = b.create_block();
        b.jump(spin);
        b.switch_to(spin);
        b.jump(spin);
        b.finish();
        let cfg = Cfg::compute(&f);
        let pdt = PostDomTree::compute(&f, &cfg);
        assert_eq!(pdt.ipdom(spin), None);
        assert!(!pdt.post_dominates(spin, f.entry()));
    }
}
