//! IR well-formedness verification.
//!
//! Checks the structural, SSA and type invariants that the analyses rely
//! on. Every transformation in the pipeline (frontend lowering, e-SSA
//! splitting) is verified in tests, and the property-based tests verify
//! every randomly generated program.

use crate::cfg::Cfg;
use crate::dom::DomTree;
use crate::function::Function;
use crate::ids::{BlockId, Value};
use crate::inst::{BinOp, InstKind};
use crate::module::Module;
use crate::types::Type;
use std::fmt;

/// One or more verification failures.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct VerifyError {
    /// Failures, each naming the function and the violated invariant.
    pub problems: Vec<String>,
}

impl fmt::Display for VerifyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "IR verification failed ({} problem(s)):", self.problems.len())?;
        for p in &self.problems {
            writeln!(f, "  - {p}")?;
        }
        Ok(())
    }
}

impl std::error::Error for VerifyError {}

/// Verifies a whole module.
///
/// # Errors
///
/// Returns all problems found across all functions.
pub fn verify(module: &Module) -> Result<(), VerifyError> {
    let mut problems = Vec::new();
    for (_, f) in module.functions() {
        if let Err(e) = verify_function(f, Some(module)) {
            problems.extend(e.problems);
        }
    }
    if problems.is_empty() {
        Ok(())
    } else {
        Err(VerifyError { problems })
    }
}

/// Verifies a single function. Pass the module when available so calls and
/// globals can be checked against their declarations.
///
/// # Errors
///
/// Returns all problems found.
pub fn verify_function(f: &Function, module: Option<&Module>) -> Result<(), VerifyError> {
    let mut problems = Vec::new();
    let mut problem = |msg: String| problems.push(format!("@{}: {}", f.name, msg));

    let cfg = Cfg::compute(f);

    // Structural checks.
    for b in f.block_ids() {
        let insts = &f.block(b).insts;
        match insts.last() {
            None => problem(format!("{b} is empty")),
            Some(&last) => {
                if !f.inst(last).kind.is_terminator() {
                    problem(format!("{b} does not end in a terminator"));
                }
            }
        }
        let mut seen_non_phi = false;
        for (i, &v) in insts.iter().enumerate() {
            let data = f.inst(v);
            if data.block != Some(b) {
                problem(format!("{v} is listed in {b} but records block {:?}", data.block));
            }
            if data.kind.is_terminator() && i + 1 != insts.len() {
                problem(format!("terminator {v} is not the last instruction of {b}"));
            }
            match &data.kind {
                InstKind::Phi { .. } => {
                    if seen_non_phi {
                        problem(format!("φ {v} appears after non-φ instructions in {b}"));
                    }
                }
                InstKind::Param(_) => {} // params live in the entry prefix
                _ => seen_non_phi = true,
            }
        }
    }

    // φ incoming lists must match predecessor sets (reachable blocks only).
    for b in f.block_ids() {
        if !cfg.is_reachable(b) {
            continue;
        }
        let mut preds: Vec<BlockId> = cfg.preds(b).to_vec();
        preds.sort();
        preds.dedup();
        for (v, data) in f.block_insts(b) {
            if let InstKind::Phi { incomings } = &data.kind {
                let mut inc: Vec<BlockId> = incomings.iter().map(|(p, _)| *p).collect();
                inc.sort();
                let deduped_len = {
                    let mut d = inc.clone();
                    d.dedup();
                    d.len()
                };
                if deduped_len != inc.len() {
                    problem(format!("φ {v} has duplicate incoming blocks"));
                }
                if inc != preds {
                    problem(format!(
                        "φ {v} incomings {inc:?} do not match predecessors {preds:?} of {b}"
                    ));
                }
            }
        }
    }

    // SSA dominance: every use is dominated by its definition.
    let dt = DomTree::compute(f, &cfg);
    let positions = f.positions();
    for b in f.block_ids() {
        if !cfg.is_reachable(b) {
            continue;
        }
        for (user, data) in f.block_insts(b) {
            match &data.kind {
                InstKind::Phi { incomings } => {
                    for (pred, arg) in incomings {
                        // The use occurs at the end of `pred`.
                        let Some(term) = f.terminator(*pred) else { continue };
                        if f.inst(*arg).block.is_none() {
                            problem(format!("φ {user} uses detached value {arg}"));
                        } else if !dt.def_dominates_use(f, &positions, *arg, term) && *arg != term {
                            problem(format!(
                                "φ {user} use of {arg} from {pred} is not dominated by its def"
                            ));
                        }
                    }
                }
                kind => kind.for_each_operand(|op| {
                    if f.inst(op).block.is_none() {
                        problem(format!("{user} uses detached value {op}"));
                    } else if !dt.def_dominates_use(f, &positions, op, user) {
                        problem(format!("{user} use of {op} is not dominated by its def"));
                    }
                }),
            }
        }
    }

    // Type checks.
    for b in f.block_ids() {
        for (v, data) in f.block_insts(b) {
            let ty_of = |x: Value| f.value_type(x);
            match &data.kind {
                InstKind::Const(_) => {
                    if data.ty != Some(Type::Int) {
                        problem(format!("const {v} must have type int"));
                    }
                }
                InstKind::Param(i) => {
                    let expected = f.params.get(*i as usize).map(|(_, t)| *t);
                    if data.ty != expected {
                        problem(format!("param {v} type mismatch with signature"));
                    }
                }
                InstKind::Binary { op, lhs, rhs } => {
                    let (lt, rt, ot) = (ty_of(*lhs), ty_of(*rhs), data.ty);
                    let ok = match (op, lt, rt) {
                        (BinOp::Add | BinOp::Sub, Some(Type::Ptr(d)), Some(Type::Int)) => {
                            ot == Some(Type::Ptr(d))
                        }
                        (BinOp::Sub, Some(Type::Ptr(_)), Some(Type::Ptr(_))) => {
                            ot == Some(Type::Int)
                        }
                        (_, Some(Type::Int), Some(Type::Int)) => ot == Some(Type::Int),
                        _ => false,
                    };
                    if !ok {
                        problem(format!("{v}: ill-typed {op} ({lt:?}, {rt:?}) -> {ot:?}"));
                    }
                }
                InstKind::Cmp { lhs, rhs, .. } => {
                    if ty_of(*lhs) != ty_of(*rhs) {
                        problem(format!("{v}: cmp operands have different types"));
                    }
                    if data.ty != Some(Type::Int) {
                        problem(format!("{v}: cmp must produce int"));
                    }
                }
                InstKind::Phi { incomings } => {
                    for (_, arg) in incomings {
                        if ty_of(*arg) != data.ty {
                            problem(format!("{v}: φ operand {arg} type mismatch"));
                        }
                    }
                }
                InstKind::Copy { src, .. } => {
                    if ty_of(*src) != data.ty {
                        problem(format!("{v}: copy type differs from source"));
                    }
                }
                InstKind::Alloca { count } | InstKind::Malloc { count } => {
                    if ty_of(*count) != Some(Type::Int) {
                        problem(format!("{v}: allocation count must be int"));
                    }
                    if !data.ty.is_some_and(Type::is_ptr) {
                        problem(format!("{v}: allocation must produce a pointer"));
                    }
                }
                InstKind::GlobalAddr(g) => {
                    if let Some(m) = module {
                        let expected = m.global(*g).elem_ty.ptr_to();
                        if data.ty != Some(expected) {
                            problem(format!("{v}: globaladdr type mismatch with declaration"));
                        }
                    }
                }
                InstKind::Gep { base, offset } => {
                    if !ty_of(*base).is_some_and(Type::is_ptr) {
                        problem(format!("{v}: gep base must be a pointer"));
                    }
                    if ty_of(*offset) != Some(Type::Int) {
                        problem(format!("{v}: gep offset must be int"));
                    }
                    if data.ty != ty_of(*base) {
                        problem(format!("{v}: gep must preserve its base type"));
                    }
                }
                InstKind::Load { ptr } => match ty_of(*ptr).and_then(Type::pointee) {
                    Some(p) if data.ty == Some(p) => {}
                    _ => problem(format!("{v}: load type must be the pointee of its operand")),
                },
                InstKind::Store { ptr, value } => match ty_of(*ptr).and_then(Type::pointee) {
                    Some(p) if ty_of(*value) == Some(p) => {}
                    _ => problem(format!("{v}: store value must match pointee type")),
                },
                InstKind::Call { callee, args } => {
                    if let Some(m) = module {
                        let cf = m.function(*callee);
                        if cf.params.len() != args.len() {
                            problem(format!("{v}: call arity mismatch to @{}", cf.name));
                        } else {
                            for (a, (_, pt)) in args.iter().zip(&cf.params) {
                                if ty_of(*a) != Some(*pt) {
                                    problem(format!("{v}: call argument {a} type mismatch"));
                                }
                            }
                        }
                        if data.ty.is_some() && data.ty != cf.ret_ty {
                            problem(format!("{v}: call result type mismatch to @{}", cf.name));
                        }
                    }
                }
                InstKind::Opaque => {}
                InstKind::Br { cond, .. } => {
                    if ty_of(*cond) != Some(Type::Int) {
                        problem(format!("{v}: branch condition must be int"));
                    }
                }
                InstKind::Jump(_) => {}
                InstKind::Ret(rv) => match (rv, f.ret_ty) {
                    (None, None) => {}
                    (Some(x), Some(rt)) => {
                        if ty_of(*x) != Some(rt) {
                            problem(format!("{v}: return value type mismatch"));
                        }
                    }
                    (None, Some(_)) => problem(format!("{v}: missing return value")),
                    (Some(_), None) => problem(format!("{v}: returning from void function")),
                },
            }
        }
    }

    if problems.is_empty() {
        Ok(())
    } else {
        Err(VerifyError { problems })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FunctionBuilder;
    use crate::inst::Pred;

    #[test]
    fn accepts_well_formed_function() {
        let mut m = Module::new();
        let fid = m.declare_function("ok", vec![("n", Type::Int)], Some(Type::Int));
        {
            let f = m.function_mut(fid);
            let mut b = FunctionBuilder::new(f);
            let entry = b.current_block();
            let l = b.create_block();
            let e = b.create_block();
            let n = b.param(0);
            let z = b.iconst(0);
            let one = b.iconst(1);
            b.jump(l);
            b.switch_to(l);
            let i = b.phi(Type::Int);
            let i2 = b.binary(BinOp::Add, i, one);
            let c = b.cmp(Pred::Lt, i2, n);
            b.br(c, l, e);
            b.set_phi_incomings(i, vec![(entry, z), (l, i2)]);
            b.switch_to(e);
            b.ret(Some(i2));
            b.finish();
        }
        verify(&m).unwrap();
    }

    #[test]
    fn rejects_use_before_def() {
        let mut m = Module::new();
        let fid = m.declare_function("bad", vec![], None);
        let f = m.function_mut(fid);
        // %a = copy %b ; %b = opaque — use before def in the same block.
        let entry = f.entry();
        let b_val = f.new_inst(InstKind::Opaque, Some(Type::Int));
        let a = f.new_inst(
            InstKind::Copy { src: b_val, origin: crate::inst::CopyOrigin::Plain },
            Some(Type::Int),
        );
        f.attach_inst(entry, 0, a);
        f.attach_inst(entry, 1, b_val);
        f.append_inst(entry, InstKind::Ret(None), None);
        let err = verify(&m).unwrap_err();
        assert!(err.problems.iter().any(|p| p.contains("not dominated")), "{err}");
    }

    #[test]
    fn rejects_missing_terminator() {
        let mut m = Module::new();
        let fid = m.declare_function("bad", vec![], None);
        let f = m.function_mut(fid);
        let e = f.entry();
        f.append_inst(e, InstKind::Const(1), Some(Type::Int));
        let err = verify(&m).unwrap_err();
        assert!(err.problems.iter().any(|p| p.contains("terminator")), "{err}");
    }

    #[test]
    fn rejects_phi_pred_mismatch() {
        let mut m = Module::new();
        let fid = m.declare_function("bad", vec![("x", Type::Int)], None);
        let f = m.function_mut(fid);
        let e = f.entry();
        let b1 = f.add_block();
        let x = f.param_value(0);
        f.append_inst(e, InstKind::Jump(b1), None);
        // φ claims an incoming from b1 itself, but preds = {entry}.
        f.append_inst(b1, InstKind::Phi { incomings: vec![(b1, x)] }, Some(Type::Int));
        f.append_inst(b1, InstKind::Ret(None), None);
        let err = verify(&m).unwrap_err();
        assert!(err.problems.iter().any(|p| p.contains("do not match predecessors")), "{err}");
    }

    #[test]
    fn rejects_type_errors() {
        let mut m = Module::new();
        let fid = m.declare_function("bad", vec![("p", Type::Ptr(1))], None);
        let f = m.function_mut(fid);
        let e = f.entry();
        let p = f.param_value(0);
        // load of an int* yields int, but we claim int*.
        let l = f.new_inst(InstKind::Load { ptr: p }, Some(Type::Ptr(1)));
        let len = f.block(e).insts.len();
        f.attach_inst(e, len, l);
        f.append_inst(e, InstKind::Ret(None), None);
        let err = verify(&m).unwrap_err();
        assert!(err.problems.iter().any(|p| p.contains("pointee")), "{err}");
    }

    #[test]
    fn rejects_call_arity_mismatch() {
        let mut m = Module::new();
        let callee = m.declare_function("callee", vec![("a", Type::Int)], None);
        {
            let f = m.function_mut(callee);
            f.append_inst(f.entry(), InstKind::Ret(None), None);
        }
        let fid = m.declare_function("caller", vec![], None);
        let f = m.function_mut(fid);
        let e = f.entry();
        f.append_inst(e, InstKind::Call { callee, args: vec![] }, None);
        f.append_inst(e, InstKind::Ret(None), None);
        let err = verify(&m).unwrap_err();
        assert!(err.problems.iter().any(|p| p.contains("arity")), "{err}");
    }
}
