//! Recursive-descent parser for MiniC.

use crate::ast::*;
use crate::lexer::{lex, Token, TokenKind};
use crate::CompileError;

struct Parser {
    toks: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> Option<&TokenKind> {
        self.toks.get(self.pos).map(|t| &t.kind)
    }

    fn line(&self) -> u32 {
        self.toks.get(self.pos).or_else(|| self.toks.last()).map_or(0, |t| t.line)
    }

    fn err(&self, message: impl Into<String>) -> CompileError {
        CompileError { line: self.line(), message: message.into() }
    }

    fn bump(&mut self) -> Option<TokenKind> {
        let t = self.toks.get(self.pos).map(|t| t.kind.clone());
        self.pos += 1;
        t
    }

    fn eat(&mut self, kind: &TokenKind) -> bool {
        if self.peek() == Some(kind) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect(&mut self, kind: &TokenKind) -> Result<(), CompileError> {
        if self.eat(kind) {
            Ok(())
        } else {
            Err(self.err(format!("expected {kind:?}, found {:?}", self.peek())))
        }
    }

    fn expect_ident(&mut self) -> Result<String, CompileError> {
        match self.bump() {
            Some(TokenKind::Ident(s)) => Ok(s),
            other => Err(self.err(format!("expected identifier, found {other:?}"))),
        }
    }

    fn is_keyword(&self, kw: &str) -> bool {
        matches!(self.peek(), Some(TokenKind::Ident(s)) if s == kw)
    }

    /// `int` `*`* or `void`; returns `None` if the cursor is not at a type.
    fn try_parse_type(&mut self) -> Option<Ty> {
        if self.is_keyword("void") {
            self.pos += 1;
            return Some(Ty::Void);
        }
        if !self.is_keyword("int") {
            return None;
        }
        self.pos += 1;
        let mut depth = 0u8;
        while self.eat(&TokenKind::Star) {
            depth += 1;
        }
        Some(if depth == 0 { Ty::Int } else { Ty::Ptr(depth) })
    }
}

/// Parses a MiniC translation unit.
///
/// # Errors
///
/// Returns the first lexing or syntax error.
pub fn parse_program(src: &str) -> Result<Program, CompileError> {
    let toks = lex(src)?;
    let mut p = Parser { toks, pos: 0 };
    let mut globals = Vec::new();
    let mut funcs = Vec::new();
    while p.peek().is_some() {
        let line = p.line();
        let ty = p
            .try_parse_type()
            .ok_or_else(|| p.err("expected a type at top level (`int`, `int*`, `void`)"))?;
        let name = p.expect_ident()?;
        if p.peek() == Some(&TokenKind::LParen) {
            // Function definition.
            p.bump();
            let mut params = Vec::new();
            while p.peek() != Some(&TokenKind::RParen) {
                if !params.is_empty() {
                    p.expect(&TokenKind::Comma)?;
                }
                let pt = p.try_parse_type().ok_or_else(|| p.err("expected parameter type"))?;
                if pt == Ty::Void {
                    return Err(p.err("parameters cannot be void"));
                }
                let pn = p.expect_ident()?;
                params.push((pn, pt));
            }
            p.expect(&TokenKind::RParen)?;
            p.expect(&TokenKind::LBrace)?;
            let body = parse_block_stmts(&mut p)?;
            funcs.push(FuncDef { name, params, ret: ty, body, line });
        } else {
            // Global declaration.
            if ty == Ty::Void {
                return Err(p.err("globals cannot be void"));
            }
            let count = if p.eat(&TokenKind::LBracket) {
                let n = match p.bump() {
                    Some(TokenKind::Int(n)) if n > 0 => n,
                    other => return Err(p.err(format!("expected array size, found {other:?}"))),
                };
                p.expect(&TokenKind::RBracket)?;
                n as u32
            } else {
                1
            };
            p.expect(&TokenKind::Semi)?;
            globals.push(GlobalDecl { name, elem_ty: ty, count, line });
        }
    }
    Ok(Program { globals, funcs })
}

/// Parses statements up to (and consuming) the closing `}`.
fn parse_block_stmts(p: &mut Parser) -> Result<Vec<Stmt>, CompileError> {
    let mut stmts = Vec::new();
    loop {
        if p.eat(&TokenKind::RBrace) {
            return Ok(stmts);
        }
        if p.peek().is_none() {
            return Err(p.err("unterminated block"));
        }
        stmts.push(parse_stmt(p)?);
    }
}

fn parse_stmt(p: &mut Parser) -> Result<Stmt, CompileError> {
    let line = p.line();
    if p.eat(&TokenKind::LBrace) {
        return Ok(Stmt::Block(parse_block_stmts(p)?));
    }
    if p.is_keyword("if") {
        p.bump();
        p.expect(&TokenKind::LParen)?;
        let cond = parse_expr(p)?;
        p.expect(&TokenKind::RParen)?;
        let then = vec![parse_stmt(p)?];
        let els = if p.is_keyword("else") {
            p.bump();
            vec![parse_stmt(p)?]
        } else {
            vec![]
        };
        return Ok(Stmt::If { cond, then, els, line });
    }
    if p.is_keyword("do") {
        p.bump();
        let body = vec![parse_stmt(p)?];
        if !p.is_keyword("while") {
            return Err(p.err("expected `while` after do-body"));
        }
        p.bump();
        p.expect(&TokenKind::LParen)?;
        let cond = parse_expr(p)?;
        p.expect(&TokenKind::RParen)?;
        p.expect(&TokenKind::Semi)?;
        return Ok(Stmt::DoWhile { body, cond, line });
    }
    if p.is_keyword("while") {
        p.bump();
        p.expect(&TokenKind::LParen)?;
        let cond = parse_expr(p)?;
        p.expect(&TokenKind::RParen)?;
        let body = vec![parse_stmt(p)?];
        return Ok(Stmt::While { cond, body, line });
    }
    if p.is_keyword("for") {
        p.bump();
        p.expect(&TokenKind::LParen)?;
        let init = if p.peek() == Some(&TokenKind::Semi) { vec![] } else { parse_simple_list(p)? };
        p.expect(&TokenKind::Semi)?;
        let cond = if p.peek() == Some(&TokenKind::Semi) { None } else { Some(parse_expr(p)?) };
        p.expect(&TokenKind::Semi)?;
        let step =
            if p.peek() == Some(&TokenKind::RParen) { vec![] } else { parse_simple_list(p)? };
        p.expect(&TokenKind::RParen)?;
        let body = vec![parse_stmt(p)?];
        return Ok(Stmt::For { init, cond, step, body, line });
    }
    if p.is_keyword("return") {
        p.bump();
        let value = if p.peek() == Some(&TokenKind::Semi) { None } else { Some(parse_expr(p)?) };
        p.expect(&TokenKind::Semi)?;
        return Ok(Stmt::Return { value, line });
    }
    if p.is_keyword("break") {
        p.bump();
        p.expect(&TokenKind::Semi)?;
        return Ok(Stmt::Break { line });
    }
    if p.is_keyword("continue") {
        p.bump();
        p.expect(&TokenKind::Semi)?;
        return Ok(Stmt::Continue { line });
    }
    let s = parse_simple(p)?;
    p.expect(&TokenKind::Semi)?;
    Ok(s)
}

/// A comma-separated list of simple statements (for `for` headers).
///
/// Follows C's grammar: if the list starts with a declaration, the comma
/// continues the *declaration* (`int i = 0, j = N` declares both `i` and
/// `j`); otherwise the comma separates independent simple statements
/// (`i++, j--`).
fn parse_simple_list(p: &mut Parser) -> Result<Vec<Stmt>, CompileError> {
    let first = parse_simple(p)?;
    let decl_ty = match &first {
        Stmt::DeclScalar { ty, .. } => Some(*ty),
        _ => None,
    };
    let mut out = vec![first];
    while p.eat(&TokenKind::Comma) {
        match decl_ty {
            Some(ty) => {
                let line = p.line();
                let name = p.expect_ident()?;
                let init = if p.eat(&TokenKind::Assign) { Some(parse_expr(p)?) } else { None };
                out.push(Stmt::DeclScalar { name, ty, init, line });
            }
            None => out.push(parse_simple(p)?),
        }
    }
    Ok(out)
}

/// Declaration, assignment, increment, or expression — no trailing `;`.
fn parse_simple(p: &mut Parser) -> Result<Stmt, CompileError> {
    let line = p.line();
    // Declaration?
    let save = p.pos;
    if let Some(ty) = p.try_parse_type() {
        if ty == Ty::Void {
            return Err(p.err("cannot declare a void variable"));
        }
        // Could still be an expression like `int` used as a name — but
        // `int` is reserved, so a type here must begin a declaration.
        let name = p.expect_ident()?;
        if p.eat(&TokenKind::LBracket) {
            let count = parse_expr(p)?;
            p.expect(&TokenKind::RBracket)?;
            return Ok(Stmt::DeclArray { name, elem_ty: ty, count, line });
        }
        let init = if p.eat(&TokenKind::Assign) { Some(parse_expr(p)?) } else { None };
        return Ok(Stmt::DeclScalar { name, ty, init, line });
    }
    p.pos = save;

    // Assignment / inc-dec / expression.
    let e = parse_expr(p)?;
    match p.peek() {
        Some(TokenKind::Assign) => {
            p.bump();
            let value = parse_expr(p)?;
            Ok(Stmt::Assign { target: e, op: AssignOp::Set, value, line })
        }
        Some(TokenKind::PlusEq) => {
            p.bump();
            let value = parse_expr(p)?;
            Ok(Stmt::Assign { target: e, op: AssignOp::Add, value, line })
        }
        Some(TokenKind::MinusEq) => {
            p.bump();
            let value = parse_expr(p)?;
            Ok(Stmt::Assign { target: e, op: AssignOp::Sub, value, line })
        }
        Some(TokenKind::PlusPlus) => {
            p.bump();
            Ok(Stmt::Assign { target: e, op: AssignOp::Add, value: Expr::Int(1), line })
        }
        Some(TokenKind::MinusMinus) => {
            p.bump();
            Ok(Stmt::Assign { target: e, op: AssignOp::Sub, value: Expr::Int(1), line })
        }
        _ => Ok(Stmt::ExprStmt { expr: e, line }),
    }
}

fn parse_expr(p: &mut Parser) -> Result<Expr, CompileError> {
    parse_ternary(p)
}

/// `cond ? a : b` — right-associative, lowest precedence.
fn parse_ternary(p: &mut Parser) -> Result<Expr, CompileError> {
    let cond = parse_or(p)?;
    if !p.eat(&TokenKind::Question) {
        return Ok(cond);
    }
    let line = p.line();
    let then_e = parse_expr(p)?;
    p.expect(&TokenKind::Colon)?;
    let else_e = parse_ternary(p)?;
    Ok(Expr::Ternary {
        cond: Box::new(cond),
        then_e: Box::new(then_e),
        else_e: Box::new(else_e),
        line,
    })
}

fn parse_or(p: &mut Parser) -> Result<Expr, CompileError> {
    let mut lhs = parse_and(p)?;
    while p.peek() == Some(&TokenKind::OrOr) {
        let line = p.line();
        p.bump();
        let rhs = parse_and(p)?;
        lhs = Expr::Or { lhs: Box::new(lhs), rhs: Box::new(rhs), line };
    }
    Ok(lhs)
}

fn parse_and(p: &mut Parser) -> Result<Expr, CompileError> {
    let mut lhs = parse_equality(p)?;
    while p.peek() == Some(&TokenKind::AndAnd) {
        let line = p.line();
        p.bump();
        let rhs = parse_equality(p)?;
        lhs = Expr::And { lhs: Box::new(lhs), rhs: Box::new(rhs), line };
    }
    Ok(lhs)
}

fn parse_equality(p: &mut Parser) -> Result<Expr, CompileError> {
    let mut lhs = parse_relational(p)?;
    loop {
        let op = match p.peek() {
            Some(TokenKind::EqEq) => BinOpAst::Eq,
            Some(TokenKind::NotEq) => BinOpAst::Ne,
            _ => return Ok(lhs),
        };
        let line = p.line();
        p.bump();
        let rhs = parse_relational(p)?;
        lhs = Expr::Binary { op, lhs: Box::new(lhs), rhs: Box::new(rhs), line };
    }
}

fn parse_relational(p: &mut Parser) -> Result<Expr, CompileError> {
    let mut lhs = parse_additive(p)?;
    loop {
        let op = match p.peek() {
            Some(TokenKind::Lt) => BinOpAst::Lt,
            Some(TokenKind::Le) => BinOpAst::Le,
            Some(TokenKind::Gt) => BinOpAst::Gt,
            Some(TokenKind::Ge) => BinOpAst::Ge,
            _ => return Ok(lhs),
        };
        let line = p.line();
        p.bump();
        let rhs = parse_additive(p)?;
        lhs = Expr::Binary { op, lhs: Box::new(lhs), rhs: Box::new(rhs), line };
    }
}

fn parse_additive(p: &mut Parser) -> Result<Expr, CompileError> {
    let mut lhs = parse_multiplicative(p)?;
    loop {
        let op = match p.peek() {
            Some(TokenKind::Plus) => BinOpAst::Add,
            Some(TokenKind::Minus) => BinOpAst::Sub,
            _ => return Ok(lhs),
        };
        let line = p.line();
        p.bump();
        let rhs = parse_multiplicative(p)?;
        lhs = Expr::Binary { op, lhs: Box::new(lhs), rhs: Box::new(rhs), line };
    }
}

fn parse_multiplicative(p: &mut Parser) -> Result<Expr, CompileError> {
    let mut lhs = parse_unary(p)?;
    loop {
        let op = match p.peek() {
            Some(TokenKind::Star) => BinOpAst::Mul,
            Some(TokenKind::Slash) => BinOpAst::Div,
            Some(TokenKind::Percent) => BinOpAst::Rem,
            _ => return Ok(lhs),
        };
        let line = p.line();
        p.bump();
        let rhs = parse_unary(p)?;
        lhs = Expr::Binary { op, lhs: Box::new(lhs), rhs: Box::new(rhs), line };
    }
}

fn parse_unary(p: &mut Parser) -> Result<Expr, CompileError> {
    let line = p.line();
    let op = match p.peek() {
        Some(TokenKind::Minus) => Some(UnOp::Neg),
        Some(TokenKind::Bang) => Some(UnOp::Not),
        Some(TokenKind::Star) => Some(UnOp::Deref),
        Some(TokenKind::Amp) => Some(UnOp::AddrOf),
        _ => None,
    };
    if let Some(op) = op {
        p.bump();
        let expr = parse_unary(p)?;
        return Ok(Expr::Unary { op, expr: Box::new(expr), line });
    }
    parse_postfix(p)
}

fn parse_postfix(p: &mut Parser) -> Result<Expr, CompileError> {
    let mut e = parse_primary(p)?;
    while p.peek() == Some(&TokenKind::LBracket) {
        let line = p.line();
        p.bump();
        let index = parse_expr(p)?;
        p.expect(&TokenKind::RBracket)?;
        e = Expr::Index { base: Box::new(e), index: Box::new(index), line };
    }
    Ok(e)
}

fn parse_primary(p: &mut Parser) -> Result<Expr, CompileError> {
    let line = p.line();
    match p.bump() {
        Some(TokenKind::Int(v)) => Ok(Expr::Int(v)),
        Some(TokenKind::LParen) => {
            let e = parse_expr(p)?;
            p.expect(&TokenKind::RParen)?;
            Ok(e)
        }
        Some(TokenKind::Ident(name)) => {
            if p.peek() == Some(&TokenKind::LParen) {
                p.bump();
                let mut args = Vec::new();
                while p.peek() != Some(&TokenKind::RParen) {
                    if !args.is_empty() {
                        p.expect(&TokenKind::Comma)?;
                    }
                    args.push(parse_expr(p)?);
                }
                p.expect(&TokenKind::RParen)?;
                match name.as_str() {
                    "malloc" => {
                        if args.len() != 1 {
                            return Err(p.err("malloc takes exactly one argument"));
                        }
                        Ok(Expr::Malloc { count: Box::new(args.remove(0)), line })
                    }
                    "input" => {
                        if !args.is_empty() {
                            return Err(p.err("input takes no arguments"));
                        }
                        Ok(Expr::Input { line })
                    }
                    "inptr" => {
                        if !args.is_empty() {
                            return Err(p.err("inptr takes no arguments"));
                        }
                        Ok(Expr::InputPtr { line })
                    }
                    _ => Ok(Expr::Call { name, args, line }),
                }
            } else {
                Ok(Expr::Var { name, line })
            }
        }
        other => {
            Err(CompileError { line, message: format!("expected an expression, found {other:?}") })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_figure1a_shape() {
        let prog = parse_program(
            "void ins_sort(int* v, int N) { for (int i = 0; i < N - 1; i++) { v[i] = v[i+1]; } }",
        )
        .unwrap();
        assert_eq!(prog.funcs.len(), 1);
        let f = &prog.funcs[0];
        assert_eq!(f.name, "ins_sort");
        assert_eq!(f.params, vec![("v".into(), Ty::Ptr(1)), ("N".into(), Ty::Int)]);
        assert!(matches!(f.body[0], Stmt::For { .. }));
    }

    #[test]
    fn precedence_binds_mul_tighter_than_add() {
        let prog = parse_program("int f() { return 1 + 2 * 3; }").unwrap();
        let Stmt::Return { value: Some(e), .. } = &prog.funcs[0].body[0] else { panic!() };
        let Expr::Binary { op: BinOpAst::Add, rhs, .. } = e else { panic!("got {e:?}") };
        assert!(matches!(**rhs, Expr::Binary { op: BinOpAst::Mul, .. }));
    }

    #[test]
    fn comparison_below_logical_and() {
        let prog = parse_program("int f() { return 1 < 2 && 3 < 4; }").unwrap();
        let Stmt::Return { value: Some(e), .. } = &prog.funcs[0].body[0] else { panic!() };
        assert!(matches!(e, Expr::And { .. }));
    }

    #[test]
    fn for_with_comma_lists() {
        let prog =
            parse_program("void f(int N) { for (int i = 0, j = N; i < j; i++, j--) {} }").unwrap();
        let Stmt::For { init, step, .. } = &prog.funcs[0].body[0] else { panic!() };
        assert_eq!(init.len(), 2);
        assert_eq!(step.len(), 2);
    }

    #[test]
    fn globals_scalar_and_array() {
        let prog = parse_program("int g; int t[32]; int main() { return 0; }").unwrap();
        assert_eq!(prog.globals.len(), 2);
        assert_eq!(prog.globals[0].count, 1);
        assert_eq!(prog.globals[1].count, 32);
    }

    #[test]
    fn postfix_index_chains() {
        let prog = parse_program("int f(int** m) { return m[1][2]; }").unwrap();
        let Stmt::Return { value: Some(e), .. } = &prog.funcs[0].body[0] else { panic!() };
        let Expr::Index { base, .. } = e else { panic!() };
        assert!(matches!(**base, Expr::Index { .. }));
    }

    #[test]
    fn deref_and_addressof() {
        let prog = parse_program("int f(int* p) { return *p + *&p[0]; }").unwrap();
        assert_eq!(prog.funcs.len(), 1);
    }

    #[test]
    fn error_has_line_number() {
        let e = parse_program("int f() {\n  return $;\n}").unwrap_err();
        assert_eq!(e.line, 2);
    }

    #[test]
    fn malloc_and_input_builtins() {
        let prog =
            parse_program("int main() { int* p = malloc(4); int x = input(); return x; }").unwrap();
        let Stmt::DeclScalar { init: Some(Expr::Malloc { .. }), .. } = &prog.funcs[0].body[0]
        else {
            panic!()
        };
        let Stmt::DeclScalar { init: Some(Expr::Input { .. }), .. } = &prog.funcs[0].body[1] else {
            panic!()
        };
    }
}
