//! Daemon-lifetime counters: connections, queries, cache outcomes and
//! query-latency percentiles.
//!
//! Everything is lock-free atomics except the latency reservoir, which is
//! a capped `Mutex<Vec<u64>>` — one push per query, read only by `stats`
//! requests and the shutdown report, so contention is negligible next to
//! the socket round trip it measures.

use crate::protocol::{obj, Json};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Cap on retained per-query latencies: enough for faithful p50/p99 over
/// any realistic session; after that, new samples are dropped rather than
/// growing without bound.
const MAX_LATENCIES: usize = 1 << 16;

/// Counters for one daemon lifetime. Shared by reference across every
/// connection thread; all methods take `&self`.
#[derive(Debug, Default)]
pub struct ServeStats {
    /// Accepted connections.
    pub connections: AtomicU64,
    /// Frames received (including malformed ones).
    pub frames: AtomicU64,
    /// Successfully answered query requests (`no-alias`, `lt`, `eval`,
    /// `pairs`, `stats`).
    pub queries: AtomicU64,
    /// Successful module uploads.
    pub uploads: AtomicU64,
    /// Typed error replies sent.
    pub errors: AtomicU64,
    /// Summary-cache hits accumulated over every upload.
    pub cache_hits: AtomicU64,
    /// Summary-cache misses accumulated over every upload.
    pub cache_misses: AtomicU64,
    /// Summary-cache invalidations accumulated over every upload.
    pub cache_invalidated: AtomicU64,
    latencies_us: Mutex<Vec<u64>>,
}

impl ServeStats {
    /// Records one query's wall-clock latency.
    pub fn record_latency(&self, us: u64) {
        let mut l = self.latencies_us.lock().expect("latencies poisoned");
        if l.len() < MAX_LATENCIES {
            l.push(us);
        }
    }

    /// Nearest-rank percentiles over the recorded query latencies:
    /// `(p50, p99)` in microseconds, zeros when nothing was recorded.
    pub fn latency_percentiles(&self) -> (u64, u64) {
        let mut l = self.latencies_us.lock().expect("latencies poisoned").clone();
        if l.is_empty() {
            return (0, 0);
        }
        l.sort_unstable();
        let rank = |p: f64| l[((p * l.len() as f64).ceil() as usize).clamp(1, l.len()) - 1];
        (rank(0.50), rank(0.99))
    }

    /// The `stats` reply body (also reused by the shutdown report).
    pub fn snapshot(&self, modules: usize) -> Json {
        let (p50, p99) = self.latency_percentiles();
        let n = |a: &AtomicU64| Json::Num(a.load(Ordering::Relaxed) as i64);
        obj([
            ("ok", Json::Bool(true)),
            ("modules", Json::Num(modules as i64)),
            ("connections", n(&self.connections)),
            ("frames", n(&self.frames)),
            ("queries", n(&self.queries)),
            ("uploads", n(&self.uploads)),
            ("errors", n(&self.errors)),
            ("cache_hits", n(&self.cache_hits)),
            ("cache_misses", n(&self.cache_misses)),
            ("cache_invalidated", n(&self.cache_invalidated)),
            ("p50_us", Json::Num(p50 as i64)),
            ("p99_us", Json::Num(p99 as i64)),
        ])
    }
}

impl std::fmt::Display for ServeStats {
    /// The one-line shutdown report (`# serve: …`), printed to stderr by
    /// the CLI on graceful shutdown.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let (p50, p99) = self.latency_percentiles();
        let g = |a: &AtomicU64| a.load(Ordering::Relaxed);
        write!(
            f,
            "# serve: {} connection(s), {} upload(s), {} query(s), {} error(s), \
             cache {} hit(s)/{} miss(es)/{} invalidated, p50 {p50}us, p99 {p99}us",
            g(&self.connections),
            g(&self.uploads),
            g(&self.queries),
            g(&self.errors),
            g(&self.cache_hits),
            g(&self.cache_misses),
            g(&self.cache_invalidated),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentiles_are_nearest_rank() {
        let s = ServeStats::default();
        assert_eq!(s.latency_percentiles(), (0, 0));
        for us in 1..=100 {
            s.record_latency(us);
        }
        assert_eq!(s.latency_percentiles(), (50, 99));
        let one = ServeStats::default();
        one.record_latency(7);
        assert_eq!(one.latency_percentiles(), (7, 7));
    }

    #[test]
    fn snapshot_and_display_report_every_counter() {
        let s = ServeStats::default();
        s.connections.store(2, Ordering::Relaxed);
        s.queries.store(5, Ordering::Relaxed);
        s.cache_hits.store(3, Ordering::Relaxed);
        s.record_latency(10);
        let snap = s.snapshot(1);
        assert!(snap.is_ok());
        assert_eq!(snap.num_field("modules"), Some(1));
        assert_eq!(snap.num_field("connections"), Some(2));
        assert_eq!(snap.num_field("queries"), Some(5));
        assert_eq!(snap.num_field("cache_hits"), Some(3));
        assert_eq!(snap.num_field("p50_us"), Some(10));
        let line = format!("{s}");
        assert!(line.starts_with("# serve: "), "{line}");
        assert!(line.contains("2 connection(s)"), "{line}");
        assert!(line.contains("3 hit(s)"), "{line}");
    }
}
