//! Ablation of the design choices DESIGN.md calls out:
//!
//! * `extended` — the sound non-strict extension of Figure 7 (off in the
//!   paper): how many extra no-alias answers does it buy?
//! * `param_pairs` — the parameter-pair completion of the paper's
//!   inter-procedural pseudo-φs: how much precision does LT lose without
//!   it?

use sraa_bench::Prepared;
use sraa_core::GenConfig;

fn main() {
    println!(
        "{:<12} {:>10} {:>10} {:>11} {:>10} {:>10}",
        "benchmark", "LT", "LT-ext", "LT-nopairs", "LT-ranges", "queries"
    );
    let mut faithful = 0u64;
    let mut extended = 0u64;
    let mut nopairs = 0u64;
    let mut ranges = 0u64;
    for w in sraa_synth::spec_all() {
        let base = Prepared::with_config(&w, GenConfig::default());
        let ext = Prepared::with_config(&w, GenConfig { extended: true, ..Default::default() });
        let nop = Prepared::with_config(&w, GenConfig { param_pairs: false, ..Default::default() });
        let rng =
            Prepared::with_config(&w, GenConfig { range_offsets: true, ..Default::default() });
        let b = &base.eval(&[&base.lt])[0];
        let e = &ext.eval(&[&ext.lt])[0];
        let n = &nop.eval(&[&nop.lt])[0];
        let r = &rng.eval(&[&rng.lt])[0];
        println!(
            "{:<12} {:>10} {:>10} {:>11} {:>10} {:>10}",
            w.name,
            b.no_alias,
            e.no_alias,
            n.no_alias,
            r.no_alias,
            b.total()
        );
        faithful += b.no_alias;
        extended += e.no_alias;
        nopairs += n.no_alias;
        ranges += r.no_alias;
    }
    println!();
    println!(
        "totals: faithful={faithful} extended={extended}          without-param-pairs={nopairs} with-range-criterion={ranges}"
    );
    println!(
        "extension gain: {:+.2}%, param-pair contribution: {:+.2}%, range criterion: {:+.2}%",
        (extended as f64 - faithful as f64) / faithful.max(1) as f64 * 100.0,
        (faithful as f64 - nopairs as f64) / faithful.max(1) as f64 * 100.0,
        (ranges as f64 - faithful as f64) / faithful.max(1) as f64 * 100.0
    );
}
