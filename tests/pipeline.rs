//! Cross-crate integration tests: the whole pipeline, end to end, over
//! generated workloads — frontend → e-SSA → ranges → constraints →
//! solving → alias queries → PDG.

use sraa_alias::{AaEval, AliasAnalysis, AliasResult, BasicAliasAnalysis, StrictInequalityAa};
use sraa_ir::{verify, InstKind, Interpreter, ModuleStats};
use sraa_pdg::DepGraph;

#[test]
fn whole_pipeline_on_every_fifth_suite_member() {
    for (k, w) in sraa_synth::test_suite(50).into_iter().enumerate() {
        if k % 5 != 0 {
            continue;
        }
        let mut m = sraa_minic::compile(&w.source).unwrap_or_else(|e| panic!("{}: {e}", w.name));
        verify(&m).unwrap_or_else(|e| panic!("{} pre-essa: {e}", w.name));
        let lt = StrictInequalityAa::new(&mut m);
        verify(&m).unwrap_or_else(|e| panic!("{} post-essa: {e}", w.name));
        let ba = BasicAliasAnalysis::new(&m);

        let out = AaEval::run(&m, &[&ba, &lt]);
        assert_eq!(out[0].total(), out[1].total(), "{}", w.name);
        assert_eq!(out[0].total(), AaEval::num_queries(&m), "{}", w.name);

        // The PDG is buildable and bounded by the static access count.
        let g = DepGraph::build(&m, &ba);
        assert!(g.memory_nodes <= g.static_accesses, "{}", w.name);
        assert_eq!(g.static_accesses, ModuleStats::compute(&m).memory_accesses, "{}", w.name);
    }
}

#[test]
fn essa_preserves_behaviour_on_suite_members() {
    for (k, w) in sraa_synth::test_suite(20).into_iter().enumerate() {
        if k % 4 != 0 {
            continue;
        }
        let mut m = sraa_minic::compile(&w.source).unwrap();
        let before = Interpreter::new(&m)
            .with_step_limit(20_000_000)
            .run("main", &[])
            .unwrap_or_else(|e| panic!("{} baseline run: {e:?}", w.name));
        let _ = StrictInequalityAa::new(&mut m);
        let after = Interpreter::new(&m)
            .with_step_limit(20_000_000)
            .run("main", &[])
            .unwrap_or_else(|e| panic!("{} post-essa run: {e:?}", w.name));
        assert_eq!(before.result, after.result, "{}: e-SSA must not change results", w.name);
    }
}

#[test]
fn ir_round_trips_through_the_textual_format() {
    for seed in 0..5u64 {
        let w = sraa_synth::csmith_generate(sraa_synth::CsmithConfig {
            seed,
            max_ptr_depth: 3,
            num_stmts: 40,
            helpers: 0,
        });
        let mut m = sraa_minic::compile(&w.source).unwrap();
        // Round-trip the e-SSA form too (σ-copy annotations included).
        let _ = StrictInequalityAa::new(&mut m);
        let printed = sraa_ir::printer::print_module(&m);
        let reparsed = sraa_ir::parse_module(&printed)
            .unwrap_or_else(|e| panic!("{} reparse: {e}\n{printed}", w.name));
        verify(&reparsed).unwrap_or_else(|e| panic!("{} reparsed verify: {e}", w.name));
        let printed2 = sraa_ir::printer::print_module(&reparsed);
        let reparsed2 = sraa_ir::parse_module(&printed2).unwrap();
        assert_eq!(
            printed2,
            sraa_ir::printer::print_module(&reparsed2),
            "{}: print∘parse must stabilise",
            w.name
        );
        // Behaviour survives the round trip.
        let a = Interpreter::new(&m).with_step_limit(20_000_000).run("main", &[]).unwrap();
        let b = Interpreter::new(&reparsed).with_step_limit(20_000_000).run("main", &[]).unwrap();
        assert_eq!(a.result, b.result, "{}", w.name);
    }
}

#[test]
fn alias_results_are_symmetric_and_reflexive() {
    let w = sraa_synth::spec_generate_by_name("astar").unwrap();
    let mut m = sraa_minic::compile(&w.source).unwrap();
    let lt = StrictInequalityAa::new(&mut m);
    let ba = BasicAliasAnalysis::new(&m);
    for (fid, _) in m.functions().take(12) {
        let ptrs = AaEval::pointer_values(&m, fid);
        for (i, &p) in ptrs.iter().enumerate().take(20) {
            assert_eq!(ba.alias(&m, fid, p, p), AliasResult::MustAlias);
            assert_eq!(lt.alias(&m, fid, p, p), AliasResult::MustAlias);
            for &q in ptrs.iter().skip(i + 1).take(20) {
                assert_eq!(
                    ba.alias(&m, fid, p, q),
                    ba.alias(&m, fid, q, p),
                    "BA must be symmetric"
                );
                assert_eq!(
                    lt.alias(&m, fid, p, q),
                    lt.alias(&m, fid, q, p),
                    "LT must be symmetric"
                );
            }
        }
    }
}

#[test]
fn lt_never_contradicts_must_alias() {
    // Wherever BA proves MustAlias (same address), LT must not claim
    // NoAlias — the analyses would be inconsistent otherwise.
    for w in sraa_synth::spec_all().into_iter().take(5) {
        let mut m = sraa_minic::compile(&w.source).unwrap();
        let lt = StrictInequalityAa::new(&mut m);
        let ba = BasicAliasAnalysis::new(&m);
        for (fid, _) in m.functions() {
            let ptrs = AaEval::pointer_values(&m, fid);
            for (i, &p) in ptrs.iter().enumerate() {
                for &q in ptrs.iter().skip(i + 1) {
                    if ba.alias(&m, fid, p, q) == AliasResult::MustAlias {
                        assert_ne!(
                            lt.alias(&m, fid, p, q),
                            AliasResult::NoAlias,
                            "{}: {p} vs {q} in {fid}",
                            w.name
                        );
                    }
                }
            }
        }
    }
}

#[test]
fn interpreters_are_deterministic() {
    let w = sraa_synth::csmith_generate(sraa_synth::CsmithConfig {
        seed: 99,
        max_ptr_depth: 4,
        num_stmts: 70,
        helpers: 0,
    });
    let m = sraa_minic::compile(&w.source).unwrap();
    let a = Interpreter::new(&m).run("main", &[]).unwrap();
    let b = Interpreter::new(&m).run("main", &[]).unwrap();
    assert_eq!(a, b);
}

#[test]
fn stencil_loops_disambiguate_via_gep_offsets() {
    // The `a[i] = a[i+1]` idiom: rule 2 on the offsets + criterion 2.
    let mut m = sraa_minic::compile(
        r#"
        void shift(int* a, int n) {
            for (int i = 0; i + 1 < n; i++) a[i] = a[i + 1];
        }
        "#,
    )
    .unwrap();
    let lt = StrictInequalityAa::new(&mut m);
    let fid = m.function_by_name("shift").unwrap();
    let f = m.function(fid);
    let (mut load, mut store) = (None, None);
    for b in f.block_ids() {
        for (_, d) in f.block_insts(b) {
            match d.kind {
                InstKind::Load { ptr } => load = Some(ptr),
                InstKind::Store { ptr, .. } => store = Some(ptr),
                _ => {}
            }
        }
    }
    assert_eq!(
        lt.alias(&m, fid, load.unwrap(), store.unwrap()),
        AliasResult::NoAlias,
        "i < i+1 separates the two accesses of one iteration"
    );
}
