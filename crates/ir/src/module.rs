//! Modules: collections of functions and globals.

use crate::function::Function;
use crate::ids::{FuncId, GlobalId};
use crate::types::Type;

/// A module-level global variable (an allocation site with static storage).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Global {
    /// Global name (unique within the module).
    pub name: String,
    /// Scalar type of the *elements* stored in the global.
    pub elem_ty: Type,
    /// Number of scalar elements.
    pub count: u32,
}

/// A whole program: functions plus globals.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Module {
    funcs: Vec<Function>,
    globals: Vec<Global>,
}

impl Module {
    /// Creates an empty module.
    pub fn new() -> Self {
        Self::default()
    }

    /// Declares a function with the given signature and an empty body,
    /// returning its id. Bodies are filled in via
    /// [`function_mut`](Self::function_mut) or a
    /// [`FunctionBuilder`](crate::FunctionBuilder).
    pub fn declare_function(
        &mut self,
        name: impl Into<String>,
        params: Vec<(&str, Type)>,
        ret_ty: Option<Type>,
    ) -> FuncId {
        let params = params.into_iter().map(|(n, t)| (n.to_string(), t)).collect();
        self.funcs.push(Function::new(name, params, ret_ty));
        FuncId::from_index(self.funcs.len() - 1)
    }

    /// Declares a global array of `count` elements of type `elem_ty`.
    pub fn declare_global(
        &mut self,
        name: impl Into<String>,
        elem_ty: Type,
        count: u32,
    ) -> GlobalId {
        self.globals.push(Global { name: name.into(), elem_ty, count });
        GlobalId::from_index(self.globals.len() - 1)
    }

    /// Immutable access to a function.
    pub fn function(&self, id: FuncId) -> &Function {
        &self.funcs[id.index()]
    }

    /// Mutable access to a function.
    pub fn function_mut(&mut self, id: FuncId) -> &mut Function {
        &mut self.funcs[id.index()]
    }

    /// Immutable access to a global.
    pub fn global(&self, id: GlobalId) -> &Global {
        &self.globals[id.index()]
    }

    /// Looks a function up by name.
    pub fn function_by_name(&self, name: &str) -> Option<FuncId> {
        self.funcs.iter().position(|f| f.name == name).map(FuncId::from_index)
    }

    /// Number of functions.
    pub fn num_functions(&self) -> usize {
        self.funcs.len()
    }

    /// Number of globals.
    pub fn num_globals(&self) -> usize {
        self.globals.len()
    }

    /// Iterates over `(id, function)` pairs.
    pub fn functions(&self) -> impl Iterator<Item = (FuncId, &Function)> {
        self.funcs.iter().enumerate().map(|(i, f)| (FuncId::from_index(i), f))
    }

    /// Iterates over `(id, global)` pairs.
    pub fn globals(&self) -> impl Iterator<Item = (GlobalId, &Global)> {
        self.globals.iter().enumerate().map(|(i, g)| (GlobalId::from_index(i), g))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn declare_and_look_up() {
        let mut m = Module::new();
        let f = m.declare_function("foo", vec![("a", Type::Int)], None);
        let g = m.declare_function("bar", vec![], Some(Type::Ptr(1)));
        assert_eq!(m.function_by_name("foo"), Some(f));
        assert_eq!(m.function_by_name("bar"), Some(g));
        assert_eq!(m.function_by_name("baz"), None);
        assert_eq!(m.num_functions(), 2);
        assert_eq!(m.function(g).ret_ty, Some(Type::Ptr(1)));
    }

    #[test]
    fn globals_carry_layout() {
        let mut m = Module::new();
        let g = m.declare_global("table", Type::Int, 128);
        assert_eq!(m.global(g).count, 128);
        assert_eq!(m.num_globals(), 1);
        assert_eq!(m.globals().count(), 1);
    }
}
