//! Functions and basic blocks.

use crate::ids::{BlockId, Value};
use crate::inst::{CopyOrigin, InstData, InstKind};
use crate::types::Type;

/// A basic block: an ordered list of instructions ending in a terminator.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Block {
    /// Instructions in execution order. The last one is the terminator once
    /// the block is complete; φ-functions form a prefix.
    pub insts: Vec<Value>,
}

impl Block {
    /// Index of the first non-φ instruction.
    pub fn first_non_phi(&self, func: &Function) -> usize {
        self.insts.iter().position(|&v| !func.inst(v).kind.is_phi()).unwrap_or(self.insts.len())
    }
}

/// A function: an arena of instructions plus a list of basic blocks.
///
/// Instructions are identified by [`Value`]; value-producing instructions
/// *are* their result value, as in LLVM. The entry block is always
/// `BlockId 0`; parameters and constants are materialised as instructions
/// in the entry block so that every value has a defining instruction.
#[derive(Clone, Debug, PartialEq)]
pub struct Function {
    /// Function name (unique within a module).
    pub name: String,
    /// Parameter names and types, in order.
    pub params: Vec<(String, Type)>,
    /// Return type (`None` = void).
    pub ret_ty: Option<Type>,
    /// Instruction arena.
    insts: Vec<InstData>,
    /// Basic blocks; index 0 is the entry.
    blocks: Vec<Block>,
    /// Param index → defining `Param` instruction.
    param_values: Vec<Value>,
}

impl Function {
    /// Creates a function with an empty entry block and one `Param`
    /// instruction per parameter.
    pub fn new<S: Into<String>>(
        name: impl Into<String>,
        params: Vec<(S, Type)>,
        ret_ty: Option<Type>,
    ) -> Self {
        let mut f = Self {
            name: name.into(),
            params: params.into_iter().map(|(n, t)| (n.into(), t)).collect(),
            ret_ty,
            insts: Vec::new(),
            blocks: vec![Block::default()],
            param_values: Vec::new(),
        };
        for (i, (_, ty)) in f.params.clone().iter().enumerate() {
            let v = f.append_inst(BlockId::from_index(0), InstKind::Param(i as u32), Some(*ty));
            f.param_values.push(v);
        }
        f
    }

    /// The entry block id (always index 0).
    pub fn entry(&self) -> BlockId {
        BlockId::from_index(0)
    }

    /// The value defined by the `index`-th parameter.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of bounds.
    pub fn param_value(&self, index: usize) -> Value {
        self.param_values[index]
    }

    /// Number of instructions in the arena (including detached ones).
    pub fn num_insts(&self) -> usize {
        self.insts.len()
    }

    /// Number of basic blocks.
    pub fn num_blocks(&self) -> usize {
        self.blocks.len()
    }

    /// Immutable access to an instruction.
    pub fn inst(&self, v: Value) -> &InstData {
        &self.insts[v.index()]
    }

    /// Mutable access to an instruction.
    pub fn inst_mut(&mut self, v: Value) -> &mut InstData {
        &mut self.insts[v.index()]
    }

    /// Result type of a value, if it produces one.
    pub fn value_type(&self, v: Value) -> Option<Type> {
        self.inst(v).ty
    }

    /// Immutable access to a block.
    pub fn block(&self, b: BlockId) -> &Block {
        &self.blocks[b.index()]
    }

    /// Mutable access to a block.
    pub fn block_mut(&mut self, b: BlockId) -> &mut Block {
        &mut self.blocks[b.index()]
    }

    /// Iterates over all block ids in layout order.
    pub fn block_ids(&self) -> impl Iterator<Item = BlockId> {
        (0..self.blocks.len()).map(BlockId::from_index)
    }

    /// Iterates over all instruction ids in arena order.
    pub fn value_ids(&self) -> impl Iterator<Item = Value> {
        (0..self.insts.len()).map(Value::from_index)
    }

    /// Appends a fresh block, returning its id.
    pub fn add_block(&mut self) -> BlockId {
        self.blocks.push(Block::default());
        BlockId::from_index(self.blocks.len() - 1)
    }

    /// Creates a new instruction and appends it to `block`.
    pub fn append_inst(&mut self, block: BlockId, kind: InstKind, ty: Option<Type>) -> Value {
        let v = self.new_inst(kind, ty);
        self.attach_inst(block, self.blocks[block.index()].insts.len(), v);
        v
    }

    /// Creates a detached instruction (not yet in any block).
    pub fn new_inst(&mut self, kind: InstKind, ty: Option<Type>) -> Value {
        self.insts.push(InstData::new(kind, ty));
        Value::from_index(self.insts.len() - 1)
    }

    /// Inserts a detached instruction into `block` at position `index`.
    ///
    /// # Panics
    ///
    /// Panics if the instruction is already attached.
    pub fn attach_inst(&mut self, block: BlockId, index: usize, v: Value) {
        assert!(self.insts[v.index()].block.is_none(), "{v} is already attached");
        self.insts[v.index()].block = Some(block);
        self.blocks[block.index()].insts.insert(index, v);
    }

    /// Detaches an instruction from its block (it remains in the arena as
    /// an orphan). The caller is responsible for having rewritten all its
    /// uses first; the verifier flags uses of detached values.
    pub fn detach_inst(&mut self, v: Value) {
        if let Some(b) = self.insts[v.index()].block.take() {
            self.blocks[b.index()].insts.retain(|&x| x != v);
        }
    }

    /// The terminator of `block`, if the block is complete.
    pub fn terminator(&self, block: BlockId) -> Option<Value> {
        let last = *self.blocks[block.index()].insts.last()?;
        self.inst(last).kind.is_terminator().then_some(last)
    }

    /// Successor blocks of `block` (empty for return blocks).
    pub fn successors(&self, block: BlockId) -> Vec<BlockId> {
        match self.terminator(block) {
            Some(t) => self.inst(t).kind.successors(),
            None => vec![],
        }
    }

    /// Splits the CFG edge `pred → succ`, returning the new block that now
    /// sits on the edge (containing only a jump to `succ`).
    ///
    /// φ-functions in `succ` are updated to receive their `pred` incoming
    /// from the new block instead. Used by the e-SSA transform when a σ-copy
    /// must be placed on an edge whose target has several predecessors.
    ///
    /// # Panics
    ///
    /// Panics if `pred` has no terminator targeting `succ`.
    pub fn split_edge(&mut self, pred: BlockId, succ: BlockId) -> BlockId {
        let term = self.terminator(pred).expect("pred must be terminated");
        assert!(
            self.inst(term).kind.successors().contains(&succ),
            "{pred} does not branch to {succ}"
        );
        let mid = self.add_block();
        self.inst_mut(term).kind.replace_successor(succ, mid);
        self.append_inst(mid, InstKind::Jump(succ), None);
        // Re-route φ incomings in succ.
        let phis: Vec<Value> = self.blocks[succ.index()]
            .insts
            .iter()
            .copied()
            .filter(|&v| self.inst(v).kind.is_phi())
            .collect();
        for phi in phis {
            self.inst_mut(phi).kind.for_each_phi_operand_mut(|b, _| {
                if *b == pred {
                    *b = mid;
                }
            });
        }
        mid
    }

    /// Computes, for every attached instruction, its position within its
    /// block (φ prefix included). Detached instructions get `u32::MAX`.
    ///
    /// Positions order instructions within one block for dominance queries;
    /// they are recomputed on demand after edits.
    pub fn positions(&self) -> Vec<u32> {
        let mut pos = vec![u32::MAX; self.insts.len()];
        for b in &self.blocks {
            for (i, &v) in b.insts.iter().enumerate() {
                pos[v.index()] = i as u32;
            }
        }
        pos
    }

    /// Convenience: creates an `Int` constant in the entry block.
    ///
    /// Constants are not uniqued; the builder layer uniques them.
    pub fn add_const(&mut self, c: i64) -> Value {
        let v = self.new_inst(InstKind::Const(c), Some(Type::Int));
        // Constants go at the head of the entry block, after other
        // consts/params, but before any computation: position right after
        // the last Const/Param prefix instruction.
        let entry = self.entry();
        let idx = self.blocks[entry.index()]
            .insts
            .iter()
            .position(|&i| !matches!(self.inst(i).kind, InstKind::Const(_) | InstKind::Param(_)))
            .unwrap_or(self.blocks[entry.index()].insts.len());
        self.attach_inst(entry, idx, v);
        v
    }

    /// Convenience: inserts a copy of `src` with `origin` into `block` at
    /// `index`, inheriting `src`'s type.
    pub fn insert_copy(
        &mut self,
        block: BlockId,
        index: usize,
        src: Value,
        origin: CopyOrigin,
    ) -> Value {
        let ty = self.value_type(src);
        let v = self.new_inst(InstKind::Copy { src, origin }, ty);
        self.attach_inst(block, index, v);
        v
    }

    /// Iterates `(value, data)` over all attached instructions of `block`.
    pub fn block_insts(&self, b: BlockId) -> impl Iterator<Item = (Value, &InstData)> {
        self.blocks[b.index()].insts.iter().map(move |&v| (v, self.inst(v)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inst::Pred;

    fn sample() -> Function {
        // entry: br c, b1, b2 ; b1: jump b2 ; b2: phi, ret
        let mut f = Function::new("t", vec![("x", Type::Int)], Some(Type::Int));
        let entry = f.entry();
        let b1 = f.add_block();
        let b2 = f.add_block();
        let x = f.param_value(0);
        let c0 = f.add_const(0);
        let c = f.append_inst(
            entry,
            InstKind::Cmp { pred: Pred::Lt, lhs: x, rhs: c0 },
            Some(Type::Int),
        );
        f.append_inst(entry, InstKind::Br { cond: c, then_bb: b1, else_bb: b2 }, None);
        f.append_inst(b1, InstKind::Jump(b2), None);
        let phi = f.append_inst(
            b2,
            InstKind::Phi { incomings: vec![(entry, c0), (b1, x)] },
            Some(Type::Int),
        );
        f.append_inst(b2, InstKind::Ret(Some(phi)), None);
        f
    }

    #[test]
    fn entry_is_block_zero_and_params_materialise() {
        let f = sample();
        assert_eq!(f.entry().index(), 0);
        assert!(matches!(f.inst(f.param_value(0)).kind, InstKind::Param(0)));
        assert_eq!(f.value_type(f.param_value(0)), Some(Type::Int));
    }

    #[test]
    fn terminators_and_successors() {
        let f = sample();
        assert_eq!(f.successors(f.entry()).len(), 2);
        assert_eq!(f.successors(BlockId::from_index(2)), vec![]);
    }

    #[test]
    fn split_edge_reroutes_phi() {
        let mut f = sample();
        let entry = f.entry();
        let b2 = BlockId::from_index(2);
        let mid = f.split_edge(entry, b2);
        assert_eq!(f.successors(mid), vec![b2]);
        assert!(f.successors(entry).contains(&mid));
        assert!(!f.successors(entry).contains(&b2));
        // The phi in b2 must now name `mid` as an incoming block.
        let phi = f.block(b2).insts[0];
        let mut blocks = vec![];
        if let InstKind::Phi { incomings } = &f.inst(phi).kind {
            for (b, _) in incomings {
                blocks.push(*b);
            }
        }
        assert!(blocks.contains(&mid));
        assert!(!blocks.contains(&entry));
    }

    #[test]
    fn positions_reflect_block_order() {
        let f = sample();
        let pos = f.positions();
        let entry_insts = &f.block(f.entry()).insts;
        for w in entry_insts.windows(2) {
            assert!(pos[w[0].index()] < pos[w[1].index()]);
        }
    }

    #[test]
    fn consts_stay_in_prefix() {
        let mut f = sample();
        let c = f.add_const(42);
        let entry = f.entry();
        let idx = f.block(entry).insts.iter().position(|&v| v == c).unwrap();
        // Must come before the cmp (a non-const, non-param instruction).
        let cmp_idx = f
            .block(entry)
            .insts
            .iter()
            .position(|&v| matches!(f.inst(v).kind, InstKind::Cmp { .. }))
            .unwrap();
        assert!(idx < cmp_idx);
    }

    #[test]
    fn first_non_phi_skips_phi_prefix() {
        let f = sample();
        let b2 = BlockId::from_index(2);
        assert_eq!(f.block(b2).first_non_phi(&f), 1);
        assert_eq!(f.block(f.entry()).first_non_phi(&f), 0);
    }
}
