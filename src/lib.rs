//! Facade crate re-exporting the sraa public API.
pub use sraa_alias as alias;
pub use sraa_core as lt;
pub use sraa_essa as essa;
pub use sraa_ir as ir;
pub use sraa_minic as minic;
pub use sraa_opt as opt;
pub use sraa_pdg as pdg;
pub use sraa_pentagon as pentagon;
pub use sraa_range as range;
pub use sraa_serve as serve;
pub use sraa_synth as synth;
