//! Stable content fingerprints of function bodies.
//!
//! The incremental summary engine (`sraa-core::persist`) keys its
//! persistent cache by a hash of everything a function's summary can
//! depend on. The per-body half of that key lives here:
//! [`body_fingerprint`] folds a function's signature, block structure and
//! instruction stream into one 64-bit [FNV-1a] value.
//!
//! Two properties matter more than hash quality:
//!
//! * **Determinism across runs, machines and endiannesses.** Every
//!   multi-byte field is fed to the hasher in little-endian byte order via
//!   [`Fnv64`]'s typed writers; nothing iterates a hash map. The committed
//!   golden fixture in `tests/incremental.rs` pins the value — changing
//!   the fingerprint scheme is a cache-format break and must bump
//!   `sraa_core::persist::FORMAT_VERSION`.
//! * **Stability under unrelated edits.** Callees are hashed by *name*,
//!   not [`FuncId`], so editing one function does not perturb the
//!   fingerprints of untouched ones even if ids were ever renumbered.
//!   Function and parameter *names* are excluded for the same reason —
//!   the analysis never reads them. (A function's own name is the cache
//!   *lookup key* instead; see `sraa-core::persist`.)
//!
//! [FNV-1a]: https://en.wikipedia.org/wiki/Fowler%E2%80%93Noll%E2%80%93Vo_hash_function

use crate::ids::FuncId;
use crate::inst::{CopyOrigin, InstKind};
use crate::module::Module;
use crate::types::Type;

/// Incremental FNV-1a hasher over explicit little-endian encodings.
///
/// Deliberately *not* [`std::hash::Hasher`]: the std trait hashes
/// platform-dependent `usize`s and makes no cross-version stability
/// promise, both of which would silently poison an on-disk cache.
#[derive(Clone, Copy, Debug)]
pub struct Fnv64(u64);

impl Fnv64 {
    const OFFSET_BASIS: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;

    /// A fresh hasher at the FNV-1a offset basis.
    pub fn new() -> Self {
        Fnv64(Self::OFFSET_BASIS)
    }

    /// Folds raw bytes into the state.
    pub fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 = (self.0 ^ u64::from(b)).wrapping_mul(Self::PRIME);
        }
    }

    /// Folds one byte.
    pub fn write_u8(&mut self, v: u8) {
        self.write(&[v]);
    }

    /// Folds a `u32` in little-endian byte order.
    pub fn write_u32(&mut self, v: u32) {
        self.write(&v.to_le_bytes());
    }

    /// Folds a `u64` in little-endian byte order.
    pub fn write_u64(&mut self, v: u64) {
        self.write(&v.to_le_bytes());
    }

    /// Folds an `i64` in little-endian byte order.
    pub fn write_i64(&mut self, v: i64) {
        self.write(&v.to_le_bytes());
    }

    /// Folds a length-prefixed string.
    pub fn write_str(&mut self, s: &str) {
        self.write_u32(s.len() as u32);
        self.write(s.as_bytes());
    }

    /// The current hash value.
    pub fn finish(self) -> u64 {
        self.0
    }
}

impl Default for Fnv64 {
    fn default() -> Self {
        Self::new()
    }
}

fn write_type(h: &mut Fnv64, ty: Type) {
    match ty {
        Type::Int => h.write_u8(0),
        Type::Ptr(depth) => {
            h.write_u8(1);
            h.write_u8(depth);
        }
    }
}

fn write_type_opt(h: &mut Fnv64, ty: Option<Type>) {
    match ty {
        None => h.write_u8(0),
        Some(t) => {
            h.write_u8(1);
            write_type(h, t);
        }
    }
}

fn write_origin(h: &mut Fnv64, origin: CopyOrigin) {
    match origin {
        CopyOrigin::Plain => h.write_u8(0),
        CopyOrigin::SigmaTrue { cmp } => {
            h.write_u8(1);
            h.write_u32(cmp.index() as u32);
        }
        CopyOrigin::SigmaFalse { cmp } => {
            h.write_u8(2);
            h.write_u32(cmp.index() as u32);
        }
        CopyOrigin::SubSplit { sub } => {
            h.write_u8(3);
            h.write_u32(sub.index() as u32);
        }
    }
}

/// Content fingerprint of one function body (signature, blocks, attached
/// instruction stream). Everything the strict-inequality analysis reads
/// from the function is covered; names are not (see the module docs).
pub fn body_fingerprint(module: &Module, fid: FuncId) -> u64 {
    let f = module.function(fid);
    let mut h = Fnv64::new();

    h.write_u32(f.params.len() as u32);
    for (_, ty) in &f.params {
        write_type(&mut h, *ty);
    }
    write_type_opt(&mut h, f.ret_ty);

    h.write_u32(f.num_blocks() as u32);
    for b in f.block_ids() {
        h.write_u32(f.block(b).insts.len() as u32);
        for (v, data) in f.block_insts(b) {
            h.write_u32(v.index() as u32);
            write_type_opt(&mut h, data.ty);
            match &data.kind {
                InstKind::Const(c) => {
                    h.write_u8(0);
                    h.write_i64(*c);
                }
                InstKind::Param(i) => {
                    h.write_u8(1);
                    h.write_u32(*i);
                }
                InstKind::Binary { op, lhs, rhs } => {
                    h.write_u8(2);
                    h.write_u8(*op as u8);
                    h.write_u32(lhs.index() as u32);
                    h.write_u32(rhs.index() as u32);
                }
                InstKind::Cmp { pred, lhs, rhs } => {
                    h.write_u8(3);
                    h.write_u8(*pred as u8);
                    h.write_u32(lhs.index() as u32);
                    h.write_u32(rhs.index() as u32);
                }
                InstKind::Phi { incomings } => {
                    h.write_u8(4);
                    h.write_u32(incomings.len() as u32);
                    for (bb, x) in incomings {
                        h.write_u32(bb.index() as u32);
                        h.write_u32(x.index() as u32);
                    }
                }
                InstKind::Copy { src, origin } => {
                    h.write_u8(5);
                    h.write_u32(src.index() as u32);
                    write_origin(&mut h, *origin);
                }
                InstKind::Alloca { count } => {
                    h.write_u8(6);
                    h.write_u32(count.index() as u32);
                }
                InstKind::Malloc { count } => {
                    h.write_u8(7);
                    h.write_u32(count.index() as u32);
                }
                InstKind::GlobalAddr(g) => {
                    // Globals are hashed by name and layout so a changed
                    // array size invalidates every function touching it.
                    let global = module.global(*g);
                    h.write_u8(8);
                    h.write_str(&global.name);
                    write_type(&mut h, global.elem_ty);
                    h.write_u32(global.count);
                }
                InstKind::Gep { base, offset } => {
                    h.write_u8(9);
                    h.write_u32(base.index() as u32);
                    h.write_u32(offset.index() as u32);
                }
                InstKind::Load { ptr } => {
                    h.write_u8(10);
                    h.write_u32(ptr.index() as u32);
                }
                InstKind::Store { ptr, value } => {
                    h.write_u8(11);
                    h.write_u32(ptr.index() as u32);
                    h.write_u32(value.index() as u32);
                }
                InstKind::Call { callee, args } => {
                    // By name, not FuncId: renumbering elsewhere in the
                    // module must not invalidate this body.
                    h.write_u8(12);
                    h.write_str(&module.function(*callee).name);
                    h.write_u32(args.len() as u32);
                    for a in args {
                        h.write_u32(a.index() as u32);
                    }
                }
                InstKind::Opaque => h.write_u8(13),
                InstKind::Br { cond, then_bb, else_bb } => {
                    h.write_u8(14);
                    h.write_u32(cond.index() as u32);
                    h.write_u32(then_bb.index() as u32);
                    h.write_u32(else_bb.index() as u32);
                }
                InstKind::Jump(bb) => {
                    h.write_u8(15);
                    h.write_u32(bb.index() as u32);
                }
                InstKind::Ret(v) => {
                    h.write_u8(16);
                    match v {
                        None => h.write_u8(0),
                        Some(x) => {
                            h.write_u8(1);
                            h.write_u32(x.index() as u32);
                        }
                    }
                }
            }
        }
    }
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::function::Function;

    fn two_fn_module(ret_const: i64) -> Module {
        let mut m = Module::new();
        let g = m.declare_function("g", vec![("x", Type::Int)], Some(Type::Int));
        let f = m.declare_function("f", vec![], Some(Type::Int));
        {
            let gf: &mut Function = m.function_mut(g);
            let x = gf.param_value(0);
            let c = gf.add_const(ret_const);
            let entry = gf.entry();
            let sum = gf.append_inst(
                entry,
                InstKind::Binary { op: crate::BinOp::Add, lhs: x, rhs: c },
                Some(Type::Int),
            );
            gf.append_inst(entry, InstKind::Ret(Some(sum)), None);
        }
        {
            let ff: &mut Function = m.function_mut(f);
            let entry = ff.entry();
            let c = ff.add_const(3);
            let r =
                ff.append_inst(entry, InstKind::Call { callee: g, args: vec![c] }, Some(Type::Int));
            ff.append_inst(entry, InstKind::Ret(Some(r)), None);
        }
        m
    }

    #[test]
    fn identical_bodies_hash_identically() {
        let a = two_fn_module(1);
        let b = two_fn_module(1);
        for (fid, _) in a.functions() {
            assert_eq!(body_fingerprint(&a, fid), body_fingerprint(&b, fid));
        }
    }

    #[test]
    fn a_changed_constant_changes_only_that_body() {
        let a = two_fn_module(1);
        let b = two_fn_module(2);
        let g = a.function_by_name("g").unwrap();
        let f = a.function_by_name("f").unwrap();
        assert_ne!(body_fingerprint(&a, g), body_fingerprint(&b, g));
        // The caller's *body* is untouched — invalidation through the call
        // edge is the summary key's job (sraa-core::persist), not the
        // body fingerprint's.
        assert_eq!(body_fingerprint(&a, f), body_fingerprint(&b, f));
    }

    #[test]
    fn fnv64_is_byte_order_explicit() {
        let mut a = Fnv64::new();
        a.write_u32(0x0102_0304);
        let mut b = Fnv64::new();
        b.write(&[0x04, 0x03, 0x02, 0x01]);
        assert_eq!(a.finish(), b.finish(), "u32s must be folded little-endian");
        assert_ne!(Fnv64::new().finish(), a.finish());
    }

    #[test]
    fn distinct_kinds_with_equal_operands_do_not_collide() {
        let mk = |load: bool| {
            let mut m = Module::new();
            let f = m.declare_function("f", vec![("p", Type::Ptr(1))], None);
            let func = m.function_mut(f);
            let p = func.param_value(0);
            let entry = func.entry();
            if load {
                func.append_inst(entry, InstKind::Load { ptr: p }, Some(Type::Int));
            } else {
                func.append_inst(entry, InstKind::Alloca { count: p }, Some(Type::Ptr(1)));
            }
            func.append_inst(entry, InstKind::Ret(None), None);
            m
        };
        let (a, b) = (mk(true), mk(false));
        let f = a.function_by_name("f").unwrap();
        assert_ne!(body_fingerprint(&a, f), body_fingerprint(&b, f));
    }
}
