//! Daemon-lifetime counters: connections, queries, cache/store outcomes
//! and query-latency percentiles.
//!
//! Everything is lock-free atomics except the latency reservoir, which is
//! a fixed-capacity `Mutex<Reservoir>` — one push per query, read only by
//! `stats` requests and the shutdown report, so contention is negligible
//! next to the socket round trip it measures. Lock acquisition recovers
//! from poisoning (`into_inner`): the guarded state is a plain vector
//! that is never left half-updated, and one panicking connection thread
//! must not take the whole daemon's statistics down with it.

use crate::protocol::{obj, Json};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Capacity of the latency reservoir: enough for faithful p50/p99 over
/// any realistic session. Power of two, so the replacement slot is a
/// mask. Below the cap every sample is retained (percentiles are exact);
/// at the cap the reservoir stays at this size forever — a long-lived
/// daemon's memory no longer grows with query count.
const MAX_LATENCIES: usize = 1 << 16;

/// Replacement stride once the reservoir is full (the 64-bit golden
/// ratio; any odd constant works). `seen * STRIDE mod MAX_LATENCIES`
/// walks every slot exactly once per `MAX_LATENCIES` overwrites — a
/// deterministic, `rand`-free schedule that spreads replacements evenly
/// across the reservoir instead of favouring recent or early slots.
const STRIDE: u64 = 0x9E37_79B9_7F4A_7C15;

/// Fixed-capacity latency sample set with deterministic stride-based
/// replacement. Not a statistically uniform reservoir (no randomness by
/// design — daemon output stays reproducible); the overwrite schedule
/// cycles through all slots, so retained samples always span the whole
/// session with a bias-free slot-replacement frequency.
#[derive(Debug, Default)]
struct Reservoir {
    samples: Vec<u64>,
    /// Total samples ever offered (`≥ samples.len()`).
    seen: u64,
}

impl Reservoir {
    fn record(&mut self, us: u64) {
        if self.samples.len() < MAX_LATENCIES {
            self.samples.push(us);
        } else {
            let slot = (self.seen.wrapping_mul(STRIDE) as usize) & (MAX_LATENCIES - 1);
            self.samples[slot] = us;
        }
        self.seen += 1;
    }
}

/// Counters for one daemon lifetime. Shared by reference across every
/// connection thread; all methods take `&self`.
#[derive(Debug, Default)]
pub struct ServeStats {
    /// Accepted connections.
    pub connections: AtomicU64,
    /// Frames received (including malformed ones).
    pub frames: AtomicU64,
    /// Successfully answered query requests (`no-alias`, `lt`, `eval`,
    /// `pairs`, `stats`).
    pub queries: AtomicU64,
    /// Successful module uploads.
    pub uploads: AtomicU64,
    /// Typed error replies sent.
    pub errors: AtomicU64,
    /// Summary-cache hits accumulated over every upload.
    pub cache_hits: AtomicU64,
    /// Summary-cache misses accumulated over every upload.
    pub cache_misses: AtomicU64,
    /// Summary-cache invalidations accumulated over every upload.
    pub cache_invalidated: AtomicU64,
    /// Shared-store hits accumulated over every upload (0 without
    /// `--shared-store`).
    pub store_hits: AtomicU64,
    /// Shared-store misses accumulated over every upload.
    pub store_misses: AtomicU64,
    /// Summaries published into the shared store over every upload.
    pub store_published: AtomicU64,
    /// Connection-thread panics caught and absorbed by the accept loop
    /// (the daemon keeps serving; see `Server::run`).
    pub panics: AtomicU64,
    latencies_us: Mutex<Reservoir>,
}

impl ServeStats {
    /// Records one query's wall-clock latency.
    pub fn record_latency(&self, us: u64) {
        self.latencies_us.lock().unwrap_or_else(|e| e.into_inner()).record(us);
    }

    /// Latency samples currently retained (capped; see [`ServeStats`]).
    pub fn latency_samples(&self) -> usize {
        self.latencies_us.lock().unwrap_or_else(|e| e.into_inner()).samples.len()
    }

    /// Nearest-rank percentiles over the retained query latencies:
    /// `(p50, p99)` in microseconds, zeros when nothing was recorded.
    /// Exact whenever fewer than the reservoir capacity have been
    /// recorded; estimated over the deterministic sample set beyond it.
    pub fn latency_percentiles(&self) -> (u64, u64) {
        let mut l = self.latencies_us.lock().unwrap_or_else(|e| e.into_inner()).samples.clone();
        if l.is_empty() {
            return (0, 0);
        }
        l.sort_unstable();
        let rank = |p: f64| l[((p * l.len() as f64).ceil() as usize).clamp(1, l.len()) - 1];
        (rank(0.50), rank(0.99))
    }

    /// The `stats` reply body (also reused by the shutdown report).
    pub fn snapshot(&self, modules: usize) -> Json {
        let (p50, p99) = self.latency_percentiles();
        let n = |a: &AtomicU64| Json::Num(a.load(Ordering::Relaxed) as i64);
        obj([
            ("ok", Json::Bool(true)),
            ("modules", Json::Num(modules as i64)),
            ("connections", n(&self.connections)),
            ("frames", n(&self.frames)),
            ("queries", n(&self.queries)),
            ("uploads", n(&self.uploads)),
            ("errors", n(&self.errors)),
            ("panics", n(&self.panics)),
            ("cache_hits", n(&self.cache_hits)),
            ("cache_misses", n(&self.cache_misses)),
            ("cache_invalidated", n(&self.cache_invalidated)),
            ("store_hits", n(&self.store_hits)),
            ("store_misses", n(&self.store_misses)),
            ("store_published", n(&self.store_published)),
            ("p50_us", Json::Num(p50 as i64)),
            ("p99_us", Json::Num(p99 as i64)),
        ])
    }
}

impl std::fmt::Display for ServeStats {
    /// The one-line shutdown report (`# serve: …`), printed to stderr by
    /// the CLI on graceful shutdown.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let (p50, p99) = self.latency_percentiles();
        let g = |a: &AtomicU64| a.load(Ordering::Relaxed);
        write!(
            f,
            "# serve: {} connection(s), {} upload(s), {} query(s), {} error(s), \
             cache {} hit(s)/{} miss(es)/{} invalidated, \
             store {} hit(s)/{} miss(es)/{} published, {} panic(s), \
             p50 {p50}us, p99 {p99}us",
            g(&self.connections),
            g(&self.uploads),
            g(&self.queries),
            g(&self.errors),
            g(&self.cache_hits),
            g(&self.cache_misses),
            g(&self.cache_invalidated),
            g(&self.store_hits),
            g(&self.store_misses),
            g(&self.store_published),
            g(&self.panics),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentiles_are_nearest_rank_and_exact_below_the_cap() {
        let s = ServeStats::default();
        assert_eq!(s.latency_percentiles(), (0, 0));
        for us in 1..=100 {
            s.record_latency(us);
        }
        assert_eq!(s.latency_percentiles(), (50, 99));
        assert_eq!(s.latency_samples(), 100, "below the cap every sample is retained");
        let one = ServeStats::default();
        one.record_latency(7);
        assert_eq!(one.latency_percentiles(), (7, 7));
    }

    /// The regression for the unbounded-latency-Vec leak: memory stops
    /// growing at the cap, yet recording continues (the old code simply
    /// dropped every sample after the cap, freezing the percentiles for
    /// the rest of the daemon's life).
    #[test]
    fn reservoir_is_bounded_and_keeps_absorbing_samples() {
        let s = ServeStats::default();
        for _ in 0..MAX_LATENCIES {
            s.record_latency(1);
        }
        assert_eq!(s.latency_samples(), MAX_LATENCIES);
        assert_eq!(s.latency_percentiles(), (1, 1));
        // Another full cycle of overwrites replaces every slot exactly
        // once (odd stride × power-of-two capacity ⇒ full period), so
        // the percentiles track the *new* regime instead of freezing.
        for _ in 0..MAX_LATENCIES {
            s.record_latency(9);
        }
        assert_eq!(s.latency_samples(), MAX_LATENCIES, "capacity never grows past the cap");
        assert_eq!(s.latency_percentiles(), (9, 9), "overwrites must reach every slot");
    }

    #[test]
    fn stride_replacement_visits_every_slot_once_per_period() {
        let mut seen = std::collections::HashSet::new();
        for i in 0..MAX_LATENCIES as u64 {
            seen.insert((i.wrapping_mul(STRIDE) as usize) & (MAX_LATENCIES - 1));
        }
        assert_eq!(seen.len(), MAX_LATENCIES, "odd stride must permute the slots");
    }

    #[test]
    fn snapshot_and_display_report_every_counter() {
        let s = ServeStats::default();
        s.connections.store(2, Ordering::Relaxed);
        s.queries.store(5, Ordering::Relaxed);
        s.cache_hits.store(3, Ordering::Relaxed);
        s.store_hits.store(4, Ordering::Relaxed);
        s.store_published.store(6, Ordering::Relaxed);
        s.panics.store(1, Ordering::Relaxed);
        s.record_latency(10);
        let snap = s.snapshot(1);
        assert!(snap.is_ok());
        assert_eq!(snap.num_field("modules"), Some(1));
        assert_eq!(snap.num_field("connections"), Some(2));
        assert_eq!(snap.num_field("queries"), Some(5));
        assert_eq!(snap.num_field("cache_hits"), Some(3));
        assert_eq!(snap.num_field("store_hits"), Some(4));
        assert_eq!(snap.num_field("store_misses"), Some(0));
        assert_eq!(snap.num_field("store_published"), Some(6));
        assert_eq!(snap.num_field("panics"), Some(1));
        assert_eq!(snap.num_field("p50_us"), Some(10));
        let line = format!("{s}");
        assert!(line.starts_with("# serve: "), "{line}");
        assert!(line.contains("2 connection(s)"), "{line}");
        assert!(line.contains("3 hit(s)"), "{line}");
        assert!(line.contains("store 4 hit(s)"), "{line}");
        assert!(line.contains("1 panic(s)"), "{line}");
    }

    /// The poisoned-lock regression: a thread that panics while holding
    /// the reservoir lock must not take latency tracking down with it.
    #[test]
    fn poisoned_reservoir_lock_recovers() {
        let s = ServeStats::default();
        s.record_latency(5);
        let _ = std::thread::scope(|scope| {
            scope
                .spawn(|| {
                    let _guard = s.latencies_us.lock().unwrap();
                    panic!("deliberate: poison the latency lock");
                })
                .join()
        });
        s.record_latency(7); // would panic before the fix
        assert_eq!(s.latency_samples(), 2);
        assert_ne!(s.latency_percentiles(), (0, 0));
    }
}
