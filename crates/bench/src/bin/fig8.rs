//! Figure 8 — effectiveness of LT vs BA on the synthetic 100-benchmark
//! test suite: per benchmark, the total number of alias queries and the
//! number answered "no-alias" by LT, BA and BA+LT.
//!
//! Paper headline checks printed at the end: LT alone rarely beats BA, but
//! BA+LT improves on BA suite-wide (the paper reports +9.49% no-alias
//! answers over its corpus), with LT ≫ BA on array-arithmetic-heavy
//! members.

use sraa_bench::{suite_n, Prepared};

fn main() {
    let suite = sraa_synth::test_suite(suite_n());
    println!("{:<22} {:>12} {:>10} {:>10} {:>10}", "benchmark", "queries", "LT", "BA", "BA+LT");
    let mut tot_q = 0u64;
    let mut tot_lt = 0u64;
    let mut tot_ba = 0u64;
    let mut tot_both = 0u64;
    for w in &suite {
        let p = Prepared::new(w);
        let out = p.eval(&[&p.lt, &p.ba, &p.ba_plus_lt()]);
        let (lt, ba, both) = (&out[0], &out[1], &out[2]);
        println!(
            "{:<22} {:>12} {:>10} {:>10} {:>10}",
            p.name,
            lt.total(),
            lt.no_alias,
            ba.no_alias,
            both.no_alias
        );
        tot_q += lt.total();
        tot_lt += lt.no_alias;
        tot_ba += ba.no_alias;
        tot_both += both.no_alias;
    }
    println!();
    println!("suite totals: queries={tot_q} LT={tot_lt} BA={tot_ba} BA+LT={tot_both}");
    let gain = (tot_both as f64 - tot_ba as f64) / tot_ba.max(1) as f64 * 100.0;
    println!(
        "LT increases BA's no-alias answers by {gain:.2}% \
         (paper: +9.49% on the LLVM test suite)"
    );
}
