//! `sraa-range` — interval range analysis for the `sraa` SSA IR.
//!
//! The paper's less-than analysis (its Section 3.2) "uses range analysis to
//! know that one, or the two, terms of an addition are negative": given
//! `x1 = x2 + x3` with `R(x3) = [l, u]`, the instruction is treated as an
//! addition when `l > 0`, a subtraction when `u < 0`, and generates no
//! constraint otherwise. This crate provides that `R(·)`, in the style the
//! paper cites (Cousot intervals, computed sparsely on e-SSA form with the
//! branch refinements of Rodrigues et al.).
//!
//! # Example
//!
//! ```
//! use sraa_minic::compile;
//!
//! let m = compile("int f(int n) { int s = 0; for (int i = 0; i < n; i++) s += 1; return s; }")
//!     .unwrap();
//! let ranges = sraa_range::analyze(&m);
//! let f = m.function_by_name("f").unwrap();
//! // Every value has an interval; constants are singletons.
//! for v in m.function(f).value_ids() {
//!     let _ = ranges.range(f, v);
//! }
//! ```

pub mod analysis;
pub mod interval;

pub use analysis::{analyze, analyze_with, RangeAnalysis, RangeConfig};
pub use interval::{Bound, Interval};
