//! SCC-condensation constraint solver — the paper's §6 future work.
//!
//! The paper closes with: *"Currently, our research prototype can handle
//! large programs, but its runtime is not practical … We believe that
//! better algorithms can improve this scenario substantially. The design
//! of such algorithms is a problem that we leave open."* This module is
//! our answer to that open problem. It computes exactly the same greatest
//! fixpoint as [`solve`](crate::solve) (differential- and property-tested
//! in `tests/` and below) with three structural improvements:
//!
//! 1. **Topological scheduling.** The constraint dependency graph is
//!    condensed into strongly connected components (iterative Tarjan, so
//!    deep chains cannot overflow the stack) and solved dependencies-
//!    first. Acyclic regions — the vast majority of real systems, see the
//!    Figure 11 corpus — are then solved with *exactly one* evaluation
//!    per constraint, where a FIFO worklist may revisit.
//! 2. **Union-cycle short-circuit.** Starting from ⊤, a cyclic component
//!    whose internal edges are all `Union`/`Copy` can never descend:
//!    every member reads another member, `{x} ∪ ⊤ = ⊤`, and the greatest
//!    fixpoint of the component is ⊤ (the paper's freeze rule then demotes
//!    it to ∅). Descent enters cycles only through a φ (`Inter`), whose
//!    identity-of-∩ treatment of ⊤ lets a grounded external source break
//!    the cycle. The fast solver classifies each component once and skips
//!    the iteration entirely for union-only cycles.
//! 3. **Sorted-vector sets with sharing.** `LT` sets are immutable sorted
//!    `Rc<[u32]>` slices: unions are k-way merges, intersections are
//!    linear merges, `Copy` constraints and stabilised cycle members
//!    share one allocation instead of cloning hash sets.
//!
//! The `solvers` Criterion bench group (`crates/bench/benches/solver.rs`)
//! measures the effect; `EXPERIMENTS.md` records the observed speed-ups.

use crate::constraints::Constraint;
use crate::solver::{LtSet, Solution, SolveStats};
use std::collections::HashSet;
use std::rc::Rc;

/// A less-than set in the fast solver: `None` is the symbolic ⊤, and an
/// explicit set is a sorted, deduplicated, shareable slice.
type Set = Option<Rc<[u32]>>;

/// Counters describing one [`solve_fast`] run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FastStats {
    /// Number of constraints solved.
    pub constraints: usize,
    /// Number of variables in the system.
    pub variables: usize,
    /// Strongly connected components in the constraint dependency graph.
    pub sccs: usize,
    /// Components with more than one constraint (or a self-loop).
    pub cyclic_sccs: usize,
    /// Cyclic components short-circuited as union-only (stay ⊤, frozen ∅).
    pub union_cycles: usize,
    /// Constraint evaluations until the fixpoint — the analogue of the
    /// baseline's worklist pops. Exactly one per constraint on acyclic
    /// systems; ≤ pops on every corpus workload (`tests/solvers.rs`),
    /// though a pathological cycle can invert the comparison.
    pub evals: u64,
    /// Variables still ⊤ at the fixpoint, demoted to ∅ by the freeze rule.
    pub frozen_tops: usize,
}

impl FastStats {
    /// Evaluations per constraint — comparable with
    /// [`SolveStats::pops_per_constraint`].
    pub fn evals_per_constraint(&self) -> f64 {
        if self.constraints == 0 {
            0.0
        } else {
            self.evals as f64 / self.constraints as f64
        }
    }
}

/// The solved less-than relation, as produced by [`solve_fast`].
///
/// Query-compatible with [`Solution`]: `less_than`, `lt_set` and
/// `size_histogram` answer identically on the same constraint system
/// (asserted by the differential tests in this module and in
/// `tests/fast_solver.rs`).
#[derive(Clone, Debug)]
pub struct FastSolution {
    sets: Vec<Rc<[u32]>>,
    /// Solver statistics.
    pub stats: FastStats,
}

impl FastSolution {
    /// Whether variable `a` is strictly less than `b` (i.e. `a ∈ LT(b)`).
    pub fn less_than(&self, a: usize, b: usize) -> bool {
        self.sets.get(b).is_some_and(|s| s.binary_search(&(a as u32)).is_ok())
    }

    /// The `LT` set of `x` as a sorted vector of ids.
    pub fn lt_set(&self, x: usize) -> Vec<usize> {
        self.sets[x].iter().map(|&i| i as usize).collect()
    }

    /// Histogram entry: how many variables have an `LT` set of size `n`?
    pub fn size_histogram(&self) -> Vec<(usize, usize)> {
        let mut counts: std::collections::BTreeMap<usize, usize> = Default::default();
        for s in &self.sets {
            *counts.entry(s.len()).or_default() += 1;
        }
        counts.into_iter().collect()
    }

    /// Converts into the baseline [`Solution`] representation (hash sets),
    /// for callers written against the baseline API. The conversion
    /// materialises every set, so it costs what the baseline solver would
    /// have spent on its output — use the native queries when possible.
    pub fn into_solution(self) -> Solution {
        let stats = SolveStats {
            constraints: self.stats.constraints,
            variables: self.stats.variables,
            pops: self.stats.evals,
            frozen_tops: self.stats.frozen_tops,
        };
        let sets = self
            .sets
            .into_iter()
            .map(|s| LtSet::Set(s.iter().copied().collect::<HashSet<u32>>()))
            .collect();
        Solution::from_parts(sets, stats)
    }
}

/// Solves the constraint system over `num_vars` variables by SCC
/// condensation. Produces the same fixpoint as [`solve`](crate::solve).
pub fn solve_fast(constraints: &[Constraint], num_vars: usize) -> FastSolution {
    let mut stats =
        FastStats { constraints: constraints.len(), variables: num_vars, ..Default::default() };

    // defining[v] = the constraint that defines v (at most one; constraint
    // generation emits one constraint per defined variable).
    let mut defining: Vec<Option<u32>> = vec![None; num_vars];
    for (ci, c) in constraints.iter().enumerate() {
        debug_assert!(
            defining[c.defined()].is_none(),
            "variable {} defined by two constraints",
            c.defined()
        );
        defining[c.defined()] = Some(ci as u32);
    }

    // Dependency edges: constraint ci depends on the constraints defining
    // the variables it reads.
    let deps: Vec<Vec<u32>> = constraints
        .iter()
        .map(|c| c.reads().iter().filter_map(|&r| defining[r]).collect())
        .collect();

    let sccs = tarjan_sccs(&deps);
    stats.sccs = sccs.len();

    let mut sets: Vec<Set> = vec![None; num_vars];

    // Tarjan emits components dependencies-first, so by the time a
    // component is processed every external read is final.
    for comp in &sccs {
        let cyclic = comp.len() > 1 || deps[comp[0] as usize].contains(&comp[0]);
        if !cyclic {
            let ci = comp[0] as usize;
            stats.evals += 1;
            let c = &constraints[ci];
            sets[c.defined()] = eval(c, &sets);
            continue;
        }
        stats.cyclic_sccs += 1;

        if comp.iter().all(|&ci| {
            matches!(constraints[ci as usize], Constraint::Union { .. } | Constraint::Copy { .. })
        }) {
            // Union-only cycle: stays ⊤ (see module docs). Nothing to do —
            // the defined variables are already ⊤ and will be frozen.
            stats.union_cycles += 1;
            continue;
        }

        solve_component(constraints, comp, &defining, &mut sets, &mut stats);
    }

    // Freeze: demote residual ⊤ to ∅, exactly like the baseline solver.
    let empty: Rc<[u32]> = Rc::from(Vec::new());
    let sets = sets
        .into_iter()
        .map(|s| {
            s.unwrap_or_else(|| {
                stats.frozen_tops += 1;
                Rc::clone(&empty)
            })
        })
        .collect();

    FastSolution { sets, stats }
}

/// Local worklist iteration restricted to one cyclic component. External
/// dependencies are final; members start at ⊤ and descend to the local
/// greatest fixpoint — chaotic iteration over a sub-system, which composed
/// in topological order yields the global greatest fixpoint.
fn solve_component(
    constraints: &[Constraint],
    comp: &[u32],
    defining: &[Option<u32>],
    sets: &mut [Set],
    stats: &mut FastStats,
) {
    let members: HashSet<u32> = comp.iter().copied().collect();
    // dependents within the component: defining constraint → readers.
    let mut dependents: std::collections::HashMap<u32, Vec<u32>> = Default::default();
    for &ci in comp {
        for &r in constraints[ci as usize].reads() {
            if let Some(d) = defining[r] {
                if members.contains(&d) {
                    dependents.entry(d).or_default().push(ci);
                }
            }
        }
    }

    let mut worklist: std::collections::VecDeque<u32> = comp.iter().copied().collect();
    let mut on_list: HashSet<u32> = members.clone();
    while let Some(ci) = worklist.pop_front() {
        on_list.remove(&ci);
        stats.evals += 1;
        let c = &constraints[ci as usize];
        let x = c.defined();
        let new = eval(c, sets);
        if new != sets[x] {
            sets[x] = new;
            for &d in dependents.get(&ci).map(Vec::as_slice).unwrap_or(&[]) {
                if on_list.insert(d) {
                    worklist.push_back(d);
                }
            }
        }
    }
}

fn eval(c: &Constraint, sets: &[Set]) -> Set {
    match c {
        Constraint::Init { .. } => Some(Rc::from(Vec::new())),
        Constraint::Copy { source, .. } => sets[*source].clone(),
        Constraint::Union { elems, sources, .. } => {
            if sources.iter().any(|&s| sets[s].is_none()) {
                return None; // {x} ∪ ⊤ = ⊤
            }
            let mut acc: Vec<u32> = elems.iter().map(|&e| e as u32).collect();
            for &s in sources {
                acc.extend_from_slice(sets[s].as_ref().expect("checked above"));
            }
            acc.sort_unstable();
            acc.dedup();
            Some(Rc::from(acc))
        }
        Constraint::Inter { sources, .. } => {
            // ⊤ is the identity of ∩; intersect the explicit sources,
            // smallest first so the working set only shrinks.
            let mut explicit: Vec<&Rc<[u32]>> =
                sources.iter().filter_map(|&s| sets[s].as_ref()).collect();
            if explicit.is_empty() {
                return None;
            }
            explicit.sort_by_key(|s| s.len());
            let mut acc: Vec<u32> = explicit[0].to_vec();
            for s in &explicit[1..] {
                acc = intersect_sorted(&acc, s);
                if acc.is_empty() {
                    break;
                }
            }
            Some(Rc::from(acc))
        }
    }
}

/// Intersection of two sorted, deduplicated slices by linear merge.
fn intersect_sorted(a: &[u32], b: &[u32]) -> Vec<u32> {
    let mut out = Vec::with_capacity(a.len().min(b.len()));
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                out.push(a[i]);
                i += 1;
                j += 1;
            }
        }
    }
    out
}

/// Iterative Tarjan over the constraint dependency graph (`deps[c]` lists
/// the constraints `c` reads from). Components are emitted dependencies-
/// first — the processing order [`solve_fast`] relies on. Iterative so
/// that chain-shaped systems (tens of thousands of constraints deep)
/// cannot overflow the call stack.
fn tarjan_sccs(deps: &[Vec<u32>]) -> Vec<Vec<u32>> {
    const UNVISITED: u32 = u32::MAX;
    let n = deps.len();
    let mut index = vec![UNVISITED; n];
    let mut lowlink = vec![0u32; n];
    let mut on_stack = vec![false; n];
    let mut stack: Vec<u32> = Vec::new();
    let mut next_index = 0u32;
    let mut sccs: Vec<Vec<u32>> = Vec::new();

    // Explicit DFS frames: (node, next edge position to explore).
    let mut frames: Vec<(u32, usize)> = Vec::new();

    for root in 0..n as u32 {
        if index[root as usize] != UNVISITED {
            continue;
        }
        frames.push((root, 0));
        index[root as usize] = next_index;
        lowlink[root as usize] = next_index;
        next_index += 1;
        stack.push(root);
        on_stack[root as usize] = true;

        while let Some(&mut (v, ref mut ei)) = frames.last_mut() {
            if let Some(&w) = deps[v as usize].get(*ei) {
                *ei += 1;
                if index[w as usize] == UNVISITED {
                    index[w as usize] = next_index;
                    lowlink[w as usize] = next_index;
                    next_index += 1;
                    stack.push(w);
                    on_stack[w as usize] = true;
                    frames.push((w, 0));
                } else if on_stack[w as usize] {
                    lowlink[v as usize] = lowlink[v as usize].min(index[w as usize]);
                }
            } else {
                frames.pop();
                if let Some(&mut (parent, _)) = frames.last_mut() {
                    lowlink[parent as usize] = lowlink[parent as usize].min(lowlink[v as usize]);
                }
                if lowlink[v as usize] == index[v as usize] {
                    let mut comp = Vec::new();
                    loop {
                        let w = stack.pop().expect("tarjan stack underflow");
                        on_stack[w as usize] = false;
                        comp.push(w);
                        if w == v {
                            break;
                        }
                    }
                    sccs.push(comp);
                }
            }
        }
    }
    sccs
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::constraints::Constraint as C;
    use crate::solver::solve;

    /// Asserts both solvers agree on every variable's `LT` set.
    fn assert_agrees(cs: &[C], num_vars: usize) {
        let base = solve(cs, num_vars);
        let fast = solve_fast(cs, num_vars);
        for x in 0..num_vars {
            assert_eq!(base.lt_set(x), fast.lt_set(x), "solvers disagree on LT({x}) over {cs:?}");
        }
        assert_eq!(base.stats.frozen_tops, fast.stats.frozen_tops);
    }

    fn example_3_4() -> Vec<C> {
        vec![
            C::Init { x: 0 },
            C::Union { x: 1, elems: vec![0], sources: vec![0] },
            C::Inter { x: 2, sources: vec![1, 3] },
            C::Union { x: 3, elems: vec![2], sources: vec![2] },
            C::Init { x: 4 },
            C::Union { x: 5, elems: vec![4], sources: vec![2] },
            C::Union { x: 7, elems: vec![9], sources: vec![9, 1] },
            C::Copy { x: 8, source: 1 },
            C::Union { x: 10, elems: vec![], sources: vec![8, 4] },
            C::Copy { x: 9, source: 4 },
            C::Inter { x: 6, sources: vec![3, 9, 4] },
        ]
    }

    #[test]
    fn agrees_on_papers_example() {
        assert_agrees(&example_3_4(), 11);
    }

    #[test]
    fn papers_fixpoint_reproduced_natively() {
        let sol = solve_fast(&example_3_4(), 11);
        assert_eq!(sol.lt_set(3), vec![0, 2], "LT(x3) = {{x0, x2}}");
        assert_eq!(sol.lt_set(7), vec![0, 9], "LT(x1t) = {{x0, x4t}}");
        assert!(sol.less_than(0, 1) && !sol.less_than(1, 0));
    }

    #[test]
    fn agrees_on_chain() {
        let n = 64;
        let mut cs = vec![C::Init { x: 0 }];
        for i in 1..n {
            cs.push(C::Union { x: i, elems: vec![i - 1], sources: vec![i - 1] });
        }
        assert_agrees(&cs, n);
        // Acyclic: exactly one eval per constraint.
        let fast = solve_fast(&cs, n);
        assert_eq!(fast.stats.evals, n as u64);
        assert_eq!(fast.stats.cyclic_sccs, 0);
    }

    #[test]
    fn agrees_on_phi_loop() {
        // i = φ(c, i2); i2 = i + 1 — the canonical induction cycle.
        let cs = vec![
            C::Init { x: 0 },
            C::Inter { x: 1, sources: vec![0, 2] },
            C::Union { x: 2, elems: vec![1], sources: vec![1] },
        ];
        assert_agrees(&cs, 3);
        let fast = solve_fast(&cs, 3);
        assert_eq!(fast.stats.cyclic_sccs, 1);
        assert_eq!(fast.stats.union_cycles, 0);
    }

    #[test]
    fn union_cycle_short_circuits_to_frozen_empty() {
        let cs = vec![
            C::Union { x: 0, elems: vec![1], sources: vec![1] },
            C::Union { x: 1, elems: vec![0], sources: vec![0] },
        ];
        assert_agrees(&cs, 2);
        let fast = solve_fast(&cs, 2);
        assert_eq!(fast.stats.union_cycles, 1);
        assert_eq!(fast.stats.frozen_tops, 2);
        assert_eq!(fast.stats.evals, 0, "no iteration spent on the cycle");
    }

    #[test]
    fn union_cycle_with_external_ground_still_stays_top() {
        // x2/x3 form a union cycle fed by a grounded x1 — ⊤ still wins:
        // each eval unions a member that is ⊤.
        let cs = vec![
            C::Init { x: 0 },
            C::Union { x: 1, elems: vec![0], sources: vec![0] },
            C::Union { x: 2, elems: vec![], sources: vec![1, 3] },
            C::Union { x: 3, elems: vec![], sources: vec![2] },
        ];
        assert_agrees(&cs, 4);
    }

    #[test]
    fn copy_shares_the_allocation() {
        let cs = vec![
            C::Init { x: 0 },
            C::Union { x: 1, elems: vec![0], sources: vec![0] },
            C::Copy { x: 2, source: 1 },
        ];
        let fast = solve_fast(&cs, 3);
        assert!(Rc::ptr_eq(&fast.sets[1], &fast.sets[2]));
    }

    #[test]
    fn self_loop_union_is_cyclic() {
        // x0 = {1} ∪ LT(x0): a self-loop, degenerate union cycle.
        let cs = vec![C::Union { x: 0, elems: vec![1], sources: vec![0] }];
        assert_agrees(&cs, 2);
        let fast = solve_fast(&cs, 2);
        assert_eq!(fast.stats.union_cycles, 1);
    }

    #[test]
    fn nested_loops_and_diamonds() {
        // Two interlocking φ-cycles sharing a grounded entry.
        let cs = vec![
            C::Init { x: 0 },
            C::Inter { x: 1, sources: vec![0, 2, 4] },
            C::Union { x: 2, elems: vec![1], sources: vec![1] },
            C::Inter { x: 3, sources: vec![1, 4] },
            C::Union { x: 4, elems: vec![3], sources: vec![3] },
            C::Union { x: 5, elems: vec![], sources: vec![2, 4] },
        ];
        assert_agrees(&cs, 6);
    }

    #[test]
    fn intersection_of_disjoint_sets_is_empty() {
        let cs = vec![
            C::Init { x: 0 },
            C::Init { x: 1 },
            C::Union { x: 2, elems: vec![0], sources: vec![0] },
            C::Union { x: 3, elems: vec![1], sources: vec![1] },
            C::Inter { x: 4, sources: vec![2, 3] },
        ];
        let fast = solve_fast(&cs, 5);
        assert_eq!(fast.lt_set(4), Vec::<usize>::new());
        assert_agrees(&cs, 5);
    }

    #[test]
    fn into_solution_preserves_queries() {
        let fast = solve_fast(&example_3_4(), 11);
        let expected: Vec<Vec<usize>> = (0..11).map(|x| fast.lt_set(x)).collect();
        let evals = fast.stats.evals;
        let sol = fast.into_solution();
        for (x, want) in expected.iter().enumerate() {
            assert_eq!(&sol.lt_set(x), want);
        }
        assert_eq!(sol.stats.pops, evals);
    }

    #[test]
    fn intersect_sorted_merges() {
        assert_eq!(intersect_sorted(&[1, 3, 5, 7], &[2, 3, 4, 7, 9]), vec![3, 7]);
        assert_eq!(intersect_sorted(&[], &[1]), Vec::<u32>::new());
        assert_eq!(intersect_sorted(&[1, 2], &[3]), Vec::<u32>::new());
    }

    #[test]
    fn tarjan_orders_dependencies_first() {
        // 0 → (nothing); 1 reads 0; 2 reads 1. deps edges point at
        // dependencies, so emission must be [0], [1], [2].
        let deps = vec![vec![], vec![0], vec![1]];
        let sccs = tarjan_sccs(&deps);
        assert_eq!(sccs, vec![vec![0], vec![1], vec![2]]);
    }

    #[test]
    fn tarjan_groups_cycles() {
        // 1 ⇄ 2 cycle, 3 reads the cycle, 0 independent.
        let deps = vec![vec![], vec![2], vec![1], vec![1]];
        let sccs = tarjan_sccs(&deps);
        let cycle = sccs.iter().find(|c| c.len() == 2).expect("cycle component");
        let mut cycle = cycle.clone();
        cycle.sort_unstable();
        assert_eq!(cycle, vec![1, 2]);
        // The 2-cycle must be emitted before node 3 which depends on it.
        let cycle_pos = sccs.iter().position(|c| c.len() == 2).unwrap();
        let three_pos = sccs.iter().position(|c| c == &vec![3]).unwrap();
        assert!(cycle_pos < three_pos);
    }

    #[test]
    fn deep_chain_does_not_overflow_stack() {
        let n = 200_000;
        let mut cs = vec![C::Init { x: 0 }];
        for i in 1..n {
            // Copies, so the closure stays small while the graph is deep.
            cs.push(C::Copy { x: i, source: i - 1 });
        }
        let fast = solve_fast(&cs, n);
        assert_eq!(fast.lt_set(n - 1), Vec::<usize>::new());
        assert_eq!(fast.stats.evals, n as u64);
    }

    #[test]
    fn empty_system() {
        let sol = solve_fast(&[], 0);
        assert_eq!(sol.stats.evals, 0);
        assert_eq!(sol.size_histogram(), Vec::<(usize, usize)>::new());
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        /// A random constraint for variable `x` over `n` variables: any
        /// shape the generator can emit, cycles and dead code included.
        fn constraint_for(x: usize, n: usize) -> impl Strategy<Value = Option<C>> {
            let var = 0..n;
            let vars = proptest::collection::vec(0..n, 1..4);
            prop_oneof![
                1 => Just(None), // undefined variable: stays ⊤, frozen ∅
                2 => Just(Some(C::Init { x })),
                2 => var.prop_map(move |s| Some(C::Copy { x, source: s })),
                4 => (proptest::collection::vec(0..n, 0..3), vars.clone())
                    .prop_map(move |(elems, sources)| {
                        Some(C::Union { x, elems, sources })
                    }),
                3 => vars.prop_map(move |sources| Some(C::Inter { x, sources })),
            ]
        }

        fn systems() -> impl Strategy<Value = (Vec<C>, usize)> {
            (2usize..24).prop_flat_map(|n| {
                (0..n)
                    .map(|x| constraint_for(x, n))
                    .collect::<Vec<_>>()
                    .prop_map(move |cs| (cs.into_iter().flatten().collect::<Vec<C>>(), n))
            })
        }

        proptest! {
            /// The SCC solver computes the same greatest fixpoint as the
            /// paper's worklist solver on arbitrary constraint systems.
            #[test]
            fn fast_solver_agrees_with_baseline((cs, n) in systems()) {
                let base = solve(&cs, n);
                let fast = solve_fast(&cs, n);
                for x in 0..n {
                    prop_assert_eq!(base.lt_set(x), fast.lt_set(x), "LT({})", x);
                }
                prop_assert_eq!(base.stats.frozen_tops, fast.stats.frozen_tops);
            }

            /// On *acyclic* systems the fast solver evaluates every
            /// constraint exactly once — the baseline can never beat
            /// that. (On cyclic systems the bound is empirical, not a
            /// theorem: a lucky FIFO order can occasionally stabilise a
            /// cycle in fewer pops than the local SCC iteration spends;
            /// `tests/solvers.rs` checks the whole evaluation corpus.)
            #[test]
            fn acyclic_systems_take_one_eval_per_constraint(
                (cs, n) in systems()
            ) {
                // Make the system acyclic: constraint for x may only
                // read variables strictly below x.
                let acyclic: Vec<C> = cs
                    .into_iter()
                    .map(|c| {
                        let x = c.defined();
                        match c {
                            C::Init { .. } | C::Copy { .. } if x == 0 => C::Init { x },
                            C::Init { x } => C::Init { x },
                            C::Copy { x, source } => C::Copy { x, source: source % x.max(1) },
                            C::Union { x, elems, sources } if x > 0 => C::Union {
                                x,
                                elems,
                                sources: sources.into_iter().map(|s| s % x).collect(),
                            },
                            C::Inter { x, sources } if x > 0 => C::Inter {
                                x,
                                sources: sources.into_iter().map(|s| s % x).collect(),
                            },
                            other => C::Init { x: other.defined() },
                        }
                    })
                    .collect();
                let base = solve(&acyclic, n);
                let fast = solve_fast(&acyclic, n);
                prop_assert_eq!(fast.stats.evals, acyclic.len() as u64);
                prop_assert!(fast.stats.evals <= base.stats.pops);
                for x in 0..n {
                    prop_assert_eq!(base.lt_set(x), fast.lt_set(x));
                }
            }
        }
    }
}
