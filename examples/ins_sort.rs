//! The paper's Figure 1 (a): insertion sort.
//!
//! Runs the full analysis pipeline over `ins_sort`, queries every pair of
//! memory accesses under BA, LT and BA+LT, prints the verdict matrix, and
//! finally *executes* the program under the IR interpreter to show the
//! code still sorts after the e-SSA transformation.
//!
//! Run with `cargo run --example ins_sort`.

use sraa::alias::{
    AaEval, AliasAnalysis, AliasResult, BasicAliasAnalysis, Combined, StrictInequalityAa,
};
use sraa::ir::{InstKind, Interpreter};

const SOURCE: &str = r#"
void ins_sort(int* v, int N) {
    int i; int j;
    for (i = 0; i < N - 1; i++) {
        for (j = i + 1; j < N; j++) {
            if (v[i] > v[j]) {
                int tmp = v[i];
                v[i] = v[j];
                v[j] = tmp;
            }
        }
    }
}
int main() {
    int v[10];
    for (int k = 0; k < 10; k++) v[k] = (7 * k + 3) % 10;
    ins_sort(v, 10);
    int ok = 1;
    for (int k = 0; k + 1 < 10; k++) if (v[k] > v[k + 1]) ok = 0;
    return ok;
}
"#;

fn main() {
    let mut module = sraa::minic::compile(SOURCE).expect("valid MiniC");
    let lt = StrictInequalityAa::new(&mut module);
    let ba = BasicAliasAnalysis::new(&module);
    let both =
        Combined::new(vec![Box::new(BasicAliasAnalysis::new(&module)), Box::new(lt.clone())]);

    let fid = module.function_by_name("ins_sort").unwrap();
    let f = module.function(fid);
    let mut accesses = Vec::new();
    for b in f.block_ids() {
        for (_, data) in f.block_insts(b) {
            match data.kind {
                InstKind::Load { ptr } => accesses.push(("load", ptr)),
                InstKind::Store { ptr, .. } => accesses.push(("store", ptr)),
                _ => {}
            }
        }
    }
    println!("memory accesses in ins_sort: {}", accesses.len());
    println!("\npairwise verdicts (BA / LT / BA+LT):");
    for (i, &(k1, p1)) in accesses.iter().enumerate() {
        for &(k2, p2) in accesses.iter().skip(i + 1) {
            let v = |aa: &dyn AliasAnalysis| match aa.alias(&module, fid, p1, p2) {
                AliasResult::NoAlias => "no ",
                AliasResult::MayAlias => "may",
                AliasResult::MustAlias => "must",
            };
            println!("  {k1:<5} {p1} vs {k2:<5} {p2}:   {} / {} / {}", v(&ba), v(&lt), v(&both));
        }
    }

    let summaries = AaEval::run(&module, &[&ba, &lt, &both]);
    println!("\naa-eval over the whole module (all pointer pairs):");
    for s in &summaries {
        println!(
            "  {:<6} no-alias {:>4}  may {:>4}  must {:>3}  ({:.1}% no-alias)",
            s.name,
            s.no_alias,
            s.may_alias,
            s.must_alias,
            s.no_alias_rate()
        );
    }

    let result = Interpreter::new(&module).run("main", &[]).expect("runs");
    println!("\nexecution: sorted = {} (steps: {})", result.result == Some(1), result.steps);
    assert_eq!(result.result, Some(1));
}
