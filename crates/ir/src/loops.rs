//! Natural-loop detection.
//!
//! Classic dominator-based loop analysis: a *back edge* is an edge
//! `n → h` whose target dominates its source; the natural loop of `h`
//! is `h` plus every block that reaches some back-edge source `n`
//! without passing through `h`. Loops sharing a header are merged (as
//! in LLVM's `LoopInfo`); distinct headers nest by body inclusion.
//!
//! Consumers in this workspace: loop-invariant code motion
//! (`sraa-opt::licm`) hoists loads to preheaders, and the loop-shaped
//! workload generators assert their CFGs have the intended nesting.

use crate::cfg::Cfg;
use crate::dom::DomTree;
use crate::function::Function;
use crate::ids::BlockId;

/// One natural loop.
#[derive(Clone, Debug)]
pub struct Loop {
    /// The loop header (target of the back edges).
    pub header: BlockId,
    /// Sources of the back edges (`latch → header`).
    pub latches: Vec<BlockId>,
    /// Every block in the loop, header included, unordered.
    pub body: Vec<BlockId>,
    /// Index of the innermost enclosing loop, if any.
    pub parent: Option<usize>,
}

impl Loop {
    /// Whether `b` belongs to the loop.
    pub fn contains(&self, b: BlockId) -> bool {
        self.body.contains(&b)
    }

    /// The unique out-of-loop predecessor of the header, if the loop has
    /// one (the *preheader*, where hoisted code lands). `None` when the
    /// header has several external predecessors or is the function entry.
    pub fn preheader(&self, cfg: &Cfg) -> Option<BlockId> {
        let mut outside = cfg.preds(self.header).iter().copied().filter(|p| !self.contains(*p));
        let candidate = outside.next()?;
        if outside.next().is_some() {
            return None;
        }
        // The preheader must branch only into the loop, so an inserted
        // instruction cannot execute on an unrelated path.
        (cfg.succs(candidate) == [self.header]).then_some(candidate)
    }
}

/// The loop forest of one function.
#[derive(Clone, Debug, Default)]
pub struct LoopForest {
    loops: Vec<Loop>,
    /// innermost[b] = index of the innermost loop containing block `b`.
    innermost: Vec<Option<usize>>,
}

impl LoopForest {
    /// Computes the natural loops of `func`.
    pub fn compute(func: &Function, cfg: &Cfg, dom: &DomTree) -> LoopForest {
        // Collect back edges, grouped by header in RPO order so outer
        // loops (earlier headers) come first.
        let mut by_header: Vec<(BlockId, Vec<BlockId>)> = Vec::new();
        for &b in &cfg.reverse_postorder() {
            for succ in func.successors(b) {
                if dom.dominates(succ, b) {
                    match by_header.iter_mut().find(|(h, _)| *h == succ) {
                        Some((_, latches)) => latches.push(b),
                        None => by_header.push((succ, vec![b])),
                    }
                }
            }
        }

        let mut loops: Vec<Loop> = Vec::new();
        for (header, latches) in by_header {
            // Walk CFG predecessors backwards from the latches, stopping
            // at the header.
            let mut body = vec![header];
            let mut stack: Vec<BlockId> = latches.clone();
            while let Some(b) = stack.pop() {
                if body.contains(&b) {
                    continue;
                }
                body.push(b);
                stack.extend(cfg.preds(b).iter().copied());
            }
            loops.push(Loop { header, latches, body, parent: None });
        }

        // Nesting: the parent of L is the smallest other loop strictly
        // containing L's header.
        for i in 0..loops.len() {
            let mut best: Option<usize> = None;
            for j in 0..loops.len() {
                if i == j || !loops[j].contains(loops[i].header) {
                    continue;
                }
                if loops[j].header == loops[i].header {
                    continue;
                }
                if best.is_none_or(|b| loops[j].body.len() < loops[b].body.len()) {
                    best = Some(j);
                }
            }
            loops[i].parent = best;
        }

        // innermost[b]: smallest loop containing b.
        let mut innermost = vec![None; func.num_blocks()];
        for (slot, entry) in innermost.iter_mut().enumerate() {
            let b = BlockId::from_index(slot);
            let mut best: Option<usize> = None;
            for (idx, l) in loops.iter().enumerate() {
                if l.contains(b) && best.is_none_or(|x: usize| l.body.len() < loops[x].body.len()) {
                    best = Some(idx);
                }
            }
            *entry = best;
        }

        LoopForest { loops, innermost }
    }

    /// All loops, outermost headers first.
    pub fn loops(&self) -> &[Loop] {
        &self.loops
    }

    /// The innermost loop containing `b`, if any.
    pub fn innermost(&self, b: BlockId) -> Option<&Loop> {
        self.innermost.get(b.index()).copied().flatten().map(|i| &self.loops[i])
    }

    /// Loop nesting depth of `b` (0 = not in any loop).
    pub fn depth(&self, b: BlockId) -> usize {
        let mut d = 0;
        let mut cur = self.innermost.get(b.index()).copied().flatten();
        while let Some(i) = cur {
            d += 1;
            cur = self.loops[i].parent;
        }
        d
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn forest(src: &str, name: &str) -> (crate::module::Module, LoopForest, Cfg) {
        // The IR parser keeps these tests frontend-free.
        let m = crate::parser::parse_module(src).expect("parse");
        let fid = m.function_by_name(name).unwrap();
        let f = m.function(fid);
        let cfg = Cfg::compute(f);
        let dom = DomTree::compute(f, &cfg);
        let lf = LoopForest::compute(f, &cfg, &dom);
        (m, lf, cfg)
    }

    const SINGLE_LOOP: &str = r#"
        func @f(%n: int) -> int {
        bb0:
            %c0: int = const 0
            %c1: int = const 1
            jump bb1
        bb1:
            %i: int = phi [bb0: %c0], [bb2: %i2]
            %cmp: int = cmp lt %i, %n
            br %cmp, bb2, bb3
        bb2:
            %i2: int = add %i, %c1
            jump bb1
        bb3:
            ret %i
        }
    "#;

    #[test]
    fn detects_a_single_loop() {
        let (_, lf, cfg) = forest(SINGLE_LOOP, "f");
        assert_eq!(lf.loops().len(), 1);
        let l = &lf.loops()[0];
        assert_eq!(l.header, BlockId::from_index(1));
        assert_eq!(l.latches, vec![BlockId::from_index(2)]);
        assert_eq!(l.body.len(), 2, "header + latch");
        assert_eq!(l.parent, None);
        assert_eq!(l.preheader(&cfg), Some(BlockId::from_index(0)));
        assert_eq!(lf.depth(BlockId::from_index(1)), 1);
        assert_eq!(lf.depth(BlockId::from_index(0)), 0);
        assert_eq!(lf.depth(BlockId::from_index(3)), 0);
    }

    const NESTED: &str = r#"
        func @g(%n: int) -> int {
        bb0:
            %c0: int = const 0
            %c1: int = const 1
            jump bb1
        bb1:
            %i: int = phi [bb0: %c0], [bb4: %i2]
            %ci: int = cmp lt %i, %n
            br %ci, bb2, bb5
        bb2:
            %j: int = phi [bb1: %c0], [bb3: %j2]
            %cj: int = cmp lt %j, %n
            br %cj, bb3, bb4
        bb3:
            %j2: int = add %j, %c1
            jump bb2
        bb4:
            %i2: int = add %i, %c1
            jump bb1
        bb5:
            ret %i
        }
    "#;

    #[test]
    fn nested_loops_have_parents_and_depths() {
        let (_, lf, _) = forest(NESTED, "g");
        assert_eq!(lf.loops().len(), 2);
        let outer = lf.loops().iter().position(|l| l.header.index() == 1).unwrap();
        let inner = lf.loops().iter().position(|l| l.header.index() == 2).unwrap();
        assert_eq!(lf.loops()[inner].parent, Some(outer));
        assert_eq!(lf.loops()[outer].parent, None);
        assert!(lf.loops()[outer].contains(BlockId::from_index(3)), "inner body is in outer");
        assert_eq!(lf.depth(BlockId::from_index(3)), 2);
        assert_eq!(lf.depth(BlockId::from_index(4)), 1);
        let b2 = BlockId::from_index(2);
        assert_eq!(lf.innermost(b2).unwrap().header, b2);
    }

    #[test]
    fn straight_line_code_has_no_loops() {
        let (_, lf, _) = forest(
            r#"
            func @h() -> int {
            bb0:
                %c: int = const 7
                ret %c
            }
            "#,
            "h",
        );
        assert!(lf.loops().is_empty());
        assert_eq!(lf.depth(BlockId::from_index(0)), 0);
    }

    #[test]
    fn shared_header_loops_are_merged() {
        // Two back edges into one header: one loop with two latches.
        let (_, lf, _) = forest(
            r#"
            func @k(%n: int) -> int {
            bb0:
                %c0: int = const 0
                %c1: int = const 1
                jump bb1
            bb1:
                %i: int = phi [bb0: %c0], [bb2: %i2], [bb3: %i3]
                %cmp: int = cmp lt %i, %n
                br %cmp, bb2, bb4
            bb2:
                %i2: int = add %i, %c1
                %even: int = rem %i2, %c1
                %ce: int = cmp eq %even, %c0
                br %ce, bb1, bb3
            bb3:
                %i3: int = add %i, %c1
                jump bb1
            bb4:
                ret %i
            }
            "#,
            "k",
        );
        assert_eq!(lf.loops().len(), 1);
        assert_eq!(lf.loops()[0].latches.len(), 2);
    }
}
