//! Random constraint-system generators shared by the property tests of
//! the two fixpoint solvers and of the on-demand prover.

use crate::constraints::Constraint as C;
use crate::var_index::VarId;
use proptest::prelude::*;

/// A random constraint for variable `x` over `n` variables: any shape the
/// generator can emit, cycles and dead code included. `None` leaves `x`
/// undefined (it stays ⊤ and is frozen to ∅).
fn constraint_for(x: usize, n: usize, allow_undefined: bool) -> impl Strategy<Value = Option<C>> {
    let x = VarId::from_index(x);
    let var = (0..n).prop_map(VarId::from_index);
    let vars = proptest::collection::vec((0..n).prop_map(VarId::from_index), 1..4);
    let undefined_weight = u32::from(allow_undefined);
    prop_oneof![
        undefined_weight => Just(None), // undefined variable: stays ⊤, frozen ∅
        2 => Just(Some(C::Init { x })),
        2 => var.prop_map(move |s| Some(C::Copy { x, source: s })),
        4 => (proptest::collection::vec((0..n).prop_map(VarId::from_index), 0..3), vars.clone())
            .prop_map(move |(elems, sources)| {
                Some(C::Union { x, elems, sources })
            }),
        3 => vars.prop_map(move |sources| Some(C::Inter { x, sources })),
    ]
}

fn systems_with(allow_undefined: bool) -> impl Strategy<Value = (Vec<C>, usize)> {
    (2usize..24).prop_flat_map(move |n| {
        (0..n)
            .map(|x| constraint_for(x, n, allow_undefined))
            .collect::<Vec<_>>()
            .prop_map(move |cs| (cs.into_iter().flatten().collect::<Vec<C>>(), n))
    })
}

/// Arbitrary systems: cycles, dead code and *undefined* variables.
pub(crate) fn systems() -> impl Strategy<Value = (Vec<C>, usize)> {
    systems_with(true)
}

/// Systems where every variable `0..n` has exactly one defining
/// constraint. The on-demand prover property runs on this population:
/// for undefined variables the prover's conservative `false` diverges
/// from the raw greatest fixpoint by design, so groundedness isolates
/// the coinduction (cycle) semantics under test.
pub(crate) fn grounded_systems() -> impl Strategy<Value = (Vec<C>, usize)> {
    systems_with(false)
}
