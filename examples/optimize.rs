//! Alias precision turned into removed instructions.
//!
//! The paper's §2 motivates disambiguation with the optimisations it
//! unlocks. This example runs three classic memory optimisations —
//! redundant-load elimination, dead-store elimination and loop-invariant
//! load motion (`sraa::opt`) — over one kernel twice: once driven by
//! LLVM-basic-aa-style heuristics (BA), once by BA chained with the
//! paper's strict-inequality analysis (BA+LT), and shows the executed
//! memory traffic shrink.
//!
//! Run with `cargo run --example optimize`.

use sraa::alias::{AliasAnalysis, BasicAliasAnalysis, Combined, StrictInequalityAa};
use sraa::ir::{Frame, Interpreter, Module, Observer, Value};
use sraa::opt::{
    eliminate_dead_stores, eliminate_redundant_loads, hoist_invariant_loads, OptStats,
};

/// The loop walks `v[i]` upward while re-reading `v[lo]` and `v[i]`:
/// every redundancy is guarded by an ordering fact (`lo < i`, `i < j`).
const KERNEL: &str = r#"
    int kernel(int* v, int N) {
        int lo = N / 8;
        int s = 0;
        for (int i = lo + 1, j = N; i < j; i++, j--) {
            int x = v[i];
            v[j] = x + 1;
            s = s + v[i];
            s = s + v[lo];
        }
        return s;
    }
    int main() {
        int a[32];
        for (int k = 0; k < 32; k++) a[k] = k;
        return kernel(a, 24);
    }
"#;

#[derive(Default)]
struct MemCounter {
    loads: u64,
    stores: u64,
}

impl Observer for MemCounter {
    fn on_access(&mut self, _f: &Frame, _i: Value, _a: i64, is_store: bool) {
        if is_store {
            self.stores += 1;
        } else {
            self.loads += 1;
        }
    }
}

fn execute(module: &Module) -> (Option<i64>, u64, u64) {
    let mut mem = MemCounter::default();
    let trace =
        Interpreter::new(module).run_observed("main", &[], &mut mem).expect("kernel executes");
    (trace.result, mem.loads, mem.stores)
}

fn optimise(with_lt: bool) -> (OptStats, Option<i64>, u64, u64) {
    let mut module = sraa::minic::compile(KERNEL).expect("valid MiniC");
    let lt = StrictInequalityAa::new(&mut module); // e-SSA conversion
    let aa: Box<dyn AliasAnalysis> = if with_lt {
        Box::new(Combined::new(vec![Box::new(BasicAliasAnalysis::new(&module)), Box::new(lt)]))
    } else {
        Box::new(BasicAliasAnalysis::new(&module))
    };
    let mut stats = eliminate_redundant_loads(&mut module, aa.as_ref());
    stats += eliminate_dead_stores(&mut module, aa.as_ref());
    stats += hoist_invariant_loads(&mut module, aa.as_ref());
    sraa::ir::verify(&module).expect("optimised module verifies");
    let (result, loads, stores) = execute(&module);
    (stats, result, loads, stores)
}

fn main() {
    let baseline = sraa::minic::compile(KERNEL).expect("valid MiniC");
    let (want, loads0, stores0) = execute(&baseline);
    println!("unoptimised:  result={want:?}  executed {loads0} loads, {stores0} stores");

    for (label, with_lt) in [("BA", false), ("BA+LT", true)] {
        let (stats, got, loads, stores) = optimise(with_lt);
        assert_eq!(got, want, "optimisation must preserve the result");
        println!(
            "{label:<6}: forwarded {} loads, killed {} stores, hoisted {} loads \
             -> executed {loads} loads, {stores} stores",
            stats.loads_eliminated, stats.stores_eliminated, stats.loads_hoisted
        );
    }

    println!();
    println!("BA sees two variable offsets into one array and must assume");
    println!("interference; the strict-inequality analysis proves lo < i < j,");
    println!("so the stores to v[j] cannot kill the facts for v[i] and v[lo].");
}
