//! Optimisation-kernel workloads: memory-access shapes on which the
//! choice of alias oracle changes what a scalar optimiser can do.
//!
//! The SPEC stand-ins of [`spec`](crate::spec) are calibrated against the
//! paper's `aa-eval` precision table; their memory traffic happens to be
//! oracle-indifferent for redundant-load/dead-store elimination (loads
//! are forwarded before any intervening store, or killed for every
//! oracle alike — `applicability_opt` reports that corpus too, as the
//! honest negative). The kernels here isolate the shapes where
//! disambiguation *does* gate the transformation:
//!
//! | kernel      | shape                                            | who wins |
//! |-------------|--------------------------------------------------|----------|
//! | `reload`    | load `v[i]` after a store to `v[j]`, `i < j`     | LT/PT    |
//! | `stencil`   | load `v[i]` after a store to `v[i+1]`            | LT/PT    |
//! | `twobuf`    | load `a[i]` after a store to `b[j]` (two allocs) | BA       |
//! | `deadstore` | store `v[i]`; read `v[j]`, `i < j`; store `v[i]` | LT/PT    |
//! | `hoist`     | invariant `v[lo]` load vs stores to `v[i]`, `lo<i`| LT/PT   |
//! | `optimal`   | re-loads with no intervening store               | anyone   |
//! | `opaque`    | loads through freshly loaded pointers            | nobody   |
//!
//! Each kernel is replicated `scale` times with distinct function names
//! so per-kernel counts are large enough to compare. All programs have a
//! `main` that drives every worker on real arrays, so the differential
//! soundness tests can execute them.

use crate::Workload;
use std::fmt::Write as _;

/// The kernel families, in report order.
pub const KERNELS: [&str; 7] =
    ["reload", "stencil", "twobuf", "deadstore", "hoist", "optimal", "opaque"];

/// Generates one kernel workload with `scale` replicated workers.
///
/// # Panics
///
/// Panics if `kernel` is not one of [`KERNELS`].
pub fn generate(kernel: &str, scale: usize) -> Workload {
    let body = match kernel {
        "reload" => worker_reload,
        "stencil" => worker_stencil,
        "twobuf" => worker_twobuf,
        "deadstore" => worker_deadstore,
        "hoist" => worker_hoist,
        "optimal" => worker_optimal,
        "opaque" => worker_opaque,
        other => panic!("unknown optimisation kernel {other:?}"),
    };
    let mut src = String::new();
    for k in 0..scale {
        body(&mut src, k);
    }
    // Drive every worker so the programs execute end to end.
    src.push_str("int main() {\n  int acc = 0;\n");
    for k in 0..scale {
        let _ = writeln!(src, "  int buf{k}[24];");
        let _ = writeln!(src, "  for (int z = 0; z < 24; z++) buf{k}[z] = z * 3 + {k};");
        let _ = writeln!(src, "  acc = acc + w{k}(buf{k}, 23);");
    }
    src.push_str("  return acc % 256;\n}\n");
    Workload { name: format!("optk-{kernel}"), source: src }
}

/// All kernels at the given scale.
pub fn all(scale: usize) -> Vec<Workload> {
    KERNELS.iter().map(|k| generate(k, scale)).collect()
}

/// Load of `v[i]` after a store to `v[j]` with `i < j` maintained by the
/// paired loop header — the paper's Figure 1 pattern turned into a
/// forwarding opportunity.
fn worker_reload(src: &mut String, k: usize) {
    let _ = write!(
        src,
        r#"
int w{k}(int* v, int N) {{
    int s = 0;
    for (int i = 0, j = N; i < j; i++, j--) {{
        int x = v[i];
        v[j] = x + 1;
        s = s + v[i];
    }}
    return s;
}}
"#
    );
}

/// `v[i+1] = f(v[i])` then re-read `v[i]`: the offsets differ by one,
/// which only an ordering (or symbolic-difference) analysis can see.
fn worker_stencil(src: &mut String, k: usize) {
    let _ = write!(
        src,
        r#"
int w{k}(int* v, int N) {{
    int s = 0;
    for (int i = 0; i + 1 < N; i++) {{
        int x = v[i];
        v[i + 1] = x / 2 + 1;
        s = s + v[i];
    }}
    return s;
}}
"#
    );
}

/// Reload after a store to a *different allocation*: allocation-site
/// reasoning (BA) already keeps the fact; ordering adds nothing.
fn worker_twobuf(src: &mut String, k: usize) {
    let _ = write!(
        src,
        r#"
int w{k}(int* v, int N) {{
    int b[16];
    int s = 0;
    for (int i = 0; i < N; i++) {{
        int x = v[i];
        b[i % 16] = x;
        s = s + v[i];
    }}
    return s + b[0];
}}
"#
    );
}

/// Double store to `v[i]` with an intervening read of `v[j]`, `i < j`:
/// the first store is dead only if the read provably misses it.
fn worker_deadstore(src: &mut String, k: usize) {
    let _ = write!(
        src,
        r#"
int w{k}(int* v, int N) {{
    int s = 0;
    for (int i = 0, j = N; i < j; i++, j--) {{
        v[i] = 1;
        s = s + v[j];
        v[i] = s;
    }}
    return s;
}}
"#
    );
}

/// Loop-invariant load of `v[lo]` against stores to `v[i]` walking
/// upward from `lo + 1`: hoisting out of the loop needs `lo < i`.
fn worker_hoist(src: &mut String, k: usize) {
    let _ = write!(
        src,
        r#"
int w{k}(int* v, int N) {{
    int lo = N / 8;
    int s = 0;
    for (int i = lo + 1; i < N; i++) {{
        v[i] = i;
        s = s + v[lo];
    }}
    return s;
}}
"#
    );
}

/// Re-loads with no intervening store: even the pessimistic oracle
/// forwards these (the floor every configuration shares).
fn worker_optimal(src: &mut String, k: usize) {
    let _ = write!(
        src,
        r#"
int w{k}(int* v, int N) {{
    int s = 0;
    for (int i = 0; i < N; i++) {{
        s = s + v[i];
        s = s + v[i];
    }}
    return s;
}}
"#
    );
}

/// Loads through a freshly loaded "pointer" (an opaque index): no oracle
/// can forward across the intervening store (the shared ceiling).
fn worker_opaque(src: &mut String, k: usize) {
    let _ = write!(
        src,
        r#"
int w{k}(int* v, int N) {{
    int s = 0;
    for (int i = 0; i < N; i++) {{
        int t = v[i];
        v[t % N] = t;
        s = s + v[i];
    }}
    return s;
}}
"#
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kernels_compile() {
        for w in all(2) {
            sraa_minic::compile(&w.source)
                .unwrap_or_else(|e| panic!("{}: {e}\n{}", w.name, w.source));
        }
    }

    #[test]
    fn kernels_execute_deterministically() {
        for w in all(2) {
            let m = sraa_minic::compile(&w.source).unwrap();
            let r1 = sraa_ir::Interpreter::new(&m).run("main", &[]).expect("run").result;
            let r2 = sraa_ir::Interpreter::new(&m).run("main", &[]).expect("run").result;
            assert_eq!(r1, r2, "{}", w.name);
            assert!(r1.is_some(), "{} must return a value", w.name);
        }
    }

    #[test]
    fn scale_replicates_workers() {
        let w = generate("reload", 5);
        assert_eq!(w.source.matches("int w").count(), 5);
    }

    #[test]
    #[should_panic(expected = "unknown optimisation kernel")]
    fn unknown_kernel_panics() {
        let _ = generate("nope", 1);
    }
}
