//! End-to-end tests of the content-addressed shared summary store:
//! concurrent in-process merges through one [`SharedSummaryStore`],
//! cross-process sharing between two live daemons, one-shot CLI
//! composition with `--summary-cache`, and torn-segment robustness.
//!
//! The correctness contract throughout: a store-assisted run produces
//! **byte-identical** solved LT sets (and therefore byte-identical
//! stdout) to a cold serial run — the store is a pure accelerator, never
//! a source of answers a cold solve would not give.

use sraa::alias::{render_eval, StrictInequalityAa};
use sraa::lt::{DisambiguationEngine, EngineConfig, SharedSummaryStore};
use std::path::PathBuf;
use std::process::{Command, Output};

/// One module of the overlapping family: every module shares the same
/// three-deep helper chain (identical bodies, identical call structure —
/// so identical content-addressed keys), while `main` differs per module
/// (a different constant), so each upload has fresh work *and* work the
/// store can answer.
fn family(module_idx: usize) -> String {
    format!(
        "int* h2(int* p, int n) {{ if (n > 0) {{ return p + n; }} return p + 1; }}\n\
         int* h1(int* p, int n) {{ int* q = h2(p, n); return q + 1; }}\n\
         int* h0(int* p, int n) {{ int* q = h1(p, n); return q + 2; }}\n\
         int main() {{ int a[64]; int* r = h0(a, {}); *r = 1; a[0] = 2; return *r + a[0]; }}\n",
        module_idx + 1
    )
}

/// Unique temp dir per test (tests run in parallel within one process).
fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("sraa_store_{tag}_{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    dir
}

/// The cold reference: a fresh interprocedural solve with no store and
/// no cache, rendered to the `aa-eval` report (covers every function's
/// verdict set — a summary-level divergence would change it).
fn cold_eval(src: &str) -> String {
    let mut m = sraa::minic::compile(src).expect("source compiles");
    let lt =
        StrictInequalityAa::with_engine_config(&mut m, EngineConfig::default().with_summaries());
    render_eval(&m, &lt)
}

/// A store-assisted solve through a caller-held handle, returning the
/// rendered report and the engine's store counters.
fn store_eval(src: &str, store: &SharedSummaryStore) -> (String, u32, u32, u32) {
    let mut m = sraa::minic::compile(src).expect("source compiles");
    let engine = DisambiguationEngine::build_with_cache_and_store(
        &mut m,
        EngineConfig::default().with_summaries(),
        None,
        Some(store),
    );
    let s = engine.stats();
    let (hits, misses, published) = (s.store_hits, s.store_misses, s.store_published);
    let lt = StrictInequalityAa::from_engine(engine);
    (render_eval(&m, &lt), hits, misses, published)
}

/// Satellite: the concurrent-merge stress. N scoped threads push an
/// overlapping module family through ONE store handle; every thread's
/// answers must be byte-identical to serial cold runs (insert-if-absent
/// merging — no torn summaries, no cross-module pollution), and a final
/// warm run on a fresh family member answers its helpers from the store.
#[test]
fn concurrent_merges_match_serial_cold_runs_byte_for_byte() {
    const MODULES: usize = 12;
    const THREADS: usize = 4;
    let cold: Vec<String> = (0..MODULES).map(|i| cold_eval(&family(i))).collect();

    let dir = temp_dir("merge");
    let cfg = EngineConfig::default();
    let store = SharedSummaryStore::open(&dir, cfg.gen).expect("store opens");
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..THREADS)
            .map(|t| {
                let store = &store;
                let cold = &cold;
                scope.spawn(move || {
                    for i in (t..MODULES).step_by(THREADS) {
                        let (text, _, _, _) = store_eval(&family(i), store);
                        assert_eq!(
                            text, cold[i],
                            "module {i} on thread {t}: store-assisted run diverged from cold"
                        );
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().expect("merge thread");
        }
    });
    assert!(!store.is_empty(), "the stress run must have published summaries");

    // A brand-new family member after the stress: its helpers are
    // answered from the store (hits > 0), its fresh `main` is an honest
    // miss, and the output still matches a cold solve exactly.
    let fresh = family(MODULES);
    let (text, hits, misses, _) = store_eval(&fresh, &store);
    assert_eq!(text, cold_eval(&fresh), "warm run diverged from cold");
    assert!(hits > 0, "shared helpers must hit the populated store");
    assert!(misses > 0, "the fresh main must miss");

    // A second handle on the same directory sees everything the first
    // published — the on-disk segments are the source of truth.
    let reopened = SharedSummaryStore::open(&dir, cfg.gen).expect("store reopens");
    assert_eq!(reopened.len(), store.len(), "reopen must load every published summary");
    std::fs::remove_dir_all(&dir).ok();
}

/// Satellite: torn-segment robustness at the integration level. Garbage
/// and truncated segment files in the store directory are skipped with a
/// count — never a panic, never a wrong answer.
#[test]
fn torn_segments_are_skipped_and_answers_stay_cold_identical() {
    let dir = temp_dir("torn");
    let cfg = EngineConfig::default();

    // Populate the store, then plant two defective segments beside the
    // good one: raw garbage and a truncation of a real segment.
    {
        let store = SharedSummaryStore::open(&dir, cfg.gen).expect("store opens");
        let (_, _, _, published) = store_eval(&family(0), &store);
        assert!(published > 0, "cold run must publish");
    }
    let good: Vec<PathBuf> = std::fs::read_dir(&dir)
        .expect("store dir listable")
        .map(|e| e.expect("dir entry").path())
        .collect();
    assert!(!good.is_empty(), "publishing must write a segment");
    let bytes = std::fs::read(&good[0]).expect("segment readable");
    std::fs::write(dir.join("seg-fffffffffffffff0-00000000-0000.sraaseg"), b"not a segment")
        .unwrap();
    std::fs::write(
        dir.join("seg-fffffffffffffff1-00000000-0000.sraaseg"),
        &bytes[..bytes.len() / 2],
    )
    .unwrap();

    let store =
        SharedSummaryStore::open(&dir, cfg.gen).expect("defective segments never fail open");
    assert_eq!(store.skipped_segments(), 2, "both defective segments are counted");
    let src = family(0);
    let (text, hits, _, _) = store_eval(&src, &store);
    assert_eq!(text, cold_eval(&src), "defective segments must not change answers");
    assert!(hits > 0, "the good segment still serves hits");
    std::fs::remove_dir_all(&dir).ok();
}

// ---------------------------------------------------------------------
// Subprocess tests: the CLI one-shot path and two live daemons sharing
// one store directory.
// ---------------------------------------------------------------------

fn sraa(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_sraa")).args(args).output().expect("sraa binary runs")
}

fn stdout(out: &Output) -> String {
    String::from_utf8_lossy(&out.stdout).into_owned()
}

fn stderr(out: &Output) -> String {
    String::from_utf8_lossy(&out.stderr).into_owned()
}

/// Parses `# shared-store: H hit(s), M miss(es), P published …` from a
/// CLI stderr transcript.
fn parse_store_line(err: &str) -> (u64, u64, u64) {
    let line = err
        .lines()
        .find(|l| l.starts_with("# shared-store:"))
        .unwrap_or_else(|| panic!("no shared-store line in: {err}"));
    let mut nums = line.split_whitespace().filter_map(|w| w.parse::<u64>().ok());
    (nums.next().expect("hits"), nums.next().expect("misses"), nums.next().expect("published"))
}

fn write_temp(name: &str, contents: &str) -> PathBuf {
    let path = std::env::temp_dir().join(format!("sraa_store_{name}_{}", std::process::id()));
    std::fs::write(&path, contents).expect("temp file written");
    path
}

/// One-shot composition: `eval --shared-store` twice on overlapping
/// modules — the second run hits the store, stdout stays byte-identical
/// to a plain `--interproc` run, and adding `--summary-cache` on top
/// keeps composing (cache answers first, store catches the rest).
#[test]
fn one_shot_runs_share_summaries_across_processes() {
    let dir = temp_dir("oneshot");
    let dir_s = dir.to_str().unwrap();
    let f0 = write_temp("oneshot_a.c", &family(0));
    let f1 = write_temp("oneshot_b.c", &family(1));

    let cold = sraa(&["eval", f0.to_str().unwrap(), "--shared-store", dir_s]);
    assert!(cold.status.success(), "cold eval: {}", stderr(&cold));
    let (h, _, p) = parse_store_line(&stderr(&cold));
    assert_eq!(h, 0, "an empty store cannot hit");
    assert!(p > 0, "the cold run must publish its summaries");
    let plain = sraa(&["eval", f0.to_str().unwrap(), "--interproc"]);
    assert_eq!(stdout(&cold), stdout(&plain), "the store must not change stdout");

    // A separate process, an overlapping module: the shared helpers hit.
    let warm = sraa(&["eval", f1.to_str().unwrap(), "--shared-store", dir_s]);
    assert!(warm.status.success(), "warm eval: {}", stderr(&warm));
    let (h, m, _) = parse_store_line(&stderr(&warm));
    assert!(h > 0, "overlapping helpers must hit: {}", stderr(&warm));
    assert!(m > 0, "the fresh main must miss");
    let plain = sraa(&["eval", f1.to_str().unwrap(), "--interproc"]);
    assert_eq!(stdout(&warm), stdout(&plain), "warm stdout must stay byte-identical");

    // Compose with a per-module cache: the cache answers everything on
    // its warm run, so the store sees neither misses nor new summaries.
    let cache = std::env::temp_dir().join(format!("sraa_store_cache_{}.bin", std::process::id()));
    std::fs::remove_file(&cache).ok();
    let cache_s = cache.to_str().unwrap().to_string();
    let first =
        sraa(&["eval", f0.to_str().unwrap(), "--shared-store", dir_s, "--summary-cache", &cache_s]);
    assert!(first.status.success(), "cache+store: {}", stderr(&first));
    let second =
        sraa(&["eval", f0.to_str().unwrap(), "--shared-store", dir_s, "--summary-cache", &cache_s]);
    let (h, m, p) = parse_store_line(&stderr(&second));
    assert_eq!((h, m, p), (0, 0, 0), "a fully-warm cache leaves no store work");
    assert!(stderr(&second).contains("# summary-cache:"), "got: {}", stderr(&second));
    assert_eq!(stdout(&first), stdout(&second));
    std::fs::remove_file(&cache).ok();
    std::fs::remove_file(&f0).ok();
    std::fs::remove_file(&f1).ok();
    std::fs::remove_dir_all(&dir).ok();
}

/// A defective store directory (a plain file where the dir should be)
/// degrades to a warning and a storeless run — exit 0, correct stdout.
#[test]
fn unusable_store_dir_warns_and_runs_without_a_store() {
    let blocker = write_temp("blocker", "this is a file, not a directory");
    let f = write_temp("blocked.c", &family(0));
    let out = sraa(&["eval", f.to_str().unwrap(), "--shared-store", blocker.to_str().unwrap()]);
    assert!(out.status.success(), "must degrade, not fail: {}", stderr(&out));
    assert!(stderr(&out).contains("shared-store warning"), "got: {}", stderr(&out));
    let plain = sraa(&["eval", f.to_str().unwrap(), "--interproc"]);
    assert_eq!(stdout(&out), stdout(&plain));
    std::fs::remove_file(&blocker).ok();
    std::fs::remove_file(&f).ok();
}

/// Tentpole acceptance: two LIVE daemons share one store directory.
/// Daemon A's upload publishes; daemon B (a separate process) refreshes
/// at upload time, answers the overlapping helpers from A's segments,
/// and reports the hits both in the upload reply and in `query stats`.
#[cfg(unix)]
#[test]
fn two_daemons_share_summaries_through_one_store_directory() {
    let dir = temp_dir("daemons");
    let dir_s = dir.to_str().unwrap().to_string();
    let fa = write_temp("daemon_a.c", &family(0));
    let fb = write_temp("daemon_b.c", &family(1));

    let spawn = |tag: &str| {
        let sock =
            std::env::temp_dir().join(format!("sraa_store_{tag}_{}.sock", std::process::id()));
        std::fs::remove_file(&sock).ok();
        let child = Command::new(env!("CARGO_BIN_EXE_sraa"))
            .args(["serve", "--socket", sock.to_str().unwrap(), "--shared-store", &dir_s])
            .stderr(std::process::Stdio::piped())
            .spawn()
            .expect("daemon starts");
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(30);
        while !sock.exists() {
            assert!(std::time::Instant::now() < deadline, "daemon {tag} never bound its socket");
            std::thread::sleep(std::time::Duration::from_millis(20));
        }
        (child, sock)
    };
    let (mut daemon_a, sock_a) = spawn("daemon_a");
    let (mut daemon_b, sock_b) = spawn("daemon_b");

    // Daemon A solves module 0 cold and publishes every summary.
    let up_a = sraa(&[
        "query",
        "--socket",
        sock_a.to_str().unwrap(),
        "upload",
        "ma",
        fa.to_str().unwrap(),
    ]);
    assert!(up_a.status.success(), "upload to A: {}", stderr(&up_a));
    let (h, _, p) = parse_store_line(&stderr(&up_a));
    assert_eq!(h, 0, "daemon A starts against an empty store");
    assert!(p > 0, "daemon A must publish");

    // Daemon B — alive the whole time — refreshes at upload and answers
    // the overlapping helpers from A's segments on its FIRST upload.
    let up_b = sraa(&[
        "query",
        "--socket",
        sock_b.to_str().unwrap(),
        "upload",
        "mb",
        fb.to_str().unwrap(),
    ]);
    assert!(up_b.status.success(), "upload to B: {}", stderr(&up_b));
    let (h, m, _) = parse_store_line(&stderr(&up_b));
    assert!(h > 0, "daemon B must hit A's published summaries: {}", stderr(&up_b));
    assert!(m > 0, "module B's fresh main must miss");

    // The resident answer is still byte-identical to a cold one-shot.
    let resident = sraa(&["query", "--socket", sock_b.to_str().unwrap(), "eval", "mb"]);
    let oneshot = sraa(&["eval", fb.to_str().unwrap(), "--interproc"]);
    assert!(resident.status.success() && oneshot.status.success());
    assert_eq!(stdout(&resident), stdout(&oneshot), "store-fed daemon vs cold one-shot");

    // `query stats` surfaces the store counters.
    let stats = sraa(&["query", "--socket", sock_b.to_str().unwrap(), "stats"]);
    assert!(stats.status.success());
    let text = stdout(&stats);
    let counter = |k: &str| -> i64 {
        text.lines()
            .find_map(|l| l.strip_prefix(&format!("{k}: ")))
            .unwrap_or_else(|| panic!("no `{k}` in stats:\n{text}"))
            .parse()
            .expect("stats counters are integers")
    };
    assert!(counter("store_hits") > 0, "stats must report B's store hits:\n{text}");

    for (sock, daemon) in [(sock_a, &mut daemon_a), (sock_b, &mut daemon_b)] {
        let bye = sraa(&["query", "--socket", sock.to_str().unwrap(), "shutdown"]);
        assert!(bye.status.success(), "shutdown: {}", stderr(&bye));
        let status = daemon.wait().expect("daemon exits");
        assert_eq!(status.code(), Some(0), "daemon must exit cleanly");
    }
    // Both daemons' shutdown stats lines carry the store counters.
    let mut err = String::new();
    std::io::Read::read_to_string(&mut daemon_b.stderr.take().expect("piped"), &mut err)
        .expect("read daemon B stderr");
    assert!(err.contains("# serve: shared store at"), "no boot line in: {err}");
    assert!(err.contains("store "), "no store counters in the stats line: {err}");
    std::fs::remove_file(&fa).ok();
    std::fs::remove_file(&fb).ok();
    std::fs::remove_dir_all(&dir).ok();
}
