//! Sparse strict-inequalities (LT) vs dense Pentagons (PT) — the
//! comparison the paper's Section 5 makes in prose, measured.
//!
//! Two of the paper's claims become checkable:
//!
//! 1. *"We have not found thus far examples in which one approach yields
//!    better results than the other"* — per benchmark, this harness
//!    counts the `aa-eval` pairs on which the two analyses disagree, in
//!    both directions.
//! 2. Density costs: per-benchmark analysis construction time and the
//!    dense footprint (total variable bindings stored across block-entry
//!    states) against the sparse pipeline's solve time.
//!
//! Both analyses run on the *same* e-SSA module, so the only variable is
//! the analysis machinery. Run with
//! `cargo run --release -p sraa-bench --bin pentagon_vs_lt`.

use sraa_alias::{AaEval, AliasAnalysis, AliasResult, PentagonAa, StrictInequalityAa};
use std::time::Instant;

fn main() {
    println!(
        "{:<12} {:>9} {:>9} {:>9} {:>8} {:>8} {:>9} {:>9} {:>10}",
        "benchmark", "queries", "LT-no", "PT-no", "LT>PT", "PT>LT", "lt-ms", "pt-ms", "pt-bound"
    );

    let mut totals = (0u64, 0u64, 0u64, 0u64, 0u64);
    for w in sraa_synth::spec_all() {
        let mut module = sraa_minic::compile(&w.source)
            .unwrap_or_else(|e| panic!("workload {} failed to compile: {e}", w.name));

        let t0 = Instant::now();
        let lt = StrictInequalityAa::new(&mut module); // converts to e-SSA
        let lt_ms = t0.elapsed().as_secs_f64() * 1e3;

        let t1 = Instant::now();
        let pt = PentagonAa::on_prepared(&module); // same e-SSA module
        let pt_ms = t1.elapsed().as_secs_f64() * 1e3;

        // Per-pair divergence, both directions.
        let mut queries = 0u64;
        let (mut lt_no, mut pt_no, mut lt_only, mut pt_only) = (0u64, 0u64, 0u64, 0u64);
        for (fid, _) in module.functions() {
            let ptrs = AaEval::pointer_values(&module, fid);
            for i in 0..ptrs.len() {
                for j in i + 1..ptrs.len() {
                    queries += 1;
                    let a = lt.alias(&module, fid, ptrs[i], ptrs[j]);
                    let b = pt.alias(&module, fid, ptrs[i], ptrs[j]);
                    let a_no = a == AliasResult::NoAlias;
                    let b_no = b == AliasResult::NoAlias;
                    lt_no += a_no as u64;
                    pt_no += b_no as u64;
                    lt_only += (a_no && !b_no) as u64;
                    pt_only += (b_no && !a_no) as u64;
                }
            }
        }

        println!(
            "{:<12} {:>9} {:>9} {:>9} {:>8} {:>8} {:>9.1} {:>9.1} {:>10}",
            w.name,
            queries,
            lt_no,
            pt_no,
            lt_only,
            pt_only,
            lt_ms,
            pt_ms,
            pt.analysis().total_bindings()
        );
        totals.0 += queries;
        totals.1 += lt_no;
        totals.2 += pt_no;
        totals.3 += lt_only;
        totals.4 += pt_only;
    }

    println!();
    println!(
        "totals: queries={} LT-no={} PT-no={} LT-only={} PT-only={}",
        totals.0, totals.1, totals.2, totals.3, totals.4
    );
    let agree = totals.0 - totals.3 - totals.4;
    println!(
        "agreement: {:.3}% of queries ({} pairs decided differently)",
        agree as f64 / totals.0.max(1) as f64 * 100.0,
        totals.3 + totals.4
    );
}
