//! A convenience layer for constructing well-formed functions.
//!
//! The builder tracks a *current block*, uniques integer constants, infers
//! result types, and performs basic sanity checks at construction time so
//! that most malformed IR never comes into existence (the
//! [`verifier`](crate::verifier) then checks the global SSA properties).

use crate::function::Function;
use crate::ids::{BlockId, FuncId, GlobalId, Value};
use crate::inst::{BinOp, CopyOrigin, InstKind, Pred};
use crate::types::Type;
use std::collections::HashMap;

/// Builds instructions into a [`Function`].
///
/// See the [crate docs](crate) for a complete example.
#[derive(Debug)]
pub struct FunctionBuilder<'a> {
    func: &'a mut Function,
    current: BlockId,
    const_cache: HashMap<i64, Value>,
}

impl<'a> FunctionBuilder<'a> {
    /// Starts building into `func`, positioned at its entry block.
    pub fn new(func: &'a mut Function) -> Self {
        let current = func.entry();
        Self { func, current, const_cache: HashMap::new() }
    }

    /// The block instructions are currently appended to.
    pub fn current_block(&self) -> BlockId {
        self.current
    }

    /// Creates a fresh empty block (does not switch to it).
    pub fn create_block(&mut self) -> BlockId {
        self.func.add_block()
    }

    /// Makes `block` the current insertion point.
    pub fn switch_to(&mut self, block: BlockId) {
        self.current = block;
    }

    /// Returns the value of the `index`-th parameter.
    pub fn param(&self, index: usize) -> Value {
        self.func.param_value(index)
    }

    /// Returns a (uniqued) integer constant.
    pub fn iconst(&mut self, c: i64) -> Value {
        if let Some(&v) = self.const_cache.get(&c) {
            return v;
        }
        let v = self.func.add_const(c);
        self.const_cache.insert(c, v);
        v
    }

    fn append(&mut self, kind: InstKind, ty: Option<Type>) -> Value {
        assert!(
            self.func.terminator(self.current).is_none(),
            "appending to terminated block {}",
            self.current
        );
        self.func.append_inst(self.current, kind, ty)
    }

    /// Appends a binary operation. Pointer +/- int keeps the pointer type;
    /// everything else is `Int`.
    pub fn binary(&mut self, op: BinOp, lhs: Value, rhs: Value) -> Value {
        let lt = self.func.value_type(lhs).expect("binary lhs must produce a value");
        let rt = self.func.value_type(rhs).expect("binary rhs must produce a value");
        let ty = match (op, lt, rt) {
            (BinOp::Add | BinOp::Sub, Type::Ptr(d), Type::Int) => Type::Ptr(d),
            (BinOp::Sub, Type::Ptr(_), Type::Ptr(_)) => Type::Int,
            _ => Type::Int,
        };
        self.append(InstKind::Binary { op, lhs, rhs }, Some(ty))
    }

    /// Appends a comparison (result is `Int` 0/1).
    pub fn cmp(&mut self, pred: Pred, lhs: Value, rhs: Value) -> Value {
        self.append(InstKind::Cmp { pred, lhs, rhs }, Some(Type::Int))
    }

    /// Appends a φ-function with no incomings yet; fill them in later with
    /// [`set_phi_incomings`](Self::set_phi_incomings).
    ///
    /// φ-functions must precede all non-φ instructions of their block; the
    /// builder inserts them into the φ prefix automatically.
    pub fn phi(&mut self, ty: Type) -> Value {
        assert!(
            self.func.terminator(self.current).is_none(),
            "appending to terminated block {}",
            self.current
        );
        let v = self.func.new_inst(InstKind::Phi { incomings: vec![] }, Some(ty));
        let at = self.func.block(self.current).first_non_phi(self.func);
        self.func.attach_inst(self.current, at, v);
        v
    }

    /// Sets the incoming `(block, value)` pairs of a φ created by
    /// [`phi`](Self::phi).
    ///
    /// # Panics
    ///
    /// Panics if `phi` is not a φ-function.
    pub fn set_phi_incomings(&mut self, phi: Value, incomings: Vec<(BlockId, Value)>) {
        match &mut self.func.inst_mut(phi).kind {
            InstKind::Phi { incomings: slots } => *slots = incomings,
            other => panic!("{phi} is not a phi: {other:?}"),
        }
    }

    /// Appends a plain copy.
    pub fn copy(&mut self, src: Value) -> Value {
        let ty = self.func.value_type(src);
        self.append(InstKind::Copy { src, origin: CopyOrigin::Plain }, ty)
    }

    /// Appends a stack allocation of `count` elements of `elem_ty`.
    pub fn alloca(&mut self, elem_ty: Type, count: Value) -> Value {
        self.append(InstKind::Alloca { count }, Some(elem_ty.ptr_to()))
    }

    /// Appends a heap allocation of `count` elements of `elem_ty`.
    pub fn malloc(&mut self, elem_ty: Type, count: Value) -> Value {
        self.append(InstKind::Malloc { count }, Some(elem_ty.ptr_to()))
    }

    /// Appends the address of a global. The caller supplies the global's
    /// element type (the module holds the authoritative layout).
    pub fn global_addr(&mut self, g: GlobalId, elem_ty: Type) -> Value {
        self.append(InstKind::GlobalAddr(g), Some(elem_ty.ptr_to()))
    }

    /// Appends pointer arithmetic `base + offset` (element-indexed).
    pub fn gep(&mut self, base: Value, offset: Value) -> Value {
        let ty = self.func.value_type(base).expect("gep base must produce a value");
        assert!(ty.is_ptr(), "gep base must be a pointer, got {ty}");
        self.append(InstKind::Gep { base, offset }, Some(ty))
    }

    /// Appends a load through `ptr`.
    pub fn load(&mut self, ptr: Value) -> Value {
        let ty = self.func.value_type(ptr).expect("load ptr must produce a value");
        let pointee = ty.pointee().expect("load requires a pointer operand");
        self.append(InstKind::Load { ptr }, Some(pointee))
    }

    /// Appends a store of `value` through `ptr`.
    pub fn store(&mut self, ptr: Value, value: Value) {
        self.append(InstKind::Store { ptr, value }, None);
    }

    /// Appends a direct call. `ret_ty` must match the callee's return type
    /// (the verifier checks this against the module).
    pub fn call(&mut self, callee: FuncId, args: Vec<Value>, ret_ty: Option<Type>) -> Value {
        self.append(InstKind::Call { callee, args }, ret_ty)
    }

    /// Appends an opaque value of type `ty` (models external input).
    pub fn opaque(&mut self, ty: Type) -> Value {
        self.append(InstKind::Opaque, Some(ty))
    }

    /// Terminates the current block with a conditional branch.
    pub fn br(&mut self, cond: Value, then_bb: BlockId, else_bb: BlockId) {
        self.append(InstKind::Br { cond, then_bb, else_bb }, None);
    }

    /// Terminates the current block with an unconditional jump.
    pub fn jump(&mut self, target: BlockId) {
        self.append(InstKind::Jump(target), None);
    }

    /// Terminates the current block with a return.
    pub fn ret(&mut self, value: Option<Value>) {
        self.append(InstKind::Ret(value), None);
    }

    /// Finishes building. Asserts every block is terminated.
    ///
    /// # Panics
    ///
    /// Panics if a block lacks a terminator.
    pub fn finish(self) {
        for b in self.func.block_ids() {
            assert!(
                self.func.terminator(b).is_some(),
                "block {b} of {} lacks a terminator",
                self.func.name
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constants_are_uniqued() {
        let mut f = Function::new("t", Vec::<(&str, Type)>::new(), None);
        let mut b = FunctionBuilder::new(&mut f);
        let a = b.iconst(7);
        let c = b.iconst(7);
        let d = b.iconst(8);
        assert_eq!(a, c);
        assert_ne!(a, d);
        b.ret(None);
        b.finish();
    }

    #[test]
    fn pointer_arithmetic_types() {
        let mut f = Function::new("t", vec![("p", Type::Ptr(2))], None);
        let mut b = FunctionBuilder::new(&mut f);
        let p = b.param(0);
        let one = b.iconst(1);
        let q = b.gep(p, one);
        assert_eq!(f_ty(&b, q), Type::Ptr(2));
        let l = b.load(q);
        assert_eq!(f_ty(&b, l), Type::Ptr(1));
        let l2 = b.load(l);
        assert_eq!(f_ty(&b, l2), Type::Int);
        b.ret(None);
        b.finish();
    }

    fn f_ty(b: &FunctionBuilder<'_>, v: Value) -> Type {
        b.func.value_type(v).unwrap()
    }

    #[test]
    fn binary_ptr_minus_ptr_is_int() {
        let mut f = Function::new("t", vec![("p", Type::Ptr(1)), ("q", Type::Ptr(1))], None);
        let mut b = FunctionBuilder::new(&mut f);
        let p = b.param(0);
        let q = b.param(1);
        let d = b.binary(BinOp::Sub, p, q);
        assert_eq!(f_ty(&b, d), Type::Int);
        let off = b.binary(BinOp::Add, p, d);
        assert_eq!(f_ty(&b, off), Type::Ptr(1));
        b.ret(None);
        b.finish();
    }

    #[test]
    #[should_panic(expected = "terminated block")]
    fn appending_after_terminator_panics() {
        let mut f = Function::new("t", Vec::<(&str, Type)>::new(), None);
        let mut b = FunctionBuilder::new(&mut f);
        b.ret(None);
        b.opaque(Type::Int);
    }

    #[test]
    fn phis_stay_in_prefix() {
        let mut f = Function::new("t", Vec::<(&str, Type)>::new(), None);
        let mut b = FunctionBuilder::new(&mut f);
        let bb = b.create_block();
        b.jump(bb);
        b.switch_to(bb);
        let c = b.iconst(3); // lands in entry block prefix
        let p1 = b.phi(Type::Int);
        let _x = b.copy(p1);
        let p2 = b.phi(Type::Int); // created after a non-phi: must float up
        b.ret(None);
        b.set_phi_incomings(p1, vec![(f_entry(&b), c)]);
        b.set_phi_incomings(p2, vec![(f_entry(&b), c)]);
        b.finish();
        let bb_insts = &f.block(bb).insts;
        assert!(f.inst(bb_insts[0]).kind.is_phi());
        assert!(f.inst(bb_insts[1]).kind.is_phi());
        assert!(!f.inst(bb_insts[2]).kind.is_phi());
    }

    fn f_entry(b: &FunctionBuilder<'_>) -> BlockId {
        b.func.entry()
    }
}
