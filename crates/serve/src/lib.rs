//! `sraa-serve` — alias analysis as a resident service.
//!
//! One-shot `sraa` invocations pay the whole pipeline — parse, e-SSA,
//! constraint generation, fixpoint — for every question asked. The
//! engine's own design points the other way: pair queries are memoized
//! and cheap next to whole-solution recomputation, and the summary cache
//! already makes re-solving incremental. This crate packages that as a
//! long-lived daemon (`sraa serve`) that keeps solved
//! [`DisambiguationEngine`](sraa_core::DisambiguationEngine)s resident
//! and answers queries over a socket:
//!
//! * [`protocol`] — newline-delimited, length-prefixed, checksummed JSON
//!   frames (`sraa1 <len> <fnv64> <payload>`), with typed error codes
//!   for every way a frame can be malformed;
//! * [`server`] — the threaded accept loop and request dispatcher:
//!   `upload` (compile + solve, incremental against the previous upload
//!   or a warm-start cache), `no-alias`/`lt` point queries, `eval`
//!   (pre-rendered, byte-identical to one-shot `sraa eval`), `pairs`
//!   (streamed batch), `stats`, `shutdown` (graceful drain);
//! * [`client`] — the `sraa query` side: framed request/reply plus
//!   streamed `pairs` consumption;
//! * [`stats`] — daemon-lifetime counters with p50/p99 query latency.

pub mod client;
pub mod protocol;
pub mod server;
pub mod stats;

pub use client::{Client, ClientError};
pub use protocol::{decode_frame, encode_frame, obj, parse, FrameError, Json, JsonError, MAGIC};
pub use server::{Server, ServerConfig};
pub use stats::ServeStats;
