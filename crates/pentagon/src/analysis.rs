//! The dense Pentagon dataflow analysis.
//!
//! A classic forward Kleene iteration over the CFG, per function:
//! block-entry states are joined over incoming edges (with interval
//! widening at retreating edges), instruction transfer runs through the
//! block body, and each outgoing edge applies *branch refinement*
//! (learning `a < b` from the comparison guarding the branch) plus the
//! φ-bindings of the successor. No program transformation is needed —
//! this is exactly the density the paper's Section 5 contrasts with its
//! own sparse, e-SSA-based formulation:
//!
//! > "the original work on Pentagons describe a dense analysis, whereas
//! > we use a different program representation to achieve sparsity."
//!
//! The two formulations prove the same kind of facts — both infer
//! `x2 > x1` from `x1 = x2 − x3, x3 > 0`, unlike ABCD — and the
//! comparison harness (`cargo run -p sraa-bench --bin pentagon_vs_lt`)
//! measures where their answers and costs diverge in practice.

use crate::state::PentagonState;
use sraa_ir::{BinOp, BlockId, Cfg, FuncId, Function, InstData, InstKind, Module, Pred, Value};
use sraa_range::{Bound, Interval};
use std::cell::RefCell;
use std::collections::{BTreeSet, HashMap, VecDeque};
use std::rc::Rc;

/// How many joins a retreating-edge target absorbs before switching to
/// widening (a small delay buys loop-bound precision, as usual).
const WIDEN_AFTER: u32 = 3;

/// Per-function fixpoint results: the abstract state at each block entry
/// (`None` for unreachable blocks).
#[derive(Debug, Default)]
struct FuncStates {
    entry: Vec<Option<PentagonState>>,
}

/// The module-wide Pentagon analysis.
///
/// Build with [`PentagonAnalysis::run`]; query order facts with
/// [`proves_lt`](Self::proves_lt) and numeric facts with
/// [`interval_at_def`](Self::interval_at_def). Queries take the same
/// module that was analyzed (they replay block transfers on demand).
///
/// # Example
///
/// ```
/// use sraa_pentagon::PentagonAnalysis;
/// use sraa_ir::InstKind;
///
/// let module = sraa_minic::compile(r#"
///     int f(int a) {
///         int b = a + 1;
///         return b;
///     }
/// "#).unwrap();
/// let pent = PentagonAnalysis::run(&module);
/// let fid = module.function_by_name("f").unwrap();
/// let func = module.function(fid);
/// let b = func
///     .value_ids()
///     .find(|&v| matches!(func.inst(v).kind, InstKind::Binary { .. }))
///     .unwrap();
/// let a = func.param_value(0);
/// assert!(pent.proves_lt(&module, fid, a, b), "a < a + 1");
/// ```
/// Cache of lazily computed state-after-definition snapshots.
type AfterDefCache = HashMap<(FuncId, Value), Option<Rc<PentagonState>>>;

#[derive(Debug)]
pub struct PentagonAnalysis {
    funcs: Vec<FuncStates>,
    /// Lazily computed, shared state-after-definition snapshots.
    after_def: RefCell<AfterDefCache>,
}

impl PentagonAnalysis {
    /// Runs the dense fixpoint on every function of the module.
    ///
    /// Unlike the sparse strict-inequalities pipeline, the module is
    /// **not** mutated: density needs no e-SSA conversion.
    pub fn run(module: &Module) -> Self {
        let funcs = module.functions().map(|(_, func)| analyze_function(func)).collect();
        Self { funcs, after_def: RefCell::new(HashMap::new()) }
    }

    /// Does the analysis prove `a < b` wherever the two values are
    /// simultaneously alive?
    ///
    /// Mirrors the paper's Corollary 3.10 reasoning for SSA values: any
    /// moment at which both are alive extends a moment at which one of
    /// them was *just defined* (SSA values are immutable within an
    /// activation), so it suffices that the fact holds in the state after
    /// `def(a)` whenever `b` is bound there, and in the state after
    /// `def(b)` whenever `a` is bound there — with at least one of the
    /// two points providing positive evidence. Validated dynamically by
    /// `tests/soundness.rs` at the workspace root.
    pub fn proves_lt(&self, module: &Module, f: FuncId, a: Value, b: Value) -> bool {
        if a == b {
            return false;
        }
        let sa = self.state_after_def(module, f, a);
        let sb = self.state_after_def(module, f, b);
        let mut evidence = false;
        for (st, other) in [(&sa, b), (&sb, a)] {
            match st {
                Some(st) if st.binds(other) => {
                    if st.proves_lt(a, b) {
                        evidence = true;
                    } else {
                        return false;
                    }
                }
                // Unreachable definition, or `other` unbound there: the
                // point contributes no simultaneously-alive pairs.
                _ => {}
            }
        }
        evidence
    }

    /// The interval of `v` in the state right after its definition
    /// (`None` when its block is unreachable).
    pub fn interval_at_def(&self, module: &Module, f: FuncId, v: Value) -> Option<Interval> {
        self.state_after_def(module, f, v).and_then(|st| st.interval(v))
    }

    /// Total number of variable bindings across all stored block-entry
    /// states — the dense footprint the sparse analysis avoids.
    pub fn total_bindings(&self) -> usize {
        self.funcs
            .iter()
            .flat_map(|fs| fs.entry.iter())
            .filter_map(|st| st.as_ref().map(PentagonState::num_bound))
            .sum()
    }

    fn state_after_def(&self, module: &Module, f: FuncId, v: Value) -> Option<Rc<PentagonState>> {
        if let Some(cached) = self.after_def.borrow().get(&(f, v)) {
            return cached.clone();
        }
        let computed = self.compute_after_def(module, f, v).map(Rc::new);
        self.after_def.borrow_mut().insert((f, v), computed.clone());
        computed
    }

    fn compute_after_def(&self, module: &Module, f: FuncId, v: Value) -> Option<PentagonState> {
        let fs = self.funcs.get(f.index())?;
        let func = module.function(f);
        let block = func.inst(v).block?;
        let mut st = fs.entry.get(block.index())?.clone()?;
        for (iv, data) in func.block_insts(block) {
            if data.kind.is_phi() {
                // φs are bound on incoming edges; their facts are already
                // in the entry state.
                if iv == v {
                    break;
                }
                continue;
            }
            transfer(&mut st, func, iv, data);
            if iv == v {
                break;
            }
        }
        Some(st)
    }
}

/// The intra-procedural fixpoint for one function.
fn analyze_function(func: &Function) -> FuncStates {
    let cfg = Cfg::compute(func);
    let rpo = cfg.reverse_postorder();
    let mut rpo_index = vec![u32::MAX; func.num_blocks()];
    for (i, &b) in rpo.iter().enumerate() {
        rpo_index[b.index()] = i as u32;
    }

    let mut entry: Vec<Option<PentagonState>> = vec![None; func.num_blocks()];
    entry[func.entry().index()] = Some(PentagonState::new());
    let mut widen_counts = vec![0u32; func.num_blocks()];

    let mut worklist: VecDeque<BlockId> = VecDeque::from([func.entry()]);
    let mut on_list = vec![false; func.num_blocks()];
    on_list[func.entry().index()] = true;

    while let Some(b) = worklist.pop_front() {
        on_list[b.index()] = false;
        let mut st = entry[b.index()].clone().expect("queued blocks have entry states");

        for (v, data) in func.block_insts(b) {
            if !data.kind.is_phi() {
                transfer(&mut st, func, v, data);
            }
        }

        let edges: Vec<(BlockId, Option<(Value, bool)>)> =
            match func.terminator(b).map(|t| &func.inst(t).kind) {
                Some(InstKind::Br { cond, then_bb, else_bb }) => {
                    vec![(*then_bb, Some((*cond, true))), (*else_bb, Some((*cond, false)))]
                }
                Some(InstKind::Jump(t)) => vec![(*t, None)],
                _ => vec![],
            };

        for (succ, refinement) in edges {
            let mut es = st.clone();
            if let Some((cond, taken)) = refinement {
                if !refine_edge(&mut es, func, cond, taken) {
                    continue; // provably infeasible edge
                }
            }
            bind_phis(&mut es, func, b, succ);

            let retreating = rpo_index[succ.index()] <= rpo_index[b.index()];
            let slot = &mut entry[succ.index()];
            let new = match slot.as_ref() {
                None => es,
                Some(old) => {
                    if retreating {
                        widen_counts[succ.index()] += 1;
                        if widen_counts[succ.index()] >= WIDEN_AFTER {
                            old.widen(&es)
                        } else {
                            old.join(&es)
                        }
                    } else {
                        old.join(&es)
                    }
                }
            };
            if slot.as_ref() != Some(&new) {
                *slot = Some(new);
                if !on_list[succ.index()] {
                    on_list[succ.index()] = true;
                    worklist.push_back(succ);
                }
            }
        }
    }

    FuncStates { entry }
}

/// The per-instruction abstract transformer (non-φ, value-producing
/// instructions; everything else is a no-op on the state).
fn transfer(st: &mut PentagonState, func: &Function, v: Value, data: &InstData) {
    if !data.has_result() {
        return; // stores and terminators bind nothing
    }
    match &data.kind {
        InstKind::Const(c) => st.bind(v, Interval::constant(*c)),
        InstKind::Copy { src, .. } => st.bind_equal(v, *src),
        InstKind::Cmp { .. } => st.bind(v, Interval::finite(0, 1)),
        InstKind::Binary { op, lhs, rhs } => {
            let il = st.interval(*lhs).unwrap_or(Interval::TOP);
            let ir = st.interval(*rhs).unwrap_or(Interval::TOP);
            let iv = match op {
                BinOp::Add => il.add(&ir),
                BinOp::Sub => il.sub(&ir),
                BinOp::Mul => il.mul(&ir),
                BinOp::Rem => il.rem(&ir),
                BinOp::Div => Interval::TOP,
            };
            match relation(*op, *lhs, il, *rhs, ir) {
                Relation::Equal(src) => st.bind_equal(v, src),
                Relation::Above(src) => {
                    st.bind(v, iv);
                    st.record_lt(src, v);
                }
                Relation::Below(src) => {
                    st.bind(v, iv);
                    st.record_lt(v, src);
                }
                Relation::None => st.bind(v, iv),
            }
        }
        InstKind::Gep { base, offset } => {
            // Addresses are not tracked numerically, but their order is:
            // a gep with a sign-definite offset orders the derived pointer
            // against its base (the same reading of pointer arithmetic the
            // sparse analysis uses).
            let io = st.interval(*offset).unwrap_or(Interval::TOP);
            if io == Interval::constant(0) {
                st.bind_equal(v, *base);
            } else if io.is_strictly_positive() {
                st.bind(v, Interval::TOP);
                st.record_lt(*base, v);
            } else if io.is_strictly_negative() {
                st.bind(v, Interval::TOP);
                st.record_lt(v, *base);
            } else {
                st.bind(v, Interval::TOP);
            }
        }
        // External/unknown values: ⊤ interval, no order facts.
        InstKind::Param(_)
        | InstKind::Load { .. }
        | InstKind::Call { .. }
        | InstKind::Opaque
        | InstKind::Alloca { .. }
        | InstKind::Malloc { .. }
        | InstKind::GlobalAddr(_) => st.bind(v, Interval::TOP),
        InstKind::Phi { .. } => unreachable!("φs are bound on edges"),
        InstKind::Store { .. } | InstKind::Br { .. } | InstKind::Jump(_) | InstKind::Ret(_) => {
            unreachable!("no result")
        }
    }
    let _ = func;
}

/// The ordering a binary instruction `v = lhs op rhs` implies.
enum Relation {
    /// `v = src` exactly.
    Equal(Value),
    /// `src < v`.
    Above(Value),
    /// `v < src`.
    Below(Value),
    /// No definite ordering.
    None,
}

fn relation(op: BinOp, lhs: Value, il: Interval, rhs: Value, ir: Interval) -> Relation {
    match op {
        BinOp::Add => {
            if ir == Interval::constant(0) {
                Relation::Equal(lhs)
            } else if il == Interval::constant(0) {
                Relation::Equal(rhs)
            } else if ir.is_strictly_positive() {
                Relation::Above(lhs)
            } else if ir.is_strictly_negative() {
                Relation::Below(lhs)
            } else if il.is_strictly_positive() {
                Relation::Above(rhs)
            } else if il.is_strictly_negative() {
                Relation::Below(rhs)
            } else {
                Relation::None
            }
        }
        BinOp::Sub => {
            if ir == Interval::constant(0) {
                Relation::Equal(lhs)
            } else if ir.is_strictly_positive() {
                Relation::Below(lhs)
            } else if ir.is_strictly_negative() {
                Relation::Above(lhs)
            } else {
                Relation::None
            }
        }
        BinOp::Mul | BinOp::Div | BinOp::Rem => Relation::None,
    }
}

/// Applies the refinement a branch edge learns from its comparison.
/// Returns `false` when the refined state is empty — the edge is
/// statically infeasible and must not be propagated.
#[must_use]
fn refine_edge(st: &mut PentagonState, func: &Function, cond: Value, taken: bool) -> bool {
    // The condition may be a (σ-)copy of the comparison.
    let mut c = cond;
    while let InstKind::Copy { src, .. } = &func.inst(c).kind {
        c = *src;
    }
    let InstKind::Cmp { pred, lhs, rhs } = &func.inst(c).kind else {
        return true; // opaque condition: nothing to learn
    };
    let p = if taken { *pred } else { pred.negated() };
    let (p, a, b) = match p {
        Pred::Gt => (Pred::Lt, *rhs, *lhs),
        Pred::Ge => (Pred::Le, *rhs, *lhs),
        other => (other, *lhs, *rhs),
    };
    let ia = st.interval(a).unwrap_or(Interval::TOP);
    let ib = st.interval(b).unwrap_or(Interval::TOP);
    match p {
        Pred::Lt => {
            st.record_lt(a, b);
            st.refine_interval(a, Interval::new(Bound::NegInf, dec(ib.hi())))
                && st.refine_interval(b, Interval::new(inc(ia.lo()), Bound::PosInf))
        }
        Pred::Le => {
            st.record_le(a, b);
            st.refine_interval(a, Interval::new(Bound::NegInf, ib.hi()))
                && st.refine_interval(b, Interval::new(ia.lo(), Bound::PosInf))
        }
        Pred::Eq => {
            let m = ia.meet(&ib);
            st.record_le(a, b);
            st.record_le(b, a);
            st.refine_interval(a, m) && st.refine_interval(b, m)
        }
        Pred::Ne => true, // intervals cannot express a hole
        Pred::Gt | Pred::Ge => unreachable!("normalised above"),
    }
}

fn dec(b: Bound) -> Bound {
    match b {
        Bound::Fin(v) => v.checked_sub(1).map_or(Bound::NegInf, Bound::Fin),
        inf => inf,
    }
}

fn inc(b: Bound) -> Bound {
    match b {
        Bound::Fin(v) => v.checked_add(1).map_or(Bound::PosInf, Bound::Fin),
        inf => inf,
    }
}

/// Binds the φs of `succ` from their `pred`-edge incomings, with parallel
/// copy semantics: all sources are snapshotted in the pre-edge state
/// before any φ is rebound, and facts about φs of the same batch are
/// dropped (their snapshot-time values no longer exist).
fn bind_phis(st: &mut PentagonState, func: &Function, pred: BlockId, succ: BlockId) {
    let mut batch: Vec<(Value, Value)> = Vec::new();
    for (v, data) in func.block_insts(succ) {
        if let InstKind::Phi { incomings } = &data.kind {
            if let Some((_, u)) = incomings.iter().find(|(from, _)| *from == pred) {
                batch.push((v, *u));
            }
        } else {
            break; // φs are grouped at the block head
        }
    }
    if batch.is_empty() {
        return;
    }
    let stale: BTreeSet<Value> = batch.iter().map(|&(v, _)| v).collect();
    let snaps: Vec<_> = batch.iter().map(|&(v, u)| (v, st.snapshot(u))).collect();
    for &(v, _) in &batch {
        st.purge(v);
    }
    for (v, snap) in snaps {
        st.bind_snapshot(v, &snap, &stale);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn compiled(src: &str) -> (Module, PentagonAnalysis) {
        let m = sraa_minic::compile(src).unwrap();
        let p = PentagonAnalysis::run(&m);
        (m, p)
    }

    /// All load/store addresses of `name`, in block order.
    fn addresses(m: &Module, name: &str) -> (FuncId, Vec<Value>) {
        let fid = m.function_by_name(name).unwrap();
        let f = m.function(fid);
        let mut out = Vec::new();
        for b in f.block_ids() {
            for (_, d) in f.block_insts(b) {
                match &d.kind {
                    InstKind::Load { ptr } => out.push(*ptr),
                    InstKind::Store { ptr, .. } => out.push(*ptr),
                    _ => {}
                }
            }
        }
        (fid, out)
    }

    #[test]
    fn straight_line_increment() {
        let (m, p) = compiled("int f(int a) { int b = a + 1; return b; }");
        let fid = m.function_by_name("f").unwrap();
        let func = m.function(fid);
        let a = func.param_value(0);
        let b = func
            .value_ids()
            .find(|&v| matches!(func.inst(v).kind, InstKind::Binary { .. }))
            .unwrap();
        assert!(p.proves_lt(&m, fid, a, b));
        assert!(!p.proves_lt(&m, fid, b, a));
    }

    #[test]
    fn subtraction_of_positive_orders_downward() {
        // The paper's §5 marker: Pentagons infer x2 > x1 from
        // x1 = x2 − x3, x3 > 0 (ABCD does not).
        let (m, p) = compiled(
            "int f(int x2, int x3) { if (x3 > 0) { int x1 = x2 - x3; return x1; } return 0; }",
        );
        let fid = m.function_by_name("f").unwrap();
        let func = m.function(fid);
        let x2 = func.param_value(0);
        let x1 = func
            .value_ids()
            .find(|&v| matches!(func.inst(v).kind, InstKind::Binary { op: BinOp::Sub, .. }))
            .unwrap();
        assert!(p.proves_lt(&m, fid, x1, x2));
    }

    /// Compiles *and σ-splits* (e-SSA). The dense pentagon works on any
    /// SSA form, but branch refinements only become visible to def-point
    /// queries when the guarded values have post-branch names — which is
    /// exactly what the paper's live-range splitting provides.
    fn compiled_essa(src: &str) -> (Module, PentagonAnalysis) {
        let mut m = sraa_minic::compile(src).unwrap();
        let _ = sraa_essa::transform_module(&mut m);
        let p = PentagonAnalysis::run(&m);
        (m, p)
    }

    /// The σ-copies of the true/false edge of the first comparison.
    fn sigma_copies(func: &Function, true_edge: bool) -> Vec<Value> {
        func.value_ids()
            .filter(|&v| match func.inst(v).kind {
                InstKind::Copy { origin: sraa_ir::CopyOrigin::SigmaTrue { .. }, .. } => true_edge,
                InstKind::Copy { origin: sraa_ir::CopyOrigin::SigmaFalse { .. }, .. } => !true_edge,
                _ => false,
            })
            .collect()
    }

    #[test]
    fn branch_refinement_true_edge() {
        let (m, p) = compiled_essa("int f(int a, int b) { if (a < b) { return a; } return 0; }");
        let fid = m.function_by_name("f").unwrap();
        let func = m.function(fid);
        // The σ-copies a_t, b_t on the true edge: a_t < b_t must hold.
        let sigmas = sigma_copies(func, true);
        let [at, bt] = sigmas[..] else { panic!("expected 2 σ-copies, got {sigmas:?}") };
        assert!(
            p.proves_lt(&m, fid, at, bt) || p.proves_lt(&m, fid, bt, at),
            "the guarded σ names must be ordered"
        );
    }

    #[test]
    fn false_edge_learns_the_negation() {
        let (m, p) = compiled_essa("int f(int a, int b) { if (a >= b) { return 0; } return a; }");
        let fid = m.function_by_name("f").unwrap();
        let func = m.function(fid);
        // False edge of (a >= b) is a < b: the σ names are strictly
        // ordered there.
        let sigmas = sigma_copies(func, false);
        let [af, bf] = sigmas[..] else { panic!("expected 2 σ-copies, got {sigmas:?}") };
        assert!(p.proves_lt(&m, fid, af, bf) || p.proves_lt(&m, fid, bf, af), "!(a >= b) is a < b");
    }

    #[test]
    fn loop_counter_gets_widened_interval() {
        let (m, p) = compiled(
            "int f(int n) { int s = 0; for (int i = 0; i < n; i++) { s = s + i; } return s; }",
        );
        let fid = m.function_by_name("f").unwrap();
        let func = m.function(fid);
        // The φ for i at the loop head: interval must contain [0, +∞) and
        // the analysis must have terminated (we are running this test).
        let phi =
            func.value_ids().find(|&v| matches!(func.inst(v).kind, InstKind::Phi { .. })).unwrap();
        let iv = p.interval_at_def(&m, fid, phi).unwrap();
        assert!(iv.contains(0));
        assert!(iv.contains(1 << 40), "widened upper bound");
        assert_eq!(iv.lo(), Bound::Fin(0), "lower bound stays");
    }

    #[test]
    fn figure_1a_inner_loop_offsets_are_ordered() {
        let (m, p) = compiled(
            r#"
            void ins_sort(int* v, int N) {
                for (int i = 0; i < N - 1; i++) {
                    for (int j = i + 1; j < N; j++) {
                        if (v[i] > v[j]) {
                            int tmp = v[i];
                            v[i] = v[j];
                            v[j] = tmp;
                        }
                    }
                }
            }
            "#,
        );
        let (fid, addrs) = addresses(&m, "ins_sort");
        let func = m.function(fid);
        // Every pair (v[i], v[j]) must be provably ordered via its
        // offsets: find the gep offsets and check i < j.
        let mut checked = 0;
        for (x, &p1) in addrs.iter().enumerate() {
            for &p2 in &addrs[x + 1..] {
                let (
                    InstKind::Gep { base: b1, offset: o1 },
                    InstKind::Gep { base: b2, offset: o2 },
                ) = (&func.inst(p1).kind, &func.inst(p2).kind)
                else {
                    continue;
                };
                if b1 != b2 {
                    continue;
                }
                if o1 == o2 {
                    continue;
                }
                assert!(
                    p.proves_lt(&m, fid, *o1, *o2) || p.proves_lt(&m, fid, *o2, *o1),
                    "offsets of v[i]/v[j] must be ordered"
                );
                checked += 1;
            }
        }
        assert!(checked >= 4, "saw only {checked} cross pairs");
    }

    const FIGURE_1B: &str = r#"
        void partition(int* v, int N) {
            int i; int j; int p; int tmp;
            p = v[N / 2];
            for (i = 0, j = N - 1;; i++, j--) {
                while (v[i] < p) i++;
                while (p < v[j]) j--;
                if (i >= j) break;
                tmp = v[i];
                v[i] = v[j];
                v[j] = tmp;
            }
        }
    "#;

    /// Counts same-base pointer pairs of `name` whose gep offsets are
    /// provably ordered (looking through copies, as Definition 3.11 does).
    fn ordered_offset_pairs(m: &Module, p: &PentagonAnalysis, name: &str) -> usize {
        let (fid, addrs) = addresses(m, name);
        let func = m.function(fid);
        let strip = |mut v: Value| loop {
            match &func.inst(v).kind {
                InstKind::Copy { src, .. } => v = *src,
                _ => return v,
            }
        };
        let mut proven = 0;
        for (x, &p1) in addrs.iter().enumerate() {
            for &p2 in &addrs[x + 1..] {
                let (
                    InstKind::Gep { base: b1, offset: o1 },
                    InstKind::Gep { base: b2, offset: o2 },
                ) = (&func.inst(strip(p1)).kind, &func.inst(strip(p2)).kind)
                else {
                    continue;
                };
                if strip(*b1) != strip(*b2) || o1 == o2 {
                    continue;
                }
                if p.proves_lt(m, fid, *o1, *o2) || p.proves_lt(m, fid, *o2, *o1) {
                    proven += 1;
                }
            }
        }
        proven
    }

    /// On plain SSA, the `i ≥ j → break` refinement of Figure 1 (b)
    /// post-dates the definitions of the φs `i` and `j`, so a def-point
    /// query cannot use it — *this is the paper's argument for live-range
    /// splitting*, observed as a real precision gap of the dense
    /// formulation.
    #[test]
    fn figure_1b_needs_live_range_splitting() {
        let (m, p) = compiled(FIGURE_1B);
        assert_eq!(
            ordered_offset_pairs(&m, &p, "partition"),
            0,
            "plain-SSA def-point queries must not see the guard"
        );
    }

    /// After e-SSA conversion the swap block uses σ-renamed `i`/`j` whose
    /// definitions sit *on the refined edge*: the same dense pentagon now
    /// proves the Figure 1 (b) disambiguation.
    #[test]
    fn figure_1b_provable_on_essa() {
        let (m, p) = compiled_essa(FIGURE_1B);
        assert!(
            ordered_offset_pairs(&m, &p, "partition") >= 1,
            "σ-renamed swap offsets must be ordered"
        );
    }

    #[test]
    fn unreachable_code_has_no_facts() {
        let (m, p) = compiled("int f(int a) { return a; int b = a + 1; return b; }");
        let fid = m.function_by_name("f").unwrap();
        let func = m.function(fid);
        if let Some(b) =
            func.value_ids().find(|&v| matches!(func.inst(v).kind, InstKind::Binary { .. }))
        {
            let a = func.param_value(0);
            assert!(!p.proves_lt(&m, fid, a, b), "no facts in dead code");
        }
    }

    #[test]
    fn infeasible_edge_is_pruned() {
        // 3 < 2 is statically false: the then-branch is unreachable, so
        // the constant store inside it must not pollute the exit state.
        let (m, p) = compiled(
            "int f() { int a = 3; int b = 2; int r = 0; if (a < b) { r = 1; } return r; }",
        );
        let fid = m.function_by_name("f").unwrap();
        let func = m.function(fid);
        // r at the return: φ(0, 1) would be [0,1]; with pruning it is [0,0].
        let ret_block = func
            .block_ids()
            .find(|&b| {
                matches!(func.terminator(b).map(|t| &func.inst(t).kind), Some(InstKind::Ret(_)))
            })
            .unwrap();
        let ret = func.terminator(ret_block).unwrap();
        if let InstKind::Ret(Some(rv)) = func.inst(ret).kind {
            let iv = p.interval_at_def(&m, fid, rv).or_else(|| {
                // rv may be a φ or copy; its def state suffices.
                p.interval_at_def(&m, fid, rv)
            });
            if let Some(iv) = iv {
                assert!(iv.contains(0));
                assert!(!iv.contains(1), "infeasible edge leaked: {iv:?}");
            }
        }
    }

    #[test]
    fn dense_footprint_counts_block_entry_bindings() {
        // A single-block function stores no bindings (only the empty
        // entry state); any additional block inherits every live value.
        let (_, p0) = compiled("int f(int a) { int b = a + 1; return b; }");
        assert_eq!(p0.total_bindings(), 0);
        let (_, p) = compiled("int f(int a) { int b = 0; if (a > 0) { b = a; } return b; }");
        assert!(p.total_bindings() > 0, "multi-block functions pay the dense footprint");
    }
}
