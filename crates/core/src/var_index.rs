//! A flat numbering of every value in a module.
//!
//! The less-than analysis is inter-procedural (paper Section 4): its
//! constraint system spans all functions at once, with pseudo-φs binding
//! formal to actual parameters. Constraints therefore address variables by
//! a dense module-wide index rather than per-function [`Value`]s.

use sraa_ir::{FuncId, Module, Value};

/// Dense module-wide variable numbering: `id = offset(func) + value index`.
#[derive(Clone, Debug)]
pub struct VarIndex {
    offsets: Vec<usize>,
    total: usize,
}

impl VarIndex {
    /// Builds the numbering for `module`.
    pub fn new(module: &Module) -> Self {
        let mut offsets = Vec::with_capacity(module.num_functions());
        let mut total = 0usize;
        for (_, f) in module.functions() {
            offsets.push(total);
            total += f.num_insts();
        }
        Self { offsets, total }
    }

    /// Total number of variable slots.
    pub fn len(&self) -> usize {
        self.total
    }

    /// Whether the module has no values at all.
    pub fn is_empty(&self) -> bool {
        self.total == 0
    }

    /// The flat id of `v` in function `f`.
    pub fn id(&self, f: FuncId, v: Value) -> usize {
        self.offsets[f.index()] + v.index()
    }

    /// Inverse mapping: which function does flat id `id` belong to?
    pub fn func_of(&self, id: usize) -> (FuncId, Value) {
        let fi = match self.offsets.binary_search(&id) {
            Ok(i) => i,
            Err(i) => i - 1,
        };
        (FuncId::from_index(fi), Value::from_index(id - self.offsets[fi]))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sraa_ir::Type;

    #[test]
    fn round_trips_ids() {
        let mut m = Module::new();
        let f1 = m.declare_function("a", vec![("x", Type::Int), ("y", Type::Int)], None);
        let f2 = m.declare_function("b", vec![("z", Type::Int)], None);
        // Touch the functions so they have a few values.
        m.function_mut(f1).add_const(1);
        m.function_mut(f2).add_const(2);
        let ix = VarIndex::new(&m);
        assert_eq!(ix.len(), 3 + 2); // 2 params + const, 1 param + const
        for (fid, f) in m.functions() {
            for v in f.value_ids() {
                let id = ix.id(fid, v);
                assert_eq!(ix.func_of(id), (fid, v));
            }
        }
    }

    #[test]
    fn empty_module() {
        let ix = VarIndex::new(&Module::new());
        assert!(ix.is_empty());
        assert_eq!(ix.len(), 0);
    }
}
